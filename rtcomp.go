// Package rtcomp is the public facade of the rotate-tiling image
// composition library: parallel image composition for sort-last volume
// rendering on distributed-memory machines, after Lin, Yang and Chung
// (IPPS 2001), plus the full rendering pipeline around it.
//
// The implementation lives in internal packages; this package re-exports
// the surface a downstream user needs:
//
//   - composition schedules (BinarySwap, Pipeline, DirectSend, Tree,
//     RadixK and the paper's rotate-tiling variants NRT / TwoNRT), all
//     validated by construction;
//   - the compositor, which executes any schedule over a communicator on
//     real images, with optional wire compression (RLE, TRLE, BSpan);
//   - two communicator fabrics: in-process goroutines and raw TCP sockets;
//   - the full pipeline: phantom (or file-loaded) volumes, shear-warp
//     rendering, composition, final warp;
//   - the paper's analytic cost model and optimal-N machinery, and the
//     deterministic virtual-time simulator behind the reproduced figures.
//
// The quickest entry points:
//
//	// Composite partial images across 8 goroutine ranks:
//	sched, _ := rtcomp.NRT(8, 4)
//	err := rtcomp.RunInProcess(8, func(c rtcomp.Comm) error {
//	    img, _, err := rtcomp.Composite(c, sched, layers[c.Rank()],
//	        rtcomp.CompositeOptions{Codec: rtcomp.TRLE{}, GatherRoot: 0})
//	    ...
//	})
//
//	// Or run the whole rendering pipeline:
//	rep, err := rtcomp.RenderParallel(rtcomp.PipelineConfig{
//	    Dataset: "head", VolumeN: 128, Width: 512, Height: 512,
//	    P: 8, Method: rtcomp.Method{Kind: "nrt", N: 4}, Codec: "trle",
//	})
package rtcomp

import (
	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/compositor"
	"rtcomp/internal/core"
	"rtcomp/internal/model"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/shearwarp"
	"rtcomp/internal/simnet"
	"rtcomp/internal/transport/inproc"
	"rtcomp/internal/transport/tcpnet"
	"rtcomp/internal/volume"
	"rtcomp/internal/xfer"
)

// Image is a value+alpha raster image (two bytes per pixel).
type Image = raster.Image

// NewImage allocates a blank image.
func NewImage(w, h int) *Image { return raster.New(w, h) }

// Schedule is a composition plan: who sends which block to whom at every
// step. Build one with the method constructors below and execute it with
// Composite or Simulate.
type Schedule = schedule.Schedule

// Composition method constructors.
var (
	// BinarySwap is the method of Ma et al.; P must be a power of two.
	BinarySwap = schedule.BinarySwap
	// Pipeline is Lee's parallel-pipelined ring; any P, P-1 steps.
	Pipeline = schedule.Pipeline
	// DirectSend ships every block straight to its final owner.
	DirectSend = schedule.DirectSend
	// Tree is the naive binary-tree composition baseline.
	Tree = schedule.Tree
	// NRT is the paper's N_RT rotate-tiling variant (even P, any N).
	NRT = schedule.NRT
	// TwoNRT is the paper's 2N_RT variant (any P, even N).
	TwoNRT = schedule.TwoNRT
	// RT is rotate-tiling without the paper's parity restrictions.
	RT = schedule.RT
	// RadixK is the radix-k generalisation (power-of-two factors).
	RadixK = schedule.RadixK
	// ValidateSchedule proves a schedule composites correctly and returns
	// its traffic census.
	ValidateSchedule = schedule.Validate
)

// Comm is a rank's endpoint into a P-way communicator.
type Comm = comm.Comm

// RunInProcess executes fn on P goroutine ranks over the in-process
// fabric.
var RunInProcess = inproc.Run

// TCPConfig configures one rank of a TCP mesh communicator.
type TCPConfig = tcpnet.Config

// StartTCP brings up one rank of a socket-mesh communicator.
var StartTCP = tcpnet.Start

// CompositeOptions configures a composition run.
type CompositeOptions = compositor.Options

// CompositeReport summarises one rank's composition work.
type CompositeReport = compositor.Report

// Per-tile pipelined composition (CompositeOptions.Pipeline).
type (
	// TilePipeline enables and tunes the asynchronous per-tile pipelined
	// executor: bounded in-flight window, deterministic receive
	// interleaving, an optional streaming render Source and progressive
	// tile delivery at the gather root.
	TilePipeline = compositor.PipelineConfig
	// PartialFrame is one finished tile streamed to the gather root's
	// OnPartial callback while later tiles are still in flight.
	PartialFrame = compositor.PartialFrame
	// TileSource gates each tile's pipeline on a render in progress.
	TileSource = compositor.Source
)

// Composite executes a schedule for this rank's partial image over the
// communicator; the gather root receives the final image.
var Composite = compositor.Run

// Wire codecs.
type (
	// Codec compresses block payloads on the wire.
	Codec = codec.Codec
	// Raw is the identity codec.
	Raw = codec.Raw
	// RLE is classic run-length encoding.
	RLE = codec.RLE
	// TRLE is the paper's template run-length encoding.
	TRLE = codec.TRLE
	// BSpan is the bounding-interval reduction.
	BSpan = codec.BSpan
)

// Pipeline facade.
type (
	// PipelineConfig describes a parallel rendering job.
	PipelineConfig = core.Config
	// Method selects a composition method by kind and block count.
	Method = core.Method
	// FrameReport is the outcome of a parallel frame.
	FrameReport = core.FrameReport
	// Camera is an orthographic view (yaw and pitch in radians).
	Camera = shearwarp.Camera
	// Volume is a dense uint8 scalar field.
	Volume = volume.Volume
	// TransferFunc classifies scalars into gray value and opacity.
	TransferFunc = xfer.Func
)

// Pipeline entry points.
var (
	// ParseMethod parses "bs", "pp", "nrt:3", ... into a Method.
	ParseMethod = core.ParseMethod
	// RenderParallel runs the full pipeline on goroutine ranks.
	RenderParallel = core.RenderParallel
	// RenderParallelVolume is RenderParallel with an explicit volume.
	RenderParallelVolume = core.RenderParallelVolume
	// RenderSerial renders the reference image without parallelism.
	RenderSerial = core.RenderSerial
	// RenderRank runs one rank over a caller-provided communicator.
	RenderRank = core.RenderRank
	// PhantomVolume builds one of the procedural datasets
	// ("engine", "head", "brain").
	PhantomVolume = volume.ByName
	// LoadVolume reads an .rtvol container.
	LoadVolume = volume.Load
	// LoadRawVolume reads a headerless 8-bit raw volume.
	LoadRawVolume = volume.LoadRaw
	// TransferForDataset returns the preset classification of a phantom.
	TransferForDataset = xfer.ForDataset
)

// Analysis: the paper's cost model and the virtual-time simulator.
type (
	// ModelParams are the paper's Ts/Tp/To machine constants.
	ModelParams = model.Params
	// SimParams is the virtual-time simulator's machine model.
	SimParams = simnet.Params
	// SimResult is a simulated composition outcome.
	SimResult = simnet.Result
)

// Analysis entry points.
var (
	// PaperParams returns the paper's Section 2.3 example constants.
	PaperParams = model.PaperParams
	// OptimalN2NRT solves the paper's Equation (5) for the best block count.
	OptimalN2NRT = model.OptimalN2NRT
	// OptimalNNRT solves the paper's Equation (6).
	OptimalNNRT = model.OptimalNNRT
	// Simulate runs a schedule under the virtual-time machine model.
	Simulate = simnet.Simulate
	// SP2Calibrated returns SP2-magnitude simulator constants.
	SP2Calibrated = simnet.SP2Calibrated
)
