// Tuning: pick the optimal number of initial blocks for a rotate-tiling
// composition the way the paper's Section 2.3 does — evaluate the
// Equation (5)/(6) bounds and the closed-form curve for your machine
// constants — then confirm the choice against the virtual-time simulator.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rtcomp/internal/model"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/simnet"
)

func main() {
	const (
		p    = 32
		w, h = 512, 512
	)
	apix := w * h

	// The paper's own constants and worked example.
	m := model.PaperParams()
	bound5, n5 := model.OptimalN2NRT(p, apix, m)
	fmt.Printf("paper constants (Ts=%g, Tp=%g, To=%g), P=%d, A=%dx%d:\n", m.Ts, m.Tp, m.To, p, w, h)
	fmt.Printf("  Equation (5): bound %.2f -> use N=%d for 2N_RT (paper: ~4.3 -> 4)\n", bound5, n5)
	bound6, n6 := model.OptimalNNRT(p, apix, m)
	fmt.Printf("  Equation (6): bound %.2f -> use N=%d for N_RT\n", bound6, n6)
	fmt.Printf("  closed-form sweep best even N: %d\n\n", model.BestNByClosedForm(p, apix, 64, true, m))

	// Confirm against the simulator on a realistic workload.
	rng := rand.New(rand.NewSource(3))
	layers := make([]*raster.Image, p)
	for r := range layers {
		layers[r] = raster.PartialImage(rng, w, h, r, p)
	}
	params := simnet.SP2Calibrated()
	fmt.Printf("simulated composition time on %s (%d ranks, %dx%d):\n", params.Name, p, w, h)
	bestN, bestT := 0, 0.0
	for _, n := range []int{1, 2, 4, 6, 8, 12, 16, 24, 32} {
		sched, err := schedule.RT(p, n)
		if err != nil {
			log.Fatal(err)
		}
		res, err := simnet.Simulate(sched, layers, nil, params)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if bestN == 0 || res.Time < bestT {
			bestN, bestT = n, res.Time
		}
		fmt.Printf("  N=%-3d %8.3fms%s\n", n, res.Time*1e3, marker)
	}
	fmt.Printf("simulated optimum: N=%d (%.3fms) — small N loses pipelining, large N drowns in startups\n",
		bestN, bestT*1e3)
}
