// Schedulewalk reproduces the paper's Figure 1 and Figure 2 walkthroughs:
// it prints, step by step, who sends which block to whom for the 2N_RT
// method with three processors and four initial blocks, and for the N_RT
// method with four processors and three initial blocks, then proves both
// schedules correct with the symbolic validator.
package main

import (
	"fmt"
	"log"

	"rtcomp/internal/schedule"
)

func walk(title string, sch *schedule.Schedule) {
	fmt.Println(title)
	fmt.Printf("  %d processors, %d initial blocks, %d communication steps\n",
		sch.P, sch.Tiles, sch.NumSteps())
	for si, step := range sch.Steps {
		fmt.Printf("  step %d:\n", si+1)
		for _, tr := range step.Transfers {
			fmt.Printf("    P%d sends block %v to P%d\n", tr.From, tr.Block, tr.To)
		}
		if step.PostHalvings > 0 {
			fmt.Println("    every block is divided into two equal halves")
		}
	}
	census, err := schedule.Validate(sch, 512*512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  final block distribution:")
	perRank := map[int][]string{}
	for _, hld := range census.Final {
		perRank[hld.Rank] = append(perRank[hld.Rank], hld.Block.String())
	}
	for r := 0; r < sch.P; r++ {
		fmt.Printf("    P%d: %v\n", r, perRank[r])
	}
	fmt.Printf("  validated: every block composited from all %d ranks in depth order\n\n", sch.P)
}

func main() {
	fig1, err := schedule.TwoNRT(3, 4)
	if err != nil {
		log.Fatal(err)
	}
	walk("Figure 1 — the 2N_RT method, P=3, four initial blocks:", fig1)

	fig2, err := schedule.NRT(4, 3)
	if err != nil {
		log.Fatal(err)
	}
	walk("Figure 2 — the N_RT method, P=4, three initial blocks:", fig2)
}
