// Quickstart: composite eight partial images with the rotate-tiling method
// on the in-process fabric and check the result against the serial
// reference — the smallest end-to-end use of the library, written entirely
// against the public rtcomp API.
package main

import (
	"fmt"
	"log"
	"sync"

	"rtcomp"
)

func main() {
	const (
		p    = 8 // ranks, front-to-back depth order
		n    = 4 // initial blocks per sub-image (the paper's N)
		w, h = 512, 512
	)

	// Each rank owns one partial image; here rank r paints an opaque band
	// with a translucent fringe so neighbouring ranks overlap.
	layers := make([]*rtcomp.Image, p)
	for r := range layers {
		layers[r] = rtcomp.NewImage(w, h)
		y0, y1 := r*h/p, (r+1)*h/p
		for y := maxInt(0, y0-8); y < minInt(h, y1+8); y++ {
			a := uint8(255)
			if y < y0 || y >= y1 {
				a = 90 // fringe
			}
			for x := 0; x < w; x++ {
				layers[r].Set(x, y, uint8(30+25*r), a)
			}
		}
	}

	// The method is just a schedule: here rotate-tiling with N initial
	// blocks, proven correct by the symbolic validator.
	sched, err := rtcomp.RT(p, n)
	if err != nil {
		log.Fatal(err)
	}
	census, err := rtcomp.ValidateSchedule(sched, w*h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule %q: %d steps, %d messages, %d final blocks\n",
		sched.Name, sched.NumSteps(), census.TotalMessages(), len(census.Final))

	// Run it: one goroutine per rank, TRLE-compressed transfers, gather on
	// rank 0.
	var mu sync.Mutex
	var final *rtcomp.Image
	var raw, wire int64
	err = rtcomp.RunInProcess(p, func(c rtcomp.Comm) error {
		img, rep, err := rtcomp.Composite(c, sched, layers[c.Rank()],
			rtcomp.CompositeOptions{Codec: rtcomp.TRLE{}, GatherRoot: 0})
		if err != nil {
			return err
		}
		mu.Lock()
		raw += rep.RawBytes
		wire += rep.WireBytes
		if img != nil {
			final = img
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("final image: %dx%d, %.0f%% blank\n", final.W, final.H, 100*final.BlankFraction())
	fmt.Printf("traffic: %d -> %d payload bytes on the wire (TRLE, %.1fx)\n",
		raw, wire, float64(raw)/float64(wire))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
