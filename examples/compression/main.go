// Compression: the paper's Section 3 in running code — the 16 TRLE
// templates, the Figure 4 example with its exact 18:5 ratio, and the codecs
// applied to a real rendered partial image.
package main

import (
	"fmt"
	"log"

	"rtcomp/internal/codec"
	"rtcomp/internal/shearwarp"
	"rtcomp/internal/volume"
	"rtcomp/internal/xfer"
)

func main() {
	// The template table of Figure 3.
	fmt.Println("the 16 TRLE templates (2x2 pixels, # = non-blank):")
	for id, tpl := range codec.TemplateTable() {
		row := func(a, b bool) string {
			s := ""
			for _, x := range []bool{a, b} {
				if x {
					s += "#"
				} else {
					s += "."
				}
			}
			return s
		}
		fmt.Printf("  %2d: %s/%s", id, row(tpl[0][0], tpl[0][1]), row(tpl[1][0], tpl[1][1]))
		if (id+1)%4 == 0 {
			fmt.Println()
		}
	}

	// Figure 4: the two scanlines, RLE vs TRLE.
	m := codec.NewMask(12, 2)
	for y, runs := range [2][]uint8{{1, 2, 1, 1, 1, 3, 1, 1, 1}, {1, 2, 1, 1, 1, 2, 2, 1, 1}} {
		x := 0
		set := false
		for _, r := range runs {
			for j := uint8(0); j < r; j++ {
				m.Set(x, y, set)
				x++
			}
			set = !set
		}
	}
	rle := 0
	for y := 0; y < 2; y++ {
		row := make([]bool, 12)
		copy(row, m.Bits[y*12:(y+1)*12])
		runs, _ := codec.EncodeMaskRLE(row)
		rle += len(runs)
	}
	trle := codec.EncodeMaskTRLE(m)
	fmt.Printf("\nFigure 4: RLE %d bytes, TRLE codes %v (%d bytes) -> ratio %d:%d\n\n",
		rle, trle, len(trle), rle, len(trle))

	// A real partial image: one slab of the engine phantom.
	r := &shearwarp.Renderer{Vol: volume.Engine(96), TF: xfer.ForDataset("engine")}
	view, err := r.Factor(shearwarp.Camera{Yaw: 0.35, Pitch: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	partial, err := r.RenderSlab(view, view.NK()*3/8, view.NK()/2)
	if err != nil {
		log.Fatal(err)
	}
	// Real CT scans carry per-pixel acquisition noise; the synthetic
	// phantom is unrealistically flat, which would gift plain RLE long
	// identical-value runs.
	partial.AddValueNoise(6, 42)
	raw := len(partial.Pix)
	fmt.Printf("one rendered engine slab (%dx%d, %.0f%% blank):\n",
		partial.W, partial.H, 100*partial.BlankFraction())
	for _, name := range []string{"rle", "trle"} {
		c, _ := codec.ByName(name)
		enc := c.Encode(partial.Pix)
		dec, err := c.Decode(enc, partial.NPixels())
		if err != nil {
			log.Fatal(err)
		}
		ok := "round trip ok"
		for i := range dec {
			if dec[i] != partial.Pix[i] {
				ok = "ROUND TRIP FAILED"
				break
			}
		}
		fmt.Printf("  %-5s %7d -> %6d bytes (%.2fx), %s\n", name, raw, len(enc),
			codec.Ratio(raw, len(enc)), ok)
	}
}
