// Renderfarm: the full pipeline of the paper on all three datasets — data
// partitioning, parallel shear-warp rendering, rotate-tiling composition,
// final warp — with per-stage timings and PGM output, using the public
// core facade.
package main

import (
	"fmt"
	"log"
	"os"

	"rtcomp/internal/core"
	"rtcomp/internal/raster"
	"rtcomp/internal/shearwarp"
	"rtcomp/internal/stats"
)

func main() {
	for _, dataset := range []string{"engine", "head", "brain"} {
		cfg := core.Config{
			Dataset: dataset,
			VolumeN: 96,
			Camera:  shearwarp.Camera{Yaw: 0.35, Pitch: 0.2},
			Width:   256,
			Height:  256,
			P:       8,
			Method:  core.Method{Kind: "nrt", N: 4},
			Codec:   "trle",
		}
		rep, err := core.RenderParallel(cfg)
		if err != nil {
			log.Fatal(err)
		}
		serial, err := core.RenderSerial(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var raw, wire int64
		for _, r := range rep.Reports {
			raw += r.RawBytes
			wire += r.WireBytes
		}
		fmt.Printf("%-7s render %-10v composite %-10v warp %-10v traffic %s->%s  maxdiff-vs-serial %d\n",
			dataset, rep.RenderTime, rep.CompositeAll, rep.WarpTime,
			stats.IBytes(raw), stats.IBytes(wire), raster.MaxDiff(rep.Image, serial))

		out := dataset + ".pgm"
		if err := os.WriteFile(out, rep.Image.EncodePGM(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("        wrote %s\n", out)
	}
}
