// Distributed: the same composition as the quickstart, but every byte moves
// through real TCP sockets — four endpoints on loopback, a full mesh of
// hand-rolled framed connections, exactly the deployment shape of
// cmd/rtnode across machines.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"rtcomp"
	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
	"rtcomp/internal/transport/tcpnet"
)

func main() {
	const (
		p    = 4
		w, h = 256, 256
	)
	rng := rand.New(rand.NewSource(7))
	layers := make([]*raster.Image, p)
	for r := range layers {
		layers[r] = raster.PartialImage(rng, w, h, r, p)
	}
	sched, err := rtcomp.TwoNRT(p, 4)
	if err != nil {
		log.Fatal(err)
	}

	addrs, err := tcpnet.LoopbackAddrs(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh of %d ranks on %v\n", p, addrs)

	var mu sync.Mutex
	var final *raster.Image
	var totalBytes int64
	var wg sync.WaitGroup
	errs := make([]error, p)
	start := time.Now()
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := rtcomp.StartTCP(rtcomp.TCPConfig{Rank: r, Addrs: addrs, DialTimeout: 10 * time.Second})
			if err != nil {
				errs[r] = err
				return
			}
			defer ep.Close()
			img, _, err := rtcomp.Composite(ep, sched, layers[r],
				rtcomp.CompositeOptions{Codec: rtcomp.TRLE{}, GatherRoot: 0})
			if err != nil {
				errs[r] = err
				return
			}
			mu.Lock()
			totalBytes += ep.Counters().BytesSent
			if img != nil {
				final = img
			}
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}

	want := compose.SerialComposite(layers)
	fmt.Printf("composited over TCP in %v, %d bytes on the wire\n", time.Since(start), totalBytes)
	fmt.Printf("max deviation from serial reference: %d levels\n", raster.MaxDiff(final, want))
}
