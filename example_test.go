package rtcomp_test

import (
	"fmt"
	"sync"

	"rtcomp"
	"rtcomp/internal/raster"
)

// ExampleNRT builds a rotate-tiling schedule and proves it correct with
// the symbolic validator.
func ExampleNRT() {
	sched, err := rtcomp.NRT(6, 3)
	if err != nil {
		panic(err)
	}
	census, err := rtcomp.ValidateSchedule(sched, 512*512)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d steps, %d messages, %d final blocks\n",
		sched.Name, sched.NumSteps(), census.TotalMessages(), len(census.Final))
	// Output:
	// N_RT(N=3): 3 steps, 30 messages, 12 final blocks
}

// ExampleComposite composites four partial images across four goroutine
// ranks with TRLE-compressed transfers.
func ExampleComposite() {
	const p = 4
	layers := make([]*rtcomp.Image, p)
	for r := range layers {
		layers[r] = rtcomp.NewImage(64, 64)
		// Each rank covers one quarter-height band, fully opaque.
		for y := r * 16; y < (r+1)*16; y++ {
			for x := 0; x < 64; x++ {
				layers[r].Set(x, y, uint8(50*r+50), 255)
			}
		}
	}
	sched, _ := rtcomp.TwoNRT(p, 2)
	var mu sync.Mutex
	var final *rtcomp.Image
	err := rtcomp.RunInProcess(p, func(c rtcomp.Comm) error {
		img, _, err := rtcomp.Composite(c, sched, layers[c.Rank()],
			rtcomp.CompositeOptions{Codec: rtcomp.TRLE{}, GatherRoot: 0})
		if img != nil {
			mu.Lock()
			final = img
			mu.Unlock()
		}
		return err
	})
	if err != nil {
		panic(err)
	}
	v0, _ := final.At(0, 0)
	v3, _ := final.At(0, 63)
	fmt.Printf("final %dx%d, top band %d, bottom band %d\n", final.W, final.H, v0, v3)
	// Output:
	// final 64x64, top band 50, bottom band 200
}

// ExampleOptimalN2NRT evaluates the paper's Equation (5) worked example.
func ExampleOptimalN2NRT() {
	bound, n := rtcomp.OptimalN2NRT(32, 512*512, rtcomp.PaperParams())
	fmt.Printf("bound %.1f -> N = %d\n", bound, n)
	// Output:
	// bound 4.2 -> N = 4
}

// ExampleSimulate runs a composition under the virtual-time SP2 model.
func ExampleSimulate() {
	const p = 8
	layers := make([]*rtcomp.Image, p)
	for r := range layers {
		layers[r] = raster.PartialImage(nil, 128, 128, r, p)
	}
	sched, _ := rtcomp.RT(p, 4)
	res, err := rtcomp.Simulate(sched, layers, rtcomp.TRLE{}, rtcomp.SP2Calibrated())
	if err != nil {
		panic(err)
	}
	fmt.Printf("steps %d, messages %d, wire < raw: %v\n",
		len(res.StepTime), res.Msgs, res.WireBytes < res.RawBytes)
	// Output:
	// steps 3, messages 48, wire < raw: true
}
