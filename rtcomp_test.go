package rtcomp_test

import (
	"math/rand"
	"sync"
	"testing"

	"rtcomp"
	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
)

// TestPublicAPIComposite drives a composition entirely through the public
// facade — what a downstream user of the library writes.
func TestPublicAPIComposite(t *testing.T) {
	const p = 6
	rng := rand.New(rand.NewSource(99))
	layers := make([]*rtcomp.Image, p)
	for r := range layers {
		layers[r] = raster.RandomBinaryImage(rng, 64, 32, 0.5)
	}
	sched, err := rtcomp.NRT(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtcomp.ValidateSchedule(sched, 64*32); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var final *rtcomp.Image
	err = rtcomp.RunInProcess(p, func(c rtcomp.Comm) error {
		img, _, err := rtcomp.Composite(c, sched, layers[c.Rank()],
			rtcomp.CompositeOptions{Codec: rtcomp.TRLE{}, GatherRoot: 0})
		if img != nil {
			mu.Lock()
			final = img
			mu.Unlock()
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	want := compose.SerialComposite(layers)
	if !raster.Equal(final, want) {
		t.Fatal("public API composition differs from serial reference")
	}
}

// TestPublicAPIPipeline drives the rendering pipeline through the facade.
func TestPublicAPIPipeline(t *testing.T) {
	m, err := rtcomp.ParseMethod("2nrt:4")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rtcomp.PipelineConfig{
		Dataset: "brain",
		VolumeN: 32,
		Camera:  rtcomp.Camera{Yaw: 0.3, Pitch: 0.1},
		Width:   64, Height: 64,
		P:      4,
		Method: m,
		Codec:  "trle",
	}
	rep, err := rtcomp.RenderParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := rtcomp.RenderSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := raster.MaxDiff(rep.Image, serial); d > 4 {
		t.Fatalf("pipeline image differs from serial by %d", d)
	}
}

// TestPublicAPIAnalysis exercises the model and simulator surface.
func TestPublicAPIAnalysis(t *testing.T) {
	bound, n := rtcomp.OptimalN2NRT(32, 512*512, rtcomp.PaperParams())
	if n != 4 || bound < 4 || bound > 4.5 {
		t.Fatalf("Eq (5) via facade: bound %v, N %d", bound, n)
	}
	sched, err := rtcomp.RT(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	layers := make([]*rtcomp.Image, 8)
	for r := range layers {
		layers[r] = raster.RandomBinaryImage(rng, 64, 32, 0.5)
	}
	res, err := rtcomp.Simulate(sched, layers, rtcomp.Raw{}, rtcomp.SP2Calibrated())
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatalf("simulated time %v", res.Time)
	}
}

// TestPublicAPIVolumes exercises the volume surface.
func TestPublicAPIVolumes(t *testing.T) {
	v := rtcomp.PhantomVolume("head", 24)
	if v == nil {
		t.Fatal("PhantomVolume returned nil")
	}
	tf := rtcomp.TransferForDataset("head")
	if _, a := tf.Classify(0); a != 0 {
		t.Fatal("air not transparent via facade")
	}
}
