// Package rtcomp_test holds the benchmark harness: one benchmark per paper
// table/figure (driving the same generators as cmd/rtbench, at a reduced
// workload so -bench runs stay short) plus wall-clock benchmarks of the
// real composition methods on the in-process fabric — the series the
// EXPERIMENTS.md extension X2 reports.
package rtcomp_test

import (
	"fmt"
	"sync"
	"testing"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/compositor"
	"rtcomp/internal/experiments"
	"rtcomp/internal/model"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/simnet"
	"rtcomp/internal/transport/inproc"
)

func runSpec(b *testing.B, id string) {
	b.Helper()
	spec, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	o := experiments.QuickOptions()
	// Warm the partials cache outside the timed loop.
	if _, err := spec.Run(o); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Run(o); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkTable1Model(b *testing.B)     { runSpec(b, "table1") }
func BenchmarkFig1Walkthrough(b *testing.B) { runSpec(b, "fig1") }
func BenchmarkFig2Walkthrough(b *testing.B) { runSpec(b, "fig2") }
func BenchmarkFig3Templates(b *testing.B)   { runSpec(b, "fig3") }
func BenchmarkFig4Compression(b *testing.B) { runSpec(b, "fig4") }
func BenchmarkEq56OptimalN(b *testing.B)    { runSpec(b, "eq56") }
func BenchmarkFig5NSweep(b *testing.B)      { runSpec(b, "fig5") }
func BenchmarkFig6Methods(b *testing.B)     { runSpec(b, "fig6") }
func BenchmarkFig7TRLESweep(b *testing.B)   { runSpec(b, "fig7") }
func BenchmarkFig8MethodsCodecs(b *testing.B) {
	runSpec(b, "fig8")
}
func BenchmarkCompressionRatios(b *testing.B) { runSpec(b, "compress") }

// benchLayers builds a deterministic composition workload.
func benchLayers(p, w, h int) []*raster.Image {
	layers := make([]*raster.Image, p)
	for r := range layers {
		layers[r] = raster.PartialImage(nil, w, h, r, p)
		layers[r].AddValueNoise(6, uint64(r))
	}
	return layers
}

// BenchmarkSimulate measures the virtual-time simulator itself.
func BenchmarkSimulate(b *testing.B) {
	layers := benchLayers(32, 512, 512)
	sched, err := schedule.RT(32, 4)
	if err != nil {
		b.Fatal(err)
	}
	params := simnet.SP2Calibrated()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simnet.Simulate(sched, layers, codec.Raw{}, params); err != nil {
			b.Fatal(err)
		}
	}
}

// Wall-clock composition on the in-process fabric (extension X2): the same
// methods the paper times on the SP2, timed for real on goroutine ranks.
func benchWallclock(b *testing.B, build func(p int) (*schedule.Schedule, error), p int, cdc codec.Codec) {
	b.Helper()
	sched, err := build(p)
	if err != nil {
		b.Fatal(err)
	}
	layers := benchLayers(p, 512, 512)
	if _, err := schedule.Validate(sched, 512*512); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var once sync.Once
		var got *raster.Image
		err := inproc.Run(p, func(c comm.Comm) error {
			img, _, err := compositor.Run(c, sched, layers[c.Rank()],
				compositor.Options{Codec: cdc, GatherRoot: 0})
			if img != nil {
				once.Do(func() { got = img })
			}
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		if got == nil {
			b.Fatal("no image")
		}
	}
}

func BenchmarkWallclockBS(b *testing.B) {
	benchWallclock(b, schedule.BinarySwap, 8, codec.Raw{})
}

func BenchmarkWallclockPP(b *testing.B) {
	benchWallclock(b, schedule.Pipeline, 8, codec.Raw{})
}

func BenchmarkWallclockDirectSend(b *testing.B) {
	benchWallclock(b, schedule.DirectSend, 8, codec.Raw{})
}

func BenchmarkWallclockRT(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			benchWallclock(b, func(p int) (*schedule.Schedule, error) {
				return schedule.RT(p, n)
			}, 8, codec.Raw{})
		})
	}
}

func BenchmarkWallclockRTCodecs(b *testing.B) {
	for _, name := range codec.Names() {
		cdc, err := codec.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			benchWallclock(b, func(p int) (*schedule.Schedule, error) {
				return schedule.RT(p, 4)
			}, 8, cdc)
		})
	}
}

// BenchmarkScheduleGeneration measures RT schedule construction, which the
// model predicts must stay negligible next to the composition itself.
func BenchmarkScheduleGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := schedule.RT(32, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalN measures the Equation (5) solver.
func BenchmarkOptimalN(b *testing.B) {
	m := model.PaperParams()
	for i := 0; i < b.N; i++ {
		model.OptimalN2NRT(32, 512*512, m)
	}
}
