module rtcomp

go 1.22
