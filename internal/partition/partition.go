// Package partition implements the data-partitioning stage of the parallel
// volume rendering pipeline: the 1-D slab scheme (contiguous slice ranges
// along the compositing axis, one per processor, in depth order) and a 2-D
// block scheme over the slice plane, following the partitioning used by the
// paper's render stage.
package partition

import "fmt"

// Slab is a contiguous range of slice indices [Lo, Hi) along the
// compositing axis.
type Slab struct {
	Lo, Hi int
}

// Len reports the number of slices in the slab.
func (s Slab) Len() int { return s.Hi - s.Lo }

// Slabs1D cuts depth slices into p contiguous slabs of near-equal size, in
// front-to-back order — slab r belongs to rank r, so rank order is depth
// order, which is what the composition methods require.
func Slabs1D(depth, p int) ([]Slab, error) {
	if p <= 0 || depth <= 0 {
		return nil, fmt.Errorf("partition: need positive depth and p, got %d, %d", depth, p)
	}
	if p > depth {
		return nil, fmt.Errorf("partition: %d ranks for %d slices", p, depth)
	}
	out := make([]Slab, p)
	lo := 0
	for r := 0; r < p; r++ {
		size := depth / p
		if r < depth%p {
			size++
		}
		out[r] = Slab{lo, lo + size}
		lo += size
	}
	return out, nil
}

// Tile2D is an axis-aligned tile of the slice plane.
type Tile2D struct {
	X0, Y0, X1, Y1 int
}

// Grid2D cuts a w x h slice plane into p tiles arranged in the most square
// rows x cols grid with rows*cols == p, each tile of near-equal size. With
// a 2-D partition every rank renders the full depth of its tile, so the
// per-rank partial images have disjoint footprints.
func Grid2D(w, h, p int) ([]Tile2D, error) {
	if p <= 0 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("partition: need positive dims and p")
	}
	rows := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			rows = d
		}
	}
	cols := p / rows
	if rows > h || cols > w {
		return nil, fmt.Errorf("partition: grid %dx%d does not fit %dx%d plane", rows, cols, w, h)
	}
	tiles := make([]Tile2D, 0, p)
	y := 0
	for r := 0; r < rows; r++ {
		hh := h / rows
		if r < h%rows {
			hh++
		}
		x := 0
		for c := 0; c < cols; c++ {
			ww := w / cols
			if c < w%cols {
				ww++
			}
			tiles = append(tiles, Tile2D{X0: x, Y0: y, X1: x + ww, Y1: y + hh})
			x += ww
		}
		y += hh
	}
	return tiles, nil
}
