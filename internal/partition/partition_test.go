package partition

import (
	"testing"
	"testing/quick"
)

func TestSlabs1DCoversInOrder(t *testing.T) {
	f := func(depth, p uint8) bool {
		d := int(depth)%500 + 1
		pp := int(p)%32 + 1
		if pp > d {
			pp = d
		}
		slabs, err := Slabs1D(d, pp)
		if err != nil {
			return false
		}
		at := 0
		min, max := d, 0
		for _, s := range slabs {
			if s.Lo != at || s.Len() <= 0 {
				return false
			}
			at = s.Hi
			if s.Len() < min {
				min = s.Len()
			}
			if s.Len() > max {
				max = s.Len()
			}
		}
		return at == d && max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlabs1DErrors(t *testing.T) {
	if _, err := Slabs1D(4, 5); err == nil {
		t.Fatal("more ranks than slices accepted")
	}
	if _, err := Slabs1D(0, 1); err == nil {
		t.Fatal("zero depth accepted")
	}
	if _, err := Slabs1D(8, 0); err == nil {
		t.Fatal("zero ranks accepted")
	}
}

func TestGrid2DTilesPlane(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8, 9, 12, 16} {
		tiles, err := Grid2D(100, 80, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if len(tiles) != p {
			t.Fatalf("p=%d: %d tiles", p, len(tiles))
		}
		area := 0
		for _, tl := range tiles {
			if tl.X1 <= tl.X0 || tl.Y1 <= tl.Y0 {
				t.Fatalf("p=%d: empty tile %+v", p, tl)
			}
			area += (tl.X1 - tl.X0) * (tl.Y1 - tl.Y0)
		}
		if area != 100*80 {
			t.Fatalf("p=%d: tiles cover %d of %d", p, area, 100*80)
		}
		// No overlap: mark coverage.
		seen := make([]bool, 100*80)
		for _, tl := range tiles {
			for y := tl.Y0; y < tl.Y1; y++ {
				for x := tl.X0; x < tl.X1; x++ {
					if seen[y*100+x] {
						t.Fatalf("p=%d: pixel (%d,%d) covered twice", p, x, y)
					}
					seen[y*100+x] = true
				}
			}
		}
	}
}

func TestGrid2DPrefersSquare(t *testing.T) {
	tiles, err := Grid2D(64, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 16 = 4x4 grid: the first row must contain exactly 4 tiles.
	rowTiles := 0
	for _, tl := range tiles {
		if tl.Y0 == 0 {
			rowTiles++
		}
	}
	if rowTiles != 4 {
		t.Fatalf("16 tiles arranged with %d columns, want 4", rowTiles)
	}
}
