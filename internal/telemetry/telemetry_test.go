package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// A nil recorder must be inert everywhere: instrumented code runs with
// telemetry disabled by passing nil, so every method is exercised here.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims to be enabled")
	}
	if !r.Epoch().IsZero() {
		t.Fatal("nil recorder has a non-zero epoch")
	}
	end := r.Span(0, PhaseRecv, CatNetwork, 0)
	end() // must not panic
	r.Add(0, CtrMsgs, 1)
	r.AddStep(0, 2, CtrRawBytes, 100)
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder returned spans: %v", got)
	}
	if got := r.Counters(); got != nil {
		t.Fatalf("nil recorder returned counters: %v", got)
	}
	s := r.Summary(3)
	if s.Rank != 3 || len(s.Phases) != 0 || len(s.Counters) != 0 {
		t.Fatalf("nil recorder summary not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil WriteMetrics output: %q", buf.String())
	}
}

// TestConcurrentRecording hammers one recorder from many goroutines; run
// under -race this is the data-race certificate for the shared-recorder
// mode (rtserve, rtnode -local, rtsim -chaos).
func TestConcurrentRecording(t *testing.T) {
	const ranks, iters = 8, 200
	r := New()
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				end := r.Span(rank, PhaseMerge, CatCompute, i%4)
				r.AddStep(rank, i%4, CtrMsgs, 1)
				r.Add(rank, CtrDeadlineHits, 2)
				end()
			}
		}(rank)
	}
	wg.Wait()

	if got := len(r.Spans()); got != ranks*iters {
		t.Fatalf("recorded %d spans, want %d", got, ranks*iters)
	}
	var msgs, hits int64
	for k, v := range r.Counters() {
		switch k.Name {
		case CtrMsgs:
			msgs += v
		case CtrDeadlineHits:
			hits += v
			if k.Step != StepNone {
				t.Fatalf("run-level counter landed on step %d", k.Step)
			}
		}
	}
	if msgs != ranks*iters {
		t.Fatalf("msgs counter = %d, want %d", msgs, ranks*iters)
	}
	if hits != 2*ranks*iters {
		t.Fatalf("deadline counter = %d, want %d", hits, 2*ranks*iters)
	}
}

func TestAddStepSkipsZero(t *testing.T) {
	r := New()
	r.AddStep(0, 0, CtrOverPixels, 0)
	if len(r.Counters()) != 0 {
		t.Fatal("zero increment created a counter cell")
	}
}

func TestSpansSortedByStart(t *testing.T) {
	r := New()
	// End spans out of order; Spans() must come back sorted by start.
	e1 := r.Span(1, PhaseSend, CatNetwork, 0)
	time.Sleep(time.Millisecond)
	e2 := r.Span(0, PhaseRecv, CatNetwork, 0)
	e2()
	e1()
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Rank != 1 || spans[1].Rank != 0 {
		t.Fatalf("spans not ordered by start: %+v", spans)
	}
	for _, sp := range spans {
		if sp.End < sp.Start {
			t.Fatalf("span ends before it starts: %+v", sp)
		}
	}
}

// On a shared in-process recorder each rank's Summary must contain only its
// own rows — otherwise the gathered table double-counts every rank.
func TestSummaryFiltersByRank(t *testing.T) {
	r := New()
	for rank := 0; rank < 3; rank++ {
		r.Span(rank, PhaseEncode, CatCompute, 0)()
		r.AddStep(rank, 0, CtrRawBytes, int64(100*(rank+1)))
	}
	for rank := 0; rank < 3; rank++ {
		s := r.Summary(rank)
		if s.Rank != rank {
			t.Fatalf("summary rank = %d, want %d", s.Rank, rank)
		}
		if len(s.Phases) != 1 || s.Phases[0].Name != PhaseEncode || s.Phases[0].Count != 1 {
			t.Fatalf("rank %d phases: %+v", rank, s.Phases)
		}
		if len(s.Counters) != 1 || s.Counters[0].Value != int64(100*(rank+1)) {
			t.Fatalf("rank %d counters: %+v", rank, s.Counters)
		}
	}
	if got := r.Summaries(3); len(got) != 3 || got[2].Rank != 2 {
		t.Fatalf("Summaries(3) = %+v", got)
	}
}

var (
	promComment = regexp.MustCompile(`^# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	promSample  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)
)

// checkPromText asserts every line of a /metrics payload is a well-formed
// Prometheus text-format (0.0.4) comment or sample.
func checkPromText(t *testing.T, text string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty metrics payload")
	}
	for _, line := range lines {
		if promComment.MatchString(line) || promSample.MatchString(line) {
			continue
		}
		t.Fatalf("line does not parse as Prometheus text format: %q", line)
	}
}

func TestWriteMetricsFormat(t *testing.T) {
	r := New()
	r.AddStep(0, 0, CtrWireBytes, 512)
	r.AddStep(1, 2, CtrWireBytes, 256)
	r.Add(1, CtrCRCRejects, 3)
	r.Span(0, PhaseRecv, CatNetwork, 0)()
	r.Span(1, PhaseMerge, CatCompute, 1)()

	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checkPromText(t, out)

	for _, want := range []string{
		`rtcomp_wire_bytes_total{rank="0"} 512`,
		`rtcomp_wire_bytes_total{rank="1"} 256`,
		`rtcomp_crc_rejects_total{rank="1"} 3`,
		`rtcomp_phase_spans_total{rank="1",phase="merge"} 1`,
		"# TYPE rtcomp_wire_bytes_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
	// Deterministic across scrapes of an unchanged recorder.
	var buf2 bytes.Buffer
	if err := r.WriteMetrics(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Fatal("two scrapes of an unchanged recorder differ")
	}
}

func TestStepTable(t *testing.T) {
	summaries := []Summary{
		{
			Rank: 0,
			Phases: []PhaseStat{
				{Step: StepNone, Name: PhaseRender, Nanos: 5e8, Count: 1},
				{Step: 0, Name: PhaseEncode, Nanos: 2e6, Count: 2},
				{Step: 0, Name: PhaseRecv, Nanos: 4e6, Count: 2},
			},
			Counters: []CounterStat{
				{Step: 0, Name: CtrMsgs, Value: 2},
				{Step: 0, Name: CtrRawBytes, Value: 2048},
				{Step: 0, Name: CtrWireBytes, Value: 1024},
				{Step: StepNone, Name: CtrDeadlineHits, Value: 1},
			},
		},
		{
			Rank: 1,
			Phases: []PhaseStat{
				{Step: StepNone, Name: PhaseRender, Nanos: 7e8, Count: 1},
				{Step: 1, Name: PhaseMerge, Nanos: 3e6, Count: 1},
			},
			Counters: []CounterStat{
				{Step: 1, Name: CtrMsgs, Value: 1},
				{Step: 1, Name: CtrRawBytes, Value: 512},
				{Step: 1, Name: CtrWireBytes, Value: 512},
			},
		},
	}
	got := StepTable(summaries).String()
	for _, want := range []string{
		"step", "encode", "ratio", // headers
		"2.00x", "1.00x", // per-step compression ratios
		"all",                    // totals row
		"render (slowest rank):", // whole-run phase footnote (max across ranks)
		"700.00ms",               // ... with rank 1's slower render
		CtrDeadlineHits + ": 1",  // run-level counter footnote
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("table missing %q:\n%s", want, got)
		}
	}
	// Steps display 1-based.
	if !strings.Contains(got, "\n1 ") && !strings.Contains(got, " 1 ") {
		t.Fatalf("table has no 1-based step row:\n%s", got)
	}
}

func TestSpanTotalSeconds(t *testing.T) {
	spans := []Span{
		{Name: PhaseSend, Start: 0, End: 2e9},
		{Name: PhaseRecv, Start: 0, End: 1e9},
	}
	if got := SpanTotalSeconds(spans, PhaseSend); got != 2 {
		t.Fatalf("send total = %v", got)
	}
	if got := SpanTotalSeconds(spans, ""); got != 3 {
		t.Fatalf("all-span total = %v", got)
	}
}

func TestMuxEndpoints(t *testing.T) {
	r := New()
	r.Add(0, CtrMsgs, 7)
	r.Span(0, PhaseGather, CatNetwork, StepNone)()
	srv := httptest.NewServer(Mux(r, true))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), buf.String()
	}

	code, ctype, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	checkPromText(t, body)
	if !strings.Contains(body, `rtcomp_msgs_total{rank="0"} 7`) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	code, _, body = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["rtcomp"]; !ok {
		t.Fatalf("/debug/vars missing rtcomp var; keys: %v", keysOf(vars))
	}

	code, _, body = get("/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d body %q", code, body)
	}
}

func TestNewServerTimeouts(t *testing.T) {
	s := NewServer("127.0.0.1:0", nil)
	if s.ReadHeaderTimeout <= 0 || s.ReadTimeout <= 0 || s.WriteTimeout <= 0 || s.IdleTimeout <= 0 {
		t.Fatalf("server missing timeouts: %+v", s)
	}
	if s.MaxHeaderBytes <= 0 {
		t.Fatal("server missing header cap")
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestWriteMetricsPhaseLabelEscaping pins the label-value rules for phase
// names: a label value is not a metric name, so legal-but-non-alphanumeric
// characters (the dots of "recv.wait") must pass through verbatim, while the
// three characters the text format cannot carry raw inside quotes —
// backslash, double quote, newline — must be escaped.
func TestWriteMetricsPhaseLabelEscaping(t *testing.T) {
	r := New()
	r.Span(0, "recv.wait", CatNetwork, 0)()
	r.Span(1, "odd\"phase\\with\nall", CatCompute, 0)()

	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `phase="recv_wait"`) {
		t.Fatalf("dotted phase was mangled through the metric-name alphabet:\n%s", out)
	}
	for _, want := range []string{
		`rtcomp_phase_spans_total{rank="0",phase="recv.wait"} 1`,
		`rtcomp_phase_spans_total{rank="1",phase="odd\"phase\\with\nall"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\nall\"}") {
		t.Fatalf("raw newline leaked into a label value:\n%s", out)
	}
}
