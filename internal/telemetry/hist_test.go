package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestHistQuantileGolden pins exact quantile outputs for a known
// observation set, including the log-bucket rounding.
func TestHistQuantileGolden(t *testing.T) {
	h := &Histogram{}
	// 1..100 microseconds: p50 must land in the bucket holding 50us, p99 in
	// the bucket holding 99us. With 8 sub-buckets per octave the bucket
	// upper bounds are exact powers-of-two fractions.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		// 50us = 50000ns: exp=15, width=2^12, bucket [49152, 53247].
		{0.50, 53247},
		// 95us = 95000ns: exp=16, width=2^13, bucket [90112, 98303].
		{0.95, 98303},
		// 99us and 100us share the next bucket, [98304, 106495].
		{0.99, 106495},
		{1.00, 106495},
		// First observation: 1us = 1000ns: exp=9, width=2^6, [960, 1023].
		{0.0, 1023},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %d, want %d", c.q, got, c.want)
		}
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d, want 100", h.Count())
	}
	wantSum := time.Duration(0)
	for i := 1; i <= 100; i++ {
		wantSum += time.Duration(i) * time.Microsecond
	}
	if h.Sum() != wantSum {
		t.Errorf("Sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestHistBucketInvariants proves every value lands in a bucket whose
// bounds contain it, across the whole covered range.
func TestHistBucketInvariants(t *testing.T) {
	values := []int64{0, 1, 7, 8, 9, 15, 16, 17, 255, 256, 1000, 1e6, 1e9, 1e12, 1 << histMaxExp}
	for _, v := range values {
		idx := histBucket(v)
		if idx < 0 || idx >= HistBuckets {
			t.Fatalf("histBucket(%d) = %d out of range", v, idx)
		}
		upper := histUpper(idx)
		if v > upper {
			t.Errorf("value %d above its bucket upper %d (idx %d)", v, upper, idx)
		}
		if idx > 0 && v <= histUpper(idx-1) {
			t.Errorf("value %d not above previous bucket upper %d (idx %d)", v, histUpper(idx-1), idx)
		}
	}
	// Clamp: beyond the covered range everything lands in the last bucket.
	if got := histBucket(1 << 50); got != HistBuckets-1 {
		t.Errorf("histBucket(2^50) = %d, want last bucket %d", got, HistBuckets-1)
	}
	// Monotone upper bounds.
	for i := 1; i < HistBuckets; i++ {
		if histUpper(i) <= histUpper(i-1) {
			t.Fatalf("histUpper not monotone at %d", i)
		}
	}
}

func TestHistEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Error("nil histogram must read as empty")
	}
	h := &Histogram{}
	if h.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
}

// TestHistConcurrentRecording hammers one histogram from many goroutines —
// run under -race this is the concurrency proof.
func TestHistConcurrentRecording(t *testing.T) {
	rec := New()
	h := rec.Hist(0, "conc")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
				rec.Observe(1, "conc", time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("Count = %d, want %d", h.Count(), workers*per)
	}
	if rec.Hist(1, "conc").Count() != workers*per {
		t.Errorf("recorder-registry count = %d, want %d", rec.Hist(1, "conc").Count(), workers*per)
	}
}

// TestHistObserveZeroAllocs is the bench guard: recording into a histogram
// must not allocate in steady state.
func TestHistObserveZeroAllocs(t *testing.T) {
	h := &Histogram{}
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(123456 * time.Nanosecond)
	}); allocs != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", allocs)
	}
	rec := New()
	cached := rec.Hist(3, "steady")
	if allocs := testing.AllocsPerRun(1000, func() {
		cached.Observe(time.Millisecond)
	}); allocs != 0 {
		t.Errorf("cached recorder histogram allocates %v/op, want 0", allocs)
	}
}

func TestHistSnapshotMergeQuantile(t *testing.T) {
	rec := New()
	for r := 0; r < 2; r++ {
		h := rec.Hist(r, "lat")
		for i := 0; i < 50; i++ {
			h.Observe(time.Duration(1+r*100) * time.Microsecond)
		}
	}
	// Merge the two ranks' snapshots and check the median splits them.
	dense := make([]int64, HistBuckets)
	var total int64
	for _, k := range []HistKey{{0, "lat"}, {1, "lat"}} {
		st := rec.Hists()[k].Snapshot("lat")
		total += histMerge(dense, st)
	}
	if total != 100 {
		t.Fatalf("merged %d observations, want 100", total)
	}
	p25 := bucketQuantile(dense, total, 0.25)
	p75 := bucketQuantile(dense, total, 0.75)
	if p25 >= 2*time.Microsecond || p75 < 100*time.Microsecond {
		t.Errorf("merged quantiles wrong: p25=%v p75=%v", p25, p75)
	}
	// QuantileAll agrees with the manual merge.
	qs := rec.QuantileAll("lat", 0.25, 0.75)
	if qs[0] != p25 || qs[1] != p75 {
		t.Errorf("QuantileAll = %v, want [%v %v]", qs, p25, p75)
	}
}

func TestSummaryCarriesHists(t *testing.T) {
	rec := New()
	end := rec.Span(1, PhaseEncode, CatCompute, 0)
	end()
	rec.Observe(1, HistSessionRTT, 5*time.Millisecond)
	s := rec.Summary(1)
	names := map[string]bool{}
	for _, h := range s.Hists {
		names[h.Name] = true
		if h.Count <= 0 || len(h.Buckets) == 0 {
			t.Errorf("hist %q shipped empty: %+v", h.Name, h)
		}
	}
	if !names[PhaseEncode] || !names[HistSessionRTT] {
		t.Errorf("summary hists missing entries: %v", names)
	}
	if other := rec.Summary(0); len(other.Hists) != 0 {
		t.Errorf("rank 0 summary must not carry rank 1 hists: %+v", other.Hists)
	}
}
