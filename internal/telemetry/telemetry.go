// Package telemetry is the runtime observability substrate of the real
// composition pipeline: a lightweight, concurrency-safe span recorder and
// counter registry shared by the compositor, the transports and the
// binaries. A nil *Recorder disables recording everywhere — every method is
// nil-receiver safe — so the hot path pays a single pointer test when
// observability is off.
//
// Spans carry (rank, phase, category, step) plus timestamps relative to the
// recorder epoch; internal/trace renders them as Chrome trace-event JSON
// (chrome://tracing, Perfetto) or as ASCII Gantt charts. Counters carry
// (rank, step, name) so per-step byte and message tallies can be aggregated
// across ranks at rank 0 (see Summary, StepTable, GatherSummaries) and
// exported live in Prometheus text format (see WriteMetrics and Mux).
package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Span categories, mapped to trace rows: network spans share a rank's
// network engine row, compute spans its compute engine row.
const (
	CatNetwork = "network"
	CatCompute = "compute"
)

// Phase names of the instrumented pipeline. Step-scoped phases carry the
// 0-based composition step; whole-run phases use StepNone.
const (
	PhaseRender = "render" // shear-warp rendering of the local partial
	PhaseEncode = "encode" // wire-codec compression of outgoing blocks
	PhaseSend   = "send"   // handing frames to the fabric
	PhaseRecv   = "recv"   // waiting for + receiving inbound blocks
	PhaseDecode = "decode" // wire-codec decompression of inbound blocks
	PhaseMerge  = "merge"  // depth-ordered over-compositing
	PhaseGather = "gather" // final-block gather to the root
	PhaseWarp   = "warp"   // final image warp on the root

	PhaseReplicate = "replicate" // buddy replication exchange before step 1
	PhaseAgree     = "agree"     // membership agreement rounds
	PhaseRecover   = "recover"   // a recovery re-execution epoch
	PhaseJoin      = "join"      // spare rejoin: hello drain, join agreement, admission
	PhaseXfer      = "xfer"      // merkle-verified state transfer (stream or verify side)
	PhaseScrub     = "scrub"     // replica scrub-and-repair exchange

	// PhaseTile is one tile's full pipelined state machine (stage through
	// gather) on one rank; the span's step field carries the tile index, so
	// a trace shows which tiles were in flight concurrently — and whether
	// composition overlapped the render spans.
	PhaseTile = "tile"
)

// Counter names recorded by the instrumented pipeline.
const (
	CtrMsgs             = "msgs"              // block messages sent (per step)
	CtrRawBytes         = "raw_bytes"         // payload bytes before compression (per step)
	CtrWireBytes        = "wire_bytes"        // payload bytes after compression (per step)
	CtrOverPixels       = "over_pixels"       // pixels through the over kernel (per step)
	CtrDeadlineHits     = "deadline_hits"     // receives that hit their deadline
	CtrMissingTransfers = "missing_transfers" // scheduled messages that never arrived
	CtrCommMsgsSent     = "comm_msgs_sent"    // fabric totals, from comm.Counters
	CtrCommBytesSent    = "comm_bytes_sent"
	CtrCommMsgsRecv     = "comm_msgs_recv"
	CtrCommBytesRecv    = "comm_bytes_recv"
	CtrRetransmissions  = "retransmissions" // fault-injection resend attempts
	CtrMsgsLost         = "msgs_lost"       // messages lost after exhausting resends
	CtrCRCRejects       = "crc_rejects"     // inbound frames discarded by checksum
	CtrCorruptInjected  = "corrupt_injected"
	CtrDialAttempts     = "tcp_dial_attempts" // mesh setup dials (incl. retries)
	CtrPeerFailures     = "tcp_peer_failures" // connections poisoned mid-run

	CtrReconnects       = "reconnects"         // sessions transparently re-established mid-run
	CtrReplayedFrames   = "replayed_frames"    // unacked data frames retransmitted after a resume
	CtrDupFramesDropped = "dup_frames_dropped" // replayed frames already delivered, dropped by the dedup window
	CtrAcksSent         = "acks_sent"          // standalone cumulative-ack frames written
	CtrHeartbeats       = "heartbeats"         // idle-link heartbeat frames written

	CtrReplicaMsgs      = "replica_msgs"       // buddy replica messages sent
	CtrReplicaRawBytes  = "replica_raw_bytes"  // replica payload bytes before compression
	CtrReplicaWireBytes = "replica_wire_bytes" // replica payload bytes after compression
	CtrFailNotices      = "fail_notices"       // FAILED notices broadcast by this rank
	CtrRecoveryEpochs   = "recovery_epochs"    // composition epochs re-executed after agreement
	CtrRecoveredRanks   = "recovered_ranks"    // dead ranks whose layers were recovered from replicas

	CtrRejoins              = "rejoins"                // spare ranks revived into the mesh
	CtrRejoinVerifiedChunks = "rejoin_verified_chunks" // state-transfer chunks verified against the certified root
	CtrRejoinRejectedChunks = "rejoin_rejected_chunks" // state-transfer chunks rejected (corrupt or stale)
	CtrScrubOK              = "scrub_ok"               // replica scrubs that matched their fingerprint
	CtrScrubRepaired        = "scrub_repaired"         // corrupt replicas repaired from the live copy
	CtrScrubFailed          = "scrub_failed"           // corrupt replicas whose repair also failed

	CtrPoolHit   = "pool_hit"   // buffer-pool gets served from a free list
	CtrPoolMiss  = "pool_miss"  // buffer-pool gets that had to allocate
	CtrPoolBytes = "pool_bytes" // bytes served from recycled buffers
	CtrPoolDrop  = "pool_drop"  // recyclable puts rejected by a full free list

	CtrTilesDone       = "tiles_done"        // pipelined tiles fully processed on this rank
	CtrPipeInflightMax = "pipe_inflight_max" // peak tiles simultaneously in flight on this rank
	CtrCreditsGranted  = "credits_granted"   // progressive-gather credits the root granted
	CtrCreditWaits     = "credit_waits"      // gather sends that blocked on a credit
	CtrPartialTiles    = "partial_tiles"     // completed tiles delivered progressively at the root

	CtrHedgeRequests     = "hedge_requests"     // speculative replica requests issued for overdue transfers
	CtrHedgeWins         = "hedge_wins"         // transfers satisfied by a hedged replica before the original
	CtrHedgeWasted       = "hedge_wasted"       // hedged replicas that lost the race to the original
	CtrHedgeServed       = "hedge_served"       // replica reconstructions served to a hedging peer
	CtrDeadlineGrace     = "deadline_grace"     // receive deadlines extended by the health gate (brownout, not death)
	CtrPeerGray          = "peer_gray"          // peers whose health score crossed the gray threshold
	CtrHealthEscalations = "health_escalations" // gray peers escalated to the failure-agreement path
	CtrPartialDrops      = "partial_drops"      // OnPartial frames dropped by a full delivery buffer

	CtrReqAdmitted = "requests_admitted" // render requests that acquired a slot
	CtrReqShed     = "requests_shed"     // render requests rejected by admission control
	CtrReqQueued   = "requests_queued"   // admitted requests that waited in the admission queue
)

// StepNone marks a span or counter that is not scoped to a composition step
// (render, warp, gather, run-level counters).
const StepNone = -1

// Span is one recorded phase execution on one rank.
type Span struct {
	Rank  int
	Name  string // a Phase* constant (or any caller-chosen label)
	Cat   string // CatNetwork or CatCompute
	Step  int    // 0-based composition step, or StepNone
	Start time.Duration
	End   time.Duration
}

// CounterKey identifies one counter cell.
type CounterKey struct {
	Rank int
	Step int // 0-based composition step, or StepNone
	Name string
}

// Recorder collects spans and counters from any number of goroutines. The
// zero value is not usable; construct with New. All methods are safe on a
// nil receiver (they do nothing), which is how instrumented code runs with
// telemetry disabled.
type Recorder struct {
	epoch time.Time

	mu       sync.Mutex
	spans    []Span
	counters map[CounterKey]int64
	flows    []Flow
	hists    map[HistKey]*Histogram

	flight flightRing
}

// New returns an empty recorder whose span clock starts now.
func New() *Recorder {
	return &Recorder{
		epoch:    time.Now(),
		counters: make(map[CounterKey]int64),
		hists:    make(map[HistKey]*Histogram),
	}
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Epoch is the instant span timestamps are relative to.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// nop is the shared no-op closure Span returns when recording is disabled,
// keeping the disabled path allocation-free.
var nop = func() {}

// Span starts a span now and returns the function that ends and records it.
// The returned closure must be called exactly once.
func (r *Recorder) Span(rank int, name, cat string, step int) func() {
	if r == nil {
		return nop
	}
	start := time.Since(r.epoch)
	return func() {
		end := time.Since(r.epoch)
		r.mu.Lock()
		r.spans = append(r.spans, Span{Rank: rank, Name: name, Cat: cat, Step: step, Start: start, End: end})
		h := r.histLocked(rank, name)
		r.mu.Unlock()
		// Every span feeds the per-(rank, phase) duration histogram, so
		// /metrics and the gathered StepTable report latency distributions,
		// not just sums.
		h.Observe(end - start)
	}
}

// Flow is one endpoint of a cross-rank message: the send point on the
// origin rank or the receive point on the consumer. Matching IDs stitch a
// causal edge between the two ranks' timelines (Chrome-trace flow events).
type Flow struct {
	ID   uint64 // traceid flow identifier, unique per run
	Rank int    // rank recording this point
	Peer int    // the other side of the edge
	T    time.Duration
	Send bool // true at the send point, false at the receive point
	Step int  // 0-based composition step, or StepNone
	Tile int  // tile index, or -1
}

// FlowSend records the send point of a message flow (and its flight-ring
// echo). Called by the fabrics at the hand-off into the wire or mailbox.
func (r *Recorder) FlowSend(rank, peer int, id uint64, step, tile int) {
	r.flowPoint(rank, peer, id, step, tile, true)
}

// FlowRecv records the receive point of a message flow: called at the comm
// Recv boundary, so the flow lands inside the application's receive span
// and deduplicated frames never produce a phantom edge.
func (r *Recorder) FlowRecv(rank, peer int, id uint64, step, tile int) {
	r.flowPoint(rank, peer, id, step, tile, false)
}

func (r *Recorder) flowPoint(rank, peer int, id uint64, step, tile int, send bool) {
	if r == nil {
		return
	}
	t := time.Since(r.epoch)
	r.mu.Lock()
	r.flows = append(r.flows, Flow{ID: id, Rank: rank, Peer: peer, T: t, Send: send, Step: step, Tile: tile})
	r.mu.Unlock()
	kind := FlightRecv
	if send {
		kind = FlightSend
	}
	r.Flight(rank, kind, step, tile, peer, "")
}

// Flows returns a copy of every recorded flow point, ordered by time (ties
// by ID, send before receive) so output is deterministic.
func (r *Recorder) Flows() []Flow {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Flow, len(r.flows))
	copy(out, r.flows)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Send && !out[j].Send
	})
	return out
}

// Add bumps a run-level (step-less) counter.
func (r *Recorder) Add(rank int, name string, v int64) { r.AddStep(rank, StepNone, name, v) }

// AddStep bumps a per-step counter.
func (r *Recorder) AddStep(rank, step int, name string, v int64) {
	if r == nil || v == 0 {
		return
	}
	r.mu.Lock()
	r.counters[CounterKey{Rank: rank, Step: step, Name: name}] += v
	r.mu.Unlock()
}

// Spans returns a copy of every recorded span, ordered by start time (ties
// by rank, then name) so output is deterministic.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Counters returns a copy of the counter registry.
func (r *Recorder) Counters() map[CounterKey]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[CounterKey]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// PhaseStat aggregates the spans of one (step, phase) on one rank.
type PhaseStat struct {
	Step  int    `json:"step"`
	Name  string `json:"name"`
	Nanos int64  `json:"nanos"`
	Count int64  `json:"count"`
}

// CounterStat is one counter cell of a summary.
type CounterStat struct {
	Step  int    `json:"step"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Summary is one rank's portable telemetry digest: small enough to ship
// through a comm.Gather to rank 0, complete enough to rebuild the per-step
// timing/bytes table there.
type Summary struct {
	Rank     int           `json:"rank"`
	Phases   []PhaseStat   `json:"phases"`
	Counters []CounterStat `json:"counters"`
	Hists    []HistStat    `json:"hists,omitempty"`
}

// Summary digests the given rank's spans and counters. On a shared
// in-process recorder each rank extracts only its own rows, so the summary
// a rank ships through a gather never double-counts its neighbours.
func (r *Recorder) Summary(rank int) Summary {
	s := Summary{Rank: rank}
	if r == nil {
		return s
	}
	r.mu.Lock()
	type pk struct {
		step int
		name string
	}
	phases := make(map[pk]*PhaseStat)
	for _, sp := range r.spans {
		if sp.Rank != rank {
			continue
		}
		k := pk{sp.Step, sp.Name}
		st := phases[k]
		if st == nil {
			st = &PhaseStat{Step: sp.Step, Name: sp.Name}
			phases[k] = st
		}
		st.Nanos += int64(sp.End - sp.Start)
		st.Count++
	}
	for k, v := range r.counters {
		if k.Rank != rank {
			continue
		}
		s.Counters = append(s.Counters, CounterStat{Step: k.Step, Name: k.Name, Value: v})
	}
	hists := make(map[string]*Histogram)
	for k, h := range r.hists {
		if k.Rank == rank {
			hists[k.Name] = h
		}
	}
	r.mu.Unlock()
	for name, h := range hists {
		if st := h.Snapshot(name); st.Count > 0 {
			s.Hists = append(s.Hists, st)
		}
	}
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	for _, st := range phases {
		s.Phases = append(s.Phases, *st)
	}
	sort.Slice(s.Phases, func(i, j int) bool {
		if s.Phases[i].Step != s.Phases[j].Step {
			return s.Phases[i].Step < s.Phases[j].Step
		}
		return s.Phases[i].Name < s.Phases[j].Name
	})
	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Step != s.Counters[j].Step {
			return s.Counters[i].Step < s.Counters[j].Step
		}
		return s.Counters[i].Name < s.Counters[j].Name
	})
	return s
}

// Summaries digests every rank in [0, p) of a shared recorder — the
// in-process equivalent of gathering each rank's Summary.
func (r *Recorder) Summaries(p int) []Summary {
	out := make([]Summary, p)
	for rank := 0; rank < p; rank++ {
		out[rank] = r.Summary(rank)
	}
	return out
}
