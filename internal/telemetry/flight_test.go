package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestFlightRingBasic(t *testing.T) {
	rec := New()
	rec.Flight(0, FlightTile, 2, 5, -1, "claimed")
	rec.Flight(1, FlightSend, StepNone, -1, 0, "")
	events := rec.FlightEvents()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Seq != 0 || events[1].Seq != 1 {
		t.Errorf("sequence order wrong: %+v", events)
	}
	e := events[0]
	if e.Rank != 0 || e.Kind != FlightTile || e.Step != 2 || e.Tile != 5 || e.Note != "claimed" {
		t.Errorf("event fields wrong: %+v", e)
	}
}

// TestFlightRingWrap fills the ring past capacity and checks only the most
// recent FlightCap events survive, still in causal order.
func TestFlightRingWrap(t *testing.T) {
	rec := New()
	total := FlightCap + 100
	for i := 0; i < total; i++ {
		rec.Flight(i%4, FlightRecv, i, -1, -1, "")
	}
	events := rec.FlightEvents()
	if len(events) != FlightCap {
		t.Fatalf("got %d events, want %d", len(events), FlightCap)
	}
	for i, e := range events {
		wantSeq := uint64(total - FlightCap + i)
		if e.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Step != int(wantSeq) {
			t.Fatalf("event %d payload mismatch: step %d, want %d", i, e.Step, wantSeq)
		}
	}
}

func TestFlightDumpFormat(t *testing.T) {
	rec := New()
	if rec.FlightDump() != "" {
		t.Error("empty ring must dump empty")
	}
	rec.Flight(2, FlightCreditWait, StepNone, 7, 0, "")
	rec.Flight(0, FlightEpoch, StepNone, -1, -1, "attempt aborted")
	d := rec.FlightDump()
	for _, want := range []string{"flight recorder: last 2 of 2 event(s)", "credit-wait", "tile=7", "epoch", "attempt aborted", "r2", "r0"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestFlightNilSafe(t *testing.T) {
	var rec *Recorder
	rec.Flight(0, FlightSend, 0, 0, 0, "x") // must not panic
	if rec.FlightEvents() != nil || rec.FlightDump() != "" {
		t.Error("nil recorder must be empty")
	}
	var sb strings.Builder
	if err := rec.WriteFlight(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no events") {
		t.Errorf("nil WriteFlight output: %q", sb.String())
	}
}

// TestFlightConcurrentAppend hammers the ring under -race.
func TestFlightConcurrentAppend(t *testing.T) {
	rec := New()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec.Flight(w, FlightSend, i, -1, (w+1)%workers, "")
			}
		}(w)
	}
	wg.Wait()
	events := rec.FlightEvents()
	if len(events) != FlightCap {
		t.Fatalf("got %d events, want full ring %d", len(events), FlightCap)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq at %d: %d after %d", i, events[i].Seq, events[i-1].Seq)
		}
	}
}

// TestFlightAppendZeroAllocs is the bench guard: appending must not
// allocate in steady state.
func TestFlightAppendZeroAllocs(t *testing.T) {
	rec := New()
	if allocs := testing.AllocsPerRun(1000, func() {
		rec.Flight(1, FlightTile, 3, 4, -1, "step")
	}); allocs != 0 {
		t.Errorf("Flight allocates %v/op, want 0", allocs)
	}
}

func TestDumpFlightOnPanic(t *testing.T) {
	rec := New()
	rec.Flight(0, FlightStall, StepNone, -1, -1, "before crash")
	var sb strings.Builder
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic must propagate")
			}
		}()
		defer rec.DumpFlightOnPanic(&sb)
		panic("boom")
	}()
	out := sb.String()
	if !strings.Contains(out, "boom") || !strings.Contains(out, "before crash") {
		t.Errorf("panic dump missing content:\n%s", out)
	}
}
