// The flight recorder: a fixed-size ring of recent structured events —
// frame sends and receives, session reconnects, tile state transitions,
// recovery epochs, credit waits — appended from the hot paths at the cost
// of one short mutex hold and a struct copy (zero allocations), and dumped
// in causal (sequence) order when something goes wrong: a FailFast stall, a
// SIGQUIT, a panic, or a recovery trigger. It is the post-mortem black box
// of a chaos run: the table and the trace say what the run looked like, the
// flight dump says what the last milliseconds did.
package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// FlightCap is the ring capacity: enough to hold the closing window of a
// multi-rank pipelined step without measurable memory cost.
const FlightCap = 512

// FlightKind classifies one flight-recorder event.
type FlightKind uint8

const (
	FlightSend        FlightKind = iota + 1 // a message handed to the fabric
	FlightRecv                              // a message consumed from the fabric
	FlightReconnect                         // a session resumed on a fresh connection
	FlightSessionDown                       // a session failed past recovery
	FlightTile                              // a pipelined tile state transition
	FlightCreditWait                        // a gather send blocked on a credit
	FlightEpoch                             // a recovery epoch transition
	FlightStall                             // a stall/deadline diagnosis
	FlightHedge                             // a speculative replica request, reply or race outcome
	FlightGray                              // a peer-health transition (gray, recovered, escalated)
	FlightAdmit                             // an admission-control decision (shed, queued, admitted)
	FlightJoin                              // a spare rejoin event (hello, admit, transfer, revive, timeout)
)

// String names the kind for dumps.
func (k FlightKind) String() string {
	switch k {
	case FlightSend:
		return "send"
	case FlightRecv:
		return "recv"
	case FlightReconnect:
		return "reconnect"
	case FlightSessionDown:
		return "session-down"
	case FlightTile:
		return "tile"
	case FlightCreditWait:
		return "credit-wait"
	case FlightEpoch:
		return "epoch"
	case FlightStall:
		return "stall"
	case FlightHedge:
		return "hedge"
	case FlightGray:
		return "gray"
	case FlightAdmit:
		return "admit"
	case FlightJoin:
		return "join"
	default:
		return "unknown"
	}
}

// FlightEvent is one recorded event. Note must be a constant (or otherwise
// long-lived) string: the recorder stores it without copying.
type FlightEvent struct {
	Seq  uint64        // global append order — the causal order of the dump
	T    time.Duration // since the recorder epoch
	Rank int
	Kind FlightKind
	Step int // 0-based step, or StepNone
	Tile int // tile index, or -1
	Peer int // peer rank, or -1
	Note string
}

// flightRing is the fixed-capacity event ring.
type flightRing struct {
	mu  sync.Mutex
	seq uint64
	buf [FlightCap]FlightEvent
}

// Flight appends one event to the ring. Nil-safe and allocation-free.
func (r *Recorder) Flight(rank int, kind FlightKind, step, tile, peer int, note string) {
	if r == nil {
		return
	}
	t := time.Since(r.epoch)
	fr := &r.flight
	fr.mu.Lock()
	fr.buf[fr.seq%FlightCap] = FlightEvent{
		Seq: fr.seq, T: t, Rank: rank, Kind: kind,
		Step: step, Tile: tile, Peer: peer, Note: note,
	}
	fr.seq++
	fr.mu.Unlock()
}

// FlightEvents returns the ring's surviving events oldest-first.
func (r *Recorder) FlightEvents() []FlightEvent {
	if r == nil {
		return nil
	}
	fr := &r.flight
	fr.mu.Lock()
	defer fr.mu.Unlock()
	n := fr.seq
	if n > FlightCap {
		n = FlightCap
	}
	out := make([]FlightEvent, 0, n)
	start := uint64(0)
	if fr.seq > FlightCap {
		start = fr.seq - FlightCap
	}
	for s := start; s < fr.seq; s++ {
		out = append(out, fr.buf[s%FlightCap])
	}
	return out
}

// FlightDump renders the ring as the post-mortem text block: one line per
// event in causal order, with a header noting how much history survived.
func (r *Recorder) FlightDump() string {
	events := r.FlightEvents()
	if len(events) == 0 {
		return ""
	}
	var b strings.Builder
	total := events[len(events)-1].Seq + 1
	fmt.Fprintf(&b, "flight recorder: last %d of %d event(s):\n", len(events), total)
	for _, e := range events {
		writeFlightLine(&b, e)
	}
	return strings.TrimRight(b.String(), "\n")
}

// WriteFlight writes the dump (with a trailing newline) to w — the SIGQUIT
// and panic hooks' sink.
func (r *Recorder) WriteFlight(w io.Writer) error {
	d := r.FlightDump()
	if d == "" {
		_, err := io.WriteString(w, "flight recorder: no events recorded\n")
		return err
	}
	_, err := io.WriteString(w, d+"\n")
	return err
}

// DumpFlightOnPanic is a deferred panic hook: it writes the flight dump to
// w before re-panicking, so a crash carries its black box. Use as
//
//	defer rec.DumpFlightOnPanic(os.Stderr)
func (r *Recorder) DumpFlightOnPanic(w io.Writer) {
	if p := recover(); p != nil {
		fmt.Fprintf(w, "panic: %v\n", p)
		if r != nil {
			_ = r.WriteFlight(w)
		}
		panic(p)
	}
}

func writeFlightLine(b *strings.Builder, e FlightEvent) {
	fmt.Fprintf(b, "  #%d %10.3fms r%d %-12s", e.Seq, float64(e.T)/1e6, e.Rank, e.Kind)
	if e.Step != StepNone {
		fmt.Fprintf(b, " step=%d", e.Step)
	}
	if e.Tile >= 0 {
		fmt.Fprintf(b, " tile=%d", e.Tile)
	}
	if e.Peer >= 0 {
		fmt.Fprintf(b, " peer=%d", e.Peer)
	}
	if e.Note != "" {
		fmt.Fprintf(b, " %s", e.Note)
	}
	b.WriteByte('\n')
}
