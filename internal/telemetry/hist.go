// Allocation-free log-bucketed latency histograms. A Histogram is a fixed
// array of atomic counters over log-linear duration buckets: below
// histLinearMax nanoseconds the buckets are exact; above, each power-of-two
// octave splits into histSubBuckets sub-buckets, bounding the relative
// quantile error at 1/histSubBuckets (12.5%) while keeping Observe at a
// couple of atomic adds — safe from any goroutine, zero allocations, no
// locks. Quantiles are computed on demand by a cumulative bucket scan.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histSubShift is log2 of the sub-buckets per octave.
	histSubShift = 3
	// histSubBuckets splits each power-of-two octave of the value range.
	histSubBuckets = 1 << histSubShift
	// histLinearMax bounds the exact low range: values in [0, histLinearMax)
	// nanoseconds each get their own bucket.
	histLinearMax = histSubBuckets
	// histMaxExp caps the covered range at 2^histMaxExp nanoseconds
	// (~18 minutes); larger observations clamp into the last bucket.
	histMaxExp = 40
	// HistBuckets is the total bucket count of a Histogram.
	HistBuckets = histLinearMax + (histMaxExp-histSubShift+1)*histSubBuckets
)

// Histogram is a fixed-size concurrent latency histogram. The zero value is
// ready to use; all methods are safe on a nil receiver.
type Histogram struct {
	counts [HistBuckets]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// histBucket maps a non-negative nanosecond value to its bucket index.
func histBucket(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	u := uint64(ns)
	if u < histLinearMax {
		return int(u)
	}
	exp := bits.Len64(u) - 1
	if exp > histMaxExp {
		return HistBuckets - 1
	}
	sub := (u >> (uint(exp) - histSubShift)) & (histSubBuckets - 1)
	return histLinearMax + (exp-histSubShift)*histSubBuckets + int(sub)
}

// histUpper is the inclusive upper bound (in nanoseconds) of a bucket — the
// value quantile scans report for any observation landing in it.
func histUpper(idx int) int64 {
	if idx < histLinearMax {
		return int64(idx)
	}
	rel := idx - histLinearMax
	exp := histSubShift + rel/histSubBuckets
	sub := rel % histSubBuckets
	width := int64(1) << (uint(exp) - histSubShift)
	lower := int64(1)<<uint(exp) + int64(sub)*width
	return lower + width - 1
}

// Observe records one duration. Nil-safe, allocation-free, lock-free.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	h.counts[histBucket(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// Count is the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum is the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// observation (q in [0,1]); 0 for an empty histogram. The result
// overestimates the true quantile by at most one bucket width.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	var counts [HistBuckets]int64
	total := int64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return bucketQuantile(counts[:], total, q)
}

// bucketQuantile scans a bucket-count vector for the q-quantile upper bound.
func bucketQuantile(counts []int64, total int64, q float64) time.Duration {
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	cum := int64(0)
	for i, c := range counts {
		cum += c
		if cum >= target {
			return time.Duration(histUpper(i))
		}
	}
	return time.Duration(histUpper(len(counts) - 1))
}

// HistBin is one non-empty bucket of a portable histogram snapshot.
type HistBin struct {
	Idx int   `json:"i"`
	N   int64 `json:"n"`
}

// HistStat is a portable histogram digest: sparse bucket counts plus the
// running sum, small enough to ship through GatherSummaries and exact
// enough to merge bucket-wise across ranks at rank 0.
type HistStat struct {
	Name    string    `json:"name"`
	Count   int64     `json:"count"`
	SumNs   int64     `json:"sum_ns"`
	Buckets []HistBin `json:"buckets,omitempty"`
}

// Snapshot digests the histogram into its portable form.
func (h *Histogram) Snapshot(name string) HistStat {
	st := HistStat{Name: name}
	if h == nil {
		return st
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			st.Buckets = append(st.Buckets, HistBin{Idx: i, N: n})
			st.Count += n
		}
	}
	st.SumNs = h.sum.Load()
	return st
}

// Merge adds a portable snapshot's buckets into the histogram — the inverse
// of Snapshot, used to seed estimators from previously gathered digests.
// Out-of-range bucket indices are ignored. Nil-safe.
func (h *Histogram) Merge(st HistStat) {
	if h == nil {
		return
	}
	for _, b := range st.Buckets {
		if b.Idx >= 0 && b.Idx < HistBuckets && b.N > 0 {
			h.counts[b.Idx].Add(b.N)
			h.count.Add(b.N)
			h.sum.Add(b.N * histUpper(b.Idx))
		}
	}
}

// histMerge accumulates a snapshot into a dense bucket vector, returning
// the added observation count.
func histMerge(dense []int64, st HistStat) int64 {
	var n int64
	for _, b := range st.Buckets {
		if b.Idx >= 0 && b.Idx < len(dense) {
			dense[b.Idx] += b.N
			n += b.N
		}
	}
	return n
}

// Histogram names recorded by the instrumented pipeline. Per-phase duration
// histograms reuse the Phase* constants as names; the names below cover the
// non-phase latency distributions.
const (
	HistSessionRTT     = "session_rtt"     // tcpnet data-frame send -> cumulative ack
	HistPartialLatency = "partial_latency" // pipelined run start -> OnPartial tile delivery
	HistTileLatency    = "tile_latency"    // pipelined tile claim -> fully composited
	HistAdmitWait      = "admit_wait"      // admission queue entry -> slot acquired
	HistRenderLatency  = "render_latency"  // admitted request start -> render complete
)

// HistKey identifies one histogram in a recorder's registry.
type HistKey struct {
	Rank int
	Name string
}

// Hist returns (creating on first use) the named histogram for a rank. The
// returned pointer may be retained and observed from any goroutine; nil is
// returned from a nil recorder and is safe to Observe.
func (r *Recorder) Hist(rank int, name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	h := r.histLocked(rank, name)
	r.mu.Unlock()
	return h
}

// histLocked is Hist under an already-held r.mu.
func (r *Recorder) histLocked(rank int, name string) *Histogram {
	k := HistKey{Rank: rank, Name: name}
	h := r.hists[k]
	if h == nil {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// Observe records one duration into the named histogram of a rank.
func (r *Recorder) Observe(rank int, name string, d time.Duration) {
	r.Hist(rank, name).Observe(d)
}

// Hists returns a snapshot of the histogram registry: for each (rank, name)
// the live histogram pointer. Intended for exporters; Observe calls racing
// the export are simply counted or not.
func (r *Recorder) Hists() map[HistKey]*Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[HistKey]*Histogram, len(r.hists))
	for k, h := range r.hists {
		out[k] = h
	}
	return out
}

// QuantileAll merges the named histogram across every rank and returns the
// requested quantiles; zero durations when nothing was observed.
func (r *Recorder) QuantileAll(name string, qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	if r == nil {
		return out
	}
	dense := make([]int64, HistBuckets)
	var total int64
	for k, h := range r.Hists() {
		if k.Name != name {
			continue
		}
		for i := range h.counts {
			if n := h.counts[i].Load(); n > 0 {
				dense[i] += n
				total += n
			}
		}
	}
	for i, q := range qs {
		out[i] = bucketQuantile(dense, total, q)
	}
	return out
}
