// External test package: these tests drive GatherSummaries over the real
// in-process fabric, and inproc itself imports telemetry (for causal flow
// recording), so an internal test package would be an import cycle.
package telemetry_test

import (
	"sync"
	"testing"
	"time"

	"rtcomp/internal/comm"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/transport/inproc"
)

// GatherSummaries is a collective: run it on a real in-process fabric and
// check root reassembles every rank's digest.
func TestGatherSummariesInproc(t *testing.T) {
	const p = 4
	r := telemetry.New()
	var mu sync.Mutex
	var rootGot []telemetry.Summary
	otherGotNil := true
	err := inproc.Run(p, func(c comm.Comm) error {
		rank := c.Rank()
		r.AddStep(rank, 0, telemetry.CtrMsgs, int64(rank+1))
		var seq comm.Sequencer
		got, err := telemetry.GatherSummaries(c, &seq, 0, r.Summary(rank), 0)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if rank == 0 {
			rootGot = got
		} else if got != nil {
			otherGotNil = false
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !otherGotNil {
		t.Fatal("non-root rank received summaries")
	}
	if len(rootGot) != p {
		t.Fatalf("root got %d summaries, want %d", len(rootGot), p)
	}
	for rank, s := range rootGot {
		if s.Rank != rank {
			t.Fatalf("slot %d holds rank %d", rank, s.Rank)
		}
		if len(s.Counters) != 1 || s.Counters[0].Value != int64(rank+1) {
			t.Fatalf("rank %d counters: %+v", rank, s.Counters)
		}
	}
}

// A dead rank must not wedge the teardown summary gather: with a timeout
// set, the root returns the survivors' partial table plus a recoverable
// error, within a hard watchdog.
func TestGatherSummariesDeadRankNoHang(t *testing.T) {
	const p, dead = 4, 3
	r := telemetry.New()
	var mu sync.Mutex
	var rootGot []telemetry.Summary
	var rootErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		inproc.Run(p, func(c comm.Comm) error {
			rank := c.Rank()
			if rank == dead {
				// Dies before the gather; its endpoint closes on return.
				return nil
			}
			r.AddStep(rank, 0, telemetry.CtrMsgs, int64(rank+1))
			var seq comm.Sequencer
			got, err := telemetry.GatherSummaries(c, &seq, 0, r.Summary(rank), 200*time.Millisecond)
			if rank == 0 {
				mu.Lock()
				rootGot, rootErr = got, err
				mu.Unlock()
			}
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("summary gather HUNG on a dead rank despite the timeout")
	}
	if rootErr == nil || !comm.IsRecoverable(rootErr) {
		t.Fatalf("root error = %v, want a recoverable gather error", rootErr)
	}
	if len(rootGot) != p {
		t.Fatalf("root got %d summary slots, want %d", len(rootGot), p)
	}
	for _, rank := range []int{0, 1, 2} {
		if len(rootGot[rank].Counters) != 1 || rootGot[rank].Counters[0].Value != int64(rank+1) {
			t.Fatalf("survivor rank %d summary lost: %+v", rank, rootGot[rank])
		}
	}
	if len(rootGot[dead].Counters) != 0 {
		t.Fatalf("dead rank produced a summary from beyond: %+v", rootGot[dead])
	}
}

// The teardown gather at rank 0 must carry each rank's session-layer
// tallies, attributed to the right rank — the cross-rank view operators
// use to spot a flapping link.
func TestGatherSummariesCarrySessionCounters(t *testing.T) {
	const p = 3
	r := telemetry.New()
	var mu sync.Mutex
	var rootGot []telemetry.Summary
	err := inproc.Run(p, func(c comm.Comm) error {
		rank := c.Rank()
		r.Add(rank, telemetry.CtrReconnects, int64(rank))
		r.Add(rank, telemetry.CtrReplayedFrames, int64(100+rank))
		var seq comm.Sequencer
		got, err := telemetry.GatherSummaries(c, &seq, 0, r.Summary(rank), 0)
		if err != nil {
			return err
		}
		if rank == 0 {
			mu.Lock()
			rootGot = got
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rootGot) != p {
		t.Fatalf("root got %d summaries", len(rootGot))
	}
	for rank, s := range rootGot {
		vals := map[string]int64{}
		for _, c := range s.Counters {
			vals[c.Name] = c.Value
		}
		if rank > 0 && vals[telemetry.CtrReconnects] != int64(rank) {
			t.Errorf("rank %d reconnects = %d", rank, vals[telemetry.CtrReconnects])
		}
		if vals[telemetry.CtrReplayedFrames] != int64(100+rank) {
			t.Errorf("rank %d replayed = %d", rank, vals[telemetry.CtrReplayedFrames])
		}
	}
}
