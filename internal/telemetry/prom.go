package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteMetrics writes the recorder state in the Prometheus text exposition
// format (version 0.0.4): per-rank counter totals as
// rtcomp_<name>_total{rank="R"}, and per-rank per-phase span aggregates as
// rtcomp_phase_seconds_total / rtcomp_phase_spans_total with rank and phase
// labels. Output is sorted, so it is stable across scrapes.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "# telemetry disabled")
		return err
	}

	// Counter totals, aggregated over steps: metric name -> rank -> value.
	byName := map[string]map[int]int64{}
	for k, v := range r.Counters() {
		m := byName[k.Name]
		if m == nil {
			m = map[int]int64{}
			byName[k.Name] = m
		}
		m[k.Rank] += v
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		metric := "rtcomp_" + sanitizeMetric(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", metric); err != nil {
			return err
		}
		ranks := sortedRanks(byName[name])
		for _, rank := range ranks {
			if _, err := fmt.Fprintf(w, "%s{rank=\"%d\"} %d\n", metric, rank, byName[name][rank]); err != nil {
				return err
			}
		}
	}

	// Span aggregates: (rank, phase) -> total seconds and span count.
	type key struct {
		rank  int
		phase string
	}
	secs := map[key]float64{}
	count := map[key]int64{}
	for _, sp := range r.Spans() {
		k := key{sp.Rank, sp.Name}
		secs[k] += (sp.End - sp.Start).Seconds()
		count[k]++
	}
	keys := make([]key, 0, len(secs))
	for k := range secs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].phase != keys[j].phase {
			return keys[i].phase < keys[j].phase
		}
		return keys[i].rank < keys[j].rank
	})
	if len(keys) > 0 {
		if _, err := fmt.Fprintln(w, "# TYPE rtcomp_phase_seconds_total counter"); err != nil {
			return err
		}
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "rtcomp_phase_seconds_total{rank=\"%d\",phase=\"%s\"} %g\n",
				k.rank, escapeLabelValue(k.phase), secs[k]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "# TYPE rtcomp_phase_spans_total counter"); err != nil {
			return err
		}
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "rtcomp_phase_spans_total{rank=\"%d\",phase=\"%s\"} %d\n",
				k.rank, escapeLabelValue(k.phase), count[k]); err != nil {
				return err
			}
		}
	}

	return r.writeHistMetrics(w)
}

// writeHistMetrics exposes every recorded latency histogram twice: as a
// Prometheus histogram series (cumulative _bucket/_sum/_count, with only
// the buckets whose cumulative count changes — le values are the log-linear
// bucket upper bounds in seconds) and as pre-computed p50/p95/p99 gauges,
// so dashboards get quantiles without a PromQL histogram_quantile over 300
// buckets.
func (r *Recorder) writeHistMetrics(w io.Writer) error {
	hists := r.Hists()
	if len(hists) == 0 {
		return nil
	}
	keys := make([]HistKey, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Rank < keys[j].Rank
	})
	lastName := ""
	for _, k := range keys {
		st := hists[k].Snapshot(k.Name)
		if st.Count == 0 {
			continue
		}
		metric := "rtcomp_" + sanitizeMetric(k.Name) + "_seconds"
		if k.Name != lastName {
			lastName = k.Name
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", metric); err != nil {
				return err
			}
		}
		cum := int64(0)
		for _, b := range st.Buckets {
			cum += b.N
			if _, err := fmt.Fprintf(w, "%s_bucket{rank=\"%d\",le=\"%g\"} %d\n",
				metric, k.Rank, float64(histUpper(b.Idx))/1e9, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{rank=\"%d\",le=\"+Inf\"} %d\n", metric, k.Rank, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{rank=\"%d\"} %g\n", metric, k.Rank, float64(st.SumNs)/1e9); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{rank=\"%d\"} %d\n", metric, k.Rank, cum); err != nil {
			return err
		}
	}
	// Quantile gauges, one series per (name, rank, q).
	lastName = ""
	for _, k := range keys {
		h := hists[k]
		if h.Count() == 0 {
			continue
		}
		metric := "rtcomp_" + sanitizeMetric(k.Name) + "_quantile_seconds"
		if k.Name != lastName {
			lastName = k.Name
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", metric); err != nil {
				return err
			}
		}
		for _, q := range [...]float64{0.50, 0.95, 0.99} {
			if _, err := fmt.Fprintf(w, "%s{rank=\"%d\",quantile=\"%g\"} %g\n",
				metric, k.Rank, q, h.Quantile(q).Seconds()); err != nil {
				return err
			}
		}
	}
	return nil
}

// escapeLabelValue escapes a string for use inside a quoted Prometheus label
// value, where backslash, double-quote and newline must be escaped but every
// other character — including the dots of phase names like "recv.wait" — is
// legal and passes through verbatim. (The metric-name alphabet does not apply
// to label values; mapping them through sanitizeMetric would mangle the
// phase, e.g. "recv.wait" into "recv_wait".)
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// sanitizeMetric maps an arbitrary counter name onto the Prometheus metric
// name alphabet [a-zA-Z0-9_].
func sanitizeMetric(name string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			return c
		}
		return '_'
	}, name)
}

func sortedRanks(m map[int]int64) []int {
	out := make([]int, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}
