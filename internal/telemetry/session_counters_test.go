package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// sessionCounters is the set the reliable tcpnet session layer records;
// the tests below pin their names into the exported metric surface so a
// rename breaks loudly here rather than silently emptying a dashboard.
var sessionCounters = []string{
	CtrReconnects, CtrReplayedFrames, CtrDupFramesDropped, CtrAcksSent, CtrHeartbeats,
}

func TestWriteMetricsSessionCounters(t *testing.T) {
	r := New()
	for i, name := range sessionCounters {
		r.Add(0, name, int64(i+1))
		r.Add(1, name, int64(10*(i+1)))
	}
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE rtcomp_reconnects_total counter",
		`rtcomp_reconnects_total{rank="0"} 1`,
		`rtcomp_reconnects_total{rank="1"} 10`,
		`rtcomp_replayed_frames_total{rank="0"} 2`,
		`rtcomp_dup_frames_dropped_total{rank="1"} 30`,
		`rtcomp_acks_sent_total{rank="0"} 4`,
		`rtcomp_heartbeats_total{rank="1"} 50`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteMetricsSessionCountersAlongsideEscapedPhases(t *testing.T) {
	// Session counters share the exposition with span aggregates; a phase
	// label that needs escaping must not corrupt the combined output.
	r := New()
	r.Add(0, CtrReconnects, 1)
	r.Span(0, `resume "fast\path"`, CatNetwork, StepNone)()
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `rtcomp_reconnects_total{rank="0"} 1`) {
		t.Fatalf("session counter missing:\n%s", out)
	}
	if !strings.Contains(out, `phase="resume \"fast\\path\""`) {
		t.Fatalf("phase label not escaped:\n%s", out)
	}
}
