package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"rtcomp/internal/comm"
	"rtcomp/internal/transport/inproc"
)

// sessionCounters is the set the reliable tcpnet session layer records;
// the tests below pin their names into the exported metric surface so a
// rename breaks loudly here rather than silently emptying a dashboard.
var sessionCounters = []string{
	CtrReconnects, CtrReplayedFrames, CtrDupFramesDropped, CtrAcksSent, CtrHeartbeats,
}

func TestWriteMetricsSessionCounters(t *testing.T) {
	r := New()
	for i, name := range sessionCounters {
		r.Add(0, name, int64(i+1))
		r.Add(1, name, int64(10*(i+1)))
	}
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE rtcomp_reconnects_total counter",
		`rtcomp_reconnects_total{rank="0"} 1`,
		`rtcomp_reconnects_total{rank="1"} 10`,
		`rtcomp_replayed_frames_total{rank="0"} 2`,
		`rtcomp_dup_frames_dropped_total{rank="1"} 30`,
		`rtcomp_acks_sent_total{rank="0"} 4`,
		`rtcomp_heartbeats_total{rank="1"} 50`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteMetricsSessionCountersAlongsideEscapedPhases(t *testing.T) {
	// Session counters share the exposition with span aggregates; a phase
	// label that needs escaping must not corrupt the combined output.
	r := New()
	r.Add(0, CtrReconnects, 1)
	r.Span(0, `resume "fast\path"`, CatNetwork, StepNone)()
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `rtcomp_reconnects_total{rank="0"} 1`) {
		t.Fatalf("session counter missing:\n%s", out)
	}
	if !strings.Contains(out, `phase="resume \"fast\\path\""`) {
		t.Fatalf("phase label not escaped:\n%s", out)
	}
}

func TestGatherSummariesCarrySessionCounters(t *testing.T) {
	// The teardown gather at rank 0 must carry each rank's session-layer
	// tallies, attributed to the right rank — the cross-rank view operators
	// use to spot a flapping link.
	const p = 3
	r := New()
	var mu sync.Mutex
	var rootGot []Summary
	err := inproc.Run(p, func(c comm.Comm) error {
		rank := c.Rank()
		r.Add(rank, CtrReconnects, int64(rank))
		r.Add(rank, CtrReplayedFrames, int64(100+rank))
		var seq comm.Sequencer
		got, err := GatherSummaries(c, &seq, 0, r.Summary(rank), 0)
		if err != nil {
			return err
		}
		if rank == 0 {
			mu.Lock()
			rootGot = got
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rootGot) != p {
		t.Fatalf("root got %d summaries", len(rootGot))
	}
	for rank, s := range rootGot {
		vals := map[string]int64{}
		for _, c := range s.Counters {
			vals[c.Name] = c.Value
		}
		if rank > 0 && vals[CtrReconnects] != int64(rank) {
			t.Errorf("rank %d reconnects = %d", rank, vals[CtrReconnects])
		}
		if vals[CtrReplayedFrames] != int64(100+rank) {
			t.Errorf("rank %d replayed = %d", rank, vals[CtrReplayedFrames])
		}
	}
}
