package telemetry

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Mux returns the live debug surface for a recorder:
//
//	/metrics       Prometheus text exposition of counters, span totals and
//	               latency histograms (marked no-store — every scrape must
//	               see live values, never an intermediary's cache)
//	/debug/vars    expvar JSON (including the "rtcomp" telemetry snapshot)
//	/debug/flight  the flight recorder's recent structured events
//	/debug/pprof   the standard Go profiler endpoints, only when withPprof
//
// Mount it on its own -debug-addr listener (rtnode, where the profiler is
// wanted and the listener is operator-facing) or merge it into an existing
// serve mux (rtserve, where the frame listener should not expose CPU
// profiling to whoever can reach the viewer).
func Mux(r *Recorder, withPprof bool) *http.ServeMux {
	PublishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		r.WriteMetrics(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		if d := r.FlightDump(); d != "" {
			fmt.Fprintln(w, d)
		} else {
			fmt.Fprintln(w, "flight recorder: no events")
		}
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// NewServer wraps a handler in an http.Server with sane limits: a header
// read deadline so an idle connection cannot hold a goroutine forever, a
// write deadline generous enough for slow renders and 30-second pprof
// profiles, and a bounded header size. Both rtserve's main listener and the
// -debug-addr listeners use it instead of the timeout-less
// http.ListenAndServe.
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

var publishOnce sync.Once

// PublishExpvar publishes the recorder as the "rtcomp" expvar. The expvar
// registry forbids re-publishing a name, so only the first recorder of a
// process is published; later calls are no-ops.
func PublishExpvar(r *Recorder) {
	publishOnce.Do(func() {
		expvar.Publish("rtcomp", expvar.Func(func() any { return r.expvarSnapshot() }))
	})
}

// expvarSnapshot is the JSON-friendly view behind /debug/vars: counter
// totals and per-phase span seconds, both summed across ranks.
func (r *Recorder) expvarSnapshot() map[string]any {
	counters := map[string]int64{}
	for k, v := range r.Counters() {
		counters[k.Name] += v
	}
	phases := map[string]float64{}
	spans := 0
	for _, sp := range r.Spans() {
		phases[sp.Name] += (sp.End - sp.Start).Seconds()
		spans++
	}
	return map[string]any{
		"counters":      counters,
		"phase_seconds": phases,
		"spans":         spans,
	}
}
