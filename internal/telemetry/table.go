package telemetry

import (
	"fmt"
	"sort"

	"rtcomp/internal/stats"
)

// StepTable merges per-rank summaries into the per-step timing/bytes table
// printed at rank 0: one row per composition step with the phase durations
// summed across ranks, the message count, and the raw/wire byte volume with
// its compression ratio, plus a totals row. Whole-run phases (render,
// gather, warp) and run-level counters land in the footnotes.
func StepTable(summaries []Summary) *stats.Table {
	type agg struct {
		dur  map[string]int64 // phase name -> summed nanos
		ctr  map[string]int64 // counter name -> summed value
		seen bool
	}
	steps := map[int]*agg{}
	at := func(step int) *agg {
		a := steps[step]
		if a == nil {
			a = &agg{dur: map[string]int64{}, ctr: map[string]int64{}}
			steps[step] = a
		}
		return a
	}
	runDur := map[string]int64{} // whole-run phase -> max nanos across ranks
	runCtr := map[string]int64{} // run-level counter -> sum across ranks
	for _, s := range summaries {
		for _, ph := range s.Phases {
			if ph.Step == StepNone {
				if ph.Nanos > runDur[ph.Name] {
					runDur[ph.Name] = ph.Nanos
				}
				continue
			}
			a := at(ph.Step)
			a.dur[ph.Name] += ph.Nanos
			a.seen = true
		}
		for _, c := range s.Counters {
			if c.Step == StepNone {
				runCtr[c.Name] += c.Value
				continue
			}
			a := at(c.Step)
			a.ctr[c.Name] += c.Value
			a.seen = true
		}
	}

	order := make([]int, 0, len(steps))
	for si := range steps {
		order = append(order, si)
	}
	sort.Ints(order)

	t := &stats.Table{
		Title:   "per-step composition telemetry (phase seconds summed across ranks)",
		Headers: []string{"step", "encode", "send", "recv", "decode", "merge", "msgs", "raw", "wire", "ratio"},
	}
	secs := func(ns int64) string {
		if ns == 0 {
			return "-"
		}
		return stats.Seconds(float64(ns) / 1e9)
	}
	totDur := map[string]int64{}
	var totMsgs, totRaw, totWire int64
	for _, si := range order {
		a := steps[si]
		if !a.seen {
			continue
		}
		for _, ph := range []string{PhaseEncode, PhaseSend, PhaseRecv, PhaseDecode, PhaseMerge} {
			totDur[ph] += a.dur[ph]
		}
		totMsgs += a.ctr[CtrMsgs]
		totRaw += a.ctr[CtrRawBytes]
		totWire += a.ctr[CtrWireBytes]
		t.Add(fmt.Sprint(si+1),
			secs(a.dur[PhaseEncode]), secs(a.dur[PhaseSend]), secs(a.dur[PhaseRecv]),
			secs(a.dur[PhaseDecode]), secs(a.dur[PhaseMerge]),
			fmt.Sprint(a.ctr[CtrMsgs]),
			stats.IBytes(a.ctr[CtrRawBytes]), stats.IBytes(a.ctr[CtrWireBytes]),
			stats.Ratio(a.ctr[CtrRawBytes], a.ctr[CtrWireBytes]))
	}
	t.Add("all",
		secs(totDur[PhaseEncode]), secs(totDur[PhaseSend]), secs(totDur[PhaseRecv]),
		secs(totDur[PhaseDecode]), secs(totDur[PhaseMerge]),
		fmt.Sprint(totMsgs), stats.IBytes(totRaw), stats.IBytes(totWire),
		stats.Ratio(totRaw, totWire))

	for _, ph := range []string{PhaseRender, PhaseGather, PhaseWarp} {
		if ns := runDur[ph]; ns > 0 {
			t.Note("%s (slowest rank): %s", ph, stats.Seconds(float64(ns)/1e9))
		}
	}
	names := make([]string, 0, len(runCtr))
	for name := range runCtr {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v := runCtr[name]; v != 0 {
			t.Note("%s: %d", name, v)
		}
	}
	return t
}

// SpanTotalSeconds sums the wall-clock duration of every recorded span with
// the given step scope across ranks — the cross-check number that must
// agree with the StepTable row totals (both derive from the same spans).
func SpanTotalSeconds(spans []Span, name string) float64 {
	var ns int64
	for _, sp := range spans {
		if name == "" || sp.Name == name {
			ns += int64(sp.End - sp.Start)
		}
	}
	return float64(ns) / 1e9
}
