package telemetry

import (
	"fmt"
	"sort"

	"rtcomp/internal/stats"
)

// StepTable merges per-rank summaries into the per-step timing/bytes table
// printed at rank 0: one row per composition step with the phase durations
// summed across ranks, the message count, and the raw/wire byte volume with
// its compression ratio, plus a totals row. Whole-run phases (render,
// gather, warp) and run-level counters land in the footnotes.
func StepTable(summaries []Summary) *stats.Table {
	type agg struct {
		dur  map[string]int64 // phase name -> summed nanos
		ctr  map[string]int64 // counter name -> summed value
		seen bool
	}
	steps := map[int]*agg{}
	at := func(step int) *agg {
		a := steps[step]
		if a == nil {
			a = &agg{dur: map[string]int64{}, ctr: map[string]int64{}}
			steps[step] = a
		}
		return a
	}
	runDur := map[string]int64{} // whole-run phase -> max nanos across ranks
	runCtr := map[string]int64{} // run-level counter -> sum (or max) across ranks
	for _, s := range summaries {
		for _, ph := range s.Phases {
			if ph.Step == StepNone {
				if ph.Nanos > runDur[ph.Name] {
					runDur[ph.Name] = ph.Nanos
				}
				continue
			}
			a := at(ph.Step)
			a.dur[ph.Name] += ph.Nanos
			a.seen = true
		}
		for _, c := range s.Counters {
			if c.Step == StepNone {
				if c.Name == CtrPipeInflightMax {
					// A per-rank peak: summing ranks would report a window
					// depth no rank ever ran at. The busiest rank is the
					// meaningful cross-run number.
					if c.Value > runCtr[c.Name] {
						runCtr[c.Name] = c.Value
					}
				} else {
					runCtr[c.Name] += c.Value
				}
				continue
			}
			a := at(c.Step)
			a.ctr[c.Name] += c.Value
			a.seen = true
		}
	}

	order := make([]int, 0, len(steps))
	for si := range steps {
		order = append(order, si)
	}
	sort.Ints(order)

	t := &stats.Table{
		Title:   "per-step composition telemetry (phase seconds summed across ranks)",
		Headers: []string{"step", "encode", "send", "recv", "decode", "merge", "msgs", "raw", "wire", "ratio"},
	}
	secs := func(ns int64) string {
		if ns == 0 {
			return "-"
		}
		return stats.Seconds(float64(ns) / 1e9)
	}
	totDur := map[string]int64{}
	var totMsgs, totRaw, totWire int64
	for _, si := range order {
		a := steps[si]
		if !a.seen {
			continue
		}
		for _, ph := range []string{PhaseEncode, PhaseSend, PhaseRecv, PhaseDecode, PhaseMerge} {
			totDur[ph] += a.dur[ph]
		}
		totMsgs += a.ctr[CtrMsgs]
		totRaw += a.ctr[CtrRawBytes]
		totWire += a.ctr[CtrWireBytes]
		t.Add(fmt.Sprint(si+1),
			secs(a.dur[PhaseEncode]), secs(a.dur[PhaseSend]), secs(a.dur[PhaseRecv]),
			secs(a.dur[PhaseDecode]), secs(a.dur[PhaseMerge]),
			fmt.Sprint(a.ctr[CtrMsgs]),
			stats.IBytes(a.ctr[CtrRawBytes]), stats.IBytes(a.ctr[CtrWireBytes]),
			stats.Ratio(a.ctr[CtrRawBytes], a.ctr[CtrWireBytes]))
	}
	t.Add("all",
		secs(totDur[PhaseEncode]), secs(totDur[PhaseSend]), secs(totDur[PhaseRecv]),
		secs(totDur[PhaseDecode]), secs(totDur[PhaseMerge]),
		fmt.Sprint(totMsgs), stats.IBytes(totRaw), stats.IBytes(totWire),
		stats.Ratio(totRaw, totWire))

	for _, ph := range []string{PhaseRender, PhaseGather, PhaseWarp} {
		if ns := runDur[ph]; ns > 0 {
			t.Note("%s (slowest rank): %s", ph, stats.Seconds(float64(ns)/1e9))
		}
	}
	names := make([]string, 0, len(runCtr))
	for name := range runCtr {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v := runCtr[name]; v != 0 {
			if name == CtrPipeInflightMax {
				t.Note("%s (busiest rank): %d", name, v)
			} else {
				t.Note("%s: %d", name, v)
			}
		}
	}
	for _, note := range HistQuantileNotes(summaries) {
		t.Note("%s", note)
	}
	return t
}

// HistQuantileNotes merges the histogram snapshots shipped inside the
// summaries bucket-wise across ranks and renders one p50/p95/p99 line per
// histogram name — the latency-distribution footnotes of the StepTable.
func HistQuantileNotes(summaries []Summary) []string {
	type merged struct {
		dense []int64
		total int64
		sumNs int64
	}
	byName := map[string]*merged{}
	for _, s := range summaries {
		for _, st := range s.Hists {
			m := byName[st.Name]
			if m == nil {
				m = &merged{dense: make([]int64, HistBuckets)}
				byName[st.Name] = m
			}
			m.total += histMerge(m.dense, st)
			m.sumNs += st.SumNs
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]string, 0, len(names))
	for _, name := range names {
		m := byName[name]
		if m.total == 0 {
			continue
		}
		p50 := bucketQuantile(m.dense, m.total, 0.50)
		p95 := bucketQuantile(m.dense, m.total, 0.95)
		p99 := bucketQuantile(m.dense, m.total, 0.99)
		out = append(out, fmt.Sprintf("%s: p50=%s p95=%s p99=%s (n=%d, all ranks)",
			name, stats.Seconds(p50.Seconds()), stats.Seconds(p95.Seconds()),
			stats.Seconds(p99.Seconds()), m.total))
	}
	return out
}

// SpanTotalSeconds sums the wall-clock duration of every recorded span with
// the given step scope across ranks — the cross-check number that must
// agree with the StepTable row totals (both derive from the same spans).
func SpanTotalSeconds(spans []Span, name string) float64 {
	var ns int64
	for _, sp := range spans {
		if name == "" || sp.Name == name {
			ns += int64(sp.End - sp.Start)
		}
	}
	return float64(ns) / 1e9
}
