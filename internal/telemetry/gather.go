package telemetry

import (
	"encoding/json"
	"fmt"
	"time"

	"rtcomp/internal/comm"
)

// GatherSummaries ships every rank's summary to root over the communicator
// (one comm.Gather of JSON blobs — small, a few hundred bytes per rank) and
// returns the per-rank summaries on root, nil elsewhere. Every rank must
// call it at the same point of its program, like any collective.
//
// The timeout bounds the root's wait per arrival (<= 0 waits forever).
// When ranks are unreachable — dead peers in a recovered run — the root
// returns the partial table (missing ranks hold their zero Summary)
// alongside the first recoverable error, so a teardown path can report the
// survivors instead of hanging.
func GatherSummaries(c comm.Comm, seq *comm.Sequencer, root int, s Summary, timeout time.Duration) ([]Summary, error) {
	blob, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("telemetry: marshal summary: %w", err)
	}
	parts, gerr := comm.GatherTimeout(c, seq, root, blob, timeout)
	if gerr != nil && !comm.IsRecoverable(gerr) {
		return nil, fmt.Errorf("telemetry: gather summaries: %w", gerr)
	}
	if parts == nil {
		return nil, gerr
	}
	out := make([]Summary, len(parts))
	for r, part := range parts {
		if part == nil {
			// This rank never delivered its summary; leave the zero value.
			continue
		}
		if err := json.Unmarshal(part, &out[r]); err != nil {
			return nil, fmt.Errorf("telemetry: summary from rank %d: %w", r, err)
		}
	}
	return out, gerr
}
