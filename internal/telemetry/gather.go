package telemetry

import (
	"encoding/json"
	"fmt"

	"rtcomp/internal/comm"
)

// GatherSummaries ships every rank's summary to root over the communicator
// (one comm.Gather of JSON blobs — small, a few hundred bytes per rank) and
// returns the per-rank summaries on root, nil elsewhere. Every rank must
// call it at the same point of its program, like any collective.
func GatherSummaries(c comm.Comm, seq *comm.Sequencer, root int, s Summary) ([]Summary, error) {
	blob, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("telemetry: marshal summary: %w", err)
	}
	parts, err := comm.Gather(c, seq, root, blob)
	if err != nil {
		return nil, fmt.Errorf("telemetry: gather summaries: %w", err)
	}
	if parts == nil {
		return nil, nil
	}
	out := make([]Summary, len(parts))
	for r, part := range parts {
		if err := json.Unmarshal(part, &out[r]); err != nil {
			return nil, fmt.Errorf("telemetry: summary from rank %d: %w", r, err)
		}
	}
	return out, nil
}
