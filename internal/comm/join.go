// The JOIN path of the membership protocol — the symmetric counterpart of
// the FAILED path in membership.go. A standby rank (a spare, or a restarted
// rank) broadcasts a JOIN-HELLO on a reserved epoch-independent tag; the
// hellos sit in the survivors' mailboxes until the next membership change,
// when every survivor drains them and runs a two-round join agreement
// (AgreeJoin) that unions the offers — including the merkle manifests of the
// state snapshots the contributors can serve — so every survivor certifies
// the same commitment the joiner will verify its state transfer against.
// The joiner's buddy then sends an ADMIT carrying the certified manifests
// and the strictly-higher join epoch, the contributors stream their chunks,
// and a JOIN-DONE from the joiner lets every survivor Revive it in lockstep.
package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Reserved negative tag bases of the join protocol, each in its own 2^40+
// band below the recovery bases (notice at -2^40, agree at -2^41).
const (
	// TagJoinHello carries a spare's JOIN-HELLO. It is epoch-independent:
	// the spare does not know the mesh epoch, and the hello may sit in a
	// mailbox across several epochs before a survivor drains it.
	TagJoinHello = -(1 << 42)
	// TagJoinAdmit carries the sponsor's ADMIT to the joiner — also
	// epoch-independent, because the joiner learns the epoch from it.
	TagJoinAdmit = -(1 << 43)

	tagJoinAgreeBase = -(1 << 44) // join agreement rounds: base - 2*epoch - round
	tagJoinXferBase  = -(1 << 45) // chunk stream: base - epoch*2^20 - chunk index
	tagJoinDoneBase  = -(1 << 46) // JOIN-DONE: base - epoch
)

func joinAgreeTag(epoch, round int) int { return tagJoinAgreeBase - 2*epoch - round }

// JoinXferTag scopes one snapshot chunk to a join epoch; the serving rank is
// the message's From, so (epoch, index) needs no source component.
func JoinXferTag(epoch, chunk int) int { return tagJoinXferBase - epoch<<20 - chunk }

// JoinDoneTag scopes the joiner's JOIN-DONE to its join epoch.
func JoinDoneTag(epoch int) int { return tagJoinDoneBase - epoch }

// JoinHello announces a standby rank asking to take over a (dead) rank slot.
// The nonce distinguishes incarnations: a second spare for the same slot, or
// a retry, carries a fresh nonce, and an ADMIT echoes the nonce so a spare
// never acts on an admission meant for a predecessor.
type JoinHello struct {
	Rank  int
	Nonce uint64
}

// Encode serialises the hello: uvarint rank, 8-byte big-endian nonce.
func (h JoinHello) Encode() []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+8)
	buf = binary.AppendUvarint(buf, uint64(h.Rank))
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], h.Nonce)
	return append(buf, n[:]...)
}

// DecodeJoinHello inverts Encode.
func DecodeJoinHello(payload []byte) (JoinHello, error) {
	r, off := binary.Uvarint(payload)
	if off <= 0 || r > 1<<20 {
		return JoinHello{}, fmt.Errorf("comm: corrupt join hello rank")
	}
	if len(payload)-off != 8 {
		return JoinHello{}, fmt.Errorf("comm: join hello has %d nonce bytes, want 8", len(payload)-off)
	}
	return JoinHello{Rank: int(r), Nonce: binary.BigEndian.Uint64(payload[off:])}, nil
}

// JoinCommit is one contributor's commitment for a joiner: the serialized
// statexfer manifest of the snapshot it will stream. The bytes are opaque to
// the comm layer — the agreement only needs to replicate them faithfully so
// every survivor certifies the same roots.
type JoinCommit struct {
	Source   int
	Manifest []byte
}

// JoinOffer is one pending joiner as seen by a survivor: the hello it
// drained plus the commitments of the local contributions it can serve.
type JoinOffer struct {
	Rank    int
	Nonce   uint64
	Commits []JoinCommit
}

// EncodeJoinOffers serialises an offer list.
func EncodeJoinOffers(offers []JoinOffer) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(offers)))
	for _, o := range offers {
		buf = binary.AppendUvarint(buf, uint64(o.Rank))
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], o.Nonce)
		buf = append(buf, n[:]...)
		buf = binary.AppendUvarint(buf, uint64(len(o.Commits)))
		for _, c := range o.Commits {
			buf = binary.AppendUvarint(buf, uint64(c.Source))
			buf = binary.AppendUvarint(buf, uint64(len(c.Manifest)))
			buf = append(buf, c.Manifest...)
		}
	}
	return buf
}

// DecodeJoinOffers inverts EncodeJoinOffers. Manifest bytes are copied, not
// aliased, because offers outlive the wire buffer.
func DecodeJoinOffers(payload []byte) ([]JoinOffer, error) {
	uv := func(rest []byte) (uint64, []byte, error) {
		v, k := binary.Uvarint(rest)
		if k <= 0 || v > 1<<32 {
			return 0, nil, fmt.Errorf("comm: corrupt join offer")
		}
		return v, rest[k:], nil
	}
	n, rest, err := uv(payload)
	if err != nil {
		return nil, err
	}
	var out []JoinOffer
	for i := uint64(0); i < n; i++ {
		var o JoinOffer
		var r uint64
		if r, rest, err = uv(rest); err != nil {
			return nil, err
		}
		o.Rank = int(r)
		if len(rest) < 8 {
			return nil, fmt.Errorf("comm: corrupt join offer nonce")
		}
		o.Nonce = binary.BigEndian.Uint64(rest)
		rest = rest[8:]
		var nc uint64
		if nc, rest, err = uv(rest); err != nil {
			return nil, err
		}
		for j := uint64(0); j < nc; j++ {
			var c JoinCommit
			var src, ml uint64
			if src, rest, err = uv(rest); err != nil {
				return nil, err
			}
			c.Source = int(src)
			if ml, rest, err = uv(rest); err != nil {
				return nil, err
			}
			if uint64(len(rest)) < ml {
				return nil, fmt.Errorf("comm: truncated join commit manifest")
			}
			c.Manifest = append([]byte(nil), rest[:ml]...)
			rest = rest[ml:]
			o.Commits = append(o.Commits, c)
		}
		out = append(out, o)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("comm: %d trailing bytes in join offers", len(rest))
	}
	return out, nil
}

// mergeOffers folds src into dst (keyed by joiner rank). The rule is
// commutative, associative and idempotent, so every survivor that hears the
// same message set converges on the same union regardless of arrival order:
// the higher nonce wins a joiner conflict (a fresh incarnation supersedes a
// stale hello), and commits merge by source with the lexicographically
// smaller manifest winning a source conflict (deterministic, and a conflict
// means a stale mix that the manifest identity check rejects later anyway).
func mergeOffers(dst map[int]*JoinOffer, src []JoinOffer) {
	for _, o := range src {
		cur, ok := dst[o.Rank]
		switch {
		case !ok || o.Nonce > cur.Nonce:
			cp := o
			cp.Commits = append([]JoinCommit(nil), o.Commits...)
			dst[o.Rank] = &cp
		case o.Nonce < cur.Nonce:
			// Stale incarnation: drop.
		default:
			for _, c := range o.Commits {
				merged := false
				for i := range cur.Commits {
					if cur.Commits[i].Source == c.Source {
						if string(c.Manifest) < string(cur.Commits[i].Manifest) {
							cur.Commits[i].Manifest = c.Manifest
						}
						merged = true
						break
					}
				}
				if !merged {
					cur.Commits = append(cur.Commits, c)
				}
			}
		}
	}
}

// AgreeJoin is the two-round join agreement every survivor runs after a
// membership change when rejoin is enabled — whether or not it drained a
// hello itself, because a peer may have. Round 0 exchanges each rank's local
// offers; round 1 exchanges the unions, so a hello observed by any one
// survivor reaches all of them. Silence or a peer failure in either round
// aborts the join for everyone (the abort is propagated in the round-1
// message), returning nil — admission must be unanimous, and an aborted join
// is retried at a later epoch while the ordinary failure machinery deals
// with whatever caused the silence. The returned offers are sorted by rank
// and identical on every survivor that returns non-nil.
func AgreeJoin(c Comm, m *Membership, mine []JoinOffer, timeout time.Duration) ([]JoinOffer, error) {
	me := c.Rank()
	union := map[int]*JoinOffer{}
	mergeOffers(union, mine)
	aborted := false
	for round := 0; round < 2; round++ {
		tag := joinAgreeTag(m.epoch, round)
		payload := []byte{0}
		if aborted {
			payload[0] = 1
		}
		payload = append(payload, EncodeJoinOffers(unionOffers(union))...)
		var keys []MsgKey
		for r := 0; r < m.size; r++ {
			if r == me || m.dead[r] {
				continue
			}
			if err := c.Send(r, tag, payload); err != nil {
				if !IsRecoverable(err) {
					return nil, fmt.Errorf("comm: join agree round %d send: %w", round, err)
				}
				aborted = true
				continue
			}
			keys = append(keys, MsgKey{From: r, Tag: tag})
		}
		deadline := time.Now().Add(timeout)
		for len(keys) > 0 {
			remain := time.Until(deadline)
			if remain <= 0 {
				aborted = true
				break
			}
			from, _, data, err := c.RecvAnyTimeout(keys, remain)
			if err != nil {
				if !IsRecoverable(err) {
					return nil, fmt.Errorf("comm: join agree round %d recv: %w", round, err)
				}
				var perr *PeerError
				if errors.As(err, &perr) {
					aborted = true
					keys = dropKeysFrom(keys, perr.Rank)
					continue
				}
				aborted = true
				keys = nil
				continue
			}
			keys = dropKeysFrom(keys, from)
			if len(data) < 1 || data[0] != 0 {
				aborted = true
				continue
			}
			theirs, derr := DecodeJoinOffers(data[1:])
			if derr != nil {
				// A garbled offer set cannot be certified; treat as abort.
				aborted = true
				continue
			}
			mergeOffers(union, theirs)
		}
	}
	if aborted {
		return nil, nil
	}
	return unionOffers(union), nil
}

func unionOffers(union map[int]*JoinOffer) []JoinOffer {
	out := make([]JoinOffer, 0, len(union))
	for _, o := range union {
		cp := *o
		sort.Slice(cp.Commits, func(i, j int) bool { return cp.Commits[i].Source < cp.Commits[j].Source })
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// JoinAdmit is the sponsor's admission message to the joiner: the nonce it
// echoes, the join epoch (the epoch the survivors will Revive at, strictly
// higher than any the joiner has seen), the ranks still dead after the
// revive, and the certified manifests of every contribution it will receive.
type JoinAdmit struct {
	Nonce   uint64
	Epoch   int
	Dead    []int
	Commits []JoinCommit
}

// Encode serialises the admit.
func (a JoinAdmit) Encode() []byte {
	var buf []byte
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], a.Nonce)
	buf = append(buf, n[:]...)
	buf = binary.AppendUvarint(buf, uint64(a.Epoch))
	buf = append(buf, EncodeRankSet(a.Dead)...)
	buf = binary.AppendUvarint(buf, uint64(len(a.Commits)))
	for _, c := range a.Commits {
		buf = binary.AppendUvarint(buf, uint64(c.Source))
		buf = binary.AppendUvarint(buf, uint64(len(c.Manifest)))
		buf = append(buf, c.Manifest...)
	}
	return buf
}

// DecodeJoinAdmit inverts Encode.
func DecodeJoinAdmit(payload []byte) (JoinAdmit, error) {
	var a JoinAdmit
	if len(payload) < 8 {
		return a, fmt.Errorf("comm: corrupt join admit nonce")
	}
	a.Nonce = binary.BigEndian.Uint64(payload)
	rest := payload[8:]
	ep, k := binary.Uvarint(rest)
	if k <= 0 || ep > 1<<32 {
		return a, fmt.Errorf("comm: corrupt join admit epoch")
	}
	a.Epoch = int(ep)
	rest = rest[k:]
	// The rank set codec rejects trailing bytes, so split manually: count,
	// then that many uvarints.
	nd, k := binary.Uvarint(rest)
	if k <= 0 || nd > 1<<20 {
		return a, fmt.Errorf("comm: corrupt join admit dead set")
	}
	rest = rest[k:]
	for i := uint64(0); i < nd; i++ {
		v, k := binary.Uvarint(rest)
		if k <= 0 || v > 1<<20 {
			return a, fmt.Errorf("comm: corrupt join admit dead rank")
		}
		a.Dead = append(a.Dead, int(v))
		rest = rest[k:]
	}
	nc, k := binary.Uvarint(rest)
	if k <= 0 || nc > 1<<20 {
		return a, fmt.Errorf("comm: corrupt join admit commit count")
	}
	rest = rest[k:]
	for i := uint64(0); i < nc; i++ {
		var c JoinCommit
		src, k := binary.Uvarint(rest)
		if k <= 0 || src > 1<<20 {
			return a, fmt.Errorf("comm: corrupt join admit commit source")
		}
		c.Source = int(src)
		rest = rest[k:]
		ml, k := binary.Uvarint(rest)
		if k <= 0 || uint64(len(rest)-k) < ml {
			return a, fmt.Errorf("comm: truncated join admit manifest")
		}
		c.Manifest = append([]byte(nil), rest[k:k+int(ml)]...)
		rest = rest[k+int(ml):]
		a.Commits = append(a.Commits, c)
	}
	if len(rest) != 0 {
		return a, fmt.Errorf("comm: %d trailing bytes in join admit", len(rest))
	}
	return a, nil
}

// EncodeJoinDone serialises the joiner's JOIN-DONE: a status byte (1 = the
// transfer verified completely) and the count of chunks verified.
func EncodeJoinDone(ok bool, verifiedChunks int) []byte {
	buf := make([]byte, 1, 1+binary.MaxVarintLen64)
	if ok {
		buf[0] = 1
	}
	return binary.AppendUvarint(buf, uint64(verifiedChunks))
}

// DecodeJoinDone inverts EncodeJoinDone.
func DecodeJoinDone(payload []byte) (ok bool, verifiedChunks int, err error) {
	if len(payload) < 1 {
		return false, 0, fmt.Errorf("comm: empty join done")
	}
	v, k := binary.Uvarint(payload[1:])
	if k <= 0 || v > 1<<32 {
		return false, 0, fmt.Errorf("comm: corrupt join done chunk count")
	}
	return payload[0] == 1, int(v), nil
}
