package comm_test

import (
	"bytes"
	"testing"
	"time"

	"rtcomp/internal/comm"
)

func TestJoinHelloRoundTrip(t *testing.T) {
	h := comm.JoinHello{Rank: 5, Nonce: 0xDEADBEEFCAFE}
	got, err := comm.DecodeJoinHello(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
	for _, bad := range [][]byte{nil, {5}, h.Encode()[:6], append(h.Encode(), 0)} {
		if _, err := comm.DecodeJoinHello(bad); err == nil {
			t.Fatalf("malformed hello %v accepted", bad)
		}
	}
}

func TestJoinOffersRoundTrip(t *testing.T) {
	offers := []comm.JoinOffer{
		{Rank: 2, Nonce: 7, Commits: []comm.JoinCommit{
			{Source: 3, Manifest: []byte("manifest-a")},
			{Source: 0, Manifest: []byte("manifest-b")},
		}},
		{Rank: 4, Nonce: 1},
	}
	got, err := comm.DecodeJoinOffers(comm.EncodeJoinOffers(offers))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Rank != 2 || got[0].Nonce != 7 || len(got[0].Commits) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got[0].Commits[1].Source != 0 || !bytes.Equal(got[0].Commits[1].Manifest, []byte("manifest-b")) {
		t.Fatalf("commit round trip: %+v", got[0].Commits)
	}
	enc := comm.EncodeJoinOffers(offers)
	if _, err := comm.DecodeJoinOffers(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated offers accepted")
	}
}

func TestJoinAdmitRoundTrip(t *testing.T) {
	a := comm.JoinAdmit{
		Nonce: 99, Epoch: 3, Dead: []int{1, 4},
		Commits: []comm.JoinCommit{{Source: 2, Manifest: []byte("m")}},
	}
	got, err := comm.DecodeJoinAdmit(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Nonce != 99 || got.Epoch != 3 || len(got.Dead) != 2 || got.Dead[1] != 4 ||
		len(got.Commits) != 1 || got.Commits[0].Source != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := comm.DecodeJoinAdmit(a.Encode()[:5]); err == nil {
		t.Fatal("truncated admit accepted")
	}
}

func TestJoinDoneRoundTrip(t *testing.T) {
	ok, n, err := comm.DecodeJoinDone(comm.EncodeJoinDone(true, 42))
	if err != nil || !ok || n != 42 {
		t.Fatalf("done round trip: ok=%v n=%d err=%v", ok, n, err)
	}
	ok, _, err = comm.DecodeJoinDone(comm.EncodeJoinDone(false, 0))
	if err != nil || ok {
		t.Fatalf("failed-done round trip: ok=%v err=%v", ok, err)
	}
	if _, _, err := comm.DecodeJoinDone(nil); err == nil {
		t.Fatal("empty done accepted")
	}
}

func TestMembershipReviveAndResume(t *testing.T) {
	m := comm.NewMembership(4)
	m.Advance([]int{2})
	if m.Alive(2) || m.Epoch() != 1 {
		t.Fatalf("advance: alive(2)=%v epoch=%d", m.Alive(2), m.Epoch())
	}
	m.Revive([]int{2})
	if !m.Alive(2) || m.Epoch() != 2 || m.NumDead() != 0 {
		t.Fatalf("revive: alive(2)=%v epoch=%d dead=%d", m.Alive(2), m.Epoch(), m.NumDead())
	}
	r := comm.Resume(6, 5, []int{1, 3})
	if r.Size() != 6 || r.Epoch() != 5 || r.Alive(1) || r.Alive(3) || !r.Alive(0) {
		t.Fatalf("resume: %+v", r)
	}
}

// TestAgreeJoinUnionsOffers: only rank 1 saw the hello, yet after the
// two-round agreement every rank must certify the identical offer set.
func TestAgreeJoinUnionsOffers(t *testing.T) {
	p := 4
	results := make([][]comm.JoinOffer, p)
	run(t, p, func(c comm.Comm) error {
		m := comm.NewMembership(p)
		m.Advance(nil) // epoch 1, nobody dead — isolates the join tags
		var mine []comm.JoinOffer
		if c.Rank() == 1 {
			mine = []comm.JoinOffer{{Rank: 2, Nonce: 9, Commits: []comm.JoinCommit{{Source: 1, Manifest: []byte("m1")}}}}
		}
		got, err := comm.AgreeJoin(c, m, mine, 2*time.Second)
		results[c.Rank()] = got
		return err
	})
	for r, got := range results {
		if len(got) != 1 || got[0].Rank != 2 || got[0].Nonce != 9 || len(got[0].Commits) != 1 {
			t.Fatalf("rank %d certified %+v", r, got)
		}
	}
}

// TestAgreeJoinMergesContributors: two ranks each hold part of the joiner's
// state; the union must carry both commits, higher nonce superseding lower.
func TestAgreeJoinMergesContributors(t *testing.T) {
	p := 4
	results := make([][]comm.JoinOffer, p)
	run(t, p, func(c comm.Comm) error {
		m := comm.NewMembership(p)
		m.Advance(nil)
		var mine []comm.JoinOffer
		switch c.Rank() {
		case 0:
			mine = []comm.JoinOffer{{Rank: 3, Nonce: 5, Commits: []comm.JoinCommit{{Source: 0, Manifest: []byte("m0")}}}}
		case 2:
			mine = []comm.JoinOffer{
				{Rank: 3, Nonce: 5, Commits: []comm.JoinCommit{{Source: 2, Manifest: []byte("m2")}}},
				{Rank: 3, Nonce: 4, Commits: []comm.JoinCommit{{Source: 9, Manifest: []byte("stale")}}},
			}
		}
		got, err := comm.AgreeJoin(c, m, mine, 2*time.Second)
		results[c.Rank()] = got
		return err
	})
	for r, got := range results {
		if len(got) != 1 || got[0].Rank != 3 || got[0].Nonce != 5 {
			t.Fatalf("rank %d certified %+v", r, got)
		}
		if len(got[0].Commits) != 2 || got[0].Commits[0].Source != 0 || got[0].Commits[1].Source != 2 {
			t.Fatalf("rank %d commits %+v, want sources [0 2]", r, got[0].Commits)
		}
	}
}

// TestAgreeJoinAbortsOnSilence: a rank that never participates must turn the
// join into a unanimous abort (nil offers) on the ranks that do.
func TestAgreeJoinAbortsOnSilence(t *testing.T) {
	p := 3
	results := make([][]comm.JoinOffer, p)
	aborts := make([]bool, p)
	run(t, p, func(c comm.Comm) error {
		if c.Rank() == 2 {
			return nil // silent: never joins the agreement
		}
		m := comm.NewMembership(p)
		m.Advance(nil)
		mine := []comm.JoinOffer{{Rank: 0, Nonce: 1}}
		got, err := comm.AgreeJoin(c, m, mine, 300*time.Millisecond)
		results[c.Rank()] = got
		aborts[c.Rank()] = got == nil && err == nil
		return err
	})
	for _, r := range []int{0, 1} {
		if !aborts[r] {
			t.Fatalf("rank %d did not abort: %+v", r, results[r])
		}
	}
}

// FuzzJoinHelloDecode: the hello decoder must never panic and every accepted
// hello must round-trip.
func FuzzJoinHelloDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(comm.JoinHello{Rank: 3, Nonce: 77}.Encode())
	f.Fuzz(func(t *testing.T, payload []byte) {
		h, err := comm.DecodeJoinHello(payload)
		if err != nil {
			return
		}
		got, err := comm.DecodeJoinHello(h.Encode())
		if err != nil || got != h {
			t.Fatalf("re-decode of accepted hello failed: %+v %v", h, err)
		}
	})
}

// FuzzJoinAdmitDecode: the admit decoder must never panic on arbitrary
// payloads (the joiner feeds it raw wire bytes).
func FuzzJoinAdmitDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(comm.JoinAdmit{Nonce: 1, Epoch: 2, Dead: []int{0}}.Encode())
	f.Fuzz(func(t *testing.T, payload []byte) {
		a, err := comm.DecodeJoinAdmit(payload)
		if err != nil {
			return
		}
		if _, err := comm.DecodeJoinAdmit(a.Encode()); err != nil {
			t.Fatalf("re-decode of accepted admit failed: %+v %v", a, err)
		}
	})
}
