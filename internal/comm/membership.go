// Membership, failure notices and the dead-set agreement protocol of the
// recovery path. A composition that can survive rank death runs in epochs:
// epoch 0 is the original schedule, and every failure-triggered retry bumps
// the epoch. All recovery traffic is tagged with the epoch, so a retried
// epoch never consumes a stale message from an aborted one — the stale
// traffic simply dies unread under its old tags.
package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Reserved negative tag bases for the recovery protocol, far below the
// collectives' range (the collective bases start at -1 and move by 64 per
// call, the recovery bases sit at -2^40 and beyond).
const (
	tagNoticeBase = -(1 << 40) // fail notices: tagNoticeBase - epoch
	tagAgreeBase  = -(1 << 41) // agreement rounds: tagAgreeBase - 2*epoch - round
)

// NoticeTag is the reserved tag failure notices carry in the given epoch.
func NoticeTag(epoch int) int { return tagNoticeBase - epoch }

func agreeTag(epoch, round int) int { return tagAgreeBase - 2*epoch - round }

// ErrEvicted is returned by Agree when the surviving ranks have condemned
// this rank as dead — a false suspicion under too-tight deadlines. The
// evicted rank must stop participating: the survivors have already agreed
// to recover without it, and its layer will be contributed by its buddy.
var ErrEvicted = errors.New("comm: this rank was evicted by the membership agreement")

// Membership tracks one rank's view of which ranks are alive, and the
// current recovery epoch. All live ranks advance it in lockstep: an epoch
// attempt, then one Agree call, then Advance with the agreed dead set.
type Membership struct {
	size  int
	epoch int
	dead  []bool
}

// NewMembership returns epoch-0 membership with all ranks alive.
func NewMembership(size int) *Membership {
	return &Membership{size: size, dead: make([]bool, size)}
}

// Size returns the total rank count, dead or alive.
func (m *Membership) Size() int { return m.size }

// Epoch returns the current recovery epoch (0 = the original attempt).
func (m *Membership) Epoch() int { return m.epoch }

// Alive reports whether rank r is believed alive.
func (m *Membership) Alive(r int) bool { return r >= 0 && r < m.size && !m.dead[r] }

// NumDead counts the ranks declared dead so far.
func (m *Membership) NumDead() int {
	n := 0
	for _, d := range m.dead {
		if d {
			n++
		}
	}
	return n
}

// Dead returns the declared-dead ranks in ascending order.
func (m *Membership) Dead() []int {
	var out []int
	for r, d := range m.dead {
		if d {
			out = append(out, r)
		}
	}
	return out
}

// Advance declares the given ranks dead and enters the next epoch.
func (m *Membership) Advance(newDead []int) {
	for _, r := range newDead {
		if r >= 0 && r < m.size {
			m.dead[r] = true
		}
	}
	m.epoch++
}

// Revive returns the given ranks to the live set and enters the next epoch
// — the join counterpart of Advance, run by every survivor in lockstep after
// a JOIN-DONE. The epoch bump gives the joiner the strictly-higher epoch its
// admission promised, and makes any traffic from before the revive stale.
func (m *Membership) Revive(ranks []int) {
	for _, r := range ranks {
		if r >= 0 && r < m.size {
			m.dead[r] = false
		}
	}
	m.epoch++
}

// Resume constructs membership at an arbitrary epoch with the given dead
// set — a joiner's view, taken verbatim from the ADMIT that the agreement
// round certified.
func Resume(size, epoch int, dead []int) *Membership {
	m := &Membership{size: size, epoch: epoch, dead: make([]bool, size)}
	for _, r := range dead {
		if r >= 0 && r < size {
			m.dead[r] = true
		}
	}
	return m
}

// NoticeKeys returns the receive keys for this epoch's failure notices
// from every live peer. A recovery-mode receive folds these into its key
// set so a peer's abort wakes it immediately instead of at its deadline.
func (m *Membership) NoticeKeys(self int) []MsgKey {
	var keys []MsgKey
	for r := 0; r < m.size; r++ {
		if r != self && !m.dead[r] {
			keys = append(keys, MsgKey{From: r, Tag: NoticeTag(m.epoch)})
		}
	}
	return keys
}

// BroadcastFailure sends a best-effort FAILED notice carrying the suspected
// ranks to every live peer on this epoch's reserved tag. Send errors are
// ignored — a peer that cannot be reached is itself a candidate for the
// dead set, which the following Agree call will establish. Each rank must
// broadcast at most once per epoch (tag uniqueness).
func BroadcastFailure(c Comm, m *Membership, suspects []int) {
	payload := EncodeRankSet(suspects)
	me := c.Rank()
	for r := 0; r < m.size; r++ {
		if r != me && !m.dead[r] {
			_ = c.Send(r, NoticeTag(m.epoch), payload)
		}
	}
}

// Agree is the per-epoch membership agreement — run by every live rank
// after its epoch attempt, whether the attempt completed or aborted. It
// doubles as the commit barrier: an empty result on a completed attempt
// certifies the epoch.
//
// Two timeout-bounded rounds over the believed-live set. Round 0: every
// rank pings every live peer and collects pings; a peer not heard within
// the deadline is suspected — detection is by silence, because a dead
// rank's receives surface locally only as deadlines without rank
// attribution. Round 1: every rank sends its suspect set to every live
// peer (suspects included, so a falsely-suspected rank learns its fate)
// and unions the sets it collects from non-suspects. The union, of ranks
// everyone either failed to hear or was told about, is the agreed new dead
// set. If this rank appears in a received set it returns ErrEvicted.
//
// The timeout must comfortably exceed the composition's receive deadline:
// a peer may enter Agree up to one receive deadline later than the first
// aborter (it was still blocked on the dead rank when the notice raced
// past it).
func Agree(c Comm, m *Membership, timeout time.Duration) ([]int, error) {
	me := c.Rank()
	suspect := map[int]bool{}
	for round := 0; round < 2; round++ {
		tag := agreeTag(m.epoch, round)
		payload := EncodeRankSet(sortedRanks(suspect))
		var keys []MsgKey
		for r := 0; r < m.size; r++ {
			if r == me || m.dead[r] {
				continue
			}
			// Best-effort send even to fresh suspects (see round 1 above);
			// a send that names a failed peer confirms the suspicion.
			if err := c.Send(r, tag, payload); err != nil {
				var perr *PeerError
				switch {
				case errors.As(err, &perr):
					suspect[perr.Rank] = true
				case IsRecoverable(err):
					suspect[r] = true
				default:
					return nil, fmt.Errorf("comm: agree round %d send: %w", round, err)
				}
			}
			if !suspect[r] {
				keys = append(keys, MsgKey{From: r, Tag: tag})
			}
		}
		deadline := time.Now().Add(timeout)
		for len(keys) > 0 {
			remain := time.Until(deadline)
			if remain <= 0 {
				for _, k := range keys {
					suspect[k.From] = true
				}
				break
			}
			from, _, data, err := c.RecvAnyTimeout(keys, remain)
			if err != nil {
				var perr *PeerError
				switch {
				case errors.As(err, &perr):
					suspect[perr.Rank] = true
					keys = dropKeysFrom(keys, perr.Rank)
					continue
				case errors.Is(err, ErrDeadline):
					for _, k := range keys {
						suspect[k.From] = true
					}
					keys = nil
					continue
				}
				return nil, fmt.Errorf("comm: agree round %d recv: %w", round, err)
			}
			keys = dropKeysFrom(keys, from)
			theirs, derr := DecodeRankSet(data)
			if derr != nil {
				// A garbled set still proves the sender alive; its content
				// is ignored.
				continue
			}
			for _, r := range theirs {
				if r == me {
					return nil, ErrEvicted
				}
				if r >= 0 && r < m.size && !m.dead[r] && !suspect[r] {
					suspect[r] = true
					keys = dropKeysFrom(keys, r)
				}
			}
		}
	}
	return sortedRanks(suspect), nil
}

func dropKeysFrom(keys []MsgKey, rank int) []MsgKey {
	out := keys[:0]
	for _, k := range keys {
		if k.From != rank {
			out = append(out, k)
		}
	}
	return out
}

func sortedRanks(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// EncodeRankSet serialises a rank list as uvarint count + uvarint ranks.
func EncodeRankSet(ranks []int) []byte {
	var tmp [binary.MaxVarintLen64]byte
	buf := tmp[:binary.PutUvarint(tmp[:], uint64(len(ranks)))]
	out := append([]byte(nil), buf...)
	for _, r := range ranks {
		out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(r))]...)
	}
	return out
}

// DecodeRankSet inverts EncodeRankSet.
func DecodeRankSet(payload []byte) ([]int, error) {
	n, off := binary.Uvarint(payload)
	if off <= 0 {
		return nil, fmt.Errorf("comm: corrupt rank-set header")
	}
	rest := payload[off:]
	out := make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		v, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, fmt.Errorf("comm: corrupt rank-set entry")
		}
		out = append(out, int(v))
		rest = rest[k:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("comm: %d trailing bytes in rank set", len(rest))
	}
	return out, nil
}
