package comm

import (
	"reflect"
	"testing"
	"time"
)

func TestSessionConfigResolvedDefaults(t *testing.T) {
	r := SessionConfig{}.Resolved()
	if r.WindowFrames != DefaultWindowFrames {
		t.Errorf("WindowFrames = %d", r.WindowFrames)
	}
	if r.ReconnectTimeout != DefaultReconnectTimeout {
		t.Errorf("ReconnectTimeout = %v", r.ReconnectTimeout)
	}
	if r.MaxReconnects != DefaultMaxReconnects {
		t.Errorf("MaxReconnects = %d", r.MaxReconnects)
	}
	if r.HeartbeatInterval != DefaultHeartbeatInterval {
		t.Errorf("HeartbeatInterval = %v", r.HeartbeatInterval)
	}
	if r.ReadIdleTimeout != 5*DefaultHeartbeatInterval {
		t.Errorf("ReadIdleTimeout = %v, want 5x heartbeat", r.ReadIdleTimeout)
	}
	if r.WriteTimeout != DefaultWriteTimeout {
		t.Errorf("WriteTimeout = %v", r.WriteTimeout)
	}
	if !r.ReconnectEnabled() || !r.HeartbeatsEnabled() {
		t.Error("defaults must enable reconnection and heartbeats")
	}
}

func TestSessionConfigNegativeDisables(t *testing.T) {
	r := SessionConfig{MaxReconnects: -1, HeartbeatInterval: -1}.Resolved()
	if r.ReconnectEnabled() {
		t.Error("MaxReconnects < 0 must disable reconnection")
	}
	if r.HeartbeatsEnabled() {
		t.Error("HeartbeatInterval < 0 must disable heartbeats")
	}
	// Without heartbeats there is no traffic floor to judge idleness by, so
	// the idle deadline resolves disabled too.
	if r.ReadIdleTimeout > 0 {
		t.Errorf("ReadIdleTimeout = %v with heartbeats disabled", r.ReadIdleTimeout)
	}
}

func TestSessionConfigExplicitValuesKept(t *testing.T) {
	in := SessionConfig{
		WindowFrames:      7,
		ReconnectTimeout:  3 * time.Second,
		MaxReconnects:     2,
		HeartbeatInterval: 250 * time.Millisecond,
		ReadIdleTimeout:   time.Second,
		WriteTimeout:      time.Second,
	}
	// OnReplay makes the struct non-comparable with ==, so compare deeply.
	if got := in.Resolved(); !reflect.DeepEqual(got, in) {
		t.Errorf("Resolved() = %+v, want unchanged %+v", got, in)
	}
}
