package comm

import "time"

// Defaults for SessionConfig fields left at their zero value.
const (
	// DefaultWindowFrames is the replay-window bound: how many
	// unacknowledged data frames a sender keeps pinned before Send blocks.
	DefaultWindowFrames = 256
	// DefaultMaxReconnects bounds redial attempts per connection outage.
	DefaultMaxReconnects = 8
	// DefaultReconnectTimeout bounds the whole reconnection of one broken
	// connection, across every redial attempt.
	DefaultReconnectTimeout = 10 * time.Second
	// DefaultHeartbeatInterval is the idle-link heartbeat period.
	DefaultHeartbeatInterval = time.Second
	// DefaultWriteTimeout bounds a single frame write on the wire.
	DefaultWriteTimeout = 10 * time.Second
)

// SessionConfig tunes a fabric's reliable per-peer sessions: the
// acknowledgement/replay window that masks transient connection faults
// below the compositor, and the reconnection budget after which a session
// gives up and escalates to the PeerError path (the recovery protocol's
// territory). The zero value selects the defaults above; negative values
// disable the respective mechanism where noted.
type SessionConfig struct {
	// WindowFrames bounds the unacknowledged data frames the sender keeps
	// pinned for replay; a Send against a full window blocks until the
	// peer acknowledges. Zero means DefaultWindowFrames.
	WindowFrames int
	// ReconnectTimeout bounds one outage end to end: if the session is not
	// resumed within it, the peer is failed. Zero means
	// DefaultReconnectTimeout.
	ReconnectTimeout time.Duration
	// MaxReconnects bounds redial attempts per outage. Zero means
	// DefaultMaxReconnects; a negative value disables reconnection
	// entirely, so any connection break immediately fails the peer (the
	// pre-session behaviour).
	MaxReconnects int
	// HeartbeatInterval is how often an idle session writes a heartbeat
	// frame, keeping a silent-but-healthy link distinguishable from a dead
	// one. Zero means DefaultHeartbeatInterval; negative disables
	// heartbeats (and with them the read-idle detection).
	HeartbeatInterval time.Duration
	// ReadIdleTimeout is how long a connection may stay silent before it
	// is presumed broken and reconnected. It is only armed when
	// heartbeats are enabled (otherwise an idle link is normal). Zero
	// means 5x HeartbeatInterval; negative disables idle detection.
	ReadIdleTimeout time.Duration
	// WriteTimeout bounds a single frame write, so a stalled peer socket
	// surfaces as a reconnect instead of wedging the sender. Zero means
	// DefaultWriteTimeout.
	WriteTimeout time.Duration
	// OnReplay, when non-nil, is invoked after a session resume replays
	// unacknowledged frames to a peer, with the peer rank and the number
	// of frames replayed. It feeds gray-failure health scoring: repeated
	// replays to the same peer mark a flapping link long before the
	// reconnect budget is exhausted. Called from the session's writer
	// goroutine — implementations must be cheap and non-blocking.
	OnReplay func(peer, frames int)
}

// Resolved returns the config with every zero field replaced by its
// default, ready for use. Negative values pass through (they mean
// "disabled").
func (s SessionConfig) Resolved() SessionConfig {
	if s.WindowFrames == 0 {
		s.WindowFrames = DefaultWindowFrames
	}
	if s.ReconnectTimeout == 0 {
		s.ReconnectTimeout = DefaultReconnectTimeout
	}
	if s.MaxReconnects == 0 {
		s.MaxReconnects = DefaultMaxReconnects
	}
	if s.HeartbeatInterval == 0 {
		s.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if s.ReadIdleTimeout == 0 {
		if s.HeartbeatInterval > 0 {
			s.ReadIdleTimeout = 5 * s.HeartbeatInterval
		} else {
			s.ReadIdleTimeout = -1
		}
	}
	if s.WriteTimeout == 0 {
		s.WriteTimeout = DefaultWriteTimeout
	}
	return s
}

// ReconnectEnabled reports whether a broken connection is redialled and
// resumed rather than immediately failing the peer.
func (s SessionConfig) ReconnectEnabled() bool { return s.MaxReconnects >= 0 }

// HeartbeatsEnabled reports whether idle sessions emit heartbeat frames.
func (s SessionConfig) HeartbeatsEnabled() bool { return s.HeartbeatInterval > 0 }
