package comm_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rtcomp/internal/comm"
	"rtcomp/internal/transport/inproc"
)

// run executes fn on every rank of a p-way in-process fabric and fails the
// test on any rank error.
func run(t *testing.T, p int, fn func(c comm.Comm) error) {
	t.Helper()
	if err := inproc.Run(p, fn); err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	// The receiver asks for the tags in the reverse of the send order; the
	// mailbox must match on (from, tag), not arrival position.
	run(t, 2, func(c comm.Comm) error {
		const n = 5
		if c.Rank() == 0 {
			for tag := 0; tag < n; tag++ {
				if err := c.Send(1, tag, []byte{byte(tag)}); err != nil {
					return err
				}
			}
			return nil
		}
		for tag := n - 1; tag >= 0; tag-- {
			payload, err := c.Recv(0, tag)
			if err != nil {
				return err
			}
			if len(payload) != 1 || payload[0] != byte(tag) {
				return fmt.Errorf("tag %d: got payload %v", tag, payload)
			}
		}
		return nil
	})
}

func TestRecvAnyArrivalOrder(t *testing.T) {
	// Rank 0 posts three messages to itself in a known order (inproc Send is
	// synchronous, so arrival order is the send order); RecvAny must drain
	// them oldest-first, reporting the true (from, tag) of each.
	run(t, 1, func(c comm.Comm) error {
		order := []int{7, 3, 5}
		for _, tag := range order {
			if err := c.Send(0, tag, []byte{byte(tag)}); err != nil {
				return err
			}
		}
		keys := []comm.MsgKey{{From: 0, Tag: 3}, {From: 0, Tag: 5}, {From: 0, Tag: 7}}
		for _, wantTag := range order {
			from, tag, payload, err := c.RecvAny(keys)
			if err != nil {
				return err
			}
			if from != 0 || tag != wantTag || payload[0] != byte(wantTag) {
				return fmt.Errorf("got (from=%d tag=%d), want tag %d", from, tag, wantTag)
			}
		}
		return nil
	})
}

func TestRecvAnySubsetLeavesOthersPending(t *testing.T) {
	// A RecvAny that only asks for one tag must not consume messages held
	// for other tags.
	run(t, 2, func(c comm.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 10, []byte("ten")); err != nil {
				return err
			}
			return c.Send(1, 20, []byte("twenty"))
		}
		_, tag, payload, err := c.RecvAny([]comm.MsgKey{{From: 0, Tag: 20}})
		if err != nil {
			return err
		}
		if tag != 20 || string(payload) != "twenty" {
			return fmt.Errorf("got tag %d payload %q", tag, payload)
		}
		payload, err = c.Recv(0, 10)
		if err != nil {
			return err
		}
		if string(payload) != "ten" {
			return fmt.Errorf("tag 10 payload %q", payload)
		}
		return nil
	})
}

func TestSequencerTagsUniqueAcrossCollectives(t *testing.T) {
	// Back-to-back collectives of every kind must not cross wires: each
	// invocation burns its own tag block. A tag collision would deliver one
	// round's payload to another round and corrupt the results.
	for _, p := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			run(t, p, func(c comm.Comm) error {
				var seq comm.Sequencer
				for round := 0; round < 4; round++ {
					root := round % p
					vals := []int64{int64(c.Rank() + 1), int64(round)}
					sums, err := comm.ReduceSum(c, &seq, root, vals)
					if err != nil {
						return err
					}
					if c.Rank() == root {
						wantSum := int64(p * (p + 1) / 2)
						if sums[0] != wantSum || sums[1] != int64(round*p) {
							return fmt.Errorf("round %d: sums %v, want [%d %d]", round, sums, wantSum, round*p)
						}
					} else if sums != nil {
						return fmt.Errorf("round %d: non-root got sums %v", round, sums)
					}
					parts, err := comm.Gather(c, &seq, root, []byte{byte(c.Rank()), byte(round)})
					if err != nil {
						return err
					}
					if c.Rank() == root {
						for r, part := range parts {
							if part[0] != byte(r) || part[1] != byte(round) {
								return fmt.Errorf("round %d: gathered %v from rank %d", round, part, r)
							}
						}
					}
					got, err := comm.Bcast(c, &seq, root, []byte{byte(root), byte(round)})
					if err != nil {
						return err
					}
					if got[0] != byte(root) || got[1] != byte(round) {
						return fmt.Errorf("round %d: bcast payload %v", round, got)
					}
					if err := comm.Barrier(c, &seq); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func TestBarrierSynchronises(t *testing.T) {
	// No rank may leave the barrier before every rank has entered it.
	const p = 6
	entered := make(chan int, p)
	run(t, p, func(c comm.Comm) error {
		var seq comm.Sequencer
		entered <- c.Rank()
		if err := comm.Barrier(c, &seq); err != nil {
			return err
		}
		if len(entered) != p {
			return fmt.Errorf("rank %d left the barrier with only %d ranks entered", c.Rank(), len(entered))
		}
		return nil
	})
}

func TestCountersAdd(t *testing.T) {
	a := comm.Counters{MsgsSent: 1, BytesSent: 10, MsgsRecv: 2, BytesRecv: 20}
	b := comm.Counters{MsgsSent: 3, BytesSent: 30, MsgsRecv: 4, BytesRecv: 40}
	got := a.Add(b)
	want := comm.Counters{MsgsSent: 4, BytesSent: 40, MsgsRecv: 6, BytesRecv: 60}
	if got != want {
		t.Fatalf("Add: got %+v, want %+v", got, want)
	}
	if z := (comm.Counters{}).Add(a); z != a {
		t.Fatalf("zero.Add(a): got %+v, want %+v", z, a)
	}
}

func TestCountersTrackTraffic(t *testing.T) {
	run(t, 2, func(c comm.Comm) error {
		payload := []byte("12345")
		if c.Rank() == 0 {
			if err := c.Send(1, 1, payload); err != nil {
				return err
			}
			n := c.Counters()
			if n.MsgsSent != 1 || n.BytesSent != int64(len(payload)) {
				return fmt.Errorf("sender counters %+v", n)
			}
			return nil
		}
		if _, err := c.Recv(0, 1); err != nil {
			return err
		}
		n := c.Counters()
		if n.MsgsRecv != 1 || n.BytesRecv != int64(len(payload)) {
			return fmt.Errorf("receiver counters %+v", n)
		}
		return nil
	})
}

func TestRecvTimeoutReturnsDeadlineError(t *testing.T) {
	run(t, 2, func(c comm.Comm) error {
		if c.Rank() != 0 {
			return nil // never sends
		}
		start := time.Now()
		_, err := c.RecvTimeout(1, 99, 30*time.Millisecond)
		if !errors.Is(err, comm.ErrDeadline) {
			return fmt.Errorf("got %v, want ErrDeadline", err)
		}
		var de *comm.DeadlineError
		if !errors.As(err, &de) {
			return fmt.Errorf("error %v is not a *DeadlineError", err)
		}
		if de.Rank != 0 || len(de.Keys) != 1 || de.Keys[0] != (comm.MsgKey{From: 1, Tag: 99}) {
			return fmt.Errorf("DeadlineError fields %+v", de)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			return fmt.Errorf("timeout took %v", elapsed)
		}
		if !comm.IsRecoverable(err) {
			return fmt.Errorf("deadline error should be recoverable")
		}
		return nil
	})
}

func TestErrorTyping(t *testing.T) {
	inner := errors.New("connection reset")
	pe := &comm.PeerError{Rank: 3, Err: inner}
	if !errors.Is(pe, comm.ErrPeer) {
		t.Fatal("PeerError should match ErrPeer")
	}
	if !errors.Is(pe, inner) {
		t.Fatal("PeerError should unwrap to its cause")
	}
	if !comm.IsRecoverable(pe) {
		t.Fatal("peer errors are recoverable")
	}
	if comm.IsRecoverable(errors.New("local fault")) {
		t.Fatal("arbitrary errors are not recoverable")
	}
	if comm.IsRecoverable(nil) {
		t.Fatal("nil is not recoverable")
	}
}
