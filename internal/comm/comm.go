// Package comm defines the message-passing abstraction the composition
// methods run on: ranked point-to-point sends and receives with tag
// matching, plus the handful of collectives the paper's algorithms need
// (barrier, gather, broadcast). Two fabrics implement it — an in-process
// goroutine fabric and a hand-rolled TCP socket fabric — so the same
// compositor code runs shared-memory-parallel or truly distributed.
package comm

import (
	"errors"
	"fmt"
	"time"

	"rtcomp/internal/traceid"
)

// Comm is one rank's endpoint into a P-way communicator.
//
// A Comm is driven by a single goroutine (its rank's program); Send may be
// called while another rank is blocked in Recv, but one rank must not Recv
// concurrently with itself. Tags distinguish in-flight messages between the
// same pair of ranks: a (from, tag) pair must be unique among undelivered
// messages. Negative tags are reserved for the collectives.
//
// Buffer ownership: Send does not retain payload after it returns — the
// fabric copies it or writes it out, so the caller may immediately reuse or
// recycle the buffer. Conversely, a payload returned by Recv/RecvAny (and
// their timeout forms) is handed to the caller with exclusive ownership:
// the fabric keeps no reference, so the caller may mutate it in place and,
// once done, return it to internal/bufpool for recycling.
type Comm interface {
	// Rank is this endpoint's index in [0, Size).
	Rank() int
	// Size is the number of ranks.
	Size() int
	// Send delivers payload to rank `to` with the given tag. It does not
	// block waiting for the receiver.
	Send(to, tag int, payload []byte) error
	// Recv blocks until the message with the given source and tag arrives
	// and returns its payload.
	Recv(from, tag int) ([]byte, error)
	// RecvTimeout is Recv with a deadline: if the message has not arrived
	// within the timeout it returns a *DeadlineError (matching ErrDeadline)
	// and the message, should it arrive later, stays retrievable. A
	// timeout <= 0 waits forever, exactly like Recv.
	RecvTimeout(from, tag int, timeout time.Duration) ([]byte, error)
	// RecvAny blocks until any of the (source, tag) pairs arrives and
	// returns the matched source, tag and payload — receipt in arrival
	// order, avoiding head-of-line blocking across several outstanding
	// messages.
	RecvAny(keys []MsgKey) (from, tag int, payload []byte, err error)
	// RecvAnyTimeout is RecvAny with a deadline, with the same contract as
	// RecvTimeout: timeout <= 0 waits forever, an elapsed deadline yields a
	// *DeadlineError naming the keys still outstanding.
	RecvAnyTimeout(keys []MsgKey, timeout time.Duration) (from, tag int, payload []byte, err error)
	// Counters reports the traffic this endpoint has generated so far.
	Counters() Counters
	// Close releases the endpoint. Other ranks' pending operations may fail
	// after a Close.
	Close() error
}

// CtxSender is optionally implemented by fabrics that can attach a causal
// trace context to an outgoing message. The fabric completes a context
// whose Seq is zero (minting Origin and Seq at the hand-off point) and
// records the send side of the flow on its telemetry recorder; the receive
// side is recorded when the matching Recv consumes the message, so a
// stitched timeline links the two ranks.
type CtxSender interface {
	SendCtx(to, tag int, payload []byte, tc traceid.Context) error
}

// SendCtx sends through c's CtxSender when the fabric implements it,
// falling back to a plain Send (dropping the context) otherwise. It is how
// the compositor attributes messages to (step, tile, epoch) without every
// fabric being required to carry contexts.
func SendCtx(c Comm, to, tag int, payload []byte, tc traceid.Context) error {
	if cs, ok := c.(CtxSender); ok {
		return cs.SendCtx(to, tag, payload, tc)
	}
	return c.Send(to, tag, payload)
}

// ErrDeadline is the sentinel matched (via errors.Is) by every
// *DeadlineError a fabric returns from its timeout receives.
var ErrDeadline = errors.New("comm: receive deadline exceeded")

// DeadlineError reports a receive that timed out. It records which messages
// were still outstanding so callers can attribute the stall to a rank.
type DeadlineError struct {
	Rank    int           // the waiting rank
	Keys    []MsgKey      // the (source, tag) pairs that never arrived
	Timeout time.Duration // the deadline that elapsed
}

// Error implements error.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("comm: rank %d: no message for %v within %v (deadline exceeded)",
		e.Rank, e.Keys, e.Timeout)
}

// Is reports a match against ErrDeadline.
func (e *DeadlineError) Is(target error) bool { return target == ErrDeadline }

// ErrPeer is the sentinel matched (via errors.Is) by every *PeerError.
var ErrPeer = errors.New("comm: peer failed")

// PeerError reports that a specific peer rank failed (dead connection,
// corrupt frame stream, injected death): receives from that rank cannot
// complete, while traffic with other ranks stays unaffected.
type PeerError struct {
	Rank int // the failed peer
	Err  error
}

// Error implements error.
func (e *PeerError) Error() string {
	return fmt.Sprintf("comm: peer rank %d failed: %v", e.Rank, e.Err)
}

// Is reports a match against ErrPeer.
func (e *PeerError) Is(target error) bool { return target == ErrPeer }

// Unwrap exposes the underlying transport error.
func (e *PeerError) Unwrap() error { return e.Err }

// IsRecoverable reports whether err is a per-message or per-peer failure a
// degradation policy may absorb (a missed deadline or a dead peer), as
// opposed to a fault of the local endpoint itself.
func IsRecoverable(err error) bool {
	return errors.Is(err, ErrDeadline) || errors.Is(err, ErrPeer)
}

// MsgKey identifies one expected message for RecvAny.
type MsgKey struct {
	From, Tag int
}

// Counters is a snapshot of one endpoint's traffic.
type Counters struct {
	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64
}

// String implements fmt.Stringer with the one-line form the binaries print
// in their end-of-run summaries.
func (c Counters) String() string {
	return fmt.Sprintf("sent %d msgs/%d bytes, recv %d msgs/%d bytes",
		c.MsgsSent, c.BytesSent, c.MsgsRecv, c.BytesRecv)
}

// Add returns the element-wise sum of two counters.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		MsgsSent:  c.MsgsSent + o.MsgsSent,
		BytesSent: c.BytesSent + o.BytesSent,
		MsgsRecv:  c.MsgsRecv + o.MsgsRecv,
		BytesRecv: c.BytesRecv + o.BytesRecv,
	}
}

// Reserved tag bases for collectives. Each collective call site burns one
// sequence number per invocation, so tags never collide across consecutive
// collectives. User tags must be >= 0.
const (
	tagBarrier = -1 - iota*1_000_000
	tagGather
	tagBcast
	tagReduce
)

// Sequencer hands out collective sequence numbers. Every rank must invoke
// the collectives in the same order, which makes the per-rank counter
// globally consistent without communication.
type Sequencer struct {
	barrier int
	gather  int
	bcast   int
	reduce  int
}

// ReduceSum folds each rank's int64 values element-wise at root with a
// binomial tree; root receives the sums, other ranks receive nil. Every
// rank must pass the same number of values. It waits forever on a silent
// peer; use ReduceSumTimeout when the mesh may contain dead ranks.
func ReduceSum(c Comm, seq *Sequencer, root int, values []int64) ([]int64, error) {
	return ReduceSumTimeout(c, seq, root, values, 0)
}

// ReduceSumTimeout is ReduceSum with every receive bounded by the timeout
// (<= 0 waits forever). A dead subtree surfaces as a recoverable error;
// the partial sums accumulated so far are returned alongside it, so a
// teardown path can still report what it has.
func ReduceSumTimeout(c Comm, seq *Sequencer, root int, values []int64, timeout time.Duration) ([]int64, error) {
	seq.reduce++
	base := tagReduce - seq.reduce*64
	p := c.Size()
	acc := make([]int64, len(values))
	copy(acc, values)
	var firstErr error
	// Reduce onto virtual rank 0 = root by rotating ranks.
	me := ((c.Rank()-root)%p + p) % p
	for dist := 1; dist < p; dist *= 2 {
		if me%(2*dist) == dist {
			to := ((me - dist + root) % p)
			return nil, c.Send(to, base-dist, encodeInt64s(acc))
		}
		if me%(2*dist) == 0 && me+dist < p {
			from := (me + dist + root) % p
			payload, err := c.RecvTimeout(from, base-dist, timeout)
			if err != nil {
				if IsRecoverable(err) && firstErr == nil {
					// The subtree rooted at `from` is unreachable; keep
					// folding the reachable ones.
					firstErr = fmt.Errorf("reduce recv from %d: %w", from, err)
					continue
				}
				if IsRecoverable(err) {
					continue
				}
				return nil, fmt.Errorf("reduce recv: %w", err)
			}
			vals, err := decodeInt64s(payload, len(acc))
			if err != nil {
				return nil, err
			}
			for i := range acc {
				acc[i] += vals[i]
			}
		}
	}
	return acc, firstErr
}

func encodeInt64s(vals []int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		u := uint64(v)
		for b := 0; b < 8; b++ {
			out[8*i+b] = byte(u >> (56 - 8*b))
		}
	}
	return out
}

func decodeInt64s(payload []byte, n int) ([]int64, error) {
	if len(payload) != 8*n {
		return nil, fmt.Errorf("comm: reduce payload has %d bytes, want %d", len(payload), 8*n)
	}
	out := make([]int64, n)
	for i := range out {
		var u uint64
		for b := 0; b < 8; b++ {
			u = u<<8 | uint64(payload[8*i+b])
		}
		out[i] = int64(u)
	}
	return out, nil
}

// Barrier blocks until all ranks have entered it, using a dissemination
// pattern: round j exchanges a token at distance 2^j, needing only
// ceil(log2 P) rounds for any P. It waits forever on a silent peer; use
// BarrierTimeout when the mesh may contain dead ranks.
func Barrier(c Comm, seq *Sequencer) error {
	return BarrierTimeout(c, seq, 0)
}

// BarrierTimeout is Barrier with every round's receive bounded by the
// timeout (<= 0 waits forever). A dead peer surfaces as a recoverable
// error after at most ceil(log2 P) timeouts instead of pinning the caller
// forever.
func BarrierTimeout(c Comm, seq *Sequencer, timeout time.Duration) error {
	p := c.Size()
	seq.barrier++
	if p == 1 {
		return nil
	}
	base := tagBarrier - seq.barrier*64
	for j, dist := 0, 1; dist < p; j, dist = j+1, dist*2 {
		to := (c.Rank() + dist) % p
		from := (c.Rank() - dist%p + p) % p
		if err := c.Send(to, base-j, nil); err != nil {
			return fmt.Errorf("barrier send: %w", err)
		}
		if _, err := c.RecvTimeout(from, base-j, timeout); err != nil {
			return fmt.Errorf("barrier recv: %w", err)
		}
	}
	return nil
}

// Gather collects each rank's payload at root. On root it returns a slice
// indexed by rank (root's own slot holds its local payload); on other ranks
// it returns nil. It waits forever on a silent peer; use GatherTimeout when
// the mesh may contain dead ranks.
func Gather(c Comm, seq *Sequencer, root int, payload []byte) ([][]byte, error) {
	return GatherTimeout(c, seq, root, payload, 0)
}

// GatherTimeout is Gather with a deadline: the root collects in arrival
// order and grants at most `timeout` of silence between arrivals (<= 0
// waits forever). When ranks are unreachable the root returns the partial
// result — missing ranks hold nil — alongside the first recoverable error,
// so a teardown path can report the survivors' data instead of hanging.
func GatherTimeout(c Comm, seq *Sequencer, root int, payload []byte, timeout time.Duration) ([][]byte, error) {
	seq.gather++
	tag := tagGather - seq.gather*64
	if c.Rank() != root {
		return nil, c.Send(root, tag, payload)
	}
	out := make([][]byte, c.Size())
	out[root] = payload
	var keys []MsgKey
	for r := 0; r < c.Size(); r++ {
		if r != root {
			keys = append(keys, MsgKey{From: r, Tag: tag})
		}
	}
	var firstErr error
	for len(keys) > 0 {
		from, _, data, err := c.RecvAnyTimeout(keys, timeout)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("gather: %w", err)
			}
			var perr *PeerError
			if errors.As(err, &perr) {
				keys = dropKeysFrom(keys, perr.Rank)
				continue
			}
			if errors.Is(err, ErrDeadline) {
				break
			}
			return nil, fmt.Errorf("gather: %w", err)
		}
		out[from] = data
		keys = dropKeysFrom(keys, from)
	}
	return out, firstErr
}

// Bcast sends root's payload to every rank and returns the payload on all
// ranks (including root). It waits forever on a silent root; use
// BcastTimeout when the mesh may contain dead ranks.
func Bcast(c Comm, seq *Sequencer, root int, payload []byte) ([]byte, error) {
	return BcastTimeout(c, seq, root, payload, 0)
}

// BcastTimeout is Bcast with the non-root receive bounded by the timeout
// (<= 0 waits forever).
func BcastTimeout(c Comm, seq *Sequencer, root int, payload []byte, timeout time.Duration) ([]byte, error) {
	seq.bcast++
	tag := tagBcast - seq.bcast*64
	if c.Rank() == root {
		var firstErr error
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tag, payload); err != nil {
				if IsRecoverable(err) {
					// A dead receiver cannot stall the broadcast of the
					// final image to the ranks that are still listening.
					if firstErr == nil {
						firstErr = fmt.Errorf("bcast to %d: %w", r, err)
					}
					continue
				}
				return nil, fmt.Errorf("bcast to %d: %w", r, err)
			}
		}
		return payload, firstErr
	}
	return c.RecvTimeout(root, tag, timeout)
}
