package model

import (
	"fmt"
	"math"

	"rtcomp/internal/schedule"
)

// PredictFromCensus estimates the composition time of an *implemented*
// schedule from its symbolic traffic census — the reconstruction's
// counterpart to the paper's Table 1 formulas. Per step it takes the
// busiest rank's traffic and charges
//
//	send side:    msgs*Ts + bytesSent*Tp
//	receive side: first-arrival fill (Ts + avg message bytes * Tp)
//	              plus the over work, overPixels*To
//
// and the step costs the larger of the two (network and compute engines
// overlap); steps are summed. This deliberately ignores cross-step slack,
// so it upper-bounds the free-running simulator but tracks its shape.
func PredictFromCensus(c *schedule.Census, m Params) float64 {
	total := 0.0
	for _, rs := range c.MaxRankStep() {
		send := float64(rs.MsgsSent)*m.Ts + float64(rs.BytesSent)*m.Tp
		recv := float64(rs.OverPixels) * m.To
		if rs.MsgsSent > 0 {
			recv += m.Ts + float64(rs.BytesSent)/float64(rs.MsgsSent)*m.Tp
		}
		if send > recv {
			total += send
		} else {
			total += recv
		}
	}
	return total
}

// AutoN picks the initial block count for a rotate-tiling composition by
// sweeping the generated schedules' censuses through PredictFromCensus —
// the automated form of the paper's Section 2.3 tuning. Set even to
// restrict to the 2N_RT domain (even N). maxN <= 0 sweeps up to 32.
func AutoN(p, apix int, m Params, maxN int, even bool) (int, error) {
	if p < 1 {
		return 0, fmt.Errorf("model: AutoN needs p >= 1, got %d", p)
	}
	if maxN <= 0 {
		maxN = 32
	}
	bestN, bestT := 0, math.Inf(1)
	for n := 1; n <= maxN; n++ {
		if even && n%2 != 0 {
			continue
		}
		sch, err := schedule.RT(p, n)
		if err != nil {
			return 0, err
		}
		census, err := schedule.Validate(sch, apix)
		if err != nil {
			return 0, err
		}
		if t := PredictFromCensus(census, m); t < bestT {
			bestN, bestT = n, t
		}
	}
	return bestN, nil
}
