// Package model implements the paper's theoretical performance analysis:
// the Table 1 communication and computation cost formulas for the
// binary-swap (BS), parallel-pipelined (PP) and rotate-tiling (2N_RT, N_RT)
// methods, the closed-form composition times, and the Equation (5)/(6)
// bounds that pick the optimal number of initial blocks.
//
// Conventions: A is the image size in pixels; each pixel is
// raster.BytesPerPixel bytes on the wire, so transmission terms use
// A*BytesPerPixel while computation terms use A — with the paper's worked
// examples this byte/pixel distinction is what reproduces the published
// optimal-N values.
package model

import (
	"fmt"
	"math"

	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
)

// Params are the machine constants of the paper's analysis.
type Params struct {
	Ts float64 // startup time of a communication channel, seconds
	Tp float64 // data transmission time per byte, seconds
	To float64 // computation time of the over operation per pixel, seconds
}

// PaperParams returns the constants of the paper's Section 2.3 worked
// examples: Ts = 0.005, Tp = 0.00004, To = 0.0002.
func PaperParams() Params { return Params{Ts: 0.005, Tp: 0.00004, To: 0.0002} }

// Cost is a decomposed composition time.
type Cost struct {
	Comm float64 // total communication time
	Comp float64 // total computation (over) time
}

// Total is Comm + Comp.
func (c Cost) Total() float64 { return c.Comm + c.Comp }

// BS evaluates the Table 1 row for binary-swap: log2(P) steps, exchanging
// A/2^k pixels at step k.
func BS(p int, apix int, m Params) Cost {
	s := schedule.CeilLog2(p)
	var c Cost
	for k := 1; k <= s; k++ {
		pix := float64(apix) / math.Pow(2, float64(k))
		c.Comm += m.Ts + pix*raster.BytesPerPixel*m.Tp
		c.Comp += pix * m.To
	}
	return c
}

// PP evaluates the Table 1 row for the parallel-pipelined method: P-1
// steps, moving A/P pixels in each.
func PP(p int, apix int, m Params) Cost {
	if p < 2 {
		return Cost{}
	}
	pix := float64(apix) / float64(p)
	steps := float64(p - 1)
	return Cost{
		Comm: steps * (m.Ts + pix*raster.BytesPerPixel*m.Tp),
		Comp: steps * pix * m.To,
	}
}

// TwoNRT evaluates the Table 1 row for the 2N_RT method with n initial
// blocks: ceil(log2 P) steps; at step k, k messages of A/(n*2^(k-1)) pixels
// and the matching over work.
func TwoNRT(p, n, apix int, m Params) Cost {
	s := schedule.CeilLog2(p)
	var c Cost
	for k := 1; k <= s; k++ {
		pix := float64(apix) / (float64(n) * math.Pow(2, float64(k-1)))
		kf := float64(k)
		c.Comm += kf*m.Ts + kf*pix*raster.BytesPerPixel*m.Tp
		c.Comp += kf * pix * m.To
	}
	return c
}

// NRT evaluates the Table 1 row for the N_RT method with n initial blocks:
// ceil(log2 P) steps; at step k, floor(k/2)+1 messages of A/(n*2^(k-1))
// pixels and the matching over work.
func NRT(p, n, apix int, m Params) Cost {
	s := schedule.CeilLog2(p)
	var c Cost
	for k := 1; k <= s; k++ {
		pix := float64(apix) / (float64(n) * math.Pow(2, float64(k-1)))
		f := float64(k/2 + 1)
		c.Comm += f * (m.Ts + pix*raster.BytesPerPixel*m.Tp)
		c.Comp += f * pix * m.To
	}
	return c
}

// ByName evaluates a method's Table 1 cost by its schedule name family:
// "bs", "pp", "2nrt", "nrt".
func ByName(method string, p, n, apix int, m Params) (Cost, error) {
	switch method {
	case "bs":
		return BS(p, apix, m), nil
	case "pp":
		return PP(p, apix, m), nil
	case "2nrt":
		return TwoNRT(p, n, apix, m), nil
	case "nrt":
		return NRT(p, n, apix, m), nil
	}
	return Cost{}, fmt.Errorf("model: unknown method %q", method)
}

// ClosedFormRT is the paper's closed-form RT composition time
//
//	T(N) = Ts*N^ceil(log P) + (A/N)*(Tp + To*ceil(log P)*(1-(1/2)^ceil(log P)))*(1-(1/2)^ceil(log P))
//
// with A taken in bytes (image pixels times raster.BytesPerPixel), which is
// the reading under which the paper's Equation (5) example reproduces
// (optimal N of about 4.3 at P=32 with the PaperParams constants).
func ClosedFormRT(p, n, apix int, m Params) float64 {
	s := float64(schedule.CeilLog2(p))
	abytes := float64(apix) * raster.BytesPerPixel
	g := 1 - math.Pow(0.5, s)
	return m.Ts*math.Pow(float64(n), s) + (abytes/float64(n))*(m.Tp+m.To*s*g)*g
}

// boundRHS is the right-hand side shared by Equations (5) and (6):
//
//	(2A/Ts) * (Tp + To*ceil(log P)*(1-(1/2)^ceil(log P))) * (1-(1/2)^ceil(log P))
func boundRHS(p, apix int, m Params) float64 {
	s := float64(schedule.CeilLog2(p))
	abytes := float64(apix) * raster.BytesPerPixel
	g := 1 - math.Pow(0.5, s)
	return (2 * abytes / m.Ts) * (m.Tp + m.To*s*g) * g
}

// OptimalN2NRT solves the paper's Equation (5),
//
//	N(N+2)((N+2)^s - N^s) < RHS,
//
// for the largest real N satisfying it (bisection), and returns both the
// continuous bound and the even block count the paper derives from it
// (rounding down to an even N >= 2). With PaperParams, P=32 and a 512x512
// image it reproduces the paper's example: bound ~4.3, N = 4.
func OptimalN2NRT(p, apix int, m Params) (bound float64, n int) {
	s := float64(schedule.CeilLog2(p))
	f := func(x float64) float64 {
		return x*(x+2)*(math.Pow(x+2, s)-math.Pow(x, s)) - boundRHS(p, apix, m)
	}
	bound = bisect(f, 1, 1e6)
	n = int(bound)
	n -= n % 2
	if n < 2 {
		n = 2
	}
	return bound, n
}

// OptimalNNRT solves the paper's Equation (6),
//
//	N(N+1)((N+1)^s - N^s) < RHS,
//
// returning the continuous bound and the integer block count (rounded
// down, minimum 1).
//
// Note: evaluating Equation (6) as printed with the paper's example
// constants yields a bound near 5.4 rather than the 3.4 the paper states;
// the OCR-damaged closed forms do not allow recovering the exact original
// expression (see DESIGN.md). The full N_RT model curve and the simulator
// both still have their minimum at a small N, and the paper's final choice
// of a small N (it uses N=3 at P=32) is preserved by callers that sweep the
// model rather than trust the bound alone.
func OptimalNNRT(p, apix int, m Params) (bound float64, n int) {
	s := float64(schedule.CeilLog2(p))
	f := func(x float64) float64 {
		return x*(x+1)*(math.Pow(x+1, s)-math.Pow(x, s)) - boundRHS(p, apix, m)
	}
	bound = bisect(f, 1, 1e6)
	n = int(bound)
	if n < 1 {
		n = 1
	}
	return bound, n
}

// BestNByClosedForm sweeps the closed-form RT time over n in [1, maxN] and
// returns the minimiser, restricted to even n when even is set (the 2N_RT
// domain).
func BestNByClosedForm(p, apix, maxN int, even bool, m Params) int {
	bestN, bestT := 0, math.Inf(1)
	for n := 1; n <= maxN; n++ {
		if even && n%2 != 0 {
			continue
		}
		if t := ClosedFormRT(p, n, apix, m); t < bestT {
			bestN, bestT = n, t
		}
	}
	return bestN
}

// bisect finds the root of a monotone-increasing f in [lo, hi].
func bisect(f func(float64) float64, lo, hi float64) float64 {
	if f(lo) > 0 {
		return lo
	}
	if f(hi) < 0 {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
