package model

import (
	"math"
	"testing"

	"rtcomp/internal/schedule"
)

const apix512 = 512 * 512

func TestBSCostStructure(t *testing.T) {
	m := PaperParams()
	c := BS(32, apix512, m)
	// 5 startups.
	wantStartup := 5 * m.Ts
	// Geometric transmission: A*(1-1/32) pixels * 2 bytes.
	wantComm := wantStartup + float64(apix512)*(1-1.0/32)*2*m.Tp
	if math.Abs(c.Comm-wantComm) > 1e-9 {
		t.Fatalf("BS comm = %v, want %v", c.Comm, wantComm)
	}
	wantComp := float64(apix512) * (1 - 1.0/32) * m.To
	if math.Abs(c.Comp-wantComp) > 1e-9 {
		t.Fatalf("BS comp = %v, want %v", c.Comp, wantComp)
	}
}

func TestPPCostStructure(t *testing.T) {
	m := PaperParams()
	p := 32
	c := PP(p, apix512, m)
	pix := float64(apix512) / float64(p)
	if got, want := c.Comm, 31*(m.Ts+pix*2*m.Tp); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PP comm = %v, want %v", got, want)
	}
	if got, want := c.Comp, 31*pix*m.To; math.Abs(got-want) > 1e-9 {
		t.Fatalf("PP comp = %v, want %v", got, want)
	}
	if got := PP(1, apix512, m).Total(); got != 0 {
		t.Fatalf("PP(1) = %v, want 0", got)
	}
}

func TestRTBlockSizeHalvesPerStep(t *testing.T) {
	m := PaperParams()
	// Doubling N must (nearly) halve the transmission and computation
	// terms while startups stay fixed: check via differences.
	c4 := TwoNRT(32, 4, apix512, m)
	c8 := TwoNRT(32, 8, apix512, m)
	startup := 0.0
	for k := 1; k <= 5; k++ {
		startup += float64(k) * m.Ts
	}
	if math.Abs((c4.Comm-startup)-2*(c8.Comm-startup)) > 1e-9 {
		t.Fatalf("2N_RT comm does not scale as 1/N: %v vs %v", c4.Comm, c8.Comm)
	}
	if math.Abs(c4.Comp-2*c8.Comp) > 1e-9 {
		t.Fatalf("2N_RT comp does not scale as 1/N: %v vs %v", c4.Comp, c8.Comp)
	}
}

func TestNRTMessageFactors(t *testing.T) {
	m := Params{Ts: 1, Tp: 0, To: 0}
	// With only startups, N_RT cost is sum of floor(k/2)+1 for k=1..5:
	// 1+2+2+3+3 = 11.
	c := NRT(32, 3, apix512, m)
	if math.Abs(c.Comm-11) > 1e-12 {
		t.Fatalf("N_RT startup factors sum = %v, want 11", c.Comm)
	}
	// 2N_RT: sum of k = 15.
	c2 := TwoNRT(32, 4, apix512, m)
	if math.Abs(c2.Comm-15) > 1e-12 {
		t.Fatalf("2N_RT startup factors sum = %v, want 15", c2.Comm)
	}
}

// The paper's Equation (5) worked example: P=32, Ts=0.005, Tp=0.00004,
// To=0.0002 on a 512x512 image gives a bound of about 4.3, hence N=4 for
// the 2N_RT method.
func TestOptimalNExamples(t *testing.T) {
	m := PaperParams()
	bound, n := OptimalN2NRT(32, apix512, m)
	if bound < 4.0 || bound > 4.5 {
		t.Fatalf("Eq (5) bound = %v, paper says about 4.3", bound)
	}
	if n != 4 {
		t.Fatalf("Eq (5) N = %d, paper says 4", n)
	}
	// Equation (6) as printed gives ~5.4 (the paper states 3.4; see the
	// OCR note in the doc comment). Pin the implemented behaviour.
	bound6, n6 := OptimalNNRT(32, apix512, m)
	if bound6 < 5.0 || bound6 > 6.0 {
		t.Fatalf("Eq (6) bound = %v, expected ~5.4 as implemented", bound6)
	}
	if n6 != int(bound6) {
		t.Fatalf("Eq (6) N = %d, want floor of %v", n6, bound6)
	}
}

// The closed-form curve must be U-shaped in N and its minimiser must agree
// with the Equation (5) bound to within one even step.
func TestClosedFormUShape(t *testing.T) {
	m := PaperParams()
	p := 32
	best := BestNByClosedForm(p, apix512, 32, true, m)
	if best < 2 || best > 8 {
		t.Fatalf("closed-form best even N = %d, expected small", best)
	}
	_, nEq := OptimalN2NRT(p, apix512, m)
	if d := best - nEq; d < -2 || d > 2 {
		t.Fatalf("closed-form minimiser %d far from Eq (5) choice %d", best, nEq)
	}
	// U-shape: endpoints worse than the minimum.
	tBest := ClosedFormRT(p, best, apix512, m)
	if ClosedFormRT(p, 1, apix512, m) <= tBest {
		t.Fatal("no falling arm in closed form")
	}
	if ClosedFormRT(p, 32, apix512, m) <= tBest {
		t.Fatal("no rising arm in closed form")
	}
}

func TestByName(t *testing.T) {
	m := PaperParams()
	for _, name := range []string{"bs", "pp", "2nrt", "nrt"} {
		if _, err := ByName(name, 32, 4, apix512, m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("bogus", 32, 4, apix512, m); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestCostsPositiveAndMonotoneInA(t *testing.T) {
	m := PaperParams()
	for _, p := range []int{2, 8, 32} {
		small := TwoNRT(p, 4, 1024, m).Total()
		large := TwoNRT(p, 4, 4096, m).Total()
		if small <= 0 || large <= small {
			t.Fatalf("p=%d: costs not monotone in A: %v, %v", p, small, large)
		}
	}
}

func TestPredictFromCensusRanksMethods(t *testing.T) {
	m := Params{Ts: 5e-4, Tp: 4e-8, To: 1.5e-7}
	apix := 512 * 512
	times := map[string]float64{}
	bs, _ := schedule.BinarySwap(32)
	pp, _ := schedule.Pipeline(32)
	tree, _ := schedule.Tree(32)
	rt, _ := schedule.RT(32, 4)
	for name, s := range map[string]*schedule.Schedule{"bs": bs, "pp": pp, "tree": tree, "rt": rt} {
		c, err := schedule.Validate(s, apix)
		if err != nil {
			t.Fatal(err)
		}
		times[name] = PredictFromCensus(c, m)
		if times[name] <= 0 {
			t.Fatalf("%s: non-positive prediction", name)
		}
	}
	if !(times["rt"] < times["bs"] && times["bs"] < times["pp"] && times["pp"] < times["tree"]) {
		t.Fatalf("predictor ordering wrong: %v", times)
	}
}

func TestAutoN(t *testing.T) {
	m := Params{Ts: 5e-4, Tp: 4e-8, To: 1.5e-7}
	n, err := AutoN(32, 512*512, m, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 || n > 16 {
		t.Fatalf("AutoN = %d, want a moderate block count", n)
	}
	even, err := AutoN(32, 512*512, m, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	if even%2 != 0 {
		t.Fatalf("even AutoN = %d", even)
	}
	// The auto pick must predict at least as fast as the naive N=1.
	s1, _ := schedule.RT(32, 1)
	c1, _ := schedule.Validate(s1, 512*512)
	sn, _ := schedule.RT(32, n)
	cn, _ := schedule.Validate(sn, 512*512)
	if PredictFromCensus(cn, m) > PredictFromCensus(c1, m) {
		t.Fatal("AutoN picked something worse than N=1")
	}
	if _, err := AutoN(0, 100, m, 4, false); err == nil {
		t.Fatal("p=0 accepted")
	}
}
