package gray

import (
	"testing"
	"time"

	"rtcomp/internal/telemetry"
)

// TestEstimatorColdStart pins the cold-start contract: before MinSamples
// observations the estimator answers the static deadline verbatim — 0
// (wait forever) stays 0, a configured static stays unclamped.
func TestEstimatorColdStart(t *testing.T) {
	e := NewEstimator(Config{Static: 2 * time.Second, MinSamples: 8})
	if d := e.Deadline(ClassStep, 3); d != 2*time.Second {
		t.Fatalf("cold deadline = %v, want the static 2s", d)
	}
	// Staying below MinSamples keeps the static fallback.
	for i := 0; i < 7; i++ {
		e.Observe(ClassStep, 3, time.Millisecond)
	}
	if d := e.Deadline(ClassStep, 3); d != 2*time.Second {
		t.Fatalf("deadline after 7 samples = %v, want static until MinSamples", d)
	}
	// Other peers and classes are independently cold.
	e.Observe(ClassStep, 3, time.Millisecond)
	if d := e.Deadline(ClassStep, 4); d != 2*time.Second {
		t.Fatalf("peer 4 deadline = %v, want static (no samples)", d)
	}
	if d := e.Deadline(ClassGather, 3); d != 2*time.Second {
		t.Fatalf("gather deadline = %v, want static (other class)", d)
	}
	// Static 0 means "wait forever" cold.
	z := NewEstimator(Config{})
	if d := z.Deadline(ClassStep, 0); d != 0 {
		t.Fatalf("zero-static cold deadline = %v, want 0", d)
	}
	// A nil estimator is inert.
	var nilE *Estimator
	nilE.Observe(ClassStep, 0, time.Millisecond)
	if d := nilE.Deadline(ClassStep, 0); d != 0 {
		t.Fatalf("nil estimator deadline = %v, want 0", d)
	}
}

// TestEstimatorWarm checks that a warm peer's deadline tracks its latency
// with the configured headroom and sits far below a loose static value.
func TestEstimatorWarm(t *testing.T) {
	e := NewEstimator(Config{Static: 10 * time.Second, Floor: time.Millisecond, MinSamples: 8})
	for i := 0; i < 100; i++ {
		e.Observe(ClassStep, 1, 10*time.Millisecond)
	}
	d := e.Deadline(ClassStep, 1)
	// quantile ~= 10ms (one histogram bucket of slack), x4 headroom.
	if d < 20*time.Millisecond || d > 100*time.Millisecond {
		t.Fatalf("warm deadline = %v, want ~40ms (10ms q99 x4)", d)
	}
	if d >= 10*time.Second {
		t.Fatalf("warm deadline %v did not tighten below the static value", d)
	}
}

// TestEstimatorClockJump pins that negative durations — wall-clock jumps or
// monotonic anomalies — are clamped to zero and cannot wedge the estimator
// into a hair-trigger or panic.
func TestEstimatorClockJump(t *testing.T) {
	e := NewEstimator(Config{Static: time.Second, Floor: 2 * time.Millisecond, MinSamples: 4})
	e.Observe(ClassStep, 0, 10*time.Millisecond)
	e.Observe(ClassStep, 0, -5*time.Hour) // clock jumped backwards
	e.Observe(ClassStep, 0, -1)
	e.Observe(ClassStep, 0, 10*time.Millisecond)
	d := e.Deadline(ClassStep, 0)
	if d < 2*time.Millisecond {
		t.Fatalf("deadline %v fell below the floor after clock jumps", d)
	}
	if d > time.Second {
		t.Fatalf("deadline %v exceeded the static ceiling after clock jumps", d)
	}
}

// TestEstimatorQuantileDrift feeds a burst of slow samples after a fast
// steady state and requires the deadline to widen: the tail quantile must
// absorb the new regime rather than the EWMA alone averaging it away.
func TestEstimatorQuantileDrift(t *testing.T) {
	e := NewEstimator(Config{Static: time.Minute, Floor: time.Millisecond, MinSamples: 8})
	for i := 0; i < 50; i++ {
		e.Observe(ClassStep, 2, 5*time.Millisecond)
	}
	before := e.Deadline(ClassStep, 2)
	for i := 0; i < 50; i++ {
		e.Observe(ClassStep, 2, 100*time.Millisecond)
	}
	after := e.Deadline(ClassStep, 2)
	if after <= before {
		t.Fatalf("deadline did not widen after a slow burst: before=%v after=%v", before, after)
	}
	// The q99 now sits in the 100ms regime; with x4 headroom the deadline
	// must cover a straggler of the new magnitude.
	if after < 100*time.Millisecond {
		t.Fatalf("post-burst deadline %v does not cover the 100ms regime", after)
	}
}

// TestEstimatorClamps pins floor and ceiling behavior at both extremes.
func TestEstimatorClamps(t *testing.T) {
	e := NewEstimator(Config{
		Static: time.Second, Floor: 20 * time.Millisecond,
		Ceiling: 200 * time.Millisecond, MinSamples: 4,
	})
	// Microsecond-fast peers clamp up to the floor.
	for i := 0; i < 20; i++ {
		e.Observe(ClassStep, 0, 10*time.Microsecond)
	}
	if d := e.Deadline(ClassStep, 0); d != 20*time.Millisecond {
		t.Fatalf("fast-peer deadline = %v, want the 20ms floor", d)
	}
	// Very slow peers clamp down to the ceiling.
	for i := 0; i < 20; i++ {
		e.Observe(ClassStep, 1, 3*time.Second)
	}
	if d := e.Deadline(ClassStep, 1); d != 200*time.Millisecond {
		t.Fatalf("slow-peer deadline = %v, want the 200ms ceiling", d)
	}
	// With no explicit ceiling, Static bounds the adaptive deadline.
	e2 := NewEstimator(Config{Static: 100 * time.Millisecond, MinSamples: 4})
	for i := 0; i < 20; i++ {
		e2.Observe(ClassStep, 0, 5*time.Second)
	}
	if d := e2.Deadline(ClassStep, 0); d != 100*time.Millisecond {
		t.Fatalf("deadline = %v, want implicit static ceiling 100ms", d)
	}
}

// TestEstimatorBaseline checks that gathered histogram snapshots seed the
// per-class baseline used by peers with no history of their own.
func TestEstimatorBaseline(t *testing.T) {
	src := &telemetry.Histogram{}
	for i := 0; i < 100; i++ {
		src.Observe(8 * time.Millisecond)
	}
	e := NewEstimator(Config{Static: 10 * time.Second, Floor: time.Millisecond, MinSamples: 8})
	e.IngestBaseline(ClassSession, src.Snapshot(telemetry.HistSessionRTT))
	d := e.Deadline(ClassSession, 7) // peer 7 has no samples of its own
	if d >= 10*time.Second {
		t.Fatalf("baseline deadline = %v, still the static fallback", d)
	}
	if d < 8*time.Millisecond || d > 200*time.Millisecond {
		t.Fatalf("baseline deadline = %v, want ~32ms (8ms q99 x4)", d)
	}
	// A peer's own samples take over once warm, even if they disagree.
	for i := 0; i < 20; i++ {
		e.Observe(ClassSession, 7, 100*time.Millisecond)
	}
	if d := e.Deadline(ClassSession, 7); d < 100*time.Millisecond {
		t.Fatalf("warm deadline = %v, baseline still winning over per-peer data", d)
	}
}

// TestEstimatorExpected pins the EWMA accessor used by admission control.
func TestEstimatorExpected(t *testing.T) {
	e := NewEstimator(Config{MinSamples: 4})
	if d := e.Expected(ClassRender, 0); d != 0 {
		t.Fatalf("cold Expected = %v, want 0", d)
	}
	for i := 0; i < 10; i++ {
		e.Observe(ClassRender, 0, 50*time.Millisecond)
	}
	d := e.Expected(ClassRender, 0)
	if d < 40*time.Millisecond || d > 60*time.Millisecond {
		t.Fatalf("Expected = %v, want ~50ms", d)
	}
}

// TestHedgeDelay checks the hedge threshold derivation.
func TestHedgeDelay(t *testing.T) {
	e := NewEstimator(Config{Static: 400 * time.Millisecond, Floor: time.Millisecond, MinSamples: 4})
	// Cold: a quarter of the static deadline.
	if d := e.HedgeDelay(ClassStep, 0); d != 100*time.Millisecond {
		t.Fatalf("cold hedge delay = %v, want static/4 = 100ms", d)
	}
	var nilE *Estimator
	if d := nilE.HedgeDelay(ClassStep, 0); d != 0 {
		t.Fatalf("nil hedge delay = %v, want 0", d)
	}
}
