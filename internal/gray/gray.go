// Package gray detects and masks gray failures: peers that are slow but not
// dead. The fault machinery elsewhere in this repo (receive deadlines,
// buddy-replica recovery, reliable sessions) only triggers on silence or
// death — a rank running at a tenth of its usual speed never trips any of
// it, yet stalls every compositing stage behind it.
//
// Two cooperating pieces live here:
//
//   - Estimator derives per-peer, per-phase receive deadlines from observed
//     latency (EWMA + a tail quantile over the telemetry histograms) instead
//     of a single static -recv-timeout, clamped to a floor/ceiling and
//     falling back to the static value until enough samples arrive.
//   - Health scores each peer from deadline misses, hedges won against it
//     and session retransmits, distinguishing a brownout (slow, keep
//     waiting, hedge around it) from death (escalate to the
//     failure-agreement path) only past a sustained threshold.
package gray

import (
	"sync"
	"time"

	"rtcomp/internal/telemetry"
)

// Class partitions latency observations by communication phase, so a slow
// gather (normal: the root is draining many peers) does not inflate the
// deadline of scheduled step exchanges.
type Class int

const (
	// ClassStep is a scheduled block transfer between compositing peers.
	ClassStep Class = iota
	// ClassGather is a tile/final gather contribution toward the root.
	ClassGather
	// ClassSession is transport-level RTT (tcpnet send -> cumulative ack).
	ClassSession
	// ClassRender is a whole render request (rtserve admission control).
	ClassRender

	numClasses
)

// String names the class for metrics and dumps.
func (c Class) String() string {
	switch c {
	case ClassStep:
		return "step"
	case ClassGather:
		return "gather"
	case ClassSession:
		return "session"
	case ClassRender:
		return "render"
	default:
		return "unknown"
	}
}

// Config tunes an Estimator. The zero value of every field selects a
// sensible default (see resolved); Static alone is commonly set.
type Config struct {
	// Static is the cold-start deadline: returned verbatim until a peer
	// (or the ingested baseline) has MinSamples observations. This is the
	// old -recv-timeout value; 0 keeps "wait forever" semantics cold.
	Static time.Duration
	// Floor bounds the adaptive deadline from below so a burst of
	// microsecond-fast samples cannot produce a hair-trigger deadline.
	Floor time.Duration
	// Ceiling bounds the adaptive deadline from above. 0 defaults to
	// Static when Static > 0 — adaptivity may tighten the operator's
	// deadline but never loosen it — and is uncapped otherwise.
	Ceiling time.Duration
	// Quantile is the tail quantile of the latency distribution that the
	// deadline tracks (default 0.99).
	Quantile float64
	// Multiplier is the headroom factor applied over max(EWMA, quantile)
	// (default 4).
	Multiplier float64
	// Alpha is the EWMA smoothing factor in (0,1] (default 0.2).
	Alpha float64
	// MinSamples is how many per-peer observations the estimator needs
	// before it trusts itself over the baseline/static fallback (default 8).
	MinSamples int
}

// resolved fills defaulted fields.
func (c Config) resolved() Config {
	if c.Floor <= 0 {
		c.Floor = 5 * time.Millisecond
	}
	if c.Ceiling <= 0 && c.Static > 0 {
		c.Ceiling = c.Static
	}
	if c.Quantile <= 0 || c.Quantile > 1 {
		c.Quantile = 0.99
	}
	if c.Multiplier <= 0 {
		c.Multiplier = 4
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	return c
}

// statKey identifies one per-peer latency series.
type statKey struct {
	class Class
	peer  int
}

// peerStat is one peer's latency series: a histogram for the tail quantile
// plus an EWMA for the central tendency.
type peerStat struct {
	n    int64
	ewma float64 // nanoseconds
	hist *telemetry.Histogram
}

// Estimator derives per-peer receive deadlines from observed latency. All
// methods are safe for concurrent use and safe on a nil receiver (a nil
// estimator always answers with the zero deadline, i.e. "use the static
// path").
type Estimator struct {
	cfg   Config
	mu    sync.Mutex
	peers map[statKey]*peerStat
	base  [numClasses]*telemetry.Histogram
}

// NewEstimator builds an estimator; zero-valued Config fields take defaults.
func NewEstimator(cfg Config) *Estimator {
	e := &Estimator{cfg: cfg.resolved(), peers: make(map[statKey]*peerStat)}
	for i := range e.base {
		e.base[i] = &telemetry.Histogram{}
	}
	return e
}

// Static reports the configured cold-start deadline.
func (e *Estimator) Static() time.Duration {
	if e == nil {
		return 0
	}
	return e.cfg.Static
}

// Observe records one latency sample for a peer. Negative durations (clock
// jumps, monotonic anomalies) are clamped to zero rather than poisoning the
// series.
func (e *Estimator) Observe(class Class, peer int, d time.Duration) {
	if e == nil || class < 0 || class >= numClasses {
		return
	}
	if d < 0 {
		d = 0
	}
	k := statKey{class: class, peer: peer}
	e.mu.Lock()
	st := e.peers[k]
	if st == nil {
		st = &peerStat{hist: &telemetry.Histogram{}}
		e.peers[k] = st
	}
	if st.n == 0 {
		st.ewma = float64(d)
	} else {
		st.ewma += e.cfg.Alpha * (float64(d) - st.ewma)
	}
	st.n++
	h := st.hist
	e.mu.Unlock()
	h.Observe(d)
}

// IngestBaseline merges a previously gathered histogram snapshot (e.g. the
// PR 7 session-RTT or tile-latency digests) into the class-wide baseline
// used before a specific peer has enough of its own samples.
func (e *Estimator) IngestBaseline(class Class, st telemetry.HistStat) {
	if e == nil || class < 0 || class >= numClasses {
		return
	}
	e.base[class].Merge(st)
}

// clamp applies the floor/ceiling bounds to an adaptive deadline.
func (e *Estimator) clamp(d time.Duration) time.Duration {
	if d < e.cfg.Floor {
		d = e.cfg.Floor
	}
	if e.cfg.Ceiling > 0 && d > e.cfg.Ceiling {
		d = e.cfg.Ceiling
	}
	return d
}

// Deadline answers the receive deadline to apply while waiting on a peer in
// the given phase: max(EWMA, Quantile) x Multiplier clamped to
// [Floor, Ceiling] once the peer is warm; the class baseline when only
// gathered history exists; the static value cold. A zero result means "no
// deadline" (static was zero and nothing is warm).
func (e *Estimator) Deadline(class Class, peer int) time.Duration {
	if e == nil || class < 0 || class >= numClasses {
		return 0
	}
	e.mu.Lock()
	st := e.peers[statKey{class: class, peer: peer}]
	var (
		n    int64
		ewma float64
		hist *telemetry.Histogram
	)
	if st != nil {
		n, ewma, hist = st.n, st.ewma, st.hist
	}
	base := e.base[class]
	cfg := e.cfg
	e.mu.Unlock()

	switch {
	case n >= int64(cfg.MinSamples):
		q := hist.Quantile(cfg.Quantile)
		if ew := time.Duration(ewma); ew > q {
			q = ew
		}
		return e.clamp(time.Duration(float64(q) * cfg.Multiplier))
	case base.Count() >= int64(cfg.MinSamples):
		return e.clamp(time.Duration(float64(base.Quantile(cfg.Quantile)) * cfg.Multiplier))
	default:
		return cfg.Static
	}
}

// Expected answers the smoothed typical latency of a peer in a phase; zero
// while cold. Admission control uses this to shed requests that cannot
// finish before their deadline.
func (e *Estimator) Expected(class Class, peer int) time.Duration {
	if e == nil || class < 0 || class >= numClasses {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.peers[statKey{class: class, peer: peer}]
	if st == nil || st.n < int64(e.cfg.MinSamples) {
		return 0
	}
	return time.Duration(st.ewma)
}

// HedgeDelay answers how long a transfer from a peer may be overdue before
// a speculative replica request is worth issuing: a quarter of the adaptive
// deadline, never below the floor. Zero means "no adaptive opinion".
func (e *Estimator) HedgeDelay(class Class, peer int) time.Duration {
	d := e.Deadline(class, peer)
	if d <= 0 {
		return 0
	}
	d /= 4
	if e != nil && d < e.cfg.Floor {
		d = e.cfg.Floor
	}
	return d
}
