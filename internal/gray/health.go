package gray

import (
	"fmt"
	"sync"

	"rtcomp/internal/telemetry"
)

// HealthConfig tunes peer-health scoring. The zero value of every field
// selects a default (see resolvedHealth).
type HealthConfig struct {
	// GrayScore is the score at which a peer is flagged gray — slow enough
	// that hedging around it is justified (default 6: two consecutive
	// deadline misses at the default MissWeight).
	GrayScore float64
	// EscalateScore is the score past which ShouldEscalate reports true and
	// the caller may hand the peer to the failure-agreement path. It should
	// be several consecutive unanswered deadlines' worth: a browned-out
	// peer keeps delivering (each arrival decays its score), a dead one
	// climbs monotonically (default 18: six consecutive misses).
	EscalateScore float64
	// MissWeight is added per receive-deadline miss (default 3).
	MissWeight float64
	// HedgeWeight is added per hedge won against the peer (default 1).
	HedgeWeight float64
	// RetransmitWeight is added per session-frame retransmit (default 0.5).
	RetransmitWeight float64
	// Decay multiplies the score on every successful arrival from the peer
	// (default 0.5), so sustained scores require sustained misbehavior.
	Decay float64
}

// resolvedHealth fills defaulted fields.
func (c HealthConfig) resolvedHealth() HealthConfig {
	if c.GrayScore <= 0 {
		c.GrayScore = 6
	}
	if c.EscalateScore <= 0 {
		c.EscalateScore = 18
	}
	if c.MissWeight <= 0 {
		c.MissWeight = 3
	}
	if c.HedgeWeight <= 0 {
		c.HedgeWeight = 1
	}
	if c.RetransmitWeight <= 0 {
		c.RetransmitWeight = 0.5
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.5
	}
	return c
}

// peerHealth is one peer's running score and event tallies.
type peerHealth struct {
	score  float64
	misses int64
	hedges int64
	retx   int64
	gray   bool
}

// PeerHealth is a point-in-time snapshot of one peer's health.
type PeerHealth struct {
	Peer        int
	Score       float64
	Misses      int64
	HedgesWon   int64
	Retransmits int64
	Gray        bool
}

// Health scores peers from gray-failure signals. All methods are safe for
// concurrent use and safe on a nil receiver (a nil Health never flags or
// escalates anyone, preserving the pre-existing silence-only semantics).
type Health struct {
	cfg  HealthConfig
	tel  *telemetry.Recorder
	rank int
	mu   sync.Mutex
	peer map[int]*peerHealth
}

// NewHealth builds a health tracker for one rank; tel may be nil.
func NewHealth(cfg HealthConfig, tel *telemetry.Recorder, rank int) *Health {
	return &Health{cfg: cfg.resolvedHealth(), tel: tel, rank: rank, peer: make(map[int]*peerHealth)}
}

// get returns (creating) the peer's record; caller holds h.mu.
func (h *Health) get(peer int) *peerHealth {
	ph := h.peer[peer]
	if ph == nil {
		ph = &peerHealth{}
		h.peer[peer] = ph
	}
	return ph
}

// bump adds w to the peer's score and records a gray transition.
func (h *Health) bump(peer int, w float64) {
	ph := h.get(peer)
	ph.score += w
	if !ph.gray && ph.score >= h.cfg.GrayScore {
		ph.gray = true
		h.tel.Add(h.rank, telemetry.CtrPeerGray, 1)
		h.tel.Flight(h.rank, telemetry.FlightGray, telemetry.StepNone, -1, peer,
			fmt.Sprintf("peer gray: score=%.1f", ph.score))
	}
}

// DeadlineMiss records a receive deadline that expired while the peer still
// owed data.
func (h *Health) DeadlineMiss(peer int) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.get(peer).misses++
	h.bump(peer, h.cfg.MissWeight)
}

// HedgeWon records a hedged replica beating the peer's original transfer.
func (h *Health) HedgeWon(peer int) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.get(peer).hedges++
	h.bump(peer, h.cfg.HedgeWeight)
}

// Retransmit records session frames replayed to the peer after an outage.
func (h *Health) Retransmit(peer int, frames int) {
	if h == nil || frames <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.get(peer).retx += int64(frames)
	h.bump(peer, h.cfg.RetransmitWeight*float64(frames))
}

// Ok records a successful arrival from the peer, decaying its score: a
// brownout that still makes progress hovers below the escalation bar.
func (h *Health) Ok(peer int) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ph := h.peer[peer]
	if ph == nil {
		return
	}
	ph.score *= h.cfg.Decay
	if ph.gray && ph.score < h.cfg.GrayScore/2 {
		ph.gray = false
		h.tel.Flight(h.rank, telemetry.FlightGray, telemetry.StepNone, -1, peer,
			fmt.Sprintf("peer recovered: score=%.1f", ph.score))
	}
}

// Score answers the peer's current score (0 if unknown).
func (h *Health) Score(peer int) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if ph := h.peer[peer]; ph != nil {
		return ph.score
	}
	return 0
}

// Gray reports whether the peer is currently flagged gray.
func (h *Health) Gray(peer int) bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ph := h.peer[peer]
	return ph != nil && ph.gray
}

// ShouldEscalate reports whether the peer's misbehavior has been sustained
// enough to justify the failure-agreement path. The caller decides what to
// do with the answer (and records the escalation).
func (h *Health) ShouldEscalate(peer int) bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ph := h.peer[peer]
	return ph != nil && ph.score >= h.cfg.EscalateScore
}

// Snapshot returns every tracked peer's state, for tables and /metrics.
func (h *Health) Snapshot() []PeerHealth {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]PeerHealth, 0, len(h.peer))
	for p, ph := range h.peer {
		out = append(out, PeerHealth{
			Peer: p, Score: ph.score,
			Misses: ph.misses, HedgesWon: ph.hedges, Retransmits: ph.retx,
			Gray: ph.gray,
		})
	}
	return out
}
