package gray

import (
	"testing"

	"rtcomp/internal/telemetry"
)

// TestHealthGrayTransition checks that sustained deadline misses flag a
// peer gray and that the transition is counted and flight-recorded.
func TestHealthGrayTransition(t *testing.T) {
	rec := telemetry.New()
	h := NewHealth(HealthConfig{}, rec, 0)
	if h.Gray(5) {
		t.Fatal("fresh peer flagged gray")
	}
	h.DeadlineMiss(5) // +3
	if h.Gray(5) {
		t.Fatal("one miss flagged gray")
	}
	h.DeadlineMiss(5) // +3 -> 6 = default GrayScore
	if !h.Gray(5) {
		t.Fatalf("two misses (score %.1f) did not flag gray", h.Score(5))
	}
	found := false
	for _, ev := range rec.FlightEvents() {
		if ev.Kind == telemetry.FlightGray && ev.Peer == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("gray transition missing from the flight recorder")
	}
}

// TestHealthBrownoutVsDeath is the core brownout/death distinction: a slow
// peer that still delivers (miss, arrive, miss, arrive ...) must hover
// below the escalation bar forever, while a silent peer's score climbs
// monotonically past it.
func TestHealthBrownoutVsDeath(t *testing.T) {
	h := NewHealth(HealthConfig{}, nil, 0)
	// Brownout: every miss is followed by an arrival that decays the score.
	for i := 0; i < 100; i++ {
		h.DeadlineMiss(1)
		if h.ShouldEscalate(1) {
			t.Fatalf("brownout peer escalated after %d miss/arrive cycles (score %.1f)", i, h.Score(1))
		}
		h.Ok(1)
	}
	// Death: misses with no arrivals climb past the bar.
	for i := 0; i < 100; i++ {
		h.DeadlineMiss(2)
		if h.ShouldEscalate(2) {
			if i < 3 {
				t.Fatalf("dead peer escalated after only %d misses", i+1)
			}
			return
		}
	}
	t.Fatal("dead peer never escalated")
}

// TestHealthSignals checks that hedge wins and retransmits feed the score
// with their configured weights and show up in snapshots.
func TestHealthSignals(t *testing.T) {
	h := NewHealth(HealthConfig{}, nil, 0)
	for i := 0; i < 6; i++ {
		h.HedgeWon(3) // +1 each
	}
	if !h.Gray(3) {
		t.Fatalf("six hedge wins (score %.1f) did not flag gray", h.Score(3))
	}
	h.Retransmit(4, 12) // +6
	if !h.Gray(4) {
		t.Fatalf("12 retransmits (score %.1f) did not flag gray", h.Score(4))
	}
	snap := h.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d peers, want 2", len(snap))
	}
	for _, ph := range snap {
		switch ph.Peer {
		case 3:
			if ph.HedgesWon != 6 {
				t.Fatalf("peer 3 hedges = %d, want 6", ph.HedgesWon)
			}
		case 4:
			if ph.Retransmits != 12 {
				t.Fatalf("peer 4 retransmits = %d, want 12", ph.Retransmits)
			}
		}
	}
}

// TestHealthRecovery checks that arrivals un-flag a gray peer once its
// score has decayed well below the threshold (hysteresis at half).
func TestHealthRecovery(t *testing.T) {
	h := NewHealth(HealthConfig{}, nil, 0)
	h.DeadlineMiss(1)
	h.DeadlineMiss(1)
	if !h.Gray(1) {
		t.Fatal("peer not gray after two misses")
	}
	for i := 0; i < 4; i++ {
		h.Ok(1)
	}
	if h.Gray(1) {
		t.Fatalf("peer still gray after decay (score %.1f)", h.Score(1))
	}
}

// TestHealthNil pins that a nil Health is inert on every method.
func TestHealthNil(t *testing.T) {
	var h *Health
	h.DeadlineMiss(0)
	h.HedgeWon(0)
	h.Retransmit(0, 5)
	h.Ok(0)
	if h.Gray(0) || h.ShouldEscalate(0) || h.Score(0) != 0 || h.Snapshot() != nil {
		t.Fatal("nil Health is not inert")
	}
}
