// Package bufpool is the size-classed buffer pool behind the
// allocation-free steady state of the composition pipeline. Every hot-path
// byte buffer — wire frames in the transports, encode scratch and decoded
// fragment data in the compositor — is drawn from and returned to a pool,
// so a long-running composition loop recycles a bounded working set instead
// of churning the garbage collector once per message.
//
// Ownership discipline (the rules that make recycling safe):
//
//   - Get(n) returns a buffer of length n whose backing array is
//     exclusively owned by the caller: no other live reference covers any
//     byte in [0, cap).
//   - Put(buf) hands that exclusive ownership back. The caller must not
//     touch buf afterwards. Put accepts any slice: buffers whose capacity
//     is not exactly one of the pool's size classes (subslices with
//     truncated capacity, buffers from plain make) are silently dropped to
//     the garbage collector, never recycled — so a conservative caller may
//     Put everything it owns and cannot poison the pool with an alias.
//   - Never Put a slice whose capacity extends over bytes someone else can
//     still reach (e.g. a prefix v[:n] of a shared buffer without a
//     capacity cap). Three-index slicing (v[lo:hi:hi]) makes such prefixes
//     safe to Put because the capacity then witnesses the exclusive region.
//
// Unlike sync.Pool, the free lists are plain mutex-guarded LIFOs capped at
// a fixed depth per class: steady-state behaviour is deterministic (a GC
// cycle cannot empty the pool mid-benchmark) and the retained memory is
// bounded by maxPerClass buffers of each class.
package bufpool

import (
	"sync"
	"sync/atomic"
)

// CounterSink receives the pool's counter increments. *telemetry.Recorder
// satisfies it; the pool names the interface instead of the package so the
// transports (which telemetry's own tests import) can depend on the pool
// without a cycle.
type CounterSink interface {
	Add(rank int, name string, v int64)
}

// Counter names mirrored into an attached sink; they match the telemetry
// package's CtrPoolHit / CtrPoolMiss / CtrPoolBytes constants.
const (
	ctrPoolHit   = "pool_hit"
	ctrPoolMiss  = "pool_miss"
	ctrPoolBytes = "pool_bytes"
	ctrPoolDrop  = "pool_drop"
)

// Size classes are powers of two from minShift to maxShift (64 MiB, the
// transport frame limit). Requests above the largest class fall through to
// plain allocation and are never recycled.
const (
	minShift = 6 // 64 B
	maxShift = 26
	numClass = maxShift - minShift + 1

	// maxPerClass caps each free list so the pool's retained memory stays
	// bounded even if producers outpace consumers. The pipelined executor
	// runs every tile's state machine concurrently, each drawing fragment,
	// message and scratch buffers from the shared pool, so the cap must
	// cover the peak of all in-flight tiles or overflow Puts drop to the
	// garbage collector and every later Get re-allocates (the Drops stat
	// counts exactly these).
	maxPerClass = 256
)

// Pool is a size-classed free-list buffer pool. The zero value is ready to
// use. All methods are safe for concurrent use.
type Pool struct {
	classes [numClass]freeList

	hits   atomic.Int64
	misses atomic.Int64
	bytes  atomic.Int64 // bytes served from recycled buffers
	drops  atomic.Int64 // recyclable Puts rejected by a full free list

	mu   sync.Mutex
	tel  CounterSink
	rank int
}

type freeList struct {
	mu   sync.Mutex
	bufs [][]byte
}

// Stats is a snapshot of a pool's counters.
type Stats struct {
	Hits   int64 // Gets served from a free list
	Misses int64 // Gets that had to allocate
	Bytes  int64 // bytes served from recycled buffers
	Drops  int64 // recyclable Puts rejected because the class was full
}

// Default is the process-wide pool shared by the transports and the
// compositor.
var Default = &Pool{}

// Get returns Default.Get(n).
func Get(n int) []byte { return Default.Get(n) }

// Put returns buf to Default; see Pool.Put for the ownership contract.
func Put(buf []byte) { Default.Put(buf) }

// classFor maps a request size onto the index of the smallest class that
// fits, or -1 when the request exceeds the largest class.
func classFor(n int) int {
	c, size := 0, 1<<minShift
	for size < n {
		c, size = c+1, size<<1
	}
	if c >= numClass {
		return -1
	}
	return c
}

// classOf maps a capacity onto its class index only when the capacity is
// exactly a class size; any other capacity returns -1 (not recyclable).
func classOf(c int) int {
	if c < 1<<minShift || c > 1<<maxShift || c&(c-1) != 0 {
		return -1
	}
	idx := 0
	for s := 1 << minShift; s < c; s <<= 1 {
		idx++
	}
	return idx
}

// Get returns a buffer of length n with exclusively owned backing storage.
// The contents are unspecified (recycled buffers are not zeroed).
func (p *Pool) Get(n int) []byte {
	if n == 0 {
		return nil
	}
	ci := classFor(n)
	if ci >= 0 {
		fl := &p.classes[ci]
		fl.mu.Lock()
		if last := len(fl.bufs) - 1; last >= 0 {
			buf := fl.bufs[last]
			fl.bufs[last] = nil
			fl.bufs = fl.bufs[:last]
			fl.mu.Unlock()
			p.count(&p.hits, ctrPoolHit, int64(n))
			return buf[:n]
		}
		fl.mu.Unlock()
		p.count(&p.misses, ctrPoolMiss, 0)
		return make([]byte, n, 1<<(minShift+ci))
	}
	p.count(&p.misses, ctrPoolMiss, 0)
	return make([]byte, n)
}

// Put recycles buf if its capacity is exactly a size class and the class's
// free list has room; otherwise the buffer is dropped to the garbage
// collector. Callers must own buf exclusively (see the package comment) and
// must not use it after Put. A nil or empty-capacity buf is a no-op.
func (p *Pool) Put(buf []byte) {
	ci := classOf(cap(buf))
	if ci < 0 {
		return
	}
	fl := &p.classes[ci]
	fl.mu.Lock()
	if len(fl.bufs) < maxPerClass {
		fl.bufs = append(fl.bufs, buf[:0])
		fl.mu.Unlock()
		return
	}
	fl.mu.Unlock()
	// A full class means a recyclable buffer leaks to the garbage collector
	// and some later Get will re-allocate it: sustained drops are a sizing
	// signal, so they get their own counter.
	p.count(&p.drops, ctrPoolDrop, 0)
}

// count bumps the pool's atomic counters and mirrors them into the
// attached telemetry recorder, if any.
func (p *Pool) count(ctr *atomic.Int64, name string, served int64) {
	ctr.Add(1)
	if served > 0 {
		p.bytes.Add(served)
	}
	p.mu.Lock()
	tel, rank := p.tel, p.rank
	p.mu.Unlock()
	if tel != nil {
		tel.Add(rank, name, 1)
		if served > 0 {
			tel.Add(rank, ctrPoolBytes, served)
		}
	}
}

// Instrument mirrors the pool's counters into a telemetry recorder as the
// pool_hit / pool_miss / pool_bytes counters, attributed to the given rank
// (a process-wide pool is conventionally attributed to the process's own
// rank). A nil recorder detaches.
func (p *Pool) Instrument(tel CounterSink, rank int) {
	p.mu.Lock()
	p.tel, p.rank = tel, rank
	p.mu.Unlock()
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() Stats {
	return Stats{Hits: p.hits.Load(), Misses: p.misses.Load(), Bytes: p.bytes.Load(), Drops: p.drops.Load()}
}
