package bufpool

import (
	"sync"
	"testing"

	"rtcomp/internal/telemetry"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n    int
		want int // expected capacity class size, 0 = no class
	}{
		{1, 64},
		{64, 64},
		{65, 128},
		{1024, 1024},
		{1025, 2048},
		{1 << 26, 1 << 26},
		{1<<26 + 1, 0},
	}
	for _, c := range cases {
		ci := classFor(c.n)
		if c.want == 0 {
			if ci != -1 {
				t.Errorf("classFor(%d) = %d, want -1", c.n, ci)
			}
			continue
		}
		if ci < 0 || 1<<(minShift+ci) != c.want {
			t.Errorf("classFor(%d) = class %d, want class of size %d", c.n, ci, c.want)
		}
	}
}

func TestGetPutRecycles(t *testing.T) {
	p := &Pool{}
	a := p.Get(100)
	if len(a) != 100 || cap(a) != 128 {
		t.Fatalf("Get(100): len=%d cap=%d, want len=100 cap=128", len(a), cap(a))
	}
	p.Put(a)
	b := p.Get(90)
	if &a[:1][0] != &b[:1][0] {
		t.Fatalf("Get after Put did not recycle the buffer")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Bytes != 90 {
		t.Fatalf("stats = %+v, want hits=1 misses=1 bytes=90", st)
	}
}

func TestPutRejectsOffClassCapacity(t *testing.T) {
	p := &Pool{}
	a := p.Get(128)
	// A prefix without a capacity cap still has the full class capacity and
	// is recyclable; a three-index capped prefix is not (cap 100 is no
	// class) and must be dropped.
	p.Put(a[:100:100])
	if b := p.Get(128); &a[0] == &b[0] {
		t.Fatalf("pool recycled a capacity-capped subslice")
	}
	p.Put(make([]byte, 100)) // off-class make: dropped
	p.Put(nil)               // no-op
	st := p.Stats()
	if st.Hits != 0 {
		t.Fatalf("off-class Put produced a hit: %+v", st)
	}
}

func TestGetZero(t *testing.T) {
	p := &Pool{}
	if buf := p.Get(0); buf != nil {
		t.Fatalf("Get(0) = %v, want nil", buf)
	}
}

func TestOversizeFallsThrough(t *testing.T) {
	p := &Pool{}
	a := p.Get(1<<26 + 1)
	if len(a) != 1<<26+1 {
		t.Fatalf("oversize Get returned len %d", len(a))
	}
	p.Put(a) // dropped: capacity exceeds the largest class
	if st := p.Stats(); st.Misses != 1 {
		t.Fatalf("oversize Get not counted as miss: %+v", st)
	}
}

func TestFreeListBounded(t *testing.T) {
	p := &Pool{}
	for i := 0; i < 2*maxPerClass; i++ {
		p.Put(make([]byte, 64))
	}
	if n := len(p.classes[0].bufs); n != maxPerClass {
		t.Fatalf("free list holds %d buffers, want %d", n, maxPerClass)
	}
	if st := p.Stats(); st.Drops != maxPerClass {
		t.Fatalf("drops = %d, want %d (overflow puts past the cap)", st.Drops, maxPerClass)
	}
}

func TestDropCounterMirrored(t *testing.T) {
	p := &Pool{}
	tel := telemetry.New()
	p.Instrument(tel, 1)
	for i := 0; i < maxPerClass+3; i++ {
		p.Put(make([]byte, 64))
	}
	ctrs := tel.Counters()
	if got := ctrs[telemetry.CounterKey{Rank: 1, Step: telemetry.StepNone, Name: telemetry.CtrPoolDrop}]; got != 3 {
		t.Errorf("pool_drop = %d, want 3", got)
	}
	// Non-class capacities are aliasing hazards, not sizing signals: they
	// stay out of the drop count.
	p.Put(make([]byte, 65))
	if st := p.Stats(); st.Drops != 3 {
		t.Errorf("drops = %d after non-class Put, want 3", st.Drops)
	}
}

func TestInstrument(t *testing.T) {
	p := &Pool{}
	tel := telemetry.New()
	p.Instrument(tel, 3)
	p.Put(p.Get(256)) // miss
	p.Get(256)        // hit
	ctrs := tel.Counters()
	if got := ctrs[telemetry.CounterKey{Rank: 3, Step: telemetry.StepNone, Name: telemetry.CtrPoolMiss}]; got != 1 {
		t.Errorf("pool_miss = %d, want 1", got)
	}
	if got := ctrs[telemetry.CounterKey{Rank: 3, Step: telemetry.StepNone, Name: telemetry.CtrPoolHit}]; got != 1 {
		t.Errorf("pool_hit = %d, want 1", got)
	}
	if got := ctrs[telemetry.CounterKey{Rank: 3, Step: telemetry.StepNone, Name: telemetry.CtrPoolBytes}]; got != 256 {
		t.Errorf("pool_bytes = %d, want 256", got)
	}
}

// TestConcurrentGetPut runs under -race: many goroutines hammer the same
// classes so lock-ordering or list-corruption bugs surface.
func TestConcurrentGetPut(t *testing.T) {
	p := &Pool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sizes := []int{64, 100, 1024, 4096, 65536}
			for i := 0; i < 500; i++ {
				buf := p.Get(sizes[(seed+i)%len(sizes)])
				for j := range buf {
					buf[j] = byte(seed)
				}
				p.Put(buf)
			}
		}(g)
	}
	wg.Wait()
}

// TestSteadyStateAllocFree proves the pool's whole point: once warm, a
// Get/Put cycle performs zero heap allocations.
func TestSteadyStateAllocFree(t *testing.T) {
	p := &Pool{}
	p.Put(p.Get(4096)) // warm the class
	allocs := testing.AllocsPerRun(100, func() {
		buf := p.Get(4096)
		p.Put(buf)
	})
	if allocs != 0 {
		t.Fatalf("warm Get/Put allocates %v times per op, want 0", allocs)
	}
}
