package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// This file merges per-rank Chrome trace files into one causally-stitched
// timeline. Each rank of a distributed run writes its own trace with its
// own monotonic clock; the flow events embedded by WriteChromeSpansFlows
// ("s" at the send, "f" at the receive, shared id) are the only cross-file
// ordering information available. The merge:
//
//  1. parses every input file,
//  2. estimates one clock offset per file from matched flow edges
//     (NTP-style: half the difference of the minimum one-way delays when
//     both directions exist, else the single minimum delay — which pins
//     the fastest message to zero latency),
//  3. shifts every event by its file's offset and emits one event array,
//  4. reports flow-match statistics so a strict mode can fail when a send
//     has no receive (lost causality) or vice versa,
//  5. computes the critical path of the run: the chain of spans ending at
//     the globally latest span, following either same-rank predecessors or
//     matched cross-rank message edges, with per-phase time attribution.

// Merged is the result of stitching one or more trace files.
type Merged struct {
	events []chromeEvent // spans first, then flows; clock-corrected

	// OffsetsUS[i] is the clock correction (µs) added to input i.
	OffsetsUS []float64
	// Flow-match statistics across all inputs.
	Sends, Recvs                   int
	UnmatchedSends, UnmatchedRecvs int
}

// MergeFiles reads and stitches per-rank trace files. See MergeReaders.
func MergeFiles(paths ...string) (*Merged, error) {
	readers := make([]io.Reader, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		readers = append(readers, f)
	}
	return MergeReaders(readers...)
}

// MergeReaders parses one Chrome trace-event JSON array per reader, aligns
// the files' clocks using matched flow edges, and returns the merged
// timeline. A single input gets offset zero (its ranks already share a
// recorder and therefore a clock).
func MergeReaders(rs ...io.Reader) (*Merged, error) {
	files := make([][]chromeEvent, len(rs))
	for i, r := range rs {
		var evs []chromeEvent
		if err := json.NewDecoder(r).Decode(&evs); err != nil {
			return nil, fmt.Errorf("trace: input %d: %w", i, err)
		}
		files[i] = evs
	}
	m := &Merged{OffsetsUS: alignClocks(files)}
	for i, evs := range files {
		for _, ev := range evs {
			ev.TS += m.OffsetsUS[i]
			m.events = append(m.events, ev)
		}
	}
	// Spans first (sorted by time), flows after, so the merged file keeps
	// the "head of the array is a complete event" property of the per-rank
	// exporters.
	sort.SliceStable(m.events, func(i, j int) bool {
		si, sj := m.events[i].Ph == "X", m.events[j].Ph == "X"
		if si != sj {
			return si
		}
		return m.events[i].TS < m.events[j].TS
	})
	m.countFlows()
	return m, nil
}

// countFlows tallies send/recv flow events and how many lack a partner.
func (m *Merged) countFlows() {
	sends := map[string]int{}
	recvs := map[string]int{}
	for _, ev := range m.events {
		switch ev.Ph {
		case "s":
			m.Sends++
			sends[ev.ID]++
		case "f":
			m.Recvs++
			recvs[ev.ID]++
		}
	}
	for id, n := range sends {
		if recvs[id] == 0 {
			m.UnmatchedSends += n
		}
	}
	for id, n := range recvs {
		if sends[id] == 0 {
			m.UnmatchedRecvs += n
		}
	}
}

// Strict returns an error when any flow edge is half-open: a send whose
// message never produced a receive event, or a receive whose sender left
// no record. Runs without message loss must merge strictly clean.
func (m *Merged) Strict() error {
	if m.UnmatchedSends == 0 && m.UnmatchedRecvs == 0 {
		return nil
	}
	return fmt.Errorf("trace: %d send flow(s) without a matching recv, %d recv flow(s) without a matching send",
		m.UnmatchedSends, m.UnmatchedRecvs)
}

// Events returns the merged, clock-corrected event count (spans + flows).
func (m *Merged) Events() int { return len(m.events) }

// Write encodes the merged timeline as one Chrome trace-event JSON array.
func (m *Merged) Write(w io.Writer) error { return writeChromeEvents(w, m.events) }

// alignClocks estimates one offset per file so that matched flow edges are
// causally plausible after correction. File 0 anchors the timeline; other
// files are reached breadth-first over the message graph. Files with no
// flow edge to the anchored component keep offset zero.
func alignClocks(files [][]chromeEvent) []float64 {
	off := make([]float64, len(files))
	if len(files) < 2 {
		return off
	}
	// First occurrence of each flow endpoint: id -> (file, ts).
	type point struct {
		file int
		ts   float64
	}
	sends := map[string]point{}
	recvs := map[string]point{}
	for i, evs := range files {
		for _, ev := range evs {
			switch ev.Ph {
			case "s":
				if _, ok := sends[ev.ID]; !ok {
					sends[ev.ID] = point{i, ev.TS}
				}
			case "f":
				if _, ok := recvs[ev.ID]; !ok {
					recvs[ev.ID] = point{i, ev.TS}
				}
			}
		}
	}
	// Minimum observed one-way delay per ordered file pair.
	minDelay := map[[2]int]float64{}
	for id, s := range sends {
		r, ok := recvs[id]
		if !ok || r.file == s.file {
			continue
		}
		k := [2]int{s.file, r.file}
		d := r.ts - s.ts
		if cur, ok := minDelay[k]; !ok || d < cur {
			minDelay[k] = d
		}
	}
	// relOffset(a,b) = correction to add to b's clock relative to a's.
	relOffset := func(a, b int) (float64, bool) {
		dab, okAB := minDelay[[2]int{a, b}]
		dba, okBA := minDelay[[2]int{b, a}]
		switch {
		case okAB && okBA:
			// Symmetric-delay assumption: after correction the minimum
			// delays in both directions are equal.
			return (dba - dab) / 2, true
		case okAB:
			return -dab, true // pin the fastest a->b message to zero delay
		case okBA:
			return dba, true
		}
		return 0, false
	}
	visited := make([]bool, len(files))
	queue := []int{0}
	visited[0] = true
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for b := range files {
			if visited[b] {
				continue
			}
			if d, ok := relOffset(a, b); ok {
				off[b] = off[a] + d
				visited[b] = true
				queue = append(queue, b)
			}
		}
	}
	return off
}

// PhaseShare is one phase's share of the critical path.
type PhaseShare struct {
	Name string
	US   float64
	Frac float64 // of the path's wall-clock extent
}

// CritPath is the chain of spans that bounds the run's wall-clock time.
type CritPath struct {
	TotalUS float64 // end of last span minus start of first
	Spans   int     // spans on the path
	Ranks   int     // distinct ranks the path visits
	Hops    int     // cross-rank message edges followed
	Phases  []PhaseShare
}

// CriticalPath walks backwards from the globally latest-ending span. At
// each span the predecessor is the later-ending of (a) the latest span on
// the same rank that ends at or before this span starts and (b) for every
// message received inside this span, the sender's span enclosing the send
// point. Time not covered by any span on the path is attributed to
// "(wait)". Returns nil when the merge holds no complete events.
func (m *Merged) CriticalPath() *CritPath {
	var spans []chromeEvent
	for _, ev := range m.events {
		if ev.Ph == "X" {
			spans = append(spans, ev)
		}
	}
	if len(spans) == 0 {
		return nil
	}
	// Per-rank span lists sorted by end time, for predecessor lookup.
	perRank := map[int][]int{}
	for i, sp := range spans {
		perRank[sp.PID] = append(perRank[sp.PID], i)
	}
	for _, idx := range perRank {
		sort.Slice(idx, func(a, b int) bool {
			return spans[idx[a]].TS+spans[idx[a]].Dur < spans[idx[b]].TS+spans[idx[b]].Dur
		})
	}
	// Matched message edges: recv (rank, ts) -> send (rank, ts).
	type pt struct {
		pid int
		ts  float64
	}
	sendAt := map[string]pt{}
	var recvPts []struct {
		pt
		send pt
		ok   bool
	}
	for _, ev := range m.events {
		if ev.Ph == "s" {
			if _, dup := sendAt[ev.ID]; !dup {
				sendAt[ev.ID] = pt{ev.PID, ev.TS}
			}
		}
	}
	for _, ev := range m.events {
		if ev.Ph == "f" {
			s, ok := sendAt[ev.ID]
			recvPts = append(recvPts, struct {
				pt
				send pt
				ok   bool
			}{pt{ev.PID, ev.TS}, s, ok})
		}
	}
	// enclosing returns the span on rank pid whose extent covers ts,
	// preferring the latest-starting such span (innermost nesting).
	enclosing := func(pid int, ts float64) int {
		best := -1
		for _, i := range perRank[pid] {
			sp := spans[i]
			if sp.TS <= ts && ts <= sp.TS+sp.Dur {
				if best < 0 || sp.TS >= spans[best].TS {
					best = i
				}
			}
		}
		return best
	}
	// Start from the globally latest-ending span.
	cur := 0
	for i, sp := range spans {
		if sp.TS+sp.Dur > spans[cur].TS+spans[cur].Dur {
			cur = i
		}
	}
	const eps = 1e-3 // µs; absorbs float rounding between adjacent spans
	visited := map[int]bool{}
	var path []int
	hops := 0
	for cur >= 0 && !visited[cur] {
		visited[cur] = true
		path = append(path, cur)
		sp := spans[cur]
		// Candidate (a): latest same-rank span ending at or before start.
		next := -1
		for _, i := range perRank[sp.PID] {
			c := spans[i]
			if i != cur && c.TS+c.Dur <= sp.TS+eps {
				if next < 0 || c.TS+c.Dur > spans[next].TS+spans[next].Dur {
					next = i
				}
			}
		}
		crossed := false
		// Candidate (b): senders of messages received inside this span.
		for _, r := range recvPts {
			if !r.ok || r.pid != sp.PID || r.ts < sp.TS-eps || r.ts > sp.TS+sp.Dur+eps {
				continue
			}
			if s := enclosing(r.send.pid, r.send.ts); s >= 0 && s != cur && !visited[s] {
				if next < 0 || spans[s].TS+spans[s].Dur > spans[next].TS+spans[next].Dur {
					next = s
					crossed = spans[s].PID != sp.PID
				}
			}
		}
		if crossed {
			hops++
		}
		cur = next
	}
	// Attribute path time by phase. Spans on the path may overlap their
	// predecessor (a recv span enclosing the matched send on another rank);
	// clamp each span's contribution to the uncovered prefix of the
	// timeline walked so far so shares sum to at most the total.
	first, last := path[len(path)-1], path[0]
	total := spans[last].TS + spans[last].Dur - spans[first].TS
	byPhase := map[string]float64{}
	ranks := map[int]bool{}
	covered := 0.0
	// Walk forward in time (path is backwards).
	cursor := spans[first].TS
	for i := len(path) - 1; i >= 0; i-- {
		sp := spans[path[i]]
		ranks[sp.PID] = true
		t0, t1 := sp.TS, sp.TS+sp.Dur
		if t0 < cursor {
			t0 = cursor
		}
		if t1 > t0 {
			byPhase[phaseName(sp.Name)] += t1 - t0
			covered += t1 - t0
			cursor = t1
		}
	}
	if wait := total - covered; wait > eps {
		byPhase["(wait)"] = wait
	}
	cp := &CritPath{TotalUS: total, Spans: len(path), Ranks: len(ranks), Hops: hops}
	for name, us := range byPhase {
		frac := 0.0
		if total > 0 {
			frac = us / total
		}
		cp.Phases = append(cp.Phases, PhaseShare{Name: name, US: us, Frac: frac})
	}
	sort.Slice(cp.Phases, func(a, b int) bool {
		if cp.Phases[a].US != cp.Phases[b].US {
			return cp.Phases[a].US > cp.Phases[b].US
		}
		return cp.Phases[a].Name < cp.Phases[b].Name
	})
	return cp
}

// phaseName strips the " step N" suffix the exporter appends, so all steps
// of one phase aggregate under a single name.
func phaseName(name string) string {
	if i := strings.Index(name, " step "); i >= 0 {
		return name[:i]
	}
	return name
}

// Report renders the critical path as an aligned text table.
func (cp *CritPath) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "critical path: %s across %d span(s) on %d rank(s), %d cross-rank hop(s)\n",
		formatSeconds(cp.TotalUS/1e6), cp.Spans, cp.Ranks, cp.Hops)
	w := 5
	for _, ph := range cp.Phases {
		if len(ph.Name) > w {
			w = len(ph.Name)
		}
	}
	fmt.Fprintf(&sb, "  %-*s  %10s  %6s\n", w, "phase", "time", "share")
	for _, ph := range cp.Phases {
		fmt.Fprintf(&sb, "  %-*s  %10s  %5.1f%%\n", w, ph.Name, formatSeconds(ph.US/1e6), ph.Frac*100)
	}
	return sb.String()
}
