package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/simnet"
	"rtcomp/internal/telemetry"
)

func simulateRT(t *testing.T, p, n int) *simnet.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	layers := make([]*raster.Image, p)
	for r := range layers {
		layers[r] = raster.RandomBinaryImage(rng, 128, 64, 0.5)
	}
	sched, err := schedule.RT(p, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simnet.Simulate(sched, layers, nil, simnet.SP2Calibrated())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGanttShape(t *testing.T) {
	res := simulateRT(t, 4, 4)
	if len(res.Events) == 0 {
		t.Fatal("simulator recorded no events")
	}
	chart := Gantt(res.Events, 4, 60, res.Time)
	lines := strings.Split(strings.TrimRight(chart, "\n"), "\n")
	if len(lines) != 5 { // header + one row per rank
		t.Fatalf("chart has %d lines, want 5:\n%s", len(lines), chart)
	}
	for r := 1; r < len(lines); r++ {
		if !strings.HasPrefix(lines[r], "P") {
			t.Fatalf("row %d missing rank label: %q", r, lines[r])
		}
		if len(lines[r]) != len("P0   ")+60 {
			t.Fatalf("row %d has width %d", r, len(lines[r]))
		}
	}
	// Something must be busy.
	if !strings.ContainsAny(chart, "-#%") {
		t.Fatalf("chart shows no activity:\n%s", chart)
	}
}

func TestEventsWithinHorizon(t *testing.T) {
	res := simulateRT(t, 6, 3)
	for _, e := range res.Events {
		if e.T0 < 0 || e.T1 < e.T0 {
			t.Fatalf("malformed event %+v", e)
		}
		if e.T1 > res.Time+1e-12 {
			t.Fatalf("event %+v ends after composition time %v", e, res.Time)
		}
	}
}

func TestUtilisationBounds(t *testing.T) {
	res := simulateRT(t, 8, 4)
	u := Utilisation(res.Events, 8, res.Time)
	if u <= 0 || u > 1 {
		t.Fatalf("utilisation = %v, want (0,1]", u)
	}
}

// Fine-grained RT must keep the machine busier than the binary tree, whose
// idle halves are its defining weakness.
func TestRTUtilisationBeatsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	p := 8
	layers := make([]*raster.Image, p)
	for r := range layers {
		layers[r] = raster.RandomBinaryImage(rng, 256, 128, 0.5)
	}
	params := simnet.SP2Calibrated()
	rtSched, err := schedule.RT(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := simnet.Simulate(rtSched, layers, nil, params)
	if err != nil {
		t.Fatal(err)
	}
	treeSched, err := schedule.Tree(p)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := simnet.Simulate(treeSched, layers, nil, params)
	if err != nil {
		t.Fatal(err)
	}
	uRT := Utilisation(rt.Events, p, rt.Time)
	uTree := Utilisation(tree.Events, p, tree.Time)
	if uRT <= uTree {
		t.Fatalf("RT utilisation %.2f not above tree %.2f", uRT, uTree)
	}
}

func TestUtilisationEmpty(t *testing.T) {
	if u := Utilisation(nil, 4, 0); u != 0 {
		t.Fatalf("empty utilisation = %v", u)
	}
}

func TestGanttZeroHorizonAutoScales(t *testing.T) {
	res := simulateRT(t, 2, 2)
	chart := Gantt(res.Events, 2, 40, 0)
	if !strings.ContainsAny(chart, "-#%") {
		t.Fatal("auto-scaled chart shows no activity")
	}
}

// TestWriteChromeTraceGolden pins the exact trace-event JSON emitted for a
// fixed event list, so the on-disk format Perfetto consumes cannot drift
// unnoticed.
func TestWriteChromeTraceGolden(t *testing.T) {
	// Times are exact binary fractions so ts/dur serialise without float noise.
	events := []simnet.Event{
		{Rank: 0, Kind: simnet.EventCompute, Step: 0, Block: schedule.Block{Tile: 1, Level: 2, Index: 3}, T0: 0, T1: 0.5},
		{Rank: 1, Kind: simnet.EventSend, Step: 1, Block: schedule.Block{Tile: 0, Level: 1, Index: 0}, T0: 0.25, T1: 0.75},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	want := `[{"name":"compute t1.L2.3","cat":"compute","ph":"X","ts":0,"dur":500000,"pid":0,"tid":1,"args":{"step":"1"}},` +
		`{"name":"send t0.L1.0","cat":"network","ph":"X","ts":250000,"dur":500000,"pid":1,"tid":0,"args":{"step":"2"}}]` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}

// TestWriteChromeSpansGolden pins the real-run (telemetry span) exporter to
// the same trace-event dialect.
func TestWriteChromeSpansGolden(t *testing.T) {
	// Durations are exact binary fractions of a second (250ms, 500ms) so the
	// microsecond conversion serialises without float noise.
	spans := []telemetry.Span{
		{Rank: 0, Name: telemetry.PhaseEncode, Cat: telemetry.CatCompute, Step: 0, Start: 0, End: 500 * time.Millisecond},
		{Rank: 2, Name: telemetry.PhaseGather, Cat: telemetry.CatNetwork, Step: telemetry.StepNone, Start: 250 * time.Millisecond, End: 750 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	want := `[{"name":"encode step 1","cat":"compute","ph":"X","ts":0,"dur":500000,"pid":0,"tid":1,"args":{"step":"1"}},` +
		`{"name":"gather","cat":"network","ph":"X","ts":250000,"dur":500000,"pid":2,"tid":0}]` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}

func TestSpanEventsAndGantt(t *testing.T) {
	spans := []telemetry.Span{
		{Rank: 1, Name: telemetry.PhaseSend, Cat: telemetry.CatNetwork, Step: 0, Start: 1000, End: 2000000},
		{Rank: 0, Name: telemetry.PhaseMerge, Cat: telemetry.CatCompute, Step: 0, Start: 0, End: 1000000},
	}
	events := SpanEvents(spans)
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Kind != simnet.EventCompute || events[1].Kind != simnet.EventSend {
		t.Fatalf("kinds not mapped/sorted: %+v", events)
	}
	chart := SpanGantt(spans, 2, 40)
	if !strings.ContainsAny(chart, "-#%") {
		t.Fatalf("span gantt shows no activity:\n%s", chart)
	}
	if lines := strings.Split(strings.TrimRight(chart, "\n"), "\n"); len(lines) != 3 {
		t.Fatalf("span gantt has %d lines, want header + 2 ranks:\n%s", len(lines), chart)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	res := simulateRT(t, 3, 2)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, res.Events); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(events) != len(res.Events) {
		t.Fatalf("exported %d events, want %d", len(events), len(res.Events))
	}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Fatalf("event phase %v", e["ph"])
		}
		if e["dur"].(float64) < 0 {
			t.Fatal("negative duration")
		}
		pid := int(e["pid"].(float64))
		if pid < 0 || pid >= 3 {
			t.Fatalf("pid %d out of range", pid)
		}
	}
}
