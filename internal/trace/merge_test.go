package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"rtcomp/internal/telemetry"
)

// encodeEvents renders a synthetic per-rank trace file.
func encodeEvents(t *testing.T, evs []chromeEvent) string {
	t.Helper()
	b, err := json.Marshal(evs)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// Two synthetic rank files with rank 1's clock running 1000µs ahead.
// True one-way delays: 50µs for msg 0x1 (rank0->rank1), 60µs for msg 0x2
// (rank1->rank0). The symmetric-delay estimator should recover an offset
// of -995µs for file 1 (off by half the delay asymmetry, 5µs).
func twoRankFiles(t *testing.T) (string, string) {
	t.Helper()
	rank0 := encodeEvents(t, []chromeEvent{
		{Name: "render step 1", Cat: "compute", Ph: "X", TS: 0, Dur: 100, PID: 0, TID: 1},
		{Name: "send step 1", Cat: "network", Ph: "X", TS: 100, Dur: 20, PID: 0, TID: 0},
		{Name: "recv step 2", Cat: "network", Ph: "X", TS: 240, Dur: 40, PID: 0, TID: 0},
		{Name: "merge step 2", Cat: "compute", Ph: "X", TS: 280, Dur: 50, PID: 0, TID: 1},
		{Name: "msg", Cat: "flow", Ph: "s", TS: 110, PID: 0, TID: 0, ID: "0x1"},
		{Name: "msg", Cat: "flow", Ph: "f", TS: 260, PID: 0, TID: 0, ID: "0x2", BP: "e"},
	})
	rank1 := encodeEvents(t, []chromeEvent{
		{Name: "recv step 1", Cat: "network", Ph: "X", TS: 1150, Dur: 30, PID: 1, TID: 0},
		{Name: "merge step 1", Cat: "compute", Ph: "X", TS: 1180, Dur: 15, PID: 1, TID: 1},
		{Name: "send step 2", Cat: "network", Ph: "X", TS: 1195, Dur: 20, PID: 1, TID: 0},
		{Name: "msg", Cat: "flow", Ph: "f", TS: 1160, PID: 1, TID: 0, ID: "0x1", BP: "e"},
		{Name: "msg", Cat: "flow", Ph: "s", TS: 1200, PID: 1, TID: 0, ID: "0x2"},
	})
	return rank0, rank1
}

func TestMergeTwoRanksClockAlignment(t *testing.T) {
	rank0, rank1 := twoRankFiles(t)
	m, err := MergeReaders(strings.NewReader(rank0), strings.NewReader(rank1))
	if err != nil {
		t.Fatal(err)
	}
	if m.OffsetsUS[0] != 0 {
		t.Fatalf("anchor file offset = %v, want 0", m.OffsetsUS[0])
	}
	if m.OffsetsUS[1] != -995 {
		t.Fatalf("file 1 offset = %v, want -995", m.OffsetsUS[1])
	}
	if m.Sends != 2 || m.Recvs != 2 {
		t.Fatalf("flow counts = %d sends, %d recvs, want 2/2", m.Sends, m.Recvs)
	}
	if err := m.Strict(); err != nil {
		t.Fatalf("Strict() = %v on a fully matched merge", err)
	}
	if m.Events() != 11 {
		t.Fatalf("merged %d events, want 11", m.Events())
	}
	// The merged output keeps spans first and stays parseable.
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if evs[0].Ph != "X" {
		t.Fatalf("first merged event ph = %q, want X (span)", evs[0].Ph)
	}
	for i, ev := range evs {
		if ev.Ph != "X" && i < 7 {
			t.Fatalf("flow event at index %d before all %d spans", i, 7)
		}
	}
	// Clock-corrected causality: every matched recv happens after its send.
	ts := map[string]float64{}
	for _, ev := range evs {
		if ev.Ph == "s" {
			ts[ev.ID] = ev.TS
		}
	}
	for _, ev := range evs {
		if ev.Ph == "f" {
			if send, ok := ts[ev.ID]; ok && ev.TS <= send {
				t.Fatalf("flow %s: recv at %v not after send at %v", ev.ID, ev.TS, send)
			}
		}
	}
}

func TestMergeCriticalPathGolden(t *testing.T) {
	rank0, rank1 := twoRankFiles(t)
	m, err := MergeReaders(strings.NewReader(rank0), strings.NewReader(rank1))
	if err != nil {
		t.Fatal(err)
	}
	cp := m.CriticalPath()
	if cp == nil {
		t.Fatal("CriticalPath() = nil")
	}
	if math.Abs(cp.TotalUS-330) > 1e-9 {
		t.Fatalf("TotalUS = %v, want 330", cp.TotalUS)
	}
	if cp.Spans != 7 || cp.Ranks != 2 || cp.Hops != 2 {
		t.Fatalf("Spans/Ranks/Hops = %d/%d/%d, want 7/2/2", cp.Spans, cp.Ranks, cp.Hops)
	}
	want := []PhaseShare{
		{Name: "render", US: 100},
		{Name: "recv", US: 70},
		{Name: "merge", US: 65},
		{Name: "(wait)", US: 55},
		{Name: "send", US: 40},
	}
	if len(cp.Phases) != len(want) {
		t.Fatalf("got %d phases %v, want %d", len(cp.Phases), cp.Phases, len(want))
	}
	for i, w := range want {
		got := cp.Phases[i]
		if got.Name != w.Name || math.Abs(got.US-w.US) > 1e-9 {
			t.Fatalf("phase %d = %q %vus, want %q %vus", i, got.Name, got.US, w.Name, w.US)
		}
		if math.Abs(got.Frac-w.US/330) > 1e-9 {
			t.Fatalf("phase %q frac = %v, want %v", got.Name, got.Frac, w.US/330)
		}
	}
	rep := cp.Report()
	if !strings.Contains(rep, "critical path: 330.0us across 7 span(s) on 2 rank(s), 2 cross-rank hop(s)") {
		t.Fatalf("report header missing:\n%s", rep)
	}
	if !strings.Contains(rep, "render") || !strings.Contains(rep, "30.3%") {
		t.Fatalf("report missing render share:\n%s", rep)
	}
}

func TestMergeStrictDetectsHalfOpenFlows(t *testing.T) {
	lostRecv := encodeEvents(t, []chromeEvent{
		{Name: "send step 1", Cat: "network", Ph: "X", TS: 0, Dur: 10, PID: 0, TID: 0},
		{Name: "msg", Cat: "flow", Ph: "s", TS: 5, PID: 0, TID: 0, ID: "0xdead"},
	})
	orphanRecv := encodeEvents(t, []chromeEvent{
		{Name: "msg", Cat: "flow", Ph: "f", TS: 50, PID: 1, TID: 0, ID: "0xbeef", BP: "e"},
	})
	m, err := MergeReaders(strings.NewReader(lostRecv), strings.NewReader(orphanRecv))
	if err != nil {
		t.Fatal(err)
	}
	if m.UnmatchedSends != 1 || m.UnmatchedRecvs != 1 {
		t.Fatalf("unmatched = %d sends, %d recvs, want 1/1", m.UnmatchedSends, m.UnmatchedRecvs)
	}
	if err := m.Strict(); err == nil {
		t.Fatal("Strict() = nil, want error for half-open flows")
	}
}

func TestMergeSingleFileZeroOffset(t *testing.T) {
	rank0, _ := twoRankFiles(t)
	m, err := MergeReaders(strings.NewReader(rank0))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.OffsetsUS) != 1 || m.OffsetsUS[0] != 0 {
		t.Fatalf("offsets = %v, want [0]", m.OffsetsUS)
	}
	// Half of the pairs are split across the missing file.
	if m.UnmatchedSends != 1 || m.UnmatchedRecvs != 1 {
		t.Fatalf("unmatched = %d/%d, want 1/1", m.UnmatchedSends, m.UnmatchedRecvs)
	}
}

func TestWriteChromeSpansFlowsOrderAndShape(t *testing.T) {
	spans := []telemetry.Span{
		{Rank: 0, Name: "send", Cat: telemetry.CatNetwork, Step: 0, Start: 0, End: 20 * time.Microsecond},
		{Rank: 1, Name: "merge", Cat: telemetry.CatCompute, Step: 0, Start: 30 * time.Microsecond, End: 50 * time.Microsecond},
	}
	flows := []telemetry.Flow{
		{ID: 7, Rank: 0, Peer: 1, T: 10 * time.Microsecond, Send: true, Step: 0, Tile: 3},
		{ID: 7, Rank: 1, Peer: 0, T: 25 * time.Microsecond, Send: false, Step: 0, Tile: 3},
	}
	var buf bytes.Buffer
	if err := WriteChromeSpansFlows(&buf, spans, flows); err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Ph != "X" || evs[1].Ph != "X" {
		t.Fatalf("spans not first: %q %q", evs[0].Ph, evs[1].Ph)
	}
	s, f := evs[2], evs[3]
	if s.Ph != "s" || s.ID != "0x7" || s.BP != "" || s.PID != 0 {
		t.Fatalf("send flow = %+v", s)
	}
	if f.Ph != "f" || f.ID != "0x7" || f.BP != "e" || f.PID != 1 {
		t.Fatalf("recv flow = %+v", f)
	}
	if s.Args["tile"] != "3" || s.Args["step"] != "1" || s.Args["peer"] != "1" {
		t.Fatalf("send flow args = %v", s.Args)
	}
	// Span serialization must not grow flow fields.
	raw, _ := json.Marshal(evs[0])
	if strings.Contains(string(raw), "\"id\"") || strings.Contains(string(raw), "\"bp\"") {
		t.Fatalf("span event serialized flow fields: %s", raw)
	}
}

// A self-healing run's join, state-transfer and scrub spans must survive the
// per-rank export/merge round trip onto the merged timeline: a survivor file
// carrying the join-agreement span and a rejoined spare's file carrying its
// join wait, chunk transfer and scrub work all land as complete events under
// their phase names.
func TestMergeRendersJoinAndTransferSpans(t *testing.T) {
	us := func(n int) time.Duration { return time.Duration(n) * time.Microsecond }
	survivor := []telemetry.Span{
		{Rank: 0, Name: telemetry.PhaseAgree, Cat: telemetry.CatNetwork, Step: telemetry.StepNone, Start: 0, End: us(40)},
		{Rank: 0, Name: telemetry.PhaseJoin, Cat: telemetry.CatNetwork, Step: telemetry.StepNone, Start: us(40), End: us(120)},
		{Rank: 0, Name: telemetry.PhaseXfer, Cat: telemetry.CatNetwork, Step: telemetry.StepNone, Start: us(80), End: us(110)},
	}
	spare := []telemetry.Span{
		{Rank: 1, Name: telemetry.PhaseJoin, Cat: telemetry.CatNetwork, Step: telemetry.StepNone, Start: us(10), End: us(90)},
		{Rank: 1, Name: telemetry.PhaseXfer, Cat: telemetry.CatNetwork, Step: telemetry.StepNone, Start: us(90), End: us(115)},
		{Rank: 1, Name: telemetry.PhaseScrub, Cat: telemetry.CatCompute, Step: telemetry.StepNone, Start: us(115), End: us(125)},
	}
	var f0, f1 bytes.Buffer
	if err := WriteChromeSpansFlows(&f0, survivor, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeSpansFlows(&f1, spare, nil); err != nil {
		t.Fatal(err)
	}
	m, err := MergeReaders(&f0, &f1)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := m.Write(&out); err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal(out.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	want := map[string][]int{ // phase name -> ranks that must carry it
		telemetry.PhaseJoin:  {0, 1},
		telemetry.PhaseXfer:  {0, 1},
		telemetry.PhaseScrub: {1},
	}
	for name, ranks := range want {
		for _, rank := range ranks {
			found := false
			for _, ev := range evs {
				if ev.Ph == "X" && ev.Name == name && ev.PID == rank && ev.Dur > 0 {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("merged timeline is missing the %q span of rank %d", name, rank)
			}
		}
	}
}
