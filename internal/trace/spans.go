package trace

import (
	"fmt"
	"io"
	"sort"

	"rtcomp/internal/simnet"
	"rtcomp/internal/telemetry"
)

// WriteChromeSpans exports real-run telemetry spans as the same Chrome
// trace-event JSON WriteChromeTrace emits for simulated runs: one process
// per rank, thread 0 = network, thread 1 = compute, complete ("X") events
// in microseconds. Open the file in chrome://tracing or ui.perfetto.dev.
func WriteChromeSpans(w io.Writer, spans []telemetry.Span) error {
	return writeChromeEvents(w, appendSpanEvents(nil, spans))
}

// WriteChromeSpansFlows exports spans plus causal flow edges: each recorded
// cross-rank message becomes a Chrome flow pair — "s" on the sending rank,
// "f" with bp:"e" on the receiver — which the viewer draws as an arrow
// between the enclosing spans. Span events are emitted first and flows
// after, so consumers that index the head of the array (the smoke checks)
// keep seeing complete events there.
func WriteChromeSpansFlows(w io.Writer, spans []telemetry.Span, flows []telemetry.Flow) error {
	out := appendSpanEvents(make([]chromeEvent, 0, len(spans)+len(flows)), spans)
	return writeChromeEvents(w, appendFlowEvents(out, flows))
}

// appendSpanEvents converts telemetry spans to complete ("X") events.
func appendSpanEvents(out []chromeEvent, spans []telemetry.Span) []chromeEvent {
	for _, sp := range spans {
		tid := 1
		if sp.Cat == telemetry.CatNetwork {
			tid = 0
		}
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			TS:   sp.Start.Seconds() * 1e6,
			Dur:  (sp.End - sp.Start).Seconds() * 1e6,
			PID:  sp.Rank,
			TID:  tid,
		}
		if sp.Step != telemetry.StepNone {
			ev.Name = fmt.Sprintf("%s step %d", sp.Name, sp.Step+1)
			ev.Args = map[string]string{"step": fmt.Sprint(sp.Step + 1)}
		}
		out = append(out, ev)
	}
	return out
}

// appendFlowEvents converts telemetry flow points to Chrome flow events.
// Both endpoints go on thread 0: the send point is recorded inside the
// sender's network span and the receive point inside the consuming receive
// span, which is where the viewer binds the arrow.
func appendFlowEvents(out []chromeEvent, flows []telemetry.Flow) []chromeEvent {
	for _, f := range flows {
		ev := chromeEvent{
			Name: "msg",
			Cat:  "flow",
			Ph:   "s",
			TS:   f.T.Seconds() * 1e6,
			PID:  f.Rank,
			TID:  0,
			ID:   fmt.Sprintf("0x%x", f.ID),
		}
		if !f.Send {
			ev.Ph = "f"
			ev.BP = "e"
		}
		args := map[string]string{"peer": fmt.Sprint(f.Peer)}
		if f.Step >= 0 {
			args["step"] = fmt.Sprint(f.Step + 1)
		}
		if f.Tile >= 0 {
			args["tile"] = fmt.Sprint(f.Tile)
		}
		ev.Args = args
		out = append(out, ev)
	}
	return out
}

// SpanEvents converts telemetry spans into simulator occupancy events so
// the existing Gantt renderer (and Utilisation) work on real-run telemetry:
// network spans occupy the send engine, everything else the compute engine.
func SpanEvents(spans []telemetry.Span) []simnet.Event {
	out := make([]simnet.Event, 0, len(spans))
	for _, sp := range spans {
		kind := simnet.EventCompute
		if sp.Cat == telemetry.CatNetwork {
			kind = simnet.EventSend
		}
		out = append(out, simnet.Event{
			Rank: sp.Rank,
			Kind: kind,
			Step: sp.Step,
			T0:   sp.Start.Seconds(),
			T1:   sp.End.Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T0 < out[j].T0 })
	return out
}

// SpanGantt renders real-run telemetry spans as the per-rank ASCII
// occupancy chart, p rows wide over the span horizon.
func SpanGantt(spans []telemetry.Span, p, width int) string {
	return Gantt(SpanEvents(spans), p, width, 0)
}
