package trace

import (
	"fmt"
	"io"
	"sort"

	"rtcomp/internal/simnet"
	"rtcomp/internal/telemetry"
)

// WriteChromeSpans exports real-run telemetry spans as the same Chrome
// trace-event JSON WriteChromeTrace emits for simulated runs: one process
// per rank, thread 0 = network, thread 1 = compute, complete ("X") events
// in microseconds. Open the file in chrome://tracing or ui.perfetto.dev.
func WriteChromeSpans(w io.Writer, spans []telemetry.Span) error {
	out := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		tid := 1
		if sp.Cat == telemetry.CatNetwork {
			tid = 0
		}
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			TS:   sp.Start.Seconds() * 1e6,
			Dur:  (sp.End - sp.Start).Seconds() * 1e6,
			PID:  sp.Rank,
			TID:  tid,
		}
		if sp.Step != telemetry.StepNone {
			ev.Name = fmt.Sprintf("%s step %d", sp.Name, sp.Step+1)
			ev.Args = map[string]string{"step": fmt.Sprint(sp.Step + 1)}
		}
		out = append(out, ev)
	}
	return writeChromeEvents(w, out)
}

// SpanEvents converts telemetry spans into simulator occupancy events so
// the existing Gantt renderer (and Utilisation) work on real-run telemetry:
// network spans occupy the send engine, everything else the compute engine.
func SpanEvents(spans []telemetry.Span) []simnet.Event {
	out := make([]simnet.Event, 0, len(spans))
	for _, sp := range spans {
		kind := simnet.EventCompute
		if sp.Cat == telemetry.CatNetwork {
			kind = simnet.EventSend
		}
		out = append(out, simnet.Event{
			Rank: sp.Rank,
			Kind: kind,
			Step: sp.Step,
			T0:   sp.Start.Seconds(),
			T1:   sp.End.Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T0 < out[j].T0 })
	return out
}

// SpanGantt renders real-run telemetry spans as the per-rank ASCII
// occupancy chart, p rows wide over the span horizon.
func SpanGantt(spans []telemetry.Span, p, width int) string {
	return Gantt(SpanEvents(spans), p, width, 0)
}
