// Package trace renders the simulator's engine-occupancy events as ASCII
// Gantt charts: one row per rank, time on the horizontal axis, showing
// where each composition method spends its time — transmission, compute,
// or idle. The charts make the overlap argument of the rotate-tiling
// method visible: coarse-block methods leave idle gaps that fine-block
// pipelining fills.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"rtcomp/internal/simnet"
)

// Cell glyphs of the Gantt rendering.
const (
	glyphIdle    = '.'
	glyphSend    = '-'
	glyphCompute = '#'
	glyphBoth    = '%'
)

// Gantt renders the events of a simulation as one timeline row per rank,
// quantised into width buckets over [0, horizon]. A bucket shows '#' when
// the rank computed in it, '-' when it transmitted, '%' for both and '.'
// for idle. A zero horizon uses the last event end.
func Gantt(events []simnet.Event, p int, width int, horizon float64) string {
	if width < 8 {
		width = 8
	}
	if horizon <= 0 {
		for _, e := range events {
			if e.T1 > horizon {
				horizon = e.T1
			}
		}
	}
	if horizon <= 0 {
		horizon = 1
	}
	// occupancy[rank][bucket] bitmask: 1 = send, 2 = compute.
	occ := make([][]uint8, p)
	for r := range occ {
		occ[r] = make([]uint8, width)
	}
	for _, e := range events {
		if e.Rank < 0 || e.Rank >= p {
			continue
		}
		var mask uint8 = 1
		if e.Kind == simnet.EventCompute {
			mask = 2
		}
		b0 := int(e.T0 / horizon * float64(width))
		b1 := int(e.T1 / horizon * float64(width))
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1 && b >= 0; b++ {
			occ[e.Rank][b] |= mask
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "time 0 %s %s  (%c send, %c compute, %c both, %c idle)\n",
		strings.Repeat(" ", maxInt(width-16, 1)), formatSeconds(horizon),
		glyphSend, glyphCompute, glyphBoth, glyphIdle)
	for r := 0; r < p; r++ {
		fmt.Fprintf(&sb, "P%-3d ", r)
		for _, m := range occ[r] {
			switch m {
			case 0:
				sb.WriteRune(glyphIdle)
			case 1:
				sb.WriteRune(glyphSend)
			case 2:
				sb.WriteRune(glyphCompute)
			default:
				sb.WriteRune(glyphBoth)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Utilisation reports the fraction of the composition span each rank spent
// busy (send or compute), averaged over ranks — the scheduling-quality
// number behind the Gantt picture.
func Utilisation(events []simnet.Event, p int, horizon float64) float64 {
	if horizon <= 0 {
		for _, e := range events {
			if e.T1 > horizon {
				horizon = e.T1
			}
		}
	}
	if horizon <= 0 || p == 0 {
		return 0
	}
	// Merge each rank's busy intervals.
	type span struct{ t0, t1 float64 }
	perRank := make([][]span, p)
	for _, e := range events {
		if e.Rank >= 0 && e.Rank < p {
			perRank[e.Rank] = append(perRank[e.Rank], span{e.T0, e.T1})
		}
	}
	total := 0.0
	for _, spans := range perRank {
		// Insertion-sort by start (few events per rank).
		for i := 1; i < len(spans); i++ {
			for j := i; j > 0 && spans[j].t0 < spans[j-1].t0; j-- {
				spans[j], spans[j-1] = spans[j-1], spans[j]
			}
		}
		busy, end := 0.0, 0.0
		for _, s := range spans {
			if s.t1 <= end {
				continue
			}
			t0 := s.t0
			if t0 < end {
				t0 = end
			}
			busy += s.t1 - t0
			end = s.t1
		}
		total += busy / horizon
	}
	return total / float64(p)
}

// chromeEvent is one event of the Chrome trace-event format, loadable in
// chrome://tracing and Perfetto: complete spans ("ph":"X") and causal flow
// endpoints ("ph":"s" at the send, "ph":"f" at the receive). ID and BP are
// set only on flow events and omitted from span serialization, so span
// output is byte-identical to the pre-flow exporter.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	ID   string            `json:"id,omitempty"` // flow identifier, shared by the "s"/"f" pair
	BP   string            `json:"bp,omitempty"` // flow binding point: "e" binds "f" to its enclosing span
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace exports the events as a Chrome trace-event JSON array:
// one process per rank, thread 0 = network-out engine, thread 1 = compute
// engine. Open the file in chrome://tracing or ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, events []simnet.Event) error {
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		name, cat, tid := "send", "network", 0
		if e.Kind == simnet.EventCompute {
			name, cat, tid = "compute", "compute", 1
		}
		out = append(out, chromeEvent{
			Name: fmt.Sprintf("%s %v", name, e.Block),
			Cat:  cat,
			Ph:   "X",
			TS:   e.T0 * 1e6,
			Dur:  (e.T1 - e.T0) * 1e6,
			PID:  e.Rank,
			TID:  tid,
			Args: map[string]string{"step": fmt.Sprint(e.Step + 1)},
		})
	}
	return writeChromeEvents(w, out)
}

// writeChromeEvents encodes a trace-event array — the shared tail of the
// simulated (WriteChromeTrace) and real-run (WriteChromeSpans) exporters.
func writeChromeEvents(w io.Writer, events []chromeEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

func formatSeconds(s float64) string {
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.1fus", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
