package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rtcomp/internal/telemetry"
)

func TestNilAndUnlimitedAdmitEverything(t *testing.T) {
	var nilC *Controller
	rel, err := nilC.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	nilC.ObserveRender(time.Millisecond) // must not panic
	if a, q := nilC.Depth(); a != 0 || q != 0 {
		t.Fatalf("nil depth = %d/%d", a, q)
	}

	c := New(Config{Slots: 0}, nil)
	for i := 0; i < 100; i++ {
		rel, err := c.Admit(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer rel()
	}
}

func TestSlotsAndQueueFullShed(t *testing.T) {
	rec := telemetry.New()
	c := New(Config{Slots: 1, Queue: 0, Seed: 42}, rec)
	rel, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Slot taken, queue disabled: the next request sheds immediately.
	if _, err := c.Admit(context.Background()); err == nil {
		t.Fatal("second admit succeeded with one slot busy and no queue")
	} else {
		var shed *ShedError
		if !errors.As(err, &shed) {
			t.Fatalf("shed error type: %T", err)
		}
		if shed.Reason != ReasonQueueFull {
			t.Fatalf("reason = %s, want %s", shed.Reason, ReasonQueueFull)
		}
		if shed.RetryAfter < time.Second || shed.RetryAfter >= 3*time.Second {
			t.Fatalf("RetryAfter %s outside default [1s, 3s)", shed.RetryAfter)
		}
	}
	rel()
	rel() // double release must be a no-op, not a slot leak
	if rel2, err := c.Admit(context.Background()); err != nil {
		t.Fatalf("admit after release: %v", err)
	} else {
		rel2()
	}
	ctr := rec.Counters()
	if n := ctr[telemetry.CounterKey{Rank: 0, Step: telemetry.StepNone, Name: telemetry.CtrReqShed}]; n != 1 {
		t.Fatalf("requests_shed = %d, want 1", n)
	}
	if n := ctr[telemetry.CounterKey{Rank: 0, Step: telemetry.StepNone, Name: telemetry.CtrReqAdmitted}]; n != 2 {
		t.Fatalf("requests_admitted = %d, want 2", n)
	}
}

func TestQueueAdmitsWhenSlotFrees(t *testing.T) {
	rec := telemetry.New()
	c := New(Config{Slots: 1, Queue: 4}, rec)
	rel, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		rel2, err := c.Admit(context.Background())
		if err == nil {
			rel2()
		}
		got <- err
	}()
	// Give the waiter time to park, then free the slot.
	time.Sleep(20 * time.Millisecond)
	if _, q := c.Depth(); q != 1 {
		t.Fatalf("queued = %d, want 1", q)
	}
	rel()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued admit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never admitted after the slot freed")
	}
	ctr := rec.Counters()
	if n := ctr[telemetry.CounterKey{Rank: 0, Step: telemetry.StepNone, Name: telemetry.CtrReqQueued}]; n != 1 {
		t.Fatalf("requests_queued = %d, want 1", n)
	}
}

func TestDeadlineAwareShed(t *testing.T) {
	c := New(Config{Slots: 1, Queue: 8}, nil)
	// Teach the estimator that renders take ~100ms.
	for i := 0; i < 4; i++ {
		c.ObserveRender(100 * time.Millisecond)
	}
	rel, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// A caller with 10ms left cannot possibly be served behind a 100ms
	// render: shed now, not after the deadline burns down in queue.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = c.Admit(ctx)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonDeadline {
		t.Fatalf("want deadline shed, got %v", err)
	}
	// A caller with a generous deadline queues instead.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	done := make(chan error, 1)
	go func() {
		rel2, err := c.Admit(ctx2)
		if err == nil {
			rel2()
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	rel()
	if err := <-done; err != nil {
		t.Fatalf("generous-deadline admit: %v", err)
	}
}

func TestCancelledWhileQueued(t *testing.T) {
	c := New(Config{Slots: 1, Queue: 4}, nil)
	rel, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	var shed *ShedError
	if err := <-done; !errors.As(err, &shed) || shed.Reason != ReasonCancelled {
		t.Fatalf("want cancelled shed, got %v", err)
	}
	if _, q := c.Depth(); q != 0 {
		t.Fatalf("queued = %d after cancel, want 0", q)
	}
}

func TestEstimateEWMA(t *testing.T) {
	c := New(Config{Slots: 1}, nil)
	if c.Estimate() != 0 {
		t.Fatal("estimate non-zero before any observation")
	}
	c.ObserveRender(100 * time.Millisecond)
	if got := c.Estimate(); got != 100*time.Millisecond {
		t.Fatalf("first observation = %s, want 100ms", got)
	}
	for i := 0; i < 50; i++ {
		c.ObserveRender(10 * time.Millisecond)
	}
	if got := c.Estimate(); got > 15*time.Millisecond {
		t.Fatalf("estimate %s did not converge toward 10ms", got)
	}
}

func TestRetryAfterJitterRange(t *testing.T) {
	c := New(Config{Slots: 1, RetryAfterMin: 500 * time.Millisecond, RetryAfterJitter: time.Second, Seed: 7}, nil)
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		d := c.RetryAfter()
		if d < 500*time.Millisecond || d >= 1500*time.Millisecond {
			t.Fatalf("RetryAfter %s outside [500ms, 1500ms)", d)
		}
		seen[d] = true
	}
	if len(seen) < 8 {
		t.Fatalf("jitter produced only %d distinct values in 64 draws", len(seen))
	}
}

func TestConcurrentChurnNoLeak(t *testing.T) {
	c := New(Config{Slots: 3, Queue: 16}, telemetry.New())
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				rel, err := c.Admit(ctx)
				if err == nil {
					time.Sleep(time.Microsecond)
					rel()
					c.ObserveRender(50 * time.Microsecond)
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for {
		a, q := c.Depth()
		if a == 0 && q == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked occupancy after churn: active=%d queued=%d", a, q)
		}
		time.Sleep(time.Millisecond)
	}
}
