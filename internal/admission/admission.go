// Package admission is overload-aware request admission for the render
// front-ends: a slot semaphore, a bounded wait queue, and deadline-aware
// shedding that refuses work predicted to blow its deadline *before* it
// consumes a queue position.
//
// The distinction this package draws is the server-side face of the gray-
// failure work in internal/gray: an overloaded server that queues
// unboundedly looks exactly like a browned-out peer to its clients — every
// request is eventually answered, far too late. Shedding early with an
// honest Retry-After keeps the served requests fast and makes the overload
// visible instead of smearing it across every caller's tail.
package admission

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rtcomp/internal/telemetry"
)

// Reason classifies why a request was shed.
type Reason string

const (
	// ReasonQueueFull: the wait queue was at capacity.
	ReasonQueueFull Reason = "queue_full"
	// ReasonDeadline: the caller's deadline would pass before a slot could
	// plausibly be reached (predicted from queue depth and the observed
	// render duration).
	ReasonDeadline Reason = "deadline"
	// ReasonCancelled: the caller's context ended while waiting in queue.
	ReasonCancelled Reason = "cancelled"
)

// ShedError reports a rejected request with enough context for the caller
// to build an honest 503: why, how deep the queue was, and how long the
// client should back off before retrying.
type ShedError struct {
	Reason     Reason
	Queued     int           // waiters at decision time (excluding this request)
	RetryAfter time.Duration // jittered client backoff hint
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: request shed (%s, %d queued, retry after %s)",
		e.Reason, e.Queued, e.RetryAfter.Round(time.Millisecond))
}

// Config tunes a Controller. The zero value means "unlimited": every
// request is admitted immediately.
type Config struct {
	// Slots bounds concurrently admitted requests. <= 0 disables admission
	// control entirely (Admit always succeeds immediately).
	Slots int
	// Queue bounds requests waiting for a slot beyond Slots. 0 means shed
	// immediately when all slots are busy (the pre-admission rtserve
	// behavior); negative means an unbounded queue (discouraged — an
	// unbounded queue turns a burst into uniform lateness).
	Queue int
	// RetryAfterMin/RetryAfterJitter shape the backoff hint in ShedError:
	// uniformly RetryAfterMin + [0, RetryAfterJitter). Jitter prevents a
	// shed burst from returning in lockstep and shedding again. Defaults:
	// 1s + [0, 2s).
	RetryAfterMin    time.Duration
	RetryAfterJitter time.Duration
	// Seed makes the Retry-After jitter deterministic for tests. 0 uses a
	// fixed default (the jitter does not need to be unpredictable, only
	// decorrelated across requests).
	Seed int64
}

// Controller is the admission gate. All methods are safe for concurrent
// use; a nil Controller admits everything.
type Controller struct {
	cfg   Config
	tel   *telemetry.Recorder
	slots chan struct{}

	queued atomic.Int64 // requests currently waiting for a slot
	estNs  atomic.Int64 // EWMA of observed render duration, ns

	rngMu sync.Mutex
	rng   *rand.Rand
}

// estAlpha is the render-duration EWMA smoothing factor: heavy smoothing,
// because the estimate gates shedding and must not chase one slow frame.
const estAlpha = 0.3

// New builds a controller; tel may be nil.
func New(cfg Config, tel *telemetry.Recorder) *Controller {
	if cfg.RetryAfterMin <= 0 {
		cfg.RetryAfterMin = time.Second
	}
	if cfg.RetryAfterJitter < 0 {
		cfg.RetryAfterJitter = 0
	} else if cfg.RetryAfterJitter == 0 {
		cfg.RetryAfterJitter = 2 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Controller{cfg: cfg, tel: tel, rng: rand.New(rand.NewSource(seed))}
	if cfg.Slots > 0 {
		c.slots = make(chan struct{}, cfg.Slots)
	}
	return c
}

// Admit acquires a render slot or sheds the request. On success the
// returned release function MUST be called exactly once when the work
// completes. On failure the error is a *ShedError.
//
// The deadline-aware path: if ctx carries a deadline and the predicted
// time to reach a slot — queue position ahead divided across the slots,
// each holding a slot for the observed render estimate — already exceeds
// it, the request is shed now. Queueing it anyway would burn a queue
// position on work guaranteed to time out, stealing it from a request
// that could still make its deadline.
func (c *Controller) Admit(ctx context.Context) (release func(), err error) {
	if c == nil || c.slots == nil {
		return func() {}, nil
	}
	select {
	case c.slots <- struct{}{}:
		c.tel.Add(0, telemetry.CtrReqAdmitted, 1)
		return c.releaseFunc(), nil
	default:
	}

	// All slots busy: reserve a queue position atomically, then decide
	// whether the position is worth holding.
	pos := int(c.queued.Add(1))
	defer c.queued.Add(-1)
	ahead := pos - 1
	if c.cfg.Queue >= 0 && ahead >= c.cfg.Queue {
		return nil, c.shed(ReasonQueueFull, ahead)
	}
	if dl, ok := ctx.Deadline(); ok {
		if est := c.Estimate(); est > 0 {
			// Everything ahead of us (the queue plus our own render once
			// admitted) spread across the slots, pessimistically assuming
			// every current holder just started.
			rounds := 1 + ahead/c.cfg.Slots + 1
			predicted := time.Duration(rounds) * est
			if time.Until(dl) < predicted {
				return nil, c.shed(ReasonDeadline, ahead)
			}
		}
	}

	c.tel.Add(0, telemetry.CtrReqQueued, 1)
	t0 := time.Now()
	select {
	case c.slots <- struct{}{}:
		c.tel.Hist(0, telemetry.HistAdmitWait).Observe(time.Since(t0))
		c.tel.Add(0, telemetry.CtrReqAdmitted, 1)
		return c.releaseFunc(), nil
	case <-ctx.Done():
		return nil, c.shed(ReasonCancelled, int(c.queued.Load())-1)
	}
}

func (c *Controller) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(func() { <-c.slots }) }
}

// shed builds the rejection and counts it.
func (c *Controller) shed(why Reason, queued int) *ShedError {
	if queued < 0 {
		queued = 0
	}
	c.tel.Add(0, telemetry.CtrReqShed, 1)
	return &ShedError{Reason: why, Queued: queued, RetryAfter: c.RetryAfter()}
}

// RetryAfter returns the jittered backoff hint for a 503.
func (c *Controller) RetryAfter() time.Duration {
	if c == nil {
		return time.Second
	}
	d := c.cfg.RetryAfterMin
	if c.cfg.RetryAfterJitter > 0 {
		c.rngMu.Lock()
		d += time.Duration(c.rng.Int63n(int64(c.cfg.RetryAfterJitter)))
		c.rngMu.Unlock()
	}
	return d
}

// ObserveRender feeds one completed render's duration into the estimate
// that prices the deadline-aware shed decision.
func (c *Controller) ObserveRender(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.tel.Hist(0, telemetry.HistRenderLatency).Observe(d)
	for {
		old := c.estNs.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = int64(float64(old)*(1-estAlpha) + float64(d)*estAlpha)
		}
		if c.estNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// Estimate is the current render-duration EWMA (0 until the first
// observation).
func (c *Controller) Estimate() time.Duration {
	if c == nil {
		return 0
	}
	return time.Duration(c.estNs.Load())
}

// Depth reports current occupancy: admitted (slot holders) and queued
// waiters. Unlimited controllers report zeros.
func (c *Controller) Depth() (active, queued int) {
	if c == nil || c.slots == nil {
		return 0, 0
	}
	return len(c.slots), int(c.queued.Load())
}
