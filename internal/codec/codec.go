// Package codec implements the compression schemes the paper evaluates for
// shrinking composition traffic: classic run-length encoding (RLE) and the
// paper's template run-length encoding (TRLE), in two forms each:
//
//   - mask codecs, operating on binary blank/non-blank bitmaps exactly as in
//     the paper's Figures 3 and 4 (2x2-pixel templates, one byte per code);
//   - image codecs, operating on the interleaved value+alpha pixel blocks
//     the compositors actually transmit. Blocks are contiguous row-major
//     pixel spans, so the image-mode TRLE template covers four consecutive
//     pixels (a 4x1 window) instead of a 2x2 window; the coding mechanics —
//     4-bit template plus 4-bit replication count — are unchanged.
//
// Blank pixels (alpha == 0) carry no compositing contribution, which is what
// both codecs exploit.
package codec

import (
	"errors"
	"fmt"

	"rtcomp/internal/raster"
)

// Codec compresses and decompresses interleaved value+alpha pixel blocks.
// Implementations must be deterministic and side-effect free.
type Codec interface {
	// Name identifies the codec in reports ("raw", "rle", "trle").
	Name() string
	// Encode compresses a pixel block (raster.BytesPerPixel bytes per pixel).
	Encode(pix []uint8) []uint8
	// Decode expands an encoded block back to exactly npix pixels.
	Decode(enc []uint8, npix int) ([]uint8, error)
}

// ErrCorrupt is returned by Decode when the encoded stream is inconsistent
// with the expected pixel count.
var ErrCorrupt = errors.New("codec: corrupt stream")

// Raw is the identity codec: blocks travel uncompressed.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Encode implements Codec.
func (Raw) Encode(pix []uint8) []uint8 {
	out := make([]uint8, len(pix))
	copy(out, pix)
	return out
}

// Decode implements Codec.
func (Raw) Decode(enc []uint8, npix int) ([]uint8, error) {
	if len(enc) != npix*raster.BytesPerPixel {
		return nil, fmt.Errorf("%w: raw block has %d bytes, want %d", ErrCorrupt, len(enc), npix*raster.BytesPerPixel)
	}
	out := make([]uint8, len(enc))
	copy(out, enc)
	return out, nil
}

// ByName returns the codec registered under the given name.
func ByName(name string) (Codec, error) {
	switch name {
	case "raw", "":
		return Raw{}, nil
	case "rle":
		return RLE{}, nil
	case "trle":
		return TRLE{}, nil
	case "bspan":
		return BSpan{}, nil
	}
	return nil, fmt.Errorf("codec: unknown codec %q", name)
}

// Names lists the codecs the paper's figures evaluate, in evaluation
// order. The bounding-interval codec ("bspan") is registered with ByName
// but kept out of this list so the figure reproductions keep the paper's
// columns.
func Names() []string { return []string{"raw", "rle", "trle"} }

// Ratio reports original/encoded size; larger is better. A zero encoded
// size (possible only for empty input) reports 1.
func Ratio(origBytes, encBytes int) float64 {
	if encBytes == 0 {
		return 1
	}
	return float64(origBytes) / float64(encBytes)
}
