// Package codec implements the compression schemes the paper evaluates for
// shrinking composition traffic: classic run-length encoding (RLE) and the
// paper's template run-length encoding (TRLE), in two forms each:
//
//   - mask codecs, operating on binary blank/non-blank bitmaps exactly as in
//     the paper's Figures 3 and 4 (2x2-pixel templates, one byte per code);
//   - image codecs, operating on the interleaved value+alpha pixel blocks
//     the compositors actually transmit. Blocks are contiguous row-major
//     pixel spans, so the image-mode TRLE template covers four consecutive
//     pixels (a 4x1 window) instead of a 2x2 window; the coding mechanics —
//     4-bit template plus 4-bit replication count — are unchanged.
//
// Blank pixels (alpha == 0) carry no compositing contribution, which is what
// both codecs exploit.
package codec

import (
	"errors"
	"fmt"

	"rtcomp/internal/raster"
)

// Codec compresses and decompresses interleaved value+alpha pixel blocks.
// Implementations must be deterministic and side-effect free.
//
// Buffer ownership: the legacy entry points Encode and Decode MAY return a
// slice aliasing their input (Raw returns the input itself) — callers must
// treat input and output as one buffer: mutating either invalidates the
// other, and neither may be recycled while the other is live. The
// append-style entry points never alias: EncodeAppend reads pix and writes
// only dst's backing array, DecodeInto reads enc and writes only the
// buffer it returns, so their results stay valid after the input buffer is
// reused or returned to a pool.
type Codec interface {
	// Name identifies the codec in reports ("raw", "rle", "trle").
	Name() string
	// Encode compresses a pixel block (raster.BytesPerPixel bytes per
	// pixel). The result may alias pix.
	Encode(pix []uint8) []uint8
	// Decode expands an encoded block back to exactly npix pixels. The
	// result may alias enc.
	Decode(enc []uint8, npix int) ([]uint8, error)
	// EncodeAppend appends the encoding of pix to dst and returns the
	// extended slice, growing it as needed. The result never aliases pix.
	EncodeAppend(dst, pix []uint8) []uint8
	// DecodeInto expands an encoded block into dst's backing array when its
	// capacity suffices (allocating otherwise) and returns a slice of
	// exactly npix pixels. The result never aliases enc, so enc may be
	// recycled as soon as DecodeInto returns.
	DecodeInto(dst, enc []uint8, npix int) ([]uint8, error)
}

// grow returns a slice of length n for DecodeInto-style writers, reusing
// dst's backing array when it is large enough. Contents are unspecified.
func grow(dst []uint8, n int) []uint8 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]uint8, n)
}

// ErrCorrupt is returned by Decode when the encoded stream is inconsistent
// with the expected pixel count.
var ErrCorrupt = errors.New("codec: corrupt stream")

// Raw is the identity codec: blocks travel uncompressed. Its legacy entry
// points exercise the interface's aliasing license to the fullest — both
// return their input unchanged, so the uncompressed path never duplicates
// a block just to relabel it.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Encode implements Codec. The result is pix itself.
func (Raw) Encode(pix []uint8) []uint8 { return pix }

// Decode implements Codec. The result is enc itself.
func (Raw) Decode(enc []uint8, npix int) ([]uint8, error) {
	if len(enc) != npix*raster.BytesPerPixel {
		return nil, fmt.Errorf("%w: raw block has %d bytes, want %d", ErrCorrupt, len(enc), npix*raster.BytesPerPixel)
	}
	return enc, nil
}

// EncodeAppend implements Codec.
func (Raw) EncodeAppend(dst, pix []uint8) []uint8 { return append(dst, pix...) }

// DecodeInto implements Codec.
func (Raw) DecodeInto(dst, enc []uint8, npix int) ([]uint8, error) {
	if len(enc) != npix*raster.BytesPerPixel {
		return nil, fmt.Errorf("%w: raw block has %d bytes, want %d", ErrCorrupt, len(enc), npix*raster.BytesPerPixel)
	}
	out := grow(dst, len(enc))
	copy(out, enc)
	return out, nil
}

// ByName returns the codec registered under the given name.
func ByName(name string) (Codec, error) {
	switch name {
	case "raw", "":
		return Raw{}, nil
	case "rle":
		return RLE{}, nil
	case "trle":
		return TRLE{}, nil
	case "bspan":
		return BSpan{}, nil
	}
	return nil, fmt.Errorf("codec: unknown codec %q", name)
}

// Names lists the codecs the paper's figures evaluate, in evaluation
// order. The bounding-interval codec ("bspan") is registered with ByName
// but kept out of this list so the figure reproductions keep the paper's
// columns.
func Names() []string { return []string{"raw", "rle", "trle"} }

// Ratio reports original/encoded size; larger is better. A zero encoded
// size (possible only for empty input) reports 1.
func Ratio(origBytes, encBytes int) float64 {
	if encBytes == 0 {
		return 1
	}
	return float64(origBytes) / float64(encBytes)
}
