package codec

import (
	"encoding/binary"
	"fmt"

	"rtcomp/internal/raster"
)

// BSpan is the bounding-interval codec: the span analogue of the bounding
// rectangle of Ma et al. and Lee that the paper cites as the classic
// composition-traffic reduction. Leading and trailing blank pixels of a
// block are trimmed and only the interior interval travels, uncompressed:
//
//	uvarint(offset) | uvarint(count) | count pixels raw
//
// It costs almost no computation — the cheapest reduction of the three —
// but unlike RLE/TRLE it cannot exploit blanks inside the footprint.
type BSpan struct{}

// Name implements Codec.
func (BSpan) Name() string { return "bspan" }

// Encode implements Codec.
func (BSpan) Encode(pix []uint8) []uint8 {
	return BSpan{}.EncodeAppend(make([]uint8, 0, len(pix)+8), pix)
}

// EncodeAppend implements Codec.
func (BSpan) EncodeAppend(dst, pix []uint8) []uint8 {
	if len(pix)%raster.BytesPerPixel != 0 {
		panic("codec: BSpan.Encode on odd-length pixel block")
	}
	n := len(pix) / raster.BytesPerPixel
	lo := 0
	for lo < n && pix[2*lo+1] == 0 {
		lo++
	}
	hi := n
	for hi > lo && pix[2*(hi-1)+1] == 0 {
		hi--
	}
	dst = binary.AppendUvarint(dst, uint64(lo))
	dst = binary.AppendUvarint(dst, uint64(hi-lo))
	return append(dst, pix[2*lo:2*hi]...)
}

// Decode implements Codec.
func (BSpan) Decode(enc []uint8, npix int) ([]uint8, error) {
	return BSpan{}.DecodeInto(nil, enc, npix)
}

// DecodeInto implements Codec.
func (BSpan) DecodeInto(dst, enc []uint8, npix int) ([]uint8, error) {
	lo, k := binary.Uvarint(enc)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bspan offset", ErrCorrupt)
	}
	enc = enc[k:]
	count, k := binary.Uvarint(enc)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bspan count", ErrCorrupt)
	}
	enc = enc[k:]
	if lo+count > uint64(npix) {
		return nil, fmt.Errorf("%w: bspan interval [%d,%d) exceeds %d pixels", ErrCorrupt, lo, lo+count, npix)
	}
	if uint64(len(enc)) != count*raster.BytesPerPixel {
		return nil, fmt.Errorf("%w: bspan payload has %d bytes, want %d", ErrCorrupt, len(enc), count*raster.BytesPerPixel)
	}
	// Only the interval is copied, so a recycled dst must be cleared to
	// make the trimmed margins blank.
	out := grow(dst, npix*raster.BytesPerPixel)
	clear(out)
	copy(out[lo*raster.BytesPerPixel:], enc)
	return out, nil
}
