package codec

import (
	"encoding/binary"
	"fmt"

	"rtcomp/internal/raster"
)

// BSpan is the bounding-interval codec: the span analogue of the bounding
// rectangle of Ma et al. and Lee that the paper cites as the classic
// composition-traffic reduction. Leading and trailing blank pixels of a
// block are trimmed and only the interior interval travels, uncompressed:
//
//	uvarint(offset) | uvarint(count) | count pixels raw
//
// It costs almost no computation — the cheapest reduction of the three —
// but unlike RLE/TRLE it cannot exploit blanks inside the footprint.
type BSpan struct{}

// Name implements Codec.
func (BSpan) Name() string { return "bspan" }

// Encode implements Codec.
func (BSpan) Encode(pix []uint8) []uint8 {
	if len(pix)%raster.BytesPerPixel != 0 {
		panic("codec: BSpan.Encode on odd-length pixel block")
	}
	n := len(pix) / raster.BytesPerPixel
	lo := 0
	for lo < n && pix[2*lo+1] == 0 {
		lo++
	}
	hi := n
	for hi > lo && pix[2*(hi-1)+1] == 0 {
		hi--
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	k := binary.PutUvarint(hdr[:], uint64(lo))
	k += binary.PutUvarint(hdr[k:], uint64(hi-lo))
	out := make([]uint8, 0, k+(hi-lo)*raster.BytesPerPixel)
	out = append(out, hdr[:k]...)
	out = append(out, pix[2*lo:2*hi]...)
	return out
}

// Decode implements Codec.
func (BSpan) Decode(enc []uint8, npix int) ([]uint8, error) {
	lo, k := binary.Uvarint(enc)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bspan offset", ErrCorrupt)
	}
	enc = enc[k:]
	count, k := binary.Uvarint(enc)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bspan count", ErrCorrupt)
	}
	enc = enc[k:]
	if lo+count > uint64(npix) {
		return nil, fmt.Errorf("%w: bspan interval [%d,%d) exceeds %d pixels", ErrCorrupt, lo, lo+count, npix)
	}
	if uint64(len(enc)) != count*raster.BytesPerPixel {
		return nil, fmt.Errorf("%w: bspan payload has %d bytes, want %d", ErrCorrupt, len(enc), count*raster.BytesPerPixel)
	}
	out := make([]uint8, npix*raster.BytesPerPixel)
	copy(out[lo*raster.BytesPerPixel:], enc)
	return out, nil
}
