package codec

import (
	"encoding/binary"
	"fmt"

	"rtcomp/internal/raster"
)

// TRLE is the paper's template run-length encoding applied to value+alpha
// pixel blocks. The block's blank structure is described by a stream of
// one-byte TRLE codes — low nibble: a 4-bit template marking which of four
// consecutive pixels are non-blank; high nibble: how many additional times
// the template repeats (so one code covers up to 16 template groups) — and
// the surviving non-blank pixels follow as a raw payload in scan order.
//
// The paper defines templates over 2x2 pixel windows of a rectangular
// sub-image. Composition blocks in this implementation are contiguous
// row-major spans, so the template here covers four consecutive pixels
// instead; MaskTRLE (mask.go) implements the exact 2x2 form and reproduces
// Figure 4 byte for byte.
type TRLE struct{}

// Name implements Codec.
func (TRLE) Name() string { return "trle" }

// templatePixels is the number of pixels described by one template.
const templatePixels = 4

// Encode implements Codec. Layout:
//
//	uvarint(code count) | codes... | payload (value,alpha of non-blank pixels)
func (TRLE) Encode(pix []uint8) []uint8 {
	return TRLE{}.EncodeAppend(make([]uint8, 0, len(pix)/4+8), pix)
}

// EncodeAppend implements Codec. The template stream is walked twice — once
// to count codes for the uvarint header, once to emit them — trading a
// second cheap pass for zero intermediate slices.
func (TRLE) EncodeAppend(dst, pix []uint8) []uint8 {
	if len(pix)%raster.BytesPerPixel != 0 {
		panic("codec: TRLE.Encode on odd-length pixel block")
	}
	n := len(pix) / raster.BytesPerPixel
	groups := (n + templatePixels - 1) / templatePixels

	// Template of one group (bit 3 = first pixel ... bit 0 = fourth).
	tplAt := func(g int) uint8 {
		var tpl uint8
		for j := 0; j < templatePixels; j++ {
			i := g*templatePixels + j
			if i < n && pix[2*i+1] != 0 {
				tpl |= 1 << (templatePixels - 1 - j)
			}
		}
		return tpl
	}
	// runAt is one step of the template run-length coding (<=16 per code).
	runAt := func(g int) (tpl uint8, run int) {
		tpl = tplAt(g)
		run = 1
		for g+run < groups && run < 16 && tplAt(g+run) == tpl {
			run++
		}
		return tpl, run
	}

	ncodes := 0
	for g := 0; g < groups; {
		_, run := runAt(g)
		ncodes++
		g += run
	}
	dst = binary.AppendUvarint(dst, uint64(ncodes))
	for g := 0; g < groups; {
		tpl, run := runAt(g)
		dst = append(dst, uint8(run-1)<<4|tpl)
		g += run
	}
	for i := 0; i < n; i++ {
		if pix[2*i+1] != 0 {
			dst = append(dst, pix[2*i], pix[2*i+1])
		}
	}
	return dst
}

// Decode implements Codec.
func (TRLE) Decode(enc []uint8, npix int) ([]uint8, error) {
	return TRLE{}.DecodeInto(nil, enc, npix)
}

// DecodeInto implements Codec.
func (TRLE) DecodeInto(dst, enc []uint8, npix int) ([]uint8, error) {
	ncodes, hn := binary.Uvarint(enc)
	if hn <= 0 {
		return nil, fmt.Errorf("%w: TRLE header", ErrCorrupt)
	}
	if uint64(len(enc)-hn) < ncodes {
		return nil, fmt.Errorf("%w: TRLE stream truncated", ErrCorrupt)
	}
	codes := enc[hn : hn+int(ncodes)]
	payload := enc[hn+int(ncodes):]

	// The decode loop writes only non-blank pixels, so a recycled dst must
	// be cleared to make every untouched pixel blank.
	out := grow(dst, npix*raster.BytesPerPixel)
	clear(out)
	i := 0 // pixel cursor
	p := 0 // payload cursor
	for _, c := range codes {
		tpl := c & 0x0F
		reps := int(c>>4) + 1
		for rep := 0; rep < reps; rep++ {
			for j := 0; j < templatePixels; j++ {
				set := tpl&(1<<(templatePixels-1-j)) != 0
				if i >= npix {
					if set {
						return nil, fmt.Errorf("%w: TRLE non-blank pixel beyond block", ErrCorrupt)
					}
					continue
				}
				if set {
					if p+2 > len(payload) {
						return nil, fmt.Errorf("%w: TRLE payload truncated", ErrCorrupt)
					}
					out[2*i], out[2*i+1] = payload[p], payload[p+1]
					if out[2*i+1] == 0 {
						return nil, fmt.Errorf("%w: TRLE blank pixel in payload", ErrCorrupt)
					}
					p += 2
				}
				i++
			}
		}
	}
	if i < npix {
		return nil, fmt.Errorf("%w: TRLE codes cover %d pixels, want %d", ErrCorrupt, i, npix)
	}
	if p != len(payload) {
		return nil, fmt.Errorf("%w: TRLE payload has %d leftover bytes", ErrCorrupt, len(payload)-p)
	}
	return out, nil
}
