package codec

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
)

// TRLE is the paper's template run-length encoding applied to value+alpha
// pixel blocks. The block's blank structure is described by a stream of
// one-byte TRLE codes — low nibble: a 4-bit template marking which of four
// consecutive pixels are non-blank; high nibble: how many additional times
// the template repeats (so one code covers up to 16 template groups) — and
// the surviving non-blank pixels follow as a raw payload in scan order.
//
// The paper defines templates over 2x2 pixel windows of a rectangular
// sub-image. Composition blocks in this implementation are contiguous
// row-major spans, so the template here covers four consecutive pixels
// instead; MaskTRLE (mask.go) implements the exact 2x2 form and reproduces
// Figure 4 byte for byte.
type TRLE struct{}

// Name implements Codec.
func (TRLE) Name() string { return "trle" }

// templatePixels is the number of pixels described by one template.
const templatePixels = 4

// Encode implements Codec. Layout:
//
//	uvarint(code count) | codes... | payload (value,alpha of non-blank pixels)
func (TRLE) Encode(pix []uint8) []uint8 {
	return TRLE{}.EncodeAppend(make([]uint8, 0, len(pix)/4+8), pix)
}

// EncodeAppend implements Codec. Template classification is word-wide: one
// 64-bit load covers exactly one template group (four pixels), whose
// non-blank nibble falls out of three masked adds (see words.go); the
// classified stream lands in a pooled scratch buffer, the run coder walks
// it eight templates per load, and the payload pass walks that same
// template stream — an eighth of the pixel data — emitting all-set
// stretches as bulk copies instead of a byte-pair append per pixel. Output
// is byte-identical to the scalar two-pass encoder.
func (TRLE) EncodeAppend(dst, pix []uint8) []uint8 {
	if len(pix)%raster.BytesPerPixel != 0 {
		panic("codec: TRLE.Encode on odd-length pixel block")
	}
	n := len(pix) / raster.BytesPerPixel
	groups := (n + templatePixels - 1) / templatePixels
	if groups == 0 {
		return binary.AppendUvarint(dst, 0)
	}

	// Classify every group. All full groups are single word loads; only a
	// trailing partial group (block not a multiple of four pixels) walks
	// its pixels one by one.
	tpls := bufpool.Get(groups)
	g := 0
	for ; 8*g+8 <= len(pix); g++ {
		tpls[g] = rev4[nonBlankNibble(binary.LittleEndian.Uint64(pix[8*g:]))]
	}
	for ; g < groups; g++ {
		var tpl uint8
		for j := 0; j < templatePixels; j++ {
			if i := g*templatePixels + j; i < n && pix[2*i+1] != 0 {
				tpl |= 1 << (templatePixels - 1 - j)
			}
		}
		tpls[g] = tpl
	}

	ncodes := 0
	for i := 0; i < groups; {
		limit := i + 16
		if limit > groups {
			limit = groups
		}
		ncodes++
		i += byteRunLen(tpls, i, limit)
	}
	dst = binary.AppendUvarint(dst, uint64(ncodes))
	for i := 0; i < groups; {
		limit := i + 16
		if limit > groups {
			limit = groups
		}
		run := byteRunLen(tpls, i, limit)
		dst = append(dst, uint8(run-1)<<4|tpls[i])
		i += run
	}

	// Payload: the template stream already holds the block's blank
	// structure, so the payload pass walks it instead of rescanning pixel
	// words — an eighth of the data. All-set stretches bulk-copy (an all-set
	// template implies a full group, so the copy cannot overrun a trailing
	// partial group); mixed templates pick their set pixels bit by bit.
	for g := 0; g < groups; {
		t := tpls[g]
		run := byteRunLen(tpls, g, groups)
		switch {
		case t == 0:
		case t == 0x0F:
			dst = append(dst, pix[g*templatePixels*raster.BytesPerPixel:(g+run)*templatePixels*raster.BytesPerPixel]...)
		default:
			for gg := g; gg < g+run; gg++ {
				for j := 0; j < templatePixels; j++ {
					if t&(1<<(templatePixels-1-j)) != 0 {
						p := gg*templatePixels + j
						dst = append(dst, pix[2*p], pix[2*p+1])
					}
				}
			}
		}
		g += run
	}
	bufpool.Put(tpls)
	return dst
}

// Decode implements Codec.
func (TRLE) Decode(enc []uint8, npix int) ([]uint8, error) {
	return TRLE{}.DecodeInto(nil, enc, npix)
}

// DecodeInto implements Codec. The two dominant code classes take bulk
// paths — all-blank templates advance the pixel cursor without touching the
// (pre-cleared) output, all-set template runs that fit the block bulk-copy
// their payload after one word-wide alpha validation — and only boundary or
// mixed-template groups walk pixels individually, with semantics (including
// error cases: truncation, underflow, blank payload pixels, non-blank
// pixels beyond the block) identical to the scalar decoder.
func (TRLE) DecodeInto(dst, enc []uint8, npix int) ([]uint8, error) {
	ncodes, hn := binary.Uvarint(enc)
	if hn <= 0 {
		return nil, fmt.Errorf("%w: TRLE header", ErrCorrupt)
	}
	if uint64(len(enc)-hn) < ncodes {
		return nil, fmt.Errorf("%w: TRLE stream truncated", ErrCorrupt)
	}
	codes := enc[hn : hn+int(ncodes)]
	payload := enc[hn+int(ncodes):]

	// The decode loop writes only non-blank pixels, so a recycled dst must
	// be cleared to make every untouched pixel blank.
	out := grow(dst, npix*raster.BytesPerPixel)
	clear(out)
	i := 0 // pixel cursor
	p := 0 // payload cursor
	for _, c := range codes {
		tpl := c & 0x0F
		reps := int(c>>4) + 1
		switch {
		case tpl == 0:
			// Blank groups never write; pixels past the block are legal for
			// blank templates (odd-sized blocks pad with blanks), so the
			// cursor saturates at npix exactly as the scalar walk did.
			i += templatePixels * reps
			if i > npix {
				i = npix
			}
		case tpl == 0x0F && i+templatePixels*reps <= npix:
			k := templatePixels * reps
			if p+2*k > len(payload) {
				return nil, fmt.Errorf("%w: TRLE payload truncated", ErrCorrupt)
			}
			seg := payload[p : p+2*k]
			if !allAlphasNonZero(seg) {
				return nil, fmt.Errorf("%w: TRLE blank pixel in payload", ErrCorrupt)
			}
			copy(out[2*i:], seg)
			i += k
			p += 2 * k
		default:
			for rep := 0; rep < reps; rep++ {
				for j := 0; j < templatePixels; j++ {
					set := tpl&(1<<(templatePixels-1-j)) != 0
					if i >= npix {
						if set {
							return nil, fmt.Errorf("%w: TRLE non-blank pixel beyond block", ErrCorrupt)
						}
						continue
					}
					if set {
						if p+2 > len(payload) {
							return nil, fmt.Errorf("%w: TRLE payload truncated", ErrCorrupt)
						}
						out[2*i], out[2*i+1] = payload[p], payload[p+1]
						if out[2*i+1] == 0 {
							return nil, fmt.Errorf("%w: TRLE blank pixel in payload", ErrCorrupt)
						}
						p += 2
					}
					i++
				}
			}
		}
	}
	if i < npix {
		return nil, fmt.Errorf("%w: TRLE codes cover %d pixels, want %d", ErrCorrupt, i, npix)
	}
	if p != len(payload) {
		return nil, fmt.Errorf("%w: TRLE payload has %d leftover bytes", ErrCorrupt, len(payload)-p)
	}
	return out, nil
}

// CheckStream implements OverDecoder: it validates enc as a TRLE stream of
// exactly npix pixels without producing them. Pixel accounting runs a code
// at a time (a popcount per code instead of a branch per pixel); only a
// group straddling the block end walks its template bits. Every DecodeInto
// error case is detected: header damage, code/payload truncation, non-blank
// pixels beyond the block, underflow, leftover payload, blank payload
// pixels.
func (TRLE) CheckStream(enc []uint8, npix int) error {
	ncodes, hn := binary.Uvarint(enc)
	if hn <= 0 {
		return fmt.Errorf("%w: TRLE header", ErrCorrupt)
	}
	if uint64(len(enc)-hn) < ncodes {
		return fmt.Errorf("%w: TRLE stream truncated", ErrCorrupt)
	}
	codes := enc[hn : hn+int(ncodes)]
	payload := enc[hn+int(ncodes):]
	i, setb := 0, 0
	for _, c := range codes {
		tpl := c & 0x0F
		reps := int(c>>4) + 1
		pop := bits.OnesCount8(tpl)
		if i+templatePixels*reps <= npix {
			i += templatePixels * reps
			setb += pop * reps
			continue
		}
		if tpl == 0 {
			i = npix // blank groups saturate legally
			continue
		}
		for rep := 0; rep < reps; rep++ {
			if i+templatePixels <= npix {
				i += templatePixels
				setb += pop
				continue
			}
			for j := 0; j < templatePixels; j++ {
				set := tpl&(1<<(templatePixels-1-j)) != 0
				if i >= npix {
					if set {
						return fmt.Errorf("%w: TRLE non-blank pixel beyond block", ErrCorrupt)
					}
					continue
				}
				if set {
					setb++
				}
				i++
			}
		}
	}
	if i < npix {
		return fmt.Errorf("%w: TRLE codes cover %d pixels, want %d", ErrCorrupt, i, npix)
	}
	if len(payload) < 2*setb {
		return fmt.Errorf("%w: TRLE payload truncated", ErrCorrupt)
	}
	if len(payload) > 2*setb {
		return fmt.Errorf("%w: TRLE payload has %d leftover bytes", ErrCorrupt, len(payload)-2*setb)
	}
	if !allAlphasNonZero(payload) {
		return fmt.Errorf("%w: TRLE blank pixel in payload", ErrCorrupt)
	}
	return nil
}

// DecodeOver implements OverDecoder: it composites the encoded block with
// dst in place without materializing the decoded pixels. When encFront is
// true the encoded block is the front layer (decoded over dst); otherwise
// dst is the front over the decoded block. Blank-template runs cost nothing
// on the front path and a word-wide canonicalisation on the back path
// (decoded blanks are canonical (0,0) pixels, which a blank dst pixel must
// adopt); all-set template runs feed their payload straight into the
// word-wide OverU8 against the matching dst segment. dst must hold exactly
// npix pixels. Streams must pass CheckStream first; a mangled stream still
// returns ErrCorrupt but may leave dst partially composited. On success it
// returns npix — the same over-pixel count the decode-then-OverU8 path
// reports.
func (TRLE) DecodeOver(dst, enc []uint8, npix int, encFront bool) (int, error) {
	if len(dst) != npix*raster.BytesPerPixel {
		panic("codec: TRLE.DecodeOver dst length mismatch")
	}
	ncodes, hn := binary.Uvarint(enc)
	if hn <= 0 {
		return 0, fmt.Errorf("%w: TRLE header", ErrCorrupt)
	}
	if uint64(len(enc)-hn) < ncodes {
		return 0, fmt.Errorf("%w: TRLE stream truncated", ErrCorrupt)
	}
	codes := enc[hn : hn+int(ncodes)]
	payload := enc[hn+int(ncodes):]
	i := 0 // pixel cursor
	p := 0 // payload cursor
	pixels := 0
	for _, c := range codes {
		tpl := c & 0x0F
		reps := int(c>>4) + 1
		switch {
		case tpl == 0:
			end := i + templatePixels*reps
			if end > npix {
				end = npix
			}
			if !encFront {
				compose.OverU8Runs(dst, []compose.Run{{Off: i, N: end - i}}, false)
			}
			pixels += end - i
			i = end
		case tpl == 0x0F && i+templatePixels*reps <= npix:
			k := templatePixels * reps
			if p+2*k > len(payload) {
				return pixels, fmt.Errorf("%w: TRLE payload truncated", ErrCorrupt)
			}
			seg := payload[p : p+2*k]
			if !allAlphasNonZero(seg) {
				return pixels, fmt.Errorf("%w: TRLE blank pixel in payload", ErrCorrupt)
			}
			dseg := dst[2*i : 2*(i+k)]
			if encFront {
				compose.OverU8(dseg, seg, dseg)
			} else {
				compose.OverU8(dseg, dseg, seg)
			}
			pixels += k
			i += k
			p += 2 * k
		default:
			for rep := 0; rep < reps; rep++ {
				for j := 0; j < templatePixels; j++ {
					set := tpl&(1<<(templatePixels-1-j)) != 0
					if i >= npix {
						if set {
							return pixels, fmt.Errorf("%w: TRLE non-blank pixel beyond block", ErrCorrupt)
						}
						continue
					}
					if set {
						if p+2 > len(payload) {
							return pixels, fmt.Errorf("%w: TRLE payload truncated", ErrCorrupt)
						}
						pv, pa := payload[p], payload[p+1]
						if pa == 0 {
							return pixels, fmt.Errorf("%w: TRLE blank pixel in payload", ErrCorrupt)
						}
						// The fa switch is written out (OverPixel is over the
						// inlining budget; OverBlend is not).
						if encFront {
							if pa == 255 {
								dst[2*i], dst[2*i+1] = pv, pa
							} else {
								dst[2*i], dst[2*i+1] = compose.OverBlend(pv, pa, dst[2*i], dst[2*i+1])
							}
						} else {
							switch fa := dst[2*i+1]; fa {
							case 255:
							case 0:
								dst[2*i], dst[2*i+1] = pv, pa
							default:
								dst[2*i], dst[2*i+1] = compose.OverBlend(dst[2*i], fa, pv, pa)
							}
						}
						p += 2
					} else if !encFront && dst[2*i+1] == 0 {
						// A decoded blank back pixel is canonical (0,0); a
						// blank dst front pixel passes it through verbatim.
						dst[2*i] = 0
					}
					pixels++
					i++
				}
			}
		}
	}
	if i < npix {
		return pixels, fmt.Errorf("%w: TRLE codes cover %d pixels, want %d", ErrCorrupt, i, npix)
	}
	if p != len(payload) {
		return pixels, fmt.Errorf("%w: TRLE payload has %d leftover bytes", ErrCorrupt, len(payload)-p)
	}
	return pixels, nil
}
