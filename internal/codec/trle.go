package codec

import (
	"encoding/binary"
	"fmt"

	"rtcomp/internal/raster"
)

// TRLE is the paper's template run-length encoding applied to value+alpha
// pixel blocks. The block's blank structure is described by a stream of
// one-byte TRLE codes — low nibble: a 4-bit template marking which of four
// consecutive pixels are non-blank; high nibble: how many additional times
// the template repeats (so one code covers up to 16 template groups) — and
// the surviving non-blank pixels follow as a raw payload in scan order.
//
// The paper defines templates over 2x2 pixel windows of a rectangular
// sub-image. Composition blocks in this implementation are contiguous
// row-major spans, so the template here covers four consecutive pixels
// instead; MaskTRLE (mask.go) implements the exact 2x2 form and reproduces
// Figure 4 byte for byte.
type TRLE struct{}

// Name implements Codec.
func (TRLE) Name() string { return "trle" }

// templatePixels is the number of pixels described by one template.
const templatePixels = 4

// Encode implements Codec. Layout:
//
//	uvarint(code count) | codes... | payload (value,alpha of non-blank pixels)
func (TRLE) Encode(pix []uint8) []uint8 {
	if len(pix)%raster.BytesPerPixel != 0 {
		panic("codec: TRLE.Encode on odd-length pixel block")
	}
	n := len(pix) / raster.BytesPerPixel
	groups := (n + templatePixels - 1) / templatePixels

	// Pass 1: template per group (bit 3 = first pixel ... bit 0 = fourth).
	templates := make([]uint8, groups)
	for g := 0; g < groups; g++ {
		var tpl uint8
		for j := 0; j < templatePixels; j++ {
			i := g*templatePixels + j
			if i < n && pix[2*i+1] != 0 {
				tpl |= 1 << (templatePixels - 1 - j)
			}
		}
		templates[g] = tpl
	}

	// Pass 2: run-length the templates (<=16 per code) and gather payload.
	codes := make([]uint8, 0, groups)
	for g := 0; g < groups; {
		tpl := templates[g]
		run := 1
		for g+run < groups && run < 16 && templates[g+run] == tpl {
			run++
		}
		codes = append(codes, uint8(run-1)<<4|tpl)
		g += run
	}

	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(codes)))
	out := make([]uint8, 0, hn+len(codes)+len(pix)/4)
	out = append(out, hdr[:hn]...)
	out = append(out, codes...)
	for i := 0; i < n; i++ {
		if pix[2*i+1] != 0 {
			out = append(out, pix[2*i], pix[2*i+1])
		}
	}
	return out
}

// Decode implements Codec.
func (TRLE) Decode(enc []uint8, npix int) ([]uint8, error) {
	ncodes, hn := binary.Uvarint(enc)
	if hn <= 0 {
		return nil, fmt.Errorf("%w: TRLE header", ErrCorrupt)
	}
	if uint64(len(enc)-hn) < ncodes {
		return nil, fmt.Errorf("%w: TRLE stream truncated", ErrCorrupt)
	}
	codes := enc[hn : hn+int(ncodes)]
	payload := enc[hn+int(ncodes):]

	out := make([]uint8, npix*raster.BytesPerPixel)
	i := 0 // pixel cursor
	p := 0 // payload cursor
	for _, c := range codes {
		tpl := c & 0x0F
		reps := int(c>>4) + 1
		for rep := 0; rep < reps; rep++ {
			for j := 0; j < templatePixels; j++ {
				set := tpl&(1<<(templatePixels-1-j)) != 0
				if i >= npix {
					if set {
						return nil, fmt.Errorf("%w: TRLE non-blank pixel beyond block", ErrCorrupt)
					}
					continue
				}
				if set {
					if p+2 > len(payload) {
						return nil, fmt.Errorf("%w: TRLE payload truncated", ErrCorrupt)
					}
					out[2*i], out[2*i+1] = payload[p], payload[p+1]
					if out[2*i+1] == 0 {
						return nil, fmt.Errorf("%w: TRLE blank pixel in payload", ErrCorrupt)
					}
					p += 2
				}
				i++
			}
		}
	}
	if i < npix {
		return nil, fmt.Errorf("%w: TRLE codes cover %d pixels, want %d", ErrCorrupt, i, npix)
	}
	if p != len(payload) {
		return nil, fmt.Errorf("%w: TRLE payload has %d leftover bytes", ErrCorrupt, len(payload)-p)
	}
	return out, nil
}
