package codec

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"rtcomp/internal/raster"
)

// templateSeeds turns the paper's 16 Figure 3 templates into pixel-block
// seed inputs: each 2x2 template flattens to four consecutive pixels, the
// exact window the image-mode TRLE codes with one template byte.
func templateSeeds() [][]byte {
	var seeds [][]byte
	for _, tpl := range TemplateTable() {
		pix := make([]byte, 0, 4*raster.BytesPerPixel)
		v := uint8(1)
		for _, row := range tpl {
			for _, set := range row {
				if set {
					pix = append(pix, v, 255)
					v++
				} else {
					pix = append(pix, 0, 0)
				}
			}
		}
		seeds = append(seeds, pix)
	}
	return seeds
}

// canonicalize clamps every blank pixel's value byte to zero — the part of
// the input TRLE legitimately discards (a blank pixel's value carries no
// compositing contribution), so the roundtrip property is stated on
// canonical blocks.
func canonicalize(pix []byte) []byte {
	out := make([]byte, len(pix))
	copy(out, pix)
	for i := 0; i+1 < len(out); i += raster.BytesPerPixel {
		if out[i+1] == 0 {
			out[i] = 0
		}
	}
	return out
}

// replicaFrameSeeds mirrors the compositor's replication-exchange frame
// (uvarint width, uvarint height, encoded pixels — see encodeReplica): the
// decoder sees these byte streams verbatim when a buddy's replica arrives,
// so the hostile-stream half of the property gets seeded with exactly that
// wire shape, headers and all.
func replicaFrameSeeds(c Codec) [][]byte {
	var seeds [][]byte
	rng := rand.New(rand.NewSource(99))
	for _, dim := range []struct{ w, h int }{{4, 4}, {8, 2}, {1, 1}} {
		img := raster.RandomBinaryImage(rng, dim.w, dim.h, 0.5)
		frame := binary.AppendUvarint(nil, uint64(dim.w))
		frame = binary.AppendUvarint(frame, uint64(dim.h))
		seeds = append(seeds, append(frame, c.Encode(img.Pix)...))
	}
	// A frame whose header promises more pixels than the payload encodes.
	lying := binary.AppendUvarint(nil, 1<<20)
	lying = binary.AppendUvarint(lying, 1<<20)
	seeds = append(seeds, append(lying, c.Encode(bytes.Repeat([]byte{9, 255}, 4))...))
	return seeds
}

// fuzzRoundTrip is the shared property: the codec must reproduce any pixel
// block exactly, and its decoder must reject arbitrary malformed streams
// with ErrCorrupt rather than panicking or fabricating pixels.
func fuzzRoundTrip(f *testing.F, c Codec, canonical bool) {
	for _, seed := range templateSeeds() {
		f.Add(seed)
	}
	for _, seed := range replicaFrameSeeds(c) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{7, 255}, 64)) // all-opaque run
	f.Add(bytes.Repeat([]byte{0, 0}, 64))   // all-blank run
	f.Add([]byte{1, 2, 3})                  // odd length: exercises the decoder path
	f.Add([]byte{0, 255, 255, 0, 128, 1})   // mixed alpha
	f.Fuzz(func(t *testing.T, data []byte) {
		// Interpret the input as a pixel block (whole pixels only).
		npix := len(data) / raster.BytesPerPixel
		pix := data[:npix*raster.BytesPerPixel]
		if canonical {
			pix = canonicalize(pix)
		}
		enc := c.Encode(pix)
		dec, err := c.Decode(enc, npix)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(dec, pix) {
			t.Fatalf("roundtrip mismatch: pix=%v enc=%v dec=%v", pix, enc, dec)
		}

		// Interpret the same input as a hostile encoded stream: Decode may
		// reject it (any error is fine) but must never panic, and an
		// accepted stream must decode to exactly the promised pixel count.
		for _, claim := range []int{0, 1, npix, npix + 3, 1024} {
			out, err := c.Decode(data, claim)
			if err == nil && len(out) != claim*raster.BytesPerPixel {
				t.Fatalf("decoder accepted a stream but returned %d bytes for %d pixels", len(out), claim)
			}
		}
	})
}

func FuzzTRLERoundTrip(f *testing.F) { fuzzRoundTrip(f, TRLE{}, true) }

func FuzzRLERoundTrip(f *testing.F) { fuzzRoundTrip(f, RLE{}, false) }

func FuzzRawRoundTrip(f *testing.F) { fuzzRoundTrip(f, Raw{}, false) }

func FuzzMaskRLERoundTrip(f *testing.F) {
	f.Add([]byte{0x00}, true)
	f.Add([]byte{0xFF, 0x0F}, false)
	f.Fuzz(func(t *testing.T, data []byte, first bool) {
		// Treat the fuzz bytes as a bit-mask and roundtrip it.
		mask := make([]bool, len(data)*8)
		for i := range mask {
			mask[i] = data[i/8]&(1<<(i%8)) != 0
		}
		runs, f0 := EncodeMaskRLE(mask)
		got := DecodeMaskRLE(runs, f0)
		if len(mask) == 0 {
			if len(got) != 0 {
				t.Fatalf("empty mask decoded to %d elements", len(got))
			}
			return
		}
		if len(got) != len(mask) {
			t.Fatalf("mask roundtrip length %d, want %d", len(got), len(mask))
		}
		for i := range mask {
			if got[i] != mask[i] {
				t.Fatalf("mask roundtrip differs at %d", i)
			}
		}
		// Arbitrary run bytes must decode without panicking whatever they
		// claim (the caller validates the length).
		_ = DecodeMaskRLE(data, first)
	})
}
