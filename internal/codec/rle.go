package codec

import (
	"fmt"

	"rtcomp/internal/raster"
)

// RLE is classic run-length encoding adapted to value+alpha pixels: a run of
// up to 255 identical (value, alpha) pairs is stored as the three bytes
// [count, value, alpha]. On gray images whose values vary pixel to pixel it
// compresses little beyond blank runs — the weakness of plain RLE the paper
// points out — but blank regions collapse 170:1.
type RLE struct{}

// Name implements Codec.
func (RLE) Name() string { return "rle" }

// Encode implements Codec.
func (RLE) Encode(pix []uint8) []uint8 {
	return RLE{}.EncodeAppend(make([]uint8, 0, len(pix)/4+8), pix)
}

// Decode implements Codec.
func (RLE) Decode(enc []uint8, npix int) ([]uint8, error) {
	return RLE{}.DecodeInto(nil, enc, npix)
}

// EncodeAppend implements Codec.
func (RLE) EncodeAppend(dst, pix []uint8) []uint8 {
	if len(pix)%raster.BytesPerPixel != 0 {
		panic("codec: RLE.Encode on odd-length pixel block")
	}
	n := len(pix) / raster.BytesPerPixel
	for i := 0; i < n; {
		v, a := pix[2*i], pix[2*i+1]
		run := 1
		for i+run < n && run < 255 && pix[2*(i+run)] == v && pix[2*(i+run)+1] == a {
			run++
		}
		dst = append(dst, uint8(run), v, a)
		i += run
	}
	return dst
}

// DecodeInto implements Codec.
func (RLE) DecodeInto(dst, enc []uint8, npix int) ([]uint8, error) {
	if len(enc)%3 != 0 {
		return nil, fmt.Errorf("%w: RLE stream length %d not a multiple of 3", ErrCorrupt, len(enc))
	}
	want := npix * raster.BytesPerPixel
	out := grow(dst, want)
	w := 0
	for i := 0; i < len(enc); i += 3 {
		run, v, a := int(enc[i]), enc[i+1], enc[i+2]
		if run == 0 {
			return nil, fmt.Errorf("%w: RLE zero-length run", ErrCorrupt)
		}
		if w+run*raster.BytesPerPixel > want {
			return nil, fmt.Errorf("%w: RLE decoded more than %d pixels", ErrCorrupt, npix)
		}
		for j := 0; j < run; j++ {
			out[w], out[w+1] = v, a
			w += 2
		}
	}
	if w != want {
		return nil, fmt.Errorf("%w: RLE decoded %d pixels, want %d", ErrCorrupt, w/raster.BytesPerPixel, npix)
	}
	return out, nil
}

// EncodeMaskRLE run-length encodes a binary mask as in the paper's Figure 4:
// one byte per run (runs capped at 255), colors alternating from the first
// element. It returns the run bytes and the color of the first run.
func EncodeMaskRLE(mask []bool) (runs []uint8, first bool) {
	if len(mask) == 0 {
		return nil, false
	}
	first = mask[0]
	cur := mask[0]
	run := 0
	for _, b := range mask {
		if b == cur {
			if run == 255 {
				// Cap reached: emit the run plus a zero-length run of the
				// opposite color so decode's alternation stays in sync.
				runs = append(runs, 255, 0)
				run = 0
			}
			run++
			continue
		}
		runs = append(runs, uint8(run))
		cur, run = b, 1
	}
	runs = append(runs, uint8(run))
	return runs, first
}

// DecodeMaskRLE inverts EncodeMaskRLE.
func DecodeMaskRLE(runs []uint8, first bool) []bool {
	var out []bool
	cur := first
	for _, r := range runs {
		for j := uint8(0); j < r; j++ {
			out = append(out, cur)
		}
		cur = !cur
	}
	return out
}
