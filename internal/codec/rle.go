package codec

import (
	"encoding/binary"
	"fmt"

	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
)

// RLE is classic run-length encoding adapted to value+alpha pixels: a run of
// up to 255 identical (value, alpha) pairs is stored as the three bytes
// [count, value, alpha]. On gray images whose values vary pixel to pixel it
// compresses little beyond blank runs — the weakness of plain RLE the paper
// points out — but blank regions collapse 170:1.
type RLE struct{}

// Name implements Codec.
func (RLE) Name() string { return "rle" }

// Encode implements Codec.
func (RLE) Encode(pix []uint8) []uint8 {
	return RLE{}.EncodeAppend(make([]uint8, 0, len(pix)/4+8), pix)
}

// Decode implements Codec.
func (RLE) Decode(enc []uint8, npix int) ([]uint8, error) {
	return RLE{}.DecodeInto(nil, enc, npix)
}

// EncodeAppend implements Codec. Two word-wide paths split RLE's workload
// by regime. Literal stretches — where no two adjacent pixels match, the
// shape of dense varying images — are detected four pairs at a time (two
// overlapping loads, one XOR, a zero-lane test) and emitted as a batched
// append of four single-pixel runs, so the broadcast-and-compare machinery
// of pixelRunLen only ever runs on pixels already known to start a run of
// two or more. Output is byte-identical to a per-pixel greedy scan (runs
// are maximal, capped at 255).
func (RLE) EncodeAppend(dst, pix []uint8) []uint8 {
	if len(pix)%raster.BytesPerPixel != 0 {
		panic("codec: RLE.Encode on odd-length pixel block")
	}
	n := len(pix) / raster.BytesPerPixel
	for i := 0; i < n; {
		// Literal fast path: lane k of w0^w1 is zero exactly when pixel
		// i+k equals pixel i+k+1, so a word with no zero lane proves the
		// next four pixels are each a maximal run of one.
		for i+5 <= n {
			w0 := binary.LittleEndian.Uint64(pix[2*i:])
			w1 := binary.LittleEndian.Uint64(pix[2*i+2:])
			if hasZeroLane16(w0 ^ w1) {
				break
			}
			dst = append(dst,
				1, uint8(w0), uint8(w0>>8),
				1, uint8(w0>>16), uint8(w0>>24),
				1, uint8(w0>>32), uint8(w0>>40),
				1, uint8(w0>>48), uint8(w0>>56))
			i += 4
		}
		if i >= n {
			break
		}
		if i+1 < n && (pix[2*i] != pix[2*i+2] || pix[2*i+1] != pix[2*i+3]) {
			dst = append(dst, 1, pix[2*i], pix[2*i+1])
			i++
			continue
		}
		limit := i + 255
		if limit > n {
			limit = n
		}
		run := pixelRunLen(pix, i, limit)
		dst = append(dst, uint8(run), pix[2*i], pix[2*i+1])
		i += run
	}
	return dst
}

// DecodeInto implements Codec. Runs are filled eight bytes per store. Both
// overflow (more than npix pixels) and underflow (a short stream producing
// fewer than npix pixels) are rejected with ErrCorrupt: a block message
// must decode to exactly the block's pixel count.
func (RLE) DecodeInto(dst, enc []uint8, npix int) ([]uint8, error) {
	if len(enc)%3 != 0 {
		return nil, fmt.Errorf("%w: RLE stream length %d not a multiple of 3", ErrCorrupt, len(enc))
	}
	want := npix * raster.BytesPerPixel
	out := grow(dst, want)
	w := 0
	for i := 0; i < len(enc); i += 3 {
		run, v, a := int(enc[i]), enc[i+1], enc[i+2]
		if run == 0 {
			return nil, fmt.Errorf("%w: RLE zero-length run", ErrCorrupt)
		}
		if w+run*raster.BytesPerPixel > want {
			return nil, fmt.Errorf("%w: RLE decoded more than %d pixels", ErrCorrupt, npix)
		}
		fillPixelRun(out[w:w+run*raster.BytesPerPixel], v, a)
		w += run * raster.BytesPerPixel
	}
	if w != want {
		return nil, fmt.Errorf("%w: RLE decoded %d pixels, want %d", ErrCorrupt, w/raster.BytesPerPixel, npix)
	}
	return out, nil
}

// CheckStream implements OverDecoder: it validates enc as an RLE stream of
// exactly npix pixels without producing them, applying every check
// DecodeInto does (stream framing, zero runs, overflow, underflow).
func (RLE) CheckStream(enc []uint8, npix int) error {
	if len(enc)%3 != 0 {
		return fmt.Errorf("%w: RLE stream length %d not a multiple of 3", ErrCorrupt, len(enc))
	}
	w := 0
	i := 0
	for i < len(enc) {
		// Singles fast path: a run byte of 1 under the pixel budget needs
		// no zero-run or overflow check of its own. One word load checks
		// the run bytes of three consecutive triples at once.
		for i+9 <= len(enc) && w+3 <= npix &&
			binary.LittleEndian.Uint64(enc[i:])&rleRunLanes == rleRunOnes {
			w += 3
			i += 9
		}
		for i < len(enc) && enc[i] == 1 && w < npix {
			w++
			i += 3
		}
		if i >= len(enc) {
			break
		}
		run := int(enc[i])
		i += 3
		if run == 0 {
			return fmt.Errorf("%w: RLE zero-length run", ErrCorrupt)
		}
		w += run
		if w > npix {
			return fmt.Errorf("%w: RLE decoded more than %d pixels", ErrCorrupt, npix)
		}
	}
	if w != npix {
		return fmt.Errorf("%w: RLE decoded %d pixels, want %d", ErrCorrupt, w, npix)
	}
	return nil
}

// rleLongRun is the run length from which DecodeOver hands a run to the
// word-wide constant-run kernel. Below it the per-call overhead of
// OverU8Runs outweighs its word classification, so short runs — the regime
// of dense varying images, where nearly every run is a single pixel —
// composite in a scalar loop written out in place (compose.OverBlend
// inlines; compose.OverPixel does not, and a call per pixel is exactly the
// cost this path exists to avoid).
const rleLongRun = 16

// rleRunLanes selects the run-count bytes of three consecutive [count,v,a]
// triples viewed as one little-endian word (bytes 0, 3 and 6); rleRunOnes
// is what that mask reads when all three runs have length one. One masked
// compare therefore certifies three singles at a time.
const (
	rleRunLanes = uint64(0x00FF0000FF0000FF)
	rleRunOnes  = uint64(0x0001000001000001)
)

// DecodeOver implements OverDecoder: it composites the encoded block with
// dst in place without materializing the decoded block. Short runs blend
// directly against dst pixel by pixel; long runs go through the run-oriented
// kernel, whose blank and opaque short-circuits never touch the covered
// pixels at all. When encFront is true the encoded block is the front layer
// (decoded over dst); otherwise dst is the front. dst must hold exactly
// npix pixels. Streams must pass CheckStream first; DecodeOver re-validates
// and returns ErrCorrupt on a mangled stream, but may then have partially
// updated dst. It returns the number of pixels passed through the over
// operator (npix on success) — the same count the decode-then-OverU8 path
// reports.
func (RLE) DecodeOver(dst, enc []uint8, npix int, encFront bool) (int, error) {
	if len(dst) != npix*raster.BytesPerPixel {
		panic("codec: RLE.DecodeOver dst length mismatch")
	}
	if len(enc)%3 != 0 {
		return 0, fmt.Errorf("%w: RLE stream length %d not a multiple of 3", ErrCorrupt, len(enc))
	}
	var single [1]compose.Run
	w, pixels := 0, 0
	i := 0
	for i < len(enc) {
		// Singles fast path: dense varying data arrives as long stretches
		// of [1,v,a] triples, and on them the general path's per-run
		// dispatch (run classification, segment arithmetic, inner-loop
		// setup) costs more than the blend itself. This loop strips a
		// single down to load, switch, blend.
		if enc[i] == 1 && w < npix {
			start := w
			if encFront {
				for i+9 <= len(enc) && w+3 <= npix {
					// The fixed-size reslices collapse the per-pixel bounds
					// checks into one per three-triple step.
					e := enc[i : i+9 : i+9]
					x := binary.LittleEndian.Uint64(e)
					if x&rleRunLanes != rleRunOnes {
						break
					}
					k := w * raster.BytesPerPixel
					d := dst[k : k+6 : k+6]
					if a := uint8(x >> 16); a == 255 {
						d[0], d[1] = uint8(x>>8), a
					} else if a != 0 {
						d[0], d[1] = compose.OverBlend(uint8(x>>8), a, d[0], d[1])
					}
					if a := uint8(x >> 40); a == 255 {
						d[2], d[3] = uint8(x>>32), a
					} else if a != 0 {
						d[2], d[3] = compose.OverBlend(uint8(x>>32), a, d[2], d[3])
					}
					if a := e[8]; a == 255 {
						d[4], d[5] = uint8(x>>56), a
					} else if a != 0 {
						d[4], d[5] = compose.OverBlend(uint8(x>>56), a, d[4], d[5])
					}
					w += 3
					i += 9
				}
				for i+3 <= len(enc) && enc[i] == 1 && w < npix {
					k := w * raster.BytesPerPixel
					v, a := enc[i+1], enc[i+2]
					switch a {
					case 0:
					case 255:
						dst[k], dst[k+1] = v, a
					default:
						dst[k], dst[k+1] = compose.OverBlend(v, a, dst[k], dst[k+1])
					}
					w++
					i += 3
				}
			} else {
				for i+9 <= len(enc) && w+3 <= npix {
					e := enc[i : i+9 : i+9]
					x := binary.LittleEndian.Uint64(e)
					if x&rleRunLanes != rleRunOnes {
						break
					}
					k := w * raster.BytesPerPixel
					d := dst[k : k+6 : k+6]
					switch fa := d[1]; fa {
					case 255:
					case 0:
						d[0], d[1] = uint8(x>>8), uint8(x>>16)
					default:
						d[0], d[1] = compose.OverBlend(d[0], fa, uint8(x>>8), uint8(x>>16))
					}
					switch fa := d[3]; fa {
					case 255:
					case 0:
						d[2], d[3] = uint8(x>>32), uint8(x>>40)
					default:
						d[2], d[3] = compose.OverBlend(d[2], fa, uint8(x>>32), uint8(x>>40))
					}
					switch fa := d[5]; fa {
					case 255:
					case 0:
						d[4], d[5] = uint8(x>>56), e[8]
					default:
						d[4], d[5] = compose.OverBlend(d[4], fa, uint8(x>>56), e[8])
					}
					w += 3
					i += 9
				}
				for i+3 <= len(enc) && enc[i] == 1 && w < npix {
					k := w * raster.BytesPerPixel
					switch fa := dst[k+1]; fa {
					case 255:
					case 0:
						dst[k], dst[k+1] = enc[i+1], enc[i+2]
					default:
						dst[k], dst[k+1] = compose.OverBlend(dst[k], fa, enc[i+1], enc[i+2])
					}
					w++
					i += 3
				}
			}
			pixels += w - start
			continue
		}
		run, v, a := int(enc[i]), enc[i+1], enc[i+2]
		i += 3
		if run == 0 {
			return pixels, fmt.Errorf("%w: RLE zero-length run", ErrCorrupt)
		}
		if w+run > npix {
			return pixels, fmt.Errorf("%w: RLE decoded more than %d pixels", ErrCorrupt, npix)
		}
		if run >= rleLongRun {
			single[0] = compose.Run{Off: w, N: run, V: v, A: a}
			pixels += compose.OverU8Runs(dst, single[:], encFront)
			w += run
			continue
		}
		lo, hi := w*raster.BytesPerPixel, (w+run)*raster.BytesPerPixel
		if encFront {
			switch a {
			case 0:
				// Blank front run: dst wins untouched.
			case 255:
				for k := lo; k < hi; k += raster.BytesPerPixel {
					dst[k], dst[k+1] = v, a
				}
			default:
				for k := lo; k < hi; k += raster.BytesPerPixel {
					dst[k], dst[k+1] = compose.OverBlend(v, a, dst[k], dst[k+1])
				}
			}
		} else {
			for k := lo; k < hi; k += raster.BytesPerPixel {
				switch fa := dst[k+1]; fa {
				case 255:
				case 0:
					// Blank front passes the decoded back pixel through
					// verbatim, even a non-canonical one — same as OverU8.
					dst[k], dst[k+1] = v, a
				default:
					dst[k], dst[k+1] = compose.OverBlend(dst[k], fa, v, a)
				}
			}
		}
		pixels += run
		w += run
	}
	if w != npix {
		return pixels, fmt.Errorf("%w: RLE decoded %d pixels, want %d", ErrCorrupt, w, npix)
	}
	return pixels, nil
}

// EncodeMaskRLE run-length encodes a binary mask as in the paper's Figure 4:
// one byte per run (runs capped at 255), colors alternating from the first
// element. It returns the run bytes and the color of the first run.
func EncodeMaskRLE(mask []bool) (runs []uint8, first bool) {
	if len(mask) == 0 {
		return nil, false
	}
	first = mask[0]
	cur := mask[0]
	run := 0
	for _, b := range mask {
		if b == cur {
			if run == 255 {
				// Cap reached: emit the run plus a zero-length run of the
				// opposite color so decode's alternation stays in sync.
				runs = append(runs, 255, 0)
				run = 0
			}
			run++
			continue
		}
		runs = append(runs, uint8(run))
		cur, run = b, 1
	}
	runs = append(runs, uint8(run))
	return runs, first
}

// DecodeMaskRLE inverts EncodeMaskRLE.
func DecodeMaskRLE(runs []uint8, first bool) []bool {
	var out []bool
	cur := first
	for _, r := range runs {
		for j := uint8(0); j < r; j++ {
			out = append(out, cur)
		}
		cur = !cur
	}
	return out
}
