package codec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"rtcomp/internal/raster"
)

func roundTrip(t *testing.T, c Codec, im *raster.Image) {
	t.Helper()
	enc := c.Encode(im.Pix)
	dec, err := c.Decode(enc, im.NPixels())
	if err != nil {
		t.Fatalf("%s: decode error: %v", c.Name(), err)
	}
	if !bytes.Equal(dec, im.Pix) {
		t.Fatalf("%s: round trip mismatch", c.Name())
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	images := []*raster.Image{
		raster.New(16, 16),                        // all blank
		raster.RandomImage(rng, 16, 16, 0.0),      // dense
		raster.RandomImage(rng, 16, 16, 0.5),      // half blank
		raster.RandomImage(rng, 16, 16, 0.95),     // sparse
		raster.PartialImage(rng, 64, 64, 2, 8),    // realistic partial
		raster.RandomImage(rng, 1, 1, 0.5),        // single pixel
		raster.RandomImage(rng, 7, 3, 0.3),        // not a multiple of 4 pixels
		raster.RandomBinaryImage(rng, 33, 9, 0.7), // odd size, binary alpha
	}
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, im := range images {
			roundTrip(t, c, im)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	for _, name := range []string{"rle", "trle"} {
		c, _ := ByName(name)
		f := func(raw []uint8, blankEvery uint8) bool {
			if len(raw)%2 == 1 {
				raw = raw[:len(raw)-1]
			}
			// Punch blank holes so the codecs exercise both paths.
			for i := 1; i < len(raw); i += 2 {
				if blankEvery > 0 && uint8(i)%blankEvery == 0 {
					raw[i] = 0
				}
				if raw[i] == 0 {
					raw[i-1] = 0 // blank pixels are canonically (0,0)
				}
			}
			enc := c.Encode(raw)
			dec, err := c.Decode(enc, len(raw)/2)
			return err == nil && bytes.Equal(dec, raw)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TRLE requires blank pixels to be canonical (0,0): alpha 0 pixels lose
// their value channel. This documents that contract.
func TestTRLEDropsBlankValues(t *testing.T) {
	pix := []uint8{42, 0, 7, 255} // blank pixel with a stale value, then opaque
	var c TRLE
	dec, err := c.Decode(c.Encode(pix), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{0, 0, 7, 255}
	if !bytes.Equal(dec, want) {
		t.Fatalf("got %v, want %v", dec, want)
	}
}

func TestDecodeErrors(t *testing.T) {
	var trle TRLE
	if _, err := trle.Decode(nil, 4); err == nil {
		t.Fatal("TRLE empty stream: want error")
	}
	// Codes claiming fewer pixels than npix.
	enc := trle.Encode([]uint8{1, 1, 2, 2, 3, 3, 4, 4}) // 4 pixels
	if _, err := trle.Decode(enc, 8); err == nil {
		t.Fatal("TRLE short codes: want error")
	}
	// Truncated payload.
	if _, err := trle.Decode(enc[:len(enc)-1], 4); err == nil {
		t.Fatal("TRLE truncated payload: want error")
	}
	var rle RLE
	if _, err := rle.Decode([]uint8{1, 2}, 1); err == nil {
		t.Fatal("RLE ragged stream: want error")
	}
	if _, err := rle.Decode([]uint8{0, 2, 3}, 1); err == nil {
		t.Fatal("RLE zero run: want error")
	}
	if _, err := rle.Decode([]uint8{2, 5, 5}, 1); err == nil {
		t.Fatal("RLE overlong: want error")
	}
	var raw Raw
	if _, err := raw.Decode([]uint8{1}, 1); err == nil {
		t.Fatal("raw size mismatch: want error")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("zip"); err == nil {
		t.Fatal("want error for unknown codec")
	}
	c, err := ByName("")
	if err != nil || c.Name() != "raw" {
		t.Fatalf("empty name should alias raw, got %v, %v", c, err)
	}
}

// The sparser the image, the better TRLE must do; and on sparse gray images
// TRLE must beat RLE (the paper's motivating claim).
func TestTRLEBeatsRLEOnSparseGray(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	im := raster.PartialImage(rng, 256, 256, 3, 8)
	raw := len(im.Pix)
	rle := len(RLE{}.Encode(im.Pix))
	trle := len(TRLE{}.Encode(im.Pix))
	if trle >= rle {
		t.Fatalf("TRLE (%d bytes) not better than RLE (%d bytes) on sparse gray image", trle, rle)
	}
	if rle >= raw {
		t.Fatalf("RLE (%d bytes) not better than raw (%d)", rle, raw)
	}
}

func TestCompressionMonotoneInBlankness(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	prev := -1
	for _, blank := range []float64{0.2, 0.5, 0.8, 0.95} {
		im := raster.RandomImage(rng, 128, 128, blank)
		n := len(TRLE{}.Encode(im.Pix))
		if prev >= 0 && n >= prev {
			t.Fatalf("TRLE size did not shrink with blankness: %d -> %d at blank=%v", prev, n, blank)
		}
		prev = n
	}
}

// --- Figure 3 / Figure 4 reproductions -------------------------------------

func TestTemplateTable(t *testing.T) {
	tab := TemplateTable()
	if tab[0] != [2][2]bool{} {
		t.Fatal("template 0 must be all blank")
	}
	if tab[15] != [2][2]bool{{true, true}, {true, true}} {
		t.Fatal("template 15 must be all set")
	}
	if tab[8] != [2][2]bool{{true, false}, {false, false}} {
		t.Fatal("template 8 must be top-left only")
	}
	// All 16 distinct.
	seen := map[[2][2]bool]bool{}
	for _, g := range tab {
		if seen[g] {
			t.Fatal("duplicate template")
		}
		seen[g] = true
	}
}

// figure4Mask builds the two 12-pixel scanlines of Figure 4, reconstructed
// from the RLE codes the paper lists for them: 1,2,1,1,1,3,1,1,1 and
// 1,2,1,1,1,2,2,1,1 with the first run blank.
func figure4Mask() *Mask {
	rows := [2][]uint8{
		{1, 2, 1, 1, 1, 3, 1, 1, 1},
		{1, 2, 1, 1, 1, 2, 2, 1, 1},
	}
	m := NewMask(12, 2)
	for y, runs := range rows {
		x := 0
		set := false // first run is blank
		for _, r := range runs {
			for j := uint8(0); j < r; j++ {
				m.Set(x, y, set)
				x++
			}
			set = !set
		}
	}
	return m
}

// TestFigure4Ratio reproduces the paper's Figure 4 example exactly: the RLE
// encoding takes 18 bytes, the TRLE encoding the five bytes 5 26 15 8 10,
// so the compression ratio is 18:5.
func TestFigure4Ratio(t *testing.T) {
	m := figure4Mask()
	rleTotal := 0
	for y := 0; y < 2; y++ {
		row := make([]bool, 12)
		copy(row, m.Bits[y*12:(y+1)*12])
		runs, first := EncodeMaskRLE(row)
		if first {
			t.Fatal("figure 4 scanlines start blank")
		}
		rleTotal += len(runs)
	}
	if rleTotal != 18 {
		t.Fatalf("RLE total = %d bytes, paper says 18", rleTotal)
	}
	codes := EncodeMaskTRLE(m)
	want := []uint8{5, 26, 15, 8, 10}
	if !bytes.Equal(codes, want) {
		t.Fatalf("TRLE codes = %v, paper says %v", codes, want)
	}
	if Ratio(rleTotal, len(codes)) != 18.0/5.0 {
		t.Fatalf("ratio = %v, want 18:5", Ratio(rleTotal, len(codes)))
	}
}

func TestMaskTRLERoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, dim := range [][2]int{{12, 2}, {13, 5}, {1, 1}, {64, 64}, {3, 8}} {
		m := NewMask(dim[0], dim[1])
		for i := range m.Bits {
			m.Bits[i] = rng.Intn(3) == 0
		}
		codes := EncodeMaskTRLE(m)
		got, err := DecodeMaskTRLE(codes, dim[0], dim[1])
		if err != nil {
			t.Fatalf("%v: %v", dim, err)
		}
		for i := range m.Bits {
			if got.Bits[i] != m.Bits[i] {
				t.Fatalf("%v: bit %d differs", dim, i)
			}
		}
	}
}

func TestMaskRLERoundTripProperty(t *testing.T) {
	f := func(bits []bool) bool {
		runs, first := EncodeMaskRLE(bits)
		got := DecodeMaskRLE(runs, first)
		if len(bits) == 0 {
			return len(got) == 0
		}
		if len(got) != len(bits) {
			return false
		}
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskRLELongRun(t *testing.T) {
	bits := make([]bool, 1000) // one run of 1000 blanks, needs cap handling
	runs, first := EncodeMaskRLE(bits)
	got := DecodeMaskRLE(runs, first)
	if len(got) != 1000 {
		t.Fatalf("decoded %d bits, want 1000", len(got))
	}
	for i, b := range got {
		if b {
			t.Fatalf("bit %d flipped", i)
		}
	}
}

func TestMaskTRLECorruptStreams(t *testing.T) {
	if _, err := DecodeMaskTRLE([]uint8{0x00}, 8, 8); err == nil {
		t.Fatal("short code stream: want error")
	}
	long := make([]uint8, 64)
	if _, err := DecodeMaskTRLE(long, 2, 2); err == nil {
		t.Fatal("overlong code stream: want error")
	}
}

func BenchmarkTRLEEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	im := raster.PartialImage(rng, 512, 512, 3, 8)
	b.SetBytes(int64(len(im.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TRLE{}.Encode(im.Pix)
	}
}

func BenchmarkRLEEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	im := raster.PartialImage(rng, 512, 512, 3, 8)
	b.SetBytes(int64(len(im.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RLE{}.Encode(im.Pix)
	}
}

func BenchmarkTRLEDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	im := raster.PartialImage(rng, 512, 512, 3, 8)
	enc := TRLE{}.Encode(im.Pix)
	b.SetBytes(int64(len(im.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (TRLE{}).Decode(enc, im.NPixels()); err != nil {
			b.Fatal(err)
		}
	}
}

// Decoders must reject or cleanly decode arbitrary garbage, never panic.
func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	codecs := []Codec{Raw{}, RLE{}, TRLE{}, BSpan{}}
	f := func(garbage []uint8, npix uint16) bool {
		n := int(npix) % 4096
		for _, c := range codecs {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s: panic on garbage: %v", c.Name(), r)
					}
				}()
				dec, err := c.Decode(garbage, n)
				if err == nil && len(dec) != n*2 {
					t.Errorf("%s: accepted garbage but returned %d bytes for %d pixels",
						c.Name(), len(dec), n)
				}
			}()
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Encoders never produce something their decoder rejects, for any input —
// including non-canonical blanks for RLE/raw (TRLE and BSpan canonicalise).
func TestEncodeDecodeTotality(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw)%2 == 1 {
			raw = raw[:len(raw)-1]
		}
		for _, c := range []Codec{Raw{}, RLE{}} {
			dec, err := c.Decode(c.Encode(raw), len(raw)/2)
			if err != nil || !bytes.Equal(dec, raw) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
