package codec

import (
	"fmt"

	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
)

// OverDecoder is the fused receive-path contract: a codec that can
// composite an encoded block directly with a resident pixel block, so a
// received fragment is decoded and merged in one pass without ever
// materializing the decoded pixels in a scratch buffer. Per-pixel results
// are byte-identical to DecodeInto followed by compose.OverU8 — the fused
// kernels share compose's per-pixel operator — and the returned over-pixel
// counts match too, so compositing telemetry is unchanged by fusion.
//
// The two calls split validation from mutation: CheckStream applies every
// stream-integrity check DecodeInto would (framing, truncation, underflow,
// overflow, blank payload pixels) without touching any pixels, so a caller
// holding resident state can pre-validate a whole message and keep corrupt
// payloads transactional — DecodeOver after a failed CheckStream is a
// caller bug, and DecodeOver's own (redundant) error returns may leave dst
// partially composited.
type OverDecoder interface {
	Codec
	// CheckStream validates enc as an encoding of exactly npix pixels.
	CheckStream(enc []uint8, npix int) error
	// DecodeOver composites the encoded block with dst in place: with
	// encFront true the decoded pixels act as the front layer (decoded over
	// dst), otherwise dst is the front (dst over decoded). dst must hold
	// exactly npix pixels. Returns the number of pixels passed through the
	// over operator: npix on success.
	DecodeOver(dst, enc []uint8, npix int, encFront bool) (int, error)
}

// Statically require the wire codecs to support the fused path.
var (
	_ OverDecoder = Raw{}
	_ OverDecoder = RLE{}
	_ OverDecoder = TRLE{}
)

// CheckStream implements OverDecoder: a raw block is valid exactly when its
// length matches the pixel count.
func (Raw) CheckStream(enc []uint8, npix int) error {
	if len(enc) != npix*raster.BytesPerPixel {
		return fmt.Errorf("%w: raw block has %d bytes, want %d", ErrCorrupt, len(enc), npix*raster.BytesPerPixel)
	}
	return nil
}

// DecodeOver implements OverDecoder: the raw payload feeds the word-wide
// over kernel directly, skipping the staging copy DecodeInto would make.
func (Raw) DecodeOver(dst, enc []uint8, npix int, encFront bool) (int, error) {
	if len(dst) != npix*raster.BytesPerPixel {
		panic("codec: Raw.DecodeOver dst length mismatch")
	}
	if err := (Raw{}).CheckStream(enc, npix); err != nil {
		return 0, err
	}
	if encFront {
		return compose.OverU8(dst, enc, dst), nil
	}
	return compose.OverU8(dst, dst, enc), nil
}
