package codec

// The scalar reference implementations the word-wide kernels replaced,
// preserved verbatim as the differential oracle: differential_test.go and
// the *Differential fuzz targets prove the rewritten encoders produce
// byte-identical streams and the rewritten decoders byte-identical pixels.

import (
	"encoding/binary"
	"fmt"

	"rtcomp/internal/raster"
)

// refRLEEncodeAppend is the per-pixel greedy RLE encoder.
func refRLEEncodeAppend(dst, pix []uint8) []uint8 {
	if len(pix)%raster.BytesPerPixel != 0 {
		panic("codec: RLE.Encode on odd-length pixel block")
	}
	n := len(pix) / raster.BytesPerPixel
	for i := 0; i < n; {
		v, a := pix[2*i], pix[2*i+1]
		run := 1
		for i+run < n && run < 255 && pix[2*(i+run)] == v && pix[2*(i+run)+1] == a {
			run++
		}
		dst = append(dst, uint8(run), v, a)
		i += run
	}
	return dst
}

// refRLEDecodeInto is the per-pixel RLE decoder.
func refRLEDecodeInto(dst, enc []uint8, npix int) ([]uint8, error) {
	if len(enc)%3 != 0 {
		return nil, fmt.Errorf("%w: RLE stream length %d not a multiple of 3", ErrCorrupt, len(enc))
	}
	want := npix * raster.BytesPerPixel
	out := grow(dst, want)
	w := 0
	for i := 0; i < len(enc); i += 3 {
		run, v, a := int(enc[i]), enc[i+1], enc[i+2]
		if run == 0 {
			return nil, fmt.Errorf("%w: RLE zero-length run", ErrCorrupt)
		}
		if w+run*raster.BytesPerPixel > want {
			return nil, fmt.Errorf("%w: RLE decoded more than %d pixels", ErrCorrupt, npix)
		}
		for j := 0; j < run; j++ {
			out[w], out[w+1] = v, a
			w += 2
		}
	}
	if w != want {
		return nil, fmt.Errorf("%w: RLE decoded %d pixels, want %d", ErrCorrupt, w/raster.BytesPerPixel, npix)
	}
	return out, nil
}

// refTRLEEncodeAppend is the closure-based two-pass TRLE encoder.
func refTRLEEncodeAppend(dst, pix []uint8) []uint8 {
	if len(pix)%raster.BytesPerPixel != 0 {
		panic("codec: TRLE.Encode on odd-length pixel block")
	}
	n := len(pix) / raster.BytesPerPixel
	groups := (n + templatePixels - 1) / templatePixels

	tplAt := func(g int) uint8 {
		var tpl uint8
		for j := 0; j < templatePixels; j++ {
			i := g*templatePixels + j
			if i < n && pix[2*i+1] != 0 {
				tpl |= 1 << (templatePixels - 1 - j)
			}
		}
		return tpl
	}
	runAt := func(g int) (tpl uint8, run int) {
		tpl = tplAt(g)
		run = 1
		for g+run < groups && run < 16 && tplAt(g+run) == tpl {
			run++
		}
		return tpl, run
	}

	ncodes := 0
	for g := 0; g < groups; {
		_, run := runAt(g)
		ncodes++
		g += run
	}
	dst = binary.AppendUvarint(dst, uint64(ncodes))
	for g := 0; g < groups; {
		tpl, run := runAt(g)
		dst = append(dst, uint8(run-1)<<4|tpl)
		g += run
	}
	for i := 0; i < n; i++ {
		if pix[2*i+1] != 0 {
			dst = append(dst, pix[2*i], pix[2*i+1])
		}
	}
	return dst
}

// refTRLEDecodeInto is the per-pixel TRLE decoder.
func refTRLEDecodeInto(dst, enc []uint8, npix int) ([]uint8, error) {
	ncodes, hn := binary.Uvarint(enc)
	if hn <= 0 {
		return nil, fmt.Errorf("%w: TRLE header", ErrCorrupt)
	}
	if uint64(len(enc)-hn) < ncodes {
		return nil, fmt.Errorf("%w: TRLE stream truncated", ErrCorrupt)
	}
	codes := enc[hn : hn+int(ncodes)]
	payload := enc[hn+int(ncodes):]

	out := grow(dst, npix*raster.BytesPerPixel)
	clear(out)
	i := 0
	p := 0
	for _, c := range codes {
		tpl := c & 0x0F
		reps := int(c>>4) + 1
		for rep := 0; rep < reps; rep++ {
			for j := 0; j < templatePixels; j++ {
				set := tpl&(1<<(templatePixels-1-j)) != 0
				if i >= npix {
					if set {
						return nil, fmt.Errorf("%w: TRLE non-blank pixel beyond block", ErrCorrupt)
					}
					continue
				}
				if set {
					if p+2 > len(payload) {
						return nil, fmt.Errorf("%w: TRLE payload truncated", ErrCorrupt)
					}
					out[2*i], out[2*i+1] = payload[p], payload[p+1]
					if out[2*i+1] == 0 {
						return nil, fmt.Errorf("%w: TRLE blank pixel in payload", ErrCorrupt)
					}
					p += 2
				}
				i++
			}
		}
	}
	if i < npix {
		return nil, fmt.Errorf("%w: TRLE codes cover %d pixels, want %d", ErrCorrupt, i, npix)
	}
	if p != len(payload) {
		return nil, fmt.Errorf("%w: TRLE payload has %d leftover bytes", ErrCorrupt, len(payload)-p)
	}
	return out, nil
}

// refEncodeMaskTRLE is the At-based 2x2 mask encoder.
func refEncodeMaskTRLE(m *Mask) []uint8 {
	var templates []uint8
	for y := 0; y < m.H; y += 2 {
		for x := 0; x < m.W; x += 2 {
			templates = append(templates, m.Template(x, y))
		}
	}
	var codes []uint8
	for i := 0; i < len(templates); {
		tpl := templates[i]
		run := 1
		for i+run < len(templates) && run < 16 && templates[i+run] == tpl {
			run++
		}
		codes = append(codes, uint8(run-1)<<4|tpl)
		i += run
	}
	return codes
}
