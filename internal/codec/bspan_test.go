package codec

import (
	"bytes"
	"math/rand"
	"testing"

	"rtcomp/internal/raster"
)

func TestBSpanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	images := []*raster.Image{
		raster.New(16, 16),
		raster.RandomImage(rng, 16, 16, 0.0),
		raster.RandomImage(rng, 16, 16, 0.6),
		raster.PartialImage(rng, 64, 64, 1, 8),
		raster.RandomImage(rng, 1, 1, 0.5),
	}
	var c BSpan
	for _, im := range images {
		enc := c.Encode(im.Pix)
		dec, err := c.Decode(enc, im.NPixels())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, im.Pix) {
			t.Fatal("bspan round trip mismatch")
		}
	}
}

func TestBSpanRequiresCanonicalBlanks(t *testing.T) {
	// BSpan drops trimmed pixels entirely, so like TRLE it reproduces
	// blanks as canonical (0,0).
	pix := []uint8{42, 0, 5, 9, 42, 0}
	var c BSpan
	dec, err := c.Decode(c.Encode(pix), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{0, 0, 5, 9, 0, 0}
	if !bytes.Equal(dec, want) {
		t.Fatalf("got %v, want %v", dec, want)
	}
}

func TestBSpanTrimming(t *testing.T) {
	// 100 pixels, only pixel 40..42 non-blank: payload must be tiny.
	pix := make([]uint8, 200)
	for i := 40; i < 43; i++ {
		pix[2*i], pix[2*i+1] = 9, 9
	}
	enc := BSpan{}.Encode(pix)
	if len(enc) > 3*2+4 {
		t.Fatalf("bspan encoded %d bytes for 3 active pixels", len(enc))
	}
	// Fully blank block: header only.
	blank := make([]uint8, 200)
	if enc := (BSpan{}).Encode(blank); len(enc) > 4 {
		t.Fatalf("blank block encoded to %d bytes", len(enc))
	}
}

func TestBSpanCannotExploitInteriorBlanks(t *testing.T) {
	// Non-blank at both ends, blank in the middle: bspan keeps everything,
	// TRLE collapses the interior.
	pix := make([]uint8, 2000)
	pix[0], pix[1] = 1, 1
	pix[1998], pix[1999] = 1, 1
	if b := len(BSpan{}.Encode(pix)); b < 2000 {
		t.Fatalf("bspan compressed interior blanks: %d bytes", b)
	}
	if tr := len(TRLE{}.Encode(pix)); tr > 100 {
		t.Fatalf("TRLE failed on interior blanks: %d bytes", tr)
	}
}

func TestBSpanDecodeErrors(t *testing.T) {
	var c BSpan
	if _, err := c.Decode(nil, 4); err == nil {
		t.Fatal("empty stream accepted")
	}
	enc := c.Encode([]uint8{1, 1, 2, 2})
	if _, err := c.Decode(enc, 1); err == nil {
		t.Fatal("interval beyond block accepted")
	}
	if _, err := c.Decode(enc[:len(enc)-1], 2); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestByNameBSpan(t *testing.T) {
	c, err := ByName("bspan")
	if err != nil || c.Name() != "bspan" {
		t.Fatalf("ByName(bspan) = %v, %v", c, err)
	}
	// Not in the paper-figure list.
	for _, n := range Names() {
		if n == "bspan" {
			t.Fatal("bspan leaked into Names()")
		}
	}
}
