package codec

// Word-wide scanning primitives shared by the codecs. A value+alpha pixel is
// two bytes, so one little-endian uint64 load covers four pixels with the
// alpha bytes in the odd lanes. Blank/non-blank classification, run-length
// detection and template extraction all reduce to a handful of masked
// integer operations per four (or, for byte streams, eight) elements,
// replacing the per-pixel bounds-checked branches of the scalar encoders.
// DESIGN.md §14 documents the layout and the identities below.

import (
	"encoding/binary"
	"math/bits"
)

const (
	// alphaLanes selects the four alpha bytes of a four-pixel word.
	alphaLanes = uint64(0xFF00FF00FF00FF00)
	// loBytes selects the low byte of each 16-bit lane (after shifting the
	// alphas down into it).
	loBytes = uint64(0x00FF00FF00FF00FF)
	// carryBits is where an alpha byte's non-zeroness lands after the
	// carry trick below: bit 8 of each 16-bit lane.
	carryBits = uint64(0x0100010001000100)
)

// nonBlankNibble classifies the four pixels of a little-endian word load:
// bit j of the result is set when pixel j (lowest address first) has a
// non-zero alpha. The carry trick: with each alpha isolated in the low byte
// of its 16-bit lane, adding 0x00FF per lane carries into bit 8 exactly
// when the alpha is non-zero, and lanes cannot carry into each other
// because the high bytes are zero.
func nonBlankNibble(w uint64) uint8 {
	a := (w >> 8) & loBytes
	nz := (a + loBytes) & carryBits
	return uint8(nz>>8&1 | nz>>23&2 | nz>>38&4 | nz>>53&8)
}

// rev4 reverses the bits of a 4-bit value: nonBlankNibble's bit 0 is the
// first (lowest-address) pixel, while a TRLE template's bit 3 is.
var rev4 = [16]uint8{0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15}

// hasZeroLane16 reports whether any 16-bit lane of x is zero — the lane
// analogue of the classic has-zero-byte trick. Cross-lane borrows can set a
// spurious high bit, but only above a lane that really is zero, so the
// boolean answer is exact.
func hasZeroLane16(x uint64) bool {
	const (
		loLanes = uint64(0x0001000100010001)
		hiLanes = uint64(0x8000800080008000)
	)
	return (x-loLanes) & ^x & hiLanes != 0
}

// pixelRunLen returns the length of the run of pixels identical to pixel i
// in pix (value+alpha interleaved), scanning at most to pixel limit. It
// compares four pixels per load: XOR against the broadcast pattern zeroes
// matching 16-bit lanes, so the first mismatch is the lowest non-zero lane.
func pixelRunLen(pix []uint8, i, limit int) int {
	pat := broadcastPixel(pix[2*i], pix[2*i+1])
	j := i
	for j+4 <= limit {
		x := binary.LittleEndian.Uint64(pix[2*j:]) ^ pat
		if x != 0 {
			j += bits.TrailingZeros64(x) / 16
			if j > limit {
				j = limit
			}
			return j - i
		}
		j += 4
	}
	for j < limit && pix[2*j] == pix[2*i] && pix[2*j+1] == pix[2*i+1] {
		j++
	}
	return j - i
}

// allAlphasNonZero reports whether every pixel of the interleaved block has
// a non-zero alpha byte — the payload validity invariant of TRLE streams.
// pix must have even length.
func allAlphasNonZero(pix []uint8) bool {
	i := 0
	for ; i+8 <= len(pix); i += 8 {
		a := (binary.LittleEndian.Uint64(pix[i:]) >> 8) & loBytes
		if (a+loBytes)&carryBits != carryBits {
			return false
		}
	}
	for ; i < len(pix); i += 2 {
		if pix[i+1] == 0 {
			return false
		}
	}
	return true
}

// broadcastPixel replicates one (value, alpha) pixel across a 64-bit word.
func broadcastPixel(v, a uint8) uint64 {
	p := uint64(v) | uint64(a)<<8
	p |= p << 16
	return p | p<<32
}

// fillPixelRun stores the (v, a) pixel into every pixel of dst, eight bytes
// at a time. dst must have even length.
func fillPixelRun(dst []uint8, v, a uint8) {
	pat := broadcastPixel(v, a)
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], pat)
	}
	for ; i < len(dst); i += 2 {
		dst[i], dst[i+1] = v, a
	}
}

// byteRunLen returns the length of the run of bytes identical to b[i],
// scanning at most to index limit — the template-stream analogue of
// pixelRunLen, eight elements per load.
func byteRunLen(b []uint8, i, limit int) int {
	pat := uint64(b[i]) * 0x0101010101010101
	j := i
	for j+8 <= limit {
		x := binary.LittleEndian.Uint64(b[j:]) ^ pat
		if x != 0 {
			j += bits.TrailingZeros64(x) / 8
			if j > limit {
				j = limit
			}
			return j - i
		}
		j += 8
	}
	for j < limit && b[j] == b[i] {
		j++
	}
	return j - i
}
