package codec

// The 2x2-template mask form of TRLE, exactly as in the paper's Figure 3:
// a template is a 2x2 pixel window whose blank/non-blank pattern is a 4-bit
// id — bit 3 is the top-left pixel, bit 2 top-right, bit 1 bottom-left,
// bit 0 bottom-right. A TRLE code byte carries the template id in its low
// nibble and (replications - 1) in its high nibble, so a single byte covers
// up to 16 repeated templates. Windows are scanned left to right across each
// pair of scanlines, top pair first.

// Mask is a binary image: true marks a non-blank pixel.
type Mask struct {
	W, H int
	Bits []bool
}

// NewMask allocates an all-blank mask.
func NewMask(w, h int) *Mask { return &Mask{W: w, H: h, Bits: make([]bool, w*h)} }

// At reports the bit at (x, y); out-of-range coordinates read as blank,
// which implements the blank padding of odd-sized images.
func (m *Mask) At(x, y int) bool {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return false
	}
	return m.Bits[y*m.W+x]
}

// Set stores the bit at (x, y).
func (m *Mask) Set(x, y int, b bool) { m.Bits[y*m.W+x] = b }

// Template returns the Figure 3 template id of the 2x2 window whose top-left
// corner is (x, y).
func (m *Mask) Template(x, y int) uint8 {
	var t uint8
	if m.At(x, y) {
		t |= 8
	}
	if m.At(x+1, y) {
		t |= 4
	}
	if m.At(x, y+1) {
		t |= 2
	}
	if m.At(x+1, y+1) {
		t |= 1
	}
	return t
}

// EncodeMaskTRLE produces the TRLE code stream for a mask. Odd widths and
// heights are padded with blank pixels.
func EncodeMaskTRLE(m *Mask) []uint8 {
	var templates []uint8
	for y := 0; y < m.H; y += 2 {
		for x := 0; x < m.W; x += 2 {
			templates = append(templates, m.Template(x, y))
		}
	}
	var codes []uint8
	for i := 0; i < len(templates); {
		tpl := templates[i]
		run := 1
		for i+run < len(templates) && run < 16 && templates[i+run] == tpl {
			run++
		}
		codes = append(codes, uint8(run-1)<<4|tpl)
		i += run
	}
	return codes
}

// DecodeMaskTRLE inverts EncodeMaskTRLE for a mask of the given size.
func DecodeMaskTRLE(codes []uint8, w, h int) (*Mask, error) {
	m := NewMask(w, h)
	tilesPerRow := (w + 1) / 2
	tileRows := (h + 1) / 2
	total := tilesPerRow * tileRows
	idx := 0
	put := func(x, y int, b bool) {
		if b && x < w && y < h {
			m.Set(x, y, true)
		}
	}
	for _, c := range codes {
		tpl := c & 0x0F
		reps := int(c>>4) + 1
		for r := 0; r < reps; r++ {
			if idx >= total {
				return nil, ErrCorrupt
			}
			x := (idx % tilesPerRow) * 2
			y := (idx / tilesPerRow) * 2
			put(x, y, tpl&8 != 0)
			put(x+1, y, tpl&4 != 0)
			put(x, y+1, tpl&2 != 0)
			put(x+1, y+1, tpl&1 != 0)
			idx++
		}
	}
	if idx != total {
		return nil, ErrCorrupt
	}
	return m, nil
}

// TemplateTable returns the 16 Figure 3 templates as 2x2 boolean grids,
// indexed by template id; [0] is the top row.
func TemplateTable() [16][2][2]bool {
	var tab [16][2][2]bool
	for id := 0; id < 16; id++ {
		tab[id][0][0] = id&8 != 0
		tab[id][0][1] = id&4 != 0
		tab[id][1][0] = id&2 != 0
		tab[id][1][1] = id&1 != 0
	}
	return tab
}
