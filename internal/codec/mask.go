package codec

// The 2x2-template mask form of TRLE, exactly as in the paper's Figure 3:
// a template is a 2x2 pixel window whose blank/non-blank pattern is a 4-bit
// id — bit 3 is the top-left pixel, bit 2 top-right, bit 1 bottom-left,
// bit 0 bottom-right. A TRLE code byte carries the template id in its low
// nibble and (replications - 1) in its high nibble, so a single byte covers
// up to 16 repeated templates. Windows are scanned left to right across each
// pair of scanlines, top pair first.

// Mask is a binary image: true marks a non-blank pixel.
type Mask struct {
	W, H int
	Bits []bool
}

// NewMask allocates an all-blank mask.
func NewMask(w, h int) *Mask { return &Mask{W: w, H: h, Bits: make([]bool, w*h)} }

// At reports the bit at (x, y); out-of-range coordinates read as blank,
// which implements the blank padding of odd-sized images.
func (m *Mask) At(x, y int) bool {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return false
	}
	return m.Bits[y*m.W+x]
}

// Set stores the bit at (x, y).
func (m *Mask) Set(x, y int, b bool) { m.Bits[y*m.W+x] = b }

// Template returns the Figure 3 template id of the 2x2 window whose top-left
// corner is (x, y).
func (m *Mask) Template(x, y int) uint8 {
	var t uint8
	if m.At(x, y) {
		t |= 8
	}
	if m.At(x+1, y) {
		t |= 4
	}
	if m.At(x, y+1) {
		t |= 2
	}
	if m.At(x+1, y+1) {
		t |= 1
	}
	return t
}

// EncodeMaskTRLE produces the TRLE code stream for a mask. Odd widths and
// heights are padded with blank pixels.
//
// Instead of four bounds-checked At calls per 2x2 window, the encoder packs
// each row pair into word-wide bitmaps (one bit per pixel, bits past the
// width left zero so odd sizes pad themselves) and reads every window as a
// two-bit extract from each row: with x even, columns x and x+1 always land
// in the same word. The classified template stream is then run-coded eight
// templates per load. Output is byte-identical to the scalar encoder —
// TestFigure4Ratio pins the paper's exact code bytes.
func EncodeMaskTRLE(m *Mask) []uint8 {
	tilesPerRow := (m.W + 1) / 2
	tileRows := (m.H + 1) / 2
	ntpl := tilesPerRow * tileRows
	if ntpl == 0 {
		return nil
	}
	words := (m.W + 63) / 64
	top := make([]uint64, words)
	bot := make([]uint64, words)
	templates := make([]uint8, 0, ntpl)
	for y := 0; y < m.H; y += 2 {
		packMaskRow(m, y, top)
		if y+1 < m.H {
			packMaskRow(m, y+1, bot)
		} else {
			clear(bot)
		}
		for x := 0; x < m.W; x += 2 {
			t := top[x>>6] >> (x & 63) & 3 // bit 0 = left column, bit 1 = right
			b := bot[x>>6] >> (x & 63) & 3
			// Figure 3 bit order: 8 = top-left, 4 = top-right, 2 =
			// bottom-left, 1 = bottom-right.
			tpl := uint8(t&1)<<3 | uint8(t&2)<<1 | uint8(b&1)<<1 | uint8(b>>1)
			templates = append(templates, tpl)
		}
	}
	codes := make([]uint8, 0, 8)
	for i := 0; i < ntpl; {
		limit := i + 16
		if limit > ntpl {
			limit = ntpl
		}
		run := byteRunLen(templates, i, limit)
		codes = append(codes, uint8(run-1)<<4|templates[i])
		i += run
	}
	return codes
}

// packMaskRow sets bit x of dst for every non-blank pixel of row y; bits at
// and beyond the mask width stay zero.
func packMaskRow(m *Mask, y int, dst []uint64) {
	clear(dst)
	row := m.Bits[y*m.W : (y+1)*m.W]
	for x, set := range row {
		if set {
			dst[x>>6] |= 1 << (x & 63)
		}
	}
}

// DecodeMaskTRLE inverts EncodeMaskTRLE for a mask of the given size.
func DecodeMaskTRLE(codes []uint8, w, h int) (*Mask, error) {
	m := NewMask(w, h)
	tilesPerRow := (w + 1) / 2
	tileRows := (h + 1) / 2
	total := tilesPerRow * tileRows
	idx := 0
	put := func(x, y int, b bool) {
		if b && x < w && y < h {
			m.Set(x, y, true)
		}
	}
	for _, c := range codes {
		tpl := c & 0x0F
		reps := int(c>>4) + 1
		for r := 0; r < reps; r++ {
			if idx >= total {
				return nil, ErrCorrupt
			}
			x := (idx % tilesPerRow) * 2
			y := (idx / tilesPerRow) * 2
			put(x, y, tpl&8 != 0)
			put(x+1, y, tpl&4 != 0)
			put(x, y+1, tpl&2 != 0)
			put(x+1, y+1, tpl&1 != 0)
			idx++
		}
	}
	if idx != total {
		return nil, ErrCorrupt
	}
	return m, nil
}

// TemplateTable returns the 16 Figure 3 templates as 2x2 boolean grids,
// indexed by template id; [0] is the top row.
func TemplateTable() [16][2][2]bool {
	var tab [16][2][2]bool
	for id := 0; id < 16; id++ {
		tab[id][0][0] = id&8 != 0
		tab[id][0][1] = id&4 != 0
		tab[id][1][0] = id&2 != 0
		tab[id][1][1] = id&1 != 0
	}
	return tab
}
