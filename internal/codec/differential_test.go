package codec

// Differential matrix: the word-wide kernels against the preserved scalar
// references (reference_test.go), across codecs x operations x image
// classes, plus the fused decode+over path against its decode-then-compose
// oracle, and the truncated-tail (underflow) rejection cases.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
)

// imageClasses builds the pixel-block classes the differential matrix runs
// over. Each class returns interleaved value+alpha bytes.
func imageClasses(rng *rand.Rand) map[string][]uint8 {
	classes := map[string][]uint8{}

	classes["empty"] = []uint8{}
	classes["blank"] = make([]uint8, 2*512) // all-blank: one giant template run

	// Dense with varying values: every RLE run has length 1.
	dense := make([]uint8, 2*511) // odd pixel count: partial tail group
	for i := 0; i < len(dense); i += 2 {
		dense[i], dense[i+1] = uint8(i*7), uint8(1+(i/2)%255)
	}
	classes["dense-odd"] = dense

	// Constant opaque: runs longer than RLE's 255 cap and template runs
	// longer than TRLE's 16-group cap.
	classes["constant"] = bytes.Repeat([]uint8{42, 255}, 1000)

	// Checkerboard: alternating blank/non-blank, the worst case for
	// template classification (every group is template 0b1010).
	checker := make([]uint8, 2*400)
	for i := 0; i < 400; i += 2 {
		checker[2*i], checker[2*i+1] = uint8(i), 200
	}
	classes["checkerboard"] = checker

	// Banded like the rtbench layers: blank bands between dense stretches.
	banded := make([]uint8, 2*600)
	for px := 0; px < 600; px++ {
		if (px/32)%3 == 0 {
			continue
		}
		banded[2*px], banded[2*px+1] = uint8(px%256), uint8(128+px%128)
	}
	classes["banded"] = banded

	// Non-canonical blanks: zero alpha with non-zero value bytes. RLE must
	// round-trip them verbatim; TRLE treats them as blank.
	noncanon := make([]uint8, 2*100)
	for i := 0; i < len(noncanon); i += 2 {
		noncanon[i] = uint8(13 + i)
	}
	classes["noncanonical-blank"] = noncanon

	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
		img := make([]uint8, 2*n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				img[2*i], img[2*i+1] = uint8(rng.Intn(256)), uint8(1+rng.Intn(255))
			}
		}
		classes["tiny-"+string(rune('0'+n))] = img
	}

	for _, density := range []int{1, 5, 9} {
		img := raster.RandomImage(rng, 37, 11, float64(density)/10)
		classes["random-"+string(rune('0'+density))] = img.Pix
	}
	return classes
}

// refEncode/refDecode dispatch to the preserved scalar implementations.
func refEncode(name string, pix []uint8) []uint8 {
	if name == "rle" {
		return refRLEEncodeAppend(nil, pix)
	}
	return refTRLEEncodeAppend(nil, pix)
}

func refDecode(name string, enc []uint8, npix int) ([]uint8, error) {
	if name == "rle" {
		return refRLEDecodeInto(nil, enc, npix)
	}
	return refTRLEDecodeInto(nil, enc, npix)
}

// TestWordWideEncodersMatchReference: encode bytes old == new for every
// codec and image class, through both Encode and EncodeAppend.
func TestWordWideEncodersMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for name, cdc := range map[string]Codec{"rle": RLE{}, "trle": TRLE{}} {
		for class, pix := range imageClasses(rng) {
			want := refEncode(name, pix)
			if got := cdc.Encode(pix); !bytes.Equal(got, want) {
				t.Errorf("%s/%s: Encode differs from scalar reference\n got %v\nwant %v", name, class, got, want)
			}
			prefix := []uint8{9, 9, 9}
			if got := cdc.EncodeAppend(append([]uint8(nil), prefix...), pix); !bytes.Equal(got[len(prefix):], want) {
				t.Errorf("%s/%s: EncodeAppend differs from scalar reference", name, class)
			}
		}
	}
}

// TestWordWideDecodersMatchReference: decode pixels old == new on every
// valid stream, and both decoders must agree on acceptance of mangled ones.
func TestWordWideDecodersMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for name, cdc := range map[string]Codec{"rle": RLE{}, "trle": TRLE{}} {
		for class, pix := range imageClasses(rng) {
			npix := len(pix) / raster.BytesPerPixel
			enc := refEncode(name, pix)
			want, werr := refDecode(name, enc, npix)
			got, gerr := cdc.DecodeInto(nil, enc, npix)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s/%s: decoder disagreement: ref err=%v, new err=%v", name, class, werr, gerr)
			}
			if werr == nil && !bytes.Equal(got, want) {
				t.Errorf("%s/%s: DecodeInto differs from scalar reference", name, class)
			}
			// Mangle the stream a few ways; acceptance must match the
			// reference decoder exactly, and accepted streams must agree.
			for trial := 0; trial < 20 && len(enc) > 0; trial++ {
				mut := append([]uint8(nil), enc...)
				switch trial % 3 {
				case 0:
					mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
				case 1:
					mut = mut[:rng.Intn(len(mut))]
				case 2:
					mut = append(mut, uint8(rng.Intn(256)))
				}
				want, werr := refDecode(name, mut, npix)
				got, gerr := cdc.DecodeInto(nil, mut, npix)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s/%s: mangled-stream disagreement: ref err=%v, new err=%v", name, class, werr, gerr)
				}
				if werr == nil && !bytes.Equal(got, want) {
					t.Errorf("%s/%s: mangled-stream decode differs", name, class)
				}
			}
		}
	}
}

// TestDecodeRejectsTruncatedTails pins the underflow contract: a stream cut
// short — decoding to fewer than npix pixels — must fail with ErrCorrupt
// from DecodeInto, Decode and CheckStream alike, never return a short
// block.
func TestDecodeRejectsTruncatedTails(t *testing.T) {
	pix := bytes.Repeat([]uint8{7, 255, 0, 0, 13, 128}, 100)
	npix := len(pix) / raster.BytesPerPixel
	for _, cdc := range []OverDecoder{RLE{}, TRLE{}, Raw{}} {
		enc := cdc.Encode(pix)
		// Cut the tail at every suffix length that stays parseable for the
		// codec's framing (RLE needs multiples of 3 to reach the underflow
		// check rather than the framing check; any cut must still error).
		for cut := 1; cut <= len(enc); cut += 7 {
			short := enc[:len(enc)-cut]
			if _, err := cdc.DecodeInto(nil, short, npix); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: truncated stream (cut %d) decoded without ErrCorrupt: %v", cdc.Name(), cut, err)
			}
			if err := cdc.CheckStream(short, npix); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: CheckStream accepted truncated stream (cut %d): %v", cdc.Name(), cut, err)
			}
		}
		// An RLE-framing-aligned truncation decodes cleanly as a stream but
		// yields too few pixels — the pure underflow case.
		if cdc.Name() == "rle" {
			short := enc[:len(enc)-3]
			if _, err := cdc.DecodeInto(nil, short, npix); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rle: run-aligned truncation not rejected: %v", err)
			}
		}
	}
}

// TestCheckStreamMatchesDecodeInto: CheckStream must accept exactly the
// streams DecodeInto accepts.
func TestCheckStreamMatchesDecodeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, cdc := range []OverDecoder{RLE{}, TRLE{}, Raw{}} {
		for class, pix := range imageClasses(rng) {
			npix := len(pix) / raster.BytesPerPixel
			enc := cdc.Encode(pix)
			if err := cdc.CheckStream(enc, npix); err != nil {
				t.Fatalf("%s/%s: CheckStream rejected a valid stream: %v", cdc.Name(), class, err)
			}
			for trial := 0; trial < 40; trial++ {
				mut := append([]uint8(nil), enc...)
				switch trial % 3 {
				case 0:
					if len(mut) == 0 {
						continue
					}
					mut[rng.Intn(len(mut))] ^= uint8(1 + rng.Intn(255))
				case 1:
					mut = mut[:rng.Intn(len(mut)+1)]
				case 2:
					mut = append(mut, uint8(rng.Intn(256)))
				}
				_, derr := cdc.DecodeInto(nil, mut, npix)
				cerr := cdc.CheckStream(mut, npix)
				if (derr == nil) != (cerr == nil) {
					t.Fatalf("%s/%s: CheckStream/DecodeInto disagree on mutated stream: decode=%v check=%v",
						cdc.Name(), class, derr, cerr)
				}
			}
		}
	}
}

// TestDecodeOverMatchesDecodeThenCompose: the fused kernel against its
// oracle, both orientations, over residents that include non-canonical
// blanks and full word classes.
func TestDecodeOverMatchesDecodeThenCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for _, cdc := range []OverDecoder{RLE{}, TRLE{}, Raw{}} {
		for class, pix := range imageClasses(rng) {
			npix := len(pix) / raster.BytesPerPixel
			enc := cdc.Encode(pix)
			if _, err := cdc.DecodeInto(nil, enc, npix); err != nil {
				continue // class not encodable by this codec (never happens today)
			}
			for _, encFront := range []bool{true, false} {
				resident := make([]uint8, 2*npix)
				for i := 0; i < npix; i++ {
					switch rng.Intn(5) {
					case 0: // canonical blank
					case 1: // non-canonical blank
						resident[2*i] = uint8(1 + rng.Intn(255))
					case 2:
						resident[2*i], resident[2*i+1] = uint8(rng.Intn(256)), 255
					default:
						resident[2*i], resident[2*i+1] = uint8(rng.Intn(256)), uint8(1+rng.Intn(254))
					}
				}
				decoded, err := cdc.DecodeInto(nil, enc, npix)
				if err != nil {
					t.Fatal(err)
				}
				want := append([]uint8(nil), resident...)
				if encFront {
					compose.OverU8(want, decoded, want)
				} else {
					compose.OverU8(want, want, decoded)
				}
				got := append([]uint8(nil), resident...)
				n, err := cdc.DecodeOver(got, enc, npix, encFront)
				if err != nil {
					t.Fatalf("%s/%s encFront=%v: DecodeOver failed: %v", cdc.Name(), class, encFront, err)
				}
				if n != npix {
					t.Fatalf("%s/%s encFront=%v: DecodeOver reported %d pixels, want %d",
						cdc.Name(), class, encFront, n, npix)
				}
				if !bytes.Equal(got, want) {
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s/%s encFront=%v: fused result differs at byte %d: got %d want %d",
								cdc.Name(), class, encFront, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestMaskTRLEMatchesReference: the packed-bitmap mask encoder against the
// At-based scalar, across sizes including odd widths/heights and widths
// crossing the 64-bit word boundary.
func TestMaskTRLEMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, dim := range []struct{ w, h int }{
		{1, 1}, {2, 2}, {3, 3}, {5, 4}, {8, 8}, {63, 5}, {64, 4}, {65, 3}, {130, 7}, {16, 1},
	} {
		for _, density := range []float64{0, 0.2, 0.5, 0.9, 1} {
			m := NewMask(dim.w, dim.h)
			for i := range m.Bits {
				m.Bits[i] = rng.Float64() < density
			}
			want := refEncodeMaskTRLE(m)
			got := EncodeMaskTRLE(m)
			if !bytes.Equal(got, want) {
				t.Fatalf("mask %dx%d density %.1f: encoder differs\n got %v\nwant %v",
					dim.w, dim.h, density, got, want)
			}
			dec, err := DecodeMaskTRLE(got, dim.w, dim.h)
			if err != nil {
				t.Fatalf("mask %dx%d: decode failed: %v", dim.w, dim.h, err)
			}
			for i := range m.Bits {
				if dec.Bits[i] != m.Bits[i] {
					t.Fatalf("mask %dx%d: roundtrip differs at bit %d", dim.w, dim.h, i)
				}
			}
		}
	}
}

// fuzzDifferential cross-checks the word-wide codec against its scalar
// reference on arbitrary inputs: identical encode bytes, identical decode
// acceptance and pixels, and a fused decode+over identical to
// decode-then-compose. This is the old-vs-new cross-check fuzz-smoke runs
// in CI.
func fuzzDifferential(f *testing.F, name string, canonical bool) {
	for _, seed := range templateSeeds() {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{7, 255}, 64))
	f.Add(bytes.Repeat([]byte{0, 0}, 64))
	f.Add([]byte{1, 0, 2, 0, 3, 0}) // non-canonical blanks
	// Truncated-tail seeds: valid encodings cut short, so the corpus drives
	// the hostile-stream half straight into the underflow checks.
	full := RLE{}.Encode(bytes.Repeat([]byte{9, 200}, 300))
	f.Add(full[:len(full)-3])
	f.Add(full[:len(full)-1])
	tfull := TRLE{}.Encode(bytes.Repeat([]byte{9, 200, 0, 0}, 150))
	f.Add(tfull[:len(tfull)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		var cdc OverDecoder = RLE{}
		if name == "trle" {
			cdc = TRLE{}
		}
		npix := len(data) / raster.BytesPerPixel
		pix := data[:npix*raster.BytesPerPixel]
		if canonical {
			pix = canonicalize(pix)
		}
		enc := cdc.EncodeAppend(nil, pix)
		if want := refEncode(name, pix); !bytes.Equal(enc, want) {
			t.Fatalf("encode differs from scalar reference: got %v want %v", enc, want)
		}

		// The same input viewed as a hostile stream: acceptance and output
		// must match the scalar decoder for every claimed size.
		for _, claim := range []int{0, 1, npix, npix + 3} {
			want, werr := refDecode(name, data, claim)
			got, gerr := cdc.DecodeInto(nil, data, claim)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("claim %d: decoders disagree: ref err=%v new err=%v", claim, werr, gerr)
			}
			cerr := cdc.CheckStream(data, claim)
			if (cerr == nil) != (gerr == nil) {
				t.Fatalf("claim %d: CheckStream disagrees with DecodeInto: check=%v decode=%v", claim, cerr, gerr)
			}
			if werr != nil {
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("claim %d: decode differs from scalar reference", claim)
			}
			// Fused decode+over vs decode-then-compose on a patterned
			// resident (deterministic, covers blank/opaque/partial).
			for _, encFront := range []bool{true, false} {
				resident := make([]byte, 2*claim)
				for i := 0; i < claim; i++ {
					switch i % 4 {
					case 0:
					case 1:
						resident[2*i], resident[2*i+1] = uint8(i), 255
					case 2:
						resident[2*i], resident[2*i+1] = uint8(i), uint8(1+i%254)
					case 3:
						resident[2*i] = uint8(i) | 1 // non-canonical blank
					}
				}
				wantOver := append([]byte(nil), resident...)
				if encFront {
					compose.OverU8(wantOver, want, wantOver)
				} else {
					compose.OverU8(wantOver, wantOver, want)
				}
				gotOver := append([]byte(nil), resident...)
				n, err := cdc.DecodeOver(gotOver, data, claim, encFront)
				if err != nil {
					t.Fatalf("claim %d: DecodeOver rejected a stream DecodeInto accepted: %v", claim, err)
				}
				if n != claim || !bytes.Equal(gotOver, wantOver) {
					t.Fatalf("claim %d encFront=%v: fused result differs (n=%d)", claim, encFront, n)
				}
			}
		}
	})
}

func FuzzRLEDifferential(f *testing.F) { fuzzDifferential(f, "rle", false) }

func FuzzTRLEDifferential(f *testing.F) { fuzzDifferential(f, "trle", true) }
