package codec

import (
	"bytes"
	"math/rand"
	"testing"

	"rtcomp/internal/raster"
)

var allCodecs = []Codec{Raw{}, RLE{}, TRLE{}, BSpan{}}

// The append entry points must produce byte-identical streams to the legacy
// entry points — they are the same wire format, minus the allocations.
func TestEncodeAppendMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	images := []*raster.Image{
		raster.New(16, 16),
		raster.RandomImage(rng, 16, 16, 0.5),
		raster.PartialImage(rng, 64, 64, 2, 8),
		raster.RandomImage(rng, 7, 3, 0.3),
		raster.RandomImage(rng, 1, 1, 0.0),
	}
	for _, c := range allCodecs {
		for _, im := range images {
			legacy := c.Encode(im.Pix)
			prefix := []uint8{9, 9, 9}
			got := c.EncodeAppend(append([]uint8(nil), prefix...), im.Pix)
			if !bytes.Equal(got[:3], prefix) {
				t.Fatalf("%s: EncodeAppend clobbered dst prefix", c.Name())
			}
			if !bytes.Equal(got[3:], legacy) {
				t.Fatalf("%s: EncodeAppend stream differs from Encode", c.Name())
			}
		}
	}
}

func TestDecodeIntoRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, c := range allCodecs {
		im := raster.PartialImage(rng, 32, 32, 2, 8)
		enc := c.EncodeAppend(nil, im.Pix)

		// Fresh (nil dst), undersized dst, and dirty oversized dst must all
		// reproduce the block exactly.
		for _, dst := range [][]uint8{
			nil,
			make([]uint8, 0, 7),
			bytes.Repeat([]uint8{0xAA}, len(im.Pix)+64),
		} {
			dec, err := c.DecodeInto(dst, enc, im.NPixels())
			if err != nil {
				t.Fatalf("%s: DecodeInto: %v", c.Name(), err)
			}
			if !bytes.Equal(dec, im.Pix) {
				t.Fatalf("%s: DecodeInto round trip mismatch", c.Name())
			}
		}
	}
}

// DecodeInto must reuse a big-enough dst and must never alias enc — the two
// halves of the ownership contract the compositor's pooling relies on.
func TestDecodeIntoOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, c := range allCodecs {
		im := raster.PartialImage(rng, 16, 16, 2, 8)
		enc := c.EncodeAppend(nil, im.Pix)

		dst := make([]uint8, len(im.Pix))
		dec, err := c.DecodeInto(dst, enc, im.NPixels())
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if &dec[0] != &dst[0] {
			t.Errorf("%s: DecodeInto did not reuse a sufficient dst", c.Name())
		}
		// Trash enc; the decoded block must be unaffected.
		for i := range enc {
			enc[i] = 0xFF
		}
		if !bytes.Equal(dec, im.Pix) {
			t.Errorf("%s: DecodeInto result aliases enc", c.Name())
		}
	}
}

// EncodeAppend must not retain or alias pix: mutating pix afterwards must
// leave the encoding untouched.
func TestEncodeAppendDoesNotAliasInput(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, c := range allCodecs {
		im := raster.PartialImage(rng, 16, 16, 2, 8)
		enc := c.EncodeAppend(nil, im.Pix)
		want := append([]uint8(nil), enc...)
		for i := range im.Pix {
			im.Pix[i] ^= 0x5A
		}
		if !bytes.Equal(enc, want) {
			t.Errorf("%s: EncodeAppend result aliases pix", c.Name())
		}
	}
}

// Raw's legacy entry points alias by contract; pin that so the
// no-copy guarantee can't silently regress.
func TestRawAliases(t *testing.T) {
	pix := []uint8{1, 255, 2, 255}
	if enc := (Raw{}).Encode(pix); &enc[0] != &pix[0] {
		t.Fatal("Raw.Encode copied")
	}
	dec, err := Raw{}.Decode(pix, 2)
	if err != nil {
		t.Fatal(err)
	}
	if &dec[0] != &pix[0] {
		t.Fatal("Raw.Decode copied")
	}
}

// Steady state: encode+decode through the append APIs into warm scratch must
// not allocate for any codec.
func TestAppendAPIsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	im := raster.PartialImage(rng, 64, 64, 2, 8)
	for _, c := range allCodecs {
		encScratch := c.EncodeAppend(nil, im.Pix) // warm
		decScratch := make([]uint8, len(im.Pix))
		allocs := testing.AllocsPerRun(50, func() {
			encScratch = c.EncodeAppend(encScratch[:0], im.Pix)
			var err error
			decScratch, err = c.DecodeInto(decScratch, encScratch, im.NPixels())
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: warm EncodeAppend+DecodeInto allocates %v per op, want 0", c.Name(), allocs)
		}
	}
}
