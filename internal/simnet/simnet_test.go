package simnet

import (
	"math/rand"
	"testing"

	"rtcomp/internal/codec"
	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
)

func binaryLayers(rng *rand.Rand, p, w, h int) []*raster.Image {
	layers := make([]*raster.Image, p)
	for r := range layers {
		layers[r] = raster.RandomBinaryImage(rng, w, h, 0.5)
	}
	return layers
}

func sparseLayers(rng *rand.Rand, p, w, h int) []*raster.Image {
	layers := make([]*raster.Image, p)
	for r := range layers {
		layers[r] = raster.PartialImage(rng, w, h, r, p)
	}
	return layers
}

func mustRT(t testing.TB, p, n int) *schedule.Schedule {
	t.Helper()
	s, err := schedule.RT(p, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimulatedImageMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, p := range []int{2, 3, 5, 8} {
		layers := binaryLayers(rng, p, 40, 12)
		want := compose.SerialComposite(layers)
		for _, build := range []func() *schedule.Schedule{
			func() *schedule.Schedule { return mustRT(t, p, 3) },
			func() *schedule.Schedule { s, _ := schedule.Pipeline(p); return s },
			func() *schedule.Schedule { s, _ := schedule.DirectSend(p); return s },
		} {
			sched := build()
			res, err := Simulate(sched, layers, codec.TRLE{}, SP2Calibrated())
			if err != nil {
				t.Fatalf("%s p=%d: %v", sched.Name, p, err)
			}
			if !raster.Equal(res.Image, want) {
				t.Fatalf("%s p=%d: simulated image differs from serial composite", sched.Name, p)
			}
		}
	}
}

func TestTrafficMatchesCensus(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	p := 6
	layers := binaryLayers(rng, p, 48, 16)
	for _, sched := range []*schedule.Schedule{
		mustRT(t, p, 4),
		func() *schedule.Schedule { s, _ := schedule.Pipeline(p); return s }(),
	} {
		res, err := Simulate(sched, layers, nil, SP2Calibrated())
		if err != nil {
			t.Fatal(err)
		}
		census, err := schedule.Validate(sched, 48*16)
		if err != nil {
			t.Fatal(err)
		}
		if res.Msgs != census.TotalMessages() {
			t.Fatalf("%s: sim msgs %d != census %d", sched.Name, res.Msgs, census.TotalMessages())
		}
		if res.RawBytes != census.TotalBytes() {
			t.Fatalf("%s: sim raw bytes %d != census %d", sched.Name, res.RawBytes, census.TotalBytes())
		}
		if res.OverPixels != census.TotalOverPixels() {
			t.Fatalf("%s: sim over pixels %d != census %d", sched.Name, res.OverPixels, census.TotalOverPixels())
		}
		if res.WireBytes != res.RawBytes {
			t.Fatalf("%s: raw codec must not change wire bytes", sched.Name)
		}
	}
}

func TestTimeIsPositiveAndStepsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	p := 8
	layers := binaryLayers(rng, p, 64, 64)
	res, err := Simulate(mustRT(t, p, 4), layers, nil, PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatalf("time = %v", res.Time)
	}
	prev := 0.0
	for i, st := range res.StepTime {
		if st < prev {
			t.Fatalf("step %d time %v < previous %v", i, st, prev)
		}
		prev = st
	}
	if res.Time != res.StepTime[len(res.StepTime)-1] {
		t.Fatalf("final time %v != last step %v", res.Time, res.StepTime[len(res.StepTime)-1])
	}
}

// The headline comparison of the paper's Figure 6: with 32 processors on a
// 512x512 image, rotate-tiling at a good N beats binary-swap, and both beat
// parallel-pipelined.
func TestRTBeatsBSBeatsPPAt32(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	p := 32
	layers := binaryLayers(rng, p, 512, 256) // half-height 512x512 for test speed
	params := SP2Calibrated()

	bsSched, _ := schedule.BinarySwap(p)
	bs, err := Simulate(bsSched, layers, nil, params)
	if err != nil {
		t.Fatal(err)
	}
	ppSched, _ := schedule.Pipeline(p)
	pp, err := Simulate(ppSched, layers, nil, params)
	if err != nil {
		t.Fatal(err)
	}
	best := -1.0
	for n := 2; n <= 16; n += 2 {
		res, err := Simulate(mustRT(t, p, n), layers, nil, params)
		if err != nil {
			t.Fatal(err)
		}
		if best < 0 || res.Time < best {
			best = res.Time
		}
	}
	if best >= bs.Time {
		t.Fatalf("RT best %.6f not better than BS %.6f", best, bs.Time)
	}
	if bs.Time >= pp.Time {
		t.Fatalf("BS %.6f not better than PP %.6f", bs.Time, pp.Time)
	}
}

// Composition time versus the number of initial blocks must be U-shaped:
// too few blocks give no pipelining, too many drown in message startups.
func TestRTTimeIsUShapedInN(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	p := 32
	layers := binaryLayers(rng, p, 512, 256)
	params := SP2Calibrated()
	time := func(n int) float64 {
		res, err := Simulate(mustRT(t, p, n), layers, nil, params)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	t1 := time(1)
	t64 := time(64)
	best, bestN := t1, 1
	for _, n := range []int{2, 4, 6, 8, 12, 16, 24, 32} {
		if tt := time(n); tt < best {
			best, bestN = tt, n
		}
	}
	if best >= t1 {
		t.Fatalf("no falling arm: best %.6f at N=%d vs N=1 %.6f", best, bestN, t1)
	}
	if best >= t64 {
		t.Fatalf("no rising arm: best %.6f at N=%d vs N=64 %.6f", best, bestN, t64)
	}
}

// TRLE must reduce composition time on realistic sparse partial images, and
// beat RLE (the paper's Figures 7 and 8 orderings).
func TestCodecOrderingOnSparseImages(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	p := 16
	layers := sparseLayers(rng, p, 256, 128)
	params := SP2Calibrated()
	sched := mustRT(t, p, 4)
	times := map[string]float64{}
	for _, name := range codec.Names() {
		cdc, _ := codec.ByName(name)
		res, err := Simulate(sched, layers, cdc, params)
		if err != nil {
			t.Fatal(err)
		}
		times[name] = res.Time
	}
	if !(times["trle"] < times["rle"] && times["rle"] < times["raw"]) {
		t.Fatalf("codec ordering violated: %v", times)
	}
}

func TestStepBarrierNeverFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	p := 12
	layers := binaryLayers(rng, p, 64, 64)
	sched := mustRT(t, p, 4)
	free, err := Simulate(sched, layers, nil, SP2Calibrated())
	if err != nil {
		t.Fatal(err)
	}
	params := SP2Calibrated()
	params.StepBarrier = true
	sync, err := Simulate(sched, layers, nil, params)
	if err != nil {
		t.Fatal(err)
	}
	if sync.Time < free.Time-1e-12 {
		t.Fatalf("barrier run %.6f faster than free-running %.6f", sync.Time, free.Time)
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	sched := mustRT(t, 4, 2)
	rng := rand.New(rand.NewSource(67))
	if _, err := Simulate(sched, binaryLayers(rng, 3, 8, 8), nil, SP2Calibrated()); err == nil {
		t.Fatal("layer count mismatch accepted")
	}
	layers := binaryLayers(rng, 4, 8, 8)
	layers[2] = raster.New(9, 9)
	if _, err := Simulate(sched, layers, nil, SP2Calibrated()); err == nil {
		t.Fatal("layer size mismatch accepted")
	}
}

func TestSingleRankSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	layers := binaryLayers(rng, 1, 16, 16)
	res, err := Simulate(mustRT(t, 1, 4), layers, nil, SP2Calibrated())
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 0 {
		t.Fatalf("single rank composition time %v, want 0", res.Time)
	}
	if !raster.Equal(res.Image, layers[0]) {
		t.Fatal("single rank image differs")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	p := 8
	layers := binaryLayers(rng, p, 64, 32)
	sched := mustRT(t, p, 4)
	a, err := Simulate(sched, layers, codec.TRLE{}, SP2Calibrated())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(sched, layers, codec.TRLE{}, SP2Calibrated())
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Msgs != b.Msgs || a.WireBytes != b.WireBytes {
		t.Fatalf("simulation not deterministic: %v/%v", a.Time, b.Time)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("event traces differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	if !raster.Equal(a.Image, b.Image) {
		t.Fatal("images differ between runs")
	}
}

// Under the one-port network model, send-order rotation matters: a
// direct-send whose senders all target receiver 0 first, then 1, ...
// piles messages onto one receive port at a time, while the rotated
// schedule (each rank starts with its successor) staggers arrivals. This
// is the port-contention argument behind the "rotate" in rotate-tiling.
func TestSinglePortRewardsRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	p := 16
	layers := binaryLayers(rng, p, 256, 128)
	single := SP2Calibrated()
	single.SinglePort = true

	rotated, err := schedule.DirectSend(p)
	if err != nil {
		t.Fatal(err)
	}
	// Hot-spot variant: same transfers, ordered receiver-major so every
	// sender hits the same receiver back to back.
	hotspot := &schedule.Schedule{Name: "direct-send-hotspot", P: p, Tiles: p}
	st := schedule.Step{}
	for j := 0; j < p; j++ {
		for r := 0; r < p; r++ {
			if r == j {
				continue
			}
			st.Transfers = append(st.Transfers, schedule.Transfer{
				From: r, To: j, Block: schedule.Block{Tile: j},
			})
		}
	}
	hotspot.Steps = []schedule.Step{st}
	if _, err := schedule.Validate(hotspot, 256*128); err != nil {
		t.Fatal(err)
	}

	rotRes, err := Simulate(rotated, layers, nil, single)
	if err != nil {
		t.Fatal(err)
	}
	hotRes, err := Simulate(hotspot, layers, nil, single)
	if err != nil {
		t.Fatal(err)
	}
	if rotRes.Time >= hotRes.Time {
		t.Fatalf("rotation did not help under one port: rotated %.4f vs hotspot %.4f",
			rotRes.Time, hotRes.Time)
	}
	// Without the port constraint the two orderings tie (to within noise).
	multi := SP2Calibrated()
	rotM, err := Simulate(rotated, layers, nil, multi)
	if err != nil {
		t.Fatal(err)
	}
	if rotM.Time > rotRes.Time {
		t.Fatal("single port made the rotated schedule faster")
	}
}

// A straggler rank slows every method, but methods that spread work evenly
// degrade by at most the straggler's own slowdown on its share.
func TestStragglerModel(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	p := 8
	layers := binaryLayers(rng, p, 256, 128)
	sched := mustRT(t, p, 4)
	base, err := Simulate(sched, layers, nil, SP2Calibrated())
	if err != nil {
		t.Fatal(err)
	}
	slow := SP2Calibrated()
	slow.RankSpeed = make([]float64, p)
	for i := range slow.RankSpeed {
		slow.RankSpeed[i] = 1
	}
	slow.RankSpeed[3] = 3 // one rank at a third of the speed
	res, err := Simulate(sched, layers, nil, slow)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= base.Time {
		t.Fatal("straggler did not slow the composition")
	}
	if res.Time > 3*base.Time {
		t.Fatalf("straggler over-propagated: %.4f vs base %.4f", res.Time, base.Time)
	}
	// Bad speed vectors are rejected.
	bad := SP2Calibrated()
	bad.RankSpeed = []float64{1, 2}
	if _, err := Simulate(sched, layers, nil, bad); err == nil {
		t.Fatal("wrong RankSpeed length accepted")
	}
	bad.RankSpeed = make([]float64, p)
	if _, err := Simulate(sched, layers, nil, bad); err == nil {
		t.Fatal("zero speed accepted")
	}
}

// The gather is a roughly method-independent add-on — the assumption under
// which the paper excludes it from the composition-time figures.
func TestGatherCost(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	p := 16
	layers := binaryLayers(rng, p, 256, 128)
	base := SP2Calibrated()
	withGather := SP2Calibrated()
	withGather.IncludeGather = true

	var gathers []float64
	for _, build := range []func() *schedule.Schedule{
		func() *schedule.Schedule { s, _ := schedule.BinarySwap(p); return s },
		func() *schedule.Schedule { return mustRT(t, p, 4) },
	} {
		sched := build()
		a, err := Simulate(sched, layers, nil, base)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Simulate(sched, layers, nil, withGather)
		if err != nil {
			t.Fatal(err)
		}
		if a.GatherTime <= 0 {
			t.Fatalf("%s: gather time %v", sched.Name, a.GatherTime)
		}
		if diff := b.Time - (a.Time + a.GatherTime); diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("%s: IncludeGather accounting off by %v", sched.Name, diff)
		}
		gathers = append(gathers, a.GatherTime)
	}
	// Same data volume arrives at the root either way; costs must be close.
	ratio := gathers[0] / gathers[1]
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("gather costs differ wildly across methods: %v", gathers)
	}
	// The single-rank case has no gather.
	solo, err := Simulate(mustRT(t, 1, 2), binaryLayers(rng, 1, 32, 32), nil, withGather)
	if err != nil {
		t.Fatal(err)
	}
	if solo.GatherTime != 0 {
		t.Fatalf("solo gather time %v", solo.GatherTime)
	}
}
