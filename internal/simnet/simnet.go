// Package simnet is the deterministic virtual-time network simulator that
// stands in for the paper's SP2 when measuring composition time. It executes
// a composition schedule on real image data — so compression ratios and
// over volumes are the genuine ones — while advancing per-rank logical
// clocks under a linear cost model:
//
//   - sending a message occupies the sender's network engine for
//     Ts + wireBytes*TpPerByte seconds (startup plus transmission, the
//     paper's Ts and Tp);
//   - compositing occupies the receiver's compute engine for
//     pixels*ToPerPixel seconds (the paper's To);
//   - encoding and decoding occupy the compute engine at per-raw-byte
//     rates that depend on the codec.
//
// Each rank owns two engines (network-out and compute) that may overlap, and
// ranks are not barrier-synchronised between steps: a rank starts its next
// step as soon as its own work is done, exactly like the socket-based
// executor. The reported composition time is the largest rank clock at the
// end — the paper's notion of composition time.
package simnet

import (
	"fmt"
	"sort"

	"rtcomp/internal/codec"
	"rtcomp/internal/fragstore"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
)

// CodecCost is the per-raw-byte compute cost of a codec.
type CodecCost struct {
	EncPerByte float64
	DecPerByte float64
}

// Params is the machine model.
type Params struct {
	// Name labels the preset in reports.
	Name string
	// Ts is the per-message startup time in seconds.
	Ts float64
	// TpPerByte is the transmission time per wire byte in seconds.
	TpPerByte float64
	// ToPerPixel is the over-composite time per pixel in seconds.
	ToPerPixel float64
	// CodecCosts maps codec names to their compute costs; missing codecs
	// cost nothing (raw is always free).
	CodecCosts map[string]CodecCost
	// StepBarrier, when set, synchronises all ranks between steps —
	// modelling a bulk-synchronous implementation. Off by default.
	StepBarrier bool
	// SinglePort, when set, serialises incoming messages through a
	// receive engine (Ts + bytes*Tp each) before they become available —
	// the one-port network model. Off by default (infinite receive
	// bandwidth, the multi-port HPS-style assumption).
	SinglePort bool
	// RankSpeed optionally scales each rank's compute speed: a rank with
	// factor f takes f times as long for the same work (1.0 = nominal).
	// Nil means homogeneous ranks. Models stragglers.
	RankSpeed []float64
	// IncludeGather adds the final gather to rank 0 to the composition
	// time (one message per non-root rank carrying its final blocks). The
	// paper's figures exclude it as a cost common to all methods; this
	// switch lets that assumption be checked.
	IncludeGather bool
}

// PaperExample returns the paper's illustrative Section 2.3 constants:
// Ts = 0.005 s, Tp = 0.00004 s/byte, To = 0.0002 s/pixel. These produce the
// worked optimal-N examples of Equations (5) and (6). Codec costs are set
// to a quarter (TRLE) and a half (RLE) of To per byte, preserving the
// paper's claim that TRLE needs less computation than RLE.
func PaperExample() Params {
	return Params{
		Name:       "paper-example",
		Ts:         0.005,
		TpPerByte:  0.00004,
		ToPerPixel: 0.0002,
		CodecCosts: map[string]CodecCost{
			"trle":  {EncPerByte: 0.00005, DecPerByte: 0.00005},
			"rle":   {EncPerByte: 0.0001, DecPerByte: 0.0001},
			"bspan": {EncPerByte: 0.00001, DecPerByte: 0.00001},
		},
	}
}

// SP2Calibrated returns constants of SP2-era magnitude: 0.5 ms message
// startup (MPL small-message latency), 25 MB/s effective point-to-point
// bandwidth through the High Performance Switch, 0.15 us per pixel for the
// over operation on a 66.7 MHz POWER2, and codec costs measured relative to
// the over kernel (TRLE cheaper than RLE, per the paper and per this
// repository's Go microbenchmarks).
func SP2Calibrated() Params {
	return Params{
		Name:       "sp2-calibrated",
		Ts:         5e-4,
		TpPerByte:  4e-8,
		ToPerPixel: 1.5e-7,
		CodecCosts: map[string]CodecCost{
			"trle":  {EncPerByte: 5e-9, DecPerByte: 5e-9},
			"rle":   {EncPerByte: 9e-9, DecPerByte: 7e-9},
			"bspan": {EncPerByte: 1e-9, DecPerByte: 1e-9},
		},
	}
}

// Result is the outcome of a simulated composition.
type Result struct {
	// Time is the composition time: the largest rank clock after the last
	// step (plus the gather when Params.IncludeGather is set).
	Time float64
	// GatherTime is the extra time the final gather to rank 0 would cost
	// (always computed; included in Time only with Params.IncludeGather).
	GatherTime float64
	// PerRankTime is each rank's finish time.
	PerRankTime []float64
	// StepTime[k] is the time by which every rank finished step k.
	StepTime []float64
	// Traffic totals across ranks and steps.
	Msgs       int
	RawBytes   int64
	WireBytes  int64
	OverPixels int64
	// Image is the assembled final image (zero-cost gather), for
	// verification against the serial reference.
	Image *raster.Image
	// Events is the full engine-occupancy trace, one entry per
	// transmission and per compute span (encode, decode+composite), in
	// generation order. internal/trace renders it as a Gantt chart.
	Events []Event
}

// EventKind labels which engine an Event occupied.
type EventKind uint8

// Event kinds: a network-out transmission, or compute work (encoding,
// decoding and compositing).
const (
	EventSend EventKind = iota
	EventCompute
)

// Event is one span of engine occupancy on one rank.
type Event struct {
	Rank   int
	Kind   EventKind
	Step   int
	Block  schedule.Block
	T0, T1 float64
}

type rankState struct {
	store    *fragstore.Store
	stepDone float64 // completion time of this rank's previous step
	txFree   float64 // network-out engine availability
	rxFree   float64 // receive engine availability (single-port model)
	cpuFree  float64 // compute engine availability
	speed    float64 // compute time multiplier (1 = nominal)
	ready    map[schedule.Block]float64
}

type flight struct {
	tr      schedule.Transfer
	arrival float64
	frags   []fragstore.Fragment
	raw     int64
}

// Simulate runs the schedule on the layers (layers[r] is rank r's partial
// image) under the machine model and returns timings, traffic and the final
// image.
func Simulate(sched *schedule.Schedule, layers []*raster.Image, cdc codec.Codec, p Params) (*Result, error) {
	if len(layers) != sched.P {
		return nil, fmt.Errorf("simnet: %d layers for %d ranks", len(layers), sched.P)
	}
	if cdc == nil {
		cdc = codec.Raw{}
	}
	cost := p.CodecCosts[cdc.Name()]
	w, h := layers[0].W, layers[0].H
	for r, im := range layers {
		if im.W != w || im.H != h {
			return nil, fmt.Errorf("simnet: layer %d has size %dx%d, want %dx%d", r, im.W, im.H, w, h)
		}
	}

	ranks := make([]*rankState, sched.P)
	for r := range ranks {
		speed := 1.0
		if p.RankSpeed != nil {
			if len(p.RankSpeed) != sched.P {
				return nil, fmt.Errorf("simnet: RankSpeed has %d entries for %d ranks", len(p.RankSpeed), sched.P)
			}
			speed = p.RankSpeed[r]
			if speed <= 0 {
				return nil, fmt.Errorf("simnet: rank %d speed %v must be positive", r, speed)
			}
		}
		ranks[r] = &rankState{
			store: fragstore.New(r, sched, layers[r]),
			speed: speed,
			ready: map[schedule.Block]float64{},
		}
	}
	res := &Result{PerRankTime: make([]float64, sched.P)}

	for si, step := range sched.Steps {
		for h := 0; h < step.PreHalvings; h++ {
			for _, rs := range ranks {
				rs.halve()
			}
		}

		// Phase A: issue every send in schedule order. Encoding occupies
		// the sender's compute engine; the wire occupies its network-out
		// engine; the arrival time is the end of transmission.
		inbox := make([][]flight, sched.P)
		for _, tr := range step.Transfers {
			rs := ranks[tr.From]
			frags, err := rs.store.Take(tr.Block)
			if err != nil {
				return nil, err
			}
			dataReady := rs.stepDone
			if t, ok := rs.ready[tr.Block]; ok && t > dataReady {
				dataReady = t
			}
			delete(rs.ready, tr.Block)
			var raw, wire int64
			for _, f := range frags {
				raw += int64(len(f.Data))
				wire += int64(len(cdc.Encode(f.Data)))
			}
			sendReady := dataReady
			if cost.EncPerByte > 0 {
				encStart := maxf(rs.cpuFree, dataReady)
				rs.cpuFree = encStart + rs.speed*float64(raw)*cost.EncPerByte
				sendReady = rs.cpuFree
				res.Events = append(res.Events, Event{
					Rank: tr.From, Kind: EventCompute, Step: si, Block: tr.Block, T0: encStart, T1: rs.cpuFree,
				})
			}
			txStart := maxf(rs.txFree, sendReady)
			rs.txFree = txStart + p.Ts + float64(wire)*p.TpPerByte
			res.Events = append(res.Events, Event{
				Rank: tr.From, Kind: EventSend, Step: si, Block: tr.Block, T0: txStart, T1: rs.txFree,
			})
			arrival := rs.txFree
			if p.SinglePort {
				// The receive port is occupied for the message's wire time;
				// reception overlaps the transmission when the port is idle
				// (cut-through), and queues behind earlier messages when
				// several senders converge on one receiver.
				dst := ranks[tr.To]
				wireTime := p.Ts + float64(wire)*p.TpPerByte
				rxStart := maxf(arrival-wireTime, dst.rxFree)
				dst.rxFree = rxStart + wireTime
				arrival = maxf(arrival, dst.rxFree)
			}
			inbox[tr.To] = append(inbox[tr.To], flight{tr: tr, arrival: arrival, frags: frags, raw: raw})
			res.Msgs++
			res.RawBytes += raw
			res.WireBytes += wire
		}

		// Phase B: each rank consumes its arrivals in arrival order;
		// decode and composite occupy its compute engine.
		for r, rs := range ranks {
			arrivals := inbox[r]
			sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].arrival < arrivals[j].arrival })
			for _, fl := range arrivals {
				start := maxf(maxf(rs.cpuFree, fl.arrival), rs.stepDone)
				spanStart := start
				if cost.DecPerByte > 0 {
					start += rs.speed * float64(fl.raw) * cost.DecPerByte
				}
				overPix, err := rs.store.Merge(fl.tr.Block, fl.frags)
				if err != nil {
					return nil, err
				}
				rs.cpuFree = start + rs.speed*float64(overPix)*p.ToPerPixel
				rs.ready[fl.tr.Block] = rs.cpuFree
				res.OverPixels += overPix
				res.Events = append(res.Events, Event{
					Rank: r, Kind: EventCompute, Step: si, Block: fl.tr.Block, T0: spanStart, T1: rs.cpuFree,
				})
			}
			rs.stepDone = maxf(maxf(rs.stepDone, rs.cpuFree), rs.txFree)
		}

		for h := 0; h < step.PostHalvings; h++ {
			for _, rs := range ranks {
				rs.halve()
			}
		}

		if p.StepBarrier {
			var t float64
			for _, rs := range ranks {
				t = maxf(t, rs.stepDone)
			}
			for _, rs := range ranks {
				rs.stepDone = t
			}
		}
		var stepMax float64
		for _, rs := range ranks {
			stepMax = maxf(stepMax, rs.stepDone)
		}
		res.StepTime = append(res.StepTime, stepMax)
	}

	// Finish: verify completeness and assemble the final image for free.
	out := raster.New(w, h)
	covered := 0
	for r, rs := range ranks {
		if err := rs.store.CheckComplete(sched.P); err != nil {
			return nil, err
		}
		for _, b := range rs.store.Blocks() {
			span := rs.store.Span(b)
			out.InsertSpan(span, rs.store.Frags(b)[0].Data)
			covered += span.Len()
		}
		res.PerRankTime[r] = rs.stepDone
		if rs.stepDone > res.Time {
			res.Time = rs.stepDone
		}
	}
	if covered != w*h {
		return nil, fmt.Errorf("simnet: final blocks cover %d of %d pixels", covered, w*h)
	}
	res.Image = out

	// Gather cost: every non-root rank ships its final blocks (raw) to
	// rank 0; under the one-port model the root's receive port drains the
	// messages one after another.
	gatherDone := ranks[0].stepDone
	rootPort := ranks[0].stepDone
	for r := 1; r < sched.P; r++ {
		rs := ranks[r]
		var bytes int64
		for _, b := range rs.store.Blocks() {
			bytes += int64(len(rs.store.Frags(b)[0].Data))
		}
		if bytes == 0 {
			continue
		}
		wireTime := p.Ts + float64(bytes)*p.TpPerByte
		arrive := maxf(rs.txFree, rs.stepDone) + wireTime
		if p.SinglePort {
			rootPort = maxf(rootPort, arrive-wireTime) + wireTime
			arrive = maxf(arrive, rootPort)
		}
		gatherDone = maxf(gatherDone, arrive)
	}
	res.GatherTime = gatherDone - res.Time
	if res.GatherTime < 0 {
		res.GatherTime = 0
	}
	if p.IncludeGather {
		res.Time += res.GatherTime
	}
	return res, nil
}

// halve propagates block readiness through a halving: children become
// ready when their parent was.
func (rs *rankState) halve() {
	next := make(map[schedule.Block]float64, 2*len(rs.ready))
	for b, t := range rs.ready {
		c0, c1 := b.Halves()
		next[c0], next[c1] = t, t
	}
	rs.ready = next
	rs.store.HalveAll()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
