// Package faulty is a fault-injection middleware for any comm.Comm fabric:
// it wraps a rank's endpoint and perturbs its traffic with seeded,
// deterministic faults — message drop, delivery delay/jitter, duplication,
// payload corruption and peer death — so the composition stack can be
// chaos-tested without a real lossy network.
//
// The middleware models a checksummed datagram transport: every payload is
// framed with a CRC-32C trailer at Send and validated at Recv, so an
// injected corruption is detected and discarded on delivery (like a NIC
// dropping a bad frame) rather than silently handed to the application.
// A detected-corrupt or dropped message therefore surfaces to the receiver
// the same way a real loss does: as a missed deadline.
//
// Drops interact with a bounded sender-side retransmission loop with
// exponential backoff — the reliability mechanism under test: a message
// survives if any of its 1+MaxResend transmission attempts escapes the drop
// probability, otherwise it is silently lost (the sender, like a datagram
// sender, is not told).
//
// Determinism: each rank derives its own rand stream from Plan.Seed, and a
// rank's faults depend only on its own call sequence, so a fixed seed
// reproduces the same fault pattern run after run (delivery *interleaving*
// of delayed messages still varies, which the tag-matching fabric absorbs).
package faulty

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"
	"time"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/comm"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/traceid"
)

// Plan describes the fault mix injected at one rank's endpoint. The zero
// value injects nothing and behaves like the wrapped fabric.
type Plan struct {
	// Seed roots the per-rank deterministic fault streams.
	Seed int64
	// Drop is the per-transmission-attempt probability in [0,1] that a
	// message (or one of its retransmissions) is dropped.
	Drop float64
	// MaxResend bounds the retransmission attempts after a dropped
	// transmission; 0 means a dropped message is simply lost.
	MaxResend int
	// Backoff is the initial delay between retransmission attempts,
	// doubling per attempt. Zero means 1ms.
	Backoff time.Duration
	// DelayProb is the probability that a delivered message is held back by
	// a uniform jitter in (0, MaxDelay] before reaching the receiver.
	DelayProb float64
	// MaxDelay bounds the injected delivery jitter. Zero disables delays.
	MaxDelay time.Duration
	// DupProb is the probability that a delivered message is delivered a
	// second time (receivers must tolerate duplicates).
	DupProb float64
	// CorruptProb is the probability that a delivered message has one
	// payload byte flipped in flight. The middleware's frame checksum
	// detects it and the receiver discards the frame, turning the
	// corruption into a loss.
	CorruptProb float64
	// DieAfterSends, when positive, kills the endpoint after that many
	// Send calls: subsequent operations return ErrDead — the injected
	// peer-death fault.
	DieAfterSends int
	// Brownout holds back every surviving delivery by a fixed delay — the
	// gray-failure model: the endpoint is slow on every message but never
	// dies and never loses data, which is invisible to purely silence-based
	// failure detection until a deadline fires. Stacks with DelayProb
	// jitter. Zero disables it.
	Brownout time.Duration
	// BrownoutAfterSends delays the onset of Brownout until this many Send
	// calls have completed at full speed — the mid-run brownout: early
	// traffic (handshakes, replica exchange) lands on time, then the
	// endpoint turns slow. Zero means browned out from the first send.
	BrownoutAfterSends int
	// Telemetry, when non-nil, receives the injected-fault counters
	// (retransmissions, losses, corruptions, CRC rejects) as they happen,
	// in addition to the Stats snapshot.
	Telemetry *telemetry.Recorder
}

// ErrDead is returned by every operation on an endpoint whose plan has
// killed it.
var ErrDead = errors.New("faulty: endpoint died (injected peer death)")

// Stats counts the faults an endpoint actually injected, so tests can
// assert the chaos they configured really happened.
type Stats struct {
	Dropped     int // transmission attempts dropped (including retries)
	Lost        int // messages lost after exhausting retransmissions
	Resent      int // retransmission attempts made
	Delayed     int // deliveries held back by jitter
	Duplicated  int
	Corrupted   int
	RejectedCRC int // inbound frames discarded by checksum validation
}

// Endpoint wraps an inner comm.Comm with fault injection.
type Endpoint struct {
	inner comm.Comm
	plan  Plan

	mu    sync.Mutex
	rng   *rand.Rand
	sent  int
	dead  bool
	stats Stats
}

var (
	_ comm.Comm      = (*Endpoint)(nil)
	_ comm.CtxSender = (*Endpoint)(nil)
)

// Wrap returns rank's endpoint perturbed by the plan. Every rank of a
// fabric should be wrapped with the same plan; the per-rank fault streams
// are derived from Plan.Seed and the rank index.
func Wrap(inner comm.Comm, plan Plan) *Endpoint {
	return &Endpoint{
		inner: inner,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed*1_000_003 + int64(inner.Rank()))),
	}
}

// Stats reports the faults injected so far.
func (e *Endpoint) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Rank implements comm.Comm.
func (e *Endpoint) Rank() int { return e.inner.Rank() }

// Size implements comm.Comm.
func (e *Endpoint) Size() int { return e.inner.Size() }

// roll draws the next fault decision under the endpoint lock.
func (e *Endpoint) roll(prob float64) bool {
	if prob <= 0 {
		return false
	}
	return e.rng.Float64() < prob
}

// crcTable is the Castagnoli polynomial table used for frame trailers.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frame copies payload into a pooled buffer and appends the CRC-32C
// trailer the receive path validates. The caller owns the returned buffer.
func frame(payload []byte) []byte {
	out := bufpool.Get(len(payload) + 4)
	copy(out, payload)
	binary.BigEndian.PutUint32(out[len(payload):], crc32.Checksum(payload, crcTable))
	return out
}

// unframe strips and validates the trailer; ok is false for a corrupt or
// impossibly short frame.
func unframe(buf []byte) (payload []byte, ok bool) {
	if len(buf) < 4 {
		return nil, false
	}
	payload = buf[:len(buf)-4]
	want := binary.BigEndian.Uint32(buf[len(buf)-4:])
	return payload, crc32.Checksum(payload, crcTable) == want
}

// Send implements comm.Comm: it applies death, corruption, drop/retry,
// delay and duplication faults, in that order, before handing surviving
// transmissions to the inner fabric.
func (e *Endpoint) Send(to, tag int, payload []byte) error {
	return e.SendCtx(to, tag, payload, traceid.Context{Step: -1, Tile: -1})
}

// SendCtx implements comm.CtxSender: the caller's trace context rides the
// first surviving delivery into the inner fabric, so the middleware is
// transparent to causal tracing. An injected duplicate is a distinct
// physical delivery and goes through the plain Send path, minting its own
// flow identity — exactly what a duplicated datagram looks like on a trace.
func (e *Endpoint) SendCtx(to, tag int, payload []byte, tc traceid.Context) error {
	e.mu.Lock()
	if e.dead {
		e.mu.Unlock()
		return fmt.Errorf("%w (rank %d)", ErrDead, e.inner.Rank())
	}
	e.sent++
	if e.plan.DieAfterSends > 0 && e.sent > e.plan.DieAfterSends {
		e.dead = true
		e.mu.Unlock()
		return fmt.Errorf("%w (rank %d)", ErrDead, e.inner.Rank())
	}
	buf := frame(payload)
	if e.roll(e.plan.CorruptProb) {
		e.stats.Corrupted++
		e.plan.Telemetry.Add(e.inner.Rank(), telemetry.CtrCorruptInjected, 1)
		buf[e.rng.Intn(len(buf))] ^= 0x40
	}
	// Decide the whole transmission schedule for this message up front so
	// the rng stream depends only on this rank's call order, never on
	// delivery timing.
	maxAttempts := 1 + e.plan.MaxResend
	if maxAttempts < 1 {
		maxAttempts = 1 // a negative MaxResend means no retries, not no sends
	}
	drops := 0
	for drops < maxAttempts && e.roll(e.plan.Drop) {
		drops++
	}
	lost := drops == maxAttempts
	e.stats.Dropped += drops
	if lost {
		e.stats.Lost++
		e.stats.Resent += drops - 1
		e.plan.Telemetry.Add(e.inner.Rank(), telemetry.CtrMsgsLost, 1)
		e.plan.Telemetry.Add(e.inner.Rank(), telemetry.CtrRetransmissions, int64(drops-1))
	} else {
		e.stats.Resent += drops
		e.plan.Telemetry.Add(e.inner.Rank(), telemetry.CtrRetransmissions, int64(drops))
	}
	delay := time.Duration(0)
	if !lost && e.roll(e.plan.DelayProb) && e.plan.MaxDelay > 0 {
		e.stats.Delayed++
		delay = time.Duration(e.rng.Int63n(int64(e.plan.MaxDelay))) + 1
	}
	if !lost && e.plan.Brownout > 0 && e.sent > e.plan.BrownoutAfterSends {
		if delay == 0 {
			e.stats.Delayed++
		}
		delay += e.plan.Brownout
	}
	dup := !lost && e.roll(e.plan.DupProb)
	if dup {
		e.stats.Duplicated++
	}
	backoff := e.plan.Backoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	e.mu.Unlock()

	if lost {
		// A datagram sender is not told about loss; the receiver's deadline
		// is the only witness.
		bufpool.Put(buf)
		return nil
	}
	// Pay the retransmission backoff for the attempts that were dropped.
	for a := 0; a < drops; a++ {
		time.Sleep(backoff)
		backoff *= 2
	}
	deliver := func() error { return comm.SendCtx(e.inner, to, tag, buf, tc) }
	redeliver := func() error { return e.inner.Send(to, tag, buf) }
	if delay > 0 {
		// The AfterFunc closures keep referencing buf after Send returns,
		// so a delayed frame is left to the garbage collector instead of
		// the pool — an injected-jitter-only cost.
		time.AfterFunc(delay, func() { deliver() })
		if dup {
			time.AfterFunc(delay+delay/2+1, func() { redeliver() })
		}
		return nil
	}
	// The inner fabric does not retain the frame past Send (it copies or
	// writes it out), so once every synchronous delivery is done the frame
	// can be recycled.
	err := deliver()
	if err == nil && dup {
		err = redeliver()
	}
	bufpool.Put(buf)
	return err
}

// recvFiltered retrieves messages from the inner fabric, unframes them and
// silently discards corrupt frames — re-entering the wait with the
// remaining time budget, so corruption surfaces as a deadline, not data.
func (e *Endpoint) recvFiltered(keys []comm.MsgKey, timeout time.Duration) (int, int, []byte, error) {
	e.mu.Lock()
	dead := e.dead
	e.mu.Unlock()
	if dead {
		return 0, 0, nil, fmt.Errorf("%w (rank %d)", ErrDead, e.inner.Rank())
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		remaining := time.Duration(0)
		if !deadline.IsZero() {
			remaining = time.Until(deadline)
			if remaining <= 0 {
				return 0, 0, nil, &comm.DeadlineError{Rank: e.inner.Rank(), Keys: keys, Timeout: timeout}
			}
		}
		from, tag, buf, err := e.inner.RecvAnyTimeout(keys, remaining)
		if err != nil {
			return 0, 0, nil, err
		}
		payload, ok := unframe(buf)
		if !ok {
			// The rejected frame is ours to recycle; the caller never sees it.
			bufpool.Put(buf)
			e.mu.Lock()
			e.stats.RejectedCRC++
			e.mu.Unlock()
			e.plan.Telemetry.Add(e.inner.Rank(), telemetry.CtrCRCRejects, 1)
			continue
		}
		// payload is buf minus the trailer with capacity intact, so the
		// caller's eventual bufpool.Put recycles the whole frame.
		return from, tag, payload, nil
	}
}

// Recv implements comm.Comm.
func (e *Endpoint) Recv(from, tag int) ([]byte, error) {
	return e.RecvTimeout(from, tag, 0)
}

// RecvTimeout implements comm.Comm.
func (e *Endpoint) RecvTimeout(from, tag int, timeout time.Duration) ([]byte, error) {
	_, _, payload, err := e.recvFiltered([]comm.MsgKey{{From: from, Tag: tag}}, timeout)
	return payload, err
}

// RecvAny implements comm.Comm.
func (e *Endpoint) RecvAny(keys []comm.MsgKey) (int, int, []byte, error) {
	return e.recvFiltered(keys, 0)
}

// RecvAnyTimeout implements comm.Comm.
func (e *Endpoint) RecvAnyTimeout(keys []comm.MsgKey, timeout time.Duration) (int, int, []byte, error) {
	return e.recvFiltered(keys, timeout)
}

// Counters implements comm.Comm, delegating to the inner fabric (framing
// overhead included — it is what travelled).
func (e *Endpoint) Counters() comm.Counters { return e.inner.Counters() }

// Close implements comm.Comm.
func (e *Endpoint) Close() error { return e.inner.Close() }
