package faulty

import (
	"fmt"
	"net"
	"sync"
)

// ConnPlan describes deterministic net.Conn-level faults — the transport
// layer's counterpart to the message-level Plan. Where Plan perturbs whole
// messages above a fabric, ConnPlan breaks the byte stream underneath one:
// connection resets and partial frame writes, the two faults a reliable
// session layer must mask by resuming and replaying. Triggers are
// write-call counts, not probabilities, so a test can place the fault at an
// exact position in the stream. The zero value injects nothing.
type ConnPlan struct {
	// CutAfterWrites closes the connection once that many Write calls have
	// succeeded: the next write fails with an injected-cut error and both
	// sides of the stream see the reset. Zero never cuts.
	CutAfterWrites int
	// PartialWriteAfter makes the Nth Write call deliver only the first
	// half of its buffer before closing the connection and returning an
	// error — the torn-frame fault: the receiver holds a prefix of a frame
	// it can never complete. Zero never tears.
	PartialWriteAfter int
}

// active reports whether the plan injects anything at all.
func (p ConnPlan) active() bool { return p.CutAfterWrites > 0 || p.PartialWriteAfter > 0 }

// WrapConn returns c with the plan's stream faults injected on the write
// path. An inactive plan returns c unchanged.
func WrapConn(c net.Conn, plan ConnPlan) net.Conn {
	if !plan.active() {
		return c
	}
	return &faultConn{Conn: c, plan: plan}
}

// faultConn counts writes and injects the planned stream fault. Reads and
// deadlines pass through to the embedded connection.
type faultConn struct {
	net.Conn
	plan ConnPlan

	mu     sync.Mutex
	writes int
}

func (f *faultConn) Write(b []byte) (int, error) {
	f.mu.Lock()
	f.writes++
	w := f.writes
	f.mu.Unlock()
	if f.plan.PartialWriteAfter > 0 && w == f.plan.PartialWriteAfter {
		// Half the bytes reach the wire, then the stream dies: the receiver
		// is left holding a torn frame, the sender a short-write error.
		n := 0
		if half := len(b) / 2; half > 0 {
			n, _ = f.Conn.Write(b[:half])
		}
		f.Conn.Close()
		return n, fmt.Errorf("faulty: injected partial write (%d of %d bytes)", n, len(b))
	}
	if f.plan.CutAfterWrites > 0 && w > f.plan.CutAfterWrites {
		f.Conn.Close()
		return 0, fmt.Errorf("faulty: injected connection cut after %d write(s)", f.plan.CutAfterWrites)
	}
	return f.Conn.Write(b)
}
