package faulty

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// pipePair returns both ends of an in-memory full-duplex connection.
func pipePair() (net.Conn, net.Conn) {
	return net.Pipe()
}

func TestWrapConnInactivePlanPassesThrough(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	if got := WrapConn(a, ConnPlan{}); got != a {
		t.Fatal("inactive plan wrapped the connection")
	}
}

func TestConnPlanCutAfterWrites(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	fc := WrapConn(a, ConnPlan{CutAfterWrites: 2})
	go io.Copy(io.Discard, b)
	for i := 0; i < 2; i++ {
		if _, err := fc.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d within budget: %v", i, err)
		}
	}
	_, err := fc.Write([]byte("doomed"))
	if err == nil || !strings.Contains(err.Error(), "injected connection cut") {
		t.Fatalf("third write: %v", err)
	}
	// The underlying connection is really closed, both for the writer...
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("underlying connection still writable after cut")
	}
}

func TestConnPlanPartialWrite(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	fc := WrapConn(a, ConnPlan{PartialWriteAfter: 2})
	received := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(b)
		received <- buf
	}()
	if _, err := fc.Write([]byte("whole")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	n, err := fc.Write([]byte("0123456789"))
	if err == nil || !strings.Contains(err.Error(), "injected partial write") {
		t.Fatalf("torn write error: %v", err)
	}
	if n != 5 {
		t.Fatalf("torn write reported %d bytes, want 5", n)
	}
	select {
	case buf := <-received:
		if string(buf) != "whole01234" {
			t.Fatalf("receiver saw %q, want the first write plus half the second", buf)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver never saw EOF after the injected close")
	}
	// A torn stream is dead: later writes fail.
	if _, err := fc.Write([]byte("after")); err == nil {
		t.Fatal("write succeeded on a torn connection")
	}
}

func TestConnPlanReadsPassThrough(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	fc := WrapConn(a, ConnPlan{CutAfterWrites: 100})
	errs := make(chan error, 1)
	go func() {
		_, err := b.Write([]byte("hello"))
		errs <- err
	}()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(fc, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read through wrapper: %q, %v", buf, err)
	}
	if err := <-errs; err != nil && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatal(err)
	}
}
