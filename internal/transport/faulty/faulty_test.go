package faulty

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rtcomp/internal/comm"
	"rtcomp/internal/transport/inproc"
)

func TestZeroPlanIsTransparent(t *testing.T) {
	err := inproc.Run(2, func(inner comm.Comm) error {
		c := Wrap(inner, Plan{})
		if c.Rank() != inner.Rank() || c.Size() != 2 {
			return fmt.Errorf("identity not preserved")
		}
		if c.Rank() == 0 {
			return c.Send(1, 5, []byte("payload"))
		}
		got, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(got) != "payload" {
			return fmt.Errorf("payload %q", got)
		}
		if s := c.Stats(); s != (Stats{}) {
			return fmt.Errorf("zero plan injected faults: %+v", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTripAndCorruptionDetection(t *testing.T) {
	payload := []byte("the quick brown fox")
	buf := frame(payload)
	got, ok := unframe(buf)
	if !ok || string(got) != string(payload) {
		t.Fatalf("clean frame rejected: ok=%v got=%q", ok, got)
	}
	for i := range buf {
		bad := make([]byte, len(buf))
		copy(bad, buf)
		bad[i] ^= 0x40
		if _, ok := unframe(bad); ok {
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
	if _, ok := unframe([]byte{1, 2}); ok {
		t.Fatal("truncated frame accepted")
	}
	empty := frame(nil)
	if got, ok := unframe(empty); !ok || len(got) != 0 {
		t.Fatal("empty payload frame broken")
	}
}

func TestCorruptionSurfacesAsDeadline(t *testing.T) {
	// CorruptProb 1 corrupts every frame; the receiver's CRC check must
	// reject them all and convert the damage into a deadline error.
	err := inproc.Run(2, func(inner comm.Comm) error {
		c := Wrap(inner, Plan{Seed: 1, CorruptProb: 1})
		if c.Rank() == 0 {
			return c.Send(1, 1, []byte("doomed"))
		}
		_, err := c.RecvTimeout(0, 1, 100*time.Millisecond)
		if !errors.Is(err, comm.ErrDeadline) {
			return fmt.Errorf("got %v, want deadline", err)
		}
		s := c.Stats()
		if s.RejectedCRC == 0 {
			return fmt.Errorf("no CRC rejections recorded: %+v", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDropWithoutResendIsSilentLoss(t *testing.T) {
	err := inproc.Run(2, func(inner comm.Comm) error {
		c := Wrap(inner, Plan{Seed: 1, Drop: 1})
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("gone")); err != nil {
				return fmt.Errorf("datagram sender must not see the loss: %v", err)
			}
			s := c.Stats()
			if s.Lost != 1 || s.Dropped != 1 {
				return fmt.Errorf("stats %+v", s)
			}
			return nil
		}
		_, err := c.RecvTimeout(0, 1, 100*time.Millisecond)
		if !errors.Is(err, comm.ErrDeadline) {
			return fmt.Errorf("got %v, want deadline", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRetransmissionDefeatsDrop(t *testing.T) {
	// Drop 0.5 with 20 resend attempts: loss probability 0.5^21 — the
	// message must get through every time over many sends.
	err := inproc.Run(2, func(inner comm.Comm) error {
		c := Wrap(inner, Plan{Seed: 42, Drop: 0.5, MaxResend: 20, Backoff: 10 * time.Microsecond})
		const n = 50
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, i, []byte{byte(i)}); err != nil {
					return err
				}
			}
			s := c.Stats()
			if s.Lost != 0 {
				return fmt.Errorf("lost %d messages despite 20 resends", s.Lost)
			}
			if s.Dropped == 0 || s.Resent == 0 {
				return fmt.Errorf("injection inactive: %+v", s)
			}
			return nil
		}
		for i := 0; i < n; i++ {
			got, err := c.RecvTimeout(0, i, 5*time.Second)
			if err != nil {
				return fmt.Errorf("msg %d: %v", i, err)
			}
			if len(got) != 1 || got[0] != byte(i) {
				return fmt.Errorf("msg %d: payload %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatesAndDelaysDeliver(t *testing.T) {
	err := inproc.Run(2, func(inner comm.Comm) error {
		c := Wrap(inner, Plan{Seed: 7, DupProb: 1, DelayProb: 1, MaxDelay: 2 * time.Millisecond})
		const n = 10
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, i, []byte{byte(i)}); err != nil {
					return err
				}
			}
			s := c.Stats()
			if s.Duplicated != n || s.Delayed != n {
				return fmt.Errorf("stats %+v", s)
			}
			return nil
		}
		for i := 0; i < n; i++ {
			// Each message arrives twice; both copies must carry the payload.
			for copies := 0; copies < 2; copies++ {
				got, err := c.RecvTimeout(0, i, 5*time.Second)
				if err != nil {
					return fmt.Errorf("msg %d copy %d: %v", i, copies, err)
				}
				if got[0] != byte(i) {
					return fmt.Errorf("msg %d copy %d: payload %v", i, copies, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDieAfterSends(t *testing.T) {
	done := make(chan struct{})
	err := inproc.Run(2, func(inner comm.Comm) error {
		if inner.Rank() == 1 {
			<-done
			return nil
		}
		defer close(done)
		c := Wrap(inner, Plan{Seed: 1, DieAfterSends: 2})
		if err := c.Send(1, 1, nil); err != nil {
			return err
		}
		if err := c.Send(1, 2, nil); err != nil {
			return err
		}
		if err := c.Send(1, 3, nil); !errors.Is(err, ErrDead) {
			return fmt.Errorf("third send: got %v, want ErrDead", err)
		}
		if err := c.Send(1, 4, nil); !errors.Is(err, ErrDead) {
			return fmt.Errorf("send after death: got %v, want ErrDead", err)
		}
		if _, err := c.RecvTimeout(1, 9, time.Millisecond); !errors.Is(err, ErrDead) {
			return fmt.Errorf("recv after death: got %v, want ErrDead", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaultStreamDeterminism(t *testing.T) {
	// The same seed and call sequence must yield the same fault decisions.
	plan := Plan{Seed: 99, Drop: 0.4, MaxResend: 3, Backoff: 10 * time.Microsecond,
		DupProb: 0.3, CorruptProb: 0.2, DelayProb: 0.2, MaxDelay: time.Millisecond}
	runOnce := func() Stats {
		var s Stats
		done := make(chan struct{})
		err := inproc.Run(2, func(inner comm.Comm) error {
			if inner.Rank() == 1 {
				// Keep the mailbox open until the sender finishes; it never
				// drains, but eager sends must have somewhere to land.
				<-done
				return nil
			}
			c := Wrap(inner, plan)
			defer close(done)
			for i := 0; i < 40; i++ {
				if err := c.Send(1, i, []byte{byte(i)}); err != nil {
					return err
				}
			}
			s = c.Stats()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	first := runOnce()
	if first == (Stats{}) {
		t.Fatal("plan injected nothing")
	}
	for trial := 0; trial < 3; trial++ {
		if got := runOnce(); got != first {
			t.Fatalf("trial %d: stats %+v != %+v", trial, got, first)
		}
	}
}

func TestSeedSeparatesRanks(t *testing.T) {
	// Different ranks draw from different streams: with a moderate drop
	// probability over many sends, two ranks making identical call
	// sequences should not produce identical fault patterns.
	stats := make([]Stats, 2)
	var senders sync.WaitGroup
	senders.Add(2)
	err := inproc.Run(3, func(inner comm.Comm) error {
		if inner.Rank() == 2 {
			senders.Wait() // hold the sink mailbox open for the eager senders
			return nil
		}
		defer senders.Done()
		c := Wrap(inner, Plan{Seed: 5, Drop: 0.5})
		for i := 0; i < 64; i++ {
			if err := c.Send(2, inner.Rank()*1000+i, []byte{1}); err != nil {
				return err
			}
		}
		stats[inner.Rank()] = c.Stats()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0] == stats[1] {
		t.Fatalf("ranks 0 and 1 injected identical fault patterns: %+v", stats[0])
	}
}

// TestBrownoutDelaysButDelivers pins the gray-failure model: every message
// survives (no losses), but each one is held back by at least the brownout
// delay — slow, never dead.
func TestBrownoutDelaysButDelivers(t *testing.T) {
	const brown = 30 * time.Millisecond
	err := inproc.Run(2, func(inner comm.Comm) error {
		c := Wrap(inner, Plan{Brownout: brown})
		if c.Rank() == 0 {
			return c.Send(1, 9, []byte("slow"))
		}
		t0 := time.Now()
		got, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if string(got) != "slow" {
			return fmt.Errorf("payload %q", got)
		}
		if waited := time.Since(t0); waited < brown/2 {
			return fmt.Errorf("delivery after %v, want a ~%v brownout hold", waited, brown)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBrownoutAfterSends pins the mid-run onset: sends up to the threshold
// land at full speed, the next one is held back by the brownout.
func TestBrownoutAfterSends(t *testing.T) {
	const brown = 40 * time.Millisecond
	err := inproc.Run(2, func(inner comm.Comm) error {
		c := Wrap(inner, Plan{Brownout: brown, BrownoutAfterSends: 1})
		if c.Rank() == 0 {
			if err := c.Send(1, 9, []byte("fast")); err != nil {
				return err
			}
			return c.Send(1, 10, []byte("slow"))
		}
		t0 := time.Now()
		if _, err := c.Recv(0, 9); err != nil {
			return err
		}
		if waited := time.Since(t0); waited >= brown/2 {
			return fmt.Errorf("pre-onset delivery after %v, want full speed", waited)
		}
		if _, err := c.Recv(0, 10); err != nil {
			return err
		}
		if waited := time.Since(t0); waited < brown/2 {
			return fmt.Errorf("post-onset delivery after %v, want a ~%v brownout hold", waited, brown)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
