// Package inproc implements the comm.Comm fabric inside a single process:
// every rank is a goroutine and messages travel through shared mailboxes.
// It is the fabric used by the wall-clock benchmarks and by every test that
// runs a composition in parallel.
package inproc

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/comm"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/traceid"
	"rtcomp/internal/transport/mbox"
)

// Fabric is a P-way in-process communicator. Create one with New and hand
// each rank's goroutine its endpoint from Endpoint.
type Fabric struct {
	size  int
	boxes []atomic.Pointer[mbox.Mailbox] // atomic: Reattach swaps a box while senders read it
	tel   *telemetry.Recorder
	seq   atomic.Uint32 // trace-context sequence mint, shared across ranks
}

// SetTelemetry attaches a recorder: every message hand-off records the send
// side of its causal flow and every consuming Recv the receive side, so a
// trace of the run carries cross-rank flow edges. Call before any endpoint
// is used; a nil recorder (the default) costs one pointer test per message.
func (f *Fabric) SetTelemetry(rec *telemetry.Recorder) { f.tel = rec }

// New creates a fabric with p ranks.
func New(p int) *Fabric {
	if p < 1 {
		panic("inproc: fabric needs p >= 1")
	}
	f := &Fabric{size: p, boxes: make([]atomic.Pointer[mbox.Mailbox], p)}
	for i := range f.boxes {
		f.boxes[i].Store(mbox.New())
	}
	return f
}

// Endpoint returns rank r's communicator endpoint.
func (f *Fabric) Endpoint(r int) comm.Comm {
	if r < 0 || r >= f.size {
		panic("inproc: rank out of range")
	}
	return &endpoint{fabric: f, rank: r, box: f.boxes[r].Load()}
}

// Reattach replaces rank r's mailbox with a fresh one and returns a new
// endpoint bound to it — the fabric-level join point for a spare taking over
// a dead rank's slot. The dead endpoint stays bound to (and may still close)
// its own retired mailbox, so a deferred Close on the old goroutine can
// never shut the spare's fresh box; senders observe the swap atomically and
// their next Put lands in the new mailbox. Call only after the previous
// incarnation's goroutine has returned.
func (f *Fabric) Reattach(r int) comm.Comm {
	if r < 0 || r >= f.size {
		panic("inproc: rank out of range")
	}
	box := mbox.New()
	f.boxes[r].Store(box)
	return &endpoint{fabric: f, rank: r, box: box}
}

type endpoint struct {
	fabric *Fabric
	rank   int
	box    *mbox.Mailbox // this incarnation's inbox, pinned at creation

	mu       sync.Mutex // counters may be bumped by delayed-delivery goroutines
	counters comm.Counters
}

var _ comm.Comm = (*endpoint)(nil)

// Rank implements comm.Comm.
func (e *endpoint) Rank() int { return e.rank }

// Size implements comm.Comm.
func (e *endpoint) Size() int { return e.fabric.size }

// Send implements comm.Comm.
func (e *endpoint) Send(to, tag int, payload []byte) error {
	return e.SendCtx(to, tag, payload, traceid.Context{Step: -1, Tile: -1})
}

// SendCtx implements comm.CtxSender: the hand-off into the destination
// mailbox is the flow's send point. A context without a sequence is minted
// here (origin = this rank); with telemetry disabled no context is carried
// and the path is identical to the pre-trace Send.
func (e *endpoint) SendCtx(to, tag int, payload []byte, tc traceid.Context) error {
	if to < 0 || to >= e.fabric.size {
		return errors.New("inproc: destination rank out of range")
	}
	if tel := e.fabric.tel; tel != nil {
		if !tc.Valid() {
			tc.Origin = e.rank
			tc.Seq = e.fabric.seq.Add(1)
		}
		tel.FlowSend(e.rank, to, tc.ID(), tc.Step, tc.Tile)
	} else {
		tc = traceid.Context{}
	}
	// Copy so the sender may reuse its buffer, as with a real network. The
	// copy is pooled: ownership passes to the mailbox and on to the
	// receiver, who may return it to the pool after use.
	buf := bufpool.Get(len(payload))
	copy(buf, payload)
	if err := e.fabric.boxes[to].Load().Put(mbox.Message{From: e.rank, Tag: tag, Payload: buf, Trace: tc}); err != nil {
		bufpool.Put(buf)
		if errors.Is(err, mbox.ErrClosed) {
			// The destination rank has shut down its endpoint: that is a
			// peer failure, typed the same way the TCP fabric types it.
			return &comm.PeerError{Rank: to, Err: err}
		}
		return err
	}
	e.mu.Lock()
	e.counters.MsgsSent++
	e.counters.BytesSent += int64(len(payload))
	e.mu.Unlock()
	return nil
}

// Recv implements comm.Comm.
func (e *endpoint) Recv(from, tag int) ([]byte, error) {
	return e.RecvTimeout(from, tag, 0)
}

// RecvTimeout implements comm.Comm.
func (e *endpoint) RecvTimeout(from, tag int, timeout time.Duration) ([]byte, error) {
	if from < 0 || from >= e.fabric.size {
		return nil, errors.New("inproc: source rank out of range")
	}
	msg, err := e.box.GetMsgUntil(from, tag, deadlineFor(timeout))
	if err != nil {
		if errors.Is(err, mbox.ErrTimeout) {
			err = &comm.DeadlineError{Rank: e.rank, Keys: []comm.MsgKey{{From: from, Tag: tag}}, Timeout: timeout}
		}
		return nil, err
	}
	e.noteRecv(msg)
	return msg.Payload, nil
}

// noteRecv bumps the receive counters and records the receive side of the
// message's causal flow — at the comm boundary, so the flow point lands
// inside the application's receive span.
func (e *endpoint) noteRecv(msg mbox.Message) {
	e.mu.Lock()
	e.counters.MsgsRecv++
	e.counters.BytesRecv += int64(len(msg.Payload))
	e.mu.Unlock()
	if tel := e.fabric.tel; tel != nil && msg.Trace.Valid() {
		tel.FlowRecv(e.rank, msg.From, msg.Trace.ID(), msg.Trace.Step, msg.Trace.Tile)
	}
}

// RecvAny implements comm.Comm.
func (e *endpoint) RecvAny(keys []comm.MsgKey) (int, int, []byte, error) {
	return e.RecvAnyTimeout(keys, 0)
}

// RecvAnyTimeout implements comm.Comm.
func (e *endpoint) RecvAnyTimeout(keys []comm.MsgKey, timeout time.Duration) (int, int, []byte, error) {
	for _, k := range keys {
		if k.From < 0 || k.From >= e.fabric.size {
			return 0, 0, nil, errors.New("inproc: source rank out of range")
		}
	}
	// mbox.Key aliases comm.MsgKey, so the receive set passes straight
	// through without a conversion allocation.
	msg, err := e.box.GetAnyUntil(keys, deadlineFor(timeout))
	if err != nil {
		if errors.Is(err, mbox.ErrTimeout) {
			err = &comm.DeadlineError{Rank: e.rank, Keys: keys, Timeout: timeout}
		}
		return 0, 0, nil, err
	}
	e.noteRecv(msg)
	return msg.From, msg.Tag, msg.Payload, nil
}

// deadlineFor converts a relative timeout into the mailbox's absolute
// deadline convention (zero = wait forever).
func deadlineFor(timeout time.Duration) time.Time {
	if timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(timeout)
}

// Counters implements comm.Comm.
func (e *endpoint) Counters() comm.Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counters
}

// Close implements comm.Comm.
func (e *endpoint) Close() error {
	e.box.Close(nil)
	return nil
}

// Run spawns fn for every rank on its own goroutine and waits for all of
// them, returning the combined error. It is the standard way to execute a
// parallel section on the in-process fabric.
func Run(p int, fn func(c comm.Comm) error) error {
	return RunTel(p, nil, fn)
}

// RunTel is Run with a telemetry recorder attached to the fabric, so every
// cross-rank message of the parallel section records its causal flow.
func RunTel(p int, rec *telemetry.Recorder, fn func(c comm.Comm) error) error {
	f := New(p)
	f.SetTelemetry(rec)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := f.Endpoint(r)
			defer ep.Close()
			errs[r] = fn(ep)
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}
