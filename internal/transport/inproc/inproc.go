// Package inproc implements the comm.Comm fabric inside a single process:
// every rank is a goroutine and messages travel through shared mailboxes.
// It is the fabric used by the wall-clock benchmarks and by every test that
// runs a composition in parallel.
package inproc

import (
	"errors"
	"sync"
	"time"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/comm"
	"rtcomp/internal/transport/mbox"
)

// Fabric is a P-way in-process communicator. Create one with New and hand
// each rank's goroutine its endpoint from Endpoint.
type Fabric struct {
	size  int
	boxes []*mbox.Mailbox
}

// New creates a fabric with p ranks.
func New(p int) *Fabric {
	if p < 1 {
		panic("inproc: fabric needs p >= 1")
	}
	f := &Fabric{size: p, boxes: make([]*mbox.Mailbox, p)}
	for i := range f.boxes {
		f.boxes[i] = mbox.New()
	}
	return f
}

// Endpoint returns rank r's communicator endpoint.
func (f *Fabric) Endpoint(r int) comm.Comm {
	if r < 0 || r >= f.size {
		panic("inproc: rank out of range")
	}
	return &endpoint{fabric: f, rank: r}
}

type endpoint struct {
	fabric *Fabric
	rank   int

	mu       sync.Mutex // counters may be bumped by delayed-delivery goroutines
	counters comm.Counters
}

var _ comm.Comm = (*endpoint)(nil)

// Rank implements comm.Comm.
func (e *endpoint) Rank() int { return e.rank }

// Size implements comm.Comm.
func (e *endpoint) Size() int { return e.fabric.size }

// Send implements comm.Comm.
func (e *endpoint) Send(to, tag int, payload []byte) error {
	if to < 0 || to >= e.fabric.size {
		return errors.New("inproc: destination rank out of range")
	}
	// Copy so the sender may reuse its buffer, as with a real network. The
	// copy is pooled: ownership passes to the mailbox and on to the
	// receiver, who may return it to the pool after use.
	buf := bufpool.Get(len(payload))
	copy(buf, payload)
	if err := e.fabric.boxes[to].Put(mbox.Message{From: e.rank, Tag: tag, Payload: buf}); err != nil {
		bufpool.Put(buf)
		if errors.Is(err, mbox.ErrClosed) {
			// The destination rank has shut down its endpoint: that is a
			// peer failure, typed the same way the TCP fabric types it.
			return &comm.PeerError{Rank: to, Err: err}
		}
		return err
	}
	e.mu.Lock()
	e.counters.MsgsSent++
	e.counters.BytesSent += int64(len(payload))
	e.mu.Unlock()
	return nil
}

// Recv implements comm.Comm.
func (e *endpoint) Recv(from, tag int) ([]byte, error) {
	return e.RecvTimeout(from, tag, 0)
}

// RecvTimeout implements comm.Comm.
func (e *endpoint) RecvTimeout(from, tag int, timeout time.Duration) ([]byte, error) {
	if from < 0 || from >= e.fabric.size {
		return nil, errors.New("inproc: source rank out of range")
	}
	payload, err := e.fabric.boxes[e.rank].GetUntil(from, tag, deadlineFor(timeout))
	if err != nil {
		if errors.Is(err, mbox.ErrTimeout) {
			err = &comm.DeadlineError{Rank: e.rank, Keys: []comm.MsgKey{{From: from, Tag: tag}}, Timeout: timeout}
		}
		return nil, err
	}
	e.mu.Lock()
	e.counters.MsgsRecv++
	e.counters.BytesRecv += int64(len(payload))
	e.mu.Unlock()
	return payload, nil
}

// RecvAny implements comm.Comm.
func (e *endpoint) RecvAny(keys []comm.MsgKey) (int, int, []byte, error) {
	return e.RecvAnyTimeout(keys, 0)
}

// RecvAnyTimeout implements comm.Comm.
func (e *endpoint) RecvAnyTimeout(keys []comm.MsgKey, timeout time.Duration) (int, int, []byte, error) {
	for _, k := range keys {
		if k.From < 0 || k.From >= e.fabric.size {
			return 0, 0, nil, errors.New("inproc: source rank out of range")
		}
	}
	// mbox.Key aliases comm.MsgKey, so the receive set passes straight
	// through without a conversion allocation.
	msg, err := e.fabric.boxes[e.rank].GetAnyUntil(keys, deadlineFor(timeout))
	if err != nil {
		if errors.Is(err, mbox.ErrTimeout) {
			err = &comm.DeadlineError{Rank: e.rank, Keys: keys, Timeout: timeout}
		}
		return 0, 0, nil, err
	}
	e.mu.Lock()
	e.counters.MsgsRecv++
	e.counters.BytesRecv += int64(len(msg.Payload))
	e.mu.Unlock()
	return msg.From, msg.Tag, msg.Payload, nil
}

// deadlineFor converts a relative timeout into the mailbox's absolute
// deadline convention (zero = wait forever).
func deadlineFor(timeout time.Duration) time.Time {
	if timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(timeout)
}

// Counters implements comm.Comm.
func (e *endpoint) Counters() comm.Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counters
}

// Close implements comm.Comm.
func (e *endpoint) Close() error {
	e.fabric.boxes[e.rank].Close(nil)
	return nil
}

// Run spawns fn for every rank on its own goroutine and waits for all of
// them, returning the combined error. It is the standard way to execute a
// parallel section on the in-process fabric.
func Run(p int, fn func(c comm.Comm) error) error {
	f := New(p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := f.Endpoint(r)
			defer ep.Close()
			errs[r] = fn(ep)
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}
