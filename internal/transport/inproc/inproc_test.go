package inproc

import (
	"bytes"
	"fmt"
	"testing"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/comm"
)

func TestPingPong(t *testing.T) {
	err := Run(2, func(c comm.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 5, []byte("ping")); err != nil {
				return err
			}
			got, err := c.Recv(1, 6)
			if err != nil {
				return err
			}
			if string(got) != "pong" {
				return fmt.Errorf("got %q", got)
			}
			return nil
		}
		got, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(got) != "ping" {
			return fmt.Errorf("got %q", got)
		}
		return c.Send(0, 6, []byte("pong"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	f := New(2)
	a, b := f.Endpoint(0), f.Endpoint(1)
	buf := []byte{1, 2, 3}
	if err := a.Send(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // mutate after send
	got, err := b.Recv(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("payload aliased sender buffer: %v", got)
	}
}

func TestBarrierAllRanks(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		phase := make([]int, p)
		err := Run(p, func(c comm.Comm) error {
			var seq comm.Sequencer
			for round := 0; round < 3; round++ {
				phase[c.Rank()] = round
				if err := comm.Barrier(c, &seq); err != nil {
					return err
				}
				// After the barrier, every rank must have entered `round`.
				for r := 0; r < p; r++ {
					if phase[r] < round {
						return fmt.Errorf("rank %d saw rank %d lagging at round %d", c.Rank(), r, round)
					}
				}
				// Second barrier: no rank may advance to the next round's
				// write while a peer is still reading this round's phases.
				if err := comm.Barrier(c, &seq); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestGather(t *testing.T) {
	p := 7
	err := Run(p, func(c comm.Comm) error {
		var seq comm.Sequencer
		payload := []byte{byte(c.Rank() * 3)}
		got, err := comm.Gather(c, &seq, 2, payload)
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if got != nil {
				return fmt.Errorf("non-root received gather output")
			}
			return nil
		}
		for r := 0; r < p; r++ {
			if len(got[r]) != 1 || got[r][0] != byte(r*3) {
				return fmt.Errorf("slot %d = %v", r, got[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	p := 5
	err := Run(p, func(c comm.Comm) error {
		var seq comm.Sequencer
		var payload []byte
		if c.Rank() == 1 {
			payload = []byte("hello")
		}
		got, err := comm.Bcast(c, &seq, 1, payload)
		if err != nil {
			return err
		}
		if string(got) != "hello" {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConsecutiveCollectivesDoNotCollide(t *testing.T) {
	err := Run(4, func(c comm.Comm) error {
		var seq comm.Sequencer
		for i := 0; i < 10; i++ {
			if err := comm.Barrier(c, &seq); err != nil {
				return err
			}
			if _, err := comm.Gather(c, &seq, i%4, []byte{byte(i)}); err != nil {
				return err
			}
			if _, err := comm.Bcast(c, &seq, (i+1)%4, []byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCounters(t *testing.T) {
	f := New(2)
	a, b := f.Endpoint(0), f.Endpoint(1)
	a.Send(1, 0, make([]byte, 100))
	a.Send(1, 1, make([]byte, 50))
	b.Recv(0, 0)
	ca, cb := a.Counters(), b.Counters()
	if ca.MsgsSent != 2 || ca.BytesSent != 150 {
		t.Fatalf("sender counters %+v", ca)
	}
	if cb.MsgsRecv != 1 || cb.BytesRecv != 100 {
		t.Fatalf("receiver counters %+v", cb)
	}
}

func TestOutOfRangeRanks(t *testing.T) {
	f := New(2)
	a := f.Endpoint(0)
	if err := a.Send(5, 0, nil); err == nil {
		t.Fatal("Send to rank 5 accepted")
	}
	if _, err := a.Recv(-1, 0); err == nil {
		t.Fatal("Recv from rank -1 accepted")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	err := Run(3, func(c comm.Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("rank 1 failed")
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed the error")
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		for _, root := range []int{0, p - 1} {
			err := Run(p, func(c comm.Comm) error {
				var seq comm.Sequencer
				vals := []int64{int64(c.Rank()), 1, int64(c.Rank() * c.Rank())}
				got, err := comm.ReduceSum(c, &seq, root, vals)
				if err != nil {
					return err
				}
				if c.Rank() != root {
					if got != nil {
						return fmt.Errorf("non-root received reduce output")
					}
					return nil
				}
				var wantSum, wantSq int64
				for r := 0; r < p; r++ {
					wantSum += int64(r)
					wantSq += int64(r * r)
				}
				if got[0] != wantSum || got[1] != int64(p) || got[2] != wantSq {
					return fmt.Errorf("reduce = %v, want [%d %d %d]", got, wantSum, p, wantSq)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestReduceSumRepeated(t *testing.T) {
	err := Run(4, func(c comm.Comm) error {
		var seq comm.Sequencer
		for i := 0; i < 5; i++ {
			got, err := comm.ReduceSum(c, &seq, 0, []int64{1})
			if err != nil {
				return err
			}
			if c.Rank() == 0 && got[0] != 4 {
				return fmt.Errorf("round %d: sum %d", i, got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPoolHandoffExclusivity is the race certificate for the buffer-ownership
// contract between the pool, the fabric and the mailbox: a sender recycles
// its payload immediately after Send (the fabric copies), a receiver
// scribbles over and recycles every payload it gets (the mailbox drops its
// reference on retrieval). With both sides churning the same pool size class
// as fast as they can, any retained reference — a stale mailbox slot, a
// Send that aliases instead of copying — surfaces as a data race under -race
// or as a torn pattern check.
func TestPoolHandoffExclusivity(t *testing.T) {
	const n, size = 4000, 1024
	err := Run(2, func(c comm.Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				buf := bufpool.Get(size)
				for j := range buf {
					buf[j] = byte(i)
				}
				if err := c.Send(1, 9, buf); err != nil {
					return err
				}
				// Send does not retain payload: this Put hands the buffer to
				// the next Get, which will overwrite it while message i may
				// still sit undelivered in rank 1's mailbox.
				bufpool.Put(buf)
			}
			return nil
		}
		for i := 0; i < n; i++ {
			payload, err := c.Recv(0, 9)
			if err != nil {
				return err
			}
			for j, b := range payload {
				if b != byte(i) {
					return fmt.Errorf("message %d byte %d = %#x, want %#x (pooled buffer reused while in flight)", i, j, b, byte(i))
				}
			}
			// The payload is exclusively ours: scribbling must not disturb
			// any message still pending in the mailbox.
			for j := range payload {
				payload[j] = 0xEE
			}
			bufpool.Put(payload)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
