package tcpnet

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rtcomp/internal/comm"
)

func TestRecvTimeoutReturnsTypedDeadline(t *testing.T) {
	runMesh(t, 2, func(c comm.Comm) error {
		if c.Rank() == 0 {
			start := time.Now()
			_, err := c.RecvTimeout(1, 42, 50*time.Millisecond)
			if !errors.Is(err, comm.ErrDeadline) {
				t.Errorf("got %v, want ErrDeadline", err)
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Errorf("deadline receive blocked for %v", elapsed)
			}
			// Unblock rank 1.
			return c.Send(1, 1, nil)
		}
		_, err := c.Recv(0, 1)
		return err
	})
}

func TestMeshTimeoutNamesMissingRanks(t *testing.T) {
	// Rank 0 comes up alone in a 3-rank mesh: its Start must fail within
	// the timeout and name the ranks that never arrived, not hang.
	addrs, err := LoopbackAddrs(3)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = Start(Config{Rank: 0, Addrs: addrs, DialTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("mesh setup succeeded with two ranks missing")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("mesh setup blocked for %v", elapsed)
	}
	msg := err.Error()
	if !strings.Contains(msg, "waiting for rank(s)") || !strings.Contains(msg, "1") || !strings.Contains(msg, "2") {
		t.Fatalf("timeout error does not attribute the missing ranks: %q", msg)
	}
}

func TestMeshLogsHandshakeProgress(t *testing.T) {
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, format)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := Start(Config{Rank: r, Addrs: addrs, DialTimeout: 10 * time.Second, Logf: logf})
			if err != nil {
				t.Error(err)
				return
			}
			ep.Close()
		}(r)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 {
		t.Fatal("mesh setup logged no per-peer progress")
	}
}

// dialAsRank performs the resume handshake by hand, impersonating a peer
// on a fresh session (epoch 1, nothing received).
func dialAsRank(t *testing.T, addr string, rank int) net.Conn {
	t.Helper()
	var conn net.Conn
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		conn, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	hello := encodeHello(rank, 1, 0)
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	var reply [replyLen]byte
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		t.Fatalf("resume reply: %v", err)
	}
	conn.SetReadDeadline(time.Time{})
	if epoch, recvSeq, err := parseResumeReply(reply[:]); err != nil || epoch != 1 || recvSeq != 0 {
		t.Fatalf("resume reply epoch %d recvSeq %d err %v, want 1, 0, nil", epoch, recvSeq, err)
	}
	return conn
}

// rawDataFrame hand-builds a v3 data frame (epoch 1, seq 1), optionally
// flipping bits in the checksum.
func rawDataFrame(tag int64, payload []byte, crcXOR uint32) []byte {
	frame := make([]byte, frameHeader+len(payload))
	encodeFrameHeader(frame[:frameHeader], ftData, 1, 1, 0, tag, payload)
	crc := binary.BigEndian.Uint32(frame[crcOffset:frameHeader])
	binary.BigEndian.PutUint32(frame[crcOffset:frameHeader], crc^crcXOR)
	copy(frame[frameHeader:], payload)
	return frame
}

func TestCorruptFrameFailsPeerWithTypedError(t *testing.T) {
	// A hand-built frame with a wrong checksum must poison exactly the
	// sending peer: the receiver's pending Recv fails with a PeerError
	// naming the rank instead of delivering garbage or hanging.
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	var ep *Endpoint
	var startErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Reconnection is disabled: a fake peer never resumes, and the test
		// asserts the checksum failure surfaces as a PeerError within its
		// receive deadline rather than after a reconnect budget.
		ep, startErr = Start(Config{Rank: 0, Addrs: addrs, DialTimeout: 10 * time.Second,
			Session: comm.SessionConfig{MaxReconnects: -1, HeartbeatInterval: -1}})
	}()
	conn := dialAsRank(t, addrs[0], 1)
	defer conn.Close()
	<-done
	if startErr != nil {
		t.Fatal(startErr)
	}
	defer ep.Close()

	if _, err := conn.Write(rawDataFrame(7, []byte("poisoned"), 0xDEADBEEF)); err != nil {
		t.Fatal(err)
	}

	_, err = ep.RecvTimeout(1, 7, 5*time.Second)
	if !errors.Is(err, comm.ErrPeer) {
		t.Fatalf("got %v, want a peer error", err)
	}
	var pe *comm.PeerError
	if !errors.As(err, &pe) || pe.Rank != 1 {
		t.Fatalf("peer error does not name rank 1: %v", err)
	}
}

func TestValidFrameWithChecksumDelivers(t *testing.T) {
	// The mirror-image control for the corruption test: the same hand-built
	// frame with a correct checksum must deliver the payload.
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	var ep *Endpoint
	var startErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Heartbeats off: the hand-rolled peer never sends any, so the idle
		// deadline must not cut the connection under the test.
		ep, startErr = Start(Config{Rank: 0, Addrs: addrs, DialTimeout: 10 * time.Second,
			Session: comm.SessionConfig{MaxReconnects: -1, HeartbeatInterval: -1}})
	}()
	conn := dialAsRank(t, addrs[0], 1)
	defer conn.Close()
	<-done
	if startErr != nil {
		t.Fatal(startErr)
	}
	defer ep.Close()

	if _, err := conn.Write(rawDataFrame(9, []byte("intact"), 0)); err != nil {
		t.Fatal(err)
	}
	got, err := ep.RecvTimeout(1, 9, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "intact" {
		t.Fatalf("payload %q", got)
	}
}

func TestBadHandshakeDoesNotConsumePeerSlot(t *testing.T) {
	// A stray connection with garbage where the handshake should be must be
	// rejected without claiming rank 1's slot: the real rank 1 connecting
	// afterwards completes the mesh.
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	var ep0 *Endpoint
	var err0 error
	done := make(chan struct{})
	go func() {
		defer close(done)
		ep0, err0 = Start(Config{Rank: 0, Addrs: addrs, DialTimeout: 10 * time.Second})
	}()
	// The stray: valid TCP, invalid magic.
	var stray net.Conn
	for attempt := 0; attempt < 100; attempt++ {
		stray, err = net.DialTimeout("tcp", addrs[0], time.Second)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	stray.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	defer stray.Close()

	ep1, err := Start(Config{Rank: 1, Addrs: addrs, DialTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer ep1.Close()
	<-done
	if err0 != nil {
		t.Fatal(err0)
	}
	defer ep0.Close()
	// The mesh works end to end despite the stray.
	if err := ep1.Send(0, 3, []byte("after-stray")); err != nil {
		t.Fatal(err)
	}
	got, err := ep0.RecvTimeout(1, 3, 5*time.Second)
	if err != nil || string(got) != "after-stray" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestDialRetryRidesOutSlowListener(t *testing.T) {
	// Rank 1 starts dialing before rank 0's listener exists; the bounded
	// retry with backoff must carry it through once rank 0 comes up.
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	eps := make([]*Endpoint, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		eps[1], errs[1] = Start(Config{Rank: 1, Addrs: addrs, DialTimeout: 10 * time.Second})
	}()
	time.Sleep(300 * time.Millisecond) // let rank 1 burn dial attempts
	wg.Add(1)
	go func() {
		defer wg.Done()
		eps[0], errs[0] = Start(Config{Rank: 0, Addrs: addrs, DialTimeout: 10 * time.Second})
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		defer eps[r].Close()
	}
	if err := eps[0].Send(1, 1, []byte("late")); err != nil {
		t.Fatal(err)
	}
	if got, err := eps[1].RecvTimeout(0, 1, 5*time.Second); err != nil || string(got) != "late" {
		t.Fatalf("got %q, %v", got, err)
	}
}
