package tcpnet

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/transport/mbox"
)

// readLoop drains one connection of one session epoch: parse frames, verify
// checksums, fold piggybacked acks into the replay ring, and hand data
// payloads to the mailbox through the dedup window. Any stream anomaly —
// read error, torn frame, bad header, CRC mismatch, epoch confusion, idle
// link past the heartbeat budget — is reported to the session, which
// decides between transparent resume and peer failure. The loop exits when
// its connection is superseded, broken, or the peer departs.
func (e *Endpoint) readLoop(s *session, c net.Conn, epoch uint32) {
	idle := time.Duration(0)
	if s.cfg.HeartbeatsEnabled() && s.cfg.ReadIdleTimeout > 0 {
		idle = s.cfg.ReadIdleTimeout
	}
	var hdr [frameHeader]byte
	for {
		if idle > 0 {
			c.SetReadDeadline(time.Now().Add(idle))
		}
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			s.connBroken(c, fmt.Errorf("tcpnet: read from rank %d: %w", s.peer, err))
			return
		}
		fi, err := parseFrameHeader(hdr[:])
		if err != nil {
			s.connBroken(c, fmt.Errorf("tcpnet: bad frame from rank %d: %w", s.peer, err))
			return
		}
		if fi.epoch != epoch {
			s.connBroken(c, fmt.Errorf("tcpnet: frame epoch %d from rank %d on connection of epoch %d",
				fi.epoch, s.peer, epoch))
			return
		}
		payload := bufpool.Get(int(fi.n))
		if fi.n > 0 {
			if idle > 0 {
				c.SetReadDeadline(time.Now().Add(idle))
			}
			if _, err := io.ReadFull(c, payload); err != nil {
				bufpool.Put(payload)
				s.connBroken(c, fmt.Errorf("tcpnet: read from rank %d: %w", s.peer, err))
				return
			}
		}
		if got := crc32.Update(fi.headerCRC, crcTable, payload); got != fi.wantCRC {
			bufpool.Put(payload)
			e.tel.Add(e.rank, telemetry.CtrCRCRejects, 1)
			s.connBroken(c, fmt.Errorf("tcpnet: frame from rank %d failed checksum (tag %d, %d bytes): got %08x want %08x",
				s.peer, fi.tag, fi.n, got, fi.wantCRC))
			return
		}
		s.processAck(fi.ack)
		switch fi.typ {
		case ftData:
			// The trace context rides into the mailbox with the message; the
			// receive side of the flow is recorded at the comm boundary when
			// a Recv consumes it, so duplicate-dropped replays (below) never
			// produce a phantom flow edge.
			accepted, err := e.box.PutSeq(mbox.Message{From: s.peer, Tag: int(fi.tag), Payload: payload, Trace: fi.tc}, fi.seq)
			if err != nil {
				bufpool.Put(payload)
				return // mailbox closed: endpoint teardown
			}
			if !accepted {
				// A replayed frame the dedup window already delivered. Drop it
				// but still re-ack below — the original ack may be exactly
				// what the outage swallowed.
				bufpool.Put(payload)
				e.tel.Add(e.rank, telemetry.CtrDupFramesDropped, 1)
			}
			s.noteRecvAndAck(fi.seq)
		case ftAck, ftHeartbeat:
			bufpool.Put(payload) // header-only; the piggybacked ack above was the message
		case ftBye:
			bufpool.Put(payload)
			s.depart()
			return
		}
	}
}

// acceptLoop accepts inbound connections for the endpoint's whole lifetime
// — mesh setup and any later resume — handing each to its own handshake
// goroutine so one slow or garbage dialer cannot block a legitimate peer.
// It exits when the listener closes.
func (e *Endpoint) acceptLoop(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go e.handleInbound(c)
	}
}

// handleInbound runs the acceptor side of the resume handshake on one
// inbound connection. Connections that present bad magic, an out-of-range
// rank, or a rank that should be accepting us instead are rejected without
// consuming any session state.
func (e *Endpoint) handleInbound(c net.Conn) {
	rank, epoch, recvSeq, err := readHello(c, e.size, e.hsTimeout)
	if err != nil {
		e.logf("tcpnet: rank %d rejected connection from %s: %v", e.rank, c.RemoteAddr(), err)
		c.Close()
		return
	}
	if rank <= e.rank {
		e.logf("tcpnet: rank %d rejected hello from rank %d (not a dialing rank)", e.rank, rank)
		c.Close()
		return
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	e.sessions[rank].resume(c, epoch, recvSeq)
}

// readHello reads and validates the dialer's resume hello under a deadline.
func readHello(c net.Conn, p int, timeout time.Duration) (rank int, epoch uint32, recvSeq uint64, err error) {
	c.SetReadDeadline(time.Now().Add(timeout))
	defer c.SetReadDeadline(time.Time{})
	var b [helloLen]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return 0, 0, 0, fmt.Errorf("hello read: %w", err)
	}
	return parseHello(b[:], p)
}

// dialResume opens one connection to a peer and runs the dialer side of the
// resume handshake: send the hello proposing an epoch, read back the
// adopted epoch and the peer's receive high-water mark. The overall
// deadline bounds the dial; the handshake itself gets at most hsTimeout.
func dialResume(addr string, rank int, epoch uint32, recvSeq uint64, hsTimeout time.Duration, deadline time.Time) (net.Conn, uint32, uint64, error) {
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return nil, 0, 0, errors.New("tcpnet: dial deadline exceeded")
	}
	c, err := net.DialTimeout("tcp", addr, remaining)
	if err != nil {
		return nil, 0, 0, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	hsDeadline := time.Now().Add(hsTimeout)
	if hsDeadline.After(deadline) {
		hsDeadline = deadline
	}
	c.SetDeadline(hsDeadline)
	hello := encodeHello(rank, epoch, recvSeq)
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return nil, 0, 0, fmt.Errorf("hello write: %w", err)
	}
	var reply [replyLen]byte
	if _, err := io.ReadFull(c, reply[:]); err != nil {
		c.Close()
		return nil, 0, 0, fmt.Errorf("resume reply: %w", err)
	}
	c.SetDeadline(time.Time{})
	gotEpoch, peerRecv, err := parseResumeReply(reply[:])
	if err != nil {
		c.Close()
		return nil, 0, 0, err
	}
	if gotEpoch != epoch {
		c.Close()
		return nil, 0, 0, fmt.Errorf("tcpnet: resume reply confirms epoch %d, proposed %d", gotEpoch, epoch)
	}
	return c, gotEpoch, peerRecv, nil
}

// dialMesh establishes the initial connection to one lower-ranked peer,
// retrying with exponential backoff until the mesh deadline — riding out
// listeners that are not up yet. Each attempt proposes the attempt number
// as the session epoch, so even a half-completed earlier handshake (the
// acceptor adopted, our read of the reply failed) is superseded cleanly.
// It returns the connection, adopted epoch, the peer's receive high-water
// mark (always 0 on a fresh mesh), and how many dials it took.
func dialMesh(addr string, rank int, backoff, hsTimeout time.Duration, deadline time.Time) (net.Conn, uint32, uint64, int, error) {
	maxBackoff := 64 * backoff
	var lastErr error
	for attempt := 1; ; attempt++ {
		if time.Until(deadline) <= 0 {
			if lastErr == nil {
				lastErr = errors.New("tcpnet: dial deadline exceeded")
			}
			return nil, 0, 0, attempt - 1, lastErr
		}
		c, epoch, peerRecv, err := dialResume(addr, rank, uint32(attempt), 0, hsTimeout, deadline)
		if err == nil {
			return c, epoch, peerRecv, attempt, nil
		}
		lastErr = err
		sleep := backoff
		if remaining := time.Until(deadline); remaining < sleep {
			sleep = remaining
		}
		if sleep > 0 {
			time.Sleep(sleep)
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// listenRetry binds addr, retrying briefly with backoff when the port is
// transiently taken — the gap between a port-0 probe (LoopbackAddrs) and
// the real bind, or a lingering socket from a just-killed process.
func listenRetry(addr string, deadline time.Time) (net.Listener, error) {
	backoff := 10 * time.Millisecond
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// ListenLoopback binds p loopback listeners on kernel-assigned ports and
// returns them alongside their addresses. Unlike LoopbackAddrs, the ports
// are never released between discovery and use — hand each listener to
// Start via Config.Listener and the bind race disappears entirely. On
// error, every already-bound listener is closed.
func ListenLoopback(p int) ([]net.Listener, []string, error) {
	lns := make([]net.Listener, 0, p)
	addrs := make([]string, 0, p)
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, nil, fmt.Errorf("tcpnet: loopback listen %d/%d: %w", i, p, err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return lns, addrs, nil
}
