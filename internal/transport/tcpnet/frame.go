package tcpnet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"rtcomp/internal/traceid"
)

// Wire format v4 — the reliable-session framing with causal trace context.
//
// Every frame opens with a fixed 53-byte header:
//
//	offset  size  field
//	0       1     type   (ftData, ftAck, ftHeartbeat, ftBye)
//	1       4     epoch  (session epoch the writing connection belongs to)
//	5       8     seq    (sender's data sequence number; 0 on non-data frames)
//	13      8     ack    (cumulative: highest data seq received from the peer)
//	21      8     tag    (two's complement int64; data frames only)
//	29      4     len    (payload length; 0 on non-data frames)
//	33      16    trace  (traceid.Context; all-zero flags when untraced)
//	49      4     crc    (CRC-32C over header[0:49] + payload)
//
// Data frames carry the tag-matched payload the compositor exchanges; every
// frame — data or not — piggybacks the cumulative ack, and standalone ack,
// heartbeat and bye frames are header-only. Sequence numbers start at 1 and
// increase by one per data frame, so the receiver's dedup window is a single
// high-water mark and the sender's replay ring prunes on a cumulative ack.
// The trace context links the frame to the send span that produced it — it
// survives replay, so a retransmitted frame carries its original identity —
// and is covered by the checksum like every other header field.
const (
	traceOffset = 33
	crcOffset   = traceOffset + traceid.WireSize
	frameHeader = crcOffset + 4
)

// Frame types.
const (
	ftData      byte = 1 // tag-matched payload, sequenced and replayable
	ftAck       byte = 2 // standalone cumulative acknowledgement
	ftHeartbeat byte = 3 // idle-link liveness probe
	ftBye       byte = 4 // clean departure: peer is closing, do not reconnect
)

// maxFrame bounds a single message payload (64 MiB), protecting against
// corrupt length headers.
const maxFrame = 64 << 20

// crcTable is the Castagnoli polynomial table used for frame checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameInfo is a parsed frame header. wantCRC is the checksum the frame
// claims; headerCRC is the CRC-32C of the header prefix, which the reader
// folds the payload into before comparing against wantCRC.
type frameInfo struct {
	typ       byte
	epoch     uint32
	seq       uint64
	ack       uint64
	tag       int64
	n         uint32
	tc        traceid.Context
	wantCRC   uint32
	headerCRC uint32
}

// parseFrameHeader validates and decodes one frame header. It rejects
// unknown types, payloads beyond maxFrame, and non-data frames that claim a
// payload or a sequence number — the structural checks; the checksum over
// header+payload is completed by the caller once the payload is read.
func parseFrameHeader(hdr []byte) (frameInfo, error) {
	var fi frameInfo
	if len(hdr) != frameHeader {
		return fi, fmt.Errorf("tcpnet: frame header is %d bytes, want %d", len(hdr), frameHeader)
	}
	fi.typ = hdr[0]
	fi.epoch = binary.BigEndian.Uint32(hdr[1:5])
	fi.seq = binary.BigEndian.Uint64(hdr[5:13])
	fi.ack = binary.BigEndian.Uint64(hdr[13:21])
	fi.tag = int64(binary.BigEndian.Uint64(hdr[21:29]))
	fi.n = binary.BigEndian.Uint32(hdr[29:33])
	tc, err := traceid.Decode(hdr[traceOffset:crcOffset])
	if err != nil {
		return fi, fmt.Errorf("tcpnet: frame trace context: %w", err)
	}
	fi.tc = tc
	fi.wantCRC = binary.BigEndian.Uint32(hdr[crcOffset:])
	fi.headerCRC = crc32.Checksum(hdr[:crcOffset], crcTable)
	switch fi.typ {
	case ftData:
		if fi.seq == 0 {
			return fi, fmt.Errorf("tcpnet: data frame with sequence 0")
		}
	case ftAck, ftHeartbeat, ftBye:
		if fi.n != 0 || fi.seq != 0 {
			return fi, fmt.Errorf("tcpnet: control frame type %d with seq %d and %d payload bytes", fi.typ, fi.seq, fi.n)
		}
	default:
		return fi, fmt.Errorf("tcpnet: unknown frame type %d", fi.typ)
	}
	if fi.n > maxFrame {
		return fi, fmt.Errorf("tcpnet: frame payload of %d bytes exceeds %d", fi.n, maxFrame)
	}
	return fi, nil
}

// encodeFrameHeader writes the v4 header for one frame into hdr with an
// empty trace context — the form every control frame and untraced data
// frame uses.
func encodeFrameHeader(hdr []byte, typ byte, epoch uint32, seq, ack uint64, tag int64, payload []byte) {
	encodeFrameHeaderCtx(hdr, typ, epoch, seq, ack, tag, payload, traceid.Context{})
}

// encodeFrameHeaderCtx writes the v4 header for one frame into hdr,
// embedding the trace context and the checksum over header prefix and
// payload.
func encodeFrameHeaderCtx(hdr []byte, typ byte, epoch uint32, seq, ack uint64, tag int64, payload []byte, tc traceid.Context) {
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:5], epoch)
	binary.BigEndian.PutUint64(hdr[5:13], seq)
	binary.BigEndian.PutUint64(hdr[13:21], ack)
	binary.BigEndian.PutUint64(hdr[21:29], uint64(tag))
	binary.BigEndian.PutUint32(hdr[29:traceOffset], uint32(len(payload)))
	tc.Encode(hdr[traceOffset:crcOffset])
	crc := crc32.Update(crc32.Checksum(hdr[:crcOffset], crcTable), crcTable, payload)
	binary.BigEndian.PutUint32(hdr[crcOffset:], crc)
}

// Resume handshake — how a connection (initial or re-established) binds to
// a session.
//
// The dialer (always the higher rank of the pair) opens every connection
// with a 24-byte hello: magic, its rank, the session epoch it proposes, and
// the highest data seq it has received from the acceptor. The acceptor
// replies with 16 bytes echoing the adopted epoch plus the highest data seq
// *it* has received, which tells the dialer exactly which unacked frames to
// replay. A fresh mesh connection is the degenerate resume: epoch 1,
// nothing received yet. Epochs are strictly increasing per session — the
// acceptor rejects a proposal at or below its current epoch, so a stale or
// duplicate resume can never hijack a live connection.
const (
	helloLen = 24
	replyLen = 16
)

// handshakeMagic opens every hello and reply; a connection that does not
// present it (a port scanner, a stale peer from another protocol version)
// is rejected with a clear error instead of being mistaken for a rank.
var handshakeMagic = [4]byte{'R', 'T', 'C', '4'}

// encodeHello builds the dialer's resume hello.
func encodeHello(rank int, epoch uint32, recvSeq uint64) [helloLen]byte {
	var b [helloLen]byte
	copy(b[:4], handshakeMagic[:])
	binary.BigEndian.PutUint64(b[4:12], uint64(rank))
	binary.BigEndian.PutUint32(b[12:16], epoch)
	binary.BigEndian.PutUint64(b[16:24], recvSeq)
	return b
}

// parseHello validates and decodes a resume hello from a dialing peer in a
// p-rank mesh.
func parseHello(b []byte, p int) (rank int, epoch uint32, recvSeq uint64, err error) {
	if len(b) != helloLen {
		return 0, 0, 0, fmt.Errorf("tcpnet: hello is %d bytes, want %d", len(b), helloLen)
	}
	if [4]byte(b[:4]) != handshakeMagic {
		return 0, 0, 0, fmt.Errorf("tcpnet: hello magic %q is not %q", b[:4], handshakeMagic[:])
	}
	r := binary.BigEndian.Uint64(b[4:12])
	if r >= uint64(p) {
		return 0, 0, 0, fmt.Errorf("tcpnet: hello from invalid rank %d", r)
	}
	epoch = binary.BigEndian.Uint32(b[12:16])
	if epoch == 0 {
		return 0, 0, 0, fmt.Errorf("tcpnet: hello proposes epoch 0")
	}
	return int(r), epoch, binary.BigEndian.Uint64(b[16:24]), nil
}

// encodeResumeReply builds the acceptor's reply: the adopted epoch and the
// highest data seq received so far (the dialer's replay cursor).
func encodeResumeReply(epoch uint32, recvSeq uint64) [replyLen]byte {
	var b [replyLen]byte
	copy(b[:4], handshakeMagic[:])
	binary.BigEndian.PutUint32(b[4:8], epoch)
	binary.BigEndian.PutUint64(b[8:16], recvSeq)
	return b
}

// parseResumeReply validates and decodes the acceptor's resume reply.
func parseResumeReply(b []byte) (epoch uint32, recvSeq uint64, err error) {
	if len(b) != replyLen {
		return 0, 0, fmt.Errorf("tcpnet: resume reply is %d bytes, want %d", len(b), replyLen)
	}
	if [4]byte(b[:4]) != handshakeMagic {
		return 0, 0, fmt.Errorf("tcpnet: reply magic %q is not %q", b[:4], handshakeMagic[:])
	}
	epoch = binary.BigEndian.Uint32(b[4:8])
	if epoch == 0 {
		return 0, 0, fmt.Errorf("tcpnet: reply confirms epoch 0")
	}
	return epoch, binary.BigEndian.Uint64(b[8:16]), nil
}
