package tcpnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/comm"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/traceid"
)

// sessState is a session's lifecycle position. A session starts connecting
// (mesh setup), spends its life active, dips into reconnecting across
// transient outages, and terminates exactly once: failed (the peer is
// poisoned and the recovery protocol takes over) or closed (local
// teardown).
type sessState int

const (
	stConnecting   sessState = iota // awaiting the first connection
	stActive                        // live connection, frames flowing
	stReconnecting                  // connection lost, resume in progress
	stFailed                        // gave up: peer poisoned via PeerError
	stClosed                        // local endpoint shut the session down
)

// unacked is one data frame pinned in the replay ring until the peer's
// cumulative ack covers it. The payload is a pooled copy owned by the
// session (returned to bufpool on ack, failure or close). The trace
// context travels with the entry so a replayed frame carries its original
// causal identity; sent timestamps the first transmission attempt and
// feeds the session RTT histogram when the ack lands.
type unacked struct {
	seq     uint64
	tag     int64
	payload []byte
	tc      traceid.Context
	sent    time.Time
}

// session is the reliable delivery layer for one peer: it numbers outgoing
// data frames, keeps them in a bounded ring until acknowledged, and — when
// the connection breaks for any reason (reset, CRC mismatch, partial
// write, idle link) — transparently re-establishes it under the resume
// handshake and replays the unacknowledged tail. The compositor above sees
// unchanged Send/Recv semantics; only an outage that exhausts the
// reconnect budget surfaces, as the same PeerError a dead rank produces.
type session struct {
	e      *Endpoint
	peer   int
	dialer bool // we redial on outage (peer rank below ours); else we re-accept
	cfg    comm.SessionConfig

	mu   sync.Mutex
	cond *sync.Cond

	state           sessState
	conn            net.Conn
	epoch           uint32 // current session epoch; bumped by every resume
	everConnected   bool
	reconnectActive bool // a redial/await goroutine owns the outage
	failErr         error

	nextSeq   uint64    // last data seq assigned (first frame is 1)
	ring      []unacked // unacked data frames, ascending seq
	acked     uint64    // highest of our seqs the peer has acknowledged
	recvSeq   uint64    // highest data seq accepted from the peer
	lastWrite time.Time // feeds the idle-heartbeat decision

	hdr [frameHeader]byte // frame-header scratch, guarded by mu
	vec [2][]byte         // net.Buffers backing for vectored writes

	rtt *telemetry.Histogram // data-frame send -> cumulative ack; nil without telemetry
}

func newSession(e *Endpoint, peer int) *session {
	s := &session{
		e:      e,
		peer:   peer,
		dialer: peer < e.rank,
		cfg:    e.scfg,
		state:  stConnecting,
		rtt:    e.tel.Hist(e.rank, telemetry.HistSessionRTT),
	}
	s.cond = sync.NewCond(&s.mu)
	if s.cfg.HeartbeatsEnabled() {
		go s.heartbeatLoop()
	}
	return s
}

// send queues one data frame: it pins a pooled copy of the payload in the
// replay ring (blocking while the window is full) and, when a connection
// is up, writes it out. During an outage the frame simply waits in the
// ring — the resume replay delivers it — so a transient break never
// surfaces to the caller. Only a failed or closed session returns an
// error.
func (s *session) send(tag int, payload []byte, tc traceid.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.state != stFailed && s.state != stClosed && len(s.ring) >= s.cfg.WindowFrames {
		s.cond.Wait()
	}
	switch s.state {
	case stClosed:
		return fmt.Errorf("tcpnet: endpoint closed")
	case stFailed:
		return &comm.PeerError{Rank: s.peer, Err: s.failErr}
	}
	s.nextSeq++
	buf := bufpool.Get(len(payload))
	copy(buf, payload)
	s.ring = append(s.ring, unacked{seq: s.nextSeq, tag: int64(tag), payload: buf, tc: tc, sent: time.Now()})
	if s.state == stActive {
		// A write failure resets the connection and leaves the frame ringed
		// for replay; the caller still sees success.
		s.writeFrameLocked(ftData, s.nextSeq, int64(tag), buf, tc)
	}
	return nil
}

// writeFrameLocked writes one frame — header plus optional payload — to
// the current connection under a write deadline, piggybacking the
// cumulative ack. Any error (including a short write, which leaves an
// unrecoverable torn frame on the stream) resets the connection; the
// session never keeps writing to a stream in an unknown state.
func (s *session) writeFrameLocked(typ byte, seq uint64, tag int64, payload []byte, tc traceid.Context) error {
	c := s.conn
	encodeFrameHeaderCtx(s.hdr[:], typ, s.epoch, seq, s.recvSeq, tag, payload, tc)
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	var err error
	if len(payload) == 0 {
		_, err = c.Write(s.hdr[:])
	} else {
		s.vec[0], s.vec[1] = s.hdr[:], payload
		bufs := net.Buffers(s.vec[:])
		_, err = bufs.WriteTo(c)
		s.vec[0], s.vec[1] = nil, nil // drop the payload reference
	}
	if err != nil {
		s.resetLocked(fmt.Errorf("tcpnet: write to rank %d: %w", s.peer, err))
		return err
	}
	c.SetWriteDeadline(time.Time{})
	s.lastWrite = time.Now()
	return nil
}

// ackLocked advances the cumulative ack from the peer, releasing every
// ring entry it covers and waking senders blocked on the window.
func (s *session) ackLocked(ack uint64) {
	if ack <= s.acked {
		return
	}
	s.acked = ack
	n := 0
	for n < len(s.ring) && s.ring[n].seq <= ack {
		if s.rtt != nil && !s.ring[n].sent.IsZero() {
			s.rtt.Observe(time.Since(s.ring[n].sent))
		}
		bufpool.Put(s.ring[n].payload)
		n++
	}
	if n > 0 {
		rest := copy(s.ring, s.ring[n:])
		for i := rest; i < len(s.ring); i++ {
			s.ring[i] = unacked{}
		}
		s.ring = s.ring[:rest]
	}
	s.cond.Broadcast()
}

// processAck folds a frame's piggybacked cumulative ack into the ring.
// Acks are monotonic, so one arriving via a stale connection is harmless.
func (s *session) processAck(ack uint64) {
	if ack == 0 {
		return
	}
	s.mu.Lock()
	s.ackLocked(ack)
	s.mu.Unlock()
}

// noteRecvAndAck records a received data seq and writes a standalone
// cumulative ack so the sender can prune its replay ring even when no
// reverse data traffic piggybacks one. Duplicates re-ack too — the
// original ack may be what the outage swallowed.
func (s *session) noteRecvAndAck(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq > s.recvSeq {
		s.recvSeq = seq
	}
	if s.state != stActive || s.conn == nil {
		return
	}
	if s.writeFrameLocked(ftAck, 0, 0, nil, traceid.Context{}) == nil {
		s.e.tel.Add(s.e.rank, telemetry.CtrAcksSent, 1)
	}
}

// connBroken is the read loop's failure report. A connection that has
// already been superseded (resume won the race) or belongs to our own
// teardown is ignored; a live one is reset and reconnection begins.
func (s *session) connBroken(c net.Conn, cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != c || s.state != stActive {
		return
	}
	if s.e.isClosed() {
		return
	}
	s.e.logf("tcpnet: rank %d connection to rank %d broke: %v", s.e.rank, s.peer, cause)
	s.resetLocked(cause)
}

// resetLocked tears down the current connection and starts the resume
// machinery: the dialer side redials, the acceptor side arms a timer and
// waits to be redialled. With reconnection disabled (MaxReconnects < 0)
// or during endpoint teardown it fails the peer immediately — the
// pre-session behaviour.
func (s *session) resetLocked(cause error) {
	if s.state != stActive {
		return
	}
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	if !s.cfg.ReconnectEnabled() || s.e.isClosed() {
		s.failLocked(cause, true)
		return
	}
	s.state = stReconnecting
	if !s.reconnectActive {
		s.reconnectActive = true
		if s.dialer {
			go s.redialLoop(cause)
		} else {
			go s.awaitResume(cause)
		}
	}
}

// redialLoop re-establishes a broken session from the dialing side:
// bounded attempts with exponential backoff, each proposing a strictly
// higher epoch (epoch + attempt, so a half-completed earlier attempt the
// acceptor already adopted can never wedge the proposal sequence). The
// budget exhausting fails the peer.
func (s *session) redialLoop(cause error) {
	e := s.e
	deadline := time.Now().Add(s.cfg.ReconnectTimeout)
	backoff := e.dialBackoff
	maxBackoff := 64 * backoff
	lastErr := cause
	for attempt := 1; attempt <= s.cfg.MaxReconnects; attempt++ {
		s.mu.Lock()
		if s.state != stReconnecting {
			s.reconnectActive = false
			s.mu.Unlock()
			return
		}
		proposal := s.epoch + uint32(attempt)
		recvSeq := s.recvSeq
		s.mu.Unlock()
		c, epoch, peerRecv, err := dialResume(e.addrs[s.peer], e.rank, proposal, recvSeq, e.hsTimeout, deadline)
		e.tel.Add(e.rank, telemetry.CtrDialAttempts, 1)
		if err == nil {
			if s.adopt(c, epoch, peerRecv) {
				e.logf("tcpnet: rank %d resumed session with rank %d (epoch %d, attempt %d)",
					e.rank, s.peer, epoch, attempt)
			}
			return
		}
		lastErr = err
		if !time.Now().Before(deadline) {
			break
		}
		sleep := backoff
		if remaining := time.Until(deadline); remaining < sleep {
			sleep = remaining
		}
		time.Sleep(sleep)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
	s.mu.Lock()
	s.reconnectActive = false
	if s.state == stReconnecting {
		s.failLocked(fmt.Errorf("tcpnet: could not resume session with rank %d within %v/%d attempt(s): %w",
			s.peer, s.cfg.ReconnectTimeout, s.cfg.MaxReconnects, lastErr), true)
	}
	s.mu.Unlock()
}

// awaitResume is the acceptor side of an outage: the peer redials us, so
// all we arm is the deadline after which a silent peer is declared dead.
func (s *session) awaitResume(cause error) {
	deadline := time.Now().Add(s.cfg.ReconnectTimeout)
	t := time.AfterFunc(s.cfg.ReconnectTimeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer t.Stop()
	s.mu.Lock()
	for s.state == stReconnecting && time.Now().Before(deadline) {
		s.cond.Wait()
	}
	s.reconnectActive = false
	if s.state == stReconnecting {
		s.failLocked(fmt.Errorf("tcpnet: no resume from rank %d within %v: %w",
			s.peer, s.cfg.ReconnectTimeout, cause), true)
	}
	s.mu.Unlock()
}

// resume is the acceptor-side handshake completion: validate the epoch
// proposal (strictly increasing, so stale or duplicate resumes die here),
// tell the dialer how far we have received, and adopt the connection.
func (s *session) resume(c net.Conn, epoch uint32, peerRecvSeq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == stClosed || s.state == stFailed || epoch <= s.epoch {
		c.Close()
		return
	}
	reply := encodeResumeReply(epoch, s.recvSeq)
	c.SetWriteDeadline(time.Now().Add(s.e.hsTimeout))
	if _, err := c.Write(reply[:]); err != nil {
		c.Close()
		return
	}
	c.SetWriteDeadline(time.Time{})
	first := !s.everConnected
	if s.adoptLocked(c, epoch, peerRecvSeq) {
		if first {
			s.e.logf("tcpnet: rank %d accepted rank %d", s.e.rank, s.peer)
		} else {
			s.e.logf("tcpnet: rank %d re-accepted rank %d (epoch %d)", s.e.rank, s.peer, epoch)
		}
	}
}

// adopt binds a freshly handshaken connection to the session from the
// dialing side.
func (s *session) adopt(c net.Conn, epoch uint32, peerRecvSeq uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adoptLocked(c, epoch, peerRecvSeq)
}

// adoptLocked installs a connection: prune the ring to the peer's receive
// high-water mark, replay the unacknowledged tail in order, and hand the
// connection to a fresh read loop. The replay happens under the session
// lock so no new Send can interleave a higher seq mid-replay.
func (s *session) adoptLocked(c net.Conn, epoch uint32, peerRecvSeq uint64) bool {
	if s.state == stClosed || s.state == stFailed {
		c.Close()
		return false
	}
	if s.e.wrapConn != nil {
		c = s.e.wrapConn(s.peer, c)
	}
	if s.conn != nil {
		s.conn.Close() // superseded; its read loop's error report is ignored
	}
	resumed := s.everConnected
	s.conn = c
	s.epoch = epoch
	s.everConnected = true
	s.state = stActive
	s.reconnectActive = false
	s.lastWrite = time.Now()
	s.ackLocked(peerRecvSeq) // the peer already holds these frames
	if resumed {
		s.e.tel.Add(s.e.rank, telemetry.CtrReconnects, 1)
		s.e.tel.Flight(s.e.rank, telemetry.FlightReconnect, telemetry.StepNone, -1, s.peer, "session resumed")
	}
	replayed := 0
	for i := 0; i < len(s.ring) && s.state == stActive; i++ {
		u := s.ring[i]
		if s.writeFrameLocked(ftData, u.seq, u.tag, u.payload, u.tc) != nil {
			break // the write reset the session; the next resume replays
		}
		replayed++
	}
	if replayed > 0 {
		s.e.tel.Add(s.e.rank, telemetry.CtrReplayedFrames, int64(replayed))
		if s.cfg.OnReplay != nil {
			s.cfg.OnReplay(s.peer, replayed)
		}
	}
	s.cond.Broadcast()
	if s.state != stActive {
		return false
	}
	go s.e.readLoop(s, c, epoch)
	return true
}

// failLocked terminates the session: the peer is poisoned in the mailbox
// with a PeerError (the signal the degradation policies and the recovery
// protocol key on), ring buffers are recycled, and blocked senders wake.
// abnormal distinguishes a mid-run fault (counted) from a clean departure.
func (s *session) failLocked(cause error, abnormal bool) {
	if s.state == stClosed || s.state == stFailed {
		return
	}
	s.state = stFailed
	s.failErr = cause
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.freeRingLocked()
	s.cond.Broadcast()
	if abnormal && !s.e.isClosed() {
		s.e.tel.Add(s.e.rank, telemetry.CtrPeerFailures, 1)
		s.e.tel.Flight(s.e.rank, telemetry.FlightSessionDown, telemetry.StepNone, -1, s.peer, "session failed")
	}
	s.e.box.Fail(s.peer, &comm.PeerError{Rank: s.peer, Err: cause})
}

// depart handles a bye frame: the peer is closing cleanly, so pending
// receives from it fail with a PeerError but nothing reconnects and no
// mid-run failure is counted — ordinary end-of-run traffic.
func (s *session) depart() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failLocked(fmt.Errorf("tcpnet: rank %d departed (closed its endpoint)", s.peer), false)
}

// heartbeatLoop keeps an idle link observably alive: when nothing has been
// written for an interval, a heartbeat frame goes out. The peer's read-idle
// deadline then distinguishes a silently dropped link (no frames at all)
// from a healthy-but-quiet one, and the heartbeat's piggybacked ack keeps
// replay rings pruned during one-directional traffic.
func (s *session) heartbeatLoop() {
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for range ticker.C {
		s.mu.Lock()
		if s.state == stClosed || s.state == stFailed {
			s.mu.Unlock()
			return
		}
		if s.state == stActive && time.Since(s.lastWrite) >= s.cfg.HeartbeatInterval {
			if s.writeFrameLocked(ftHeartbeat, 0, 0, nil, traceid.Context{}) == nil {
				s.e.tel.Add(s.e.rank, telemetry.CtrHeartbeats, 1)
			}
		}
		s.mu.Unlock()
	}
}

// drain blocks until every data frame in the replay ring has been
// acknowledged, the session terminates, or the deadline passes. A clean
// Close must drain first: frames the peer has not acked may still be in
// flight, and closing the socket while inbound acks sit unread makes the
// kernel tear the stream down with an RST — destroying exactly those
// frames. An outage mid-drain is fine: the resume replays and the ack
// eventually lands, or the budget exhausts and the wait ends.
func (s *session) drain(deadline time.Time) {
	t := time.AfterFunc(time.Until(deadline), func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer t.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for (s.state == stActive || s.state == stReconnecting) &&
		len(s.ring) > 0 && time.Now().Before(deadline) {
		s.cond.Wait()
	}
}

// close shuts the session down locally. sendBye distinguishes a clean
// Close (the peer is told not to reconnect) from an injected crash (Kill),
// where the peer must discover the death through the failure path.
func (s *session) close(sendBye bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == stClosed {
		return
	}
	prev := s.state
	s.state = stClosed
	if sendBye && prev == stActive && s.conn != nil {
		encodeFrameHeader(s.hdr[:], ftBye, s.epoch, 0, s.recvSeq, 0, nil)
		s.conn.SetWriteDeadline(time.Now().Add(time.Second))
		s.conn.Write(s.hdr[:]) // best effort; the close below is the fallback signal
	}
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.freeRingLocked()
	s.cond.Broadcast()
}

// freeRingLocked recycles every pinned replay payload.
func (s *session) freeRingLocked() {
	for i := range s.ring {
		bufpool.Put(s.ring[i].payload)
		s.ring[i] = unacked{}
	}
	s.ring = s.ring[:0]
}

// waitConnected blocks until the session has seen its first connection,
// terminated, or the deadline passed; it reports whether the session ever
// connected.
func (s *session) waitConnected(deadline time.Time) bool {
	t := time.AfterFunc(time.Until(deadline), func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer t.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.everConnected && s.state != stClosed && s.state != stFailed && time.Now().Before(deadline) {
		s.cond.Wait()
	}
	return s.everConnected
}
