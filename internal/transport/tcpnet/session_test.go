package tcpnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtcomp/internal/comm"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/transport/faulty"
)

// startPair brings up a 2-rank mesh over pre-bound loopback listeners,
// applying mod (if non-nil) to each rank's config before Start.
func startPair(t *testing.T, mod func(rank int, cfg *Config)) [2]*Endpoint {
	t.Helper()
	lns, addrs, err := ListenLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	var eps [2]*Endpoint
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := Config{Rank: r, Addrs: addrs, Listener: lns[r], DialTimeout: 10 * time.Second}
			if mod != nil {
				mod(r, &cfg)
			}
			eps[r], errs[r] = Start(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return eps
}

func TestSessionResumesAfterCut(t *testing.T) {
	// Severing the live connection mid-run — from either side — must be
	// invisible to Send/Recv: the session resumes, replays the unacked
	// tail, and every message arrives exactly once, in order.
	rec := telemetry.New()
	eps := startPair(t, func(rank int, cfg *Config) {
		cfg.Telemetry = rec
		cfg.DialBackoff = 2 * time.Millisecond
	})
	defer eps[0].Close()
	defer eps[1].Close()

	cuts := 0
	for i := 0; i < 30; i++ {
		payload := []byte(fmt.Sprintf("msg-%d", i))
		if err := eps[0].Send(1, i, payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if err := eps[1].Send(0, 1000+i, payload); err != nil {
			t.Fatalf("reverse send %d: %v", i, err)
		}
		// Alternate which side performs the cut so both the redial and the
		// re-accept paths are exercised.
		if i%5 == 2 {
			var cut bool
			if i%2 == 0 {
				cut = eps[1].CutConn(0) // dialer side cuts
			} else {
				cut = eps[0].CutConn(1) // acceptor side cuts
			}
			if cut {
				cuts++
			}
		}
		got, err := eps[1].RecvTimeout(0, i, 10*time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if string(got) != string(payload) {
			t.Fatalf("recv %d: got %q want %q", i, got, payload)
		}
		got, err = eps[0].RecvTimeout(1, 1000+i, 10*time.Second)
		if err != nil {
			t.Fatalf("reverse recv %d: %v", i, err)
		}
		if string(got) != string(payload) {
			t.Fatalf("reverse recv %d: got %q want %q", i, got, payload)
		}
	}
	if cuts == 0 {
		t.Fatal("no live connection was ever cut; the test exercised nothing")
	}
	ctr := rec.Counters()
	rc := ctr[telemetry.CounterKey{Rank: 0, Step: telemetry.StepNone, Name: telemetry.CtrReconnects}] +
		ctr[telemetry.CounterKey{Rank: 1, Step: telemetry.StepNone, Name: telemetry.CtrReconnects}]
	if rc == 0 {
		t.Fatalf("cut %d connections but no session reconnect was recorded: %v", cuts, ctr)
	}
	pf := ctr[telemetry.CounterKey{Rank: 0, Step: telemetry.StepNone, Name: telemetry.CtrPeerFailures}] +
		ctr[telemetry.CounterKey{Rank: 1, Step: telemetry.StepNone, Name: telemetry.CtrPeerFailures}]
	if pf != 0 {
		t.Fatalf("transient cuts escalated to %d peer failure(s)", pf)
	}
}

func TestPartialWriteResetsAndReplays(t *testing.T) {
	// Regression for the pre-session Send bug: a partial frame write left
	// the connection open with a torn frame on the stream. The session must
	// instead reset the connection on any failed write and replay the frame
	// intact on the resumed connection.
	rec := telemetry.New()
	var wraps int32
	var replayPeer, replayFrames int32
	eps := startPair(t, func(rank int, cfg *Config) {
		cfg.Telemetry = rec
		cfg.DialBackoff = 2 * time.Millisecond
		if rank == 0 {
			cfg.Session.OnReplay = func(peer, frames int) {
				atomic.StoreInt32(&replayPeer, int32(peer))
				atomic.AddInt32(&replayFrames, int32(frames))
			}
			cfg.WrapConn = func(peer int, c net.Conn) net.Conn {
				if atomic.AddInt32(&wraps, 1) == 1 {
					// First connection only: tear the second write (the
					// payload of the first data frame) in half.
					return faulty.WrapConn(c, faulty.ConnPlan{PartialWriteAfter: 2})
				}
				return c
			}
		}
	})
	defer eps[0].Close()
	defer eps[1].Close()

	if err := eps[0].Send(1, 5, []byte("replay-me")); err != nil {
		t.Fatalf("send through torn write: %v", err)
	}
	got, err := eps[1].RecvTimeout(0, 5, 10*time.Second)
	if err != nil {
		t.Fatalf("recv after replay: %v", err)
	}
	if string(got) != "replay-me" {
		t.Fatalf("replayed payload %q", got)
	}
	// The frame arrived exactly once.
	if _, err := eps[1].RecvTimeout(0, 5, 100*time.Millisecond); !errors.Is(err, comm.ErrDeadline) {
		t.Fatalf("second delivery of a replayed frame: %v", err)
	}
	// And traffic keeps flowing on the resumed connection.
	if err := eps[0].Send(1, 6, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if got, err := eps[1].RecvTimeout(0, 6, 10*time.Second); err != nil || string(got) != "after" {
		t.Fatalf("post-resume traffic: %q, %v", got, err)
	}
	ctr := rec.Counters()
	if n := ctr[telemetry.CounterKey{Rank: 0, Step: telemetry.StepNone, Name: telemetry.CtrReplayedFrames}]; n < 1 {
		t.Fatalf("replayed_frames = %d, want >= 1", n)
	}
	if n := ctr[telemetry.CounterKey{Rank: 0, Step: telemetry.StepNone, Name: telemetry.CtrReconnects}]; n < 1 {
		t.Fatalf("reconnects = %d, want >= 1", n)
	}
	// The OnReplay hook fired with the peer and a sane frame count: this
	// is the signal gray-failure health scoring hangs off.
	if n := atomic.LoadInt32(&replayFrames); n < 1 {
		t.Fatalf("OnReplay frames = %d, want >= 1", n)
	}
	if p := atomic.LoadInt32(&replayPeer); p != 1 {
		t.Fatalf("OnReplay peer = %d, want 1", p)
	}
}

func TestDuplicateFrameDropped(t *testing.T) {
	// A replayed frame the receiver already delivered must be dropped by
	// the dedup window (and counted), never delivered twice.
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.New()
	var ep *Endpoint
	var startErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		ep, startErr = Start(Config{Rank: 0, Addrs: addrs, DialTimeout: 10 * time.Second, Telemetry: rec,
			Session: comm.SessionConfig{MaxReconnects: -1, HeartbeatInterval: -1}})
	}()
	conn := dialAsRank(t, addrs[0], 1)
	defer conn.Close()
	<-done
	if startErr != nil {
		t.Fatal(startErr)
	}
	defer ep.Close()

	frame := rawDataFrame(7, []byte("once"), 0)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil { // the replayed duplicate
		t.Fatal(err)
	}
	got, err := ep.RecvTimeout(1, 7, 5*time.Second)
	if err != nil || string(got) != "once" {
		t.Fatalf("first delivery: %q, %v", got, err)
	}
	if _, err := ep.RecvTimeout(1, 7, 200*time.Millisecond); !errors.Is(err, comm.ErrDeadline) {
		t.Fatalf("duplicate was delivered: %v", err)
	}
	if n := rec.Counters()[telemetry.CounterKey{Rank: 0, Step: telemetry.StepNone, Name: telemetry.CtrDupFramesDropped}]; n != 1 {
		t.Fatalf("dup_frames_dropped = %d, want 1", n)
	}
}

func TestSendBlocksOnFullWindow(t *testing.T) {
	// The replay ring is bounded: with WindowFrames unacked frames
	// outstanding, Send must block until an ack drains the ring — the
	// backpressure that stops an outage from pinning unbounded memory.
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	var ep *Endpoint
	var startErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		ep, startErr = Start(Config{Rank: 0, Addrs: addrs, DialTimeout: 10 * time.Second,
			Session: comm.SessionConfig{WindowFrames: 4, MaxReconnects: -1, HeartbeatInterval: -1}})
	}()
	conn := dialAsRank(t, addrs[0], 1) // never acks until told to
	defer conn.Close()
	<-done
	if startErr != nil {
		t.Fatal(startErr)
	}
	defer ep.Close()

	for i := 0; i < 4; i++ {
		if err := ep.Send(1, i, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d within window: %v", i, err)
		}
	}
	unblocked := make(chan error, 1)
	go func() {
		unblocked <- ep.Send(1, 4, []byte{4})
	}()
	select {
	case err := <-unblocked:
		t.Fatalf("send past a full window returned early: %v", err)
	case <-time.After(200 * time.Millisecond):
		// still blocked, as it must be
	}
	// Ack everything sent so far; the ring drains and the send completes.
	var hdr [frameHeader]byte
	encodeFrameHeader(hdr[:], ftAck, 1, 0, 4, 0, nil)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatalf("send after ack: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send stayed blocked after the window drained")
	}
}

func TestKillExhaustsBudgetAndFailsPeer(t *testing.T) {
	// A peer that dies for real — no listener, no resume — must exhaust the
	// reconnect budget and surface as the same PeerError a pre-session
	// connection loss produced, handing the failure to the recovery layer.
	rec := telemetry.New()
	eps := startPair(t, func(rank int, cfg *Config) {
		cfg.Telemetry = rec
		cfg.DialBackoff = 2 * time.Millisecond
		cfg.Session = comm.SessionConfig{ReconnectTimeout: time.Second, MaxReconnects: 3}
	})
	defer eps[0].Close()

	// Confirm the mesh is live, then crash rank 1 without a bye.
	if err := eps[1].Send(0, 1, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[0].RecvTimeout(1, 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	eps[1].Kill()

	start := time.Now()
	_, err := eps[0].RecvTimeout(1, 99, 15*time.Second)
	if !errors.Is(err, comm.ErrPeer) {
		t.Fatalf("got %v, want a peer error", err)
	}
	var pe *comm.PeerError
	if !errors.As(err, &pe) || pe.Rank != 1 {
		t.Fatalf("peer error does not name rank 1: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("budget exhaustion took %v", elapsed)
	}
	if n := rec.Counters()[telemetry.CounterKey{Rank: 0, Step: telemetry.StepNone, Name: telemetry.CtrPeerFailures}]; n < 1 {
		t.Fatalf("peer failure not counted: %d", n)
	}
}

func TestCloseSendsByeCleanDeparture(t *testing.T) {
	// A clean Close announces departure with a bye frame: the peer's
	// pending receives fail with a PeerError, but nothing reconnects and no
	// mid-run failure is counted — end-of-run traffic, not an outage.
	rec := telemetry.New()
	eps := startPair(t, func(rank int, cfg *Config) {
		cfg.Telemetry = rec
	})
	defer eps[0].Close()

	if err := eps[1].Send(0, 1, []byte("bye soon")); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[0].RecvTimeout(1, 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	eps[1].Close()
	_, err := eps[0].RecvTimeout(1, 50, 5*time.Second)
	if !errors.Is(err, comm.ErrPeer) {
		t.Fatalf("got %v, want a peer error after peer departure", err)
	}
	ctr := rec.Counters()
	if n := ctr[telemetry.CounterKey{Rank: 0, Step: telemetry.StepNone, Name: telemetry.CtrPeerFailures}]; n != 0 {
		t.Fatalf("clean departure counted as %d peer failure(s)", n)
	}
	if n := ctr[telemetry.CounterKey{Rank: 0, Step: telemetry.StepNone, Name: telemetry.CtrReconnects}]; n != 0 {
		t.Fatalf("clean departure triggered %d reconnect(s)", n)
	}
}

func TestCloseDrainsUnackedFrames(t *testing.T) {
	// A rank that finishes early Sends its last frames and Closes
	// immediately. Close must drain the replay ring — wait for the peer's
	// acks — before touching the socket: closing with inbound acks still
	// unread makes the kernel RST the stream, and an RST destroys exactly
	// the unacked frames still in flight. Regression for a gather payload
	// lost to an early Close (found by rtsim -chaos -conn-reset).
	eps := startPair(t, nil)
	defer eps[0].Close()

	// Reverse traffic rank 0 -> rank 1 seeds rank 1's receive buffer with
	// data and standalone acks — the unread bytes that provoke the RST.
	for i := 0; i < 4; i++ {
		if err := eps[0].Send(1, 100+i, []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	const n = 8
	for i := 0; i < n; i++ {
		if err := eps[1].Send(0, i, payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	eps[1].Close() // must not outrun the unacked frames

	for i := 0; i < n; i++ {
		got, err := eps[0].RecvTimeout(1, i, 5*time.Second)
		if err != nil {
			t.Fatalf("recv %d after peer close: %v", i, err)
		}
		if len(got) != len(payload) || got[len(got)-1] != payload[len(payload)-1] {
			t.Fatalf("recv %d: corrupted payload (%d bytes)", i, len(got))
		}
	}
}
