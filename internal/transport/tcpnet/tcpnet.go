// Package tcpnet implements the comm.Comm fabric over raw TCP sockets — the
// hand-rolled message-passing substrate standing in for the SP2's MPL/MPI
// layer. Every pair of ranks shares one TCP connection carrying
// length-prefixed frames with a tag header; a reader goroutine per
// connection feeds a tag-matching mailbox.
//
// Topology: rank i listens on Addrs[i]; every rank j dials every rank i < j
// and announces itself with an 8-byte rank handshake, so the full mesh
// needs P*(P-1)/2 connections.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rtcomp/internal/comm"
	"rtcomp/internal/transport/mbox"
)

// Config describes one rank's view of the cluster.
type Config struct {
	// Rank is this process's rank in [0, len(Addrs)).
	Rank int
	// Addrs lists every rank's listen address, index = rank.
	Addrs []string
	// DialTimeout bounds the whole mesh setup. Zero means 30s.
	DialTimeout time.Duration
}

// maxFrame bounds a single message payload (64 MiB), protecting against
// corrupt length headers.
const maxFrame = 64 << 20

// Endpoint is the TCP-backed communicator endpoint.
type Endpoint struct {
	rank  int
	size  int
	box   *mbox.Mailbox
	conns []*peerConn // index = peer rank; nil at own rank
	ln    net.Listener

	mu       sync.Mutex
	counters comm.Counters
	closed   bool
}

var _ comm.Comm = (*Endpoint)(nil)

type peerConn struct {
	mu sync.Mutex // serialises frame writes
	c  net.Conn
}

// Start brings up this rank's listener, connects the mesh and returns when
// every peer connection is established.
func Start(cfg Config) (*Endpoint, error) {
	p := len(cfg.Addrs)
	if p < 1 || cfg.Rank < 0 || cfg.Rank >= p {
		return nil, fmt.Errorf("tcpnet: bad config: rank %d of %d", cfg.Rank, p)
	}
	timeout := cfg.DialTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)

	ep := &Endpoint{
		rank:  cfg.Rank,
		size:  p,
		box:   mbox.New(),
		conns: make([]*peerConn, p),
	}
	if p == 1 {
		return ep, nil
	}

	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("tcpnet: rank %d listen %s: %w", cfg.Rank, cfg.Addrs[cfg.Rank], err)
	}
	ep.ln = ln

	// Accept connections from higher ranks in the background.
	type accepted struct {
		peer int
		conn net.Conn
		err  error
	}
	wantAccepts := p - 1 - cfg.Rank
	acceptCh := make(chan accepted, wantAccepts)
	go func() {
		for i := 0; i < wantAccepts; i++ {
			c, err := ln.Accept()
			if err != nil {
				acceptCh <- accepted{err: err}
				return
			}
			var hdr [8]byte
			if _, err := io.ReadFull(c, hdr[:]); err != nil {
				acceptCh <- accepted{err: fmt.Errorf("handshake read: %w", err)}
				return
			}
			peer := int(binary.BigEndian.Uint64(hdr[:]))
			if peer <= cfg.Rank || peer >= p {
				acceptCh <- accepted{err: fmt.Errorf("handshake from invalid rank %d", peer)}
				return
			}
			acceptCh <- accepted{peer: peer, conn: c}
		}
	}()

	// Dial lower ranks, retrying until their listeners are up.
	for peer := 0; peer < cfg.Rank; peer++ {
		conn, err := dialWithRetry(cfg.Addrs[peer], deadline)
		if err != nil {
			ep.Close()
			return nil, fmt.Errorf("tcpnet: rank %d dial rank %d: %w", cfg.Rank, peer, err)
		}
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], uint64(cfg.Rank))
		if _, err := conn.Write(hdr[:]); err != nil {
			ep.Close()
			return nil, fmt.Errorf("tcpnet: rank %d handshake to %d: %w", cfg.Rank, peer, err)
		}
		ep.conns[peer] = &peerConn{c: conn}
	}

	for i := 0; i < wantAccepts; i++ {
		select {
		case a := <-acceptCh:
			if a.err != nil {
				ep.Close()
				return nil, fmt.Errorf("tcpnet: rank %d accept: %w", cfg.Rank, a.err)
			}
			ep.conns[a.peer] = &peerConn{c: a.conn}
		case <-time.After(time.Until(deadline)):
			ep.Close()
			return nil, fmt.Errorf("tcpnet: rank %d timed out waiting for peers", cfg.Rank)
		}
	}

	for peer, pc := range ep.conns {
		if pc != nil {
			go ep.readLoop(peer, pc.c)
		}
	}
	return ep, nil
}

func dialWithRetry(addr string, deadline time.Time) (net.Conn, error) {
	var lastErr error
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if lastErr == nil {
				lastErr = errors.New("deadline exceeded")
			}
			return nil, lastErr
		}
		c, err := net.DialTimeout("tcp", addr, remaining)
		if err == nil {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			return c, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
}

// Frame layout: 8-byte tag (two's complement int64), 4-byte payload length,
// payload bytes.
const frameHeader = 12

func (e *Endpoint) readLoop(peer int, c net.Conn) {
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			// A dead peer only poisons receives from that peer; already
			// delivered messages and other connections stay live.
			e.box.Fail(peer, fmt.Errorf("tcpnet: connection to rank %d: %w", peer, err))
			return
		}
		tag := int(int64(binary.BigEndian.Uint64(hdr[:8])))
		n := binary.BigEndian.Uint32(hdr[8:])
		if n > maxFrame {
			e.box.Fail(peer, fmt.Errorf("tcpnet: frame from rank %d exceeds %d bytes", peer, maxFrame))
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(c, payload); err != nil {
			e.box.Fail(peer, fmt.Errorf("tcpnet: connection to rank %d: %w", peer, err))
			return
		}
		if err := e.box.Put(mbox.Message{From: peer, Tag: tag, Payload: payload}); err != nil {
			return
		}
	}
}

// Rank implements comm.Comm.
func (e *Endpoint) Rank() int { return e.rank }

// Size implements comm.Comm.
func (e *Endpoint) Size() int { return e.size }

// Send implements comm.Comm.
func (e *Endpoint) Send(to, tag int, payload []byte) error {
	if to < 0 || to >= e.size || to == e.rank {
		return fmt.Errorf("tcpnet: invalid destination rank %d", to)
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("tcpnet: payload of %d bytes exceeds frame limit", len(payload))
	}
	pc := e.conns[to]
	if pc == nil {
		return fmt.Errorf("tcpnet: no connection to rank %d", to)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint64(frame[:8], uint64(int64(tag)))
	binary.BigEndian.PutUint32(frame[8:12], uint32(len(payload)))
	copy(frame[frameHeader:], payload)
	pc.mu.Lock()
	_, err := pc.c.Write(frame)
	pc.mu.Unlock()
	if err != nil {
		return fmt.Errorf("tcpnet: send to rank %d: %w", to, err)
	}
	e.mu.Lock()
	e.counters.MsgsSent++
	e.counters.BytesSent += int64(len(payload))
	e.mu.Unlock()
	return nil
}

// Recv implements comm.Comm.
func (e *Endpoint) Recv(from, tag int) ([]byte, error) {
	if from < 0 || from >= e.size || from == e.rank {
		return nil, fmt.Errorf("tcpnet: invalid source rank %d", from)
	}
	payload, err := e.box.Get(from, tag)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.counters.MsgsRecv++
	e.counters.BytesRecv += int64(len(payload))
	e.mu.Unlock()
	return payload, nil
}

// RecvAny implements comm.Comm.
func (e *Endpoint) RecvAny(keys []comm.MsgKey) (int, int, []byte, error) {
	mk := make([]mbox.Key, len(keys))
	for i, k := range keys {
		if k.From < 0 || k.From >= e.size || k.From == e.rank {
			return 0, 0, nil, fmt.Errorf("tcpnet: invalid source rank %d", k.From)
		}
		mk[i] = mbox.Key{From: k.From, Tag: k.Tag}
	}
	msg, err := e.box.GetAny(mk)
	if err != nil {
		return 0, 0, nil, err
	}
	e.mu.Lock()
	e.counters.MsgsRecv++
	e.counters.BytesRecv += int64(len(msg.Payload))
	e.mu.Unlock()
	return msg.From, msg.Tag, msg.Payload, nil
}

// Counters implements comm.Comm.
func (e *Endpoint) Counters() comm.Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counters
}

// Close implements comm.Comm.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.box.Close(nil)
	if e.ln != nil {
		e.ln.Close()
	}
	for _, pc := range e.conns {
		if pc != nil && pc.c != nil {
			pc.c.Close()
		}
	}
	return nil
}

// LoopbackAddrs returns p distinct loopback addresses with OS-assigned
// ports, for single-machine multi-endpoint tests: it binds p listeners on
// port 0, records the addresses, and closes them. There is a small race
// window before the real listeners bind, acceptable for tests and demos.
func LoopbackAddrs(p int) ([]string, error) {
	addrs := make([]string, p)
	lns := make([]net.Listener, p)
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}
