// Package tcpnet implements the comm.Comm fabric over raw TCP sockets — the
// hand-rolled message-passing substrate standing in for the SP2's MPL/MPI
// layer. Every pair of ranks shares one reliable session carrying
// sequence-numbered frames with a tag header and a CRC-32C checksum; a
// reader goroutine per connection feeds a tag-matching, duplicate-dropping
// mailbox.
//
// Topology: rank i listens on Addrs[i]; every rank j dials every rank i < j
// and binds the connection to the pair's session with a resume handshake
// (magic, rank, epoch, receive high-water mark), so the full mesh needs
// P*(P-1)/2 connections. Dial and handshake are retried with exponential
// backoff until the mesh deadline; a peer that never appears produces a
// rank-attributed error, never a silent hang.
//
// Reliability: the session layer (session.go) masks transient faults below
// the compositor's recovery protocol. Unacknowledged frames wait in a
// bounded replay ring; when a connection breaks — reset, torn frame,
// checksum mismatch, silent link — the higher rank redials, the lower rank
// re-accepts, and the unacked tail is replayed under a fresh session epoch
// while the receiver's dedup window drops anything it already delivered.
// Send/Recv semantics are unchanged through any survivable outage; only an
// outage that exhausts the reconnect budget surfaces, as the same PeerError
// a dead rank produces, handing the problem to the recovery protocol.
package tcpnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rtcomp/internal/comm"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/traceid"
	"rtcomp/internal/transport/mbox"
)

// Config describes one rank's view of the cluster.
type Config struct {
	// Rank is this process's rank in [0, len(Addrs)).
	Rank int
	// Addrs lists every rank's listen address, index = rank. The addresses
	// of lower ranks are also the redial targets after a connection loss.
	Addrs []string
	// DialTimeout bounds the whole mesh setup. Zero means 30s.
	DialTimeout time.Duration
	// HandshakeTimeout bounds one connection's handshake exchange, so a
	// silent or stray connection cannot stall the accept loop. Zero means
	// 10s (clamped to the mesh deadline).
	HandshakeTimeout time.Duration
	// DialBackoff is the initial retry backoff after a failed dial or
	// handshake; it doubles per attempt up to 64x. Zero means 10ms.
	DialBackoff time.Duration
	// Session tunes the reliable session layer: replay window size,
	// reconnection budget, heartbeats. The zero value means defaults (see
	// comm.SessionConfig); set MaxReconnects to a negative value to disable
	// reconnection entirely and fail peers on the first break.
	Session comm.SessionConfig
	// Listener, when non-nil, is this rank's already-bound listener, used
	// instead of binding Addrs[Rank] — the race-free path for tests and
	// single-machine runs (see ListenLoopback). Start takes ownership and
	// closes it with the endpoint.
	Listener net.Listener
	// WrapConn, when non-nil, wraps every established connection to the
	// given peer after its handshake completes — the fault-injection seam
	// the chaos tests use (see faulty.WrapConn). Each re-established
	// connection is wrapped anew.
	WrapConn func(peer int, c net.Conn) net.Conn
	// Logf, when non-nil, receives per-peer mesh setup and session progress
	// (dial attempts, handshakes, breaks, resumes, stragglers) — the
	// observable heartbeat that distinguishes a slow peer from a dead one.
	Logf func(format string, args ...any)
	// Telemetry, when non-nil, receives transport counters: dial attempts
	// (including retries and redials), session reconnects, replayed and
	// duplicate-dropped frames, acks, heartbeats, and mid-run peer
	// failures.
	Telemetry *telemetry.Recorder
}

// Endpoint is the TCP-backed communicator endpoint.
type Endpoint struct {
	rank     int
	size     int
	box      *mbox.Mailbox
	sessions []*session // index = peer rank; nil at own rank
	ln       net.Listener
	tel      *telemetry.Recorder
	seq      atomic.Uint32 // trace-context sequence mint for this rank's sends

	addrs       []string
	dialBackoff time.Duration
	hsTimeout   time.Duration
	scfg        comm.SessionConfig
	wrapConn    func(peer int, c net.Conn) net.Conn
	logf        func(format string, args ...any)

	mu       sync.Mutex
	counters comm.Counters
	closed   bool
}

var _ comm.Comm = (*Endpoint)(nil)

// Start brings up this rank's listener, connects the mesh and returns when
// every peer session has established its first connection.
func Start(cfg Config) (*Endpoint, error) {
	p := len(cfg.Addrs)
	if p < 1 || cfg.Rank < 0 || cfg.Rank >= p {
		if cfg.Listener != nil {
			cfg.Listener.Close()
		}
		return nil, fmt.Errorf("tcpnet: bad config: rank %d of %d", cfg.Rank, p)
	}
	timeout := cfg.DialTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	hsTimeout := cfg.HandshakeTimeout
	if hsTimeout == 0 {
		hsTimeout = 10 * time.Second
	}
	if hsTimeout > timeout {
		hsTimeout = timeout
	}
	backoff := cfg.DialBackoff
	if backoff == 0 {
		backoff = 10 * time.Millisecond
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	deadline := time.Now().Add(timeout)

	ep := &Endpoint{
		rank:        cfg.Rank,
		size:        p,
		box:         mbox.New(),
		sessions:    make([]*session, p),
		tel:         cfg.Telemetry,
		addrs:       append([]string(nil), cfg.Addrs...),
		dialBackoff: backoff,
		hsTimeout:   hsTimeout,
		scfg:        cfg.Session.Resolved(),
		wrapConn:    cfg.WrapConn,
		logf:        logf,
	}
	if p == 1 {
		if cfg.Listener != nil {
			cfg.Listener.Close()
		}
		return ep, nil
	}

	ln := cfg.Listener
	if ln == nil {
		// A transiently taken port (the LoopbackAddrs probe gap, a lingering
		// socket from a killed process) gets a short retry budget before the
		// bind failure is reported.
		listenDeadline := time.Now().Add(2 * time.Second)
		if listenDeadline.After(deadline) {
			listenDeadline = deadline
		}
		var err error
		ln, err = listenRetry(cfg.Addrs[cfg.Rank], listenDeadline)
		if err != nil {
			return nil, fmt.Errorf("tcpnet: rank %d listen %s: %w", cfg.Rank, cfg.Addrs[cfg.Rank], err)
		}
	}
	ep.ln = ln
	logf("tcpnet: rank %d listening on %s, waiting for ranks %d..%d", cfg.Rank, ln.Addr(), cfg.Rank+1, p-1)

	for peer := 0; peer < p; peer++ {
		if peer != cfg.Rank {
			ep.sessions[peer] = newSession(ep, peer)
		}
	}

	// The accept loop runs for the endpoint's whole lifetime: it serves both
	// the initial mesh handshakes from higher ranks and any later resume
	// after a connection loss.
	go ep.acceptLoop(ln)

	// Dial lower ranks, retrying dial and handshake with exponential
	// backoff until their listeners are up or the mesh deadline passes.
	for peer := 0; peer < cfg.Rank; peer++ {
		logf("tcpnet: rank %d dialing rank %d at %s", cfg.Rank, peer, cfg.Addrs[peer])
		conn, epoch, peerRecv, attempts, err := dialMesh(cfg.Addrs[peer], cfg.Rank, backoff, hsTimeout, deadline)
		ep.tel.Add(cfg.Rank, telemetry.CtrDialAttempts, int64(attempts))
		if err != nil {
			ep.Close()
			return nil, fmt.Errorf("tcpnet: rank %d dial rank %d (%s, %d attempts): %w",
				cfg.Rank, peer, cfg.Addrs[peer], attempts, err)
		}
		if !ep.sessions[peer].adopt(conn, epoch, peerRecv) {
			ep.Close()
			return nil, fmt.Errorf("tcpnet: rank %d: session with rank %d closed during setup", cfg.Rank, peer)
		}
		logf("tcpnet: rank %d connected to rank %d after %d attempt(s)", cfg.Rank, peer, attempts)
	}

	// Higher ranks dial us; wait until each session has seen its first
	// connection, naming the stragglers if the deadline passes.
	for peer := cfg.Rank + 1; peer < p; peer++ {
		if !ep.sessions[peer].waitConnected(deadline) {
			missing := ep.missingPeers()
			ep.Close()
			return nil, fmt.Errorf("tcpnet: rank %d timed out after %v waiting for rank(s) %v",
				cfg.Rank, timeout, missing)
		}
	}
	return ep, nil
}

// missingPeers lists the ranks whose session never connected (self
// excluded) — the culprits named by a mesh setup timeout.
func (e *Endpoint) missingPeers() []int {
	var missing []int
	for r, s := range e.sessions {
		if r == e.rank || s == nil {
			continue
		}
		s.mu.Lock()
		connected := s.everConnected
		s.mu.Unlock()
		if !connected {
			missing = append(missing, r)
		}
	}
	return missing
}

// Rank implements comm.Comm.
func (e *Endpoint) Rank() int { return e.rank }

// Size implements comm.Comm.
func (e *Endpoint) Size() int { return e.size }

// Send implements comm.Comm. The payload is copied into the session's
// replay ring and is not retained after Send returns; delivery is reliable
// across any outage the session survives. Send blocks while the replay
// window is full and only fails once the peer's session has terminally
// failed (a PeerError) or the endpoint is closed.
func (e *Endpoint) Send(to, tag int, payload []byte) error {
	return e.SendCtx(to, tag, payload, traceid.Context{Step: -1, Tile: -1})
}

// SendCtx implements comm.CtxSender: the frame carries the trace context on
// the wire, so the receiving rank can stitch the cross-process flow. A
// context without a sequence is minted here (origin = this rank); with
// telemetry disabled no context is carried and the frame is identical to a
// pre-trace send apart from the reserved header field.
func (e *Endpoint) SendCtx(to, tag int, payload []byte, tc traceid.Context) error {
	if to < 0 || to >= e.size || to == e.rank {
		return fmt.Errorf("tcpnet: invalid destination rank %d", to)
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("tcpnet: payload of %d bytes exceeds frame limit", len(payload))
	}
	s := e.sessions[to]
	if s == nil {
		return fmt.Errorf("tcpnet: no session with rank %d", to)
	}
	if e.tel != nil {
		if !tc.Valid() {
			tc.Origin = e.rank
			tc.Seq = e.seq.Add(1)
		}
		e.tel.FlowSend(e.rank, to, tc.ID(), tc.Step, tc.Tile)
	} else {
		tc = traceid.Context{}
	}
	if err := s.send(tag, payload, tc); err != nil {
		return err
	}
	e.mu.Lock()
	e.counters.MsgsSent++
	e.counters.BytesSent += int64(len(payload))
	e.mu.Unlock()
	return nil
}

// Recv implements comm.Comm.
func (e *Endpoint) Recv(from, tag int) ([]byte, error) {
	return e.RecvTimeout(from, tag, 0)
}

// RecvTimeout implements comm.Comm.
func (e *Endpoint) RecvTimeout(from, tag int, timeout time.Duration) ([]byte, error) {
	if from < 0 || from >= e.size || from == e.rank {
		return nil, fmt.Errorf("tcpnet: invalid source rank %d", from)
	}
	msg, err := e.box.GetMsgUntil(from, tag, deadlineFor(timeout))
	if err != nil {
		if errors.Is(err, mbox.ErrTimeout) {
			err = &comm.DeadlineError{Rank: e.rank, Keys: []comm.MsgKey{{From: from, Tag: tag}}, Timeout: timeout}
		}
		return nil, err
	}
	e.noteRecv(msg)
	return msg.Payload, nil
}

// noteRecv bumps the receive counters and records the receive side of the
// message's causal flow — at the comm boundary, so the flow point lands
// inside the application's receive span and dedup-dropped replays never
// record one.
func (e *Endpoint) noteRecv(msg mbox.Message) {
	e.mu.Lock()
	e.counters.MsgsRecv++
	e.counters.BytesRecv += int64(len(msg.Payload))
	e.mu.Unlock()
	if e.tel != nil && msg.Trace.Valid() {
		e.tel.FlowRecv(e.rank, msg.From, msg.Trace.ID(), msg.Trace.Step, msg.Trace.Tile)
	}
}

// RecvAny implements comm.Comm.
func (e *Endpoint) RecvAny(keys []comm.MsgKey) (int, int, []byte, error) {
	return e.RecvAnyTimeout(keys, 0)
}

// RecvAnyTimeout implements comm.Comm.
func (e *Endpoint) RecvAnyTimeout(keys []comm.MsgKey, timeout time.Duration) (int, int, []byte, error) {
	for _, k := range keys {
		if k.From < 0 || k.From >= e.size || k.From == e.rank {
			return 0, 0, nil, fmt.Errorf("tcpnet: invalid source rank %d", k.From)
		}
	}
	// mbox.Key aliases comm.MsgKey, so the receive set passes straight
	// through without a conversion allocation.
	msg, err := e.box.GetAnyUntil(keys, deadlineFor(timeout))
	if err != nil {
		if errors.Is(err, mbox.ErrTimeout) {
			err = &comm.DeadlineError{Rank: e.rank, Keys: keys, Timeout: timeout}
		}
		return 0, 0, nil, err
	}
	e.noteRecv(msg)
	return msg.From, msg.Tag, msg.Payload, nil
}

// deadlineFor converts a relative timeout into the mailbox's absolute
// deadline convention (zero = wait forever).
func deadlineFor(timeout time.Duration) time.Time {
	if timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(timeout)
}

// isClosed reports whether teardown has begun, so late connection errors
// from our own teardown are not misattributed to peers.
func (e *Endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Counters implements comm.Comm.
func (e *Endpoint) Counters() comm.Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counters
}

// Close implements comm.Comm: a clean shutdown. Each live session sends a
// bye frame first so peers treat the departure as end-of-run traffic
// instead of an outage to reconnect through.
func (e *Endpoint) Close() error {
	e.shutdown(true)
	return nil
}

// Kill tears the endpoint down abruptly — no bye frames, connections
// simply die — simulating a process crash for the fault-tolerance tests.
// Peers observe broken connections, attempt to resume, exhaust their
// reconnect budget and fail this rank with a PeerError, exactly the
// sequence a real crash produces.
func (e *Endpoint) Kill() {
	e.shutdown(false)
}

func (e *Endpoint) shutdown(sendBye bool) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	if sendBye {
		// Graceful close drains every session first: frames the peers have
		// not yet acked are still in flight, and closing sockets under them
		// can RST the stream and destroy them. The listener stays open so
		// an acceptor-side resume can finish a drain mid-outage.
		deadline := time.Now().Add(e.scfg.WriteTimeout)
		var wg sync.WaitGroup
		for _, s := range e.sessions {
			if s == nil {
				continue
			}
			wg.Add(1)
			go func(s *session) {
				defer wg.Done()
				s.drain(deadline)
			}(s)
		}
		wg.Wait()
	}
	if e.ln != nil {
		e.ln.Close()
	}
	for _, s := range e.sessions {
		if s != nil {
			s.close(sendBye)
		}
	}
	e.box.Close(nil)
}

// CutConn severs the live connection to one peer — without touching the
// session state — so the next read or write on it fails and the session
// layer's resume machinery takes over. This is the chaos-testing seam: a
// cut is exactly what a mid-run network fault looks like. It reports
// whether there was a live connection to cut.
func (e *Endpoint) CutConn(peer int) bool {
	if peer < 0 || peer >= e.size || peer == e.rank {
		return false
	}
	s := e.sessions[peer]
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stActive || s.conn == nil {
		return false
	}
	s.conn.Close()
	return true
}

// LoopbackAddrs returns p distinct loopback addresses with OS-assigned
// ports, for single-machine multi-endpoint tests: it binds p listeners on
// port 0, records the addresses, and closes them. There is a small window
// in which another process can take a probed port before the real listener
// binds — Start rides it out with a brief bind retry, but the race-free
// path is ListenLoopback + Config.Listener, which never releases the ports
// at all.
func LoopbackAddrs(p int) ([]string, error) {
	addrs := make([]string, p)
	lns := make([]net.Listener, p)
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}
