// Package tcpnet implements the comm.Comm fabric over raw TCP sockets — the
// hand-rolled message-passing substrate standing in for the SP2's MPL/MPI
// layer. Every pair of ranks shares one TCP connection carrying
// length-prefixed frames with a tag header and a CRC-32C payload checksum; a
// reader goroutine per connection feeds a tag-matching mailbox.
//
// Topology: rank i listens on Addrs[i]; every rank j dials every rank i < j
// and announces itself with a magic+rank handshake, so the full mesh needs
// P*(P-1)/2 connections. Dial and handshake are retried with exponential
// backoff until the mesh deadline; a peer that never appears produces a
// rank-attributed error, never a silent hang.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/comm"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/transport/mbox"
)

// Config describes one rank's view of the cluster.
type Config struct {
	// Rank is this process's rank in [0, len(Addrs)).
	Rank int
	// Addrs lists every rank's listen address, index = rank.
	Addrs []string
	// DialTimeout bounds the whole mesh setup. Zero means 30s.
	DialTimeout time.Duration
	// HandshakeTimeout bounds one connection's handshake exchange, so a
	// silent or stray connection cannot stall the accept loop. Zero means
	// 10s (clamped to the mesh deadline).
	HandshakeTimeout time.Duration
	// DialBackoff is the initial retry backoff after a failed dial or
	// handshake; it doubles per attempt up to 64x. Zero means 10ms.
	DialBackoff time.Duration
	// Logf, when non-nil, receives per-peer mesh setup progress (dial
	// attempts, handshakes, stragglers) — the observable heartbeat that
	// distinguishes a slow peer from a dead one.
	Logf func(format string, args ...any)
	// Telemetry, when non-nil, receives transport counters: mesh dial
	// attempts (including retries) and mid-run peer failures such as frame
	// CRC mismatches or dropped connections.
	Telemetry *telemetry.Recorder
}

// maxFrame bounds a single message payload (64 MiB), protecting against
// corrupt length headers.
const maxFrame = 64 << 20

// handshakeMagic opens every mesh handshake; a connection that does not
// present it (a port scanner, a stale peer from another protocol version)
// is rejected with a clear error instead of being mistaken for a rank.
var handshakeMagic = [4]byte{'R', 'T', 'C', '2'}

// crcTable is the Castagnoli polynomial table used for frame checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Endpoint is the TCP-backed communicator endpoint.
type Endpoint struct {
	rank  int
	size  int
	box   *mbox.Mailbox
	conns []*peerConn // index = peer rank; nil at own rank
	ln    net.Listener
	tel   *telemetry.Recorder

	mu       sync.Mutex
	counters comm.Counters
	closed   bool
}

var _ comm.Comm = (*Endpoint)(nil)

type peerConn struct {
	mu  sync.Mutex // serialises frame writes and guards the scratch below
	c   net.Conn
	hdr [frameHeader]byte // reusable frame-header scratch
	vec [2][]byte         // reusable net.Buffers backing for vectored writes
}

// Start brings up this rank's listener, connects the mesh and returns when
// every peer connection is established.
func Start(cfg Config) (*Endpoint, error) {
	p := len(cfg.Addrs)
	if p < 1 || cfg.Rank < 0 || cfg.Rank >= p {
		return nil, fmt.Errorf("tcpnet: bad config: rank %d of %d", cfg.Rank, p)
	}
	timeout := cfg.DialTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	hsTimeout := cfg.HandshakeTimeout
	if hsTimeout == 0 {
		hsTimeout = 10 * time.Second
	}
	if hsTimeout > timeout {
		hsTimeout = timeout
	}
	backoff := cfg.DialBackoff
	if backoff == 0 {
		backoff = 10 * time.Millisecond
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	deadline := time.Now().Add(timeout)

	ep := &Endpoint{
		rank:  cfg.Rank,
		size:  p,
		box:   mbox.New(),
		conns: make([]*peerConn, p),
		tel:   cfg.Telemetry,
	}
	if p == 1 {
		return ep, nil
	}

	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("tcpnet: rank %d listen %s: %w", cfg.Rank, cfg.Addrs[cfg.Rank], err)
	}
	ep.ln = ln
	logf("tcpnet: rank %d listening on %s, waiting for ranks %d..%d", cfg.Rank, ln.Addr(), cfg.Rank+1, p-1)

	// Accept connections from higher ranks in the background. A stray or
	// silent connection is rejected after the handshake timeout without
	// consuming a peer slot.
	type accepted struct {
		peer int
		conn net.Conn
		err  error
	}
	wantAccepts := p - 1 - cfg.Rank
	acceptCh := make(chan accepted, wantAccepts)
	go func() {
		seen := make(map[int]bool)
		for got := 0; got < wantAccepts; {
			c, err := ln.Accept()
			if err != nil {
				acceptCh <- accepted{err: err}
				return
			}
			peer, err := readHandshake(c, p, hsTimeout)
			switch {
			case err != nil:
				logf("tcpnet: rank %d rejected connection from %s: %v", cfg.Rank, c.RemoteAddr(), err)
				c.Close()
				continue
			case peer <= cfg.Rank || seen[peer]:
				logf("tcpnet: rank %d rejected duplicate/invalid handshake from rank %d", cfg.Rank, peer)
				c.Close()
				continue
			}
			seen[peer] = true
			got++
			logf("tcpnet: rank %d accepted rank %d (%d/%d)", cfg.Rank, peer, got, wantAccepts)
			acceptCh <- accepted{peer: peer, conn: c}
		}
	}()

	// Dial lower ranks, retrying dial and handshake with exponential
	// backoff until their listeners are up or the mesh deadline passes.
	for peer := 0; peer < cfg.Rank; peer++ {
		logf("tcpnet: rank %d dialing rank %d at %s", cfg.Rank, peer, cfg.Addrs[peer])
		conn, attempts, err := dialHandshake(cfg.Addrs[peer], cfg.Rank, backoff, deadline)
		ep.tel.Add(cfg.Rank, telemetry.CtrDialAttempts, int64(attempts))
		if err != nil {
			ep.Close()
			return nil, fmt.Errorf("tcpnet: rank %d dial rank %d (%s, %d attempts): %w",
				cfg.Rank, peer, cfg.Addrs[peer], attempts, err)
		}
		logf("tcpnet: rank %d connected to rank %d after %d attempt(s)", cfg.Rank, peer, attempts)
		ep.conns[peer] = &peerConn{c: conn}
	}

	for i := 0; i < wantAccepts; i++ {
		select {
		case a := <-acceptCh:
			if a.err != nil {
				ep.Close()
				return nil, fmt.Errorf("tcpnet: rank %d accept: %w", cfg.Rank, a.err)
			}
			ep.conns[a.peer] = &peerConn{c: a.conn}
		case <-time.After(time.Until(deadline)):
			ep.Close()
			return nil, fmt.Errorf("tcpnet: rank %d timed out after %v waiting for rank(s) %v",
				cfg.Rank, timeout, ep.missingPeers())
		}
	}

	for peer, pc := range ep.conns {
		if pc != nil {
			go ep.readLoop(peer, pc.c)
		}
	}
	return ep, nil
}

// missingPeers lists the ranks with no established connection (self
// excluded) — the culprits named by a mesh setup timeout.
func (e *Endpoint) missingPeers() []int {
	var missing []int
	for r, pc := range e.conns {
		if r != e.rank && pc == nil {
			missing = append(missing, r)
		}
	}
	return missing
}

// readHandshake validates one inbound connection's magic+rank announcement
// under a read deadline.
func readHandshake(c net.Conn, p int, timeout time.Duration) (int, error) {
	c.SetReadDeadline(time.Now().Add(timeout))
	defer c.SetReadDeadline(time.Time{})
	var hdr [12]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return 0, fmt.Errorf("handshake read: %w", err)
	}
	if [4]byte(hdr[:4]) != handshakeMagic {
		return 0, fmt.Errorf("handshake magic %q is not %q", hdr[:4], handshakeMagic[:])
	}
	peer := int(binary.BigEndian.Uint64(hdr[4:]))
	if peer < 0 || peer >= p {
		return 0, fmt.Errorf("handshake from invalid rank %d", peer)
	}
	return peer, nil
}

// dialHandshake dials addr and writes this rank's handshake, retrying both
// stages with exponential backoff (doubling, capped at 64x the initial
// backoff) until the deadline. It reports how many attempts were made.
func dialHandshake(addr string, rank int, backoff time.Duration, deadline time.Time) (net.Conn, int, error) {
	var hdr [12]byte
	copy(hdr[:4], handshakeMagic[:])
	binary.BigEndian.PutUint64(hdr[4:], uint64(rank))
	maxBackoff := 64 * backoff
	var lastErr error
	for attempt := 1; ; attempt++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if lastErr == nil {
				lastErr = errors.New("deadline exceeded")
			}
			return nil, attempt - 1, lastErr
		}
		c, err := net.DialTimeout("tcp", addr, remaining)
		if err == nil {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			c.SetWriteDeadline(deadline)
			_, err = c.Write(hdr[:])
			c.SetWriteDeadline(time.Time{})
			if err == nil {
				return c, attempt, nil
			}
			err = fmt.Errorf("handshake write: %w", err)
			c.Close()
		}
		lastErr = err
		sleep := backoff
		if remaining < sleep {
			sleep = remaining
		}
		time.Sleep(sleep)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// Frame layout: 8-byte tag (two's complement int64), 4-byte payload length,
// 4-byte CRC-32C over tag, length and payload.
const frameHeader = 16

func (e *Endpoint) readLoop(peer int, c net.Conn) {
	fail := func(err error, abnormal bool) {
		// A dead peer only poisons receives from that peer; already
		// delivered messages and other connections stay live. Only count a
		// peer failure for abnormal breaks on a live endpoint — a clean EOF
		// between frames or a teardown race is ordinary end-of-run traffic.
		if abnormal && !e.isClosed() {
			e.tel.Add(e.rank, telemetry.CtrPeerFailures, 1)
		}
		e.box.Fail(peer, &comm.PeerError{Rank: peer, Err: err})
	}
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			fail(fmt.Errorf("tcpnet: connection to rank %d: %w", peer, err), !errors.Is(err, io.EOF))
			return
		}
		tag := int(int64(binary.BigEndian.Uint64(hdr[:8])))
		n := binary.BigEndian.Uint32(hdr[8:12])
		want := binary.BigEndian.Uint32(hdr[12:16])
		if n > maxFrame {
			fail(fmt.Errorf("tcpnet: frame from rank %d exceeds %d bytes", peer, maxFrame), true)
			return
		}
		// Payloads come from the pool; a successful Put hands ownership to
		// the mailbox and on to the receiving caller, who releases the
		// buffer after decoding. Every failure path here still owns the
		// buffer and returns it.
		payload := bufpool.Get(int(n))
		if _, err := io.ReadFull(c, payload); err != nil {
			bufpool.Put(payload)
			fail(fmt.Errorf("tcpnet: connection to rank %d: %w", peer, err), true)
			return
		}
		// The byte stream cannot be resynchronised after a bad frame, so a
		// checksum mismatch poisons the whole connection.
		got := crc32.Update(crc32.Checksum(hdr[:12], crcTable), crcTable, payload)
		if got != want {
			bufpool.Put(payload)
			fail(fmt.Errorf("tcpnet: frame CRC mismatch from rank %d (tag %d, %d bytes): got %08x want %08x",
				peer, tag, n, got, want), true)
			return
		}
		if err := e.box.Put(mbox.Message{From: peer, Tag: tag, Payload: payload}); err != nil {
			bufpool.Put(payload)
			return
		}
	}
}

// Rank implements comm.Comm.
func (e *Endpoint) Rank() int { return e.rank }

// Size implements comm.Comm.
func (e *Endpoint) Size() int { return e.size }

// Send implements comm.Comm.
func (e *Endpoint) Send(to, tag int, payload []byte) error {
	if to < 0 || to >= e.size || to == e.rank {
		return fmt.Errorf("tcpnet: invalid destination rank %d", to)
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("tcpnet: payload of %d bytes exceeds frame limit", len(payload))
	}
	pc := e.conns[to]
	if pc == nil {
		return fmt.Errorf("tcpnet: no connection to rank %d", to)
	}
	// Header and payload go out as one vectored write (writev): the payload
	// is never copied into a frame buffer, and the CRC covers exactly the
	// header prefix + payload bytes written. The header scratch lives on the
	// connection, under the same lock that serialises writes.
	pc.mu.Lock()
	binary.BigEndian.PutUint64(pc.hdr[:8], uint64(int64(tag)))
	binary.BigEndian.PutUint32(pc.hdr[8:12], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum(pc.hdr[:12], crcTable), crcTable, payload)
	binary.BigEndian.PutUint32(pc.hdr[12:16], crc)
	pc.vec[0], pc.vec[1] = pc.hdr[:], payload
	bufs := net.Buffers(pc.vec[:])
	_, err := bufs.WriteTo(pc.c)
	pc.vec[0], pc.vec[1] = nil, nil // drop the payload reference
	pc.mu.Unlock()
	if err != nil {
		return &comm.PeerError{Rank: to, Err: fmt.Errorf("tcpnet: send to rank %d: %w", to, err)}
	}
	e.mu.Lock()
	e.counters.MsgsSent++
	e.counters.BytesSent += int64(len(payload))
	e.mu.Unlock()
	return nil
}

// Recv implements comm.Comm.
func (e *Endpoint) Recv(from, tag int) ([]byte, error) {
	return e.RecvTimeout(from, tag, 0)
}

// RecvTimeout implements comm.Comm.
func (e *Endpoint) RecvTimeout(from, tag int, timeout time.Duration) ([]byte, error) {
	if from < 0 || from >= e.size || from == e.rank {
		return nil, fmt.Errorf("tcpnet: invalid source rank %d", from)
	}
	payload, err := e.box.GetUntil(from, tag, deadlineFor(timeout))
	if err != nil {
		if errors.Is(err, mbox.ErrTimeout) {
			err = &comm.DeadlineError{Rank: e.rank, Keys: []comm.MsgKey{{From: from, Tag: tag}}, Timeout: timeout}
		}
		return nil, err
	}
	e.mu.Lock()
	e.counters.MsgsRecv++
	e.counters.BytesRecv += int64(len(payload))
	e.mu.Unlock()
	return payload, nil
}

// RecvAny implements comm.Comm.
func (e *Endpoint) RecvAny(keys []comm.MsgKey) (int, int, []byte, error) {
	return e.RecvAnyTimeout(keys, 0)
}

// RecvAnyTimeout implements comm.Comm.
func (e *Endpoint) RecvAnyTimeout(keys []comm.MsgKey, timeout time.Duration) (int, int, []byte, error) {
	for _, k := range keys {
		if k.From < 0 || k.From >= e.size || k.From == e.rank {
			return 0, 0, nil, fmt.Errorf("tcpnet: invalid source rank %d", k.From)
		}
	}
	// mbox.Key aliases comm.MsgKey, so the receive set passes straight
	// through without a conversion allocation.
	msg, err := e.box.GetAnyUntil(keys, deadlineFor(timeout))
	if err != nil {
		if errors.Is(err, mbox.ErrTimeout) {
			err = &comm.DeadlineError{Rank: e.rank, Keys: keys, Timeout: timeout}
		}
		return 0, 0, nil, err
	}
	e.mu.Lock()
	e.counters.MsgsRecv++
	e.counters.BytesRecv += int64(len(msg.Payload))
	e.mu.Unlock()
	return msg.From, msg.Tag, msg.Payload, nil
}

// deadlineFor converts a relative timeout into the mailbox's absolute
// deadline convention (zero = wait forever).
func deadlineFor(timeout time.Duration) time.Time {
	if timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(timeout)
}

// Counters implements comm.Comm.
// isClosed reports whether Close has begun, so late readLoop errors from
// our own teardown are not misattributed to peers.
func (e *Endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

func (e *Endpoint) Counters() comm.Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counters
}

// Close implements comm.Comm.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.box.Close(nil)
	if e.ln != nil {
		e.ln.Close()
	}
	for _, pc := range e.conns {
		if pc != nil && pc.c != nil {
			pc.c.Close()
		}
	}
	return nil
}

// LoopbackAddrs returns p distinct loopback addresses with OS-assigned
// ports, for single-machine multi-endpoint tests: it binds p listeners on
// port 0, records the addresses, and closes them. There is a small race
// window before the real listeners bind, acceptable for tests and demos.
func LoopbackAddrs(p int) ([]string, error) {
	addrs := make([]string, p)
	lns := make([]net.Listener, p)
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}
