package tcpnet_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/compose"
	"rtcomp/internal/compositor"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/transport/tcpnet"
)

// The session-layer chaos suite: sever a live TCP connection at an exact
// composition step and assert the run is indistinguishable from a
// fault-free one — byte-identical image, no degradation flag, zero
// recovery epochs. The reliable session must mask the cut entirely below
// the compositor's recovery protocol; only when the reconnect budget is
// exhausted may the failure surface, and then the recovery protocol must
// still deliver a complete image (the second line of defense).

// chaosLayers builds p random binary layers and the serial reference
// composite — exact for binary images under every codec.
func chaosLayers(seed int64, p int) ([]*raster.Image, *raster.Image) {
	rng := rand.New(rand.NewSource(seed))
	layers := make([]*raster.Image, p)
	for r := range layers {
		layers[r] = raster.RandomBinaryImage(rng, 32, 32, 0.5)
	}
	return layers, compose.SerialComposite(layers)
}

// startChaosMesh brings up a p-rank TCP mesh on pre-bound loopback
// listeners with a fast redial, applying mod per rank before Start.
func startChaosMesh(t *testing.T, p int, mod func(rank int, cfg *tcpnet.Config)) []*tcpnet.Endpoint {
	t.Helper()
	lns, addrs, err := tcpnet.ListenLoopback(p)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*tcpnet.Endpoint, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := tcpnet.Config{
				Rank: r, Addrs: addrs, Listener: lns[r],
				DialTimeout: 10 * time.Second,
				DialBackoff: 2 * time.Millisecond,
			}
			if mod != nil {
				mod(r, &cfg)
			}
			eps[r], errs[r] = tcpnet.Start(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d start: %v", r, err)
		}
	}
	return eps
}

// runComposition runs the schedule on every endpoint concurrently under a
// hard watchdog and returns rank 0's image plus per-rank reports/errors.
func runComposition(t *testing.T, eps []*tcpnet.Endpoint, sched *schedule.Schedule,
	layers []*raster.Image, optsFor func(rank int) compositor.Options) (*raster.Image, []*compositor.Report, []error) {
	t.Helper()
	p := len(eps)
	reports := make([]*compositor.Report, p)
	errs := make([]error, p)
	var final *raster.Image
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				img, rep, err := compositor.Run(eps[r], sched, layers[r], optsFor(r))
				reports[r] = rep
				errs[r] = err
				if r == 0 && img != nil {
					final = img
				}
			}(r)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("chaos case HUNG: composition did not terminate within the watchdog")
	}
	return final, reports, errs
}

// chaosSchedules is the matrix of composition methods the cut sweep runs:
// rotate-tiling, binary-swap and pipeline at 4 ranks.
func chaosSchedules(t *testing.T) map[string]*schedule.Schedule {
	t.Helper()
	out := map[string]*schedule.Schedule{}
	var err error
	if out["rt-n"], err = schedule.NRT(4, 4); err != nil {
		t.Fatal(err)
	}
	if out["binary-swap"], err = schedule.BinarySwap(4); err != nil {
		t.Fatal(err)
	}
	if out["pipeline"], err = schedule.Pipeline(4); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestChaosCutAnyConnectionAnyStep(t *testing.T) {
	// Sever every pair's connection, at every step, under every codec, for
	// every method: each run must finish with a byte-identical image and
	// zero visible recovery — the cut is the session layer's problem alone.
	codecs := map[string]codec.Codec{"raw": codec.Raw{}, "rle": codec.RLE{}, "trle": codec.TRLE{}}
	pairs := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for schedName, sched := range chaosSchedules(t) {
		for codecName, cdc := range codecs {
			t.Run(fmt.Sprintf("%s/%s", schedName, codecName), func(t *testing.T) {
				steps := len(sched.Steps)
				for si := 0; si < steps; si++ {
					casePairs := pairs
					if testing.Short() {
						// One rotating pair per step keeps short mode brisk
						// while the full matrix still runs in CI.
						casePairs = pairs[si%len(pairs) : si%len(pairs)+1]
					}
					for _, pr := range casePairs {
						lo, hi := pr[0], pr[1]
						// Alternate which end cuts, so both the redialing
						// (higher-rank) and re-accepting (lower-rank) resume
						// paths are exercised.
						cutter, victim := hi, lo
						if (si+lo+hi)%2 == 1 {
							cutter, victim = lo, hi
						}
						layers, want := chaosLayers(int64(31+si), sched.P)
						eps := startChaosMesh(t, sched.P, nil)
						var once sync.Once
						var didCut atomic.Bool
						final, reports, errs := runComposition(t, eps, sched, layers, func(rank int) compositor.Options {
							opts := compositor.Options{
								Codec:       cdc,
								RecvTimeout: 20 * time.Second,
								OnMissing:   compositor.FailFast,
							}
							if rank == cutter {
								cutStep := si
								opts.OnStep = func(step int) {
									if step == cutStep {
										once.Do(func() { didCut.Store(eps[cutter].CutConn(victim)) })
									}
								}
							}
							return opts
						})
						for r, err := range errs {
							if err != nil {
								t.Fatalf("step %d cut %d-%d: rank %d: %v", si, lo, hi, r, err)
							}
						}
						if !didCut.Load() {
							t.Fatalf("step %d cut %d-%d: no live connection was severed", si, lo, hi)
						}
						for r, rep := range reports {
							if rep.Degraded || rep.Recovered || rep.RecoveryEpochs != 0 {
								t.Fatalf("step %d cut %d-%d: rank %d report shows visible recovery: %+v", si, lo, hi, r, rep)
							}
						}
						if final == nil {
							t.Fatalf("step %d cut %d-%d: no image at the gather root", si, lo, hi)
						}
						if !raster.Equal(final, want) {
							t.Fatalf("step %d cut %d-%d: image differs from fault-free golden (maxdiff=%d)",
								si, lo, hi, raster.MaxDiff(final, want))
						}
						for _, ep := range eps {
							ep.Close()
						}
					}
				}
			})
		}
	}
}

func TestChaosReconnectExhaustionFallsBackToRecovery(t *testing.T) {
	// When an outage is not transient — the peer's process is gone — the
	// session must exhaust its budget and surface the same PeerError a dead
	// rank always produced, so the Recover policy (replication + agreement)
	// still certifies a complete image. Sessions below, recovery above.
	sched, err := schedule.NRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	layers, want := chaosLayers(47, sched.P)
	eps := startChaosMesh(t, sched.P, func(rank int, cfg *tcpnet.Config) {
		cfg.Session = comm.SessionConfig{ReconnectTimeout: 500 * time.Millisecond, MaxReconnects: 2}
	})
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	victim := sched.P - 1
	var once sync.Once
	final, reports, errs := runComposition(t, eps, sched, layers, func(rank int) compositor.Options {
		opts := compositor.Options{
			Codec:       codec.TRLE{},
			RecvTimeout: 10 * time.Second,
			OnMissing:   compositor.Recover,
		}
		if rank == victim {
			opts.OnStep = func(step int) {
				if step == 1 {
					// The replication exchange precedes step 1, so the
					// victim's layer is already recoverable from its buddy.
					once.Do(func() { eps[victim].Kill() })
				}
			}
		}
		return opts
	})
	if errs[victim] == nil {
		t.Error("killed rank completed without error")
	}
	for r := 0; r < victim; r++ {
		if errs[r] != nil {
			t.Fatalf("survivor rank %d: %v", r, errs[r])
		}
		if !reports[r].Recovered {
			t.Errorf("survivor rank %d did not flag Recovered", r)
		}
	}
	if final == nil {
		t.Fatal("no image at the gather root after recovery")
	}
	if !raster.Equal(final, want) {
		t.Fatalf("recovered image differs from golden (maxdiff=%d)", raster.MaxDiff(final, want))
	}
}
