package tcpnet

import (
	"bytes"
	"testing"
)

// The resume handshake and frame-header parsers sit directly on untrusted
// bytes from the network: anything can dial the listen port. The fuzz
// targets assert the structural guarantees the session layer builds on —
// a parser either rejects input with an error or returns values that
// re-encode to the exact same bytes, and it never panics.

func FuzzFrameHeader(f *testing.F) {
	// Seeds: one valid frame of each type, plus structural near-misses.
	var data [frameHeader]byte
	encodeFrameHeader(data[:], ftData, 1, 1, 0, 42, []byte("payload"))
	f.Add(data[:])
	var ack [frameHeader]byte
	encodeFrameHeader(ack[:], ftAck, 3, 0, 17, 0, nil)
	f.Add(ack[:])
	var hb [frameHeader]byte
	encodeFrameHeader(hb[:], ftHeartbeat, 2, 0, 5, 0, nil)
	f.Add(hb[:])
	var bye [frameHeader]byte
	encodeFrameHeader(bye[:], ftBye, 7, 0, 9, 0, nil)
	f.Add(bye[:])
	f.Add(bytes.Repeat([]byte{0xFF}, frameHeader))
	f.Add(make([]byte, frameHeader))

	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) != frameHeader {
			b = append(b, make([]byte, frameHeader)...)[:frameHeader]
		}
		fi, err := parseFrameHeader(b)
		if err != nil {
			return
		}
		// Structural invariants the read loop relies on.
		switch fi.typ {
		case ftData:
			if fi.seq == 0 {
				t.Fatalf("data frame accepted with seq 0: %+v", fi)
			}
		case ftAck, ftHeartbeat, ftBye:
			if fi.seq != 0 || fi.n != 0 {
				t.Fatalf("control frame accepted with seq/payload: %+v", fi)
			}
		default:
			t.Fatalf("unknown type %d accepted", fi.typ)
		}
		if fi.n > maxFrame {
			t.Fatalf("oversized payload length %d accepted", fi.n)
		}
		// Accepted headers round-trip: re-encoding the parsed fields (with
		// the claimed CRC forced back in, since encode recomputes it over an
		// empty payload) reproduces the original non-CRC bytes.
		var re [frameHeader]byte
		encodeFrameHeader(re[:], fi.typ, fi.epoch, fi.seq, fi.ack, fi.tag, nil)
		if !bytes.Equal(re[:29], b[:29]) {
			t.Fatalf("header round-trip mismatch:\n in  %x\n out %x", b[:29], re[:29])
		}
	})
}

func FuzzResumeHello(f *testing.F) {
	valid := encodeHello(3, 1, 0)
	f.Add(valid[:], 8)
	resumed := encodeHello(1, 7, 40)
	f.Add(resumed[:], 2)
	f.Add(bytes.Repeat([]byte{0xA5}, helloLen), 4)
	f.Add(make([]byte, helloLen), 16)

	f.Fuzz(func(t *testing.T, b []byte, p int) {
		if p < 1 || p > 1<<20 {
			p = 4
		}
		rank, epoch, recvSeq, err := parseHello(b, p)
		if err != nil {
			return
		}
		if rank < 0 || rank >= p {
			t.Fatalf("out-of-range rank %d accepted for p=%d", rank, p)
		}
		if epoch == 0 {
			t.Fatal("epoch 0 accepted")
		}
		re := encodeHello(rank, epoch, recvSeq)
		if !bytes.Equal(re[:], b) {
			t.Fatalf("hello round-trip mismatch:\n in  %x\n out %x", b, re[:])
		}
	})
}

func FuzzResumeReply(f *testing.F) {
	valid := encodeResumeReply(1, 0)
	f.Add(valid[:])
	resumed := encodeResumeReply(9, 1234)
	f.Add(resumed[:])
	f.Add(bytes.Repeat([]byte{0x5A}, replyLen))
	f.Add(make([]byte, replyLen))

	f.Fuzz(func(t *testing.T, b []byte) {
		epoch, recvSeq, err := parseResumeReply(b)
		if err != nil {
			return
		}
		if epoch == 0 {
			t.Fatal("epoch 0 accepted")
		}
		re := encodeResumeReply(epoch, recvSeq)
		if !bytes.Equal(re[:], b) {
			t.Fatalf("reply round-trip mismatch:\n in  %x\n out %x", b, re[:])
		}
	})
}
