package tcpnet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"rtcomp/internal/comm"
)

// runMesh starts p endpoints on loopback, runs fn per rank, and fails the
// test on any error. The listeners are bound up front and handed to Start
// (never released between port discovery and use), so there is no bind
// race to deflake.
func runMesh(t *testing.T, p int, fn func(c comm.Comm) error) {
	t.Helper()
	lns, addrs, err := ListenLoopback(p)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := Start(Config{Rank: r, Addrs: addrs, Listener: lns[r], DialTimeout: 10 * time.Second})
			if err != nil {
				errs[r] = err
				return
			}
			defer ep.Close()
			errs[r] = fn(ep)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestMeshPingPong(t *testing.T) {
	runMesh(t, 2, func(c comm.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 3, []byte("over tcp")); err != nil {
				return err
			}
			got, err := c.Recv(1, 4)
			if err != nil {
				return err
			}
			if string(got) != "ack" {
				return fmt.Errorf("got %q", got)
			}
			return nil
		}
		got, err := c.Recv(0, 3)
		if err != nil {
			return err
		}
		if string(got) != "over tcp" {
			return fmt.Errorf("got %q", got)
		}
		return c.Send(0, 4, []byte("ack"))
	})
}

func TestMeshAllToAll(t *testing.T) {
	p := 5
	runMesh(t, p, func(c comm.Comm) error {
		for to := 0; to < p; to++ {
			if to == c.Rank() {
				continue
			}
			payload := []byte{byte(c.Rank()), byte(to)}
			if err := c.Send(to, 100+c.Rank(), payload); err != nil {
				return err
			}
		}
		for from := 0; from < p; from++ {
			if from == c.Rank() {
				continue
			}
			got, err := c.Recv(from, 100+from)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, []byte{byte(from), byte(c.Rank())}) {
				return fmt.Errorf("from %d: payload %v", from, got)
			}
		}
		return nil
	})
}

func TestMeshLargeFramesAndNegativeTags(t *testing.T) {
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 7)
	}
	runMesh(t, 2, func(c comm.Comm) error {
		var seq comm.Sequencer
		if c.Rank() == 0 {
			if err := c.Send(1, 0, big); err != nil {
				return err
			}
		} else {
			got, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, big) {
				return fmt.Errorf("large frame corrupted")
			}
		}
		// Collectives use negative tags over the same conns.
		return comm.Barrier(c, &seq)
	})
}

func TestMeshCollectives(t *testing.T) {
	p := 4
	runMesh(t, p, func(c comm.Comm) error {
		var seq comm.Sequencer
		got, err := comm.Gather(c, &seq, 0, []byte{byte(c.Rank() + 1)})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r := 0; r < p; r++ {
				if len(got[r]) != 1 || got[r][0] != byte(r+1) {
					return fmt.Errorf("gather slot %d = %v", r, got[r])
				}
			}
		}
		bc, err := comm.Bcast(c, &seq, 3, []byte{byte(42)})
		if err != nil {
			return err
		}
		if bc[0] != 42 {
			return fmt.Errorf("bcast got %v", bc)
		}
		return nil
	})
}

func TestStartRejectsBadConfig(t *testing.T) {
	if _, err := Start(Config{Rank: 2, Addrs: []string{"a", "b"}}); err == nil {
		t.Fatal("bad rank accepted")
	}
	if _, err := Start(Config{Rank: 0, Addrs: nil}); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func TestSingleRankMesh(t *testing.T) {
	ep, err := Start(Config{Rank: 0, Addrs: []string{"127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	var seq comm.Sequencer
	if err := comm.Barrier(ep, &seq); err != nil {
		t.Fatal(err)
	}
	got, err := comm.Gather(ep, &seq, 0, []byte("solo"))
	if err != nil || string(got[0]) != "solo" {
		t.Fatalf("gather = %v, %v", got, err)
	}
}

func TestSendOversizedFrameRejected(t *testing.T) {
	runMesh(t, 2, func(c comm.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, make([]byte, maxFrame+1)); err == nil {
				return fmt.Errorf("oversized frame accepted")
			}
			// Tell rank 1 we're done.
			return c.Send(1, 1, nil)
		}
		_, err := c.Recv(0, 1)
		return err
	})
}

func TestMeshRecvAnyAndCounters(t *testing.T) {
	runMesh(t, 3, func(c comm.Comm) error {
		if c.Rank() == 0 {
			// Expect one message each from ranks 1 and 2, in arrival order.
			keys := []comm.MsgKey{{From: 1, Tag: 7}, {From: 2, Tag: 9}}
			seen := map[int]bool{}
			for len(keys) > 0 {
				from, tag, payload, err := c.RecvAny(keys)
				if err != nil {
					return err
				}
				if seen[from] {
					return fmt.Errorf("duplicate delivery from %d", from)
				}
				seen[from] = true
				if len(payload) != 1 || payload[0] != byte(from) {
					return fmt.Errorf("from %d tag %d payload %v", from, tag, payload)
				}
				// Drop the satisfied key, as the compositor does: a peer may
				// close as soon as its message is sent.
				for i, k := range keys {
					if k.From == from && k.Tag == tag {
						keys = append(keys[:i], keys[i+1:]...)
						break
					}
				}
			}
			ctr := c.Counters()
			if ctr.MsgsRecv != 2 || ctr.BytesRecv != 2 {
				return fmt.Errorf("counters %+v", ctr)
			}
			// Invalid source rank in the wait set.
			if _, _, _, err := c.RecvAny([]comm.MsgKey{{From: 9, Tag: 0}}); err == nil {
				return fmt.Errorf("invalid RecvAny source accepted")
			}
			return nil
		}
		tag := 7
		if c.Rank() == 2 {
			tag = 9
		}
		return c.Send(0, tag, []byte{byte(c.Rank())})
	})
}
