package mbox

import (
	"testing"
	"time"
)

func TestPutSeqDedupWindow(t *testing.T) {
	m := New()
	if acc, err := m.PutSeq(Message{From: 1, Tag: 7, Payload: []byte("a")}, 1); err != nil || !acc {
		t.Fatalf("first seq: accepted=%v err=%v", acc, err)
	}
	// The replayed duplicate is refused; payload ownership stays with the
	// caller, and nothing new becomes retrievable.
	if acc, err := m.PutSeq(Message{From: 1, Tag: 7, Payload: []byte("a-dup")}, 1); err != nil || acc {
		t.Fatalf("duplicate seq: accepted=%v err=%v", acc, err)
	}
	if acc, err := m.PutSeq(Message{From: 1, Tag: 8, Payload: []byte("b")}, 2); err != nil || !acc {
		t.Fatalf("next seq: accepted=%v err=%v", acc, err)
	}
	got, err := m.Get(1, 7)
	if err != nil || string(got) != "a" {
		t.Fatalf("got %q, %v", got, err)
	}
	if got, err := m.Get(1, 8); err != nil || string(got) != "b" {
		t.Fatalf("got %q, %v", got, err)
	}
	// Exactly one copy of the duplicate tag was stored.
	if _, err := m.GetUntil(1, 7, time.Now().Add(20*time.Millisecond)); err != ErrTimeout {
		t.Fatalf("duplicate was stored: %v", err)
	}
}

func TestPutSeqWindowsArePerSource(t *testing.T) {
	m := New()
	if acc, _ := m.PutSeq(Message{From: 1, Tag: 1, Payload: []byte("x")}, 5); !acc {
		t.Fatal("source 1 seq 5 refused")
	}
	// A different source has its own window: seq 5 is fresh for it.
	if acc, _ := m.PutSeq(Message{From: 2, Tag: 1, Payload: []byte("y")}, 5); !acc {
		t.Fatal("source 2 seq 5 refused")
	}
	if m.LastSeq(1) != 5 || m.LastSeq(2) != 5 || m.LastSeq(3) != 0 {
		t.Fatalf("windows: %d %d %d", m.LastSeq(1), m.LastSeq(2), m.LastSeq(3))
	}
	// An out-of-order older seq is a duplicate even if never seen: the
	// session layer only replays in order, so a lower seq can only be a
	// stale retransmission.
	if acc, _ := m.PutSeq(Message{From: 1, Tag: 2, Payload: []byte("old")}, 3); acc {
		t.Fatal("stale seq accepted")
	}
	// Seq 0 never advances the window (control-frame convention).
	if acc, _ := m.PutSeq(Message{From: 3, Tag: 1, Payload: nil}, 0); acc {
		t.Fatal("seq 0 accepted")
	}
}

func TestPutSeqOnClosedMailbox(t *testing.T) {
	m := New()
	m.Close(nil)
	if acc, err := m.PutSeq(Message{From: 1, Tag: 1}, 1); acc || err == nil {
		t.Fatalf("closed mailbox: accepted=%v err=%v", acc, err)
	}
}
