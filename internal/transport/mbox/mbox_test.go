package mbox

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPutGetMatch(t *testing.T) {
	m := New()
	if err := m.Put(Message{From: 1, Tag: 7, Payload: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(1, 7)
	if err != nil || string(got) != "a" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestOutOfOrderMatching(t *testing.T) {
	m := New()
	m.Put(Message{From: 1, Tag: 1, Payload: []byte("first")})
	m.Put(Message{From: 2, Tag: 1, Payload: []byte("second")})
	m.Put(Message{From: 1, Tag: 2, Payload: []byte("third")})
	if got, _ := m.Get(1, 2); string(got) != "third" {
		t.Fatalf("got %q", got)
	}
	if got, _ := m.Get(2, 1); string(got) != "second" {
		t.Fatalf("got %q", got)
	}
	if got, _ := m.Get(1, 1); string(got) != "first" {
		t.Fatalf("got %q", got)
	}
}

func TestGetBlocksUntilPut(t *testing.T) {
	m := New()
	done := make(chan []byte)
	go func() {
		got, _ := m.Get(3, 9)
		done <- got
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Get returned before Put")
	default:
	}
	m.Put(Message{From: 3, Tag: 9, Payload: []byte("x")})
	if got := <-done; string(got) != "x" {
		t.Fatalf("got %q", got)
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	m := New()
	cause := errors.New("boom")
	done := make(chan error)
	go func() {
		_, err := m.Get(0, 0)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	m.Close(cause)
	if err := <-done; !errors.Is(err, cause) {
		t.Fatalf("err = %v, want %v", err, cause)
	}
	if err := m.Put(Message{}); !errors.Is(err, cause) {
		t.Fatalf("Put after close = %v", err)
	}
}

func TestCloseNilCause(t *testing.T) {
	m := New()
	m.Close(nil)
	if _, err := m.Get(0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	m := New()
	const n = 200
	var wg sync.WaitGroup
	for from := 0; from < 4; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for tag := 0; tag < n; tag++ {
				m.Put(Message{From: from, Tag: tag, Payload: []byte{byte(from), byte(tag)}})
			}
		}(from)
	}
	var got sync.Map
	var rg sync.WaitGroup
	for from := 0; from < 4; from++ {
		rg.Add(1)
		go func(from int) {
			defer rg.Done()
			for tag := 0; tag < n; tag++ {
				p, err := m.Get(from, tag)
				if err != nil || len(p) != 2 || p[0] != byte(from) || p[1] != byte(tag) {
					t.Errorf("Get(%d,%d) = %v, %v", from, tag, p, err)
					return
				}
				got.Store([2]int{from, tag}, true)
			}
		}(from)
	}
	wg.Wait()
	rg.Wait()
	count := 0
	got.Range(func(_, _ any) bool { count++; return true })
	if count != 4*n {
		t.Fatalf("delivered %d messages, want %d", count, 4*n)
	}
}

func TestGetAnyArrivalOrder(t *testing.T) {
	m := New()
	m.Put(Message{From: 2, Tag: 9, Payload: []byte("second-arrived-first")})
	m.Put(Message{From: 1, Tag: 5, Payload: []byte("first")})
	keys := []Key{{From: 1, Tag: 5}, {From: 2, Tag: 9}}
	got, err := m.GetAny(keys)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 2 || got.Tag != 9 {
		t.Fatalf("GetAny returned (%d,%d), want the first arrival (2,9)", got.From, got.Tag)
	}
	got, err = m.GetAny(keys)
	if err != nil || got.From != 1 {
		t.Fatalf("second GetAny = %+v, %v", got, err)
	}
}

func TestGetAnyIgnoresUnmatched(t *testing.T) {
	m := New()
	m.Put(Message{From: 3, Tag: 3, Payload: []byte("noise")})
	done := make(chan Message, 1)
	go func() {
		msg, _ := m.GetAny([]Key{{From: 1, Tag: 1}})
		done <- msg
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("GetAny matched an unrequested message")
	default:
	}
	m.Put(Message{From: 1, Tag: 1, Payload: []byte("yes")})
	if msg := <-done; string(msg.Payload) != "yes" {
		t.Fatalf("got %q", msg.Payload)
	}
	// The noise message is still retrievable.
	if got, err := m.Get(3, 3); err != nil || string(got) != "noise" {
		t.Fatalf("noise lost: %q, %v", got, err)
	}
}

func TestGetAnyFailsOnDeadSource(t *testing.T) {
	m := New()
	m.Fail(4, errors.New("gone"))
	if _, err := m.GetAny([]Key{{From: 4, Tag: 0}}); err == nil {
		t.Fatal("GetAny on dead source did not fail")
	}
	// A live alternative still delivers.
	done := make(chan error, 1)
	go func() {
		_, err := m.GetAny([]Key{{From: 4, Tag: 0}, {From: 5, Tag: 0}})
		done <- err
	}()
	// The dead source poisons the whole wait set (conservative), so this
	// returns the error rather than blocking forever.
	if err := <-done; err == nil {
		t.Fatal("mixed wait set with dead source did not fail")
	}
}
