// Package mbox provides the tag-matching mailbox shared by the transport
// fabrics: an unbounded message store with (source, tag) matched retrieval.
// Unbounded buffering gives the eager-send semantics the stepwise
// composition schedules assume — a send never blocks on the receiver.
package mbox

import (
	"errors"
	"sync"
	"time"

	"rtcomp/internal/comm"
	"rtcomp/internal/traceid"
)

// Message is one stored message. The mailbox stores the Payload slice as
// given — it never copies — and forgets it entirely once a Get retrieves
// it, so payload buffer ownership transfers Put → mailbox → Get caller and
// the caller may recycle the buffer after use. Trace carries the message's
// causal trace context (zero when the sender attached none); it travels
// with the message so the consuming rank can record the receive side of
// the flow.
type Message struct {
	From, Tag int
	Payload   []byte
	Trace     traceid.Context
}

// Mailbox stores messages until a matching Get retrieves them. The zero
// value is not ready; use New.
type Mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []Message
	closed  bool
	err     error
	srcErr  map[int]error
	lastSeq map[int]uint64 // per-source dedup window high-water (PutSeq)
}

// New returns an empty open mailbox.
func New() *Mailbox {
	m := &Mailbox{srcErr: map[int]error{}, lastSeq: map[int]uint64{}}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// ErrClosed is reported by operations on a closed mailbox.
var ErrClosed = errors.New("mbox: mailbox closed")

// ErrTimeout is reported by GetUntil/GetAnyUntil when the deadline elapses
// before a matching message arrives. The message, should it arrive later,
// stays retrievable.
var ErrTimeout = errors.New("mbox: receive timed out")

// Put stores a message, waking any waiting Get.
func (m *Mailbox) Put(msg Message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.failure()
	}
	m.pending = append(m.pending, msg)
	m.cond.Broadcast()
	return nil
}

// PutSeq stores msg only if seq advances the per-source dedup window: a
// reliable session numbers every data frame and replays unacknowledged
// ones after a reconnect, so the same (source, seq) may be presented more
// than once — and across two connections racing through a resume. The
// window is the single authority on acceptance: a seq at or below the
// source's high-water mark is a duplicate and is refused (accepted=false,
// payload ownership stays with the caller). Sequence numbers start at 1;
// seq 0 never advances the window.
func (m *Mailbox) PutSeq(msg Message, seq uint64) (accepted bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, m.failure()
	}
	if seq <= m.lastSeq[msg.From] {
		return false, nil
	}
	m.lastSeq[msg.From] = seq
	m.pending = append(m.pending, msg)
	m.cond.Broadcast()
	return true, nil
}

// LastSeq reports the dedup window's high-water mark for one source — the
// highest sequence number accepted from it via PutSeq.
func (m *Mailbox) LastSeq(from int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastSeq[from]
}

// Get blocks until a message with the given source and tag is available and
// removes and returns its payload.
func (m *Mailbox) Get(from, tag int) ([]byte, error) {
	return m.GetUntil(from, tag, time.Time{})
}

// GetUntil is Get with a deadline: once the deadline passes without a match
// it returns ErrTimeout. A zero deadline waits forever.
func (m *Mailbox) GetUntil(from, tag int, deadline time.Time) ([]byte, error) {
	msg, err := m.GetMsgUntil(from, tag, deadline)
	return msg.Payload, err
}

// GetMsgUntil is GetUntil returning the whole Message, so callers that need
// the trace context (the fabrics' flow recording) get it without a second
// lookup.
func (m *Mailbox) GetMsgUntil(from, tag int, deadline time.Time) (Message, error) {
	stop := m.wakeAt(deadline)
	defer stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, p := range m.pending {
			if p.From == from && p.Tag == tag {
				m.remove(i)
				return p, nil
			}
		}
		if m.closed {
			return Message{}, m.failure()
		}
		if err := m.srcErr[from]; err != nil {
			return Message{}, err
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return Message{}, ErrTimeout
		}
		m.cond.Wait()
	}
}

// remove deletes pending[i] preserving order and zeroes the vacated tail
// slot, so the mailbox drops its payload reference the moment a message is
// handed to a Get caller (who may recycle the buffer immediately).
func (m *Mailbox) remove(i int) {
	copy(m.pending[i:], m.pending[i+1:])
	last := len(m.pending) - 1
	m.pending[last] = Message{}
	m.pending = m.pending[:last]
}

// Key identifies one expected message. It is an alias for comm.MsgKey so
// fabrics can pass their []comm.MsgKey receive sets straight through
// without a per-call conversion allocation.
type Key = comm.MsgKey

// GetAny blocks until a message matching any of the keys is available and
// returns it — the arrival-order receive used to avoid head-of-line
// blocking when several messages are outstanding.
func (m *Mailbox) GetAny(keys []Key) (Message, error) {
	return m.GetAnyUntil(keys, time.Time{})
}

// GetAnyUntil is GetAny with a deadline: once the deadline passes without a
// match it returns ErrTimeout. A zero deadline waits forever.
func (m *Mailbox) GetAnyUntil(keys []Key, deadline time.Time) (Message, error) {
	stop := m.wakeAt(deadline)
	defer stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		// Receive sets are schedule fan-ins — a handful of keys — so a
		// linear scan beats building a per-call map (and allocates nothing).
		for i, p := range m.pending {
			for _, k := range keys {
				if k.From == p.From && k.Tag == p.Tag {
					m.remove(i)
					return p, nil
				}
			}
		}
		if m.closed {
			return Message{}, m.failure()
		}
		for _, k := range keys {
			if err := m.srcErr[k.From]; err != nil {
				return Message{}, err
			}
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return Message{}, ErrTimeout
		}
		m.cond.Wait()
	}
}

// wakeAt arranges a Broadcast when the deadline passes, so a Get blocked in
// cond.Wait re-checks and observes the timeout. It returns a stop function;
// a zero deadline is a no-op.
func (m *Mailbox) wakeAt(deadline time.Time) func() {
	if deadline.IsZero() {
		return func() {}
	}
	t := time.AfterFunc(time.Until(deadline), func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	return func() { t.Stop() }
}

// Fail marks one source as dead: pending messages from it stay retrievable,
// but a Get that would otherwise block on that source returns err instead.
// Other sources are unaffected.
func (m *Mailbox) Fail(from int, err error) {
	m.mu.Lock()
	if m.srcErr[from] == nil {
		m.srcErr[from] = err
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Close marks the mailbox closed, failing pending and future operations
// with ErrClosed (or cause, if non-nil).
func (m *Mailbox) Close(cause error) {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.err = cause
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *Mailbox) failure() error {
	if m.err != nil {
		return m.err
	}
	return ErrClosed
}
