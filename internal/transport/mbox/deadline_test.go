package mbox

import (
	"errors"
	"testing"
	"time"
)

func TestGetUntilExpires(t *testing.T) {
	m := New()
	start := time.Now()
	_, err := m.GetUntil(0, 1, time.Now().Add(50*time.Millisecond))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("deadline honoured poorly: waited %v", elapsed)
	}
}

func TestGetAnyUntilExpires(t *testing.T) {
	m := New()
	_, err := m.GetAnyUntil([]Key{{From: 0, Tag: 1}, {From: 2, Tag: 3}}, time.Now().Add(50*time.Millisecond))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
}

func TestGetUntilDeliversBeforeDeadline(t *testing.T) {
	m := New()
	go func() {
		time.Sleep(20 * time.Millisecond)
		m.Put(Message{From: 0, Tag: 1, Payload: []byte("in time")})
	}()
	payload, err := m.GetUntil(0, 1, time.Now().Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "in time" {
		t.Fatalf("payload %q", payload)
	}
}

func TestGetUntilAlreadyExpired(t *testing.T) {
	// A deadline in the past must fail immediately even when a message is
	// not present, without blocking at all.
	m := New()
	start := time.Now()
	_, err := m.GetUntil(0, 1, time.Now().Add(-time.Second))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("expired deadline still blocked %v", elapsed)
	}
}

func TestGetUntilPrefersMessageOverExpiredDeadline(t *testing.T) {
	// A message already in the box is delivered even if the deadline has
	// passed: the deadline bounds waiting, not matching.
	m := New()
	m.Put(Message{From: 0, Tag: 1, Payload: []byte("early")})
	payload, err := m.GetUntil(0, 1, time.Now().Add(-time.Second))
	if err != nil {
		t.Fatalf("message present but GetUntil returned %v", err)
	}
	if string(payload) != "early" {
		t.Fatalf("payload %q", payload)
	}
}

func TestZeroDeadlineWaitsForever(t *testing.T) {
	m := New()
	go func() {
		time.Sleep(50 * time.Millisecond)
		m.Put(Message{From: 3, Tag: 9, Payload: []byte("eventually")})
	}()
	payload, err := m.GetUntil(3, 9, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "eventually" {
		t.Fatalf("payload %q", payload)
	}
}

func TestTimeoutDoesNotConsume(t *testing.T) {
	// A timed-out wait must leave later-arriving messages intact for the
	// next receive.
	m := New()
	if _, err := m.GetUntil(0, 1, time.Now().Add(20*time.Millisecond)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	m.Put(Message{From: 0, Tag: 1, Payload: []byte("second try")})
	payload, err := m.GetUntil(0, 1, time.Now().Add(time.Second))
	if err != nil || string(payload) != "second try" {
		t.Fatalf("got %q, %v", payload, err)
	}
}

func TestCloseBeatsDeadline(t *testing.T) {
	m := New()
	cause := errors.New("fabric torn down")
	go func() {
		time.Sleep(20 * time.Millisecond)
		m.Close(cause)
	}()
	_, err := m.GetUntil(0, 1, time.Now().Add(5*time.Second))
	if !errors.Is(err, cause) {
		t.Fatalf("got %v, want the close cause", err)
	}
}
