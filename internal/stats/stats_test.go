package stats

import (
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %v, %v", min, max)
	}
	if min, max := MinMax(nil); min != 0 || max != 0 {
		t.Fatalf("MinMax(nil) = %v, %v", min, max)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bee"}}
	tb.Add("longer", "x")
	tb.Note("note %d", 7)
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "T" {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a      ") {
		t.Fatalf("header not padded to widest cell: %q", lines[1])
	}
	if !strings.Contains(lines[2], "------") {
		t.Fatalf("separator missing: %q", lines[2])
	}
	if lines[4] != "# note 7" {
		t.Fatalf("note line %q", lines[4])
	}
}

func TestTableWriteTo(t *testing.T) {
	tb := &Table{Headers: []string{"h"}}
	tb.Add("v")
	var sb strings.Builder
	if _, err := tb.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != tb.String() {
		t.Fatal("WriteTo differs from String")
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.Add(`comma,here`, `quote"here`)
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"comma,here\",\"quote\"\"here\"\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestSeconds(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		5e-6:    "5.0us",
		1.25e-3: "1.25ms",
		2.5:     "2.500s",
	}
	for in, want := range cases {
		if got := Seconds(in); got != want {
			t.Fatalf("Seconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestIBytes(t *testing.T) {
	cases := map[int64]string{
		12:        "12B",
		2048:      "2.0KiB",
		3 << 20:   "3.00MiB",
		1<<20 - 1: "1024.0KiB",
	}
	for in, want := range cases {
		if got := IBytes(in); got != want {
			t.Fatalf("IBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
