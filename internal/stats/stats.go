// Package stats provides the small numeric and table-formatting helpers the
// experiment harness uses to print the paper's rows and series.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MinMax returns the extrema (0, 0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

// WriteTo renders the table to w.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	t.write(&b)
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func (t *Table) write(b *strings.Builder) {
	if t.Title != "" {
		fmt.Fprintf(b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(b, "# %s\n", n)
	}
}

// CSV renders the table as comma-separated values (no notes).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Seconds formats a duration in seconds with engineering-friendly units.
func Seconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.1fus", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// Ratio formats a raw:wire compression ratio ("3.4x"; "-" when either side
// is zero, e.g. a step that moved no data or an uncompressed probe).
func Ratio(raw, wire int64) string {
	if raw <= 0 || wire <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(raw)/float64(wire))
}

// IBytes formats a byte count with binary units.
func IBytes(n int64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	}
}
