package experiments

import (
	"fmt"
	"strings"

	"rtcomp/internal/codec"
	"rtcomp/internal/schedule"
	"rtcomp/internal/simnet"
	"rtcomp/internal/stats"
	"rtcomp/internal/trace"
)

// runGantt renders engine-occupancy Gantt charts for three methods at a
// small processor count, plus a utilisation summary — the visual form of
// the overlap argument for rotate-tiling.
func runGantt(o Options) ([]*stats.Table, error) {
	p := 8
	layers, err := Partials(o, p)
	if err != nil {
		return nil, err
	}
	type mth struct {
		name string
		sch  *schedule.Schedule
		err  error
	}
	bs, errBS := schedule.BinarySwap(p)
	tree, errTree := schedule.Tree(p)
	rt, errRT := schedule.RT(p, 4)
	methods := []mth{{"binary-tree", tree, errTree}, {"binary-swap", bs, errBS}, {"RT(N=4)", rt, errRT}}

	// Common horizon: the slowest method's span, so charts are comparable.
	var results []*simnet.Result
	horizon := 0.0
	for _, m := range methods {
		if m.err != nil {
			return nil, m.err
		}
		res, err := simnet.Simulate(m.sch, layers, codec.Raw{}, o.Sim)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
		if res.Time > horizon {
			horizon = res.Time
		}
	}

	var tables []*stats.Table
	summary := &stats.Table{
		Title:   fmt.Sprintf("Engine utilisation (dataset %s, P=%d, %dx%d, common time axis)", o.Dataset, p, o.Width, o.Height),
		Headers: []string{"method", "composition time", "avg rank utilisation"},
	}
	for i, m := range methods {
		chart := trace.Gantt(results[i].Events, p, 72, horizon)
		tb := &stats.Table{
			Title:   fmt.Sprintf("%s — engine occupancy per rank", m.name),
			Headers: []string{"timeline"},
		}
		for _, line := range strings.Split(strings.TrimRight(chart, "\n"), "\n") {
			tb.Add(line)
		}
		tables = append(tables, tb)
		u := trace.Utilisation(results[i].Events, p, results[i].Time)
		summary.Add(m.name, stats.Seconds(results[i].Time), fmt.Sprintf("%.0f%%", 100*u))
	}
	summary.Note("rotate-tiling keeps every rank busy; the tree idles half the machine each step")
	return append(tables, summary), nil
}
