package experiments

import (
	"fmt"

	"rtcomp/internal/codec"
	"rtcomp/internal/schedule"
	"rtcomp/internal/shearwarp"
	"rtcomp/internal/simnet"
	"rtcomp/internal/stats"
)

// runSweep checks the robustness of the headline result across all three
// datasets and several camera angles: the paper reports "similar results"
// for head and brain, and a claim that survives only one viewpoint would
// be worthless. Both methods run with TRLE compression, so the cells
// genuinely depend on the rendered content (with the raw codec the
// simulator's cost is content-independent by construction). Reported per
// cell: 2N_RT(4) speedup over binary-swap.
func runSweep(o Options) ([]*stats.Table, error) {
	if !schedule.IsPowerOfTwo(o.P) {
		return nil, fmt.Errorf("experiments: sweep needs a power-of-two P for the BS baseline, got %d", o.P)
	}
	cameras := []shearwarp.Camera{
		{Yaw: 0.35, Pitch: 0.2},
		{Yaw: -0.5, Pitch: -0.15},
		{Yaw: 1.2, Pitch: 0.3},
	}
	bs, err := schedule.BinarySwap(o.P)
	if err != nil {
		return nil, err
	}
	rt, err := schedule.TwoNRT(o.P, 4)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Robustness sweep — 2N_RT(4) speedup over BS (P=%d, %dx%d)", o.P, o.Width, o.Height),
		Headers: []string{"dataset", "camera", "BS+trle sim", "2N_RT+trle sim", "speedup"},
	}
	worst := -1.0
	for _, ds := range []string{"engine", "head", "brain"} {
		for _, cam := range cameras {
			local := o
			local.Dataset = ds
			local.Camera = cam
			layers, err := Partials(local, o.P)
			if err != nil {
				return nil, err
			}
			bsRes, err := simnet.Simulate(bs, layers, codec.TRLE{}, o.Sim)
			if err != nil {
				return nil, err
			}
			rtRes, err := simnet.Simulate(rt, layers, codec.TRLE{}, o.Sim)
			if err != nil {
				return nil, err
			}
			speed := bsRes.Time / rtRes.Time
			if worst < 0 || speed < worst {
				worst = speed
			}
			t.Add(ds, fmt.Sprintf("yaw=%.2f pitch=%.2f", cam.Yaw, cam.Pitch),
				stats.Seconds(bsRes.Time), stats.Seconds(rtRes.Time), fmt.Sprintf("%.2fx", speed))

		}
	}
	t.Note("worst-case speedup across all cells: %.2fx — the RT advantage is view- and dataset-robust", worst)
	return []*stats.Table{t}, nil
}
