package experiments

import (
	"fmt"

	"rtcomp/internal/codec"
	"rtcomp/internal/model"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/simnet"
	"rtcomp/internal/stats"
)

// simTime runs one simulated composition and returns its composition time.
func simTime(sch *schedule.Schedule, layers []*raster.Image, codecName string, p simnet.Params) (float64, error) {
	cdc, err := codec.ByName(codecName)
	if err != nil {
		return 0, err
	}
	res, err := simnet.Simulate(sch, layers, cdc, p)
	if err != nil {
		return 0, err
	}
	return res.Time, nil
}

// runFig5 sweeps the number of initial blocks for both RT variants,
// printing the paper's theoretical series (Table 1 sums and the closed
// form) beside the simulated experimental series.
func runFig5(o Options) ([]*stats.Table, error) {
	layers, err := Partials(o, o.P)
	if err != nil {
		return nil, err
	}
	apix := o.Apix()
	t := &stats.Table{
		Title: fmt.Sprintf("Figure 5 — composition time vs initial blocks (dataset %s, P=%d, %dx%d)",
			o.Dataset, o.P, o.Width, o.Height),
		Headers: []string{"N", "N_RT model", "N_RT closed", "N_RT sim", "2N_RT model", "2N_RT closed", "2N_RT sim"},
	}
	bestSim, bestN := -1.0, 0
	for n := 1; n <= o.MaxN; n++ {
		row := []string{fmt.Sprint(n)}
		if o.P%2 == 0 {
			sch, err := schedule.NRT(o.P, n)
			if err != nil {
				return nil, err
			}
			sim, err := simTime(sch, layers, "raw", o.Sim)
			if err != nil {
				return nil, err
			}
			row = append(row,
				stats.Seconds(model.NRT(o.P, n, apix, o.Model).Total()),
				stats.Seconds(model.ClosedFormRT(o.P, n, apix, o.Model)),
				stats.Seconds(sim))
			if bestSim < 0 || sim < bestSim {
				bestSim, bestN = sim, n
			}
		} else {
			row = append(row, "-", "-", "-")
		}
		if n%2 == 0 {
			sch, err := schedule.TwoNRT(o.P, n)
			if err != nil {
				return nil, err
			}
			sim, err := simTime(sch, layers, "raw", o.Sim)
			if err != nil {
				return nil, err
			}
			row = append(row,
				stats.Seconds(model.TwoNRT(o.P, n, apix, o.Model).Total()),
				stats.Seconds(model.ClosedFormRT(o.P, n, apix, o.Model)),
				stats.Seconds(sim))
		} else {
			row = append(row, "-", "-", "-")
		}
		t.Add(row...)
	}
	b5, n5 := model.OptimalN2NRT(o.P, apix, o.Model)
	t.Note("simulated minimum at N=%d (%.4fs); Eq (5) closed-form bound %.2f -> N=%d under the paper's constants",
		bestN, bestSim, b5, n5)
	return []*stats.Table{t}, nil
}

// fig6P returns the processor sweep of Figure 6.
func fig6P(o Options) []int {
	if o.Quick {
		return []int{2, 4, 8}
	}
	return []int{2, 4, 8, 16, 24, 32}
}

// runFig6 compares the four methods across processor counts: the paper's
// theoretical totals and the simulated times, with the RT variants at their
// Figure 6 block counts (N=4 for 2N_RT, N=3 for N_RT).
func runFig6(o Options) ([]*stats.Table, error) {
	apix := o.Apix()
	t := &stats.Table{
		Title: fmt.Sprintf("Figure 6 — composition time of BS, PP, 2N_RT(4), N_RT(3) (dataset %s, %dx%d)",
			o.Dataset, o.Width, o.Height),
		Headers: []string{"P", "BS model", "BS sim", "PP model", "PP sim",
			"2N_RT model", "2N_RT sim", "N_RT model", "N_RT sim"},
	}
	for _, p := range fig6P(o) {
		layers, err := Partials(o, p)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(p)}
		if schedule.IsPowerOfTwo(p) {
			sch, _ := schedule.BinarySwap(p)
			sim, err := simTime(sch, layers, "raw", o.Sim)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Seconds(model.BS(p, apix, o.Model).Total()), stats.Seconds(sim))
		} else {
			row = append(row, "-", "-")
		}
		ppSch, err := schedule.Pipeline(p)
		if err != nil {
			return nil, err
		}
		ppSim, err := simTime(ppSch, layers, "raw", o.Sim)
		if err != nil {
			return nil, err
		}
		row = append(row, stats.Seconds(model.PP(p, apix, o.Model).Total()), stats.Seconds(ppSim))

		rt4, err := schedule.TwoNRT(p, 4)
		if err != nil {
			return nil, err
		}
		rt4Sim, err := simTime(rt4, layers, "raw", o.Sim)
		if err != nil {
			return nil, err
		}
		row = append(row, stats.Seconds(model.TwoNRT(p, 4, apix, o.Model).Total()), stats.Seconds(rt4Sim))

		if p%2 == 0 {
			rt3, err := schedule.NRT(p, 3)
			if err != nil {
				return nil, err
			}
			rt3Sim, err := simTime(rt3, layers, "raw", o.Sim)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Seconds(model.NRT(p, 3, apix, o.Model).Total()), stats.Seconds(rt3Sim))
		} else {
			row = append(row, "-", "-")
		}
		t.Add(row...)
	}
	t.Note("expected shape: RT variants beat BS and PP at the largest P; PP degrades linearly with P")
	return []*stats.Table{t}, nil
}

// runFig7 sweeps initial blocks for both RT variants with and without TRLE.
func runFig7(o Options) ([]*stats.Table, error) {
	layers, err := Partials(o, o.P)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title: fmt.Sprintf("Figure 7 — RT composition time with and without TRLE (dataset %s, P=%d, %dx%d)",
			o.Dataset, o.P, o.Width, o.Height),
		Headers: []string{"N", "N_RT raw", "N_RT trle", "2N_RT raw", "2N_RT trle"},
	}
	for n := 1; n <= o.MaxN; n++ {
		row := []string{fmt.Sprint(n)}
		if o.P%2 == 0 {
			sch, err := schedule.NRT(o.P, n)
			if err != nil {
				return nil, err
			}
			raw, err := simTime(sch, layers, "raw", o.Sim)
			if err != nil {
				return nil, err
			}
			trle, err := simTime(sch, layers, "trle", o.Sim)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Seconds(raw), stats.Seconds(trle))
		} else {
			row = append(row, "-", "-")
		}
		if n%2 == 0 {
			sch, err := schedule.TwoNRT(o.P, n)
			if err != nil {
				return nil, err
			}
			raw, err := simTime(sch, layers, "raw", o.Sim)
			if err != nil {
				return nil, err
			}
			trle, err := simTime(sch, layers, "trle", o.Sim)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Seconds(raw), stats.Seconds(trle))
		} else {
			row = append(row, "-", "-")
		}
		t.Add(row...)
	}
	t.Note("TRLE shrinks every transfer, so the whole curve shifts down")
	return []*stats.Table{t}, nil
}

// runFig8 crosses the four methods with the three codecs at the headline
// processor count.
func runFig8(o Options) ([]*stats.Table, error) {
	layers, err := Partials(o, o.P)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title: fmt.Sprintf("Figure 8 — composition time with raw, RLE and TRLE (dataset %s, P=%d, %dx%d)",
			o.Dataset, o.P, o.Width, o.Height),
		Headers: []string{"method", "raw", "rle", "trle"},
	}
	type m struct {
		name string
		sch  *schedule.Schedule
		err  error
	}
	var methods []m
	if schedule.IsPowerOfTwo(o.P) {
		bs, err := schedule.BinarySwap(o.P)
		methods = append(methods, m{"BS", bs, err})
	}
	pp, err := schedule.Pipeline(o.P)
	methods = append(methods, m{"PP", pp, err})
	rt4, err := schedule.TwoNRT(o.P, 4)
	methods = append(methods, m{"2N_RT(4)", rt4, err})
	if o.P%2 == 0 {
		rt3, err := schedule.NRT(o.P, 3)
		methods = append(methods, m{"N_RT(3)", rt3, err})
	}
	for _, mm := range methods {
		if mm.err != nil {
			return nil, mm.err
		}
		row := []string{mm.name}
		for _, cname := range codec.Names() {
			sim, err := simTime(mm.sch, layers, cname, o.Sim)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Seconds(sim))
		}
		t.Add(row...)
	}
	t.Note("expected ordering per method: trle < rle < raw; RT variants fastest overall")
	return []*stats.Table{t}, nil
}

// runCompress reports the compression behaviour of real rendered partial
// images across the three datasets — the data behind the paper's claim
// that TRLE outcompresses RLE on gray images.
func runCompress(o Options) ([]*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Partial-image compression (P=%d, %dx%d)", o.P, o.Width, o.Height),
		Headers: []string{"dataset", "blank fraction", "rle ratio", "trle ratio"},
	}
	for _, ds := range []string{"engine", "head", "brain"} {
		local := o
		local.Dataset = ds
		layers, err := Partials(local, o.P)
		if err != nil {
			return nil, err
		}
		var blanks []float64
		var raw, rle, trle int64
		for _, im := range layers {
			blanks = append(blanks, im.BlankFraction())
			raw += int64(len(im.Pix))
			rle += int64(len(codec.RLE{}.Encode(im.Pix)))
			trle += int64(len(codec.TRLE{}.Encode(im.Pix)))
		}
		t.Add(ds, fmt.Sprintf("%.2f", stats.Mean(blanks)),
			fmt.Sprintf("%.2f", codec.Ratio(int(raw), int(rle))),
			fmt.Sprintf("%.2f", codec.Ratio(int(raw), int(trle))))
	}
	t.Note("ratios are original/encoded over all ranks' partial images")
	return []*stats.Table{t}, nil
}
