package experiments

import (
	"fmt"

	"rtcomp/internal/codec"
	"rtcomp/internal/schedule"
	"rtcomp/internal/simnet"
	"rtcomp/internal/stats"
)

// runRadix sets rotate-tiling against radix-k (the post-paper
// generalisation of binary-swap used by IceT-era compositors) and the
// classic baselines — an extension beyond the paper's evaluation. P must be
// a power of two for the radix-k rounds.
func runRadix(o Options) ([]*stats.Table, error) {
	p := o.P
	if !schedule.IsPowerOfTwo(p) {
		return nil, fmt.Errorf("experiments: radix comparison needs a power-of-two P, got %d", p)
	}
	layers, err := Partials(o, p)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title: fmt.Sprintf("Extension — RT vs radix-k vs classic methods (dataset %s, P=%d, %dx%d)",
			o.Dataset, p, o.Width, o.Height),
		Headers: []string{"method", "steps", "messages", "payload", "sim time"},
	}
	type mth struct {
		name string
		sch  *schedule.Schedule
		err  error
	}
	bs, errBS := schedule.BinarySwap(p)
	tree, errTree := schedule.Tree(p)
	rt, errRT := schedule.RT(p, 4)
	var methods []mth
	methods = append(methods, mth{"binary-tree", tree, errTree})
	methods = append(methods, mth{"binary-swap", bs, errBS})
	factorSets := [][]int{}
	if def, err := schedule.DefaultFactors(p); err == nil {
		factorSets = append(factorSets, def)
	}
	if p >= 8 {
		factorSets = append(factorSets, []int{p}) // single-round direct exchange
	}
	for _, fs := range factorSets {
		rk, err := schedule.RadixK(p, fs)
		methods = append(methods, mth{fmt.Sprintf("radix-k%v", fs), rk, err})
	}
	methods = append(methods, mth{"RT(N=4)", rt, errRT})

	for _, m := range methods {
		if m.err != nil {
			return nil, m.err
		}
		census, err := schedule.Validate(m.sch, o.Apix())
		if err != nil {
			return nil, err
		}
		res, err := simnet.Simulate(m.sch, layers, codec.Raw{}, o.Sim)
		if err != nil {
			return nil, err
		}
		t.Add(m.name, fmt.Sprint(m.sch.NumSteps()), fmt.Sprint(census.TotalMessages()),
			stats.IBytes(census.TotalBytes()), stats.Seconds(res.Time))
	}
	t.Note("radix-k trades steps for per-round fan-out; RT additionally pipelines fine blocks, which is what beats binary-swap here")
	return []*stats.Table{t}, nil
}
