// Package experiments regenerates every table and figure of the paper's
// evaluation: the Table 1 cost model, the Figure 1/2 schedule walkthroughs,
// the Figure 3/4 TRLE examples, the Equation (5)/(6) optimal-N bounds, and
// the Figure 5-8 composition-time series (theoretical model plus simulated
// experiment on rendered phantom partials). Each experiment is a Spec in
// the Registry; cmd/rtbench and the repository benchmarks drive them.
package experiments

import (
	"fmt"
	"sync"

	"rtcomp/internal/model"
	"rtcomp/internal/partition"
	"rtcomp/internal/raster"
	"rtcomp/internal/shearwarp"
	"rtcomp/internal/simnet"
	"rtcomp/internal/stats"
	"rtcomp/internal/volume"
	"rtcomp/internal/xfer"
)

// Options parameterises an experiment run.
type Options struct {
	// Dataset is the phantom to render partial images from.
	Dataset string
	// P is the processor count of the headline experiments.
	P int
	// VolumeN is the cubic phantom resolution.
	VolumeN int
	// Width, Height are the composite image dimensions (the paper's A).
	Width, Height int
	// MaxN bounds the initial-block sweeps.
	MaxN int
	// Camera is the rendering view.
	Camera shearwarp.Camera
	// Sim is the virtual-time machine model for the "experimental" series.
	Sim simnet.Params
	// Model is the parameter set for the paper's theoretical formulas.
	Model model.Params
	// Quick shrinks the workload for tests.
	Quick bool
}

// DefaultOptions returns the paper-scale configuration: the engine dataset
// rendered by 32 processors into a 512x512 composite.
func DefaultOptions() Options {
	return Options{
		Dataset: "engine",
		P:       32,
		VolumeN: 128,
		Width:   512,
		Height:  512,
		MaxN:    16,
		Camera:  shearwarp.Camera{Yaw: 0.35, Pitch: 0.2},
		Sim:     simnet.SP2Calibrated(),
		Model:   model.PaperParams(),
	}
}

// QuickOptions returns a scaled-down configuration for tests.
func QuickOptions() Options {
	o := DefaultOptions()
	o.P = 8
	o.VolumeN = 48
	o.Width, o.Height = 128, 128
	o.MaxN = 8
	o.Quick = true
	return o
}

// Apix returns the composite image size in pixels.
func (o Options) Apix() int { return o.Width * o.Height }

// Spec describes one runnable experiment.
type Spec struct {
	// ID is the experiment key used on the command line.
	ID string
	// Title is the human-readable name.
	Title string
	// Paper cites the paper artifact the experiment regenerates.
	Paper string
	// Run produces the experiment's tables.
	Run func(Options) ([]*stats.Table, error)
}

// Registry lists every experiment in paper order.
func Registry() []Spec {
	return []Spec{
		{"table1", "Theoretical cost model of the four methods", "Table 1", runTable1},
		{"fig1", "2N_RT schedule walkthrough (P=3, N=4)", "Figure 1", runFig1},
		{"fig2", "N_RT schedule walkthrough (P=4, N=3)", "Figure 2", runFig2},
		{"fig3", "The 16 TRLE templates", "Figure 3", runFig3},
		{"fig4", "RLE vs TRLE compression example (18:5)", "Figure 4", runFig4},
		{"eq56", "Optimal initial block count bounds", "Equations (5) and (6)", runEq56},
		{"fig5", "Composition time vs initial blocks (N_RT, 2N_RT)", "Figure 5", runFig5},
		{"fig6", "BS vs PP vs 2N_RT vs N_RT composition time", "Figure 6", runFig6},
		{"fig7", "RT with and without TRLE vs initial blocks", "Figure 7", runFig7},
		{"fig8", "All methods with raw, RLE and TRLE", "Figure 8", runFig8},
		{"compress", "Partial-image compression ratios per dataset", "Section 4.2 context", runCompress},
		{"ablate", "RT design-ingredient ablation", "DESIGN.md reconstruction", runAblate},
		{"predict", "Census predictor vs simulator", "theory-vs-experiment check", runPredict},
		{"timeline", "Per-step completion times", "step-progression analysis", runTimeline},
		{"radix", "RT vs radix-k extension comparison", "extension baseline", runRadix},
		{"gantt", "Engine-occupancy Gantt charts", "overlap visualisation", runGantt},
		{"sweep", "RT-vs-BS robustness across datasets and views", "Section 4.1 'similar results'", runSweep},
		{"scaling", "Wall-clock pipeline speedup vs P", "end-to-end scaling", runScaling},
		{"contention", "One-port and straggler sensitivity", "machine-model stress", runContention},
	}
}

// ByID looks up an experiment.
func ByID(id string) (Spec, bool) {
	for _, s := range Registry() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// partialsCache memoises rendered partial-image sets per configuration.
var partialsCache sync.Map

type partialsKey struct {
	dataset       string
	p, volN, w, h int
	yaw, pitch    float64
}

// Partials renders the per-rank partial images of the dataset: the volume
// is cut into P depth slabs, each rendered to a partial intermediate image,
// then upscaled (nearest-neighbour, which commutes with compositing) to the
// composite size the paper uses.
func Partials(o Options, p int) ([]*raster.Image, error) {
	key := partialsKey{o.Dataset, p, o.VolumeN, o.Width, o.Height, o.Camera.Yaw, o.Camera.Pitch}
	if v, ok := partialsCache.Load(key); ok {
		return v.([]*raster.Image), nil
	}
	vol := volume.ByName(o.Dataset, o.VolumeN)
	if vol == nil {
		return nil, fmt.Errorf("experiments: unknown dataset %q", o.Dataset)
	}
	r := &shearwarp.Renderer{Vol: vol, TF: xfer.ForDataset(o.Dataset)}
	view, err := r.Factor(o.Camera)
	if err != nil {
		return nil, err
	}
	slabs, err := partition.Slabs1D(view.NK(), p)
	if err != nil {
		return nil, err
	}
	layers := make([]*raster.Image, p)
	for rank, s := range slabs {
		partial, err := r.RenderSlab(view, s.Lo, s.Hi)
		if err != nil {
			return nil, err
		}
		layers[rank] = partial.UpscaleNearest(o.Width, o.Height)
		// Real scans carry per-pixel acquisition noise; the flat phantoms
		// (and the nearest-neighbour upscale) do not, which would let plain
		// RLE exploit identical-value runs that real gray images lack.
		layers[rank].AddValueNoise(6, uint64(rank)+0xC0FFEE)
	}
	partialsCache.Store(key, layers)
	return layers, nil
}
