package experiments

import (
	"fmt"

	"rtcomp/internal/codec"
	"rtcomp/internal/model"
	"rtcomp/internal/schedule"
	"rtcomp/internal/simnet"
	"rtcomp/internal/stats"
)

// runPredict sets the census-based analytic predictor (the reconstruction's
// "theoretical" series) against the virtual-time simulator for every
// method — our analogue of the paper's theory-matches-experiment claim in
// Figure 5/6.
func runPredict(o Options) ([]*stats.Table, error) {
	layers, err := Partials(o, o.P)
	if err != nil {
		return nil, err
	}
	m := model.Params{Ts: o.Sim.Ts, Tp: o.Sim.TpPerByte, To: o.Sim.ToPerPixel}
	t := &stats.Table{
		Title: fmt.Sprintf("Census predictor vs simulator (dataset %s, P=%d, %dx%d, %s constants)",
			o.Dataset, o.P, o.Width, o.Height, o.Sim.Name),
		Headers: []string{"method", "predicted", "simulated", "pred/sim"},
	}
	type mth struct {
		name string
		sch  *schedule.Schedule
		err  error
	}
	var methods []mth
	if schedule.IsPowerOfTwo(o.P) {
		bs, err := schedule.BinarySwap(o.P)
		methods = append(methods, mth{"BS", bs, err})
	}
	tree, err := schedule.Tree(o.P)
	methods = append(methods, mth{"Tree", tree, err})
	pp, err := schedule.Pipeline(o.P)
	methods = append(methods, mth{"PP", pp, err})
	for _, n := range []int{2, 4, 8} {
		rt, err := schedule.RT(o.P, n)
		methods = append(methods, mth{fmt.Sprintf("RT(N=%d)", n), rt, err})
	}
	for _, mm := range methods {
		if mm.err != nil {
			return nil, mm.err
		}
		census, err := schedule.Validate(mm.sch, o.Apix())
		if err != nil {
			return nil, err
		}
		pred := model.PredictFromCensus(census, m)
		res, err := simnet.Simulate(mm.sch, layers, codec.Raw{}, o.Sim)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if res.Time > 0 {
			ratio = pred / res.Time
		}
		t.Add(mm.name, stats.Seconds(pred), stats.Seconds(res.Time), fmt.Sprintf("%.2f", ratio))
	}
	t.Note("the predictor ignores cross-step slack and blank-pixel over short-circuits, so it sits above the simulator; both must rank the methods the same way")
	return []*stats.Table{t}, nil
}

// runTimeline prints per-step completion times of the four methods — how
// the composition progresses through its steps under the simulator.
func runTimeline(o Options) ([]*stats.Table, error) {
	layers, err := Partials(o, o.P)
	if err != nil {
		return nil, err
	}
	type series struct {
		name  string
		times []float64
	}
	var all []series
	addSched := func(name string, sch *schedule.Schedule, err error) error {
		if err != nil {
			return err
		}
		res, err := simnet.Simulate(sch, layers, codec.Raw{}, o.Sim)
		if err != nil {
			return err
		}
		all = append(all, series{name, res.StepTime})
		return nil
	}
	if schedule.IsPowerOfTwo(o.P) {
		bs, err := schedule.BinarySwap(o.P)
		if err := addSched("BS", bs, err); err != nil {
			return nil, err
		}
	}
	pp, err := schedule.Pipeline(o.P)
	if err := addSched("PP", pp, err); err != nil {
		return nil, err
	}
	rt4, err := schedule.TwoNRT(o.P, 4)
	if err := addSched("2N_RT(4)", rt4, err); err != nil {
		return nil, err
	}

	maxSteps := 0
	for _, s := range all {
		if len(s.times) > maxSteps {
			maxSteps = len(s.times)
		}
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Per-step completion times (dataset %s, P=%d, %dx%d)", o.Dataset, o.P, o.Width, o.Height),
		Headers: []string{"step"},
	}
	for _, s := range all {
		t.Headers = append(t.Headers, s.name)
	}
	for k := 0; k < maxSteps; k++ {
		row := []string{fmt.Sprint(k + 1)}
		for _, s := range all {
			if k < len(s.times) {
				row = append(row, stats.Seconds(s.times[k]))
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	t.Note("log-step methods finish their traffic in ceil(log2 P) rows; the pipeline needs P-1")
	return []*stats.Table{t}, nil
}
