package experiments

import (
	"testing"
)

// TestPaperScaleOrderings runs the headline figures at the paper's full
// scale (P=32, 512x512) and pins the orderings the reproduction claims.
// Skipped under -short.
func TestPaperScaleOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale regression skipped in -short mode")
	}
	o := DefaultOptions()

	// Figure 6: at P=32, 2N_RT(4) < BS < PP in the simulated series.
	tables, err := runFig6(o)
	if err != nil {
		t.Fatal(err)
	}
	var row32 []string
	for _, r := range tables[0].Rows {
		if r[0] == "32" {
			row32 = r
		}
	}
	if row32 == nil {
		t.Fatal("fig6 P=32 row missing")
	}
	bs := parseSeconds(t, row32[2])
	pp := parseSeconds(t, row32[4])
	rt := parseSeconds(t, row32[6])
	if !(rt < bs && bs < pp) {
		t.Fatalf("fig6 ordering broken: 2N_RT %v, BS %v, PP %v", rt, bs, pp)
	}
	if bs/rt < 1.05 {
		t.Fatalf("RT speedup over BS degraded to %.2fx", bs/rt)
	}

	// Figure 5: the simulated N sweep must fall from N=1 to its minimum by
	// at least 2x (the pipelining gain).
	tables, err = runFig5(o)
	if err != nil {
		t.Fatal(err)
	}
	n1 := parseSeconds(t, tables[0].Rows[0][3])
	best := n1
	for _, r := range tables[0].Rows {
		if r[3] == "-" {
			continue
		}
		if v := parseSeconds(t, r[3]); v < best {
			best = v
		}
	}
	if n1/best < 2 {
		t.Fatalf("fig5 N sweep gain only %.2fx", n1/best)
	}

	// Figure 8: TRLE beats raw for every method.
	tables, err = runFig8(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tables[0].Rows {
		raw := parseSeconds(t, r[1])
		trle := parseSeconds(t, r[3])
		if trle >= raw {
			t.Fatalf("fig8 %s: trle %v not faster than raw %v", r[0], trle, raw)
		}
	}

	// Equation (5) worked example at full scale.
	tables, err = runEq56(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tables[0].Rows {
		if r[0] == "32" && r[2] != "4" {
			t.Fatalf("Eq(5) P=32 N = %s, want 4", r[2])
		}
	}
}
