package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig1", "fig2", "fig3", "fig4", "eq56", "fig5", "fig6", "fig7", "fig8", "compress", "ablate", "predict", "timeline", "radix", "gantt", "sweep", "scaling", "contention"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d specs, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %q, want %q", i, reg[i].ID, id)
		}
		if reg[i].Paper == "" || reg[i].Title == "" {
			t.Fatalf("%s: missing metadata", id)
		}
	}
	if _, ok := ByID("fig5"); !ok {
		t.Fatal("ByID(fig5) missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) found something")
	}
}

// Every experiment must run end to end in quick mode and produce non-empty
// tables.
func TestAllExperimentsRunQuick(t *testing.T) {
	o := QuickOptions()
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			tables, err := spec.Run(o)
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", spec.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: empty table %q", spec.ID, tb.Title)
				}
				if s := tb.String(); len(s) == 0 {
					t.Fatalf("%s: empty rendering", spec.ID)
				}
			}
		})
	}
}

func TestFig4ReproducesPaperBytes(t *testing.T) {
	tables, err := runFig4(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].String()
	if !strings.Contains(s, "5 26 15 8 10") {
		t.Fatalf("TRLE codes missing from output:\n%s", s)
	}
	if !strings.Contains(s, "18:5") {
		t.Fatalf("18:5 ratio missing:\n%s", s)
	}
}

func TestEq56ReproducesPaperExample(t *testing.T) {
	o := DefaultOptions() // needs the 512x512 A of the worked example
	tables, err := runEq56(o)
	if err != nil {
		t.Fatal(err)
	}
	// Find the P=32 row: Eq 5 bound ~4.3 -> N=4.
	found := false
	for _, row := range tables[0].Rows {
		if row[0] == "32" {
			found = true
			if row[2] != "4" {
				t.Fatalf("P=32 2N_RT N = %s, want 4", row[2])
			}
			if !strings.HasPrefix(row[1], "4.") {
				t.Fatalf("P=32 Eq5 bound = %s, want 4.x", row[1])
			}
		}
	}
	if !found {
		t.Fatal("P=32 row missing")
	}
}

func TestPartialsCachedAndDepthOrdered(t *testing.T) {
	o := QuickOptions()
	a, err := Partials(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partials(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0].Pix[0] != &b[0].Pix[0] {
		t.Fatal("partials not cached")
	}
	if len(a) != 4 {
		t.Fatalf("got %d layers", len(a))
	}
	for i, im := range a {
		if im.W != o.Width || im.H != o.Height {
			t.Fatalf("layer %d is %dx%d", i, im.W, im.H)
		}
		if im.BlankFraction() == 1 {
			t.Fatalf("layer %d is empty", i)
		}
	}
}

func TestPartialsUnknownDataset(t *testing.T) {
	o := QuickOptions()
	o.Dataset = "zap"
	if _, err := Partials(o, 2); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// The quick fig8 run must preserve the paper's headline orderings.
func TestFig8Orderings(t *testing.T) {
	o := QuickOptions()
	tables, err := runFig8(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for _, row := range tb.Rows {
		raw := parseSeconds(t, row[1])
		trle := parseSeconds(t, row[3])
		if trle >= raw {
			t.Fatalf("%s: trle %v not faster than raw %v", row[0], trle, raw)
		}
	}
}

// parseSeconds inverts stats.Seconds ("12.34ms", "1.5us", "2.000s").
func parseSeconds(t *testing.T, s string) float64 {
	t.Helper()
	i := 0
	for i < len(s) && (s[i] == '.' || s[i] == '-' || (s[i] >= '0' && s[i] <= '9')) {
		i++
	}
	v, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	switch s[i:] {
	case "us":
		return v * 1e-6
	case "ms":
		return v * 1e-3
	default:
		return v
	}
}
