package experiments

import (
	"fmt"

	"rtcomp/internal/codec"
	"rtcomp/internal/schedule"
	"rtcomp/internal/simnet"
	"rtcomp/internal/stats"
)

// runAblate quantifies the design ingredients of the RT reconstruction
// called out in DESIGN.md: per-tile tree rotation, load-balanced keeper
// choice, and free-running (no per-step barrier) execution. Each variant
// is still a correct composition (the validator runs on all of them); the
// table shows what each ingredient buys.
func runAblate(o Options) ([]*stats.Table, error) {
	layers, err := Partials(o, o.P)
	if err != nil {
		return nil, err
	}
	n := 4
	t := &stats.Table{
		Title: fmt.Sprintf("Ablation — RT(N=%d) design ingredients (dataset %s, P=%d, %dx%d)",
			n, o.Dataset, o.P, o.Width, o.Height),
		Headers: []string{"variant", "sim time", "messages", "max/min final blocks per rank"},
	}
	type variant struct {
		name    string
		opts    schedule.RTOpts
		barrier bool
	}
	variants := []variant{
		{"full (rotate + balance, free-running)", schedule.RTOpts{}, false},
		{"no rotation", schedule.RTOpts{NoRotate: true}, false},
		{"no load balancing", schedule.RTOpts{NoBalance: true}, false},
		{"neither", schedule.RTOpts{NoRotate: true, NoBalance: true}, false},
		{"full + per-step barrier", schedule.RTOpts{}, true},
	}
	for _, v := range variants {
		sch, err := schedule.RTWithOpts(o.P, n, v.opts)
		if err != nil {
			return nil, err
		}
		census, err := schedule.Validate(sch, o.Apix())
		if err != nil {
			return nil, fmt.Errorf("ablation variant %q is incorrect: %w", v.name, err)
		}
		params := o.Sim
		params.StepBarrier = v.barrier
		res, err := simnet.Simulate(sch, layers, codec.Raw{}, params)
		if err != nil {
			return nil, err
		}
		perRank := make([]int, o.P)
		for _, h := range census.Final {
			perRank[h.Rank]++
		}
		min, max := perRank[0], perRank[0]
		for _, c := range perRank[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		t.Add(v.name, stats.Seconds(res.Time), fmt.Sprint(census.TotalMessages()),
			fmt.Sprintf("%d/%d", max, min))
	}
	t.Note("every variant passes the correctness validator; the ingredients only affect balance and time")
	return []*stats.Table{t}, nil
}
