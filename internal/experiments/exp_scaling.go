package experiments

import (
	"fmt"
	"runtime"
	"time"

	"rtcomp/internal/core"
	"rtcomp/internal/stats"
)

// runScaling times the full pipeline — partition, render, composite, warp
// — for real on goroutine ranks across processor counts, the classic
// parallel-rendering speedup table. Unlike the simulated figures, these
// numbers depend on the machine running the experiment; the shape (render
// scales, composition grows slowly) is the point.
func runScaling(o Options) ([]*stats.Table, error) {
	ps := []int{1, 2, 4, 8}
	if o.Quick {
		ps = []int{1, 2, 4}
	}
	t := &stats.Table{
		Title: fmt.Sprintf("Pipeline scaling — wall clock on %d-core host (dataset %s, vol %d^3, %dx%d, nrt:auto, trle)",
			runtime.NumCPU(), o.Dataset, o.VolumeN, o.Width, o.Height),
		Headers: []string{"P", "render", "composite+gather", "total", "speedup", "efficiency"},
	}
	var base time.Duration
	for _, p := range ps {
		cfg := core.Config{
			Dataset:    o.Dataset,
			VolumeN:    o.VolumeN,
			Camera:     o.Camera,
			Width:      o.Width,
			Height:     o.Height,
			P:          p,
			Method:     core.Method{Kind: "rt"}, // N resolved automatically
			Codec:      "trle",
			Accelerate: true,
		}
		// Best of three runs smooths scheduler noise.
		var best *core.FrameReport
		var bestTotal time.Duration
		for trial := 0; trial < 3; trial++ {
			t0 := time.Now()
			rep, err := core.RenderParallel(cfg)
			if err != nil {
				return nil, err
			}
			total := time.Since(t0)
			if best == nil || total < bestTotal {
				best, bestTotal = rep, total
			}
		}
		if p == ps[0] {
			base = bestTotal
		}
		speedup := float64(base) / float64(bestTotal) * float64(ps[0])
		t.Add(fmt.Sprint(p),
			best.RenderTime.Round(time.Microsecond).String(),
			best.CompositeAll.Round(time.Microsecond).String(),
			bestTotal.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.0f%%", 100*speedup/float64(p)))
	}
	t.Note("wall-clock numbers are machine-dependent; regenerate on the host of interest")
	return []*stats.Table{t}, nil
}
