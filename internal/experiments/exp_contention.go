package experiments

import (
	"fmt"

	"rtcomp/internal/codec"
	"rtcomp/internal/schedule"
	"rtcomp/internal/simnet"
	"rtcomp/internal/stats"
)

// runContention studies the methods under two machine-model stresses the
// SP2 baseline hides: a one-port network (incoming messages serialise
// through each receive port) and a single 3x straggler rank. Methods that
// spread traffic and work — the rotate-tiling idea — should degrade least.
func runContention(o Options) ([]*stats.Table, error) {
	p := o.P
	layers, err := Partials(o, p)
	if err != nil {
		return nil, err
	}
	type mth struct {
		name string
		sch  *schedule.Schedule
		err  error
	}
	var methods []mth
	if schedule.IsPowerOfTwo(p) {
		bs, err := schedule.BinarySwap(p)
		methods = append(methods, mth{"BS", bs, err})
	}
	pp, err := schedule.Pipeline(p)
	methods = append(methods, mth{"PP", pp, err})
	ds, err := schedule.DirectSend(p)
	methods = append(methods, mth{"DS", ds, err})
	rt, err := schedule.TwoNRT(p, 4)
	methods = append(methods, mth{"2N_RT(4)", rt, err})

	base := o.Sim
	onePort := o.Sim
	onePort.SinglePort = true
	straggler := o.Sim
	straggler.RankSpeed = make([]float64, p)
	for i := range straggler.RankSpeed {
		straggler.RankSpeed[i] = 1
	}
	straggler.RankSpeed[p/2] = 3

	t := &stats.Table{
		Title: fmt.Sprintf("Contention and stragglers (dataset %s, P=%d, %dx%d)",
			o.Dataset, p, o.Width, o.Height),
		Headers: []string{"method", "baseline", "one-port", "penalty", "3x straggler", "penalty"},
	}
	for _, m := range methods {
		if m.err != nil {
			return nil, m.err
		}
		b, err := simnet.Simulate(m.sch, layers, codec.Raw{}, base)
		if err != nil {
			return nil, err
		}
		op, err := simnet.Simulate(m.sch, layers, codec.Raw{}, onePort)
		if err != nil {
			return nil, err
		}
		st, err := simnet.Simulate(m.sch, layers, codec.Raw{}, straggler)
		if err != nil {
			return nil, err
		}
		t.Add(m.name, stats.Seconds(b.Time),
			stats.Seconds(op.Time), fmt.Sprintf("%.2fx", op.Time/b.Time),
			stats.Seconds(st.Time), fmt.Sprintf("%.2fx", st.Time/b.Time))
	}
	t.Note("one rank runs at a third of nominal speed in the straggler column; one-port serialises each receive port")
	return []*stats.Table{t}, nil
}
