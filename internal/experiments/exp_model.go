package experiments

import (
	"fmt"

	"rtcomp/internal/model"
	"rtcomp/internal/schedule"
	"rtcomp/internal/stats"
)

// runTable1 evaluates the paper's Table 1 formulas — steps, block sizes,
// communication and computation time — for each method, and sets the
// symbolic census of the implemented schedules next to the model.
func runTable1(o Options) ([]*stats.Table, error) {
	m := o.Model
	apix := o.Apix()
	t := &stats.Table{
		Title:   fmt.Sprintf("Table 1 — theoretical costs (P=%d, A=%dx%d, Ts=%g, Tp=%g, To=%g)", o.P, o.Width, o.Height, m.Ts, m.Tp, m.To),
		Headers: []string{"method", "steps", "T_comm", "T_comp", "T_total"},
	}
	type row struct {
		name  string
		steps int
		cost  model.Cost
	}
	s := schedule.CeilLog2(o.P)
	rows := []row{
		{"BS", s, model.BS(o.P, apix, m)},
		{"PP", o.P - 1, model.PP(o.P, apix, m)},
		{"2N_RT(N=4)", s, model.TwoNRT(o.P, 4, apix, m)},
		{"N_RT(N=3)", s, model.NRT(o.P, 3, apix, m)},
	}
	for _, r := range rows {
		t.Add(r.name, fmt.Sprint(r.steps),
			stats.Seconds(r.cost.Comm), stats.Seconds(r.cost.Comp), stats.Seconds(r.cost.Total()))
	}
	t.Note("block size at step k: BS A/2^k, PP A/P, RT A/(N*2^(k-1)) — as printed in Table 1")

	// Companion: the implemented schedules' symbolic traffic census.
	c := &stats.Table{
		Title:   "Implemented schedules — symbolic traffic census (raw codec)",
		Headers: []string{"method", "steps", "messages", "payload", "over-pixels"},
	}
	add := func(name string, sch *schedule.Schedule, err error) error {
		if err != nil {
			return err
		}
		census, err := schedule.Validate(sch, apix)
		if err != nil {
			return err
		}
		c.Add(name, fmt.Sprint(sch.NumSteps()), fmt.Sprint(census.TotalMessages()),
			stats.IBytes(census.TotalBytes()), fmt.Sprint(census.TotalOverPixels()))
		return nil
	}
	bs, errBS := schedule.BinarySwap(o.P)
	if errBS == nil {
		if err := add("BS", bs, nil); err != nil {
			return nil, err
		}
	}
	pp, err := schedule.Pipeline(o.P)
	if err == nil {
		err = add("PP", pp, nil)
	}
	if err != nil {
		return nil, err
	}
	for _, n := range []int{3, 4} {
		sch, err := schedule.RT(o.P, n)
		if err != nil {
			return nil, err
		}
		if err := add(fmt.Sprintf("RT(N=%d)", n), sch, nil); err != nil {
			return nil, err
		}
	}
	return []*stats.Table{t, c}, nil
}

// runEq56 evaluates the Equation (5)/(6) optimal-N machinery across
// processor counts, reproducing the paper's worked example at P=32.
func runEq56(o Options) ([]*stats.Table, error) {
	m := o.Model
	apix := o.Apix()
	t := &stats.Table{
		Title:   fmt.Sprintf("Equations (5)/(6) — optimal initial blocks (A=%dx%d, Ts=%g, Tp=%g, To=%g)", o.Width, o.Height, m.Ts, m.Tp, m.To),
		Headers: []string{"P", "eq5 bound", "2N_RT N", "eq6 bound", "N_RT N", "closed-form best even N"},
	}
	for _, p := range []int{4, 8, 16, 32, 64} {
		b5, n5 := model.OptimalN2NRT(p, apix, m)
		b6, n6 := model.OptimalNNRT(p, apix, m)
		best := model.BestNByClosedForm(p, apix, 64, true, m)
		t.Add(fmt.Sprint(p), fmt.Sprintf("%.2f", b5), fmt.Sprint(n5),
			fmt.Sprintf("%.2f", b6), fmt.Sprint(n6), fmt.Sprint(best))
	}
	t.Note("paper's worked example at P=32: Eq (5) bound ~4.3 -> N=4; Eq (6) printed formula gives ~5.4 where the paper states 3.4 (OCR-damaged closed form, see DESIGN.md)")
	return []*stats.Table{t}, nil
}
