package experiments

import (
	"fmt"
	"strings"

	"rtcomp/internal/codec"
	"rtcomp/internal/schedule"
	"rtcomp/internal/stats"
)

// traceSchedule renders a schedule's transfers step by step plus the final
// block distribution — the walkthrough style of the paper's Figures 1/2.
func traceSchedule(title string, sch *schedule.Schedule, apix int) ([]*stats.Table, error) {
	census, err := schedule.Validate(sch, apix)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   title,
		Headers: []string{"step", "transfers (sender -> receiver: block)"},
	}
	for si, step := range sch.Steps {
		var parts []string
		for _, tr := range step.Transfers {
			parts = append(parts, fmt.Sprintf("P%d->P%d: %v", tr.From, tr.To, tr.Block))
		}
		suffix := ""
		if step.PostHalvings > 0 {
			suffix = "  (then halve blocks)"
		}
		if step.PreHalvings > 0 {
			suffix = "  (blocks halved first)"
		}
		t.Add(fmt.Sprint(si+1), strings.Join(parts, ", ")+suffix)
	}

	d := &stats.Table{
		Title:   "Final block distribution (every processor holds part of the final image)",
		Headers: []string{"rank", "final blocks"},
	}
	perRank := map[int][]string{}
	for _, h := range census.Final {
		perRank[h.Rank] = append(perRank[h.Rank], h.Block.String())
	}
	for r := 0; r < sch.P; r++ {
		d.Add(fmt.Sprintf("P%d", r), strings.Join(perRank[r], " "))
	}
	d.Note("validated: every final block composited from all %d ranks exactly once, in depth order", sch.P)
	return []*stats.Table{t, d}, nil
}

func runFig1(o Options) ([]*stats.Table, error) {
	sch, err := schedule.TwoNRT(3, 4)
	if err != nil {
		return nil, err
	}
	return traceSchedule("Figure 1 — 2N_RT with three processors and four initial blocks", sch, o.Apix())
}

func runFig2(o Options) ([]*stats.Table, error) {
	sch, err := schedule.NRT(4, 3)
	if err != nil {
		return nil, err
	}
	return traceSchedule("Figure 2 — N_RT with four processors and three initial blocks", sch, o.Apix())
}

func runFig3(Options) ([]*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 3 — the 16 TRLE templates (2x2 pixels; # = non-blank)",
		Headers: []string{"code", "top row", "bottom row"},
	}
	render := func(a, b bool) string {
		cell := func(x bool) byte {
			if x {
				return '#'
			}
			return '.'
		}
		return string([]byte{cell(a), cell(b)})
	}
	for id, tpl := range codec.TemplateTable() {
		t.Add(fmt.Sprint(id), render(tpl[0][0], tpl[0][1]), render(tpl[1][0], tpl[1][1]))
	}
	t.Note("TRLE code byte: low nibble = template id, high nibble = repetitions-1 (up to 16 templates per byte)")
	return []*stats.Table{t}, nil
}

func runFig4(Options) ([]*stats.Table, error) {
	// The two 24-pixel scanlines reconstructed from the paper's RLE codes.
	rows := [2][]uint8{
		{1, 2, 1, 1, 1, 3, 1, 1, 1},
		{1, 2, 1, 1, 1, 2, 2, 1, 1},
	}
	m := codec.NewMask(12, 2)
	for y, runs := range rows {
		x := 0
		set := false
		for _, r := range runs {
			for j := uint8(0); j < r; j++ {
				m.Set(x, y, set)
				x++
			}
			set = !set
		}
	}
	rleTotal := 0
	var rleStrs []string
	for y := 0; y < 2; y++ {
		row := make([]bool, 12)
		copy(row, m.Bits[y*12:(y+1)*12])
		runs, _ := codec.EncodeMaskRLE(row)
		rleTotal += len(runs)
		var s []string
		for _, r := range runs {
			s = append(s, fmt.Sprint(r))
		}
		rleStrs = append(rleStrs, strings.Join(s, ""))
	}
	trle := codec.EncodeMaskTRLE(m)
	var trleStrs []string
	for _, c := range trle {
		trleStrs = append(trleStrs, fmt.Sprint(c))
	}

	t := &stats.Table{
		Title:   "Figure 4 — RLE vs TRLE on the paper's two 12-pixel scanlines",
		Headers: []string{"encoding", "codes", "bytes"},
	}
	t.Add("RLE line 1", rleStrs[0], fmt.Sprint(len(rleStrs[0])))
	t.Add("RLE line 2", rleStrs[1], fmt.Sprint(len(rleStrs[1])))
	t.Add("RLE total", "", fmt.Sprint(rleTotal))
	t.Add("TRLE", strings.Join(trleStrs, " "), fmt.Sprint(len(trle)))
	t.Note("compression ratio RLE:TRLE = %d:%d (paper: 18:5)", rleTotal, len(trle))
	return []*stats.Table{t}, nil
}
