// Package traceid defines the compact causal trace context piggybacked on
// every message the fabrics carry: enough to link a send span on one rank
// to the recv/decode/merge spans its payload triggers on another, without
// growing frames beyond a fixed 16 bytes.
//
// A context is minted by the sending fabric — the origin rank plus a
// per-origin sequence number make the flow id globally unique for a run —
// and the compositor enriches it with the (step, tile, epoch) coordinates
// of the transfer so a stitched timeline can attribute every wire crossing
// to its place in the composition schedule. The zero Context is "no
// context": it encodes to all-clear flag bytes and decodes back to zero,
// so untraced frames cost nothing but the reserved bytes.
//
// Wire layout (fixed WireSize bytes, little-endian):
//
//	[0]     version (wireVersion)
//	[1]     flags (bit 0: context present)
//	[2:4]   origin rank (uint16)
//	[4:6]   recovery epoch (uint16)
//	[6:10]  per-origin sequence (uint32, 1-based; 0 never encodes as present)
//	[10:12] schedule step (int16, -1 = none)
//	[12:14] tile (int16, -1 = none)
//	[14:16] reserved (zero)
package traceid

import (
	"encoding/binary"
	"fmt"
)

// WireSize is the fixed encoded size of a Context.
const WireSize = 16

// wireVersion is the encoding version byte; Decode rejects others.
const wireVersion = 1

// flagPresent marks an encoded context as carrying a real trace id.
const flagPresent = 1

// Context is the causal coordinate of one message. Origin and Seq identify
// the flow (assigned by the sending fabric); Step, Tile and Epoch locate it
// in the composition schedule (-1 where not applicable).
type Context struct {
	Origin int    // rank that minted the context
	Seq    uint32 // per-origin sequence, 1-based; 0 means "no context"
	Step   int    // 0-based composition step, or -1
	Tile   int    // tile index, or -1
	Epoch  int    // recovery epoch
}

// Valid reports whether the context carries a real trace id.
func (c Context) Valid() bool { return c.Seq != 0 }

// ID is the globally unique flow identifier of the context within a run:
// the origin rank in the high bits, the per-origin sequence in the low.
func (c Context) ID() uint64 {
	return uint64(uint16(c.Origin))<<32 | uint64(c.Seq)
}

// Encode writes the context into b, which must hold at least WireSize
// bytes. The zero Context encodes with the present flag clear.
func (c Context) Encode(b []byte) {
	_ = b[WireSize-1]
	b[0] = wireVersion
	if !c.Valid() {
		for i := 1; i < WireSize; i++ {
			b[i] = 0
		}
		return
	}
	b[1] = flagPresent
	binary.LittleEndian.PutUint16(b[2:4], uint16(c.Origin))
	binary.LittleEndian.PutUint16(b[4:6], uint16(c.Epoch))
	binary.LittleEndian.PutUint32(b[6:10], c.Seq)
	binary.LittleEndian.PutUint16(b[10:12], uint16(int16(c.Step)))
	binary.LittleEndian.PutUint16(b[12:14], uint16(int16(c.Tile)))
	b[14], b[15] = 0, 0
}

// AppendTo appends the WireSize-byte encoding of the context to dst.
func (c Context) AppendTo(dst []byte) []byte {
	var buf [WireSize]byte
	c.Encode(buf[:])
	return append(dst, buf[:]...)
}

// Decode parses a context from the first WireSize bytes of b. A clear
// present flag yields the zero Context; unknown versions, short input and
// a present flag without a sequence are errors.
func Decode(b []byte) (Context, error) {
	if len(b) < WireSize {
		return Context{}, fmt.Errorf("traceid: short context: %d bytes", len(b))
	}
	if b[0] != wireVersion {
		return Context{}, fmt.Errorf("traceid: unknown context version %d", b[0])
	}
	if b[1]&flagPresent == 0 {
		return Context{}, nil
	}
	c := Context{
		Origin: int(binary.LittleEndian.Uint16(b[2:4])),
		Epoch:  int(binary.LittleEndian.Uint16(b[4:6])),
		Seq:    binary.LittleEndian.Uint32(b[6:10]),
		Step:   int(int16(binary.LittleEndian.Uint16(b[10:12]))),
		Tile:   int(int16(binary.LittleEndian.Uint16(b[12:14]))),
	}
	if !c.Valid() {
		return Context{}, fmt.Errorf("traceid: present flag set with zero sequence")
	}
	return c, nil
}
