package traceid

import (
	"bytes"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	cases := []Context{
		{Origin: 0, Seq: 1, Step: 0, Tile: 0, Epoch: 0},
		{Origin: 3, Seq: 42, Step: 5, Tile: 7, Epoch: 2},
		{Origin: 65535, Seq: 0xFFFFFFFF, Step: -1, Tile: -1, Epoch: 65535},
		{Origin: 12, Seq: 7, Step: 32767, Tile: -32768, Epoch: 1},
	}
	for _, c := range cases {
		var b [WireSize]byte
		c.Encode(b[:])
		got, err := Decode(b[:])
		if err != nil {
			t.Fatalf("Decode(%+v): %v", c, err)
		}
		if got != c {
			t.Errorf("round trip: got %+v, want %+v", got, c)
		}
	}
}

func TestZeroContext(t *testing.T) {
	var zero Context
	if zero.Valid() {
		t.Fatal("zero Context must be invalid")
	}
	var b [WireSize]byte
	zero.Encode(b[:])
	got, err := Decode(b[:])
	if err != nil {
		t.Fatalf("Decode(zero): %v", err)
	}
	if got.Valid() || got != (Context{}) {
		t.Errorf("zero round trip: got %+v", got)
	}
}

// TestEncodeClearsStale proves Encode fully overwrites a dirty buffer — the
// tcpnet header scratch is reused across frames.
func TestEncodeClearsStale(t *testing.T) {
	dirty := bytes.Repeat([]byte{0xAA}, WireSize)
	(Context{}).Encode(dirty)
	got, err := Decode(dirty)
	if err != nil || got.Valid() {
		t.Fatalf("stale buffer leaked: ctx=%+v err=%v", got, err)
	}
}

func TestAppendTo(t *testing.T) {
	c := Context{Origin: 1, Seq: 9, Step: 2, Tile: 3, Epoch: 0}
	out := c.AppendTo([]byte{0xFF})
	if len(out) != 1+WireSize || out[0] != 0xFF {
		t.Fatalf("AppendTo length/prefix wrong: %v", out)
	}
	got, err := Decode(out[1:])
	if err != nil || got != c {
		t.Fatalf("AppendTo round trip: got %+v err=%v", got, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, WireSize-1)); err == nil {
		t.Error("short input must error")
	}
	bad := make([]byte, WireSize)
	bad[0] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("unknown version must error")
	}
	flagNoSeq := make([]byte, WireSize)
	flagNoSeq[0] = wireVersion
	flagNoSeq[1] = flagPresent
	if _, err := Decode(flagNoSeq); err == nil {
		t.Error("present flag with zero seq must error")
	}
}

func TestIDUniquePerOriginSeq(t *testing.T) {
	seen := map[uint64]bool{}
	for origin := 0; origin < 4; origin++ {
		for seq := uint32(1); seq <= 4; seq++ {
			id := (Context{Origin: origin, Seq: seq}).ID()
			if seen[id] {
				t.Fatalf("duplicate ID %#x for origin=%d seq=%d", id, origin, seq)
			}
			seen[id] = true
		}
	}
}

// FuzzContextDecode is the trace-context frame decoder fuzz target: any
// input either errors or decodes to a context that re-encodes and
// re-decodes to itself.
func FuzzContextDecode(f *testing.F) {
	f.Add(make([]byte, WireSize))
	seed := Context{Origin: 2, Seq: 77, Step: 3, Tile: 1, Epoch: 1}
	f.Add(seed.AppendTo(nil))
	f.Add([]byte{wireVersion, flagPresent, 1, 0, 0, 0, 5, 0, 0, 0, 255, 255, 255, 255, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return
		}
		var b [WireSize]byte
		c.Encode(b[:])
		again, err := Decode(b[:])
		if err != nil {
			t.Fatalf("re-decode of encoded context failed: %v", err)
		}
		if again != c {
			t.Fatalf("re-encode changed context: %+v -> %+v", c, again)
		}
	})
}
