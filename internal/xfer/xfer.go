// Package xfer implements transfer functions — the classification step of
// volume rendering that maps raw scalars to a rendered gray value and an
// opacity. A Func is a 256-entry lookup table, evaluated per resampled
// voxel by the renderer.
package xfer

import "fmt"

// Func maps a scalar to (gray value, alpha). Alpha 0 means fully
// transparent: the sample contributes nothing.
type Func struct {
	Value [256]uint8
	Alpha [256]uint8
}

// Classify applies the transfer function to one scalar.
func (f *Func) Classify(s uint8) (v, a uint8) { return f.Value[s], f.Alpha[s] }

// Ramp builds a window/level classification: scalars below lo are
// transparent, scalars above hi are fully maxAlpha-opaque with value
// maxValue, and the window [lo, hi] ramps linearly in both channels.
func Ramp(lo, hi uint8, maxValue, maxAlpha uint8) *Func {
	f := &Func{}
	for s := 0; s < 256; s++ {
		switch {
		case s < int(lo):
			// transparent
		case s >= int(hi):
			f.Value[s] = maxValue
			f.Alpha[s] = maxAlpha
		default:
			t := float64(s-int(lo)) / float64(int(hi)-int(lo))
			f.Value[s] = uint8(t * float64(maxValue))
			f.Alpha[s] = uint8(t * float64(maxAlpha))
		}
	}
	return f
}

// Isosurface builds a hard-threshold classification: opaque at and above
// the threshold, transparent below — the bone/metal look.
func Isosurface(threshold uint8, value uint8) *Func {
	f := &Func{}
	for s := int(threshold); s < 256; s++ {
		f.Value[s] = value
		f.Alpha[s] = 255
	}
	return f
}

// Parse builds a transfer function from a "lo:hi:value:alpha" window
// specification (e.g. "120:210:235:160"), the CLI syntax of the tools.
func Parse(spec string) (*Func, error) {
	var lo, hi, val, al int
	if _, err := fmt.Sscanf(spec, "%d:%d:%d:%d", &lo, &hi, &val, &al); err != nil {
		return nil, fmt.Errorf("xfer: bad spec %q, want lo:hi:value:alpha: %v", spec, err)
	}
	for _, v := range []int{lo, hi, val, al} {
		if v < 0 || v > 255 {
			return nil, fmt.Errorf("xfer: spec %q has out-of-range byte %d", spec, v)
		}
	}
	if hi <= lo {
		return nil, fmt.Errorf("xfer: spec %q needs hi > lo", spec)
	}
	return Ramp(uint8(lo), uint8(hi), uint8(val), uint8(al)), nil
}

// ForDataset returns the preset classification used by the experiments for
// each phantom: a semi-opaque ramp that leaves realistic blank backgrounds
// in the partial images.
func ForDataset(name string) *Func {
	switch name {
	case "engine":
		// Bring out the metal casting, hide the fluid channel.
		return Ramp(120, 210, 235, 160)
	case "head":
		// Skin-to-bone ramp: soft tissue translucent, skull bright.
		return Ramp(60, 220, 245, 120)
	case "brain":
		// Soft tissue only, gentle opacity.
		return Ramp(50, 150, 220, 90)
	}
	return Ramp(1, 255, 255, 128)
}
