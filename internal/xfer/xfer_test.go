package xfer

import "testing"

func TestRampEndpoints(t *testing.T) {
	f := Ramp(100, 200, 250, 180)
	if v, a := f.Classify(50); v != 0 || a != 0 {
		t.Fatalf("below window: (%d,%d)", v, a)
	}
	if v, a := f.Classify(250); v != 250 || a != 180 {
		t.Fatalf("above window: (%d,%d)", v, a)
	}
	v1, a1 := f.Classify(120)
	v2, a2 := f.Classify(180)
	if !(v1 < v2 && a1 < a2) {
		t.Fatalf("ramp not monotone: (%d,%d) then (%d,%d)", v1, a1, v2, a2)
	}
}

func TestIsosurface(t *testing.T) {
	f := Isosurface(128, 200)
	if _, a := f.Classify(127); a != 0 {
		t.Fatal("below threshold should be transparent")
	}
	if v, a := f.Classify(128); v != 200 || a != 255 {
		t.Fatal("at threshold should be fully opaque")
	}
}

func TestDatasetPresetsTransparentAir(t *testing.T) {
	for _, name := range []string{"engine", "head", "brain", "other"} {
		f := ForDataset(name)
		if _, a := f.Classify(0); a != 0 {
			t.Fatalf("%s: air is not transparent", name)
		}
		// Something must be visible.
		visible := false
		for s := 0; s < 256; s++ {
			if f.Alpha[s] > 0 {
				visible = true
				break
			}
		}
		if !visible {
			t.Fatalf("%s: nothing visible", name)
		}
	}
}

func TestParse(t *testing.T) {
	f, err := Parse("120:210:235:160")
	if err != nil {
		t.Fatal(err)
	}
	if v, a := f.Classify(250); v != 235 || a != 160 {
		t.Fatalf("above window = (%d,%d)", v, a)
	}
	if _, a := f.Classify(100); a != 0 {
		t.Fatal("below window not transparent")
	}
	for _, bad := range []string{"", "1:2:3", "300:400:1:1", "9:5:1:1", "a:b:c:d"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}
