package shearwarp

import (
	"testing"

	"rtcomp/internal/partition"
	"rtcomp/internal/raster"
	"rtcomp/internal/volume"
	"rtcomp/internal/xfer"
)

// The encoded volume must render byte-identically to the plain path for
// every dataset, cameras in every principal-axis octant (exercising all
// three encodings and the flips), and arbitrary slabs.
func TestRLEVolumeMatchesPlainExactly(t *testing.T) {
	cams := []Camera{
		{},                        // +Z
		{Yaw: 3.14},               // -Z (flip)
		{Yaw: 1.57},               // +X
		{Yaw: -1.57},              // -X
		{Pitch: 1.5},              // Y principal
		{Yaw: 0.4, Pitch: -0.3},   // sheared
		{Yaw: -2.62, Pitch: 0.25}, // sheared, flipped
		{Yaw: 2.0, Pitch: -1.2},   // Y principal, flipped
	}
	for _, name := range volume.Datasets {
		r := testRenderer(name, 24)
		rv := NewRLEVolume(r.Vol, r.TF)
		for _, cam := range cams {
			v, err := r.Factor(cam)
			if err != nil {
				t.Fatal(err)
			}
			slabs, err := partition.Slabs1D(v.NK(), 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range slabs {
				plain, err := r.RenderSlab(v, s.Lo, s.Hi)
				if err != nil {
					t.Fatal(err)
				}
				rle, err := r.RenderSlabRLE(rv, v, s.Lo, s.Hi)
				if err != nil {
					t.Fatal(err)
				}
				if !raster.Equal(plain, rle) {
					t.Fatalf("%s cam=%+v slab=%+v: RLE render differs (maxdiff %d)",
						name, cam, s, raster.MaxDiff(plain, rle))
				}
			}
		}
	}
}

func TestRLEVolumeCompresses(t *testing.T) {
	for _, name := range volume.Datasets {
		r := testRenderer(name, 48)
		rv := NewRLEVolume(r.Vol, r.TF)
		frac := rv.StoredFraction()
		if frac <= 0 || frac >= 0.9 {
			t.Fatalf("%s: stored fraction %.2f — encoding should drop most voxels", name, frac)
		}
	}
}

func TestRLEVolumePairing(t *testing.T) {
	r := testRenderer("engine", 16)
	otherTF := xfer.Isosurface(10, 200)
	rv := NewRLEVolume(r.Vol, otherTF)
	v, _ := r.Factor(Camera{})
	if _, err := r.RenderSlabRLE(rv, v, 0, v.NK()); err == nil {
		t.Fatal("mismatched transfer function accepted")
	}
	rvWrongDims := NewRLEVolume(volume.Engine(8), r.TF)
	if _, err := r.RenderSlabRLE(rvWrongDims, v, 0, v.NK()); err == nil {
		t.Fatal("mismatched dims accepted")
	}
	rvOK := NewRLEVolume(r.Vol, r.TF)
	if _, err := r.RenderSlabRLE(rvOK, v, -1, 2); err == nil {
		t.Fatal("bad slab accepted")
	}
}

func TestRLEVolumeFallbackOnHoleyTF(t *testing.T) {
	tf := xfer.Ramp(50, 200, 255, 200)
	tf.Alpha[120] = 0
	r := &Renderer{Vol: volume.Head(20), TF: tf}
	rv := NewRLEVolume(r.Vol, tf)
	v, _ := r.Factor(Camera{Yaw: 0.3})
	plain, err := r.RenderSlab(v, 0, v.NK())
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.RenderSlabRLE(rv, v, 0, v.NK())
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(plain, got) {
		t.Fatal("fallback differs from plain path")
	}
}

func TestMergeIntervals(t *testing.T) {
	got := mergeIntervals([]runInterval{{5, 8}, {1, 3}, {2, 6}, {10, 12}})
	want := []runInterval{{1, 8}, {10, 12}}
	if len(got) != len(want) {
		t.Fatalf("mergeIntervals = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeIntervals = %v, want %v", got, want)
		}
	}
	if mergeIntervals(nil) != nil {
		t.Fatal("empty merge not nil")
	}
}

func BenchmarkRenderSlabFromRLE(b *testing.B) {
	r := testRenderer("head", 96)
	rv := NewRLEVolume(r.Vol, r.TF)
	v, err := r.Factor(Camera{Yaw: 0.35, Pitch: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RenderSlabRLE(rv, v, 0, v.NK()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewRLEVolume(b *testing.B) {
	vol := volume.Head(96)
	tf := xfer.ForDataset("head")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewRLEVolume(vol, tf)
	}
}
