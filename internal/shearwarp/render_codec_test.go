package shearwarp

import (
	"bytes"
	"math/rand"
	"testing"

	"rtcomp/internal/codec"
	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
)

// A rendered slab image split into row bands must encode, decode and
// composite identically to the whole image — including when a codec run
// crosses the band edge, where the encoder is forced to cut one run into
// two. This is exactly what the banded renderer feeds the pipelined
// compositor: each band's span is encoded independently, and the receive
// path must reassemble the same bytes the one-shot image would produce.
func TestBandSplitEncodingExact(t *testing.T) {
	r := testRenderer("engine", 24)
	v, err := r.Factor(Camera{Yaw: 0.35, Pitch: -0.25})
	if err != nil {
		t.Fatal(err)
	}
	img, err := r.RenderSlab(v, 0, v.NK())
	if err != nil {
		t.Fatal(err)
	}
	w, h := img.W, img.H
	npix := w * h

	// Split at a row boundary that sits inside a run of identical pixels,
	// so the band encoders must cut that run in two. Rendered images have
	// blank margins, so such a row always exists; failing to find one means
	// the fixture no longer exercises the case this test is about.
	split := -1
	for y := 1; y < h; y++ {
		b := y * w * raster.BytesPerPixel
		if img.Pix[b-2] == img.Pix[b] && img.Pix[b-1] == img.Pix[b+1] {
			split = y
			break
		}
	}
	if split < 0 {
		t.Fatal("no codec run crosses any row boundary in the rendered slab")
	}
	cut := split * w * raster.BytesPerPixel
	cutPix := split * w

	back := raster.RandomImage(rand.New(rand.NewSource(7)), w, h, 0.3)

	for _, cdc := range []codec.Codec{codec.Raw{}, codec.RLE{}, codec.TRLE{}} {
		encFull := cdc.Encode(img.Pix)
		encA := cdc.Encode(img.Pix[:cut])
		encB := cdc.Encode(img.Pix[cut:])

		// Band decodes must concatenate to the whole-image decode.
		decFull, err := cdc.DecodeInto(nil, encFull, npix)
		if err != nil {
			t.Fatalf("%s: full decode: %v", cdc.Name(), err)
		}
		if !bytes.Equal(decFull, img.Pix) {
			t.Fatalf("%s: full decode does not round-trip", cdc.Name())
		}
		decA, err := cdc.DecodeInto(nil, encA, cutPix)
		if err != nil {
			t.Fatalf("%s: band A decode: %v", cdc.Name(), err)
		}
		decB, err := cdc.DecodeInto(nil, encB, npix-cutPix)
		if err != nil {
			t.Fatalf("%s: band B decode: %v", cdc.Name(), err)
		}
		if !bytes.Equal(decA, img.Pix[:cut]) || !bytes.Equal(decB, img.Pix[cut:]) {
			t.Fatalf("%s: band decodes do not round-trip across the split run", cdc.Name())
		}

		// Fused band composition must be byte-identical to whole-block
		// fused composition, in both layer orders.
		od, ok := cdc.(codec.OverDecoder)
		if !ok {
			continue
		}
		for _, encFront := range []bool{true, false} {
			whole := back.Clone()
			if _, err := od.DecodeOver(whole.Pix, encFull, npix, encFront); err != nil {
				t.Fatalf("%s: whole DecodeOver: %v", cdc.Name(), err)
			}
			banded := back.Clone()
			if _, err := od.DecodeOver(banded.Pix[:cut], encA, cutPix, encFront); err != nil {
				t.Fatalf("%s: band A DecodeOver: %v", cdc.Name(), err)
			}
			if _, err := od.DecodeOver(banded.Pix[cut:], encB, npix-cutPix, encFront); err != nil {
				t.Fatalf("%s: band B DecodeOver: %v", cdc.Name(), err)
			}
			if !raster.Equal(whole, banded) {
				t.Fatalf("%s encFront=%v: banded fused composite differs from whole (maxdiff %d)",
					cdc.Name(), encFront, raster.MaxDiff(whole, banded))
			}

			// And both must match the unfused reference.
			ref := back.Clone()
			if encFront {
				compose.OverU8(ref.Pix, img.Pix, ref.Pix)
			} else {
				compose.OverU8(ref.Pix, ref.Pix, img.Pix)
			}
			if !raster.Equal(whole, ref) {
				t.Fatalf("%s encFront=%v: fused composite differs from OverU8 reference (maxdiff %d)",
					cdc.Name(), encFront, raster.MaxDiff(whole, ref))
			}
		}
	}
}
