package shearwarp

import (
	"math"

	"rtcomp/internal/raster"
	"rtcomp/internal/volume"
	"rtcomp/internal/xfer"
)

// RayCast renders the volume with a straightforward orthographic ray
// marcher: one ray per pixel along the camera's view direction, trilinear
// sampling at half-voxel steps, post-classification and front-to-back over
// compositing. It is algorithmically independent of the shear-warp path and
// serves as its correctness cross-check.
func RayCast(vol *volume.Volume, tf *xfer.Func, cam Camera, w, h int) *raster.Image {
	rot := cam.rotation()
	// Rays travel along the third eye axis; pixel (x, y) maps to eye
	// coordinates (x - w/2, y - h/2).
	cx := float64(vol.NX-1) / 2
	cy := float64(vol.NY-1) / 2
	cz := float64(vol.NZ-1) / 2
	diag := math.Sqrt(float64(vol.NX*vol.NX + vol.NY*vol.NY + vol.NZ*vol.NZ))
	out := raster.New(w, h)
	const step = 0.5
	for y := 0; y < h; y++ {
		ey := float64(y) - float64(h)/2
		for x := 0; x < w; x++ {
			ex := float64(x) - float64(w)/2
			var accV, accA float64
			for t := -diag / 2; t <= diag/2; t += step {
				// Object point with eye coords (ex, ey, t): p = R^T e + c.
				px := rot[0][0]*ex + rot[1][0]*ey + rot[2][0]*t + cx
				py := rot[0][1]*ex + rot[1][1]*ey + rot[2][1]*t + cy
				pz := rot[0][2]*ex + rot[1][2]*ey + rot[2][2]*t + cz
				s, ok := trilinear(vol, px, py, pz)
				if !ok {
					continue
				}
				val, a := tf.Classify(s)
				if a == 0 {
					continue
				}
				// Scale opacity for the finer step so total extinction
				// roughly matches the per-slice compositing of shear-warp
				// (one sample per voxel length).
				af := 1 - math.Pow(1-float64(a)/255, step)
				accV += (1 - accA) * af * float64(val)
				accA += (1 - accA) * af
				if accA >= 254.5/255 {
					break
				}
			}
			if accA > 0 {
				v := accV / accA
				out.Set(x, y, uint8(v+0.5), uint8(accA*255+0.5))
			}
		}
	}
	return out
}

// trilinear samples the volume at a fractional position.
func trilinear(vol *volume.Volume, x, y, z float64) (uint8, bool) {
	if x <= -1 || y <= -1 || z <= -1 ||
		x >= float64(vol.NX) || y >= float64(vol.NY) || z >= float64(vol.NZ) {
		return 0, false
	}
	x0, y0, z0 := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
	fx, fy, fz := x-float64(x0), y-float64(y0), z-float64(z0)
	var acc, wsum float64
	for dz := 0; dz <= 1; dz++ {
		for dy := 0; dy <= 1; dy++ {
			for dx := 0; dx <= 1; dx++ {
				xx, yy, zz := x0+dx, y0+dy, z0+dz
				if xx < 0 || yy < 0 || zz < 0 || xx >= vol.NX || yy >= vol.NY || zz >= vol.NZ {
					continue
				}
				w := (1 - math.Abs(float64(dx)-fx)) *
					(1 - math.Abs(float64(dy)-fy)) *
					(1 - math.Abs(float64(dz)-fz))
				acc += w * float64(vol.At(xx, yy, zz))
				wsum += w
			}
		}
	}
	if wsum == 0 {
		return 0, false
	}
	return uint8(acc/wsum + 0.5), true
}
