package shearwarp

import (
	"fmt"
	"math"

	"rtcomp/internal/raster"
)

// Opacity-coherence acceleration (the spirit of Lacroute's run-length
// encoded volume traversal): almost all volume data classifies to
// transparent, so the renderer precomputes, per slice row, the runs of
// columns whose voxels could contribute, and the resampling loop hops over
// the transparent gaps instead of sampling them.
//
// The skip test is exact whenever the transfer function's transparent
// scalars form a downward-closed interval [0, lo): bilinear interpolation
// is a convex combination, so four transparent voxels can only produce a
// transparent sample. TransparentDownwardClosed reports whether a transfer
// function qualifies; RenderSlabAccel falls back to the plain path when it
// does not.

// transparentDownwardClosed reports whether the set of scalars classified
// fully transparent is exactly [0, k) for some k — the condition under
// which skipping all-transparent voxel neighbourhoods is lossless.
func (r *Renderer) transparentDownwardClosed() bool {
	seenOpaque := false
	for s := 0; s < 256; s++ {
		if r.TF.Alpha[s] != 0 {
			seenOpaque = true
		} else if seenOpaque {
			return false
		}
	}
	return true
}

// runInterval is a half-open active column interval [lo, hi) in slice
// coordinates.
type runInterval struct {
	lo, hi int
}

// sliceRuns computes, for each row pair j (sampling rows j and j+1), the
// active column intervals: i such that at least one of the voxels
// (i..i+1, j..j+1) classifies non-transparent. Intervals are dilated by
// one column on the left so a sample whose floor lands just before an
// opaque voxel is still visited.
func (r *Renderer) sliceRuns(v *View, k int, slice []uint8) [][]runInterval {
	occ := make([]bool, v.ni*v.nj)
	for idx, s := range slice {
		occ[idx] = r.TF.Alpha[s] != 0
	}
	runs := make([][]runInterval, v.nj)
	for j := 0; j < v.nj; j++ {
		var cur []runInterval
		active := func(i int) bool {
			for dj := 0; dj <= 1; dj++ {
				jj := j + dj
				if jj >= v.nj {
					continue
				}
				for di := 0; di <= 1; di++ {
					ii := i + di
					if ii >= 0 && ii < v.ni && occ[jj*v.ni+ii] {
						return true
					}
				}
			}
			return false
		}
		inRun := false
		lo := 0
		for i := -1; i < v.ni; i++ {
			a := active(i)
			if a && !inRun {
				lo, inRun = i, true
			}
			if !a && inRun {
				cur = append(cur, runInterval{lo, i})
				inRun = false
			}
		}
		if inRun {
			cur = append(cur, runInterval{lo, v.ni})
		}
		runs[j] = cur
	}
	return runs
}

// RenderSlabAccel renders exactly what RenderSlab renders, skipping
// transparent voxel runs. When the transfer function's transparent set is
// not downward closed the plain path runs instead.
func (r *Renderer) RenderSlabAccel(v *View, kLo, kHi int) (*raster.Image, error) {
	if !r.transparentDownwardClosed() {
		return r.RenderSlab(v, kLo, kHi)
	}
	if kLo < 0 || kHi > v.nk || kLo > kHi {
		return nil, fmt.Errorf("shearwarp: slab [%d,%d) outside [0,%d)", kLo, kHi, v.nk)
	}
	out := raster.New(v.wi, v.hi)
	slice := make([]uint8, v.ni*v.nj)
	for k := kLo; k < kHi; k++ {
		r.extractSlice(v, k, slice)
		runs := r.sliceRuns(v, k, slice)
		r.renderSliceWithRuns(out, v, k, slice, runs)
	}
	return out, nil
}

// renderSliceWithRuns composites one slice into the accumulation image,
// visiting only the pixels covered by the per-row active column runs.
// Visiting extra (transparent) samples is harmless, so run lists may be
// supersets of the true active set.
func (r *Renderer) renderSliceWithRuns(out *raster.Image, v *View, k int, slice []uint8, runs [][]runInterval) {
	ui := v.oi + v.si*float64(k)
	vj := v.oj + v.sj*float64(k)
	v0 := int(math.Floor(vj))
	for v1 := v0; v1 <= v0+v.nj; v1++ {
		if v1 < 0 || v1 >= v.hi {
			continue
		}
		jf := float64(v1) - vj
		j0 := int(math.Floor(jf))
		if j0 < -1 || j0 >= v.nj {
			continue
		}
		rowRuns := []runInterval(nil)
		if j0 >= 0 {
			rowRuns = runs[j0]
		} else {
			// jf in (-1, 0): only row 0 contributes; row 0's runs for
			// pair (0,1) are a superset of what row 0 alone needs.
			rowRuns = runs[0]
		}
		for _, run := range rowRuns {
			// Active floor(i) in [run.lo, run.hi): sample u with
			// i = u - ui in [run.lo, run.hi+1).
			uLo := int(math.Ceil(float64(run.lo) + ui))
			uHi := int(math.Floor(float64(run.hi) + ui))
			if uLo < 0 {
				uLo = 0
			}
			if uHi >= v.wi {
				uHi = v.wi - 1
			}
			for u1 := uLo; u1 <= uHi; u1++ {
				pi := (v1*v.wi + u1) * raster.BytesPerPixel
				if out.Pix[pi+1] == 255 {
					continue
				}
				ifl := float64(u1) - ui
				s, ok := bilinear(slice, v.ni, v.nj, ifl, jf)
				if !ok {
					continue
				}
				val, a := r.TF.Classify(s)
				if a == 0 {
					continue
				}
				overPixel(out.Pix[pi:pi+2:pi+2], val, a)
			}
		}
	}
}
