package shearwarp

import (
	"math"
	"testing"

	"rtcomp/internal/compose"
	"rtcomp/internal/partition"
	"rtcomp/internal/raster"
	"rtcomp/internal/volume"
	"rtcomp/internal/xfer"
)

func testRenderer(name string, n int) *Renderer {
	return &Renderer{Vol: volume.ByName(name, n), TF: xfer.ForDataset(name)}
}

func TestFactorPrincipalAxis(t *testing.T) {
	r := testRenderer("engine", 16)
	// Looking straight down +Z: principal axis is Z, no shear.
	v, err := r.Factor(Camera{})
	if err != nil {
		t.Fatal(err)
	}
	if v.perm[2] != 2 {
		t.Fatalf("principal axis = %d, want 2 (Z)", v.perm[2])
	}
	if math.Abs(v.si) > 1e-12 || math.Abs(v.sj) > 1e-12 {
		t.Fatalf("shear (%v,%v) for axis-aligned view", v.si, v.sj)
	}
	// Yaw 90 degrees: looking along X.
	v, err = r.Factor(Camera{Yaw: math.Pi / 2})
	if err != nil {
		t.Fatal(err)
	}
	if v.perm[2] != 0 {
		t.Fatalf("principal axis = %d, want 0 (X)", v.perm[2])
	}
	// A tilted view keeps |shear| <= 1 (the factorization's guarantee for
	// views within the principal octant).
	v, err = r.Factor(Camera{Yaw: 0.4, Pitch: -0.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.si) > 1.0+1e-9 || math.Abs(v.sj) > 1.0+1e-9 {
		t.Fatalf("shear (%v,%v) exceeds 1", v.si, v.sj)
	}
}

func TestRenderProducesObjectAgainstBlankBackground(t *testing.T) {
	r := testRenderer("head", 32)
	img, err := r.Render(Camera{Yaw: 0.3, Pitch: 0.2}, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	bf := img.BlankFraction()
	if bf < 0.1 || bf > 0.95 {
		t.Fatalf("blank fraction %v: object/background structure missing", bf)
	}
}

// The parallel invariant: rendering slabs separately and compositing them
// front-to-back must reproduce the full intermediate image up to the u8
// quantisation tolerance (the two paths associate the per-pixel over chain
// differently, which can shift a channel by a couple of levels).
func TestSlabDecompositionIsExact(t *testing.T) {
	for _, name := range volume.Datasets {
		r := testRenderer(name, 24)
		for _, cam := range []Camera{{}, {Yaw: 0.35, Pitch: -0.25}, {Yaw: -0.6}} {
			v, err := r.Factor(cam)
			if err != nil {
				t.Fatal(err)
			}
			full, err := r.RenderIntermediate(v)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{2, 3, 5} {
				slabs, err := partition.Slabs1D(v.NK(), p)
				if err != nil {
					t.Fatal(err)
				}
				layers := make([]*raster.Image, p)
				for i, s := range slabs {
					layers[i], err = r.RenderSlab(v, s.Lo, s.Hi)
					if err != nil {
						t.Fatal(err)
					}
				}
				got := compose.SerialComposite(layers)
				if d := raster.MaxDiff(got, full); d > 3 {
					t.Fatalf("%s cam=%+v p=%d: slab composite differs from full render by %d",
						name, cam, p, d)
				}
			}
		}
	}
}

func TestSlabDepthOrderMatters(t *testing.T) {
	// Compositing slabs back-to-front (wrong order) must NOT generally
	// reproduce the full image — this guards against the test above
	// passing vacuously on a commutative scene.
	r := testRenderer("engine", 24)
	v, err := r.Factor(Camera{Yaw: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	full, _ := r.RenderIntermediate(v)
	slabs, _ := partition.Slabs1D(v.NK(), 3)
	layers := make([]*raster.Image, 3)
	for i, s := range slabs {
		layers[2-i], _ = r.RenderSlab(v, s.Lo, s.Hi) // reversed
	}
	got := compose.SerialComposite(layers)
	if raster.Equal(got, full) {
		t.Fatal("reversed slab order reproduced the image; scene has no depth structure")
	}
}

func TestRenderSlabBounds(t *testing.T) {
	r := testRenderer("brain", 16)
	v, err := r.Factor(Camera{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RenderSlab(v, -1, 4); err == nil {
		t.Fatal("negative slab accepted")
	}
	if _, err := r.RenderSlab(v, 0, v.NK()+1); err == nil {
		t.Fatal("overlong slab accepted")
	}
	empty, err := r.RenderSlab(v, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if empty.BlankFraction() != 1 {
		t.Fatal("empty slab rendered content")
	}
}

func TestWarpSizeMismatch(t *testing.T) {
	r := testRenderer("brain", 16)
	v, _ := r.Factor(Camera{})
	if _, err := r.Warp(v, raster.New(3, 3), 32, 32); err == nil {
		t.Fatal("mismatched intermediate accepted")
	}
}

// The shear-warp result must structurally agree with the independent
// ray-caster: same object silhouette, similar values.
func TestShearWarpMatchesRayCast(t *testing.T) {
	for _, name := range volume.Datasets {
		r := testRenderer(name, 32)
		cam := Camera{Yaw: 0.3, Pitch: 0.15}
		sw, err := r.Render(cam, 64, 64)
		if err != nil {
			t.Fatal(err)
		}
		rc := RayCast(r.Vol, r.TF, cam, 64, 64)
		// Silhouette agreement: fraction of pixels where exactly one of
		// the two images is blank must be small.
		mismatch, covered := 0, 0
		for i := 1; i < len(sw.Pix); i += raster.BytesPerPixel {
			a, b := sw.Pix[i] != 0, rc.Pix[i] != 0
			if a || b {
				covered++
				if a != b {
					mismatch++
				}
			}
		}
		if covered == 0 {
			t.Fatalf("%s: both renderers produced blank images", name)
		}
		if frac := float64(mismatch) / float64(covered); frac > 0.25 {
			t.Fatalf("%s: silhouette mismatch fraction %.2f", name, frac)
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	r := testRenderer("engine", 24)
	a, err := r.Render(Camera{Yaw: 0.2}, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Render(Camera{Yaw: 0.2}, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(a, b) {
		t.Fatal("render not deterministic")
	}
}

func TestCanonicalBlanks(t *testing.T) {
	r := testRenderer("head", 24)
	v, _ := r.Factor(Camera{Yaw: 0.25})
	img, err := r.RenderSlab(v, 0, v.NK()/2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(img.Pix); i += raster.BytesPerPixel {
		if img.Pix[i+1] == 0 && img.Pix[i] != 0 {
			t.Fatal("non-canonical blank pixel in rendered slab")
		}
	}
}

// 2-D tiles have disjoint footprints; compositing them in any order must
// reproduce the full intermediate image exactly.
func TestTileDecompositionIsExact(t *testing.T) {
	r := testRenderer("head", 24)
	for _, cam := range []Camera{{}, {Yaw: 0.4, Pitch: -0.2}} {
		v, err := r.Factor(cam)
		if err != nil {
			t.Fatal(err)
		}
		full, err := r.RenderIntermediate(v)
		if err != nil {
			t.Fatal(err)
		}
		wi, hi := v.IntermediateSize()
		tiles, err := partition.Grid2D(wi, hi, 6)
		if err != nil {
			t.Fatal(err)
		}
		layers := make([]*raster.Image, len(tiles))
		for i, tl := range tiles {
			layers[i], err = r.RenderTile(v, tl.X0, tl.Y0, tl.X1, tl.Y1)
			if err != nil {
				t.Fatal(err)
			}
		}
		// Reverse order on purpose: disjoint footprints commute.
		for i, j := 0, len(layers)-1; i < j; i, j = i+1, j-1 {
			layers[i], layers[j] = layers[j], layers[i]
		}
		got := compose.SerialComposite(layers)
		if !raster.Equal(got, full) {
			t.Fatalf("cam=%+v: tile composite differs from full render", cam)
		}
	}
}

func TestRenderTileBounds(t *testing.T) {
	r := testRenderer("engine", 16)
	v, _ := r.Factor(Camera{})
	wi, hi := v.IntermediateSize()
	if _, err := r.RenderTile(v, -1, 0, wi, hi); err == nil {
		t.Fatal("negative tile accepted")
	}
	if _, err := r.RenderTile(v, 0, 0, wi+1, hi); err == nil {
		t.Fatal("oversized tile accepted")
	}
}

// A full yaw orbit crosses every principal-axis octant; the factorization
// and renderer must handle all of them.
func TestFullOrbitAllPrincipalAxes(t *testing.T) {
	r := testRenderer("engine", 24)
	axes := map[int]bool{}
	for f := 0; f < 12; f++ {
		cam := Camera{Yaw: 2 * math.Pi * float64(f) / 12, Pitch: 0.2}
		v, err := r.Factor(cam)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		axes[v.perm[2]] = true
		img, err := r.RenderSlab(v, 0, v.NK())
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if img.BlankFraction() == 1 {
			t.Fatalf("frame %d rendered nothing", f)
		}
	}
	if !axes[0] || !axes[2] {
		t.Fatalf("orbit did not exercise both X and Z principal axes: %v", axes)
	}
}
