package shearwarp

import (
	"testing"

	"rtcomp/internal/partition"
	"rtcomp/internal/raster"
	"rtcomp/internal/volume"
	"rtcomp/internal/xfer"
)

// The accelerated path must produce byte-identical output to the plain
// path: the skip test is exact for downward-closed transparent sets.
func TestAccelMatchesPlainExactly(t *testing.T) {
	for _, name := range volume.Datasets {
		r := testRenderer(name, 32)
		for _, cam := range []Camera{{}, {Yaw: 0.35, Pitch: -0.25}, {Yaw: -0.7, Pitch: 0.4}} {
			v, err := r.Factor(cam)
			if err != nil {
				t.Fatal(err)
			}
			slabs, err := partition.Slabs1D(v.NK(), 4)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range slabs {
				plain, err := r.RenderSlab(v, s.Lo, s.Hi)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := r.RenderSlabAccel(v, s.Lo, s.Hi)
				if err != nil {
					t.Fatal(err)
				}
				if !raster.Equal(plain, fast) {
					t.Fatalf("%s cam=%+v slab=%+v: accelerated output differs (maxdiff %d)",
						name, cam, s, raster.MaxDiff(plain, fast))
				}
			}
		}
	}
}

func TestAccelFallsBackOnNonMonotoneTF(t *testing.T) {
	// A transfer function with a transparent hole in the middle of the
	// opaque range: the skip test would be unsound, so the accelerated
	// path must fall back (and still be correct, trivially).
	tf := xfer.Ramp(50, 200, 255, 200)
	tf.Alpha[120] = 0 // hole
	r := &Renderer{Vol: volume.Head(24), TF: tf}
	if r.transparentDownwardClosed() {
		t.Fatal("holey transfer function reported downward closed")
	}
	v, err := r.Factor(Camera{Yaw: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := r.RenderSlab(v, 0, v.NK())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := r.RenderSlabAccel(v, 0, v.NK())
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(plain, fast) {
		t.Fatal("fallback path differs from plain path")
	}
}

func TestTransparentDownwardClosed(t *testing.T) {
	for _, name := range volume.Datasets {
		r := testRenderer(name, 8)
		if !r.transparentDownwardClosed() {
			t.Fatalf("%s preset should be downward closed", name)
		}
	}
}

func TestAccelSlabBounds(t *testing.T) {
	r := testRenderer("engine", 16)
	v, _ := r.Factor(Camera{})
	if _, err := r.RenderSlabAccel(v, -1, 2); err == nil {
		t.Fatal("negative slab accepted")
	}
}

func BenchmarkRenderSlabPlain(b *testing.B) {
	r := testRenderer("head", 96)
	v, err := r.Factor(Camera{Yaw: 0.35, Pitch: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RenderSlab(v, 0, v.NK()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderSlabAccel(b *testing.B) {
	r := testRenderer("head", 96)
	v, err := r.Factor(Camera{Yaw: 0.35, Pitch: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RenderSlabAccel(v, 0, v.NK()); err != nil {
			b.Fatal(err)
		}
	}
}
