package shearwarp

import (
	"fmt"
	"math"

	"rtcomp/internal/raster"
)

// RenderTile renders every slice of the volume restricted to the
// intermediate-image rectangle [x0,x1) x [y0,y1) — the unit of work of a
// 2-D image-space partition: each processor owns one tile of the
// intermediate image and composites the full depth for it, so partial
// images have disjoint footprints. The output image has the view's full
// intermediate size with canonical blanks outside the tile.
func (r *Renderer) RenderTile(v *View, x0, y0, x1, y1 int) (*raster.Image, error) {
	if x0 < 0 || y0 < 0 || x1 > v.wi || y1 > v.hi || x0 > x1 || y0 > y1 {
		return nil, fmt.Errorf("shearwarp: tile [%d,%d)x[%d,%d) outside %dx%d intermediate",
			x0, x1, y0, y1, v.wi, v.hi)
	}
	out := raster.New(v.wi, v.hi)
	slice := make([]uint8, v.ni*v.nj)
	for k := 0; k < v.nk; k++ {
		r.extractSlice(v, k, slice)
		ui := v.oi + v.si*float64(k)
		vj := v.oj + v.sj*float64(k)
		u0 := int(math.Floor(ui))
		v0 := int(math.Floor(vj))
		vLo, vHi := maxInt(v0, y0), minInt(v0+v.nj, y1-1)
		uLo, uHi := maxInt(u0, x0), minInt(u0+v.ni, x1-1)
		for v1 := vLo; v1 <= vHi; v1++ {
			jf := float64(v1) - vj
			for u1 := uLo; u1 <= uHi; u1++ {
				pi := (v1*v.wi + u1) * raster.BytesPerPixel
				if out.Pix[pi+1] == 255 {
					continue
				}
				ifl := float64(u1) - ui
				s, ok := bilinear(slice, v.ni, v.nj, ifl, jf)
				if !ok {
					continue
				}
				val, a := r.TF.Classify(s)
				if a == 0 {
					continue
				}
				overPixel(out.Pix[pi:pi+2:pi+2], val, a)
			}
		}
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
