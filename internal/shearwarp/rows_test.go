package shearwarp

import (
	"testing"

	"rtcomp/internal/raster"
	"rtcomp/internal/volume"
)

// RenderSlabRows must be an exact band decomposition of RenderSlab: each
// pixel keeps its front-to-back k order inside its band, so rendering any
// partition of the intermediate rows reproduces the one-shot slab image
// byte for byte.
func TestRenderSlabRowsMatchesSlabExactly(t *testing.T) {
	for _, name := range volume.Datasets {
		r := testRenderer(name, 24)
		for _, cam := range []Camera{{}, {Yaw: 0.35, Pitch: -0.25}, {Yaw: -0.7, Pitch: 0.4}} {
			v, err := r.Factor(cam)
			if err != nil {
				t.Fatal(err)
			}
			kMid := v.NK() / 2
			for _, slab := range [][2]int{{0, v.NK()}, {kMid / 2, kMid}, {kMid, v.NK()}} {
				want, err := r.RenderSlab(v, slab[0], slab[1])
				if err != nil {
					t.Fatal(err)
				}
				_, hi := v.IntermediateSize()
				for _, bands := range []int{1, 2, 3, 7} {
					got := raster.New(want.W, want.H)
					step := (hi + bands - 1) / bands
					for y0 := 0; y0 < hi; y0 += step {
						y1 := y0 + step
						if y1 > hi {
							y1 = hi
						}
						if err := r.RenderSlabRows(v, slab[0], slab[1], y0, y1, got); err != nil {
							t.Fatal(err)
						}
					}
					if !raster.Equal(got, want) {
						t.Fatalf("%s cam=%+v slab=%v bands=%d: banded render differs (maxdiff %d)",
							name, cam, slab, bands, raster.MaxDiff(got, want))
					}
				}
			}
		}
	}
}

// Out-of-range bands and mismatched outputs must be rejected, and an empty
// band must be a no-op.
func TestRenderSlabRowsBounds(t *testing.T) {
	r := testRenderer(volume.Datasets[0], 16)
	v, err := r.Factor(Camera{Yaw: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	w, h := v.IntermediateSize()
	out := raster.New(w, h)
	if err := r.RenderSlabRows(v, 0, v.NK(), -1, h, out); err == nil {
		t.Error("negative y0 accepted")
	}
	if err := r.RenderSlabRows(v, 0, v.NK(), 0, h+1, out); err == nil {
		t.Error("y1 past the intermediate height accepted")
	}
	if err := r.RenderSlabRows(v, -1, v.NK(), 0, h, out); err == nil {
		t.Error("negative kLo accepted")
	}
	if err := r.RenderSlabRows(v, 0, v.NK(), 0, h, raster.New(w+1, h)); err == nil {
		t.Error("mismatched output image accepted")
	}
	if err := r.RenderSlabRows(v, 0, v.NK(), 3, 3, out); err != nil {
		t.Errorf("empty band rejected: %v", err)
	}
	for _, b := range out.Pix {
		if b != 0 {
			t.Fatal("rejected/empty calls must not write pixels")
		}
	}
}
