// Package shearwarp implements a from-scratch shear-warp factorization
// volume renderer (Lacroute & Levoy) — the render stage of the paper's
// pipeline. The viewing transformation is factored into a shear of the
// volume slices along the principal viewing axis plus a 2-D warp of the
// composited intermediate image:
//
//	render = warp_2D( composite_front_to_back( sheared slices ) )
//
// Slices are resampled bilinearly, classified through a transfer function
// (post-classification), and composited with "over". For parallel
// rendering, a rank renders a contiguous slab of slices into a partial
// intermediate image; compositing slabs front-to-back reproduces the full
// intermediate image exactly, which is precisely the workload the image
// composition stage consumes.
//
// An independent orthographic ray-caster (raycast.go) serves as the
// correctness cross-check.
package shearwarp

import (
	"fmt"
	"math"

	"rtcomp/internal/raster"
	"rtcomp/internal/volume"
	"rtcomp/internal/xfer"
)

// Camera is an orthographic view: yaw about the volume's Y axis applied
// after pitch about X, in radians. The viewer looks along the rotated +Z.
type Camera struct {
	Yaw, Pitch float64
}

// Renderer binds a volume to a transfer function.
type Renderer struct {
	Vol *volume.Volume
	TF  *xfer.Func
}

// View is a factored viewing transformation: the axis permutation, shear
// coefficients, intermediate image geometry and the warp matrix.
type View struct {
	// perm[c] is the object axis used for intermediate axis c (0=i, 1=j,
	// 2=k, the principal axis); flip[c] reverses it.
	perm [3]int
	flip [3]bool
	// ni, nj, nk are the volume dims in the permuted frame.
	ni, nj, nk int
	// si, sj are the shear coefficients per slice.
	si, sj float64
	// oi, oj place all sheared slices at non-negative offsets.
	oi, oj float64
	// wi, hi are the intermediate image dimensions.
	wi, hi int
	// rp is the view rotation expressed in the permuted+flipped frame.
	rp [3][3]float64
}

// NK reports the number of slices along the compositing axis; slice 0 is
// closest to the viewer.
func (v *View) NK() int { return v.nk }

// IntermediateSize reports the intermediate image dimensions.
func (v *View) IntermediateSize() (w, h int) { return v.wi, v.hi }

// rotation builds the camera matrix: rows are the eye axes in object
// coordinates (e = R p).
func (c Camera) rotation() [3][3]float64 {
	cy, sy := math.Cos(c.Yaw), math.Sin(c.Yaw)
	cp, sp := math.Cos(c.Pitch), math.Sin(c.Pitch)
	// R = Ry(yaw) * Rx(pitch), applied to object points.
	ry := [3][3]float64{{cy, 0, sy}, {0, 1, 0}, {-sy, 0, cy}}
	rx := [3][3]float64{{1, 0, 0}, {0, cp, -sp}, {0, sp, cp}}
	var r [3][3]float64
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			for k := 0; k < 3; k++ {
				r[a][b] += ry[a][k] * rx[k][b]
			}
		}
	}
	return r
}

// Factor decomposes the camera into the shear-warp view.
func (r *Renderer) Factor(cam Camera) (*View, error) {
	rot := cam.rotation()
	// View direction in object space: rays travel along the third row.
	d := [3]float64{rot[2][0], rot[2][1], rot[2][2]}
	// Principal axis: the largest |component|.
	k := 0
	for a := 1; a < 3; a++ {
		if math.Abs(d[a]) > math.Abs(d[k]) {
			k = a
		}
	}
	if d[k] == 0 {
		return nil, fmt.Errorf("shearwarp: degenerate view direction")
	}
	v := &View{}
	v.perm = [3]int{(k + 1) % 3, (k + 2) % 3, k}
	// Flip the principal axis so rays travel toward +k (slice 0 in front).
	v.flip[2] = d[k] < 0

	dims := [3]int{r.Vol.NX, r.Vol.NY, r.Vol.NZ}
	v.ni, v.nj, v.nk = dims[v.perm[0]], dims[v.perm[1]], dims[v.perm[2]]

	// Rotation in the permuted+flipped frame: column c' of rp is the
	// (possibly negated) column perm[c'] of rot.
	for a := 0; a < 3; a++ {
		for c := 0; c < 3; c++ {
			val := rot[a][v.perm[c]]
			if v.flip[c] {
				val = -val
			}
			v.rp[a][c] = val
		}
	}
	dk := v.rp[2][2]
	v.si = -v.rp[2][0] / dk
	v.sj = -v.rp[2][1] / dk

	span := float64(v.nk - 1)
	v.oi = math.Max(0, -v.si*span)
	v.oj = math.Max(0, -v.sj*span)
	v.wi = v.ni + int(math.Ceil(math.Abs(v.si)*span)) + 1
	v.hi = v.nj + int(math.Ceil(math.Abs(v.sj)*span)) + 1
	return v, nil
}

// voxel reads the volume in the permuted+flipped frame.
func (r *Renderer) voxel(v *View, i, j, k int) uint8 {
	var p [3]int
	coords := [3]int{i, j, k}
	lims := [3]int{v.ni, v.nj, v.nk}
	for c := 0; c < 3; c++ {
		x := coords[c]
		if v.flip[c] {
			x = lims[c] - 1 - x
		}
		p[v.perm[c]] = x
	}
	return r.Vol.At(p[0], p[1], p[2])
}

// extractSlice copies slice k into a contiguous ni x nj scalar buffer.
func (r *Renderer) extractSlice(v *View, k int, buf []uint8) {
	idx := 0
	for j := 0; j < v.nj; j++ {
		for i := 0; i < v.ni; i++ {
			buf[idx] = r.voxel(v, i, j, k)
			idx++
		}
	}
}

// RenderSlab renders slices [kLo, kHi) front-to-back into a partial
// intermediate image of the view's intermediate size, with canonical blank
// pixels outside the slab's footprint. Compositing the slab images of a
// partition of [0, NK) in slab order reproduces RenderIntermediate exactly.
func (r *Renderer) RenderSlab(v *View, kLo, kHi int) (*raster.Image, error) {
	if kLo < 0 || kHi > v.nk || kLo > kHi {
		return nil, fmt.Errorf("shearwarp: slab [%d,%d) outside [0,%d)", kLo, kHi, v.nk)
	}
	out := raster.New(v.wi, v.hi)
	slice := make([]uint8, v.ni*v.nj)
	for k := kLo; k < kHi; k++ {
		r.extractSlice(v, k, slice)
		ui := v.oi + v.si*float64(k)
		vj := v.oj + v.sj*float64(k)
		u0 := int(math.Floor(ui))
		v0 := int(math.Floor(vj))
		for v1 := v0; v1 <= v0+v.nj; v1++ {
			if v1 < 0 || v1 >= v.hi {
				continue
			}
			jf := float64(v1) - vj
			for u1 := u0; u1 <= u0+v.ni; u1++ {
				if u1 < 0 || u1 >= v.wi {
					continue
				}
				// Early termination: a fully opaque accumulation cannot
				// change, so skipping is exact.
				pi := (v1*v.wi + u1) * raster.BytesPerPixel
				if out.Pix[pi+1] == 255 {
					continue
				}
				ifl := float64(u1) - ui
				s, ok := bilinear(slice, v.ni, v.nj, ifl, jf)
				if !ok {
					continue
				}
				val, a := r.TF.Classify(s)
				if a == 0 {
					continue
				}
				overPixel(out.Pix[pi:pi+2:pi+2], val, a)
			}
		}
	}
	return out, nil
}

// RenderSlabRows renders the slab's contribution to intermediate-image rows
// [y0, y1) into out (which must have the view's intermediate size). It is
// the band-restricted form of RenderSlab for incremental rendering: every
// pixel of the band still accumulates its slices in front-to-back k order,
// so rendering a partition of [0, hi) band by band reproduces RenderSlab
// exactly — and a band is final as soon as its call returns, which is what
// lets the pipelined compositor start on early tiles while later bands are
// still rendering.
func (r *Renderer) RenderSlabRows(v *View, kLo, kHi, y0, y1 int, out *raster.Image) error {
	if kLo < 0 || kHi > v.nk || kLo > kHi {
		return fmt.Errorf("shearwarp: slab [%d,%d) outside [0,%d)", kLo, kHi, v.nk)
	}
	if y0 < 0 || y1 > v.hi || y0 > y1 {
		return fmt.Errorf("shearwarp: row band [%d,%d) outside [0,%d)", y0, y1, v.hi)
	}
	if out.W != v.wi || out.H != v.hi {
		return fmt.Errorf("shearwarp: output image is %dx%d, view wants %dx%d",
			out.W, out.H, v.wi, v.hi)
	}
	slice := make([]uint8, v.ni*v.nj)
	for k := kLo; k < kHi; k++ {
		ui := v.oi + v.si*float64(k)
		vj := v.oj + v.sj*float64(k)
		u0 := int(math.Floor(ui))
		v0 := int(math.Floor(vj))
		// The slice's row footprint clipped to the band; skip the (costly)
		// slice extraction when the footprint misses the band entirely.
		vLo, vHi := v0, v0+v.nj
		if vLo < y0 {
			vLo = y0
		}
		if vHi > y1-1 {
			vHi = y1 - 1
		}
		if vLo > vHi {
			continue
		}
		r.extractSlice(v, k, slice)
		for v1 := vLo; v1 <= vHi; v1++ {
			jf := float64(v1) - vj
			for u1 := u0; u1 <= u0+v.ni; u1++ {
				if u1 < 0 || u1 >= v.wi {
					continue
				}
				pi := (v1*v.wi + u1) * raster.BytesPerPixel
				if out.Pix[pi+1] == 255 {
					continue
				}
				ifl := float64(u1) - ui
				s, ok := bilinear(slice, v.ni, v.nj, ifl, jf)
				if !ok {
					continue
				}
				val, a := r.TF.Classify(s)
				if a == 0 {
					continue
				}
				overPixel(out.Pix[pi:pi+2:pi+2], val, a)
			}
		}
	}
	return nil
}

// RenderIntermediate renders the full intermediate (sheared, unwarped)
// image.
func (r *Renderer) RenderIntermediate(v *View) (*raster.Image, error) {
	return r.RenderSlab(v, 0, v.nk)
}

// overPixel composites the classified sample behind the accumulated pixel:
// acc = acc over sample (front-to-back accumulation).
func overPixel(acc []uint8, bv, ba uint8) {
	fa := acc[1]
	if fa == 255 {
		return
	}
	if fa == 0 {
		acc[0], acc[1] = bv, ba
		return
	}
	fv := acc[0]
	inv := uint32(255 - fa)
	ca := uint32(fa)*255 + inv*uint32(ba)
	cv := uint32(fv)*uint32(fa)*255 + inv*uint32(ba)*uint32(bv)
	a := (ca + 127) / 255
	var val uint32
	if ca > 0 {
		val = (cv + ca/2) / ca
	}
	acc[0], acc[1] = uint8(val), uint8(a)
}

// bilinear samples the slice buffer at fractional (i, j); samples outside
// the slice report no contribution.
func bilinear(slice []uint8, ni, nj int, i, j float64) (uint8, bool) {
	if i <= -1 || j <= -1 || i >= float64(ni) || j >= float64(nj) {
		return 0, false
	}
	i0 := int(math.Floor(i))
	j0 := int(math.Floor(j))
	fi := i - float64(i0)
	fj := j - float64(j0)
	var acc, wsum float64
	for dj := 0; dj <= 1; dj++ {
		for di := 0; di <= 1; di++ {
			ii, jj := i0+di, j0+dj
			if ii < 0 || jj < 0 || ii >= ni || jj >= nj {
				continue
			}
			w := (1 - math.Abs(float64(di)-fi)) * (1 - math.Abs(float64(dj)-fj))
			acc += w * float64(slice[jj*ni+ii])
			wsum += w
		}
	}
	if wsum == 0 {
		return 0, false
	}
	return uint8(acc/wsum + 0.5), true
}

// Warp resamples the composited intermediate image into the final w x h
// frame with the 2-D warp matrix of the factorization.
func (r *Renderer) Warp(v *View, inter *raster.Image, w, h int) (*raster.Image, error) {
	if inter.W != v.wi || inter.H != v.hi {
		return nil, fmt.Errorf("shearwarp: intermediate image is %dx%d, view wants %dx%d",
			inter.W, inter.H, v.wi, v.hi)
	}
	// Eye coords: e = rp * (p - c). With i = (u-oi) - si*k the k terms
	// vanish, leaving ex = rp00*(u-oi-ci) + rp01*(v-oj-cj) - rp02*ck.
	a, b := v.rp[0][0], v.rp[0][1]
	c, d := v.rp[1][0], v.rp[1][1]
	det := a*d - b*c
	if math.Abs(det) < 1e-12 {
		return nil, fmt.Errorf("shearwarp: singular warp matrix")
	}
	ci := float64(v.ni-1) / 2
	cj := float64(v.nj-1) / 2
	ck := float64(v.nk-1) / 2
	cx := v.rp[0][2] * ck
	cyv := v.rp[1][2] * ck
	out := raster.New(w, h)
	for y := 0; y < h; y++ {
		ey := float64(y) - float64(h)/2 + cyv
		for x := 0; x < w; x++ {
			ex := float64(x) - float64(w)/2 + cx
			// Invert the 2x2 system for (u-oi-ci, v-oj-cj).
			du := (d*ex - b*ey) / det
			dv := (a*ey - c*ex) / det
			u := du + v.oi + ci
			vv := dv + v.oj + cj
			val, al, ok := bilinearVA(inter, u, vv)
			if ok && al > 0 {
				out.Pix[(y*w+x)*raster.BytesPerPixel] = val
				out.Pix[(y*w+x)*raster.BytesPerPixel+1] = al
			}
		}
	}
	return out, nil
}

// bilinearVA samples a value+alpha image with alpha-weighted bilinear
// interpolation.
func bilinearVA(im *raster.Image, x, y float64) (v, a uint8, ok bool) {
	if x <= -1 || y <= -1 || x >= float64(im.W) || y >= float64(im.H) {
		return 0, 0, false
	}
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := x - float64(x0)
	fy := y - float64(y0)
	var accV, accA, wsum float64
	for dy := 0; dy <= 1; dy++ {
		for dx := 0; dx <= 1; dx++ {
			xx, yy := x0+dx, y0+dy
			if xx < 0 || yy < 0 || xx >= im.W || yy >= im.H {
				continue
			}
			w := (1 - math.Abs(float64(dx)-fx)) * (1 - math.Abs(float64(dy)-fy))
			pv, pa := im.At(xx, yy)
			accV += w * float64(pv) * float64(pa) / 255
			accA += w * float64(pa)
			wsum += w
		}
	}
	if wsum == 0 || accA == 0 {
		return 0, 0, false
	}
	return uint8(accV*255/accA + 0.5), uint8(accA/wsum + 0.5), true
}

// Render runs the full pipeline — factor, composite all slices, warp —
// producing a w x h final image.
func (r *Renderer) Render(cam Camera, w, h int) (*raster.Image, error) {
	v, err := r.Factor(cam)
	if err != nil {
		return nil, err
	}
	inter, err := r.RenderIntermediate(v)
	if err != nil {
		return nil, err
	}
	return r.Warp(v, inter, w, h)
}
