package shearwarp

import (
	"fmt"
	"sort"

	"rtcomp/internal/raster"
	"rtcomp/internal/volume"
	"rtcomp/internal/xfer"
)

// RLEVolume is the run-length encoded classified volume of Lacroute &
// Levoy — the data structure that makes shear-warp fast. The volume is
// encoded three times, once per principal axis, as per-row runs covering
// only the voxels that can contribute to the image: voxels within one
// in-plane step of a non-transparent voxel (the one-voxel dilation keeps
// bilinear resampling byte-exact at run boundaries). Rendering a frame
// then touches memory proportional to the visible data, not the volume.
//
// An RLEVolume is built against one transfer function; rendering it with a
// different classification would skip the wrong voxels, so the renderer
// checks the pairing.
type RLEVolume struct {
	tf     *xfer.Func
	dims   [3]int
	axes   [3]axisRLE
	stored int64
}

type axisRLE struct {
	ni, nj, nk int
	// rows[k*nj + j] is the run list of row j in slice k, in the unflipped
	// permuted frame of this principal axis.
	rows []rleRow
}

type rleRow struct {
	intervals []runInterval
	vals      []uint8 // concatenated scalars of the intervals' voxels
}

// NewRLEVolume classifies vol through tf and builds the three per-axis
// encodings.
func NewRLEVolume(vol *volume.Volume, tf *xfer.Func) *RLEVolume {
	rv := &RLEVolume{tf: tf, dims: [3]int{vol.NX, vol.NY, vol.NZ}}
	for axis := 0; axis < 3; axis++ {
		rv.axes[axis] = rv.encodeAxis(vol, axis)
	}
	return rv
}

// encodeAxis builds the encoding for one principal axis: permuted frame
// (i, j, k) = ((axis+1)%3, (axis+2)%3, axis), matching Renderer.Factor.
func (rv *RLEVolume) encodeAxis(vol *volume.Volume, axis int) axisRLE {
	perm := [3]int{(axis + 1) % 3, (axis + 2) % 3, axis}
	dims := [3]int{vol.NX, vol.NY, vol.NZ}
	ni, nj, nk := dims[perm[0]], dims[perm[1]], dims[perm[2]]
	enc := axisRLE{ni: ni, nj: nj, nk: nk, rows: make([]rleRow, nj*nk)}

	slice := make([]uint8, ni*nj)
	opaque := make([]bool, ni*nj)
	var p [3]int
	for k := 0; k < nk; k++ {
		p[perm[2]] = k
		idx := 0
		for j := 0; j < nj; j++ {
			p[perm[1]] = j
			for i := 0; i < ni; i++ {
				p[perm[0]] = i
				s := vol.At(p[0], p[1], p[2])
				slice[idx] = s
				opaque[idx] = rv.tf.Alpha[s] != 0
				idx++
			}
		}
		for j := 0; j < nj; j++ {
			row := rleRow{}
			// Stored iff any opaque voxel within the in-plane 3x3
			// neighbourhood.
			stored := func(i int) bool {
				for dj := -1; dj <= 1; dj++ {
					jj := j + dj
					if jj < 0 || jj >= nj {
						continue
					}
					for di := -1; di <= 1; di++ {
						ii := i + di
						if ii >= 0 && ii < ni && opaque[jj*ni+ii] {
							return true
						}
					}
				}
				return false
			}
			inRun, lo := false, 0
			flush := func(hi int) {
				row.intervals = append(row.intervals, runInterval{lo, hi})
				row.vals = append(row.vals, slice[j*ni+lo:j*ni+hi]...)
				rv.stored += int64(hi - lo)
			}
			for i := 0; i < ni; i++ {
				st := stored(i)
				if st && !inRun {
					lo, inRun = i, true
				}
				if !st && inRun {
					flush(i)
					inRun = false
				}
			}
			if inRun {
				flush(ni)
			}
			enc.rows[k*nj+j] = row
		}
	}
	return enc
}

// StoredFraction reports the stored voxels across all three encodings as a
// fraction of three full copies — the compression the encoding achieves.
func (rv *RLEVolume) StoredFraction() float64 {
	total := 3 * rv.dims[0] * rv.dims[1] * rv.dims[2]
	return float64(rv.stored) / float64(total)
}

// RenderSlabRLE renders slices [kLo, kHi) of the view from the encoded
// volume, byte-identical to RenderSlab. It requires the view to come from
// a renderer bound to the same volume dimensions and the same transfer
// function the encoding was built with, and falls back to the plain path
// when the transfer function's transparent set is not downward closed.
func (r *Renderer) RenderSlabRLE(rv *RLEVolume, v *View, kLo, kHi int) (*raster.Image, error) {
	if rv.tf != r.TF {
		return nil, fmt.Errorf("shearwarp: RLE volume was encoded with a different transfer function")
	}
	if rv.dims != [3]int{r.Vol.NX, r.Vol.NY, r.Vol.NZ} {
		return nil, fmt.Errorf("shearwarp: RLE volume dims %v do not match renderer volume", rv.dims)
	}
	if !r.transparentDownwardClosed() {
		return r.RenderSlab(v, kLo, kHi)
	}
	if kLo < 0 || kHi > v.nk || kLo > kHi {
		return nil, fmt.Errorf("shearwarp: slab [%d,%d) outside [0,%d)", kLo, kHi, v.nk)
	}
	enc := &rv.axes[v.perm[2]]
	out := raster.New(v.wi, v.hi)
	slice := make([]uint8, v.ni*v.nj)
	viewRows := make([][]runInterval, v.nj) // stored intervals in view coords
	for k := kLo; k < kHi; k++ {
		ko := k
		if v.flip[2] {
			ko = v.nk - 1 - k
		}
		// Materialize the slice in view coordinates, touching only stored
		// voxels, and collect each view row's stored intervals.
		for i := range slice {
			slice[i] = 0
		}
		for j := 0; j < v.nj; j++ {
			jo := j
			if v.flip[1] {
				jo = v.nj - 1 - j
			}
			row := &enc.rows[ko*v.nj+jo]
			viewRows[j] = viewRows[j][:0]
			off := 0
			for _, iv := range row.intervals {
				vals := row.vals[off : off+iv.hi-iv.lo]
				off += iv.hi - iv.lo
				if !v.flip[0] {
					copy(slice[j*v.ni+iv.lo:], vals)
					viewRows[j] = append(viewRows[j], iv)
					continue
				}
				lo := v.ni - iv.hi
				for x, val := range vals {
					slice[j*v.ni+v.ni-1-(iv.lo+x)] = val
				}
				viewRows[j] = append(viewRows[j], runInterval{lo, v.ni - iv.lo})
			}
			if v.flip[0] {
				// Reversed intervals come out back to front.
				sort.Slice(viewRows[j], func(a, b int) bool { return viewRows[j][a].lo < viewRows[j][b].lo })
			}
		}
		// Visit runs: union of this row's and the next row's stored
		// intervals (the sample footprint spans two rows). The stored
		// dilation is a superset of the exact active set, which is safe.
		runs := make([][]runInterval, v.nj)
		for j := 0; j < v.nj; j++ {
			var merged []runInterval
			merged = append(merged, viewRows[j]...)
			if j+1 < v.nj {
				merged = append(merged, viewRows[j+1]...)
			}
			runs[j] = mergeIntervals(merged)
		}
		r.renderSliceWithRuns(out, v, k, slice, runs)
	}
	return out, nil
}

// mergeIntervals sorts and coalesces overlapping or touching intervals.
func mergeIntervals(ivs []runInterval) []runInterval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].lo < ivs[b].lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}
