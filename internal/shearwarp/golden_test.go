package shearwarp

import (
	"hash/fnv"
	"testing"

	"rtcomp/internal/volume"
	"rtcomp/internal/xfer"
)

// Golden render hashes pin the exact pixel output of the full shear-warp
// pipeline (factor -> composite -> warp) for each phantom at a fixed view.
// They catch accidental behaviour changes in the renderer, the phantoms or
// the transfer presets; if a change is intentional, regenerate with the
// snippet in the failure message.
var goldenRenders = map[string]uint64{
	"engine": 0x81e2eca1a78d4747,
	"head":   0xfca42a5345a383c8,
	"brain":  0xbff0c51810ff4bda,
}

func TestGoldenRenderHashes(t *testing.T) {
	for _, name := range volume.Datasets {
		r := &Renderer{Vol: volume.ByName(name, 64), TF: xfer.ForDataset(name)}
		img, err := r.Render(Camera{Yaw: 0.35, Pitch: 0.2}, 128, 128)
		if err != nil {
			t.Fatal(err)
		}
		h := fnv.New64a()
		h.Write(img.Pix)
		got := h.Sum64()
		if got != goldenRenders[name] {
			t.Errorf("%s render hash = %#016x, golden %#016x — if the change is intentional, "+
				"re-run this test body to regenerate the constants", name, got, goldenRenders[name])
		}
	}
}
