package volume

import "math"

// Procedural phantoms with the gross character of the paper's three Chapel
// Hill test datasets. What the composition experiments care about is the
// sparsity structure of the rendered partial images (dense object against
// blank background), which these phantoms reproduce; they are not anatomical
// models.

// Dataset names the three phantoms.
var Datasets = []string{"engine", "head", "brain"}

// ByName builds the named phantom at the given cubic resolution.
func ByName(name string, n int) *Volume {
	switch name {
	case "engine":
		return Engine(n)
	case "head":
		return Head(n)
	case "brain":
		return Brain(n)
	}
	return nil
}

// Engine builds a CT-engine-block-like phantom: a dense rectangular casting
// with cylindrical bores, side channels and mounting holes.
func Engine(n int) *Volume {
	v := New(n, n, n)
	f := float64(n)
	// Casting: a centred block 70% of each dimension, density ~200 with a
	// mild vertical gradient (casting inhomogeneity).
	x0, x1 := int(0.15*f), int(0.85*f)
	y0, y1 := int(0.25*f), int(0.75*f)
	z0, z1 := int(0.15*f), int(0.85*f)
	for z := z0; z < z1; z++ {
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				v.Set(x, y, z, uint8(190+10*(z-z0)/maxInt(z1-z0, 1)))
			}
		}
	}
	// Four cylinder bores along Y.
	bores := [][2]float64{{0.30, 0.35}, {0.30, 0.65}, {0.70, 0.35}, {0.70, 0.65}}
	rad := 0.09 * f
	for _, b := range bores {
		cx, cz := b[0]*f, b[1]*f
		for z := z0; z < z1; z++ {
			for x := x0; x < x1; x++ {
				dx, dz := float64(x)-cx, float64(z)-cz
				if dx*dx+dz*dz < rad*rad {
					for y := y0; y < y1; y++ {
						v.Set(x, y, z, 0)
					}
				}
			}
		}
	}
	// A horizontal coolant channel along X.
	cy, cz := 0.5*f, 0.5*f
	crad := 0.05 * f
	for x := x0; x < x1; x++ {
		for y := y0; y < y1; y++ {
			for z := z0; z < z1; z++ {
				dy, dz := float64(y)-cy, float64(z)-cz
				if dy*dy+dz*dz < crad*crad {
					v.Set(x, y, z, 30) // fluid, low density
				}
			}
		}
	}
	return v
}

// Head builds a CT-head-like phantom: an ellipsoidal skull shell around
// soft tissue, with ventricle-like cavities and a nasal opening.
func Head(n int) *Volume {
	v := New(n, n, n)
	f := float64(n)
	cx, cy, cz := 0.5*f, 0.5*f, 0.52*f
	rx, ry, rz := 0.34*f, 0.40*f, 0.38*f
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				ex := (float64(x) - cx) / rx
				ey := (float64(y) - cy) / ry
				ez := (float64(z) - cz) / rz
				r := math.Sqrt(ex*ex + ey*ey + ez*ez)
				switch {
				case r > 1.0:
					// air
				case r > 0.88:
					v.Set(x, y, z, 230) // skull
				case r > 0.84:
					v.Set(x, y, z, 40) // CSF gap
				default:
					v.Set(x, y, z, 95) // brain tissue
				}
			}
		}
	}
	// Ventricles: two low-density lobes.
	for _, side := range []float64{-1, 1} {
		vx, vy, vz := cx+side*0.08*f, cy, cz+0.05*f
		vr := 0.07 * f
		for z := int(vz - vr); z <= int(vz+vr); z++ {
			for y := int(vy - 2*vr); y <= int(vy+2*vr); y++ {
				for x := int(vx - vr); x <= int(vx+vr); x++ {
					dx, dy, dz := float64(x)-vx, (float64(y)-vy)/2, float64(z)-vz
					if dx*dx+dy*dy+dz*dz < vr*vr && x >= 0 && y >= 0 && z >= 0 && x < n && y < n && z < n {
						v.Set(x, y, z, 25)
					}
				}
			}
		}
	}
	// Nasal opening through the shell.
	for z := int(0.25 * f); z < int(0.45*f); z++ {
		for y := int(0.05 * f); y < int(cy); y++ {
			for x := int(0.46 * f); x < int(0.54*f); x++ {
				v.Set(x, y, z, 10)
			}
		}
	}
	return v
}

// Brain builds an MR-brain-like phantom: a lobed soft-tissue ellipsoid with
// sinusoidal cortical folds and graded internal structure, no bright shell.
func Brain(n int) *Volume {
	v := New(n, n, n)
	f := float64(n)
	cx, cy, cz := 0.5*f, 0.5*f, 0.5*f
	rx, ry, rz := 0.38*f, 0.30*f, 0.32*f
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				ex := (float64(x) - cx) / rx
				ey := (float64(y) - cy) / ry
				ez := (float64(z) - cz) / rz
				r := math.Sqrt(ex*ex + ey*ey + ez*ez)
				// Cortical folds: modulate the surface radius.
				theta := math.Atan2(ey, ex)
				phi := math.Atan2(ez, math.Sqrt(ex*ex+ey*ey))
				fold := 0.04 * math.Sin(9*theta) * math.Cos(7*phi)
				if r > 1.0+fold {
					continue
				}
				// Gray matter rim, white matter core, graded.
				depth := (1.0 + fold - r) / (1.0 + fold)
				val := 70 + 70*depth
				if math.Sin(5*theta+3*phi) > 0.7 {
					val -= 25 // sulci shading
				}
				v.Set(x, y, z, uint8(clamp(val, 1, 255)))
			}
		}
	}
	return v
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
