// Package volume provides the scalar volume substrate of the rendering
// pipeline: a dense uint8 field with raw file IO, plus procedural phantom
// generators standing in for the Chapel Hill CT/MR test datasets the paper
// uses ("engine", "head", "brain" — see DESIGN.md for the substitution
// rationale).
package volume

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Volume is a dense scalar field of NX x NY x NZ voxels, X fastest.
type Volume struct {
	NX, NY, NZ int
	Data       []uint8
}

// New allocates a zeroed volume.
func New(nx, ny, nz int) *Volume {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("volume: invalid dims %dx%dx%d", nx, ny, nz))
	}
	return &Volume{NX: nx, NY: ny, NZ: nz, Data: make([]uint8, nx*ny*nz)}
}

// At returns the voxel at (x, y, z); out-of-range coordinates read as 0
// (air), which simplifies resampling at boundaries.
func (v *Volume) At(x, y, z int) uint8 {
	if x < 0 || y < 0 || z < 0 || x >= v.NX || y >= v.NY || z >= v.NZ {
		return 0
	}
	return v.Data[(z*v.NY+y)*v.NX+x]
}

// Set stores the voxel at (x, y, z); coordinates must be in range.
func (v *Volume) Set(x, y, z int, val uint8) {
	v.Data[(z*v.NY+y)*v.NX+x] = val
}

// NVoxels reports the voxel count.
func (v *Volume) NVoxels() int { return v.NX * v.NY * v.NZ }

// Histogram counts voxels per scalar value.
func (v *Volume) Histogram() [256]int {
	var h [256]int
	for _, s := range v.Data {
		h[s]++
	}
	return h
}

// OccupiedFraction reports the fraction of voxels above the threshold.
func (v *Volume) OccupiedFraction(threshold uint8) float64 {
	n := 0
	for _, s := range v.Data {
		if s > threshold {
			n++
		}
	}
	return float64(n) / float64(v.NVoxels())
}

// Downsample returns the volume reduced by an integer factor along every
// axis, each output voxel the rounded mean of its factor^3 input block —
// for fitting large imported scans into memory- or time-constrained runs.
func (v *Volume) Downsample(factor int) (*Volume, error) {
	if factor < 1 {
		return nil, fmt.Errorf("volume: downsample factor %d", factor)
	}
	if factor == 1 {
		out := New(v.NX, v.NY, v.NZ)
		copy(out.Data, v.Data)
		return out, nil
	}
	nx, ny, nz := (v.NX+factor-1)/factor, (v.NY+factor-1)/factor, (v.NZ+factor-1)/factor
	out := New(nx, ny, nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				var sum, n int
				for dz := 0; dz < factor; dz++ {
					for dy := 0; dy < factor; dy++ {
						for dx := 0; dx < factor; dx++ {
							sx, sy, sz := x*factor+dx, y*factor+dy, z*factor+dz
							if sx < v.NX && sy < v.NY && sz < v.NZ {
								sum += int(v.At(sx, sy, sz))
								n++
							}
						}
					}
				}
				out.Set(x, y, z, uint8((sum+n/2)/n))
			}
		}
	}
	return out, nil
}

// magic identifies the tiny container format of Save/Load.
var magic = [5]byte{'R', 'T', 'V', 'O', 'L'}

// Save writes the volume to a file: a 5-byte magic, three big-endian
// uint32 dimensions, then the raw voxels.
func (v *Volume) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	var dims [12]byte
	binary.BigEndian.PutUint32(dims[0:], uint32(v.NX))
	binary.BigEndian.PutUint32(dims[4:], uint32(v.NY))
	binary.BigEndian.PutUint32(dims[8:], uint32(v.NZ))
	if _, err := w.Write(dims[:]); err != nil {
		return err
	}
	if _, err := w.Write(v.Data); err != nil {
		return err
	}
	return w.Flush()
}

// LoadRaw reads a headerless 8-bit raw volume with the given dimensions —
// the format the original Chapel Hill test datasets ship in — so real
// scans drop into the pipeline in place of the phantoms.
func LoadRaw(path string, nx, ny, nz int) (*Volume, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("volume: invalid raw dims %dx%dx%d", nx, ny, nz)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	v := New(nx, ny, nz)
	if _, err := io.ReadFull(bufio.NewReader(f), v.Data); err != nil {
		return nil, fmt.Errorf("volume: raw file %s smaller than %d voxels: %w", path, v.NVoxels(), err)
	}
	return v, nil
}

// Load reads a volume written by Save.
func Load(path string) (*Volume, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("volume: reading header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("volume: %s is not an RTVOL file", path)
	}
	var dims [12]byte
	if _, err := io.ReadFull(r, dims[:]); err != nil {
		return nil, fmt.Errorf("volume: reading dims: %w", err)
	}
	nx := int(binary.BigEndian.Uint32(dims[0:]))
	ny := int(binary.BigEndian.Uint32(dims[4:]))
	nz := int(binary.BigEndian.Uint32(dims[8:]))
	const maxDim = 4096
	if nx <= 0 || ny <= 0 || nz <= 0 || nx > maxDim || ny > maxDim || nz > maxDim {
		return nil, fmt.Errorf("volume: implausible dims %dx%dx%d", nx, ny, nz)
	}
	v := New(nx, ny, nz)
	if _, err := io.ReadFull(r, v.Data); err != nil {
		return nil, fmt.Errorf("volume: reading voxels: %w", err)
	}
	return v, nil
}
