package volume

import (
	"os"
	"path/filepath"
	"testing"
)

func osWriteFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

func TestNewAtSet(t *testing.T) {
	v := New(4, 5, 6)
	if v.NVoxels() != 120 {
		t.Fatalf("NVoxels = %d", v.NVoxels())
	}
	v.Set(3, 4, 5, 77)
	if got := v.At(3, 4, 5); got != 77 {
		t.Fatalf("At = %d", got)
	}
	// Out of range reads as air.
	if v.At(-1, 0, 0) != 0 || v.At(4, 0, 0) != 0 || v.At(0, 5, 0) != 0 || v.At(0, 0, 6) != 0 {
		t.Fatal("out-of-range voxel not air")
	}
}

func TestHistogram(t *testing.T) {
	v := New(2, 2, 2)
	v.Set(0, 0, 0, 9)
	v.Set(1, 1, 1, 9)
	h := v.Histogram()
	if h[9] != 2 || h[0] != 6 {
		t.Fatalf("histogram h[9]=%d h[0]=%d", h[9], h[0])
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	v := Engine(16)
	path := filepath.Join(t.TempDir(), "engine.rtvol")
	if err := v.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NX != 16 || got.NY != 16 || got.NZ != 16 {
		t.Fatalf("dims %dx%dx%d", got.NX, got.NY, got.NZ)
	}
	for i := range v.Data {
		if v.Data[i] != got.Data[i] {
			t.Fatalf("voxel %d differs", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus")
	if err := New(1, 1, 1).Save(path); err != nil {
		t.Fatal(err)
	}
	// Corrupt the magic.
	if _, err := Load("/nonexistent/file"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPhantomsHaveStructure(t *testing.T) {
	for _, name := range Datasets {
		v := ByName(name, 32)
		if v == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
		occ := v.OccupiedFraction(20)
		if occ < 0.05 || occ > 0.8 {
			t.Fatalf("%s: occupied fraction %v not object-against-background", name, occ)
		}
		// Multiple density populations, not a binary mask.
		h := v.Histogram()
		distinct := 0
		for s := 1; s < 256; s++ {
			if h[s] > 0 {
				distinct++
			}
		}
		if distinct < 3 {
			t.Fatalf("%s: only %d distinct non-air densities", name, distinct)
		}
	}
	if ByName("nope", 8) != nil {
		t.Fatal("unknown dataset returned a volume")
	}
}

func TestEngineHasBores(t *testing.T) {
	v := Engine(64)
	// The bore at (0.30, y, 0.35) must be empty while the casting nearby
	// is dense.
	if v.At(19, 32, 22) != 0 {
		t.Fatalf("bore voxel = %d, want 0", v.At(19, 32, 22))
	}
	if v.At(13, 32, 13) < 150 {
		t.Fatalf("casting voxel = %d, want dense", v.At(13, 32, 13))
	}
}

func TestPhantomsDeterministic(t *testing.T) {
	a, b := Head(24), Head(24)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("phantom generation is not deterministic")
		}
	}
}

func TestLoadRaw(t *testing.T) {
	v := Brain(12)
	path := filepath.Join(t.TempDir(), "brain.raw")
	if err := osWriteFile(path, v.Data); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRaw(path, 12, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Data {
		if got.Data[i] != v.Data[i] {
			t.Fatalf("voxel %d differs", i)
		}
	}
	if _, err := LoadRaw(path, 13, 13, 13); err == nil {
		t.Fatal("short raw file accepted")
	}
	if _, err := LoadRaw(path, 0, 1, 1); err == nil {
		t.Fatal("zero dims accepted")
	}
}

func TestDownsample(t *testing.T) {
	v := Engine(32)
	d, err := v.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.NX != 16 || d.NY != 16 || d.NZ != 16 {
		t.Fatalf("dims %dx%dx%d", d.NX, d.NY, d.NZ)
	}
	// The downsampled occupancy tracks the original's.
	if orig, down := v.OccupiedFraction(20), d.OccupiedFraction(20); down < orig/2 || down > orig*2 {
		t.Fatalf("occupancy drifted: %v -> %v", orig, down)
	}
	// A constant block averages to itself.
	c := New(4, 4, 4)
	for i := range c.Data {
		c.Data[i] = 77
	}
	dc, _ := c.Downsample(2)
	for i, s := range dc.Data {
		if s != 77 {
			t.Fatalf("voxel %d = %d", i, s)
		}
	}
	// Non-divisible dims round up with partial blocks.
	odd := New(5, 5, 5)
	do, err := odd.Downsample(2)
	if err != nil || do.NX != 3 {
		t.Fatalf("odd downsample: %v, %v", do, err)
	}
	// Factor 1 copies.
	same, _ := v.Downsample(1)
	for i := range v.Data {
		if same.Data[i] != v.Data[i] {
			t.Fatal("factor 1 changed data")
		}
	}
	if _, err := v.Downsample(0); err == nil {
		t.Fatal("factor 0 accepted")
	}
}
