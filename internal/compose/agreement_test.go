package compose

import (
	"math/rand"
	"testing"
)

// TestOverPixelAgreesWithFloatExactly sweeps the full 256x256 alpha plane
// and a stride-sampled grid of the two value channels (the value channels
// enter the over operator linearly, so a stride hits every carry/rounding
// regime) and requires the u8 kernel and the quantised float64 reference to
// agree EXACTLY — not within ±1. This is the oracle that the word-wide
// kernels and the codecs' fused decode+over paths are differentially tested
// against; a ±1 tolerance here would let a rounding bug hide under it.
//
// The single excluded corner is a non-canonical blank back pixel under a
// blank front (fa == 0, ba == 0, bv != 0): OverU8 deliberately passes the
// back through verbatim, while the float reference canonicalises a fully
// transparent result to (0, 0). Canonical rasters never contain such
// pixels.
func TestOverPixelAgreesWithFloatExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive alpha sweep")
	}
	// 17 and 13 are coprime to 256, so the sampled values cover all
	// residues mod small powers of two — the regimes that matter for
	// rounding — while keeping the sweep around 16M pixels.
	const stride = 17
	const stride2 = 13
	var mismatches int
	for fa := 0; fa < 256; fa++ {
		for ba := 0; ba < 256; ba++ {
			for fv := 0; fv < 256; fv += stride {
				for bv := 0; bv < 256; bv += stride2 {
					if fa == 0 && ba == 0 && bv != 0 {
						continue
					}
					gv, ga := OverPixel(uint8(fv), uint8(fa), uint8(bv), uint8(ba))
					wv, wa := FOverPixel(float64(fv), float64(fa), float64(bv), float64(ba))
					if gv != clamp8(wv) || ga != clamp8(wa) {
						mismatches++
						if mismatches <= 10 {
							t.Errorf("OverPixel(%d,%d,%d,%d) = (%d,%d), float reference (%g,%g) -> (%d,%d)",
								fv, fa, bv, ba, gv, ga, wv, wa, clamp8(wv), clamp8(wa))
						}
					}
				}
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d mismatches between OverPixel and the float reference", mismatches)
	}
}

// TestOverU8MatchesOverPixel drives the word-wide kernel with images built
// to exercise every word class — all-opaque words, all-blank words, mixed
// words, and odd tails — and checks byte identity against a pure per-pixel
// walk.
func TestOverU8MatchesOverPixel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(133) // pixels; odd sizes leave word-loop tails
		front := randomPixels(rng, n)
		back := randomPixels(rng, n)
		want := make([]uint8, 2*n)
		for i := 0; i < n; i++ {
			want[2*i], want[2*i+1] = OverPixel(front[2*i], front[2*i+1], back[2*i], back[2*i+1])
		}
		got := make([]uint8, 2*n)
		OverU8(got, front, back)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: OverU8 differs from OverPixel at byte %d: got %d want %d",
					trial, i, got[i], want[i])
			}
		}
	}
}

// TestOverU8RunsMatchesMaterialized checks the run-oriented kernel against
// the oracle of materializing the runs into a scratch block and calling
// OverU8, in both orientations.
func TestOverU8RunsMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, runsFront := range []bool{true, false} {
		for trial := 0; trial < 60; trial++ {
			n := 16 + rng.Intn(200)
			resident := randomPixels(rng, n)
			// Non-overlapping runs with gaps, random alphas including the
			// 0 and 255 fast paths and non-canonical blank runs.
			var runs []Run
			layer := make([]uint8, 2*n) // blank where no run covers
			covered := make([]bool, n)
			for off := 0; off < n; {
				off += rng.Intn(5)
				if off >= n {
					break
				}
				ln := 1 + rng.Intn(n-off)
				var v, a uint8
				switch rng.Intn(4) {
				case 0:
					v, a = uint8(rng.Intn(256)), 0 // blank, maybe non-canonical
				case 1:
					v, a = uint8(rng.Intn(256)), 255
				default:
					v, a = uint8(rng.Intn(256)), uint8(1+rng.Intn(254))
				}
				runs = append(runs, Run{Off: off, N: ln, V: v, A: a})
				for i := off; i < off+ln; i++ {
					layer[2*i], layer[2*i+1] = v, a
					covered[i] = true
				}
				off += ln
			}
			want := make([]uint8, 2*n)
			if runsFront {
				OverU8(want, layer, resident)
				// Uncovered pixels are untouched by OverU8Runs; the oracle
				// composited blank-over-resident there, which passes the
				// resident through — same bytes either way.
			} else {
				OverU8(want, resident, layer)
				// Where no run covers, OverU8Runs leaves the resident pixel
				// alone but the oracle composited resident-over-blank, which
				// canonicalises resident blanks; mask those out.
				for i := 0; i < n; i++ {
					if !covered[i] {
						want[2*i], want[2*i+1] = resident[2*i], resident[2*i+1]
					}
				}
			}
			got := append([]uint8(nil), resident...)
			pix := OverU8Runs(got, runs, runsFront)
			wantPix := 0
			for _, r := range runs {
				wantPix += r.N
			}
			if pix != wantPix {
				t.Fatalf("OverU8Runs reported %d pixels, want %d", pix, wantPix)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("runsFront=%v trial %d: byte %d differs: got %d want %d",
						runsFront, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// randomPixels draws pixels that hit the kernels' word classes: stretches
// of opaque, stretches of blank (sometimes non-canonical), and mixed alpha.
func randomPixels(rng *rand.Rand, n int) []uint8 {
	pix := make([]uint8, 2*n)
	for i := 0; i < n; {
		ln := 1 + rng.Intn(9)
		mode := rng.Intn(4)
		for j := 0; j < ln && i < n; j, i = j+1, i+1 {
			switch mode {
			case 0: // blank (canonical)
				pix[2*i], pix[2*i+1] = 0, 0
			case 1: // opaque
				pix[2*i], pix[2*i+1] = uint8(rng.Intn(256)), 255
			case 2: // partial
				pix[2*i], pix[2*i+1] = uint8(rng.Intn(256)), uint8(1+rng.Intn(254))
			case 3: // non-canonical blank back pixels stress fa==0 passthrough
				pix[2*i], pix[2*i+1] = uint8(rng.Intn(256)), 0
			}
		}
	}
	return pix
}
