package compose

import (
	"encoding/binary"
	"fmt"

	"rtcomp/internal/raster"
)

// Run is a run of identical (value, alpha) pixels at a pixel offset inside a
// block — the unit the RLE-family codecs produce. Off and N count pixels,
// not bytes.
type Run struct {
	Off, N int
	V, A   uint8
}

// OverU8Runs composites constant-pixel runs with dst in place and returns
// the number of pixels passed through the over operator (the summed run
// lengths). When runsFront is true each run acts as the front layer (run
// over dst); otherwise dst is the front and the runs are the back layer.
// Pixels of dst outside every run are untouched — which is what lets a
// fused decoder composite an encoded fragment without ever materializing
// the decoded scanlines: RLE's receive path walks the stream and feeds the
// runs straight here.
//
// Per-pixel results are byte-identical to decoding the runs into a scratch
// block and calling OverU8: both funnel partial-alpha pixels through
// OverBlend and share the same short-circuits.
func OverU8Runs(dst []uint8, runs []Run, runsFront bool) int {
	pixels := 0
	for _, r := range runs {
		if r.N < 0 || r.Off < 0 || (r.Off+r.N)*raster.BytesPerPixel > len(dst) {
			panic(fmt.Sprintf("compose: OverU8Runs run [%d,%d) outside %d-byte block",
				r.Off, r.Off+r.N, len(dst)))
		}
		seg := dst[r.Off*raster.BytesPerPixel : (r.Off+r.N)*raster.BytesPerPixel]
		if runsFront {
			overRunFront(seg, r.V, r.A)
		} else {
			overRunBack(seg, r.V, r.A)
		}
		pixels += r.N
	}
	return pixels
}

// overRunFront composites a constant front pixel over every pixel of dst.
func overRunFront(dst []uint8, v, a uint8) {
	switch a {
	case 0:
		// Blank front: the back (dst) wins everywhere, even when the run
		// carries a non-canonical value byte.
	case 255:
		FillPixels(dst, v, a)
	default:
		for i := 0; i+raster.BytesPerPixel <= len(dst); i += raster.BytesPerPixel {
			dst[i], dst[i+1] = OverBlend(v, a, dst[i], dst[i+1])
		}
	}
}

// overRunBack composites every pixel of dst (the front) over a constant
// back pixel, in place. Like OverU8 it classifies four front pixels per
// 64-bit load: an all-opaque word is untouched, an all-blank word becomes
// four copies of the back pixel, and mixed words take the per-pixel path.
func overRunBack(dst []uint8, v, a uint8) {
	pat := pixelWord(v, a)
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		fw := binary.LittleEndian.Uint64(dst[i:])
		switch fw & alphaLanes {
		case opaqueWord:
		case 0:
			binary.LittleEndian.PutUint64(dst[i:], pat)
		default:
			for k := i; k < i+8; k += raster.BytesPerPixel {
				switch fa := dst[k+1]; fa {
				case 255:
				case 0:
					dst[k], dst[k+1] = v, a
				default:
					dst[k], dst[k+1] = OverBlend(dst[k], fa, v, a)
				}
			}
		}
	}
	for ; i < len(dst); i += raster.BytesPerPixel {
		switch fa := dst[i+1]; fa {
		case 255:
		case 0:
			dst[i], dst[i+1] = v, a
		default:
			dst[i], dst[i+1] = OverBlend(dst[i], fa, v, a)
		}
	}
}

// pixelWord broadcasts one (value, alpha) pixel across a little-endian
// 64-bit word of four pixels.
func pixelWord(v, a uint8) uint64 {
	p := uint64(v) | uint64(a)<<8
	p |= p << 16
	return p | p<<32
}

// FillPixels stores the (v, a) pixel into every pixel of dst, eight bytes
// at a time. dst must have even length.
func FillPixels(dst []uint8, v, a uint8) {
	pat := pixelWord(v, a)
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], pat)
	}
	for ; i < len(dst); i += raster.BytesPerPixel {
		dst[i], dst[i+1] = v, a
	}
}
