package compose

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rtcomp/internal/raster"
)

func pix(v, a uint8) []uint8 { return []uint8{v, a} }

func TestOverOpaqueFrontWins(t *testing.T) {
	dst := make([]uint8, 2)
	OverU8(dst, pix(100, 255), pix(50, 200))
	if dst[0] != 100 || dst[1] != 255 {
		t.Fatalf("got (%d,%d), want (100,255)", dst[0], dst[1])
	}
}

func TestOverBlankFrontPassesBack(t *testing.T) {
	dst := make([]uint8, 2)
	OverU8(dst, pix(0, 0), pix(50, 200))
	if dst[0] != 50 || dst[1] != 200 {
		t.Fatalf("got (%d,%d), want (50,200)", dst[0], dst[1])
	}
}

func TestOverBothBlankStaysBlank(t *testing.T) {
	dst := pix(9, 9)
	OverU8(dst, pix(0, 0), pix(0, 0))
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("got (%d,%d), want (0,0)", dst[0], dst[1])
	}
}

func TestOverHalfAlphaBlend(t *testing.T) {
	// front (200, 128) over back (100, 255):
	// outA = 128/255 + 1*(1-128/255) = 1 -> 255
	// outV = (200*0.50196 + 100*1*0.49804)/1 = 150.2 -> 150
	dst := make([]uint8, 2)
	OverU8(dst, pix(200, 128), pix(100, 255))
	wv, wa := FOverPixel(200, 128, 100, 255)
	if absInt(int(dst[0])-int(wv+0.5)) > 1 || absInt(int(dst[1])-int(wa+0.5)) > 1 {
		t.Fatalf("got (%d,%d), float reference (%v,%v)", dst[0], dst[1], wv, wa)
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Against the float reference, the u8 kernel must be within 1 level.
func TestOverU8MatchesFloatReference(t *testing.T) {
	f := func(fv, fa, bv, ba uint8) bool {
		dst := make([]uint8, 2)
		OverU8(dst, pix(fv, fa), pix(bv, ba))
		wv, wa := FOverPixel(float64(fv), float64(fa), float64(bv), float64(ba))
		// When out-alpha is tiny the value channel is ill-conditioned;
		// weight the check by alpha.
		okA := absInt(int(dst[1])-int(wa+0.5)) <= 1
		okV := true
		if wa >= 8 {
			okV = absInt(int(dst[0])-int(wv+0.5)) <= 2
		}
		return okA && okV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// With binary alpha, over is exactly associative: (a over b) over c ==
// a over (b over c) byte for byte.
func TestBinaryAlphaExactAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := randBinaryPix(rng)
		b := randBinaryPix(rng)
		c := randBinaryPix(rng)
		left := make([]uint8, 2)
		OverU8(left, a, b)
		OverU8(left, left, c)
		right := make([]uint8, 2)
		OverU8(right, b, c)
		OverU8(right, a, right)
		if left[0] != right[0] || left[1] != right[1] {
			t.Fatalf("associativity broken: a=%v b=%v c=%v left=%v right=%v", a, b, c, left, right)
		}
	}
}

func randBinaryPix(rng *rand.Rand) []uint8 {
	if rng.Intn(2) == 0 {
		return pix(0, 0)
	}
	return pix(uint8(rng.Intn(256)), 255)
}

func TestOverU8Aliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	front := raster.RandomImage(rng, 8, 8, 0.3)
	back := raster.RandomImage(rng, 8, 8, 0.3)
	want := make([]uint8, len(front.Pix))
	OverU8(want, front.Pix, back.Pix)
	// dst aliases back (the in-place production pattern).
	got := back.Clone()
	OverU8(got.Pix, front.Pix, got.Pix)
	for i := range want {
		if got.Pix[i] != want[i] {
			t.Fatalf("aliased result differs at byte %d", i)
		}
	}
}

func TestOverU8LengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OverU8(make([]uint8, 2), make([]uint8, 4), make([]uint8, 4))
}

func TestSerialCompositeDepthOrder(t *testing.T) {
	// Three opaque layers: front layer must win everywhere it covers.
	l0 := raster.New(4, 1)
	l0.Set(0, 0, 10, 255)
	l1 := raster.New(4, 1)
	l1.Set(0, 0, 20, 255)
	l1.Set(1, 0, 21, 255)
	l2 := raster.New(4, 1)
	l2.Fill(30, 255)
	out := SerialComposite([]*raster.Image{l0, l1, l2})
	wantV := []uint8{10, 21, 30, 30}
	for x := 0; x < 4; x++ {
		if v, a := out.At(x, 0); v != wantV[x] || a != 255 {
			t.Fatalf("pixel %d = (%d,%d), want (%d,255)", x, v, a, wantV[x])
		}
	}
}

func TestSerialCompositeMatchesFloatWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	layers := make([]*raster.Image, 6)
	for i := range layers {
		layers[i] = raster.RandomImage(rng, 16, 16, 0.4)
	}
	u8 := SerialComposite(layers)
	f := SerialCompositeF(layers)
	if d := raster.MaxDiff(u8, f); d > 3 {
		t.Fatalf("u8 vs float reference max diff %d", d)
	}
}

func TestOverSpanOnlyTouchesSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	back := raster.RandomImage(rng, 8, 8, 0.2)
	front := raster.RandomImage(rng, 8, 8, 0.2)
	orig := back.Clone()
	s := raster.Span{Lo: 10, Hi: 30}
	OverSpan(back, front, s)
	for i := 0; i < back.NPixels(); i++ {
		inSpan := i >= s.Lo && i < s.Hi
		same := back.Pix[2*i] == orig.Pix[2*i] && back.Pix[2*i+1] == orig.Pix[2*i+1]
		if !inSpan && !same {
			t.Fatalf("pixel %d outside span changed", i)
		}
	}
}

func TestStatsAdd(t *testing.T) {
	var s Stats
	s.Add(Stats{Pixels: 10, Calls: 1})
	s.Add(Stats{Pixels: 5, Calls: 2})
	if s.Pixels != 15 || s.Calls != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func BenchmarkOverU8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	front := raster.RandomImage(rng, 512, 512, 0.5)
	back := raster.RandomImage(rng, 512, 512, 0.5)
	b.SetBytes(int64(len(front.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OverU8(back.Pix, front.Pix, back.Pix)
	}
}
