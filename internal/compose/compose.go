// Package compose implements the Porter-Duff "over" operator used to merge
// partial images in depth order, in both a fast uint8 path (the production
// kernel) and a float32 reference path used as ground truth in tests.
//
// Convention: ranks are numbered front to back, so the final image is
// layer(0) over layer(1) over ... over layer(P-1). All kernels operate on
// interleaved value+alpha byte slices as produced by raster.Image.
package compose

import (
	"encoding/binary"
	"fmt"

	"rtcomp/internal/raster"
)

// Stats accumulates the amount of compositing work performed, mirroring the
// paper's To (per-pixel "over" time) accounting.
type Stats struct {
	Pixels int // pixels passed through an over kernel
	Calls  int // kernel invocations
}

// Add merges other into s.
func (s *Stats) Add(other Stats) {
	s.Pixels += other.Pixels
	s.Calls += other.Calls
}

// Word-wide masks over four interleaved value+alpha pixels viewed as one
// little-endian uint64: alphaLanes selects the four alpha bytes, opaqueWord
// is what alphaLanes reads when all four pixels are fully opaque.
const (
	alphaLanes = uint64(0xFF00FF00FF00FF00)
	opaqueWord = alphaLanes
)

// OverBlend is the blended branch of the over operator for one pixel with
// 0 < fa < 255, in 16-bit fixed point; +127 and +ca/2 round to nearest.
// Every kernel in this package (and the codecs' fused decode+over kernels)
// funnels partial-alpha pixels through this one function, which is what
// makes their outputs byte-identical by construction. It is exported —
// unlike OverPixel it fits the inlining budget, so hot loops outside the
// package write the fa switch out and call it directly.
func OverBlend(fv, fa, bv, ba uint8) (v, a uint8) {
	inv := uint32(255 - fa)
	ca := uint32(fa)*255 + inv*uint32(ba)
	cv := uint32(fv)*uint32(fa)*255 + inv*uint32(ba)*uint32(bv)
	ao := (ca + 127) / 255
	var vo uint32
	if ca > 0 {
		vo = (cv + ca/2) / ca
	}
	return uint8(vo), uint8(ao)
}

// OverPixel composites one front pixel over one back pixel, with the exact
// semantics of OverU8 including its short-circuits: an opaque front wins, a
// blank front passes the back through verbatim (even a non-canonical blank).
func OverPixel(fv, fa, bv, ba uint8) (v, a uint8) {
	switch fa {
	case 255:
		return fv, fa
	case 0:
		return bv, ba
	default:
		return OverBlend(fv, fa, bv, ba)
	}
}

// OverU8 composites front over back, writing the result into dst. All three
// slices must have the same even length (value+alpha interleaved); dst may
// alias front or back. It returns the number of pixels processed.
//
// Alpha is straight (non-premultiplied): out.a = fa + ba*(255-fa)/255 and
// out.v is the alpha-weighted blend. Fully opaque and fully blank front
// pixels short-circuit, which also makes the operator exactly associative
// whenever every alpha is 0 or 255.
//
// The kernel runs four pixels per iteration: one 64-bit load classifies the
// front word, and the two overwhelmingly common classes — all four front
// pixels opaque, all four blank — resolve with a single word store. Mixed
// words fall back to the per-pixel operator, so the output is byte-identical
// to a pixel-at-a-time walk.
func OverU8(dst, front, back []uint8) int {
	if len(front) != len(back) || len(dst) != len(front) || len(front)%raster.BytesPerPixel != 0 {
		panic(fmt.Sprintf("compose: OverU8 length mismatch dst=%d front=%d back=%d",
			len(dst), len(front), len(back)))
	}
	n := len(front)
	i := 0
	for ; i+8 <= n; i += 8 {
		fw := binary.LittleEndian.Uint64(front[i:])
		switch fw & alphaLanes {
		case opaqueWord:
			binary.LittleEndian.PutUint64(dst[i:], fw)
		case 0:
			binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(back[i:]))
		default:
			// The per-pixel switch is written out (not a call to OverPixel,
			// which is over the inlining budget): a call per mixed pixel
			// costs more than the blend itself.
			for k := i; k < i+8; k += raster.BytesPerPixel {
				fv, fa := front[k], front[k+1]
				switch fa {
				case 255:
					dst[k], dst[k+1] = fv, fa
				case 0:
					dst[k], dst[k+1] = back[k], back[k+1]
				default:
					dst[k], dst[k+1] = OverBlend(fv, fa, back[k], back[k+1])
				}
			}
		}
	}
	for ; i < n; i += raster.BytesPerPixel {
		fv, fa := front[i], front[i+1]
		switch fa {
		case 255:
			dst[i], dst[i+1] = fv, fa
		case 0:
			dst[i], dst[i+1] = back[i], back[i+1]
		default:
			dst[i], dst[i+1] = OverBlend(fv, fa, back[i], back[i+1])
		}
	}
	return n / raster.BytesPerPixel
}

// OverImage composites front over back in place on back's pixels, i.e.
// back <- front over back, covering the whole image.
func OverImage(back, front *raster.Image) int {
	return OverU8(back.Pix, front.Pix, back.Pix)
}

// OverSpan composites the given span of front over the same span of back,
// storing into back.
func OverSpan(back, front *raster.Image, s raster.Span) int {
	return OverU8(back.SpanBytes(s), front.SpanBytes(s), back.SpanBytes(s))
}

// SerialComposite folds layers front-to-back with OverU8 and returns the
// final image: layers[0] over layers[1] over ... It is the reference result
// every parallel composition method must reproduce.
func SerialComposite(layers []*raster.Image) *raster.Image {
	if len(layers) == 0 {
		panic("compose: SerialComposite with no layers")
	}
	out := layers[len(layers)-1].Clone()
	for i := len(layers) - 2; i >= 0; i-- {
		OverImage(out, layers[i])
	}
	return out
}

// FOverPixel is the float64 reference for a single pixel over operation on
// straight-alpha values in [0,255]. Used to bound quantisation error.
//
// It evaluates the over operator as one fused rational,
//
//	v = (fv·fa·255 + bv·ba·(255-fa)) / (fa·255 + ba·(255-fa))
//	a = (fa·255 + ba·(255-fa)) / 255
//
// rather than dividing each term by 255 first. For integer inputs every
// product above is an integer below 2^53, so numerator and denominator are
// exact in float64 and the quotient is correctly rounded — the earlier
// per-term form drifted by ±1 at rounding ties (e.g. low-alpha blends whose
// exact value channel lands on x.5), which made the float path disagree
// with OverU8's exact round-half-up integer arithmetic. With the fused form
// the quantised reference matches OverU8 exactly on canonical pixels; the
// agreement test in agreement_test.go pins that.
func FOverPixel(fv, fa, bv, ba float64) (v, a float64) {
	inv := 255 - fa
	ca := fa*255 + inv*ba
	if ca == 0 {
		return 0, 0
	}
	v = (fv*fa*255 + inv*ba*bv) / ca
	return v, ca / 255
}

// SerialCompositeF folds layers front-to-back entirely in float64 and
// quantises once at the end. It is the high-precision reference against
// which u8 association-order differences are measured.
func SerialCompositeF(layers []*raster.Image) *raster.Image {
	if len(layers) == 0 {
		panic("compose: SerialCompositeF with no layers")
	}
	w, h := layers[0].W, layers[0].H
	n := w * h
	accV := make([]float64, n)
	accA := make([]float64, n)
	back := layers[len(layers)-1]
	for i := 0; i < n; i++ {
		accV[i] = float64(back.Pix[2*i])
		accA[i] = float64(back.Pix[2*i+1])
	}
	for l := len(layers) - 2; l >= 0; l-- {
		pix := layers[l].Pix
		for i := 0; i < n; i++ {
			accV[i], accA[i] = FOverPixel(float64(pix[2*i]), float64(pix[2*i+1]), accV[i], accA[i])
		}
	}
	out := raster.New(w, h)
	for i := 0; i < n; i++ {
		out.Pix[2*i] = clamp8(accV[i])
		out.Pix[2*i+1] = clamp8(accA[i])
	}
	return out
}

func clamp8(x float64) uint8 {
	v := int(x + 0.5)
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
