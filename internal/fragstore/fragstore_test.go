package fragstore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"rtcomp/internal/codec"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
)

func newStore(t *testing.T, rank, p, tiles, w, h int) *Store {
	t.Helper()
	sched, err := schedule.RT(p, tiles)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(rank) + 1))
	return New(rank, sched, raster.RandomImage(rng, w, h, 0.3))
}

func TestNewStagesTiles(t *testing.T) {
	st := newStore(t, 1, 4, 3, 20, 10)
	if st.Rank() != 1 {
		t.Fatalf("rank = %d", st.Rank())
	}
	if st.Len() != 3 {
		t.Fatalf("holds %d blocks, want 3", st.Len())
	}
	total := 0
	for _, b := range st.Blocks() {
		frags := st.Frags(b)
		if len(frags) != 1 {
			t.Fatalf("block %v has %d fragments", b, len(frags))
		}
		if frags[0].Rng != (schedule.RankRange{Lo: 1, Hi: 2}) {
			t.Fatalf("block %v provenance %v", b, frags[0].Rng)
		}
		total += st.Span(b).Len()
	}
	if total != 200 {
		t.Fatalf("tiles cover %d of 200 pixels", total)
	}
}

func TestTakeRemovesAndErrors(t *testing.T) {
	st := newStore(t, 0, 2, 2, 8, 8)
	b := schedule.Block{Tile: 0}
	frags, err := st.Take(b)
	if err != nil || len(frags) != 1 {
		t.Fatalf("Take = %v, %v", frags, err)
	}
	if _, err := st.Take(b); err == nil {
		t.Fatal("second Take succeeded")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d after Take", st.Len())
	}
}

func TestMergeAdjacentComposites(t *testing.T) {
	st := newStore(t, 1, 3, 1, 8, 1)
	b := schedule.Block{Tile: 0}
	// Incoming front fragment from rank 0.
	incoming := []Fragment{{
		Rng:  schedule.RankRange{Lo: 0, Hi: 1},
		Data: make([]byte, 16),
	}}
	over, err := st.Merge(b, incoming)
	if err != nil {
		t.Fatal(err)
	}
	if over != 8 {
		t.Fatalf("over pixels = %d, want 8", over)
	}
	frags := st.Frags(b)
	if len(frags) != 1 || frags[0].Rng != (schedule.RankRange{Lo: 0, Hi: 2}) {
		t.Fatalf("merged provenance %v", frags[0].Rng)
	}
}

func TestMergeNonAdjacentBuffers(t *testing.T) {
	st := newStore(t, 0, 4, 1, 8, 1)
	b := schedule.Block{Tile: 0}
	incoming := []Fragment{{
		Rng:  schedule.RankRange{Lo: 2, Hi: 3}, // gap at rank 1
		Data: make([]byte, 16),
	}}
	over, err := st.Merge(b, incoming)
	if err != nil {
		t.Fatal(err)
	}
	if over != 0 {
		t.Fatalf("over pixels = %d for buffered merge", over)
	}
	if len(st.Frags(b)) != 2 {
		t.Fatalf("fragments = %d, want 2 buffered", len(st.Frags(b)))
	}
	// Closing the gap composites both joins.
	over, err = st.Merge(b, []Fragment{{
		Rng:  schedule.RankRange{Lo: 1, Hi: 2},
		Data: make([]byte, 16),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if over != 16 {
		t.Fatalf("over pixels = %d closing the gap, want 16", over)
	}
	if len(st.Frags(b)) != 1 {
		t.Fatal("gap not closed")
	}
}

func TestMergeOverlapRejected(t *testing.T) {
	st := newStore(t, 1, 3, 1, 4, 1)
	b := schedule.Block{Tile: 0}
	_, err := st.Merge(b, []Fragment{{
		Rng:  schedule.RankRange{Lo: 1, Hi: 2}, // duplicates local layer
		Data: make([]byte, 8),
	}})
	if err == nil {
		t.Fatal("overlapping merge accepted")
	}
}

func TestHalveAllSharesBuffers(t *testing.T) {
	st := newStore(t, 0, 2, 1, 8, 1)
	parent := schedule.Block{Tile: 0}
	parentData := st.Frags(parent)[0].Data
	st.HalveAll()
	if st.Len() != 2 {
		t.Fatalf("Len = %d after halve", st.Len())
	}
	c0, c1 := parent.Halves()
	d0 := st.Frags(c0)[0].Data
	d1 := st.Frags(c1)[0].Data
	if len(d0)+len(d1) != len(parentData) {
		t.Fatal("children do not cover parent")
	}
	// Children alias the parent buffer (no copying).
	if &d0[0] != &parentData[0] {
		t.Fatal("first child does not alias parent buffer")
	}
	if &d1[0] != &parentData[len(d0)] {
		t.Fatal("second child does not alias parent tail")
	}
}

func TestCheckComplete(t *testing.T) {
	st := newStore(t, 0, 2, 1, 4, 1)
	if err := st.CheckComplete(2); err == nil {
		t.Fatal("incomplete store accepted")
	}
	if _, err := st.Merge(schedule.Block{Tile: 0}, []Fragment{{
		Rng:  schedule.RankRange{Lo: 1, Hi: 2},
		Data: make([]byte, 8),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckComplete(2); err != nil {
		t.Fatalf("complete store rejected: %v", err)
	}
}

func TestBlocksSortedBySpan(t *testing.T) {
	st := newStore(t, 0, 2, 5, 50, 2)
	prev := -1
	for _, b := range st.Blocks() {
		lo := st.Span(b).Lo
		if lo <= prev {
			t.Fatal("blocks not sorted by span")
		}
		prev = lo
	}
}

// layerEnc encodes rank r's random layer restricted to block b's span.
func layerEnc(t *testing.T, st *Store, b schedule.Block, cdc codec.Codec, r, w, h int) []byte {
	t.Helper()
	img := raster.RandomImage(rand.New(rand.NewSource(int64(100+r))), w, h, 0.4)
	return cdc.Encode(img.SpanBytes(st.Span(b)))
}

// TestMergeEncodedMatchesMerge proves the fused receive path is
// byte-identical to decode-everything-then-Merge: two identical stores
// receive the same encoded fragments in the same batched order — one via
// DecodeInto+Merge, one via MergeEncoded — and must agree on every over
// count and every held byte after every batch. The batch order exercises
// the isolated-insert, left-adjacent, right-adjacent and gap-bridging
// cases; BSpan exercises the non-OverDecoder fallback.
func TestMergeEncodedMatchesMerge(t *testing.T) {
	const p, w, h = 6, 16, 3
	codecs := []codec.Codec{codec.Raw{}, codec.RLE{}, codec.TRLE{}, codec.BSpan{}}
	// Rank 2 holds [2,3); the batches hit: isolated insert (4), isolated
	// insert plus bridge into the resident pair (0, 3), left-adjacent
	// extension (5), and a final both-sides bridge (1).
	batches := [][]int{{4}, {0, 3}, {5}, {1}}
	for _, cdc := range codecs {
		t.Run(cdc.Name(), func(t *testing.T) {
			ref := newStore(t, 2, p, 1, w, h)
			fus := newStore(t, 2, p, 1, w, h)
			b := schedule.Block{Tile: 0}
			npix := ref.Span(b).Len()
			for _, batch := range batches {
				var decoded []Fragment
				var encoded []EncodedFragment
				for _, r := range batch {
					enc := layerEnc(t, ref, b, cdc, r, w, h)
					rng := schedule.RankRange{Lo: r, Hi: r + 1}
					// DecodeInto, not Decode: Raw's legacy Decode aliases enc,
					// and the reference store composites in place — the fused
					// store must see pristine streams.
					dec, err := cdc.DecodeInto(nil, enc, npix)
					if err != nil {
						t.Fatal(err)
					}
					decoded = append(decoded, Fragment{Rng: rng, Data: dec})
					encoded = append(encoded, EncodedFragment{Rng: rng, Enc: enc})
				}
				overRef, err := ref.Merge(b, decoded)
				if err != nil {
					t.Fatal(err)
				}
				overFus, err := fus.MergeEncoded(b, encoded, cdc)
				if err != nil {
					t.Fatal(err)
				}
				if overRef != overFus {
					t.Fatalf("batch %v: over pixels %d (fused) != %d (reference)", batch, overFus, overRef)
				}
				fr, ff := ref.Frags(b), fus.Frags(b)
				if len(fr) != len(ff) {
					t.Fatalf("batch %v: %d fragments (fused) != %d (reference)", batch, len(ff), len(fr))
				}
				for i := range fr {
					if fr[i].Rng != ff[i].Rng {
						t.Fatalf("batch %v: fragment %d range %v != %v", batch, i, ff[i].Rng, fr[i].Rng)
					}
					if !bytes.Equal(fr[i].Data, ff[i].Data) {
						t.Fatalf("batch %v: fragment %d %v pixels diverge", batch, i, fr[i].Rng)
					}
				}
			}
			if err := fus.CheckComplete(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMergeEncodedCorruptTransactional proves a corrupt payload anywhere in
// a batch leaves the store byte-for-byte untouched — the property the
// compositor's compose-partial policy relies on to drop mangled messages
// like lost ones.
func TestMergeEncodedCorruptTransactional(t *testing.T) {
	const p, w, h = 4, 12, 2
	for _, cdc := range []codec.Codec{codec.Raw{}, codec.RLE{}, codec.TRLE{}} {
		t.Run(cdc.Name(), func(t *testing.T) {
			st := newStore(t, 1, p, 1, w, h)
			b := schedule.Block{Tile: 0}
			valid := layerEnc(t, st, b, cdc, 0, w, h)
			corrupt := layerEnc(t, st, b, cdc, 2, w, h)
			corrupt = corrupt[:len(corrupt)-1]
			before := append([]byte(nil), st.Frags(b)[0].Data...)
			_, err := st.MergeEncoded(b, []EncodedFragment{
				{Rng: schedule.RankRange{Lo: 0, Hi: 1}, Enc: valid},
				{Rng: schedule.RankRange{Lo: 2, Hi: 3}, Enc: corrupt},
			}, cdc)
			if !errors.Is(err, codec.ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
			frags := st.Frags(b)
			if len(frags) != 1 || frags[0].Rng != (schedule.RankRange{Lo: 1, Hi: 2}) {
				t.Fatalf("store mutated by corrupt batch: %v", ranges(frags))
			}
			if !bytes.Equal(frags[0].Data, before) {
				t.Fatal("resident pixels mutated by corrupt batch")
			}
		})
	}
}

// TestMergeEncodedOverlapRejected mirrors TestMergeOverlapRejected on the
// fused path.
func TestMergeEncodedOverlapRejected(t *testing.T) {
	st := newStore(t, 1, 3, 1, 4, 1)
	b := schedule.Block{Tile: 0}
	enc := codec.RLE{}.Encode(make([]byte, 8))
	_, err := st.MergeEncoded(b, []EncodedFragment{
		{Rng: schedule.RankRange{Lo: 1, Hi: 2}, Enc: enc}, // duplicates local layer
	}, codec.RLE{})
	if err == nil {
		t.Fatal("overlapping fused merge accepted")
	}
}
