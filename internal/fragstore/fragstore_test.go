package fragstore

import (
	"math/rand"
	"testing"

	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
)

func newStore(t *testing.T, rank, p, tiles, w, h int) *Store {
	t.Helper()
	sched, err := schedule.RT(p, tiles)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(rank) + 1))
	return New(rank, sched, raster.RandomImage(rng, w, h, 0.3))
}

func TestNewStagesTiles(t *testing.T) {
	st := newStore(t, 1, 4, 3, 20, 10)
	if st.Rank() != 1 {
		t.Fatalf("rank = %d", st.Rank())
	}
	if st.Len() != 3 {
		t.Fatalf("holds %d blocks, want 3", st.Len())
	}
	total := 0
	for _, b := range st.Blocks() {
		frags := st.Frags(b)
		if len(frags) != 1 {
			t.Fatalf("block %v has %d fragments", b, len(frags))
		}
		if frags[0].Rng != (schedule.RankRange{Lo: 1, Hi: 2}) {
			t.Fatalf("block %v provenance %v", b, frags[0].Rng)
		}
		total += st.Span(b).Len()
	}
	if total != 200 {
		t.Fatalf("tiles cover %d of 200 pixels", total)
	}
}

func TestTakeRemovesAndErrors(t *testing.T) {
	st := newStore(t, 0, 2, 2, 8, 8)
	b := schedule.Block{Tile: 0}
	frags, err := st.Take(b)
	if err != nil || len(frags) != 1 {
		t.Fatalf("Take = %v, %v", frags, err)
	}
	if _, err := st.Take(b); err == nil {
		t.Fatal("second Take succeeded")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d after Take", st.Len())
	}
}

func TestMergeAdjacentComposites(t *testing.T) {
	st := newStore(t, 1, 3, 1, 8, 1)
	b := schedule.Block{Tile: 0}
	// Incoming front fragment from rank 0.
	incoming := []Fragment{{
		Rng:  schedule.RankRange{Lo: 0, Hi: 1},
		Data: make([]byte, 16),
	}}
	over, err := st.Merge(b, incoming)
	if err != nil {
		t.Fatal(err)
	}
	if over != 8 {
		t.Fatalf("over pixels = %d, want 8", over)
	}
	frags := st.Frags(b)
	if len(frags) != 1 || frags[0].Rng != (schedule.RankRange{Lo: 0, Hi: 2}) {
		t.Fatalf("merged provenance %v", frags[0].Rng)
	}
}

func TestMergeNonAdjacentBuffers(t *testing.T) {
	st := newStore(t, 0, 4, 1, 8, 1)
	b := schedule.Block{Tile: 0}
	incoming := []Fragment{{
		Rng:  schedule.RankRange{Lo: 2, Hi: 3}, // gap at rank 1
		Data: make([]byte, 16),
	}}
	over, err := st.Merge(b, incoming)
	if err != nil {
		t.Fatal(err)
	}
	if over != 0 {
		t.Fatalf("over pixels = %d for buffered merge", over)
	}
	if len(st.Frags(b)) != 2 {
		t.Fatalf("fragments = %d, want 2 buffered", len(st.Frags(b)))
	}
	// Closing the gap composites both joins.
	over, err = st.Merge(b, []Fragment{{
		Rng:  schedule.RankRange{Lo: 1, Hi: 2},
		Data: make([]byte, 16),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if over != 16 {
		t.Fatalf("over pixels = %d closing the gap, want 16", over)
	}
	if len(st.Frags(b)) != 1 {
		t.Fatal("gap not closed")
	}
}

func TestMergeOverlapRejected(t *testing.T) {
	st := newStore(t, 1, 3, 1, 4, 1)
	b := schedule.Block{Tile: 0}
	_, err := st.Merge(b, []Fragment{{
		Rng:  schedule.RankRange{Lo: 1, Hi: 2}, // duplicates local layer
		Data: make([]byte, 8),
	}})
	if err == nil {
		t.Fatal("overlapping merge accepted")
	}
}

func TestHalveAllSharesBuffers(t *testing.T) {
	st := newStore(t, 0, 2, 1, 8, 1)
	parent := schedule.Block{Tile: 0}
	parentData := st.Frags(parent)[0].Data
	st.HalveAll()
	if st.Len() != 2 {
		t.Fatalf("Len = %d after halve", st.Len())
	}
	c0, c1 := parent.Halves()
	d0 := st.Frags(c0)[0].Data
	d1 := st.Frags(c1)[0].Data
	if len(d0)+len(d1) != len(parentData) {
		t.Fatal("children do not cover parent")
	}
	// Children alias the parent buffer (no copying).
	if &d0[0] != &parentData[0] {
		t.Fatal("first child does not alias parent buffer")
	}
	if &d1[0] != &parentData[len(d0)] {
		t.Fatal("second child does not alias parent tail")
	}
}

func TestCheckComplete(t *testing.T) {
	st := newStore(t, 0, 2, 1, 4, 1)
	if err := st.CheckComplete(2); err == nil {
		t.Fatal("incomplete store accepted")
	}
	if _, err := st.Merge(schedule.Block{Tile: 0}, []Fragment{{
		Rng:  schedule.RankRange{Lo: 1, Hi: 2},
		Data: make([]byte, 8),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckComplete(2); err != nil {
		t.Fatalf("complete store rejected: %v", err)
	}
}

func TestBlocksSortedBySpan(t *testing.T) {
	st := newStore(t, 0, 2, 5, 50, 2)
	prev := -1
	for _, b := range st.Blocks() {
		lo := st.Span(b).Lo
		if lo <= prev {
			t.Fatal("blocks not sorted by span")
		}
		prev = lo
	}
}
