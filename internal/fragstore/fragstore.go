// Package fragstore holds the per-rank block state shared by the parallel
// compositor and the virtual-time simulator: for every block, a list of
// depth-contiguous fragments, each a partial composite of an interval of
// ranks. Merging adjacent fragments applies the "over" operator in depth
// order; halving splits every block into its two children in place.
package fragstore

import (
	"fmt"
	"sort"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/codec"
	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
)

// Fragment is a depth-contiguous partial composite of one block: the layers
// of ranks [Rng.Lo, Rng.Hi) composited in order.
type Fragment struct {
	Rng  schedule.RankRange
	Data []byte
}

// Store is one rank's block state.
type Store struct {
	rank  int
	tiles []raster.Span
	held  map[schedule.Block][]Fragment
}

// New stages a rank's partial image into the initial tile blocks of a
// schedule and returns the store.
func New(rank int, sched *schedule.Schedule, local *raster.Image) *Store {
	st := &Store{
		rank:  rank,
		tiles: sched.TileSpans(local.NPixels()),
		held:  map[schedule.Block][]Fragment{},
	}
	for t := 0; t < sched.Tiles; t++ {
		b := schedule.Block{Tile: t}
		st.held[b] = []Fragment{{
			Rng:  schedule.RankRange{Lo: rank, Hi: rank + 1},
			Data: copySpan(local, b.Span(st.tiles)),
		}}
	}
	return st
}

// NewTile stages only one tile's initial block of a rank's partial image —
// the staging primitive of the pipelined executor, which runs every tile
// through the schedule as an independent state machine with its own store.
// The store still knows all tile spans, so Span resolves any block, but it
// holds (and halves, merges, gathers) blocks of the given tile only.
func NewTile(rank int, sched *schedule.Schedule, local *raster.Image, tile int) *Store {
	return NewTileShared(rank, sched.TileSpans(local.NPixels()), local, tile)
}

// NewTileShared is NewTile with the tile spans precomputed by the caller.
// The executor builds one span table per run and hands it to every tile's
// store (stores only ever read it), instead of recomputing and reallocating
// it once per tile.
func NewTileShared(rank int, tiles []raster.Span, local *raster.Image, tile int) *Store {
	st := &Store{
		rank:  rank,
		tiles: tiles,
		held:  map[schedule.Block][]Fragment{},
	}
	b := schedule.Block{Tile: tile}
	st.held[b] = []Fragment{{
		Rng:  schedule.RankRange{Lo: rank, Hi: rank + 1},
		Data: copySpan(local, b.Span(st.tiles)),
	}}
	return st
}

// copySpan stages a span of an image into a pooled buffer, so staging
// participates in the same recycle cycle as every other store buffer.
func copySpan(img *raster.Image, s raster.Span) []byte {
	data := bufpool.Get(s.Len() * raster.BytesPerPixel)
	copy(data, img.SpanBytes(s))
	return data
}

// InsertLayer stages an extra rank's sub-image into every tile block —
// how a buddy contributes a dead rank's replicated sub-image during a
// recovery epoch. Fragments adjacent in depth to existing holdings are
// composited immediately, so a buddy pair's two layers coalesce at staging
// time. It returns the pixels passed through the over kernel.
func (st *Store) InsertLayer(layer int, img *raster.Image) (int64, error) {
	var overPix int64
	for t := range st.tiles {
		b := schedule.Block{Tile: t}
		frags := append(st.held[b], Fragment{
			Rng:  schedule.RankRange{Lo: layer, Hi: layer + 1},
			Data: copySpan(img, b.Span(st.tiles)),
		})
		merged, overs, err := MergeFragments(frags)
		if err != nil {
			return overPix, fmt.Errorf("fragstore: staging layer %d on rank %d: %w", layer, st.rank, err)
		}
		st.held[b] = merged
		overPix += overs
	}
	return overPix, nil
}

// CoalesceAll composites every held block's adjacent fragments — the
// no-transfer merges of a repaired schedule leave depth-adjacent fragments
// co-resident that a normal run would have composited on receipt. It
// returns the pixels passed through the over kernel.
func (st *Store) CoalesceAll() (int64, error) {
	var overPix int64
	for b, frags := range st.held {
		if len(frags) <= 1 {
			continue
		}
		merged, overs, err := MergeFragments(frags)
		if err != nil {
			return overPix, fmt.Errorf("fragstore: coalescing block %v on rank %d: %w", b, st.rank, err)
		}
		st.held[b] = merged
		overPix += overs
	}
	return overPix, nil
}

// Rank returns the owning rank.
func (st *Store) Rank() int { return st.rank }

// Tiles returns the tile spans of the image being composited.
func (st *Store) Tiles() []raster.Span { return st.tiles }

// Span resolves a block to its pixel span.
func (st *Store) Span(b schedule.Block) raster.Span { return b.Span(st.tiles) }

// Len reports how many blocks the store currently holds.
func (st *Store) Len() int { return len(st.held) }

// Frags returns the fragment list of a block (nil if not held).
func (st *Store) Frags(b schedule.Block) []Fragment { return st.held[b] }

// Take removes and returns a block's fragments; it errors if the block is
// not held.
func (st *Store) Take(b schedule.Block) ([]Fragment, error) {
	frags, ok := st.held[b]
	if !ok || len(frags) == 0 {
		return nil, fmt.Errorf("fragstore: rank %d does not hold block %v", st.rank, b)
	}
	delete(st.held, b)
	return frags, nil
}

// Merge adds incoming fragments to a block and composites adjacent depth
// ranges. It returns the number of pixels passed through the over kernel.
func (st *Store) Merge(b schedule.Block, incoming []Fragment) (int64, error) {
	merged, overPix, err := MergeFragments(append(st.held[b], incoming...))
	if err != nil {
		return 0, fmt.Errorf("fragstore: merging block %v on rank %d: %w", b, st.rank, err)
	}
	st.held[b] = merged
	return overPix, nil
}

// EncodedFragment is a depth range plus its still-encoded pixel block — a
// view into a received block message that MergeEncoded consumes without
// decoding into a scratch buffer first.
type EncodedFragment struct {
	Rng schedule.RankRange
	Enc []byte
}

// MergeEncoded merges still-encoded fragments into a block. When the codec
// supports the fused receive path (codec.OverDecoder), a fragment that is
// depth-adjacent to resident holdings is decoded and composited in one pass
// straight into the resident buffer — the decoded pixels never exist as a
// block; only depth-isolated fragments are materialized into pooled
// buffers. Codecs without the fused path decode every fragment and defer
// to Merge.
//
// The composite is byte-identical to decode-everything-then-Merge: incoming
// fragments are processed in ascending depth order with immediate
// coalescing on both sides, which reproduces MergeFragments' left-to-right
// fold exactly (the over operator is only exactly associative for binary
// alphas, so the fold order is part of the repo-wide byte-identity
// contract).
//
// Every stream is validated up front (CheckStream applies all of
// DecodeInto's checks), so a corrupt payload returns an error wrapping
// codec.ErrCorrupt with the store untouched — a degradation policy can
// drop it like a lost message. The incoming Enc views are never retained;
// the caller may recycle the underlying message buffer on return.
func (st *Store) MergeEncoded(b schedule.Block, incoming []EncodedFragment, cdc codec.Codec) (int64, error) {
	npix := st.Span(b).Len()
	od, fused := cdc.(codec.OverDecoder)
	if fused {
		for _, ef := range incoming {
			if err := od.CheckStream(ef.Enc, npix); err != nil {
				return 0, fmt.Errorf("fragstore: merging block %v on rank %d: %w", b, st.rank, err)
			}
		}
	}
	// Ascending depth order; incoming lists are tiny (usually one entry).
	for i := 1; i < len(incoming); i++ {
		for j := i; j > 0 && incoming[j].Rng.Lo < incoming[j-1].Rng.Lo; j-- {
			incoming[j], incoming[j-1] = incoming[j-1], incoming[j]
		}
	}
	if !fused {
		var frags []Fragment
		for _, ef := range incoming {
			data, err := cdc.DecodeInto(bufpool.Get(npix*raster.BytesPerPixel), ef.Enc, npix)
			if err != nil {
				ReleaseAll(frags)
				return 0, fmt.Errorf("fragstore: merging block %v on rank %d: %w", b, st.rank, err)
			}
			frags = append(frags, Fragment{Rng: ef.Rng, Data: data})
		}
		return st.Merge(b, frags)
	}

	var overPix int64
	held := st.held[b]
	for _, ef := range incoming {
		// held stays sorted, disjoint and coalesced; find the insertion
		// point and the neighbors the new fragment touches.
		idx := 0
		for idx < len(held) && held[idx].Rng.Lo < ef.Rng.Lo {
			idx++
		}
		if idx > 0 && held[idx-1].Rng.Hi > ef.Rng.Lo {
			st.held[b] = held
			return overPix, fmt.Errorf("fragstore: merging block %v on rank %d: fragments %v and %v overlap",
				b, st.rank, held[idx-1].Rng, ef.Rng)
		}
		if idx < len(held) && held[idx].Rng.Lo < ef.Rng.Hi {
			st.held[b] = held
			return overPix, fmt.Errorf("fragstore: merging block %v on rank %d: fragments %v and %v overlap",
				b, st.rank, ef.Rng, held[idx].Rng)
		}
		switch {
		case idx > 0 && held[idx-1].Rng.Hi == ef.Rng.Lo:
			// Resident neighbor in front: resident over decoded, fused into
			// the resident buffer.
			n, err := od.DecodeOver(held[idx-1].Data, ef.Enc, npix, false)
			overPix += int64(n)
			if err != nil {
				st.held[b] = held
				return overPix, fmt.Errorf("fragstore: merging block %v on rank %d: %w", b, st.rank, err)
			}
			held[idx-1].Rng.Hi = ef.Rng.Hi
			// The extension may bridge to the next resident fragment;
			// coalesce exactly as MergeFragments would (front over back
			// into the back's buffer, recycling the front's).
			if idx < len(held) && held[idx].Rng.Lo == held[idx-1].Rng.Hi {
				overPix += int64(compose.OverU8(held[idx].Data, held[idx-1].Data, held[idx].Data))
				bufpool.Put(held[idx-1].Data)
				held[idx].Rng.Lo = held[idx-1].Rng.Lo
				held = append(held[:idx-1], held[idx:]...)
			}
		case idx < len(held) && held[idx].Rng.Lo == ef.Rng.Hi:
			// Resident neighbor behind: decoded over resident, fused into
			// the resident buffer.
			n, err := od.DecodeOver(held[idx].Data, ef.Enc, npix, true)
			overPix += int64(n)
			if err != nil {
				st.held[b] = held
				return overPix, fmt.Errorf("fragstore: merging block %v on rank %d: %w", b, st.rank, err)
			}
			held[idx].Rng.Lo = ef.Rng.Lo
		default:
			// Depth-isolated: materialize into a pooled buffer.
			data, err := od.DecodeInto(bufpool.Get(npix*raster.BytesPerPixel), ef.Enc, npix)
			if err != nil {
				st.held[b] = held
				return overPix, fmt.Errorf("fragstore: merging block %v on rank %d: %w", b, st.rank, err)
			}
			held = append(held, Fragment{})
			copy(held[idx+1:], held[idx:])
			held[idx] = Fragment{Rng: ef.Rng, Data: data}
		}
	}
	st.held[b] = held
	return overPix, nil
}

// HalveAll splits every held block into its two children. The children
// alias disjoint halves of the parent buffers, so no pixel data is copied.
// The front half is capacity-capped (three-index sliced) so each child's
// capacity witnesses exactly its exclusive region: either half can later be
// released to the buffer pool without the pool ever handing out bytes the
// sibling still owns.
func (st *Store) HalveAll() {
	next := make(map[schedule.Block][]Fragment, 2*len(st.held))
	for b, frags := range st.held {
		c0, c1 := b.Halves()
		cut := c0.Span(st.tiles).Len() * raster.BytesPerPixel
		f0 := make([]Fragment, len(frags))
		f1 := make([]Fragment, len(frags))
		for i, f := range frags {
			f0[i] = Fragment{Rng: f.Rng, Data: f.Data[:cut:cut]}
			f1[i] = Fragment{Rng: f.Rng, Data: f.Data[cut:]}
		}
		next[c0], next[c1] = f0, f1
	}
	st.held = next
}

// Blocks returns the held blocks sorted by their pixel span position.
func (st *Store) Blocks() []schedule.Block {
	blocks := make([]schedule.Block, 0, len(st.held))
	for b := range st.held {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool {
		return blocks[i].Span(st.tiles).Lo < blocks[j].Span(st.tiles).Lo
	})
	return blocks
}

// FillGaps completes every held block to the full rank range [0, p) by
// splicing in blank fragments for the rank intervals that never arrived —
// the compose-partial degradation path. Blank pixels are the identity of
// the over operator, so the result is the exact composite of the
// contributions that did arrive. It returns the number of missing
// layer-pixels (pixels times absent ranks), zero when nothing was missing.
func (st *Store) FillGaps(p int) (missingLayerPix int64, err error) {
	full := schedule.RankRange{Lo: 0, Hi: p}
	for b, frags := range st.held {
		if len(frags) == 1 && frags[0].Rng == full {
			continue
		}
		span := b.Span(st.tiles)
		nbytes := span.Len() * raster.BytesPerPixel
		sort.Slice(frags, func(i, j int) bool { return frags[i].Rng.Lo < frags[j].Rng.Lo })
		filled := make([]Fragment, 0, 2*len(frags)+1)
		next := 0
		for _, f := range frags {
			if f.Rng.Lo > next {
				gap := schedule.RankRange{Lo: next, Hi: f.Rng.Lo}
				missingLayerPix += int64(span.Len()) * int64(gap.Len())
				filled = append(filled, Fragment{Rng: gap, Data: make([]byte, nbytes)})
			}
			filled = append(filled, f)
			next = f.Rng.Hi
		}
		if next < p {
			gap := schedule.RankRange{Lo: next, Hi: p}
			missingLayerPix += int64(span.Len()) * int64(gap.Len())
			filled = append(filled, Fragment{Rng: gap, Data: make([]byte, nbytes)})
		}
		merged, _, err := MergeFragments(filled)
		if err != nil {
			return missingLayerPix, fmt.Errorf("fragstore: filling gaps of block %v on rank %d: %w", b, st.rank, err)
		}
		st.held[b] = merged
	}
	return missingLayerPix, nil
}

// CheckComplete verifies every held block is fully composited over all p
// ranks.
func (st *Store) CheckComplete(p int) error {
	full := schedule.RankRange{Lo: 0, Hi: p}
	for b, frags := range st.held {
		if len(frags) != 1 || frags[0].Rng != full {
			return fmt.Errorf("fragstore: rank %d finished with block %v composited over %v",
				st.rank, b, ranges(frags))
		}
	}
	return nil
}

// MergeFragments sorts fragments by depth range and composites adjacent
// ones (front over back), returning the coalesced list and the number of
// pixels composited. Overlapping ranges are an error: some layer would be
// composited twice.
//
// Store buffers are exclusively owned (staging copies, decode copies,
// halving partitions capacities), so the buffer a composite drops is
// returned to the pool here — the recycling half of the steady-state cycle.
func MergeFragments(frags []Fragment) ([]Fragment, int64, error) {
	// Fragment lists are a handful of entries; insertion sort keeps the hot
	// path free of sort.Slice's closure and reflection allocations.
	for i := 1; i < len(frags); i++ {
		for j := i; j > 0 && frags[j].Rng.Lo < frags[j-1].Rng.Lo; j-- {
			frags[j], frags[j-1] = frags[j-1], frags[j]
		}
	}
	var overPix int64
	out := frags[:1]
	for _, f := range frags[1:] {
		last := &out[len(out)-1]
		switch {
		case f.Rng.Lo < last.Rng.Hi:
			return nil, 0, fmt.Errorf("fragments %v and %v overlap", last.Rng, f.Rng)
		case f.Rng.Lo == last.Rng.Hi:
			// last is in front: composite last over f, adopting f's buffer
			// so sibling halves sharing last's parent buffer stay intact.
			overPix += int64(compose.OverU8(f.Data, last.Data, f.Data))
			bufpool.Put(last.Data)
			last.Rng.Hi = f.Rng.Hi
			last.Data = f.Data
		default:
			out = append(out, f)
		}
	}
	return out, overPix, nil
}

// Release returns every held fragment buffer to the pool and empties the
// store. Call only once the composited data has been fully consumed (e.g.
// gathered and copied into the final image).
func (st *Store) Release() {
	for _, frags := range st.held {
		ReleaseAll(frags)
	}
	clear(st.held)
}

// ReleaseAll returns every fragment's buffer to the pool and clears the
// Data pointers. Call only when the fragment data has been fully consumed
// (e.g. encoded onto the wire) and no other reference remains.
func ReleaseAll(frags []Fragment) {
	for i := range frags {
		bufpool.Put(frags[i].Data)
		frags[i].Data = nil
	}
}

func ranges(frags []Fragment) []schedule.RankRange {
	out := make([]schedule.RankRange, len(frags))
	for i, f := range frags {
		out[i] = f.Rng
	}
	return out
}
