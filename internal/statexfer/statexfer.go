// Package statexfer moves per-rank state between ranks with cryptographic
// integrity: a snapshot (a named-section blob — sub-image replica, ward
// replicas, schedule position) is split into fixed-size chunks, every chunk
// is hashed into a SHA-256 merkle tree, and the tree root travels inside the
// membership agreement that admits a joiner — so the joiner verifies every
// fetched chunk against a commitment *certified by the agreement round*, and
// a corrupt or stale transfer is rejected with a typed error instead of
// silently restoring garbage.
//
// The same chunk/merkle machinery backs the replica scrubber (scrub.go):
// a holder re-hashes its buddy replicas against the roots recorded at the
// exchange and repairs silent corruption from the live copy before the
// replica is ever needed.
package statexfer

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultChunkSize is the snapshot chunk size when the caller passes zero:
// small enough that a damaged transfer is rejected after one chunk, large
// enough that a sub-image snapshot is a handful of messages.
const DefaultChunkSize = 64 << 10

// Typed rejection errors. Everything a joiner can refuse is one of these,
// so callers distinguish "retry with another source" from "local bug".
var (
	// ErrManifest flags a manifest that does not decode or is internally
	// inconsistent (zero chunk size, impossible lengths).
	ErrManifest = errors.New("statexfer: corrupt or invalid manifest")
	// ErrFrame flags a chunk frame that does not parse.
	ErrFrame = errors.New("statexfer: corrupt chunk frame")
	// ErrBadProof flags a merkle proof with the wrong shape for its index.
	ErrBadProof = errors.New("statexfer: merkle proof does not verify")
	// ErrChunkMismatch flags a chunk whose recomputed root differs from the
	// certified commitment — the transfer carried corrupt or substituted data.
	ErrChunkMismatch = errors.New("statexfer: chunk does not match certified root")
	// ErrStale flags a transfer certified for a different joiner or epoch.
	ErrStale = errors.New("statexfer: transfer certified for a different joiner or epoch")
	// ErrIncomplete flags an assembly read before every chunk arrived.
	ErrIncomplete = errors.New("statexfer: snapshot incomplete")
)

// Section is one named piece of rank state inside a snapshot blob.
type Section struct {
	Name string
	Data []byte
}

// EncodeSections serialises sections as uvarint count, then per section
// uvarint(len(name)), name, uvarint(len(data)), data.
func EncodeSections(secs []Section) []byte {
	size := binary.MaxVarintLen64
	for _, s := range secs {
		size += 2*binary.MaxVarintLen64 + len(s.Name) + len(s.Data)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(secs)))
	for _, s := range secs {
		buf = binary.AppendUvarint(buf, uint64(len(s.Name)))
		buf = append(buf, s.Name...)
		buf = binary.AppendUvarint(buf, uint64(len(s.Data)))
		buf = append(buf, s.Data...)
	}
	return buf
}

// DecodeSections inverts EncodeSections. Section data aliases blob.
func DecodeSections(blob []byte) ([]Section, error) {
	n, off := binary.Uvarint(blob)
	if off <= 0 {
		return nil, fmt.Errorf("%w: section count", ErrFrame)
	}
	rest := blob[off:]
	var out []Section
	for i := uint64(0); i < n; i++ {
		nameLen, k := binary.Uvarint(rest)
		if k <= 0 || uint64(len(rest)-k) < nameLen {
			return nil, fmt.Errorf("%w: section name", ErrFrame)
		}
		name := string(rest[k : k+int(nameLen)])
		rest = rest[k+int(nameLen):]
		dataLen, k := binary.Uvarint(rest)
		if k <= 0 || uint64(len(rest)-k) < dataLen {
			return nil, fmt.Errorf("%w: section data", ErrFrame)
		}
		out = append(out, Section{Name: name, Data: rest[k : k+int(dataLen) : k+int(dataLen)]})
		rest = rest[k+int(dataLen):]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after sections", ErrFrame, len(rest))
	}
	return out, nil
}

// Manifest is the commitment a transfer is verified against: who it restores,
// who serves it, which join epoch certified it, and the merkle root over its
// chunks. It is small enough to ride inside the join agreement payload.
type Manifest struct {
	Joiner    int // rank being restored
	Source    int // rank serving the chunks
	Epoch     int // join epoch the commitment was certified for
	ChunkSize int
	TotalLen  int
	Root      [32]byte
}

// NumChunks derives the chunk count from the committed lengths.
func (m Manifest) NumChunks() int {
	if m.ChunkSize <= 0 {
		return 0
	}
	if m.TotalLen == 0 {
		return 1 // an empty snapshot still has one (empty) chunk
	}
	return (m.TotalLen + m.ChunkSize - 1) / m.ChunkSize
}

// Encode serialises the manifest: five uvarints then the raw 32-byte root.
func (m Manifest) Encode() []byte {
	buf := make([]byte, 0, 5*binary.MaxVarintLen64+32)
	buf = binary.AppendUvarint(buf, uint64(m.Joiner))
	buf = binary.AppendUvarint(buf, uint64(m.Source))
	buf = binary.AppendUvarint(buf, uint64(m.Epoch))
	buf = binary.AppendUvarint(buf, uint64(m.ChunkSize))
	buf = binary.AppendUvarint(buf, uint64(m.TotalLen))
	return append(buf, m.Root[:]...)
}

// maxSnapshotLen bounds the committed snapshot length a decoded manifest may
// claim, so a corrupt manifest cannot make an assembler allocate absurdly.
const maxSnapshotLen = 1 << 32

// DecodeManifest inverts Encode; every failure wraps ErrManifest.
func DecodeManifest(payload []byte) (Manifest, error) {
	var m Manifest
	rest := payload
	for _, dst := range []*int{&m.Joiner, &m.Source, &m.Epoch, &m.ChunkSize, &m.TotalLen} {
		v, k := binary.Uvarint(rest)
		if k <= 0 {
			return Manifest{}, fmt.Errorf("%w: truncated header", ErrManifest)
		}
		if v > maxSnapshotLen {
			return Manifest{}, fmt.Errorf("%w: field overflow", ErrManifest)
		}
		*dst = int(v)
		rest = rest[k:]
	}
	if len(rest) != 32 {
		return Manifest{}, fmt.Errorf("%w: root is %d bytes, want 32", ErrManifest, len(rest))
	}
	copy(m.Root[:], rest)
	if m.ChunkSize <= 0 || m.TotalLen < 0 {
		return Manifest{}, fmt.Errorf("%w: chunk size %d, total %d", ErrManifest, m.ChunkSize, m.TotalLen)
	}
	return m, nil
}

// Snapshot is a built, chunked, merkle-hashed state blob on the serving side.
type Snapshot struct {
	Manifest Manifest
	blob     []byte
	levels   [][][32]byte // levels[0] = leaf hashes, last level has one node
}

// Build chunks the encoded sections and hashes the merkle tree. chunkSize <=
// 0 selects DefaultChunkSize.
func Build(joiner, source, epoch int, secs []Section, chunkSize int) (*Snapshot, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	blob := EncodeSections(secs)
	if len(blob) > maxSnapshotLen {
		return nil, fmt.Errorf("statexfer: snapshot of %d bytes exceeds the %d-byte bound", len(blob), maxSnapshotLen)
	}
	s := &Snapshot{
		Manifest: Manifest{Joiner: joiner, Source: source, Epoch: epoch, ChunkSize: chunkSize, TotalLen: len(blob)},
		blob:     blob,
	}
	n := s.Manifest.NumChunks()
	leaves := make([][32]byte, n)
	for i := 0; i < n; i++ {
		leaves[i] = leafHash(i, s.chunkData(i))
	}
	s.levels = buildLevels(leaves)
	s.Manifest.Root = s.levels[len(s.levels)-1][0]
	return s, nil
}

// NumChunks returns the chunk count of the built snapshot.
func (s *Snapshot) NumChunks() int { return s.Manifest.NumChunks() }

func (s *Snapshot) chunkData(i int) []byte {
	lo := i * s.Manifest.ChunkSize
	hi := lo + s.Manifest.ChunkSize
	if hi > len(s.blob) {
		hi = len(s.blob)
	}
	return s.blob[lo:hi]
}

// ChunkFrame serialises chunk i for the wire: uvarint index, uvarint data
// length, data, uvarint proof length, then the proof hashes bottom-up.
func (s *Snapshot) ChunkFrame(i int) []byte {
	data := s.chunkData(i)
	proof := s.proof(i)
	buf := make([]byte, 0, 3*binary.MaxVarintLen64+len(data)+32*len(proof))
	buf = binary.AppendUvarint(buf, uint64(i))
	buf = binary.AppendUvarint(buf, uint64(len(data)))
	buf = append(buf, data...)
	buf = binary.AppendUvarint(buf, uint64(len(proof)))
	for _, h := range proof {
		buf = append(buf, h[:]...)
	}
	return buf
}

// proof collects chunk i's sibling hashes bottom-up. A node promoted past an
// odd level boundary contributes no sibling.
func (s *Snapshot) proof(i int) [][32]byte {
	var out [][32]byte
	idx := i
	for _, level := range s.levels[:len(s.levels)-1] {
		if sib := idx ^ 1; sib < len(level) {
			out = append(out, level[sib])
		}
		idx /= 2
	}
	return out
}

// DecodeChunkFrame inverts ChunkFrame; data aliases payload. Every failure
// wraps ErrFrame.
func DecodeChunkFrame(payload []byte) (index int, data []byte, proof [][32]byte, err error) {
	rest := payload
	iv, k := binary.Uvarint(rest)
	if k <= 0 || iv > maxSnapshotLen {
		return 0, nil, nil, fmt.Errorf("%w: index", ErrFrame)
	}
	rest = rest[k:]
	n, k := binary.Uvarint(rest)
	if k <= 0 || uint64(len(rest)-k) < n {
		return 0, nil, nil, fmt.Errorf("%w: data length", ErrFrame)
	}
	data = rest[k : k+int(n) : k+int(n)]
	rest = rest[k+int(n):]
	np, k := binary.Uvarint(rest)
	if k <= 0 || np > 64 || uint64(len(rest)-k) != np*32 {
		return 0, nil, nil, fmt.Errorf("%w: proof length", ErrFrame)
	}
	rest = rest[k:]
	proof = make([][32]byte, np)
	for i := range proof {
		copy(proof[i][:], rest[i*32:])
	}
	return int(iv), data, proof, nil
}

// VerifyChunk checks one chunk against the certified manifest: the committed
// length for its index, and the merkle path from its leaf hash to the root.
func VerifyChunk(m Manifest, index int, data []byte, proof [][32]byte) error {
	n := m.NumChunks()
	if index < 0 || index >= n {
		return fmt.Errorf("%w: chunk index %d of %d", ErrFrame, index, n)
	}
	want := m.ChunkSize
	if index == n-1 {
		want = m.TotalLen - (n-1)*m.ChunkSize
	}
	if len(data) != want {
		return fmt.Errorf("%w: chunk %d is %d bytes, committed %d", ErrChunkMismatch, index, len(data), want)
	}
	h := leafHash(index, data)
	idx, size, pi := index, n, 0
	for size > 1 {
		if idx == size-1 && size%2 == 1 {
			// Promoted past an odd level: no sibling at this height.
		} else {
			if pi >= len(proof) {
				return fmt.Errorf("%w: proof too short for chunk %d", ErrBadProof, index)
			}
			if idx%2 == 0 {
				h = nodeHash(h, proof[pi])
			} else {
				h = nodeHash(proof[pi], h)
			}
			pi++
		}
		idx /= 2
		size = (size + 1) / 2
	}
	if pi != len(proof) {
		return fmt.Errorf("%w: proof too long for chunk %d", ErrBadProof, index)
	}
	if h != m.Root {
		return fmt.Errorf("%w: chunk %d", ErrChunkMismatch, index)
	}
	return nil
}

// Assembler reassembles a snapshot on the joiner side, verifying every chunk
// against the certified manifest as it lands.
type Assembler struct {
	m        Manifest
	got      []bool
	buf      []byte
	verified int
}

// NewAssembler validates the manifest shape and prepares the buffer.
func NewAssembler(m Manifest) (*Assembler, error) {
	if m.ChunkSize <= 0 || m.TotalLen < 0 || m.TotalLen > maxSnapshotLen {
		return nil, fmt.Errorf("%w: chunk size %d, total %d", ErrManifest, m.ChunkSize, m.TotalLen)
	}
	return &Assembler{m: m, got: make([]bool, m.NumChunks()), buf: make([]byte, m.TotalLen)}, nil
}

// AddFrame decodes, verifies and places one chunk frame. fresh is false for
// a duplicate of an already-verified chunk.
func (a *Assembler) AddFrame(frame []byte) (fresh bool, err error) {
	index, data, proof, err := DecodeChunkFrame(frame)
	if err != nil {
		return false, err
	}
	if err := VerifyChunk(a.m, index, data, proof); err != nil {
		return false, err
	}
	if a.got[index] {
		return false, nil
	}
	a.got[index] = true
	a.verified++
	copy(a.buf[index*a.m.ChunkSize:], data)
	return true, nil
}

// Complete reports whether every chunk has been verified and placed.
func (a *Assembler) Complete() bool { return a.verified == len(a.got) }

// Has reports whether chunk index i has been verified and placed — the
// receive loop's guide for which chunk tags are still outstanding.
func (a *Assembler) Has(i int) bool { return i >= 0 && i < len(a.got) && a.got[i] }

// Verified returns the count of distinct chunks verified so far.
func (a *Assembler) Verified() int { return a.verified }

// Bytes returns the reassembled blob, or ErrIncomplete.
func (a *Assembler) Bytes() ([]byte, error) {
	if !a.Complete() {
		return nil, fmt.Errorf("%w: %d of %d chunks", ErrIncomplete, a.verified, len(a.got))
	}
	return a.buf, nil
}

// Root computes the merkle root over raw data at the given chunk size — the
// scrubber's fingerprint, identical to the root a Build over the same bytes
// would commit.
func Root(data []byte, chunkSize int) [32]byte {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	n := 1
	if len(data) > 0 {
		n = (len(data) + chunkSize - 1) / chunkSize
	}
	leaves := make([][32]byte, n)
	for i := 0; i < n; i++ {
		lo := i * chunkSize
		hi := lo + chunkSize
		if hi > len(data) {
			hi = len(data)
		}
		leaves[i] = leafHash(i, data[lo:hi])
	}
	levels := buildLevels(leaves)
	return levels[len(levels)-1][0]
}

// leafHash domain-separates leaves from interior nodes and binds the chunk
// to its index, so chunk reordering is as detectable as corruption.
func leafHash(index int, data []byte) [32]byte {
	var hdr [9]byte
	binary.BigEndian.PutUint64(hdr[1:], uint64(index))
	h := sha256.New()
	h.Write(hdr[:]) // hdr[0] = 0x00: leaf domain
	h.Write(data)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func nodeHash(l, r [32]byte) [32]byte {
	var buf [65]byte
	buf[0] = 0x01 // interior domain
	copy(buf[1:], l[:])
	copy(buf[33:], r[:])
	return sha256.Sum256(buf[:])
}

// buildLevels folds leaves up to the root, promoting an unpaired last node.
func buildLevels(leaves [][32]byte) [][][32]byte {
	if len(leaves) == 0 {
		leaves = [][32]byte{leafHash(0, nil)}
	}
	levels := [][][32]byte{leaves}
	for cur := leaves; len(cur) > 1; {
		next := make([][32]byte, 0, (len(cur)+1)/2)
		for i := 0; i < len(cur); i += 2 {
			if i+1 < len(cur) {
				next = append(next, nodeHash(cur[i], cur[i+1]))
			} else {
				next = append(next, cur[i])
			}
		}
		levels = append(levels, next)
		cur = next
	}
	return levels
}

// CheckIdentity rejects a manifest certified for a different joiner or epoch
// with ErrStale — the one check that is about freshness, not integrity.
func CheckIdentity(m Manifest, joiner, epoch int) error {
	if m.Joiner != joiner || m.Epoch != epoch {
		return fmt.Errorf("%w: manifest for joiner %d epoch %d, want joiner %d epoch %d",
			ErrStale, m.Joiner, m.Epoch, joiner, epoch)
	}
	return nil
}

// Equal reports whether two manifests commit to the same transfer.
func (m Manifest) Equal(o Manifest) bool {
	return m.Joiner == o.Joiner && m.Source == o.Source && m.Epoch == o.Epoch &&
		m.ChunkSize == o.ChunkSize && m.TotalLen == o.TotalLen && bytes.Equal(m.Root[:], o.Root[:])
}
