package statexfer

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func testSections(rng *rand.Rand, n, size int) []Section {
	secs := make([]Section, n)
	for i := range secs {
		data := make([]byte, size)
		rng.Read(data)
		secs[i] = Section{Name: string(rune('a' + i)), Data: data}
	}
	return secs
}

// TestSnapshotRoundTrip builds snapshots at several chunk sizes, ships every
// chunk frame through the assembler, and asserts the reassembled sections are
// byte-identical — including chunk counts that exercise odd merkle levels.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cs := range []int{16, 100, 1 << 12, DefaultChunkSize} {
		for _, nsec := range []int{0, 1, 3} {
			secs := testSections(rng, nsec, 700)
			snap, err := Build(5, 4, 2, secs, cs)
			if err != nil {
				t.Fatal(err)
			}
			asm, err := NewAssembler(snap.Manifest)
			if err != nil {
				t.Fatal(err)
			}
			// Deliver frames in a shuffled order with one duplicate.
			order := rng.Perm(snap.NumChunks())
			order = append(order, order[0])
			freshCount := 0
			for _, i := range order {
				fresh, err := asm.AddFrame(snap.ChunkFrame(i))
				if err != nil {
					t.Fatalf("cs=%d nsec=%d chunk %d: %v", cs, nsec, i, err)
				}
				if fresh {
					freshCount++
				}
			}
			if freshCount != snap.NumChunks() || asm.Verified() != snap.NumChunks() {
				t.Fatalf("verified %d of %d chunks", asm.Verified(), snap.NumChunks())
			}
			blob, err := asm.Bytes()
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeSections(blob)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(secs) {
				t.Fatalf("decoded %d sections, want %d", len(got), len(secs))
			}
			for i := range secs {
				if got[i].Name != secs[i].Name || !bytes.Equal(got[i].Data, secs[i].Data) {
					t.Fatalf("section %d differs after round trip", i)
				}
			}
		}
	}
}

// TestCorruptChunkRejected flips one byte in every position class of a chunk
// frame (data, proof, index) and asserts the assembler rejects it with the
// typed errors — and that the pristine frame still verifies afterwards.
func TestCorruptChunkRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	snap, err := Build(1, 0, 1, testSections(rng, 2, 500), 64)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumChunks() < 3 {
		t.Fatalf("want >= 3 chunks, got %d", snap.NumChunks())
	}
	asm, err := NewAssembler(snap.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	frame := snap.ChunkFrame(1)
	for pos := 0; pos < len(frame); pos++ {
		bad := append([]byte(nil), frame...)
		bad[pos] ^= 0x40
		if _, err := asm.AddFrame(bad); err == nil {
			t.Fatalf("corrupt byte at %d accepted", pos)
		} else if !errors.Is(err, ErrChunkMismatch) && !errors.Is(err, ErrBadProof) && !errors.Is(err, ErrFrame) {
			t.Fatalf("corrupt byte at %d: untyped rejection %v", pos, err)
		}
	}
	if asm.Verified() != 0 {
		t.Fatalf("corrupt frames counted as verified: %d", asm.Verified())
	}
	if _, err := asm.AddFrame(frame); err != nil {
		t.Fatalf("pristine frame rejected after corrupt attempts: %v", err)
	}
}

// TestChunkFromWrongSnapshotRejected: a valid chunk of a different snapshot
// must fail against this manifest's root, not be silently accepted.
func TestChunkFromWrongSnapshotRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, err := Build(1, 0, 1, testSections(rng, 1, 300), 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(1, 0, 1, testSections(rng, 1, 300), 64)
	if err != nil {
		t.Fatal(err)
	}
	index, data, proof, err := DecodeChunkFrame(b.ChunkFrame(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyChunk(a.Manifest, index, data, proof); !errors.Is(err, ErrChunkMismatch) {
		t.Fatalf("foreign chunk verified against the wrong root: %v", err)
	}
}

// TestCheckIdentity: a manifest certified for another joiner or epoch is
// stale, typed as such.
func TestCheckIdentity(t *testing.T) {
	m := Manifest{Joiner: 3, Epoch: 2, ChunkSize: 64}
	if err := CheckIdentity(m, 3, 2); err != nil {
		t.Fatal(err)
	}
	if err := CheckIdentity(m, 4, 2); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong joiner accepted: %v", err)
	}
	if err := CheckIdentity(m, 3, 1); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong epoch accepted: %v", err)
	}
}

// TestManifestRoundTrip pins the manifest codec.
func TestManifestRoundTrip(t *testing.T) {
	m := Manifest{Joiner: 7, Source: 6, Epoch: 3, ChunkSize: 4096, TotalLen: 123457}
	for i := range m.Root {
		m.Root[i] = byte(i * 7)
	}
	got, err := DecodeManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, m)
	}
	if _, err := DecodeManifest(m.Encode()[:10]); !errors.Is(err, ErrManifest) {
		t.Fatalf("truncated manifest accepted: %v", err)
	}
}

// TestScrubberDetectsFlip is the satellite's scrubber unit test: track a
// replica, flip a byte, assert detection; repair (restore + re-track),
// assert the fingerprint verifies again.
func TestScrubberDetectsFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 5000)
	rng.Read(data)
	pristine := append([]byte(nil), data...)

	s := NewScrubber(256)
	s.Track("replica:3", data)
	if !s.Verify("replica:3", data) {
		t.Fatal("fresh replica does not verify")
	}
	data[4321] ^= 0x01 // silent corruption
	if s.Verify("replica:3", data) {
		t.Fatal("bit flip not detected")
	}
	// Repair from the live copy, as the scrub exchange does.
	copy(data, pristine)
	if !s.Verify("replica:3", data) {
		t.Fatal("repaired replica does not verify")
	}
	if s.Verify("replica:unknown", data) {
		t.Fatal("untracked key verified")
	}
	if got := s.Keys(); len(got) != 1 || got[0] != "replica:3" {
		t.Fatalf("Keys() = %v", got)
	}
	s.Forget("replica:3")
	if s.Tracked("replica:3") {
		t.Fatal("forgotten key still tracked")
	}
}

// FuzzSnapshotManifestDecode: DecodeManifest must never panic, and every
// accepted manifest must re-encode to an equal manifest.
func FuzzSnapshotManifestDecode(f *testing.F) {
	f.Add([]byte{})
	m := Manifest{Joiner: 1, Source: 2, Epoch: 3, ChunkSize: 64, TotalLen: 1000}
	f.Add(m.Encode())
	f.Add(m.Encode()[:20])
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := DecodeManifest(payload)
		if err != nil {
			return
		}
		got, err := DecodeManifest(m.Encode())
		if err != nil || !got.Equal(m) {
			t.Fatalf("re-decode of accepted manifest failed: %+v %v", m, err)
		}
	})
}

// FuzzChunkFrameDecode: DecodeChunkFrame and VerifyChunk must never panic on
// arbitrary frames, and must never verify a frame against a random manifest.
func FuzzChunkFrameDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	snap, err := Build(1, 0, 1, testSections(rng, 1, 200), 64)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap.ChunkFrame(0), false)
	f.Add([]byte{0, 0, 0}, true)
	f.Fuzz(func(t *testing.T, frame []byte, corruptRoot bool) {
		index, data, proof, err := DecodeChunkFrame(frame)
		if err != nil {
			return
		}
		m := snap.Manifest
		if corruptRoot {
			m.Root[0] ^= 0xFF
			if VerifyChunk(m, index, data, proof) == nil {
				t.Fatal("chunk verified against a corrupted root")
			}
		} else {
			_ = VerifyChunk(m, index, data, proof)
		}
	})
}
