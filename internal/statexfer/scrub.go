package statexfer

import (
	"sort"
	"sync"
)

// Scrubber fingerprints byte blobs (buddy replicas, in practice) with merkle
// roots so silent corruption — a bit flip in a replica that sits unused
// until the day it is the only copy — is caught by a periodic re-hash and
// repaired from the live source before it is ever needed.
//
// The scrubber only remembers roots, never data: Verify re-hashes the
// caller's current bytes against the root recorded at Track time.
type Scrubber struct {
	mu        sync.Mutex
	chunkSize int
	roots     map[string][32]byte
}

// NewScrubber creates a scrubber hashing at the given chunk size (<= 0
// selects DefaultChunkSize).
func NewScrubber(chunkSize int) *Scrubber {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &Scrubber{chunkSize: chunkSize, roots: map[string][32]byte{}}
}

// Track records the merkle root of data under key, replacing any previous
// fingerprint — call when a fresh verified copy is installed.
func (s *Scrubber) Track(key string, data []byte) {
	root := Root(data, s.chunkSize)
	s.mu.Lock()
	s.roots[key] = root
	s.mu.Unlock()
}

// Tracked reports whether key has a recorded fingerprint.
func (s *Scrubber) Tracked(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.roots[key]
	return ok
}

// Verify re-hashes data and reports whether it still matches the fingerprint
// recorded for key. An untracked key never verifies.
func (s *Scrubber) Verify(key string, data []byte) bool {
	s.mu.Lock()
	root, ok := s.roots[key]
	s.mu.Unlock()
	return ok && Root(data, s.chunkSize) == root
}

// Forget drops the fingerprint for key.
func (s *Scrubber) Forget(key string) {
	s.mu.Lock()
	delete(s.roots, key)
	s.mu.Unlock()
}

// Keys lists the tracked keys in sorted order — the scrub loop's work list.
func (s *Scrubber) Keys() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.roots))
	for k := range s.roots {
		out = append(out, k)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}
