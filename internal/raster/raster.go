// Package raster provides the image substrate used by the composition
// methods: value+alpha raster images stored as two bytes per pixel, span
// arithmetic for tiling sub-images into blocks, and helpers to slice,
// splice and compare image regions.
//
// Composition schedules address image data by contiguous pixel spans, not
// rectangles: the "over" operation is pixel-wise, so the geometry of a block
// is irrelevant to correctness, and contiguous spans make block extraction a
// single copy. A span [Lo,Hi) covers pixels Lo..Hi-1 in row-major order.
package raster

import (
	"fmt"
	"math"
)

// BytesPerPixel is the storage cost of one pixel: a gray value followed by
// an alpha (coverage/opacity) byte.
const BytesPerPixel = 2

// Image is a grayscale-with-alpha raster. Pix holds BytesPerPixel bytes per
// pixel in row-major order: Pix[2i] is the gray value of pixel i and
// Pix[2i+1] its alpha. A pixel with alpha 0 is "blank": it carries no
// contribution and is skipped by compositing and compressed away by the
// codecs.
type Image struct {
	W, H int
	Pix  []uint8
}

// New returns a blank (fully transparent) image of the given size.
func New(w, h int) *Image {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("raster: invalid size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h*BytesPerPixel)}
}

// NPixels reports the number of pixels in the image.
func (im *Image) NPixels() int { return im.W * im.H }

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Pix: make([]uint8, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// At returns the (value, alpha) pair of pixel (x, y).
func (im *Image) At(x, y int) (v, a uint8) {
	i := (y*im.W + x) * BytesPerPixel
	return im.Pix[i], im.Pix[i+1]
}

// Set stores the (value, alpha) pair of pixel (x, y).
func (im *Image) Set(x, y int, v, a uint8) {
	i := (y*im.W + x) * BytesPerPixel
	im.Pix[i], im.Pix[i+1] = v, a
}

// Fill sets every pixel to the given value and alpha.
func (im *Image) Fill(v, a uint8) {
	for i := 0; i < len(im.Pix); i += BytesPerPixel {
		im.Pix[i], im.Pix[i+1] = v, a
	}
}

// Span is a half-open range of pixel indices [Lo, Hi) in row-major order.
type Span struct {
	Lo, Hi int
}

// Len reports the number of pixels in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Empty reports whether the span covers no pixels.
func (s Span) Empty() bool { return s.Hi <= s.Lo }

// Contains reports whether t lies entirely within s.
func (s Span) Contains(t Span) bool { return t.Lo >= s.Lo && t.Hi <= s.Hi }

// Halves splits the span into two halves. The first half receives the extra
// pixel when the length is odd, matching the paper's "divide each block into
// two equal halves" with a deterministic tie-break shared by all ranks.
func (s Span) Halves() (Span, Span) {
	mid := s.Lo + (s.Len()+1)/2
	return Span{s.Lo, mid}, Span{mid, s.Hi}
}

// String implements fmt.Stringer.
func (s Span) String() string { return fmt.Sprintf("[%d,%d)", s.Lo, s.Hi) }

// SplitSpan divides s into n near-equal contiguous parts. Remainder pixels
// are spread over the leading parts so any two parts differ by at most one
// pixel.
func SplitSpan(s Span, n int) []Span {
	if n <= 0 {
		panic("raster: SplitSpan needs n > 0")
	}
	parts := make([]Span, n)
	total := s.Len()
	lo := s.Lo
	for i := 0; i < n; i++ {
		size := total / n
		if i < total%n {
			size++
		}
		parts[i] = Span{lo, lo + size}
		lo += size
	}
	return parts
}

// FullSpan returns the span covering the whole image.
func (im *Image) FullSpan() Span { return Span{0, im.NPixels()} }

// SpanBytes returns the backing bytes of the span as a mutable slice view.
func (im *Image) SpanBytes(s Span) []uint8 {
	return im.Pix[s.Lo*BytesPerPixel : s.Hi*BytesPerPixel]
}

// ExtractSpan copies the pixels of the span into a fresh byte slice.
func (im *Image) ExtractSpan(s Span) []uint8 {
	out := make([]uint8, s.Len()*BytesPerPixel)
	copy(out, im.SpanBytes(s))
	return out
}

// InsertSpan overwrites the span's pixels with data, which must hold exactly
// BytesPerPixel bytes per span pixel.
func (im *Image) InsertSpan(s Span, data []uint8) {
	if len(data) != s.Len()*BytesPerPixel {
		panic(fmt.Sprintf("raster: InsertSpan size mismatch: span %v needs %d bytes, got %d",
			s, s.Len()*BytesPerPixel, len(data)))
	}
	copy(im.SpanBytes(s), data)
}

// Canonicalize forces every blank pixel (alpha 0) to the canonical (0,0)
// form. The codecs and compositors assume canonical blanks: TRLE does not
// transport the value channel of blank pixels.
func (im *Image) Canonicalize() {
	for i := 0; i < len(im.Pix); i += BytesPerPixel {
		if im.Pix[i+1] == 0 {
			im.Pix[i] = 0
		}
	}
}

// BlankFraction reports the fraction of pixels with alpha zero.
func (im *Image) BlankFraction() float64 {
	if im.NPixels() == 0 {
		return 0
	}
	blank := 0
	for i := 1; i < len(im.Pix); i += BytesPerPixel {
		if im.Pix[i] == 0 {
			blank++
		}
	}
	return float64(blank) / float64(im.NPixels())
}

// Equal reports whether two images have identical size and pixels.
func Equal(a, b *Image) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			return false
		}
	}
	return true
}

// MaxDiff returns the largest absolute per-byte difference between two
// images of identical size, considering both value and alpha channels.
func MaxDiff(a, b *Image) int {
	if a.W != b.W || a.H != b.H {
		return math.MaxInt
	}
	max := 0
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// PSNR reports the peak signal-to-noise ratio between two images of the
// same size, over both channels, in decibels. Identical images report
// +Inf; mismatched sizes report NaN.
func PSNR(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H || len(a.Pix) == 0 {
		return math.NaN()
	}
	var sum float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		sum += d * d
	}
	if sum == 0 {
		return math.Inf(1)
	}
	mse := sum / float64(len(a.Pix))
	return 10 * math.Log10(255*255/mse)
}

// DiffCount returns the number of bytes differing by more than tol.
func DiffCount(a, b *Image, tol int) int {
	n := 0
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > tol {
			n++
		}
	}
	return n
}

// UpscaleNearest resizes the image to w x h with nearest-neighbour
// sampling. Nearest-neighbour commutes exactly with pixel-wise compositing,
// so upscaling partial images and compositing them equals compositing and
// then upscaling — the property the experiment harness relies on when
// blowing rendered partials up to the paper's 512x512 composite size.
func (im *Image) UpscaleNearest(w, h int) *Image {
	out := New(w, h)
	for y := 0; y < h; y++ {
		sy := y * im.H / h
		for x := 0; x < w; x++ {
			sx := x * im.W / w
			si := (sy*im.W + sx) * BytesPerPixel
			di := (y*w + x) * BytesPerPixel
			out.Pix[di], out.Pix[di+1] = im.Pix[si], im.Pix[si+1]
		}
	}
	return out
}

// Rect is an axis-aligned pixel rectangle [X0,X1) x [Y0,Y1), used by the
// bounding-rectangle optimisation of Ma et al. and Lee.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// Empty reports whether the rectangle covers no pixels.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Area reports the number of pixels covered.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return (r.X1 - r.X0) * (r.Y1 - r.Y0)
}

// Intersect returns the intersection of two rectangles.
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{maxInt(r.X0, o.X0), maxInt(r.Y0, o.Y0), minInt(r.X1, o.X1), minInt(r.Y1, o.Y1)}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle covering both operands.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Rect{minInt(r.X0, o.X0), minInt(r.Y0, o.Y0), maxInt(r.X1, o.X1), maxInt(r.Y1, o.Y1)}
}

// BoundingRect returns the tightest rectangle containing every non-blank
// pixel of the image, or an empty rectangle for a fully blank image.
func (im *Image) BoundingRect() Rect {
	x0, y0 := im.W, im.H
	x1, y1 := 0, 0
	for y := 0; y < im.H; y++ {
		row := im.Pix[y*im.W*BytesPerPixel : (y+1)*im.W*BytesPerPixel]
		for x := 0; x < im.W; x++ {
			if row[x*BytesPerPixel+1] != 0 {
				if x < x0 {
					x0 = x
				}
				if x >= x1 {
					x1 = x + 1
				}
				if y < y0 {
					y0 = y
				}
				if y >= y1 {
					y1 = y + 1
				}
			}
		}
	}
	if x1 <= x0 {
		return Rect{}
	}
	return Rect{x0, y0, x1, y1}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
