package raster

import (
	"bytes"
	"image/png"
	"math/rand"
	"testing"
)

func TestEncodePGM(t *testing.T) {
	im := New(2, 1)
	im.Set(0, 0, 200, 255) // opaque -> 200
	im.Set(1, 0, 200, 127) // half transparent -> ~99 over black
	pgm := im.EncodePGM()
	if !bytes.HasPrefix(pgm, []byte("P5\n2 1\n255\n")) {
		t.Fatalf("header: %q", pgm[:12])
	}
	body := pgm[len(pgm)-2:]
	if body[0] != 200 {
		t.Fatalf("opaque pixel = %d", body[0])
	}
	if body[1] != uint8(200*127/255) {
		t.Fatalf("translucent pixel = %d", body[1])
	}
}

func TestWritePNGRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	im := RandomImage(rng, 9, 7, 0.4)
	var buf bytes.Buffer
	if err := im.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 9 || decoded.Bounds().Dy() != 7 {
		t.Fatalf("decoded bounds %v", decoded.Bounds())
	}
}

func TestUpscaleNearestCommutesWithCompositing(t *testing.T) {
	// upscale(a) over upscale(b) == upscale(a over b) for nearest-neighbour.
	rng := rand.New(rand.NewSource(6))
	a := RandomImage(rng, 16, 16, 0.4)
	b := RandomImage(rng, 16, 16, 0.4)
	overSmall := b.Clone()
	overU8(overSmall.Pix, a.Pix, overSmall.Pix)
	left := overSmall.UpscaleNearest(64, 48)

	ua, ub := a.UpscaleNearest(64, 48), b.UpscaleNearest(64, 48)
	right := ub.Clone()
	overU8(right.Pix, ua.Pix, right.Pix)
	if !Equal(left, right) {
		t.Fatal("nearest upscale does not commute with over")
	}
}

// overU8 is a local copy of the compose kernel to keep raster free of the
// compose dependency in tests (raster must not import compose).
func overU8(dst, front, back []uint8) {
	for i := 0; i < len(front); i += BytesPerPixel {
		fv, fa := front[i], front[i+1]
		switch fa {
		case 255:
			dst[i], dst[i+1] = fv, fa
		case 0:
			dst[i], dst[i+1] = back[i], back[i+1]
		default:
			bv, ba := back[i], back[i+1]
			inv := uint32(255 - fa)
			ca := uint32(fa)*255 + inv*uint32(ba)
			cv := uint32(fv)*uint32(fa)*255 + inv*uint32(ba)*uint32(bv)
			aa := (ca + 127) / 255
			var v uint32
			if ca > 0 {
				v = (cv + ca/2) / ca
			}
			dst[i], dst[i+1] = uint8(v), uint8(aa)
		}
	}
}

func TestUpscalePreservesBlankFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	im := RandomImage(rng, 32, 32, 0.5)
	up := im.UpscaleNearest(128, 128)
	if d := im.BlankFraction() - up.BlankFraction(); d > 0.02 || d < -0.02 {
		t.Fatalf("blank fraction drifted: %v vs %v", im.BlankFraction(), up.BlankFraction())
	}
}

func TestAddValueNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	im := RandomImage(rng, 32, 32, 0.5)
	orig := im.Clone()
	im.AddValueNoise(6, 99)
	changed := false
	for i := 0; i < len(im.Pix); i += BytesPerPixel {
		if im.Pix[i+1] != orig.Pix[i+1] {
			t.Fatal("noise touched alpha")
		}
		if orig.Pix[i+1] == 0 && im.Pix[i] != orig.Pix[i] {
			t.Fatal("noise touched a blank pixel")
		}
		d := int(im.Pix[i]) - int(orig.Pix[i])
		if d < -6 || d > 6 {
			t.Fatalf("noise amplitude %d exceeds 6", d)
		}
		if orig.Pix[i+1] != 0 && im.Pix[i] == 0 {
			t.Fatal("noise zeroed a non-blank value")
		}
		if d != 0 {
			changed = true
		}
	}
	if !changed {
		t.Fatal("noise changed nothing")
	}
	// Deterministic.
	again := orig.Clone()
	again.AddValueNoise(6, 99)
	if !Equal(im, again) {
		t.Fatal("noise not deterministic")
	}
	// Zero amplitude is a no-op.
	before := im.Clone()
	im.AddValueNoise(0, 1)
	if !Equal(im, before) {
		t.Fatal("amp=0 changed the image")
	}
}

func TestCanonicalize(t *testing.T) {
	im := New(2, 1)
	im.Pix[0], im.Pix[1] = 42, 0 // stale value on blank pixel
	im.Pix[2], im.Pix[3] = 7, 9
	im.Canonicalize()
	if im.Pix[0] != 0 {
		t.Fatal("blank value not cleared")
	}
	if im.Pix[2] != 7 || im.Pix[3] != 9 {
		t.Fatal("non-blank pixel touched")
	}
}
