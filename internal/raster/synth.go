package raster

import "math/rand"

// Synthetic partial-image generators. These model the partial images a
// renderer produces: a mostly-blank frame with a compact non-blank footprint
// whose position depends on the rank, so that different ranks overlap only
// partially — the regime the compression results of the paper depend on.

// RandomImage fills a w x h image with independent random pixels. Each pixel
// is blank with probability blankProb; otherwise value and alpha are uniform
// in [1,255]. Deterministic for a given rng.
func RandomImage(rng *rand.Rand, w, h int, blankProb float64) *Image {
	im := New(w, h)
	for i := 0; i < len(im.Pix); i += BytesPerPixel {
		if rng.Float64() < blankProb {
			continue
		}
		im.Pix[i] = uint8(1 + rng.Intn(255))
		im.Pix[i+1] = uint8(1 + rng.Intn(255))
	}
	return im
}

// RandomBinaryImage is RandomImage with alpha restricted to {0, 255}. With
// binary alpha the "over" operator is exactly associative on uint8 pixels,
// which the exactness tests rely on.
func RandomBinaryImage(rng *rand.Rand, w, h int, blankProb float64) *Image {
	im := New(w, h)
	for i := 0; i < len(im.Pix); i += BytesPerPixel {
		if rng.Float64() < blankProb {
			continue
		}
		im.Pix[i] = uint8(rng.Intn(256))
		im.Pix[i+1] = 255
	}
	return im
}

// AddValueNoise perturbs every non-blank pixel's gray value by a
// deterministic hash-based offset in [-amp, +amp], clamped to [1, 255].
// Alpha is untouched, so compositing behaviour is unchanged.
//
// The experiment harness applies this to rendered phantom partials: real
// CT/MR scans (the paper's Chapel Hill datasets) carry per-pixel
// acquisition noise, and without it the synthetically flat phantoms would
// hand plain RLE long identical-value runs that real gray images do not
// have — inverting the paper's premise that RLE compresses gray images
// poorly.
func (im *Image) AddValueNoise(amp int, seed uint64) {
	if amp <= 0 {
		return
	}
	for i := 0; i < len(im.Pix); i += BytesPerPixel {
		if im.Pix[i+1] == 0 {
			continue
		}
		// splitmix64 of (seed, pixel index) for a stable pseudo-noise field.
		x := seed + uint64(i)*0x9E3779B97F4A7C15
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		d := int(x%uint64(2*amp+1)) - amp
		v := int(im.Pix[i]) + d
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		im.Pix[i] = uint8(v)
	}
}

// PartialImage synthesises the partial image of rank r out of p: a filled
// disc whose centre slides across the frame with the rank, with a soft alpha
// ramp. Neighbouring ranks overlap, distant ranks do not — mimicking a
// depth-partitioned volume rendered from the side.
func PartialImage(rng *rand.Rand, w, h, r, p int) *Image {
	im := New(w, h)
	if p <= 0 {
		return im
	}
	cx := float64(w) * (0.25 + 0.5*float64(r)/float64(maxInt(p-1, 1)))
	cy := float64(h) * 0.5
	rad := float64(minInt(w, h)) * 0.22
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			d2 := dx*dx + dy*dy
			if d2 > rad*rad {
				continue
			}
			fall := 1 - d2/(rad*rad)
			a := uint8(40 + 215*fall)
			v := uint8(30 + (x*7+y*13+r*31)%200)
			if rng != nil && rng.Intn(16) == 0 {
				a = 0 // sparse holes keep the codecs honest
				v = 0
			}
			im.Set(x, y, v, a)
		}
	}
	return im
}
