package raster

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
)

// EncodePGM serialises the image as a binary PGM (P5): each pixel's gray
// value composited over a black background by its alpha.
func (im *Image) EncodePGM() []byte {
	out := make([]byte, 0, im.NPixels()+32)
	out = append(out, []byte(fmt.Sprintf("P5\n%d %d\n255\n", im.W, im.H))...)
	for i := 0; i < len(im.Pix); i += BytesPerPixel {
		v := int(im.Pix[i]) * int(im.Pix[i+1]) / 255
		out = append(out, uint8(v))
	}
	return out
}

// WritePNG writes the image as a gray+alpha PNG.
func (im *Image) WritePNG(w io.Writer) error {
	out := image.NewNRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v, a := im.At(x, y)
			out.SetNRGBA(x, y, color.NRGBA{R: v, G: v, B: v, A: a})
		}
	}
	return png.Encode(w, out)
}
