package raster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBlank(t *testing.T) {
	im := New(7, 5)
	if im.NPixels() != 35 {
		t.Fatalf("NPixels = %d, want 35", im.NPixels())
	}
	if got := im.BlankFraction(); got != 1 {
		t.Fatalf("BlankFraction of fresh image = %v, want 1", got)
	}
	v, a := im.At(3, 2)
	if v != 0 || a != 0 {
		t.Fatalf("At(3,2) = (%d,%d), want (0,0)", v, a)
	}
}

func TestSetAt(t *testing.T) {
	im := New(4, 4)
	im.Set(1, 2, 99, 200)
	v, a := im.At(1, 2)
	if v != 99 || a != 200 {
		t.Fatalf("round trip = (%d,%d), want (99,200)", v, a)
	}
	// Neighbours untouched.
	if v, a := im.At(2, 2); v != 0 || a != 0 {
		t.Fatalf("neighbour dirtied: (%d,%d)", v, a)
	}
}

func TestFill(t *testing.T) {
	im := New(3, 3)
	im.Fill(10, 20)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if v, a := im.At(x, y); v != 10 || a != 20 {
				t.Fatalf("pixel (%d,%d) = (%d,%d)", x, y, v, a)
			}
		}
	}
	if im.BlankFraction() != 0 {
		t.Fatalf("filled image blank fraction %v", im.BlankFraction())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 1, 2)
	b := a.Clone()
	b.Set(0, 0, 3, 4)
	if v, _ := a.At(0, 0); v != 1 {
		t.Fatal("Clone shares backing store")
	}
	if !Equal(a, a.Clone()) {
		t.Fatal("Equal(clone) = false")
	}
	if Equal(a, b) {
		t.Fatal("Equal after divergence = true")
	}
}

func TestSplitSpanCoversExactly(t *testing.T) {
	check := func(total, n int) {
		if total < 0 {
			total = -total
		}
		total %= 10000
		n = 1 + (abs(n) % 64)
		parts := SplitSpan(Span{0, total}, n)
		if len(parts) != n {
			t.Fatalf("got %d parts, want %d", len(parts), n)
		}
		at := 0
		for _, p := range parts {
			if p.Lo != at {
				t.Fatalf("gap or overlap at %d: %v", at, p)
			}
			if p.Len() < 0 {
				t.Fatalf("negative span %v", p)
			}
			at = p.Hi
		}
		if at != total {
			t.Fatalf("coverage ends at %d, want %d", at, total)
		}
		// Near-equal: max-min <= 1.
		min, max := total, 0
		for _, p := range parts {
			if p.Len() < min {
				min = p.Len()
			}
			if p.Len() > max {
				max = p.Len()
			}
		}
		if max-min > 1 {
			t.Fatalf("imbalance: min %d max %d", min, max)
		}
	}
	if err := quick.Check(func(total, n int) bool { check(total, n); return !t.Failed() }, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestHalvesProperty(t *testing.T) {
	f := func(lo, length uint16) bool {
		s := Span{int(lo), int(lo) + int(length)}
		a, b := s.Halves()
		return a.Lo == s.Lo && a.Hi == b.Lo && b.Hi == s.Hi &&
			a.Len()-b.Len() >= 0 && a.Len()-b.Len() <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtractInsertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := RandomImage(rng, 16, 16, 0.3)
	s := Span{37, 181}
	data := im.ExtractSpan(s)
	other := New(16, 16)
	other.InsertSpan(s, data)
	for i := s.Lo; i < s.Hi; i++ {
		if other.Pix[2*i] != im.Pix[2*i] || other.Pix[2*i+1] != im.Pix[2*i+1] {
			t.Fatalf("pixel %d differs after round trip", i)
		}
	}
	// Outside the span stays blank.
	if other.Pix[2*(s.Lo-1)+1] != 0 || other.Pix[2*s.Hi+1] != 0 {
		t.Fatal("InsertSpan leaked outside the span")
	}
}

func TestInsertSpanSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4, 4).InsertSpan(Span{0, 4}, make([]uint8, 3))
}

func TestMaxDiffAndDiffCount(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	if MaxDiff(a, b) != 0 {
		t.Fatal("identical images differ")
	}
	b.Set(1, 1, 5, 0)
	if MaxDiff(a, b) != 5 {
		t.Fatalf("MaxDiff = %d, want 5", MaxDiff(a, b))
	}
	if DiffCount(a, b, 4) != 1 {
		t.Fatalf("DiffCount(tol=4) = %d, want 1", DiffCount(a, b, 4))
	}
	if DiffCount(a, b, 5) != 0 {
		t.Fatalf("DiffCount(tol=5) = %d, want 0", DiffCount(a, b, 5))
	}
}

func TestBoundingRect(t *testing.T) {
	im := New(10, 8)
	if !im.BoundingRect().Empty() {
		t.Fatal("blank image has non-empty bounding rect")
	}
	im.Set(3, 2, 1, 10)
	im.Set(7, 5, 1, 10)
	r := im.BoundingRect()
	want := Rect{3, 2, 8, 6}
	if r != want {
		t.Fatalf("BoundingRect = %+v, want %+v", r, want)
	}
	if r.Area() != 20 {
		t.Fatalf("Area = %d, want 20", r.Area())
	}
}

func TestRectOps(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	if got := a.Intersect(b); got != (Rect{2, 2, 4, 4}) {
		t.Fatalf("Intersect = %+v", got)
	}
	if got := a.Union(b); got != (Rect{0, 0, 6, 6}) {
		t.Fatalf("Union = %+v", got)
	}
	empty := Rect{}
	if got := a.Union(empty); got != a {
		t.Fatalf("Union with empty = %+v", got)
	}
	if got := a.Intersect(Rect{5, 5, 7, 7}); !got.Empty() {
		t.Fatalf("disjoint Intersect = %+v", got)
	}
}

func TestPartialImageOverlapStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := 8
	first := PartialImage(rng, 64, 64, 0, p)
	last := PartialImage(rng, 64, 64, p-1, p)
	// Ranks at opposite ends should not overlap.
	for i := 1; i < len(first.Pix); i += BytesPerPixel {
		if first.Pix[i] != 0 && last.Pix[i] != 0 {
			t.Fatal("rank 0 and rank p-1 partial images overlap")
		}
	}
	if first.BlankFraction() > 0.95 || first.BlankFraction() < 0.2 {
		t.Fatalf("unrealistic blank fraction %v", first.BlankFraction())
	}
}

func TestRandomBinaryImageAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	im := RandomBinaryImage(rng, 32, 32, 0.5)
	for i := 1; i < len(im.Pix); i += BytesPerPixel {
		if a := im.Pix[i]; a != 0 && a != 255 {
			t.Fatalf("non-binary alpha %d", a)
		}
	}
	bf := im.BlankFraction()
	if bf < 0.4 || bf > 0.6 {
		t.Fatalf("blank fraction %v far from 0.5", bf)
	}
}

func TestPSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := RandomImage(rng, 16, 16, 0.3)
	if p := PSNR(a, a.Clone()); !isInf(p) {
		t.Fatalf("PSNR of identical images = %v, want +Inf", p)
	}
	b := a.Clone()
	b.Pix[0] ^= 0xFF
	p1 := PSNR(a, b)
	if p1 <= 0 || isInf(p1) {
		t.Fatalf("PSNR with one corrupted byte = %v", p1)
	}
	// More corruption -> lower PSNR.
	c := a.Clone()
	for i := 0; i < len(c.Pix); i += 8 {
		c.Pix[i] ^= 0x80
	}
	if p2 := PSNR(a, c); p2 >= p1 {
		t.Fatalf("PSNR did not drop with more noise: %v vs %v", p2, p1)
	}
	if !isNaN(PSNR(a, New(2, 2))) {
		t.Fatal("mismatched sizes did not give NaN")
	}
}

func isInf(x float64) bool { return x > 1e308 }
func isNaN(x float64) bool { return x != x }
