// Streaming-render support for the pipelined compositor: a rank's partial
// image is rendered in row bands and published incrementally, so the
// compositor starts exchanging early tiles while later rows are still being
// rendered — the render/composition overlap of the per-tile pipeline.
package core

import (
	"sync"
	"time"

	"rtcomp/internal/compositor"
	"rtcomp/internal/partition"
	"rtcomp/internal/raster"
	"rtcomp/internal/telemetry"
)

// stripSource is a compositor.Source over a row-banded render in progress:
// rows are published monotonically, and a tile's pixels are final once every
// row its span touches has been published. Safe for the compositor's
// concurrent WaitTile calls.
type stripSource struct {
	wi   int // intermediate image width (pixels per row)
	mu   sync.Mutex
	cond *sync.Cond
	rows int // rows rendered and published so far
	err  error
	t0   time.Time
	dt   time.Duration // render wall time, set when the last row publishes
}

func newStripSource(wi int) *stripSource {
	s := &stripSource{wi: wi, t0: time.Now()}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// advance publishes rows [rows, rows+n) as final.
func (s *stripSource) advance(n int, last bool) {
	s.mu.Lock()
	s.rows += n
	if last {
		s.dt = time.Since(s.t0)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// fail poisons the source; every waiter unblocks with the error.
func (s *stripSource) fail(err error) {
	s.mu.Lock()
	s.err = err
	s.dt = time.Since(s.t0)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// WaitTile implements compositor.Source: it blocks until every row the
// tile's pixel span touches has been rendered.
func (s *stripSource) WaitTile(_ int, span raster.Span) error {
	need := (span.Hi + s.wi - 1) / s.wi
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.rows < need && s.err == nil {
		s.cond.Wait()
	}
	return s.err
}

// elapsed reports the render wall time (so far, if still in flight).
func (s *stripSource) elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dt > 0 {
		return s.dt
	}
	return time.Since(s.t0)
}

// startPartials begins rendering this rank's partial image. When the
// pipelined compositor can consume rows incrementally — 1-D slab
// partitioning on the plain (non-accelerated) renderer, which has a
// band-exact row-restricted kernel — rendering continues in a background
// goroutine and the returned Source gates each tile on its rows. Otherwise
// the image is complete on return and the Source is nil; the pipeline still
// overlaps composition across tiles, just not with the render.
func (cfg Config) startPartials(ctx *renderCtx, rank, tiles int) (*raster.Image, compositor.Source, error) {
	stream := cfg.Pipeline && !cfg.RLE && !cfg.Accelerate &&
		(cfg.Partition == "" || cfg.Partition == "1d")
	if !stream {
		endRender := cfg.Telemetry.Span(rank, telemetry.PhaseRender, telemetry.CatCompute, telemetry.StepNone)
		img, err := cfg.partials(ctx, rank)
		endRender()
		return img, nil, err
	}
	view := ctx.view
	slabs, err := partition.Slabs1D(view.NK(), cfg.P)
	if err != nil {
		return nil, nil, err
	}
	kLo, kHi := slabs[rank].Lo, slabs[rank].Hi
	wi, hi := view.IntermediateSize()
	img := raster.New(wi, hi)
	src := newStripSource(wi)
	// One band per tile keeps publication granularity aligned with what the
	// compositor can consume.
	step := (hi + tiles - 1) / tiles
	if step < 1 {
		step = 1
	}
	go func() {
		endRender := cfg.Telemetry.Span(rank, telemetry.PhaseRender, telemetry.CatCompute, telemetry.StepNone)
		defer endRender()
		for y0 := 0; y0 < hi; y0 += step {
			y1 := y0 + step
			if y1 > hi {
				y1 = hi
			}
			if err := ctx.r.RenderSlabRows(view, kLo, kHi, y0, y1, img); err != nil {
				src.fail(err)
				return
			}
			src.advance(y1-y0, y1 == hi)
		}
	}()
	return img, src, nil
}

// renderElapsed resolves the render duration of a startPartials call.
func renderElapsed(src compositor.Source, fallback time.Duration) time.Duration {
	if ss, ok := src.(*stripSource); ok {
		return ss.elapsed()
	}
	return fallback
}
