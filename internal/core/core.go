// Package core is the library facade: it wires the full parallel volume
// rendering pipeline of the paper — data partitioning, shear-warp
// rendering, image composition, final warp — behind a single configuration
// struct, running either on the in-process goroutine fabric or on caller-
// provided communicators (one OS process per rank over TCP).
package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/compositor"
	"rtcomp/internal/gray"
	"rtcomp/internal/model"
	"rtcomp/internal/partition"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/shearwarp"
	"rtcomp/internal/simnet"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/transport/inproc"
	"rtcomp/internal/volume"
	"rtcomp/internal/xfer"
)

// Method selects a composition method.
type Method struct {
	// Kind is one of "bs" (binary-swap), "pp" (parallel-pipelined),
	// "ds" (direct-send), "tree" (binary tree), "radixk" (radix-k with
	// balanced factors), "nrt" (N_RT), "2nrt" (2N_RT) or "rt"
	// (rotate-tiling without the paper's parity restrictions).
	Kind string
	// N is the number of initial blocks for the rotate-tiling kinds.
	N int
}

// ParseMethod parses "bs", "pp", "ds", "nrt:3", "2nrt:4", "rt:5". For the
// rotate-tiling kinds, ":auto" (or N = 0) defers the block count to the
// census predictor at render time (see model.AutoN).
func ParseMethod(s string) (Method, error) {
	kind, nstr, hasN := strings.Cut(s, ":")
	m := Method{Kind: kind, N: 4}
	if hasN {
		if nstr == "auto" {
			m.N = 0
		} else {
			n, err := strconv.Atoi(nstr)
			if err != nil {
				return Method{}, fmt.Errorf("core: bad method %q: %v", s, err)
			}
			m.N = n
		}
	}
	switch kind {
	case "bs", "pp", "ds", "tree", "radixk", "nrt", "2nrt", "rt":
		return m, nil
	}
	return Method{}, fmt.Errorf("core: unknown method %q", s)
}

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m.Kind {
	case "nrt", "2nrt", "rt":
		return fmt.Sprintf("%s:%d", m.Kind, m.N)
	}
	return m.Kind
}

// ResolveN fills in an automatic block count (N == 0) for the
// rotate-tiling kinds, using the census predictor with SP2-calibrated
// constants for an image of apix pixels. Other kinds pass through.
func (m Method) ResolveN(p, apix int) (Method, error) {
	switch m.Kind {
	case "nrt", "2nrt", "rt":
		if m.N != 0 {
			return m, nil
		}
	default:
		return m, nil
	}
	cal := simnet.SP2Calibrated()
	n, err := model.AutoN(p, apix, model.Params{Ts: cal.Ts, Tp: cal.TpPerByte, To: cal.ToPerPixel},
		0, m.Kind == "2nrt")
	if err != nil {
		return Method{}, err
	}
	m.N = n
	return m, nil
}

// Schedule builds the method's composition schedule for p ranks.
func (m Method) Schedule(p int) (*schedule.Schedule, error) {
	switch m.Kind {
	case "bs":
		return schedule.BinarySwap(p)
	case "pp":
		return schedule.Pipeline(p)
	case "ds":
		return schedule.DirectSend(p)
	case "tree":
		return schedule.Tree(p)
	case "radixk":
		factors, err := schedule.DefaultFactors(p)
		if err != nil {
			return nil, err
		}
		return schedule.RadixK(p, factors)
	case "nrt":
		return schedule.NRT(p, m.N)
	case "2nrt":
		return schedule.TwoNRT(p, m.N)
	case "rt":
		return schedule.RT(p, m.N)
	}
	return nil, fmt.Errorf("core: unknown method kind %q", m.Kind)
}

// Config describes one parallel rendering job.
type Config struct {
	// Dataset is a phantom name ("engine", "head", "brain").
	Dataset string
	// VolumeN is the cubic phantom resolution (e.g. 128).
	VolumeN int
	// Camera is the orthographic view.
	Camera shearwarp.Camera
	// Width, Height are the final (warped) image dimensions.
	Width, Height int
	// P is the number of ranks.
	P int
	// Method selects the composition schedule.
	Method Method
	// Codec names the wire compression ("raw", "rle", "trle").
	Codec string
	// Accelerate enables the opacity-coherence render acceleration
	// (exact for the built-in transfer functions).
	Accelerate bool
	// RLE renders from a run-length encoded classified volume (built once
	// per frame set), the Lacroute acceleration structure; byte-identical
	// output, fastest per frame. Takes precedence over Accelerate.
	RLE bool
	// Partition selects the data-partitioning scheme of the render stage:
	// "1d" (default, depth slabs — rank order is depth order) or "2d"
	// (image-space tiles with disjoint footprints).
	Partition string
	// RecvTimeout bounds every composition receive; zero waits forever.
	RecvTimeout time.Duration
	// OnMissing selects the degradation policy for missing contributions:
	// "fail" (default, abort with a typed error), "partial" (substitute
	// blank tiles and flag the result) or "recover" (replicate sub-images
	// to buddies, agree on failures and re-execute for a complete image;
	// requires a RecvTimeout).
	OnMissing string
	// MaxRecoveries bounds the "recover" policy's re-executions; zero means
	// the compositor default, negative forbids re-execution.
	MaxRecoveries int
	// RejoinTimeout, positive, enables the self-healing join path of the
	// "recover" policy: after a membership change the survivors wait this
	// long for a registered spare (SpareRank) to take over a dead slot via
	// merkle-verified state transfer before degrading. Must be identical on
	// every rank. Zero disables rejoin.
	RejoinTimeout time.Duration
	// ScrubReplicas runs the replica scrub exchange after the buddy
	// replica exchange: every holder re-hashes its ward replicas and
	// repairs silent corruption from the live copy. Must be identical on
	// every rank.
	ScrubReplicas bool
	// Pipeline switches composition from the bulk-synchronous step loop to
	// the message-driven per-tile pipeline: composition starts as soon as
	// the first tile's rows are rendered (1-D partition, plain renderer),
	// and completed tiles stream progressively to rank 0.
	Pipeline bool
	// PipelineWindow bounds the tiles one rank advances concurrently under
	// Pipeline; zero means the compositor default, negative is unbounded.
	PipelineWindow int
	// InterleaveSeed, non-zero, seeds the pipelined path's deterministic
	// delivery reordering (the differential test harness's knob).
	InterleaveSeed int64
	// OnPartialFrame, with Pipeline on, fires on rank 0 as each tile of the
	// intermediate image completes — progressive frame delivery.
	OnPartialFrame func(compositor.PartialFrame)
	// AdaptiveDeadline gives each rank a per-peer latency estimator that
	// tightens (never loosens past RecvTimeout) its receive deadlines from
	// observed arrivals, so a browned-out peer is noticed in a round-trip
	// or two instead of a full static timeout.
	AdaptiveDeadline bool
	// Hedge, with Pipeline on, speculatively re-requests overdue tile
	// transfers from the origin rank's buddy replica: a gray (slow, not
	// dead) peer is masked without a recovery epoch, byte-identically.
	Hedge bool
	// HedgeThreshold is how overdue a transfer must be before hedging;
	// zero uses the adaptive estimate (AdaptiveDeadline) or the
	// compositor's built-in default.
	HedgeThreshold time.Duration
	// Health, non-nil, is the peer-health tracker the compositor scores
	// gray-failure signals into; when nil and AdaptiveDeadline or Hedge is
	// set, a per-rank tracker is created internally. Supplying one lets the
	// caller feed transport-level signals (session frame replays) into the
	// same scores — only safe when this Config drives a single rank, since
	// health state must never be shared across ranks.
	Health *gray.Health
	// Telemetry records per-rank render/composite/warp spans and counters
	// for the frame. Nil (the default) disables recording.
	Telemetry *telemetry.Recorder
}

// compositeOptions resolves the fault-tolerance fields into compositor
// options rooted at rank 0. The rank matters when the gray-failure knobs
// are on: estimators and health scores are per-rank state, never shared.
func (cfg Config) compositeOptions(cdc codec.Codec, rank int) (compositor.Options, error) {
	policy, err := compositor.ParsePolicy(cfg.OnMissing)
	if err != nil {
		return compositor.Options{}, err
	}
	opts := compositor.Options{
		Codec:         cdc,
		GatherRoot:    0,
		RecvTimeout:   cfg.RecvTimeout,
		OnMissing:     policy,
		MaxRecoveries: cfg.MaxRecoveries,
		RejoinTimeout: cfg.RejoinTimeout,
		ScrubReplicas: cfg.ScrubReplicas,
		Telemetry:     cfg.Telemetry,
		Pipeline: compositor.PipelineConfig{
			Enabled:        cfg.Pipeline,
			Window:         cfg.PipelineWindow,
			InterleaveSeed: cfg.InterleaveSeed,
			OnPartial:      cfg.OnPartialFrame,
			Hedge:          compositor.HedgeConfig{Enabled: cfg.Hedge, Threshold: cfg.HedgeThreshold},
		},
	}
	if cfg.AdaptiveDeadline {
		opts.Adaptive = gray.NewEstimator(gray.Config{Static: cfg.RecvTimeout})
	}
	if cfg.Health != nil {
		opts.Health = cfg.Health
	} else if cfg.AdaptiveDeadline || cfg.Hedge {
		opts.Health = gray.NewHealth(gray.HealthConfig{}, cfg.Telemetry, rank)
	}
	return opts, nil
}

// renderCtx carries the per-frame render state shared by all ranks.
type renderCtx struct {
	r    *shearwarp.Renderer
	view *shearwarp.View
	rle  *shearwarp.RLEVolume
}

func (cfg Config) newRenderCtx(r *shearwarp.Renderer, view *shearwarp.View) *renderCtx {
	ctx := &renderCtx{r: r, view: view}
	if cfg.RLE {
		ctx.rle = shearwarp.NewRLEVolume(r.Vol, r.TF)
	}
	return ctx
}

// partials renders this rank's partial image under the configured
// partitioning scheme.
func (cfg Config) partials(ctx *renderCtx, rank int) (*raster.Image, error) {
	view := ctx.view
	switch cfg.Partition {
	case "", "1d":
		slabs, err := partition.Slabs1D(view.NK(), cfg.P)
		if err != nil {
			return nil, err
		}
		return cfg.renderSlab(ctx, slabs[rank].Lo, slabs[rank].Hi)
	case "2d":
		wi, hi := view.IntermediateSize()
		tiles, err := partition.Grid2D(wi, hi, cfg.P)
		if err != nil {
			return nil, err
		}
		tl := tiles[rank]
		return ctx.r.RenderTile(view, tl.X0, tl.Y0, tl.X1, tl.Y1)
	}
	return nil, fmt.Errorf("core: unknown partition scheme %q", cfg.Partition)
}

// renderSlab dispatches on the configured acceleration.
func (cfg Config) renderSlab(ctx *renderCtx, lo, hi int) (*raster.Image, error) {
	switch {
	case ctx.rle != nil:
		return ctx.r.RenderSlabRLE(ctx.rle, ctx.view, lo, hi)
	case cfg.Accelerate:
		return ctx.r.RenderSlabAccel(ctx.view, lo, hi)
	}
	return ctx.r.RenderSlab(ctx.view, lo, hi)
}

// FrameReport is the outcome of a parallel frame.
type FrameReport struct {
	Image        *raster.Image // final warped image (on the root)
	Intermediate *raster.Image // composited intermediate image (root)
	RenderTime   time.Duration // slowest rank's render stage
	CompositeAll time.Duration // wall time of the composition stage
	WarpTime     time.Duration
	Reports      []*compositor.Report // per-rank composition reports
}

// RenderParallel runs the pipeline on the in-process fabric: P goroutine
// ranks each render their 1-D slab, composite with the configured method,
// and rank 0 warps the gathered intermediate image.
func RenderParallel(cfg Config) (*FrameReport, error) {
	vol := volume.ByName(cfg.Dataset, cfg.VolumeN)
	if vol == nil {
		return nil, fmt.Errorf("core: unknown dataset %q", cfg.Dataset)
	}
	return RenderParallelVolume(cfg, vol, xfer.ForDataset(cfg.Dataset))
}

// RenderParallelCtx is RenderParallel bounded by a context: a context
// deadline caps the composition's RecvTimeout (so the frame cannot outlive
// the request that asked for it), and a cancellation abandons the wait —
// the worker ranks drain on their own, bounded by those receive deadlines.
// Deadline reporting does not depend on the runtime delivering the context
// timer on time: when the deadline capped RecvTimeout, a receive-deadline
// failure is the request's own deadline manifesting inside the fabric, and
// any result arriving at or after the wall-clock deadline — the capped
// receive timer can beat the context timer by a sliver, and a starved timer
// can leave ctx.Err() nil long past expiry — reports context.DeadlineExceeded.
func RenderParallelCtx(ctx context.Context, cfg Config) (*FrameReport, error) {
	var deadline time.Time
	capped := false
	if dl, ok := ctx.Deadline(); ok {
		remain := time.Until(dl)
		if remain <= 0 {
			return nil, ctx.Err()
		}
		if cfg.RecvTimeout <= 0 || cfg.RecvTimeout > remain {
			cfg.RecvTimeout = remain
			capped = true
		}
		deadline = dl
	}
	type result struct {
		rep *FrameReport
		err error
	}
	ch := make(chan result, 1)
	go func() {
		rep, err := RenderParallel(cfg)
		ch <- result{rep, err}
	}()
	select {
	case res := <-ch:
		if res.err != nil && capped && errors.Is(res.err, comm.ErrDeadline) {
			return nil, fmt.Errorf("core: render deadline exhausted: %w (%v)",
				context.DeadlineExceeded, res.err)
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, fmt.Errorf("core: render outlived its deadline: %w",
				context.DeadlineExceeded)
		}
		return res.rep, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// RenderParallelVolume is RenderParallel with an explicit volume and
// transfer function.
func RenderParallelVolume(cfg Config, vol *volume.Volume, tf *xfer.Func) (*FrameReport, error) {
	r := &shearwarp.Renderer{Vol: vol, TF: tf}
	view, err := r.Factor(cfg.Camera)
	if err != nil {
		return nil, err
	}
	method, err := cfg.Method.ResolveN(cfg.P, cfg.Width*cfg.Height)
	if err != nil {
		return nil, err
	}
	sched, err := method.Schedule(cfg.P)
	if err != nil {
		return nil, err
	}
	cdc, err := codec.ByName(cfg.Codec)
	if err != nil {
		return nil, err
	}

	ctx := cfg.newRenderCtx(r, view)
	out := &FrameReport{Reports: make([]*compositor.Report, cfg.P)}
	renderTimes := make([]time.Duration, cfg.P)
	var mu sync.Mutex
	compositeStart := time.Now()
	err = inproc.Run(cfg.P, func(c comm.Comm) error {
		t0 := time.Now()
		partial, src, err := cfg.startPartials(ctx, c.Rank(), sched.Tiles)
		if err != nil {
			return err
		}
		renderTimes[c.Rank()] = time.Since(t0)
		copts, err := cfg.compositeOptions(cdc, c.Rank())
		if err != nil {
			return err
		}
		copts.Pipeline.Source = src
		img, rep, err := compositor.Run(c, sched, partial, copts)
		if err != nil {
			return err
		}
		renderTimes[c.Rank()] = renderElapsed(src, renderTimes[c.Rank()])
		mu.Lock()
		out.Reports[c.Rank()] = rep
		if img != nil {
			out.Intermediate = img
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.CompositeAll = time.Since(compositeStart)
	for _, rt := range renderTimes {
		if rt > out.RenderTime {
			out.RenderTime = rt
		}
	}
	t0 := time.Now()
	endWarp := cfg.Telemetry.Span(0, telemetry.PhaseWarp, telemetry.CatCompute, telemetry.StepNone)
	out.Image, err = r.Warp(view, out.Intermediate, cfg.Width, cfg.Height)
	endWarp()
	if err != nil {
		return nil, err
	}
	out.WarpTime = time.Since(t0)
	return out, nil
}

// RenderSerial renders the same frame without parallelism — the reference
// the parallel result must match (to quantisation).
func RenderSerial(cfg Config) (*raster.Image, error) {
	vol := volume.ByName(cfg.Dataset, cfg.VolumeN)
	if vol == nil {
		return nil, fmt.Errorf("core: unknown dataset %q", cfg.Dataset)
	}
	r := &shearwarp.Renderer{Vol: vol, TF: xfer.ForDataset(cfg.Dataset)}
	return r.Render(cfg.Camera, cfg.Width, cfg.Height)
}

// RenderRank runs one rank of the pipeline over a caller-provided
// communicator — the building block of the multi-process TCP deployment
// (cmd/rtnode). It returns the final warped image on rank 0.
func RenderRank(c comm.Comm, cfg Config) (*raster.Image, *compositor.Report, error) {
	vol := volume.ByName(cfg.Dataset, cfg.VolumeN)
	if vol == nil {
		return nil, nil, fmt.Errorf("core: unknown dataset %q", cfg.Dataset)
	}
	r := &shearwarp.Renderer{Vol: vol, TF: xfer.ForDataset(cfg.Dataset)}
	view, err := r.Factor(cfg.Camera)
	if err != nil {
		return nil, nil, err
	}
	method, err := cfg.Method.ResolveN(cfg.P, cfg.Width*cfg.Height)
	if err != nil {
		return nil, nil, err
	}
	sched, err := method.Schedule(cfg.P)
	if err != nil {
		return nil, nil, err
	}
	cdc, err := codec.ByName(cfg.Codec)
	if err != nil {
		return nil, nil, err
	}
	partial, src, err := cfg.startPartials(cfg.newRenderCtx(r, view), c.Rank(), sched.Tiles)
	if err != nil {
		return nil, nil, err
	}
	copts, err := cfg.compositeOptions(cdc, c.Rank())
	if err != nil {
		return nil, nil, err
	}
	copts.Pipeline.Source = src
	inter, rep, err := compositor.Run(c, sched, partial, copts)
	if err != nil {
		return nil, nil, err
	}
	if inter == nil {
		return nil, rep, nil
	}
	endWarp := cfg.Telemetry.Span(c.Rank(), telemetry.PhaseWarp, telemetry.CatCompute, telemetry.StepNone)
	final, err := r.Warp(view, inter, cfg.Width, cfg.Height)
	endWarp()
	if err != nil {
		return nil, nil, err
	}
	return final, rep, nil
}

// SpareRank runs one standby rank of the multi-process deployment: instead
// of rendering, it announces itself for the dead slot c.Rank(), restores its
// state from the mesh's merkle-verified transfer, and finishes the frame as
// a full member (cmd/rtnode -spare). Requires the "recover" policy with a
// positive RecvTimeout, and a positive RejoinTimeout bounding the wait for
// admission. Returns the final warped image when this slot is the gather
// root, like RenderRank.
func SpareRank(c comm.Comm, cfg Config) (*raster.Image, *compositor.Report, error) {
	vol := volume.ByName(cfg.Dataset, cfg.VolumeN)
	if vol == nil {
		return nil, nil, fmt.Errorf("core: unknown dataset %q", cfg.Dataset)
	}
	r := &shearwarp.Renderer{Vol: vol, TF: xfer.ForDataset(cfg.Dataset)}
	view, err := r.Factor(cfg.Camera)
	if err != nil {
		return nil, nil, err
	}
	method, err := cfg.Method.ResolveN(cfg.P, cfg.Width*cfg.Height)
	if err != nil {
		return nil, nil, err
	}
	sched, err := method.Schedule(cfg.P)
	if err != nil {
		return nil, nil, err
	}
	cdc, err := codec.ByName(cfg.Codec)
	if err != nil {
		return nil, nil, err
	}
	copts, err := cfg.compositeOptions(cdc, c.Rank())
	if err != nil {
		return nil, nil, err
	}
	inter, rep, err := compositor.RunSpare(c, sched, copts)
	if err != nil {
		return nil, rep, err
	}
	if inter == nil {
		return nil, rep, nil
	}
	endWarp := cfg.Telemetry.Span(c.Rank(), telemetry.PhaseWarp, telemetry.CatCompute, telemetry.StepNone)
	final, err := r.Warp(view, inter, cfg.Width, cfg.Height)
	endWarp()
	if err != nil {
		return nil, nil, err
	}
	return final, rep, nil
}
