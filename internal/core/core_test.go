package core

import (
	"fmt"
	"math"
	"testing"

	"rtcomp/internal/comm"
	"rtcomp/internal/raster"
	"rtcomp/internal/shearwarp"
	"rtcomp/internal/transport/inproc"
)

func testConfig(p int, method string) Config {
	m, err := ParseMethod(method)
	if err != nil {
		panic(err)
	}
	return Config{
		Dataset: "engine",
		VolumeN: 32,
		Camera:  shearwarp.Camera{Yaw: 0.3, Pitch: 0.15},
		Width:   64,
		Height:  64,
		P:       p,
		Method:  m,
		Codec:   "trle",
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]Method{
		"bs":     {Kind: "bs", N: 4},
		"pp":     {Kind: "pp", N: 4},
		"ds":     {Kind: "ds", N: 4},
		"nrt:3":  {Kind: "nrt", N: 3},
		"2nrt:4": {Kind: "2nrt", N: 4},
		"rt:7":   {Kind: "rt", N: 7},
	}
	for s, want := range cases {
		got, err := ParseMethod(s)
		if err != nil || got != want {
			t.Fatalf("ParseMethod(%q) = %+v, %v; want %+v", s, got, err, want)
		}
	}
	for _, s := range []string{"zap", "nrt:x", ""} {
		if _, err := ParseMethod(s); err == nil {
			t.Fatalf("ParseMethod(%q) accepted", s)
		}
	}
}

func TestMethodString(t *testing.T) {
	if s := (Method{Kind: "nrt", N: 3}).String(); s != "nrt:3" {
		t.Fatalf("String = %q", s)
	}
	if s := (Method{Kind: "bs", N: 4}).String(); s != "bs" {
		t.Fatalf("String = %q", s)
	}
}

// The full parallel pipeline must reproduce the serial render (up to the
// association-order quantisation of the render stage).
func TestParallelMatchesSerial(t *testing.T) {
	for _, method := range []string{"bs", "pp", "ds", "nrt:3", "2nrt:4"} {
		p := 4
		cfg := testConfig(p, method)
		serial, err := RenderSerial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RenderParallel(cfg)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if rep.Image == nil || rep.Image.W != 64 || rep.Image.H != 64 {
			t.Fatalf("%s: bad final image", method)
		}
		if d := raster.MaxDiff(rep.Image, serial); d > 4 {
			t.Fatalf("%s: parallel image differs from serial by %d", method, d)
		}
		if rep.RenderTime <= 0 || rep.CompositeAll <= 0 {
			t.Fatalf("%s: missing timings %+v", method, rep)
		}
		if len(rep.Reports) != p || rep.Reports[p-1] == nil {
			t.Fatalf("%s: missing per-rank reports", method)
		}
	}
}

func TestParallelMethodsAgreeWithEachOther(t *testing.T) {
	imgs := map[string]*raster.Image{}
	for _, method := range []string{"bs", "nrt:3", "2nrt:4", "pp"} {
		rep, err := RenderParallel(testConfig(8, method))
		if err != nil {
			t.Fatal(err)
		}
		imgs[method] = rep.Intermediate
	}
	base := imgs["bs"]
	for name, im := range imgs {
		if d := raster.MaxDiff(im, base); d > 3 {
			t.Fatalf("%s intermediate differs from bs by %d", name, d)
		}
	}
}

func TestRenderParallelErrors(t *testing.T) {
	cfg := testConfig(4, "bs")
	cfg.Dataset = "nope"
	if _, err := RenderParallel(cfg); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	cfg = testConfig(3, "bs") // BS needs a power of two
	if _, err := RenderParallel(cfg); err == nil {
		t.Fatal("bs with p=3 accepted")
	}
	cfg = testConfig(4, "nrt:3")
	cfg.Codec = "zip"
	if _, err := RenderParallel(cfg); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// The accelerated render path must not change the pipeline's output.
func TestAcceleratePreservesOutput(t *testing.T) {
	cfg := testConfig(4, "nrt:3")
	plain, err := RenderParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Accelerate = true
	fast, err := RenderParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(plain.Intermediate, fast.Intermediate) {
		t.Fatal("accelerated pipeline differs from plain pipeline")
	}
}

// With a 2-D image-space partition the partial footprints are disjoint, so
// the composited intermediate equals the serial render exactly and the
// composition method does not matter.
func TestPartition2D(t *testing.T) {
	for _, method := range []string{"ds", "nrt:2", "pp"} {
		cfg := testConfig(4, method)
		cfg.Partition = "2d"
		rep, err := RenderParallel(cfg)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		cfg1d := testConfig(4, method)
		full, err := RenderParallel(cfg1d)
		if err != nil {
			t.Fatal(err)
		}
		if d := raster.MaxDiff(rep.Intermediate, full.Intermediate); d > 3 {
			t.Fatalf("%s: 2-D partition intermediate differs from 1-D by %d", method, d)
		}
		// Disjoint footprints: the whole composition moved far fewer
		// non-blank pixels; verify the wire saw real compression benefit.
		var raw int64
		for _, r := range rep.Reports {
			raw += r.RawBytes
		}
		if raw == 0 {
			t.Fatalf("%s: no composition traffic in 2-D mode", method)
		}
	}
	cfg := testConfig(4, "ds")
	cfg.Partition = "3d"
	if _, err := RenderParallel(cfg); err == nil {
		t.Fatal("unknown partition scheme accepted")
	}
}

func TestAutoNMethod(t *testing.T) {
	m, err := ParseMethod("nrt:auto")
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 0 {
		t.Fatalf("auto method N = %d, want 0", m.N)
	}
	resolved, err := m.ResolveN(8, 128*128)
	if err != nil {
		t.Fatal(err)
	}
	if resolved.N < 1 || resolved.N > 32 {
		t.Fatalf("resolved N = %d", resolved.N)
	}
	// 2N_RT auto must resolve to an even N.
	m2, _ := ParseMethod("2nrt:auto")
	resolved2, err := m2.ResolveN(8, 128*128)
	if err != nil {
		t.Fatal(err)
	}
	if resolved2.N%2 != 0 {
		t.Fatalf("2nrt auto N = %d, want even", resolved2.N)
	}
	// Non-RT kinds pass through.
	bs, _ := ParseMethod("bs")
	if r, err := bs.ResolveN(8, 1024); err != nil || r != bs {
		t.Fatalf("bs ResolveN changed the method: %+v, %v", r, err)
	}
	// End-to-end render with auto N.
	cfg := testConfig(4, "nrt:auto")
	rep, err := RenderParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Image == nil {
		t.Fatal("no image with auto N")
	}
}

func TestRenderOrbit(t *testing.T) {
	cfg := testConfig(4, "nrt:2")
	rep, err := RenderOrbit(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Frames) != 6 {
		t.Fatalf("got %d frames", len(rep.Frames))
	}
	// Frames must match individually rendered views.
	for _, f := range []int{0, 3} {
		single := cfg
		single.Camera.Yaw = cfg.Camera.Yaw + 2*math.Pi*float64(f)/6
		want, err := RenderParallel(single)
		if err != nil {
			t.Fatal(err)
		}
		if !raster.Equal(rep.Frames[f], want.Image) {
			t.Fatalf("frame %d differs from standalone render", f)
		}
	}
	// The orbit must actually move: consecutive frames differ.
	if raster.Equal(rep.Frames[0], rep.Frames[3]) {
		t.Fatal("opposite orbit frames identical")
	}
	if _, err := RenderOrbit(cfg, 0); err == nil {
		t.Fatal("zero frames accepted")
	}
}

func TestRLEModePreservesOutput(t *testing.T) {
	cfg := testConfig(4, "2nrt:4")
	plain, err := RenderParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RLE = true
	fast, err := RenderParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(plain.Intermediate, fast.Intermediate) {
		t.Fatal("RLE-volume pipeline differs from plain pipeline")
	}
}

func TestMethodScheduleAllKinds(t *testing.T) {
	for _, s := range []string{"bs", "pp", "ds", "tree", "radixk", "nrt:3", "2nrt:4", "rt:5"} {
		m, err := ParseMethod(s)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := m.Schedule(8)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if sched.P != 8 {
			t.Fatalf("%s: schedule for %d ranks", s, sched.P)
		}
	}
	bad := Method{Kind: "warp", N: 1}
	if _, err := bad.Schedule(8); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := (Method{Kind: "radixk"}).Schedule(6); err == nil {
		t.Fatal("radixk with non-power-of-two P accepted")
	}
}

// RenderRank drives one rank directly over a communicator — the multi-
// process entry point — here exercised on the in-process fabric.
func TestRenderRank(t *testing.T) {
	cfg := testConfig(4, "2nrt:2")
	want, err := RenderParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	imgs := make([]*raster.Image, cfg.P)
	err = inproc.Run(cfg.P, func(c comm.Comm) error {
		img, rep, err := RenderRank(c, cfg)
		if err != nil {
			return err
		}
		if rep == nil {
			return fmt.Errorf("rank %d: no report", c.Rank())
		}
		imgs[c.Rank()] = img
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if imgs[0] == nil {
		t.Fatal("rank 0 returned no image")
	}
	for r := 1; r < cfg.P; r++ {
		if imgs[r] != nil {
			t.Fatalf("rank %d returned an image", r)
		}
	}
	if !raster.Equal(imgs[0], want.Image) {
		t.Fatal("RenderRank image differs from RenderParallel")
	}
	// Bad configs surface as errors on every rank.
	bad := cfg
	bad.Dataset = "zap"
	err = inproc.Run(cfg.P, func(c comm.Comm) error {
		if _, _, err := RenderRank(c, bad); err == nil {
			return fmt.Errorf("unknown dataset accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
