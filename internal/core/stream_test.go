package core

import (
	"sync"
	"testing"

	"rtcomp/internal/compositor"
	"rtcomp/internal/raster"
)

// The pipelined core path must be invisible in the output: same intermediate
// image, same final frame, with composition merely rescheduled around the
// banded render. Both paths merge a step's messages in arrival order, and
// 8-bit "over" is not associative, so schedules whose steps carry several
// incoming fragments (direct-send) may re-associate and land off by a
// quantisation unit per pixel — the same tolerance the serial-oracle core
// tests use. Byte-exactness under reordering is proven separately on binary
// alpha by the compositor differential matrix.
func TestPipelinedCorePreservesOutput(t *testing.T) {
	for _, method := range []string{"bs", "2nrt:4", "ds"} {
		cfg := testConfig(4, method)
		plain, err := RenderParallel(cfg)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		cfg.Pipeline = true
		cfg.InterleaveSeed = 7
		piped, err := RenderParallel(cfg)
		if err != nil {
			t.Fatalf("%s pipelined: %v", method, err)
		}
		if d := raster.MaxDiff(plain.Intermediate, piped.Intermediate); d > 2 {
			t.Fatalf("%s: pipelined intermediate differs from synchronous (maxdiff %d)", method, d)
		}
		if d := raster.MaxDiff(plain.Image, piped.Image); d > 2 {
			t.Fatalf("%s: pipelined final image differs from synchronous (maxdiff %d)", method, d)
		}
	}
}

// Acceleration disables the streaming Source (no row-restricted kernel) but
// not the pipelined composition; output must still be identical.
func TestPipelinedCoreWithAcceleration(t *testing.T) {
	cfg := testConfig(4, "nrt:4")
	cfg.Accelerate = true
	plain, err := RenderParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pipeline = true
	piped, err := RenderParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(plain.Intermediate, piped.Intermediate) {
		t.Fatal("pipelined+accelerated intermediate differs from synchronous")
	}
}

// Progressive delivery through the core facade: rank 0 must see every tile
// of the intermediate image exactly once, monotonically counted, and the
// streamed pixels must match the final intermediate image.
func TestPipelinedCoreProgressiveFrames(t *testing.T) {
	cfg := testConfig(4, "2nrt:4")
	cfg.Pipeline = true
	var mu sync.Mutex
	type frame struct {
		f   compositor.PartialFrame
		pix []byte
	}
	var frames []frame
	cfg.OnPartialFrame = func(f compositor.PartialFrame) {
		mu.Lock()
		frames = append(frames, frame{f, append([]byte(nil), f.Pix...)})
		mu.Unlock()
	}
	rep, err := RenderParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := cfg.Method.Schedule(cfg.P)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != sched.Tiles {
		t.Fatalf("delivered %d progressive tiles, want %d", len(frames), sched.Tiles)
	}
	covered := 0
	seen := map[int]bool{}
	for i, fr := range frames {
		if seen[fr.f.Tile] {
			t.Fatalf("tile %d delivered twice", fr.f.Tile)
		}
		seen[fr.f.Tile] = true
		if fr.f.Done != i+1 || fr.f.Total != sched.Tiles {
			t.Errorf("frame %d: Done/Total = %d/%d, want %d/%d", i, fr.f.Done, fr.f.Total, i+1, sched.Tiles)
		}
		covered += fr.f.Span.Len()
		want := rep.Intermediate.SpanBytes(fr.f.Span)
		for b := range fr.pix {
			if fr.pix[b] != want[b] {
				t.Errorf("tile %d: streamed pixels differ from the final intermediate", fr.f.Tile)
				break
			}
		}
	}
	if covered != rep.Intermediate.NPixels() {
		t.Fatalf("progressive tiles cover %d pixels, want %d", covered, rep.Intermediate.NPixels())
	}
}

// The streaming source's row gating must be exact: a banded render under
// the pipelined compositor reproduces the one-shot render bit for bit even
// with a tiny in-flight window (maximum gating pressure).
func TestPipelinedCoreWindowOne(t *testing.T) {
	cfg := testConfig(4, "nrt:3")
	plain, err := RenderParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pipeline = true
	cfg.PipelineWindow = 1
	piped, err := RenderParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(plain.Intermediate, piped.Intermediate) {
		t.Fatal("window-1 pipelined intermediate differs from synchronous")
	}
}
