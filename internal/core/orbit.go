package core

import (
	"fmt"
	"math"

	"rtcomp/internal/raster"
	"rtcomp/internal/volume"
	"rtcomp/internal/xfer"
)

// OrbitReport is the outcome of a multi-frame orbit render.
type OrbitReport struct {
	Frames []*raster.Image
	// PerFrame holds the per-frame pipeline reports.
	PerFrame []*FrameReport
}

// RenderOrbit renders nframes of a full yaw orbit (the configured camera's
// yaw advanced by 2*pi/nframes per frame, pitch held), building the volume
// and transfer function once and reusing them across frames — the
// animation loop of an interactive viewer. Every frame runs the full
// parallel pipeline: partition, render, composite, warp.
func RenderOrbit(cfg Config, nframes int) (*OrbitReport, error) {
	if nframes < 1 {
		return nil, fmt.Errorf("core: RenderOrbit needs at least one frame, got %d", nframes)
	}
	vol := volume.ByName(cfg.Dataset, cfg.VolumeN)
	if vol == nil {
		return nil, fmt.Errorf("core: unknown dataset %q", cfg.Dataset)
	}
	tf := xfer.ForDataset(cfg.Dataset)
	out := &OrbitReport{
		Frames:   make([]*raster.Image, nframes),
		PerFrame: make([]*FrameReport, nframes),
	}
	baseYaw := cfg.Camera.Yaw
	for f := 0; f < nframes; f++ {
		frameCfg := cfg
		frameCfg.Camera.Yaw = baseYaw + 2*math.Pi*float64(f)/float64(nframes)
		rep, err := RenderParallelVolume(frameCfg, vol, tf)
		if err != nil {
			return nil, fmt.Errorf("core: frame %d: %w", f, err)
		}
		out.Frames[f] = rep.Image
		out.PerFrame[f] = rep
	}
	return out, nil
}
