// The self-healing half of the Recover policy: spare-rank rejoin with
// merkle-verified state transfer, plus the replica scrub exchange.
//
// A standby process calls RunSpare for a dead rank's slot. It broadcasts a
// JOIN-HELLO (re-sent every receive timeout so a hello lost to an aborted
// round is not fatal) and waits for an ADMIT from its buddy. The survivors,
// on every membership change, drain pending hellos, build content-addressed
// snapshots of the state they can contribute (the joiner's sub-image from
// its buddy's replica, and the joiner's ward replicas from their live
// sources), and certify the offers — including every snapshot's merkle
// manifest — through the two-round join agreement, so the commitment the
// joiner verifies against was seen identically by every survivor. The buddy
// then sends the ADMIT carrying the certified manifests and the join epoch,
// the contributors stream their chunks, and the joiner verifies every chunk
// against the certified roots — rejecting corrupt or stale transfers with
// typed statexfer errors — before announcing JOIN-DONE, at which point every
// survivor revives the slot in lockstep and the next epoch composites at
// full capacity over the original (restored) schedule.
package compositor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/statexfer"
	"rtcomp/internal/telemetry"
)

// rejoinChunkSize is the snapshot chunk size of the join transfer and the
// scrubber's hashing granularity: small enough that even a single-tile
// sub-image spans several chunks (so corruption is rejected after one chunk
// and the verified-chunk counters exercise the multi-chunk path), large
// enough that a real frame is a handful of messages.
const rejoinChunkSize = 4 << 10

// Epoch-0-style reserved tags of the scrub exchange, in the same sub-2^40
// band as the replica exchange (step tags always carry step+1 >= 1 in bits
// 40+). The exchange runs once, before epoch 0's attempt, so the tags need
// no epoch scoping.
const (
	tagScrubReq = (1 << 39) + 0x5351 // scrub refresh request ("SQ")
	tagScrubRep = (1 << 39) + 0x5352 // scrub refresh reply ("SR")
)

// Section names inside a join snapshot. The subimage section restores the
// joiner's own layer; a ward section restores the replica the joiner held
// for rank W (so a later death of W is still recoverable — the headline
// chaos scenario: kill a rank, rejoin a spare, then kill its buddy).
const (
	secSubimage   = "subimage"
	secWardPrefix = "ward:"
)

// joinNonce distinguishes spare incarnations process-wide: an ADMIT echoes
// the nonce, so a spare never acts on an admission meant for a predecessor.
var joinNonce atomic.Uint64

// RejoinTimeoutError is returned by RunSpare when the bounded rejoin window
// elapsed without an admission — the mesh never saw the hello, or decided to
// degrade instead.
type RejoinTimeoutError struct {
	Ranks   []int
	Timeout time.Duration
}

func (e *RejoinTimeoutError) Error() string {
	return fmt.Sprintf("compositor: rank slots %v were not rejoined within %v", e.Ranks, e.Timeout)
}

// encodeRawImage frames an image for a join snapshot or a scrub refresh:
// uvarint width, uvarint height, raw pixels. No codec — the merkle tree
// provides integrity and the transfer is off the frame's critical path.
func encodeRawImage(img *raster.Image) []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+len(img.Pix))
	buf = binary.AppendUvarint(buf, uint64(img.W))
	buf = binary.AppendUvarint(buf, uint64(img.H))
	return append(buf, img.Pix...)
}

// decodeRawImage inverts encodeRawImage, copying the pixels out.
func decodeRawImage(payload []byte) (*raster.Image, error) {
	w, off := binary.Uvarint(payload)
	if off <= 0 || w > 1<<20 {
		return nil, fmt.Errorf("compositor: corrupt raw image width")
	}
	rest := payload[off:]
	h, off := binary.Uvarint(rest)
	if off <= 0 || h > 1<<20 {
		return nil, fmt.Errorf("compositor: corrupt raw image height")
	}
	rest = rest[off:]
	img := raster.New(int(w), int(h))
	if len(rest) != len(img.Pix) {
		return nil, fmt.Errorf("compositor: raw image has %d pixel bytes, want %d", len(rest), len(img.Pix))
	}
	copy(img.Pix, rest)
	return img, nil
}

func scrubKey(ward int) string { return "replica:" + strconv.Itoa(ward) }

// attemptRejoin gives a registered spare one bounded chance to take over a
// dead slot, right after a membership change and before the budget decides
// to degrade. It reports how many slots were revived; a successful rejoin
// resets the caller's recovery budget.
func (rx *rexec) attemptRejoin() (int, error) {
	deadline := time.Now().Add(rx.opts.RejoinTimeout)
	n, err := rx.rejoinOnce(deadline)
	if err != nil {
		return 0, err
	}
	if n > 0 {
		rx.rep.Rejoined = true
		rx.rep.RejoinEpochs++
		rx.tel.Add(rx.me, telemetry.CtrRejoins, 1)
	}
	return n, nil
}

// rejoinOnce runs one join round on a survivor: drain hellos, certify the
// offers, admit at most one joiner (lowest certified rank with a verifiable
// buddy commitment), stream this rank's contribution, wait for JOIN-DONE and
// revive. It returns the number of slots revived (0 or 1); 0 with a nil
// error means no admissible spare this round — the caller degrades.
//
// At most one slot is revived per membership change: the freshly revived
// member re-enters the composition immediately, so a second agreement round
// behind its back would stall against its silence. Additional dead slots get
// their chance at the next membership change (or the next frame).
func (rx *rexec) rejoinOnce(deadline time.Time) (int, error) {
	endJoin := rx.tel.Span(rx.me, telemetry.PhaseJoin, telemetry.CatNetwork, telemetry.StepNone)
	defer endJoin()
	p := rx.c.Size()
	deadSet := rx.mem.Dead()

	// Drain pending JOIN-HELLOs from the dead slots. The first wait is the
	// rejoin window itself (a spare may not have announced yet); once any
	// hello has landed, short coalescing polls pick up stragglers so every
	// survivor converges on the same set quickly.
	hellos := map[int]uint64{}
	keys := make([]comm.MsgKey, 0, len(deadSet))
	for _, d := range deadSet {
		keys = append(keys, comm.MsgKey{From: d, Tag: comm.TagJoinHello})
	}
	for len(keys) > 0 {
		timeout := noticePollTimeout
		if len(hellos) == 0 {
			if timeout = time.Until(deadline); timeout < noticePollTimeout {
				timeout = noticePollTimeout
			}
		}
		from, _, payload, err := rx.c.RecvAnyTimeout(keys, timeout)
		if err != nil {
			var perr *comm.PeerError
			if errors.As(err, &perr) {
				keys = dropJoinKeys(keys, perr.Rank)
				continue
			}
			if errors.Is(err, comm.ErrDeadline) {
				break
			}
			return 0, fmt.Errorf("compositor: draining join hellos: %w", err)
		}
		h, derr := comm.DecodeJoinHello(payload)
		bufpool.Put(payload)
		if derr != nil || h.Rank != from {
			continue // garbage on the hello tag proves nothing
		}
		if h.Nonce >= hellos[from] {
			hellos[from] = h.Nonce // latest incarnation wins; re-sent hellos coalesce
		}
	}

	// Build this rank's offers: for each announced joiner, snapshot the
	// state this rank can contribute, commit its merkle manifest.
	joinEpoch := rx.mem.Epoch() + 1
	var offers []comm.JoinOffer
	snaps := map[int]*statexfer.Snapshot{}
	for r, nonce := range hellos {
		var secs []statexfer.Section
		if schedule.Buddy(r, p) == rx.me {
			if img := rx.replicas[r]; img != nil {
				secs = append(secs, statexfer.Section{Name: secSubimage, Data: encodeRawImage(img)})
			}
		}
		if schedule.Buddy(rx.me, p) == r {
			// The joiner wards this rank: restore its replica of this rank's
			// sub-image from the live copy.
			secs = append(secs, statexfer.Section{Name: secWardPrefix + strconv.Itoa(rx.me), Data: encodeRawImage(rx.local)})
		}
		offer := comm.JoinOffer{Rank: r, Nonce: nonce}
		if len(secs) > 0 {
			snap, err := statexfer.Build(r, rx.me, joinEpoch, secs, rejoinChunkSize)
			if err != nil {
				return 0, err
			}
			snaps[r] = snap
			offer.Commits = []comm.JoinCommit{{Source: rx.me, Manifest: snap.Manifest.Encode()}}
		}
		offers = append(offers, offer)
	}

	// Certify the union. The timeout is padded by the remaining rejoin
	// window: a peer that heard its hello instantly may reach the agreement
	// up to a full window earlier than one that waited it out.
	agreeTimeout := rx.agreeTO
	if pad := time.Until(deadline); pad > 0 {
		agreeTimeout += pad
	}
	certified, err := comm.AgreeJoin(rx.c, rx.mem, offers, agreeTimeout)
	if err != nil {
		return 0, err
	}
	if certified == nil {
		return 0, nil // aborted: a survivor was silent; the failure machinery decides
	}

	// Deterministically pick the joiner: the lowest certified dead rank
	// whose buddy committed a verifiable subimage snapshot. Every survivor
	// sees the identical certified set, so every survivor picks the same.
	joiner := -1
	var admit comm.JoinAdmit
	for _, o := range certified {
		if o.Rank < 0 || o.Rank >= p || rx.mem.Alive(o.Rank) {
			continue
		}
		var valid []comm.JoinCommit
		buddyCommitted := false
		for _, cm := range o.Commits {
			m, derr := statexfer.DecodeManifest(cm.Manifest)
			if derr != nil || m.Source != cm.Source || statexfer.CheckIdentity(m, o.Rank, joinEpoch) != nil {
				continue // stale or garbled commitment: never certify it to the joiner
			}
			valid = append(valid, cm)
			if cm.Source == schedule.Buddy(o.Rank, p) {
				buddyCommitted = true
			}
		}
		if !buddyCommitted {
			continue // nobody can restore the sub-image; the slot stays dead
		}
		var stillDead []int
		for _, d := range deadSet {
			if d != o.Rank {
				stillDead = append(stillDead, d)
			}
		}
		joiner = o.Rank
		admit = comm.JoinAdmit{Nonce: o.Nonce, Epoch: joinEpoch, Dead: stillDead, Commits: valid}
		break
	}
	if joiner < 0 {
		return 0, nil
	}

	// The buddy sponsors: it sends the ADMIT. Every certified contributor
	// streams its chunks. All sends are best-effort — if the spare died, the
	// JOIN-DONE wait below times out identically on every survivor.
	if schedule.Buddy(joiner, p) == rx.me {
		_ = rx.c.Send(joiner, comm.TagJoinAdmit, admit.Encode())
	}
	if snap := snaps[joiner]; snap != nil && commitsHaveSource(admit.Commits, rx.me) {
		endXfer := rx.tel.Span(rx.me, telemetry.PhaseXfer, telemetry.CatNetwork, telemetry.StepNone)
		for i := 0; i < snap.NumChunks(); i++ {
			_ = rx.c.Send(joiner, comm.JoinXferTag(joinEpoch, i), snap.ChunkFrame(i))
		}
		endXfer()
	}

	data, err := rx.c.RecvTimeout(joiner, comm.JoinDoneTag(joinEpoch), agreeTimeout)
	if err != nil {
		if comm.IsRecoverable(err) {
			rx.tel.Flight(rx.me, telemetry.FlightJoin, telemetry.StepNone, -1, -1,
				fmt.Sprintf("join of rank %d failed: no JOIN-DONE", joiner))
			return 0, nil
		}
		return 0, fmt.Errorf("compositor: waiting for JOIN-DONE from rank %d: %w", joiner, err)
	}
	ok, _, derr := comm.DecodeJoinDone(data)
	bufpool.Put(data)
	if derr != nil || !ok {
		rx.tel.Flight(rx.me, telemetry.FlightJoin, telemetry.StepNone, -1, -1,
			fmt.Sprintf("join of rank %d failed: transfer rejected", joiner))
		return 0, nil
	}
	rx.mem.Revive([]int{joiner})
	rx.rep.RejoinedRanks = append(rx.rep.RejoinedRanks, joiner)
	rx.tel.Flight(rx.me, telemetry.FlightJoin, telemetry.StepNone, -1, -1,
		fmt.Sprintf("rank %d rejoined at epoch %d", joiner, rx.mem.Epoch()))
	return 1, nil
}

func commitsHaveSource(commits []comm.JoinCommit, source int) bool {
	for _, c := range commits {
		if c.Source == source {
			return true
		}
	}
	return false
}

func dropJoinKeys(keys []comm.MsgKey, rank int) []comm.MsgKey {
	out := keys[:0]
	for _, k := range keys {
		if k.From != rank {
			out = append(out, k)
		}
	}
	return out
}

// RunSpare runs a standby process that takes over the given (dead) rank slot
// of a Recover-policy composition: it announces itself, receives the
// merkle-verified state transfer, and continues the composition as a full
// member — returning the same results Run would have. Requires positive
// RecvTimeout and RejoinTimeout; returns *RejoinTimeoutError when the mesh
// never admits it within the window, and a typed statexfer error when the
// transfer is corrupt or stale.
func RunSpare(c comm.Comm, sched *schedule.Schedule, opts Options) (*raster.Image, *Report, error) {
	if c.Size() != sched.P {
		return nil, nil, fmt.Errorf("compositor: communicator has %d ranks, schedule wants %d", c.Size(), sched.P)
	}
	if opts.RecvTimeout <= 0 || opts.RejoinTimeout <= 0 {
		return nil, nil, fmt.Errorf("compositor: RunSpare requires positive RecvTimeout and RejoinTimeout")
	}
	cdc := opts.Codec
	if cdc == nil {
		cdc = codec.Raw{}
	}
	me := c.Rank()
	tel := opts.Telemetry
	p := sched.P
	nonce := joinNonce.Add(1)
	hello := comm.JoinHello{Rank: me, Nonce: nonce}.Encode()
	deadline := time.Now().Add(opts.RejoinTimeout)
	broadcastHello := func() {
		for r := 0; r < p; r++ {
			if r != me {
				_ = c.Send(r, comm.TagJoinHello, hello)
			}
		}
	}
	broadcastHello()

	// Wait for the buddy's ADMIT, re-announcing every receive timeout so a
	// hello consumed by an aborted join round does not strand this spare.
	sponsor := schedule.Buddy(me, p)
	var admit comm.JoinAdmit
	endJoin := tel.Span(me, telemetry.PhaseJoin, telemetry.CatNetwork, telemetry.StepNone)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			endJoin()
			return nil, nil, &RejoinTimeoutError{Ranks: []int{me}, Timeout: opts.RejoinTimeout}
		}
		if remain > opts.RecvTimeout {
			remain = opts.RecvTimeout
		}
		payload, err := c.RecvTimeout(sponsor, comm.TagJoinAdmit, remain)
		if err != nil {
			if errors.Is(err, comm.ErrDeadline) {
				broadcastHello()
				continue
			}
			if comm.IsRecoverable(err) {
				continue // the sponsor itself may be recovering; keep waiting
			}
			endJoin()
			return nil, nil, fmt.Errorf("compositor: waiting for join admit: %w", err)
		}
		a, derr := comm.DecodeJoinAdmit(payload)
		bufpool.Put(payload)
		if derr != nil || a.Nonce != nonce {
			continue // garbled, or an admission meant for a predecessor
		}
		admit = a
		break
	}
	endJoin()

	// The certified manifests gate everything received from here on. A
	// manifest for another joiner or epoch is stale by construction.
	deadSlot := make([]bool, p)
	for _, d := range admit.Dead {
		if d >= 0 && d < p {
			deadSlot[d] = true
		}
	}
	sendDone := func(ok bool, verified int) {
		frame := comm.EncodeJoinDone(ok, verified)
		for r := 0; r < p; r++ {
			if r != me && !deadSlot[r] {
				_ = c.Send(r, comm.JoinDoneTag(admit.Epoch), frame)
			}
		}
	}
	asms := map[int]*statexfer.Assembler{}
	mans := map[int]statexfer.Manifest{}
	for _, cm := range admit.Commits {
		m, err := statexfer.DecodeManifest(cm.Manifest)
		if err != nil {
			sendDone(false, 0)
			return nil, nil, fmt.Errorf("compositor: manifest from rank %d: %w", cm.Source, err)
		}
		if err := statexfer.CheckIdentity(m, me, admit.Epoch); err != nil {
			sendDone(false, 0)
			return nil, nil, fmt.Errorf("compositor: manifest from rank %d: %w", cm.Source, err)
		}
		if m.Source != cm.Source {
			sendDone(false, 0)
			return nil, nil, fmt.Errorf("compositor: manifest from rank %d claims source %d: %w", cm.Source, m.Source, statexfer.ErrStale)
		}
		a, err := statexfer.NewAssembler(m)
		if err != nil {
			sendDone(false, 0)
			return nil, nil, fmt.Errorf("compositor: manifest from rank %d: %w", cm.Source, err)
		}
		asms[cm.Source] = a
		mans[cm.Source] = m
	}
	if _, ok := asms[sponsor]; !ok {
		sendDone(false, 0)
		return nil, nil, fmt.Errorf("compositor: admit carries no commitment from sponsor %d: %w", sponsor, statexfer.ErrStale)
	}

	// Receive and verify the chunk streams. Every chunk is checked against
	// the certified root before it is placed; one bad chunk rejects the
	// whole transfer with a typed error — the survivors learn via JOIN-DONE
	// and keep recovering without this spare.
	endXfer := tel.Span(me, telemetry.PhaseXfer, telemetry.CatNetwork, telemetry.StepNone)
	defer endXfer()
	verified := 0
	sources := make([]int, 0, len(asms))
	for s := range asms {
		sources = append(sources, s)
	}
	sort.Ints(sources)
	for {
		var keys []comm.MsgKey
		for _, s := range sources {
			a := asms[s]
			for i := 0; i < mans[s].NumChunks(); i++ {
				if !a.Has(i) {
					keys = append(keys, comm.MsgKey{From: s, Tag: comm.JoinXferTag(admit.Epoch, i)})
				}
			}
		}
		if len(keys) == 0 {
			break
		}
		from, _, payload, err := c.RecvAnyTimeout(keys, opts.RecvTimeout)
		if err != nil {
			sendDone(false, verified)
			return nil, nil, fmt.Errorf("compositor: join transfer from the mesh stalled: %w", err)
		}
		fresh, err := asms[from].AddFrame(payload)
		bufpool.Put(payload)
		if err != nil {
			tel.Add(me, telemetry.CtrRejoinRejectedChunks, 1)
			sendDone(false, verified)
			return nil, nil, fmt.Errorf("compositor: join chunk from rank %d: %w", from, err)
		}
		if fresh {
			verified++
			tel.Add(me, telemetry.CtrRejoinVerifiedChunks, 1)
		}
	}

	// Restore the rank state from the verified blobs.
	var local *raster.Image
	replicas := map[int]*raster.Image{}
	for _, s := range sources {
		blob, err := asms[s].Bytes()
		if err != nil {
			sendDone(false, verified)
			return nil, nil, err
		}
		secs, err := statexfer.DecodeSections(blob)
		if err != nil {
			sendDone(false, verified)
			return nil, nil, fmt.Errorf("compositor: snapshot from rank %d: %w", s, err)
		}
		for _, sec := range secs {
			switch {
			case sec.Name == secSubimage:
				img, derr := decodeRawImage(sec.Data)
				if derr != nil {
					sendDone(false, verified)
					return nil, nil, derr
				}
				local = img
			case strings.HasPrefix(sec.Name, secWardPrefix):
				w, aerr := strconv.Atoi(sec.Name[len(secWardPrefix):])
				if aerr != nil || w < 0 || w >= p {
					continue
				}
				img, derr := decodeRawImage(sec.Data)
				if derr != nil {
					sendDone(false, verified)
					return nil, nil, derr
				}
				replicas[w] = img
			}
		}
	}
	if local == nil {
		sendDone(false, verified)
		return nil, nil, fmt.Errorf("compositor: join transfer restored no sub-image: %w", statexfer.ErrIncomplete)
	}
	sendDone(true, verified)
	tel.Add(me, telemetry.CtrRejoins, 1)
	tel.Flight(me, telemetry.FlightJoin, telemetry.StepNone, -1, -1,
		fmt.Sprintf("rejoined slot %d at epoch %d, %d chunks verified", me, admit.Epoch, verified))

	// Continue as a full member: the same epoch engine the survivors run,
	// resumed at the certified join epoch with the certified dead set.
	maxRec := opts.MaxRecoveries
	if maxRec == 0 {
		maxRec = DefaultMaxRecoveries
	} else if maxRec < 0 {
		maxRec = 0
	}
	agreeTO := opts.AgreeTimeout
	if agreeTO <= 0 {
		agreeTO = 3 * opts.RecvTimeout
	}
	rx := &rexec{
		c:        c,
		sched:    sched,
		local:    local,
		opts:     opts,
		cdc:      cdc,
		rep:      &Report{Rank: me, Rejoined: true, RejoinEpochs: 1, RejoinedRanks: []int{me}},
		tel:      tel,
		me:       me,
		mem:      comm.Resume(p, admit.Epoch, admit.Dead),
		scr:      newRunScratch(),
		maxRec:   maxRec,
		agreeTO:  agreeTO,
		replicas: replicas,
	}
	defer rx.scr.release()
	if opts.ScrubReplicas {
		// Track the restored replicas so a later scrub-style verification
		// (and the next frame's exchange) can fingerprint them; the exchange
		// itself ran at epoch 0 and is not repeated mid-composition.
		rx.scrub = statexfer.NewScrubber(rejoinChunkSize)
		for w, img := range replicas {
			rx.scrub.Track(scrubKey(w), img.Pix)
		}
	}
	return rx.loop(false)
}

// scrubReplicas is the replica scrub exchange, run once after the buddy
// exchange when Options.ScrubReplicas is set. Every holder fingerprints its
// ward replicas, re-verifies them, and asks each ward for a live refresh of
// any replica that is missing or fails verification; a refresh that matches
// the recorded root replaces the corrupt copy (scrub_repaired), one that
// does not is counted scrub_failed and the corrupt copy is kept (the
// compose-partial machinery still prefers a suspect replica to none).
// Communication failures abort epoch 0 exactly like the buddy exchange.
func (rx *rexec) scrubReplicas() (bool, error) {
	p := rx.c.Size()
	if p <= 1 {
		return false, nil
	}
	end := rx.tel.Span(rx.me, telemetry.PhaseScrub, telemetry.CatCompute, telemetry.StepNone)
	defer end()
	rx.scrub = statexfer.NewScrubber(rejoinChunkSize)
	for w, img := range rx.replicas {
		rx.scrub.Track(scrubKey(w), img.Pix)
	}
	if hook := rx.opts.hookReplicas; hook != nil {
		hook(rx.me, rx.replicas) // test seam: corrupt after the roots are recorded
	}

	// Request a refresh from each ward whose replica is missing or fails
	// re-verification; report the clean ones.
	aborted := false
	var flagged []int
	for _, w := range schedule.Wards(rx.me, p) {
		req := byte(0)
		if img := rx.replicas[w]; img != nil && rx.scrub.Verify(scrubKey(w), img.Pix) {
			rx.tel.Add(rx.me, telemetry.CtrScrubOK, 1)
		} else {
			req = 1
			flagged = append(flagged, w)
		}
		if err := rx.c.Send(w, tagScrubReq, []byte{req}); err != nil {
			if !comm.IsRecoverable(err) {
				return false, fmt.Errorf("compositor: scrub request to rank %d: %w", w, err)
			}
			aborted = rx.abort(suspectsOf(err, w))
		}
	}

	// Serve the one request this rank receives (from its buddy — the unique
	// rank warding this rank's replica).
	buddy := schedule.Buddy(rx.me, p)
	payload, err := rx.c.RecvTimeout(buddy, tagScrubReq, rx.opts.RecvTimeout)
	if err != nil {
		if !comm.IsRecoverable(err) {
			return false, fmt.Errorf("compositor: scrub request from rank %d: %w", buddy, err)
		}
		aborted = rx.abort(suspectsOf(err, buddy))
	} else {
		want := len(payload) == 1 && payload[0] == 1
		bufpool.Put(payload)
		if want {
			if serr := rx.c.Send(buddy, tagScrubRep, encodeRawImage(rx.local)); serr != nil {
				if !comm.IsRecoverable(serr) {
					return false, fmt.Errorf("compositor: scrub refresh to rank %d: %w", buddy, serr)
				}
				aborted = rx.abort(suspectsOf(serr, buddy))
			}
		}
	}

	// Collect the refreshes for the flagged wards and verify each against
	// the root recorded at exchange time.
	for _, w := range flagged {
		payload, err := rx.c.RecvTimeout(w, tagScrubRep, rx.opts.RecvTimeout)
		if err != nil {
			if !comm.IsRecoverable(err) {
				return false, fmt.Errorf("compositor: scrub refresh from rank %d: %w", w, err)
			}
			aborted = rx.abort(suspectsOf(err, w))
			continue
		}
		img, derr := decodeRawImage(payload)
		bufpool.Put(payload)
		if derr != nil {
			rx.tel.Add(rx.me, telemetry.CtrScrubFailed, 1)
			continue
		}
		switch {
		case rx.scrub.Tracked(scrubKey(w)) && rx.scrub.Verify(scrubKey(w), img.Pix):
			// The live copy matches the fingerprint recorded at exchange
			// time: the held replica rotted, the refresh repairs it.
			rx.replicas[w] = img
			rx.tel.Add(rx.me, telemetry.CtrScrubRepaired, 1)
		case !rx.scrub.Tracked(scrubKey(w)):
			// No fingerprint — the replica never arrived in the exchange.
			// Adopt the live copy and fingerprint it now.
			rx.replicas[w] = img
			rx.scrub.Track(scrubKey(w), img.Pix)
			rx.tel.Add(rx.me, telemetry.CtrScrubRepaired, 1)
		default:
			// The live copy disagrees with the recorded root: the exchange
			// itself was corrupted, nothing trustworthy to restore from.
			rx.tel.Add(rx.me, telemetry.CtrScrubFailed, 1)
		}
	}
	return aborted, nil
}
