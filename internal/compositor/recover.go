// The recovery engine of the Recover policy: buddy replication of the
// initial sub-images, silence-based failure agreement, schedule repair over
// the survivors and bounded re-execution — so a composition that loses a
// rank mid-frame still delivers the complete, pixel-exact image instead of
// a degraded one.
//
// The protocol runs in epochs. Epoch 0 ships every rank's encoded initial
// sub-image to a deterministic buddy (schedule.Buddy) and then executes the
// original schedule. Any failure signal — a missed receive deadline, a
// peer error, a FAILED notice from another rank — aborts the attempt: the
// aborting rank broadcasts a best-effort notice and falls through to the
// membership agreement (comm.Agree), which every live rank runs after every
// attempt, completed or aborted, and which doubles as the commit barrier.
// When the agreement declares new ranks dead, the survivors advance the
// epoch in lockstep, repair the schedule (schedule.Repair) so each dead
// rank's layer is contributed by its buddy from the replica, and re-execute
// under epoch-scoped tags (stale traffic from the aborted attempt dies
// unread under its old tags). When the agreement is clean and the local
// attempt completed, the epoch commits. When the recovery budget is
// exhausted, or a dead rank's replica died with its buddy, one final
// compose-partial epoch salvages what it can and the result is forcibly
// flagged Degraded — it was never certified complete.
package compositor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"rtcomp/internal/bufpool"
	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/fragstore"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/statexfer"
	"rtcomp/internal/telemetry"
)

// DefaultMaxRecoveries is the re-execution budget when Options.MaxRecoveries
// is zero: enough for one genuine failure plus one false alarm.
const DefaultMaxRecoveries = 2

// Reserved epoch-0 tags of the recovery protocol, below 2^40 like
// tagGatherFinal (step tags always carry step+1 >= 1 in bits 40+).
const (
	tagReplica   = (1 << 39) + 0x5250 // buddy replica exchange ("RP")
	tagCommitImg = (1 << 39) + 0x434D // certified-image broadcast ("CM")
)

func commitTag(epoch int) int { return epoch<<56 | tagCommitImg }

// noticePollTimeout bounds the post-agreement notice poll of a completed
// rank. An aborter sends its notice before its agreement pings, and the
// fabrics deliver per-pair in order, so by the time the agreement has heard
// the aborter the notice is already in the mailbox — the poll only needs a
// nonzero budget to look.
const noticePollTimeout = 5 * time.Millisecond

// rexec is the per-rank state of one recovering composition.
type rexec struct {
	c     comm.Comm
	sched *schedule.Schedule
	local *raster.Image
	opts  Options
	cdc   codec.Codec
	rep   *Report
	tel   *telemetry.Recorder
	me    int
	mem   *comm.Membership
	scr   *runScratch // reused across epochs; an abort does not invalidate it

	// replicas holds the ward sub-images this rank received in the initial
	// buddy exchange — the recovery source, and (when hedging is enabled)
	// the material the pipelined attempt serves hedge requests from.
	replicas map[int]*raster.Image

	// noticeSent guards the one FAILED notice this rank may broadcast per
	// epoch (the notice tag is unique per epoch).
	noticeSent bool

	// maxRec and agreeTO are the resolved recovery budget and agreement
	// timeout (see runRecover); loop() shares them with the spare path.
	maxRec  int
	agreeTO time.Duration

	// scrub fingerprints the held replicas so the scrub exchange (and a
	// rejoin's ward verification) can detect silent corruption. Nil unless
	// Options.ScrubReplicas is set.
	scrub *statexfer.Scrubber
}

// abort broadcasts this epoch's FAILED notice (once) naming the suspected
// ranks, and returns true so callers can `return nil, rx.abort(...), nil`.
func (rx *rexec) abort(suspects []int) bool {
	if !rx.noticeSent {
		rx.noticeSent = true
		comm.BroadcastFailure(rx.c, rx.mem, suspects)
		rx.tel.Add(rx.me, telemetry.CtrFailNotices, 1)
	}
	return true
}

// graceOrEscalate is the brownout-vs-death decision at a receive deadline:
// it records a deadline miss against every suspect and reports whether the
// attempt should keep waiting (grace). Without health scoring the answer is
// always to abort — the pre-existing silence-only semantics. With it, only
// a suspect whose misbehavior is sustained past the escalation bar hands
// the attempt to failure agreement; a slow-but-delivering peer's score
// decays on every arrival and never gets there.
func (rx *rexec) graceOrEscalate(suspects []int) bool {
	for _, s := range suspects {
		rx.opts.Health.DeadlineMiss(s)
	}
	if rx.opts.Health == nil || len(suspects) == 0 {
		return false
	}
	for _, s := range suspects {
		if rx.opts.Health.ShouldEscalate(s) {
			rx.tel.Add(rx.me, telemetry.CtrHealthEscalations, 1)
			return false
		}
	}
	rx.tel.Add(rx.me, telemetry.CtrDeadlineGrace, 1)
	return true
}

// suspectsOf attributes a recoverable error to a rank: the named peer when
// the error carries one, otherwise the given counterpart of the failed
// operation.
func suspectsOf(err error, fallback int) []int {
	var perr *comm.PeerError
	if errors.As(err, &perr) {
		return []int{perr.Rank}
	}
	return []int{fallback}
}

// runRecover executes the composition under the Recover policy.
func runRecover(c comm.Comm, sched *schedule.Schedule, local *raster.Image, opts Options, cdc codec.Codec) (*raster.Image, *Report, error) {
	if opts.RecvTimeout <= 0 {
		return nil, nil, fmt.Errorf("compositor: the recover policy requires a positive RecvTimeout (failure detection is deadline-based)")
	}
	maxRec := opts.MaxRecoveries
	if maxRec == 0 {
		maxRec = DefaultMaxRecoveries
	} else if maxRec < 0 {
		maxRec = 0
	}
	agreeTO := opts.AgreeTimeout
	if agreeTO <= 0 {
		agreeTO = 3 * opts.RecvTimeout
	}
	rx := &rexec{
		c:       c,
		sched:   sched,
		local:   local,
		opts:    opts,
		cdc:     cdc,
		rep:     &Report{Rank: c.Rank()},
		tel:     opts.Telemetry,
		me:      c.Rank(),
		mem:     comm.NewMembership(sched.P),
		scr:     newRunScratch(),
		maxRec:  maxRec,
		agreeTO: agreeTO,
	}
	defer rx.scr.release()
	if src := opts.Pipeline.Source; opts.Pipeline.Enabled && src != nil {
		// The replica exchange ships the complete local sub-image, so the
		// render must finish before replication: Recover trades render
		// overlap for a certifiable replica. Later WaitTile calls from the
		// pipelined attempt return immediately.
		for t, span := range sched.TileSpans(local.NPixels()) {
			if err := src.WaitTile(t, span); err != nil {
				return nil, nil, fmt.Errorf("compositor: tile %d render: %w", t, err)
			}
		}
	}
	replicas, aborted, err := rx.exchangeReplicas()
	if err != nil {
		return nil, nil, err
	}
	rx.replicas = replicas
	if opts.ScrubReplicas {
		// The scrub exchange runs even on an aborted epoch 0: every rank
		// participates in lockstep (the exchange kept collecting replicas
		// until its deadline), so the protocol stays matched; a rank that
		// died mid-exchange just surfaces as one more deadline-driven abort.
		scrubAborted, err := rx.scrubReplicas()
		if err != nil {
			return nil, nil, err
		}
		aborted = aborted || scrubAborted
	}
	return rx.loop(aborted)
}

// loop is the epoch engine shared by the survivors (runRecover) and a
// rejoined spare (RunSpare): attempt, agreement, commit-or-advance, bounded
// rejoin of spares after every membership change, and the compose-partial
// fallback once the budget is spent or the dead set is unrecoverable.
func (rx *rexec) loop(aborted bool) (*raster.Image, *Report, error) {
	c, sched, opts := rx.c, rx.sched, rx.opts
	recoveries := 0
	var final *raster.Image
	var err error
	for {
		if !aborted {
			var plan *schedule.Schedule
			var owners []int
			// Restore reverts to the original schedule (and owner map) when
			// every failed rank has rejoined — the healed mesh composites at
			// full pre-failure capacity.
			if plan, owners, err = schedule.Restore(sched, rx.mem.Dead()); err != nil {
				return nil, nil, err
			}
			var endRecover func()
			if rx.mem.Epoch() > 0 {
				endRecover = rx.tel.Span(rx.me, telemetry.PhaseRecover, telemetry.CatCompute, telemetry.StepNone)
			}
			if rx.mem.Epoch() == 0 && opts.Pipeline.Enabled {
				// Only the first attempt is pipelined. runPipelined joins
				// every worker and drains the in-flight window before
				// returning, so an aborted attempt reaches the agreement
				// below fully quiesced; re-executions over repaired
				// schedules run synchronously.
				final, aborted, err = runPipelined(c, plan, rx.local, opts, rx.cdc, rx.rep, rx)
			} else {
				final, aborted, err = rx.epochAttempt(plan, owners, rx.replicas)
			}
			if endRecover != nil {
				endRecover()
			}
			if err != nil {
				return nil, nil, err
			}
		}

		endAgree := rx.tel.Span(rx.me, telemetry.PhaseAgree, telemetry.CatNetwork, telemetry.StepNone)
		newDead, err := comm.Agree(c, rx.mem, rx.agreeTO)
		endAgree()
		if err != nil {
			// Includes comm.ErrEvicted: the survivors condemned this rank
			// under too-tight deadlines; it must stop participating.
			return nil, nil, fmt.Errorf("compositor: epoch %d agreement: %w", rx.mem.Epoch(), err)
		}
		if !aborted && len(newDead) == 0 && !rx.noticePending() {
			// Commit: the attempt completed everywhere and nobody died.
			rx.rep.Recovered = rx.mem.NumDead() > 0
			rx.rep.RecoveryEpochs = recoveries
			rx.rep.RecoveredRanks = rx.mem.Dead()
			rx.tel.Add(rx.me, telemetry.CtrRecoveryEpochs, int64(recoveries))
			rx.tel.Add(rx.me, telemetry.CtrRecoveredRanks, int64(len(rx.rep.RecoveredRanks)))
			final, err = rx.commitBroadcast(final)
			if err != nil {
				return nil, nil, err
			}
			finalizeReport(c, rx.rep, rx.tel)
			return final, rx.rep, nil
		}

		// Retry path: enter the next epoch in lockstep with the survivors.
		rx.mem.Advance(newDead)
		rx.tel.Flight(rx.me, telemetry.FlightEpoch, telemetry.StepNone, -1, -1, "epoch advanced")
		rx.noticeSent = false
		aborted = false
		if opts.RejoinTimeout > 0 && rx.mem.NumDead() > 0 {
			// Before deciding whether to degrade, give any registered spare a
			// bounded window to take over a dead slot. A successful rejoin
			// resets the recovery budget: the healed mesh is not still
			// charged for the failure it already repaired.
			rejoined, err := rx.attemptRejoin()
			if err != nil {
				return nil, nil, err
			}
			if rejoined > 0 {
				recoveries = 0
			}
		}
		_, recoverable := schedule.RepairOwners(sched.P, rx.mem.Dead())
		if recoveries >= rx.maxRec || !recoverable {
			if opts.RejoinTimeout > 0 {
				// A spare was consulted and none arrived in time; record the
				// typed timeout so the degradation is attributable.
				rx.tel.Flight(rx.me, telemetry.FlightJoin, telemetry.StepNone, -1, -1, "rejoin timeout, degrading")
			}
			break
		}
		recoveries++
		rx.rep.resetDegradation()
	}

	// Fallback: one compose-partial epoch over the best repaired plan. The
	// replicas still contribute every dead layer whose buddy survived; the
	// result is forcibly flagged Degraded because it was never certified.
	plan, owners := sched, []int(nil)
	dead := make([]bool, sched.P)
	if rx.mem.NumDead() > 0 {
		if plan, owners, err = schedule.Repair(sched, rx.mem.Dead()); err != nil {
			return nil, nil, err
		}
		for _, d := range rx.mem.Dead() {
			dead[d] = true
		}
	}
	fopts := opts
	fopts.OnMissing = ComposePartial
	rx.rep.resetDegradation()
	final, err = runOnce(c, plan, rx.local, fopts, rx.cdc, rx.rep, rx.mem.Epoch(), owners, rx.replicas, dead, rx.scr)
	if err != nil {
		return nil, nil, err
	}
	rx.rep.Degraded = true
	rx.rep.Recovered = false
	rx.rep.RecoveryEpochs = recoveries + 1
	for l, o := range owners {
		if o >= 0 && o != l {
			rx.rep.RecoveredRanks = append(rx.rep.RecoveredRanks, l)
		}
	}
	rx.tel.Add(rx.me, telemetry.CtrRecoveryEpochs, int64(rx.rep.RecoveryEpochs))
	finalizeReport(c, rx.rep, rx.tel)
	return final, rx.rep, nil
}

// encodeReplica frames the local sub-image for the buddy exchange:
// uvarint width, uvarint height, then the codec-compressed pixels.
func encodeReplica(img *raster.Image, cdc codec.Codec) []byte {
	var tmp [binary.MaxVarintLen64]byte
	buf := append([]byte(nil), tmp[:binary.PutUvarint(tmp[:], uint64(img.W))]...)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(img.H))]...)
	return append(buf, cdc.Encode(img.Pix)...)
}

// decodeReplica inverts encodeReplica; all failures wrap codec.ErrCorrupt.
func decodeReplica(payload []byte, cdc codec.Codec, w, h int) (*raster.Image, error) {
	rw, off := binary.Uvarint(payload)
	if off <= 0 {
		return nil, fmt.Errorf("compositor: %w: replica width", codec.ErrCorrupt)
	}
	rest := payload[off:]
	rh, off := binary.Uvarint(rest)
	if off <= 0 {
		return nil, fmt.Errorf("compositor: %w: replica height", codec.ErrCorrupt)
	}
	rest = rest[off:]
	if int(rw) != w || int(rh) != h {
		return nil, fmt.Errorf("compositor: %w: replica is %dx%d, want %dx%d", codec.ErrCorrupt, rw, rh, w, h)
	}
	data, err := cdc.Decode(rest, w*h)
	if err != nil {
		return nil, fmt.Errorf("compositor: decoding replica: %w", err)
	}
	img := raster.New(w, h)
	if len(data) != len(img.Pix) {
		return nil, fmt.Errorf("compositor: %w: replica has %d pixel bytes, want %d", codec.ErrCorrupt, len(data), len(img.Pix))
	}
	copy(img.Pix, data)
	return img, nil
}

// exchangeReplicas ships the local sub-image to this rank's buddy and
// collects the sub-images of the ranks this rank wards, all under the
// epoch-0 replica tag. A failure during the exchange aborts epoch 0 (the
// schedule has not started; agreement and repair handle it), but the
// exchange keeps collecting the remaining frames until its deadline so a
// late ward's replica is not thrown away — it may be the only copy left.
func (rx *rexec) exchangeReplicas() (map[int]*raster.Image, bool, error) {
	p := rx.c.Size()
	replicas := map[int]*raster.Image{}
	if p <= 1 {
		return replicas, false, nil
	}
	endRep := rx.tel.Span(rx.me, telemetry.PhaseReplicate, telemetry.CatNetwork, telemetry.StepNone)
	defer endRep()

	aborted := false
	frame := encodeReplica(rx.local, rx.cdc)
	buddy := schedule.Buddy(rx.me, p)
	if err := rx.c.Send(buddy, tagReplica, frame); err != nil {
		if !comm.IsRecoverable(err) {
			return nil, false, fmt.Errorf("compositor: replica send to buddy %d: %w", buddy, err)
		}
		aborted = rx.abort(suspectsOf(err, buddy))
	} else {
		rx.tel.Add(rx.me, telemetry.CtrReplicaMsgs, 1)
		rx.tel.Add(rx.me, telemetry.CtrReplicaRawBytes, int64(len(rx.local.Pix)))
		rx.tel.Add(rx.me, telemetry.CtrReplicaWireBytes, int64(len(frame)))
	}

	pending := map[int]bool{}
	for _, w := range schedule.Wards(rx.me, p) {
		pending[w] = true
	}
	for len(pending) > 0 {
		keys := make([]comm.MsgKey, 0, len(pending)+p)
		for w := range pending {
			keys = append(keys, comm.MsgKey{From: w, Tag: tagReplica})
		}
		keys = append(keys, rx.mem.NoticeKeys(rx.me)...)
		from, tag, payload, err := rx.c.RecvAnyTimeout(keys, rx.opts.RecvTimeout)
		if err != nil {
			var perr *comm.PeerError
			switch {
			case errors.As(err, &perr):
				aborted = rx.abort([]int{perr.Rank})
				delete(pending, perr.Rank)
				continue
			case errors.Is(err, comm.ErrDeadline):
				rx.tel.Add(rx.me, telemetry.CtrDeadlineHits, 1)
				// A slow ward earns grace here exactly like a slow sender
				// during the composition: its replica may be the only copy,
				// and a brownout is not a death.
				suspects := setKeys(pending)
				if rx.graceOrEscalate(suspects) {
					continue
				}
				aborted = rx.abort(suspects)
				return replicas, aborted, nil
			}
			return nil, false, fmt.Errorf("compositor: replica exchange: %w", err)
		}
		if tag == comm.NoticeTag(rx.mem.Epoch()) {
			// Another rank aborted the epoch; keep collecting replicas —
			// they are sent exactly once and may be the only copies.
			bufpool.Put(payload)
			aborted = true
			continue
		}
		delete(pending, from)
		rx.opts.Health.Ok(from)
		img, derr := decodeReplica(payload, rx.cdc, rx.local.W, rx.local.H)
		// decodeReplica copies the pixels into a fresh image (even when the
		// codec aliases its input), so the wire buffer recycles either way.
		bufpool.Put(payload)
		if derr != nil {
			// A corrupt replica is dropped: the primary path does not need
			// it, and recovery of `from` would fall back to compose-partial.
			continue
		}
		replicas[from] = img
	}
	return replicas, aborted, nil
}

// epochAttempt executes one epoch of the (possibly repaired) plan with
// abort-on-failure semantics: any recoverable failure, or a FAILED notice
// from a peer, abandons the attempt (second result true) after broadcasting
// this rank's own notice. Only local faults are fatal errors.
func (rx *rexec) epochAttempt(plan *schedule.Schedule, owners []int, replicas map[int]*raster.Image) (*raster.Image, bool, error) {
	epoch := rx.mem.Epoch()
	me := rx.me
	st := fragstore.New(me, plan, rx.local)
	for l, o := range owners {
		if o != me || l == me {
			continue
		}
		img := replicas[l]
		if img == nil {
			// Assigned a dead rank's layer without holding its replica:
			// completeness cannot be certified. Retries cannot fix this, so
			// the budget drains and the fallback epoch blanks the layer.
			return nil, rx.abort(nil), nil
		}
		overPix, err := st.InsertLayer(l, img)
		if err != nil {
			return nil, false, err
		}
		rx.rep.OverPixels += overPix
	}

	noticeTag := comm.NoticeTag(epoch)
	for si, step := range plan.Steps {
		if rx.opts.OnStep != nil {
			rx.opts.OnStep(si)
		}
		for h := 0; h < step.PreHalvings; h++ {
			st.HalveAll()
		}
		clear(rx.scr.pending)
		pending := rx.scr.pending
		for _, tr := range step.Transfers {
			switch {
			case tr.From == me:
				if err := send(rx.c, st, rx.cdc, rx.rep, rx.tel, epoch, si, tr, rx.scr); err != nil {
					if comm.IsRecoverable(err) {
						return nil, rx.abort(suspectsOf(err, tr.To)), nil
					}
					return nil, false, fmt.Errorf("compositor: step %d: %w", si+1, err)
				}
			case tr.To == me:
				pending[comm.MsgKey{From: tr.From, Tag: tagFor(epoch, si, tr.Block)}] = tr
			}
		}
		for len(pending) > 0 {
			keys := rx.scr.keys[:0]
			for k := range pending {
				keys = append(keys, k)
			}
			keys = append(keys, rx.mem.NoticeKeys(me)...)
			rx.scr.keys = keys[:0]
			endRecv := rx.tel.Span(me, telemetry.PhaseRecv, telemetry.CatNetwork, si)
			from, tag, payload, err := rx.c.RecvAnyTimeout(keys, rx.opts.RecvTimeout)
			endRecv()
			if err != nil {
				var perr *comm.PeerError
				switch {
				case errors.As(err, &perr):
					return nil, rx.abort([]int{perr.Rank}), nil
				case errors.Is(err, comm.ErrDeadline):
					rx.tel.Add(me, telemetry.CtrDeadlineHits, 1)
					suspects := sendersOf(pending)
					if rx.graceOrEscalate(suspects) {
						continue
					}
					return nil, rx.abort(suspects), nil
				}
				return nil, false, fmt.Errorf("compositor: step %d: %w", si+1, err)
			}
			if tag == noticeTag {
				// A peer already broadcast this epoch's failure; no need to
				// repeat it.
				bufpool.Put(payload)
				return nil, true, nil
			}
			key := comm.MsgKey{From: from, Tag: tag}
			tr, ok := pending[key]
			if !ok {
				return nil, false, fmt.Errorf("compositor: unexpected message from rank %d tag %d", from, tag)
			}
			delete(pending, key)
			if err := merge(st, rx.cdc, rx.rep, rx.tel, si, tr, payload, rx.scr); err != nil {
				if errors.Is(err, codec.ErrCorrupt) {
					// The payload is unrecoverable but the sender is alive: a
					// clean re-execution may succeed.
					return nil, rx.abort(nil), nil
				}
				return nil, false, err
			}
		}
		for h := 0; h < step.PostHalvings; h++ {
			st.HalveAll()
		}
	}

	overPix, err := st.CoalesceAll()
	if err != nil {
		return nil, false, err
	}
	rx.rep.OverPixels += overPix
	if err := st.CheckComplete(plan.P); err != nil {
		// The plan finished but some block is not fully composited — only
		// possible when a contribution silently vanished. Not certifiable.
		return nil, rx.abort(nil), nil
	}
	rx.rep.FinalBlocks = st.Len()

	root := rx.opts.GatherRoot
	if root < 0 {
		st.Release()
		return nil, false, nil
	}
	endGather := rx.tel.Span(me, telemetry.PhaseGather, telemetry.CatNetwork, telemetry.StepNone)
	defer endGather()
	if me != root {
		rx.scr.enc = encodeFinalBlocks(rx.scr.enc[:0], st)
		if err := rx.c.Send(root, gatherTag(epoch), rx.scr.enc); err != nil {
			if comm.IsRecoverable(err) {
				return nil, rx.abort(suspectsOf(err, root)), nil
			}
			return nil, false, fmt.Errorf("compositor: gather send: %w", err)
		}
		st.Release()
		return nil, false, nil
	}
	rx.scr.enc = encodeFinalBlocks(rx.scr.enc[:0], st)
	out := raster.New(rx.local.W, rx.local.H)
	covered, err := insertFinalBlocks(out, st.Tiles(), rx.scr.enc, me)
	if err != nil {
		return nil, false, err
	}
	st.Release()
	pendingRanks := map[int]bool{}
	for r := 0; r < rx.c.Size(); r++ {
		if r != root && rx.mem.Alive(r) {
			pendingRanks[r] = true
		}
	}
	for len(pendingRanks) > 0 {
		keys := make([]comm.MsgKey, 0, len(pendingRanks))
		for r := range pendingRanks {
			keys = append(keys, comm.MsgKey{From: r, Tag: gatherTag(epoch)})
		}
		keys = append(keys, rx.mem.NoticeKeys(me)...)
		from, tag, part, err := rx.c.RecvAnyTimeout(keys, rx.opts.RecvTimeout)
		if err != nil {
			var perr *comm.PeerError
			switch {
			case errors.As(err, &perr):
				return nil, rx.abort([]int{perr.Rank}), nil
			case errors.Is(err, comm.ErrDeadline):
				rx.tel.Add(me, telemetry.CtrDeadlineHits, 1)
				suspects := setKeys(pendingRanks)
				if rx.graceOrEscalate(suspects) {
					continue
				}
				return nil, rx.abort(suspects), nil
			}
			return nil, false, fmt.Errorf("compositor: gather: %w", err)
		}
		if tag == noticeTag {
			bufpool.Put(part)
			return nil, true, nil
		}
		delete(pendingRanks, from)
		n, err := insertFinalBlocks(out, st.Tiles(), part, from)
		if err != nil {
			return nil, false, err
		}
		bufpool.Put(part) // InsertSpan copied the pixels out
		covered += n
	}
	if covered != rx.local.W*rx.local.H {
		return nil, rx.abort(nil), nil
	}
	return out, false, nil
}

// noticePending polls for an unconsumed FAILED notice of the current epoch.
// A rank whose attempt completed must check before committing: a peer may
// have aborted after this rank stopped listening (its notice sits in the
// mailbox), yet answered the agreement so no one looks dead.
func (rx *rexec) noticePending() bool {
	keys := rx.mem.NoticeKeys(rx.me)
	if len(keys) == 0 {
		return false
	}
	_, _, _, err := rx.c.RecvAnyTimeout(keys, noticePollTimeout)
	if err == nil {
		return true
	}
	// A peer failure right at the commit point also forces a retry.
	return !errors.Is(err, comm.ErrDeadline) && comm.IsRecoverable(err)
}

// commitBroadcast redistributes the certified image from the gather root to
// the surviving ranks. It runs after the commit decision, so it never
// triggers a retry: a peer dying this late simply misses its copy.
func (rx *rexec) commitBroadcast(final *raster.Image) (*raster.Image, error) {
	if rx.opts.GatherRoot < 0 || !rx.opts.Broadcast {
		return final, nil
	}
	root, epoch := rx.opts.GatherRoot, rx.mem.Epoch()
	if rx.me == root {
		for r := 0; r < rx.c.Size(); r++ {
			if r == root || !rx.mem.Alive(r) {
				continue
			}
			if err := rx.c.Send(r, commitTag(epoch), final.Pix); err != nil {
				if comm.IsRecoverable(err) {
					continue
				}
				return nil, fmt.Errorf("compositor: commit broadcast to %d: %w", r, err)
			}
		}
		return final, nil
	}
	data, err := rx.c.RecvTimeout(root, commitTag(epoch), rx.opts.RecvTimeout)
	if err != nil {
		return nil, fmt.Errorf("compositor: commit broadcast from root: %w", err)
	}
	img := raster.New(rx.local.W, rx.local.H)
	if len(data) != len(img.Pix) {
		return nil, fmt.Errorf("compositor: broadcast image has %d bytes, want %d", len(data), len(img.Pix))
	}
	copy(img.Pix, data)
	bufpool.Put(data)
	return img, nil
}

// sendersOf lists the distinct source ranks of the transfers still pending,
// ascending.
func sendersOf(pending map[comm.MsgKey]schedule.Transfer) []int {
	set := map[int]bool{}
	for k := range pending {
		set[k.From] = true
	}
	return setKeys(set)
}

func setKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}
