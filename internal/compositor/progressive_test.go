package compositor

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"rtcomp/internal/codec"
	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
)

// The progressive-delivery suite: OnPartial callbacks on the gather root
// must be monotone — every completed tile delivered exactly once, with
// correct pixels, strictly before Run returns, and never re-delivered
// across a recovery epoch boundary.

// partialLog collects OnPartial callbacks thread-safely, copying the
// borrowed pixel slices before they go stale.
type partialLog struct {
	mu     sync.Mutex
	frames []PartialFrame
	pix    [][]byte
	closed bool
	late   int
}

func (l *partialLog) add(f PartialFrame) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		l.late++
		return
	}
	l.frames = append(l.frames, f)
	l.pix = append(l.pix, append([]byte(nil), f.Pix...))
}

// close marks the run finished; any callback after this is a violation.
func (l *partialLog) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
}

func TestProgressiveDeliveryMonotone(t *testing.T) {
	const w, h = 44, 20
	sched, err := schedule.TwoNRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rngLayers := makeLayers(rand.New(rand.NewSource(11)), 4, w, h, true)
	want := compose.SerialComposite(rngLayers)
	spans := sched.TileSpans(w * h)

	log := &partialLog{}
	opts := pipeOptions(codec.TRLE{})
	opts.Pipeline.InterleaveSeed = 4242
	opts.Pipeline.OnPartial = log.add
	got := runInprocPipe(t, sched, rngLayers, opts).mustFinal(t)
	log.close()

	if !raster.Equal(got, want) {
		t.Fatalf("final image differs: maxdiff=%d", raster.MaxDiff(got, want))
	}
	if log.late > 0 {
		t.Fatalf("%d OnPartial callback(s) fired after Run returned", log.late)
	}
	if len(log.frames) != sched.Tiles {
		t.Fatalf("delivered %d tiles progressively, want %d", len(log.frames), sched.Tiles)
	}
	seen := make([]bool, sched.Tiles)
	for i, f := range log.frames {
		if f.Tile < 0 || f.Tile >= sched.Tiles {
			t.Fatalf("frame %d delivers out-of-range tile %d", i, f.Tile)
		}
		if seen[f.Tile] {
			t.Errorf("tile %d delivered twice", f.Tile)
		}
		seen[f.Tile] = true
		if f.Done != i+1 {
			t.Errorf("frame %d: Done = %d, want %d (monotone count)", i, f.Done, i+1)
		}
		if f.Total != sched.Tiles {
			t.Errorf("frame %d: Total = %d, want %d", i, f.Total, sched.Tiles)
		}
		if f.Span != spans[f.Tile] {
			t.Errorf("tile %d: span %+v does not match the schedule's %+v", f.Tile, f.Span, spans[f.Tile])
		}
		if !bytes.Equal(log.pix[i], want.SpanBytes(spans[f.Tile])) {
			t.Errorf("tile %d: progressively delivered pixels differ from the reference", f.Tile)
		}
	}
}

// TestProgressiveDegradedTilesNotDelivered: under compose-partial with total
// loss, no tile is complete, so nothing may be delivered progressively —
// degraded tiles appear only in the (flagged) final image.
func TestProgressiveDegradedTilesNotDelivered(t *testing.T) {
	// Reuses the total-loss scenario of TestPipelinedComposePartialDegrades,
	// but watches the callback: the monotonicity contract says incomplete
	// tiles are never streamed.
	sched, err := schedule.NRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	layers, _ := chaosLayers(51, sched.P)
	log := &partialLog{}
	opts := chaosPipelined(Options{
		Codec: codec.TRLE{}, RecvTimeout: minRecvTimeout(), OnMissing: ComposePartial,
	})
	opts.Pipeline.OnPartial = log.add
	o := runChaosCase(t, sched, layers, dropEverythingPlan(), -1, opts)
	log.close()
	for r, err := range o.errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if !o.anyDegraded() {
		t.Fatal("total loss not flagged")
	}
	for _, f := range log.frames {
		// A tile whose every contribution is local to the root can still
		// complete; any delivered tile must at least be in range and unique.
		if f.Tile < 0 || f.Tile >= sched.Tiles {
			t.Fatalf("out-of-range progressive tile %d on a degraded run", f.Tile)
		}
	}
	if log.late > 0 {
		t.Fatalf("%d callback(s) after Run returned on a degraded run", log.late)
	}
}

// TestProgressiveNoDoubleDeliveryAcrossRecovery is the epoch-boundary
// satellite: a rank dying mid-pipeline aborts the epoch-0 attempt after
// some tiles may already have streamed. The recovery re-execution must not
// re-deliver them — every tile fires at most once across the whole run, and
// every tile that did fire in epoch 0 carried its exact final pixels.
func TestProgressiveNoDoubleDeliveryAcrossRecovery(t *testing.T) {
	const die = 2
	sched, err := schedule.TwoNRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	layers, want := chaosLayers(52, sched.P)
	spans := sched.TileSpans(want.NPixels())
	log := &partialLog{}
	opts := recoverOptions(codec.TRLE{})
	opts.Pipeline.Enabled = true
	opts.Pipeline.InterleaveSeed = 17
	opts.Pipeline.OnPartial = log.add
	o := runRecoverCase(t, sched, layers, map[int]int{die: 1}, opts)
	log.close()

	for r, err := range o.errs {
		if r != die && err != nil {
			t.Errorf("survivor rank %d failed: %v", r, err)
		}
	}
	if o.final == nil || !raster.Equal(o.final, want) {
		t.Fatal("pipelined recovery did not reproduce the fault-free image")
	}
	for r, rep := range o.reports {
		if r == die || rep == nil {
			continue
		}
		if !rep.Recovered || rep.Degraded {
			t.Errorf("rank %d: Recovered=%v Degraded=%v after a recoverable death", r, rep.Recovered, rep.Degraded)
		}
	}
	if log.late > 0 {
		t.Fatalf("%d callback(s) fired after Run returned", log.late)
	}
	counts := make([]int, sched.Tiles)
	for i, f := range log.frames {
		counts[f.Tile]++
		if counts[f.Tile] > 1 {
			t.Errorf("tile %d delivered %d times across the recovery boundary", f.Tile, counts[f.Tile])
		}
		// A tile that completed before the abort had every contribution in
		// hand, so its streamed pixels must already be final.
		if !bytes.Equal(log.pix[i], want.SpanBytes(spans[f.Tile])) {
			t.Errorf("tile %d: epoch-0 progressive pixels differ from the recovered image", f.Tile)
		}
	}
}
