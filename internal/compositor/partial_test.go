package compositor

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"rtcomp/internal/codec"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/telemetry"
)

// The OnPartial handoff suite: the progressive-frame callback runs on a
// dedicated pump goroutine behind a bounded buffer, so a slow — or wedged —
// consumer can never stall the receiver loop or deadlock the run.

// TestPartialDropWedgedConsumer wedges the OnPartial callback completely
// (it blocks until the run is over) under the drop policy: the composition
// must still finish promptly, and the overflow must be visible in the
// drop counter.
func TestPartialDropWedgedConsumer(t *testing.T) {
	const p, w, h = 4, 33, 15
	cdc, err := codec.ByName("rle")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := schedule.TwoNRT(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8505))
	layers := makeLayers(rng, p, w, h, true)
	want := runInproc(t, sched, layers, cdc)

	rec := telemetry.New()
	release := make(chan struct{})
	var wedged sync.WaitGroup
	wedged.Add(1)
	first := true
	opts := Options{
		Codec:       cdc,
		GatherRoot:  0,
		RecvTimeout: 10 * time.Second,
		Telemetry:   rec,
		Pipeline: PipelineConfig{
			Enabled:       true,
			PartialBuffer: 1,
			PartialPolicy: PartialDrop,
			OnPartial: func(PartialFrame) {
				if first {
					first = false
					wedged.Done()
					<-release // wedge: hold the pump goroutine hostage
				}
			},
		},
	}
	got := runInprocPipe(t, sched, layers, opts).mustFinal(t)
	close(release)
	wedged.Wait()
	if !raster.Equal(got, want) {
		t.Fatalf("wedged-consumer image differs from oracle: maxdiff=%d", raster.MaxDiff(got, want))
	}
	if d := sumCounter(rec, telemetry.CtrPartialDrops); d < 1 {
		t.Fatalf("no partial drops recorded: the wedged consumer never overflowed the buffer (tiles=%d)", sched.Tiles)
	}
}

// TestPartialBlockDeliversAll runs the blocking policy with a slow-but-live
// consumer: every tile must be delivered exactly once, in completion order,
// with monotonically increasing Done counts — and all of it before Run
// returns on the root.
func TestPartialBlockDeliversAll(t *testing.T) {
	const p, w, h = 4, 27, 9
	cdc, err := codec.ByName("trle")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := schedule.NRT(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8606))
	layers := makeLayers(rng, p, w, h, false)
	want := runInproc(t, sched, layers, cdc)

	var mu sync.Mutex
	var frames []PartialFrame
	opts := Options{
		Codec:       cdc,
		GatherRoot:  0,
		RecvTimeout: 10 * time.Second,
		Pipeline: PipelineConfig{
			Enabled:       true,
			PartialBuffer: 1,
			PartialPolicy: PartialBlock,
			OnPartial: func(f PartialFrame) {
				time.Sleep(2 * time.Millisecond) // slow consumer, buffer must absorb
				mu.Lock()
				frames = append(frames, f)
				mu.Unlock()
			},
		},
	}
	got := runInprocPipe(t, sched, layers, opts).mustFinal(t)
	if !raster.Equal(got, want) {
		t.Fatalf("partial-block image differs from oracle: maxdiff=%d", raster.MaxDiff(got, want))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(frames) != sched.Tiles {
		t.Fatalf("got %d partial frames, want %d (one per tile)", len(frames), sched.Tiles)
	}
	seen := map[int]bool{}
	for i, f := range frames {
		if seen[f.Tile] {
			t.Fatalf("tile %d delivered twice", f.Tile)
		}
		seen[f.Tile] = true
		if f.Done != i+1 || f.Total != sched.Tiles {
			t.Fatalf("frame %d: Done=%d Total=%d, want Done=%d Total=%d", i, f.Done, f.Total, i+1, sched.Tiles)
		}
		// The frame's pixels must match the final image's span: the pump
		// copies, so later merges cannot have scribbled on them.
		span := f.Span
		if wantPix := got.SpanBytes(span); !bytesEq(f.Pix, wantPix) {
			t.Fatalf("frame %d (tile %d): partial pixels differ from final image span", i, f.Tile)
		}
	}
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPartialPumpNilSafety exercises the nil-receiver paths directly.
func TestPartialPumpNilSafety(t *testing.T) {
	var pp *partialPump
	pp.publish(0, raster.Span{}, nil, 1, 1) // must not panic
	pp.finish()                             // must not panic
	if pp := newPartialPump(PipelineConfig{}, 4, nil, 0); pp != nil {
		t.Fatal("pump constructed without an OnPartial callback")
	}
}
