// Bounded hand-off between the assembler and the OnPartial consumer.
//
// The assembler used to invoke OnPartial inline, which made the whole
// pipeline's progress hostage to the callback: a consumer that blocked (a
// stuck websocket, a full encoder queue) stalled the assembler, which
// stopped granting gather credits, which wedged every rank. Frames now pass
// through a bounded buffer to a dedicated delivery goroutine; the policy
// for a full buffer — wait or drop — is the caller's choice.
package compositor

import (
	"rtcomp/internal/raster"
	"rtcomp/internal/telemetry"
)

// partialPump decouples OnPartial callbacks from the assembler. Pix is
// copied before publication, so frames remain valid however long the
// consumer holds them and the assembler's buffer reuse is never observable.
type partialPump struct {
	cb     func(PartialFrame)
	policy PartialPolicy
	ch     chan PartialFrame
	done   chan struct{}
	tel    *telemetry.Recorder
	rank   int
}

// newPartialPump starts the delivery goroutine. tiles sizes the default
// buffer: one slot per tile means a PartialBlock publisher can never block
// (the assembler publishes each tile at most once).
func newPartialPump(cfg PipelineConfig, tiles int, tel *telemetry.Recorder, rank int) *partialPump {
	if cfg.OnPartial == nil {
		return nil
	}
	n := cfg.PartialBuffer
	if n <= 0 {
		n = tiles
	}
	if n < 1 {
		n = 1
	}
	pp := &partialPump{
		cb:     cfg.OnPartial,
		policy: cfg.PartialPolicy,
		ch:     make(chan PartialFrame, n),
		done:   make(chan struct{}),
		tel:    tel,
		rank:   rank,
	}
	go pp.loop()
	return pp
}

// loop runs the consumer callbacks, strictly in publication order.
func (pp *partialPump) loop() {
	defer close(pp.done)
	for f := range pp.ch {
		pp.cb(f)
	}
}

// publish hands one frame to the delivery goroutine. The span's pixels are
// copied out of the frame under assembly; under PartialDrop a full buffer
// drops the frame (counted) rather than blocking the assembler.
func (pp *partialPump) publish(tile int, span raster.Span, pix []byte, done, total int) {
	if pp == nil {
		return
	}
	f := PartialFrame{Tile: tile, Span: span, Done: done, Total: total}
	f.Pix = append(make([]byte, 0, len(pix)), pix...)
	if pp.policy == PartialDrop {
		select {
		case pp.ch <- f:
		default:
			pp.tel.Add(pp.rank, telemetry.CtrPartialDrops, 1)
		}
		return
	}
	pp.ch <- f
}

// finish closes the stream. Under PartialBlock it waits for every published
// frame to be delivered before returning (the progressive-delivery
// guarantee); under PartialDrop it abandons a wedged consumer — the
// goroutine drains what it can and exits on its own, and every frame it
// holds is a private copy.
func (pp *partialPump) finish() {
	if pp == nil {
		return
	}
	close(pp.ch)
	if pp.policy == PartialBlock {
		<-pp.done
	}
}
