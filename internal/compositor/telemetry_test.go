package compositor

import (
	"math/rand"
	"sync"
	"testing"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/schedule"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/transport/inproc"
)

// TestTelemetryMatchesReport cross-checks the two accounting paths: the
// telemetry counters a run records must agree exactly with the compositor's
// own Report on every rank — same raw/wire bytes, same over-pixels, same
// fabric totals. This is what makes the rank-0 table trustworthy.
func TestTelemetryMatchesReport(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const p = 5
	layers := makeLayers(rng, p, 48, 24, false)
	sched, err := schedule.RT(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	cdc, _ := codec.ByName("trle")

	rec := telemetry.New()
	reports := make([]*Report, p)
	var mu sync.Mutex
	err = inproc.Run(p, func(c comm.Comm) error {
		_, rep, err := Run(c, sched, layers[c.Rank()], Options{
			Codec: cdc, GatherRoot: 0, Telemetry: rec,
		})
		if err != nil {
			return err
		}
		mu.Lock()
		reports[c.Rank()] = rep
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for rank, rep := range reports {
		sum := func(name string) int64 {
			var v int64
			for k, cv := range rec.Counters() {
				if k.Rank == rank && k.Name == name {
					v += cv
				}
			}
			return v
		}
		if got := sum(telemetry.CtrRawBytes); got != rep.RawBytes {
			t.Errorf("rank %d raw bytes: telemetry %d, report %d", rank, got, rep.RawBytes)
		}
		if got := sum(telemetry.CtrWireBytes); got != rep.WireBytes {
			t.Errorf("rank %d wire bytes: telemetry %d, report %d", rank, got, rep.WireBytes)
		}
		if got := sum(telemetry.CtrOverPixels); got != rep.OverPixels {
			t.Errorf("rank %d over-pixels: telemetry %d, report %d", rank, got, rep.OverPixels)
		}
		if got := sum(telemetry.CtrCommMsgsSent); got != rep.Comm.MsgsSent {
			t.Errorf("rank %d comm msgs sent: telemetry %d, report %d", rank, got, rep.Comm.MsgsSent)
		}
		if got := sum(telemetry.CtrCommBytesRecv); got != rep.Comm.BytesRecv {
			t.Errorf("rank %d comm bytes recv: telemetry %d, report %d", rank, got, rep.Comm.BytesRecv)
		}
	}

	// Every instrumented phase must have left spans behind, and the step
	// table built from this run must carry the total wire volume.
	seen := map[string]bool{}
	for _, sp := range rec.Spans() {
		seen[sp.Name] = true
		if sp.End < sp.Start {
			t.Fatalf("span ends before it starts: %+v", sp)
		}
	}
	for _, phase := range []string{
		telemetry.PhaseEncode, telemetry.PhaseSend, telemetry.PhaseRecv,
		telemetry.PhaseDecode, telemetry.PhaseMerge, telemetry.PhaseGather,
	} {
		if !seen[phase] {
			t.Errorf("no %s spans recorded", phase)
		}
	}
}
