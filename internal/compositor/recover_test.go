package compositor

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/transport/faulty"
	"rtcomp/internal/transport/inproc"
)

// The recovery suite asserts the tentpole contract of the Recover policy:
// killing a rank mid-composition yields the byte-identical fault-free image
// on the survivors (binary-alpha layers make u8 "over" exact), with the
// result flagged Recovered — never Degraded — and the recovery accounted in
// the report. When recovery is impossible (buddy pair dead, budget spent)
// the run must fall back to one compose-partial epoch and force Degraded.

// runRecoverCase is runChaosCase generalised to kill any set of ranks:
// dieAfter maps rank -> DieAfterSends (1 = die on the second send, i.e.
// right after shipping the replica).
func runRecoverCase(t *testing.T, sched *schedule.Schedule, layers []*raster.Image,
	dieAfter map[int]int, opts Options) chaosOutcome {
	t.Helper()
	p := sched.P
	out := chaosOutcome{
		reports: make([]*Report, p),
		errs:    make([]error, p),
		stats:   make([]faulty.Stats, p),
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		inproc.Run(p, func(inner comm.Comm) error {
			ep := faulty.Wrap(inner, faulty.Plan{Seed: 41, DieAfterSends: dieAfter[inner.Rank()]})
			img, rep, err := Run(ep, sched, layers[inner.Rank()], opts)
			r := inner.Rank()
			out.reports[r] = rep
			out.errs[r] = err
			out.stats[r] = ep.Stats()
			if img != nil && r == 0 {
				out.final = img
			}
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("recovery case HUNG: schedule did not terminate within the watchdog")
	}
	return out
}

func recoverOptions(cdc codec.Codec) Options {
	return Options{
		Codec:       cdc,
		RecvTimeout: 250 * time.Millisecond,
		OnMissing:   Recover,
	}
}

// TestRecoverSingleDeathDifferential is the chaos differential matrix of
// the issue: one rank killed after its replica ships, for every method and
// every wire codec, must still produce the fault-free golden image exactly.
func TestRecoverSingleDeathDifferential(t *testing.T) {
	codecs := []string{"raw", "rle", "trle"}
	for name, sched := range chaosSchedules(t) {
		for ci, cname := range codecs {
			// Vary the victim across codecs; never the gather root (rank 0):
			// recovery replaces a dead producer, not the image's consumer.
			die := 1 + ci%(sched.P-1)
			t.Run(fmt.Sprintf("%s/%s/kill%d", name, cname, die), func(t *testing.T) {
				cdc, err := codec.ByName(cname)
				if err != nil {
					t.Fatal(err)
				}
				layers, want := chaosLayers(31, sched.P)
				o := runRecoverCase(t, sched, layers, map[int]int{die: 1}, recoverOptions(cdc))
				if err := o.errs[die]; err == nil || !errors.Is(err, faulty.ErrDead) {
					t.Errorf("dead rank error = %v, want ErrDead", err)
				}
				for r, err := range o.errs {
					if r != die && err != nil {
						t.Errorf("survivor rank %d failed: %v", r, err)
					}
				}
				if o.final == nil {
					t.Fatal("no final image on the root")
				}
				if !raster.Equal(o.final, want) {
					t.Fatalf("recovered image differs from fault-free golden: maxdiff=%d",
						raster.MaxDiff(o.final, want))
				}
				for r, rep := range o.reports {
					if r == die || rep == nil {
						continue
					}
					if rep.Degraded {
						t.Errorf("rank %d flagged Degraded on a recovered run", r)
					}
					if !rep.Recovered {
						t.Errorf("rank %d did not flag Recovered", r)
					}
					if rep.RecoveryEpochs < 1 {
						t.Errorf("rank %d RecoveryEpochs = %d, want >= 1", r, rep.RecoveryEpochs)
					}
					if len(rep.RecoveredRanks) != 1 || rep.RecoveredRanks[0] != die {
						t.Errorf("rank %d RecoveredRanks = %v, want [%d]", r, rep.RecoveredRanks, die)
					}
				}
			})
		}
	}
}

// TestRecoverNoFailureStaysClean: with nobody dying, the Recover policy
// must be a pass-through — exact image, no Recovered flag, zero epochs.
func TestRecoverNoFailureStaysClean(t *testing.T) {
	for name, sched := range chaosSchedules(t) {
		t.Run(name, func(t *testing.T) {
			layers, want := chaosLayers(32, sched.P)
			o := runRecoverCase(t, sched, layers, nil, recoverOptions(codec.TRLE{}))
			for r, err := range o.errs {
				if err != nil {
					t.Errorf("rank %d failed: %v", r, err)
				}
			}
			if o.final == nil || !raster.Equal(o.final, want) {
				t.Fatal("fault-free recover run did not reproduce the reference image")
			}
			for r, rep := range o.reports {
				if rep == nil {
					continue
				}
				if rep.Degraded || rep.Recovered || rep.RecoveryEpochs != 0 || len(rep.RecoveredRanks) != 0 {
					t.Errorf("rank %d report claims recovery on a clean run: %+v", r, rep)
				}
			}
		})
	}
}

// TestRecoverBuddyPairDeathFallsBack: ranks 2 and 3 are each other's
// buddies; losing both destroys the only replicas of their layers, so the
// run must fall back to compose-partial with the dead layers blanked and
// the Degraded flag forced.
func TestRecoverBuddyPairDeathFallsBack(t *testing.T) {
	sched, err := schedule.NRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	layers, _ := chaosLayers(33, sched.P)
	o := runRecoverCase(t, sched, layers, map[int]int{2: 1, 3: 1}, recoverOptions(codec.Raw{}))
	for _, r := range []int{2, 3} {
		if err := o.errs[r]; err == nil || !errors.Is(err, faulty.ErrDead) {
			t.Errorf("dead rank %d error = %v, want ErrDead", r, err)
		}
	}
	for _, r := range []int{0, 1} {
		if err := o.errs[r]; err != nil {
			t.Errorf("survivor rank %d failed: %v", r, err)
		}
		rep := o.reports[r]
		if rep == nil {
			t.Fatalf("survivor rank %d has no report", r)
		}
		if !rep.Degraded {
			t.Errorf("rank %d not flagged Degraded after an unrecoverable pair death", r)
		}
		if rep.Recovered {
			t.Errorf("rank %d flagged Recovered despite the lost replicas", r)
		}
	}
	if o.final == nil {
		t.Fatal("fallback produced no image on the root")
	}
	blank := raster.New(32, 32)
	want := compose.SerialComposite([]*raster.Image{layers[0], layers[1], blank, blank})
	if !raster.Equal(o.final, want) {
		t.Fatalf("fallback image is not the survivors' composite: maxdiff=%d", raster.MaxDiff(o.final, want))
	}
}

// TestRecoverBudgetExhaustedFallsBack: a negative MaxRecoveries forbids
// re-execution, so even a perfectly recoverable single death must go
// straight to the compose-partial fallback — which still uses the replica,
// but the uncertified result is forcibly Degraded, never Recovered.
func TestRecoverBudgetExhaustedFallsBack(t *testing.T) {
	sched, err := schedule.BinarySwap(4)
	if err != nil {
		t.Fatal(err)
	}
	layers, want := chaosLayers(34, sched.P)
	opts := recoverOptions(codec.TRLE{})
	opts.MaxRecoveries = -1
	o := runRecoverCase(t, sched, layers, map[int]int{2: 1}, opts)
	for _, r := range []int{0, 1, 3} {
		if err := o.errs[r]; err != nil {
			t.Errorf("survivor rank %d failed: %v", r, err)
		}
		rep := o.reports[r]
		if rep == nil {
			t.Fatalf("survivor rank %d has no report", r)
		}
		if !rep.Degraded {
			t.Errorf("rank %d not flagged Degraded with a zero recovery budget", r)
		}
		if rep.Recovered {
			t.Errorf("rank %d flagged Recovered without certification", r)
		}
	}
	if o.final == nil {
		t.Fatal("fallback produced no image on the root")
	}
	// The replica still contributed rank 2's layer, so the pixels are in
	// fact complete — only the certification is missing.
	if !raster.Equal(o.final, want) {
		t.Fatalf("fallback-with-replica image differs: maxdiff=%d", raster.MaxDiff(o.final, want))
	}
}

// TestRecoverRequiresDeadline: the policy is deadline-driven; without a
// RecvTimeout it must refuse to run rather than hang on the first death.
func TestRecoverRequiresDeadline(t *testing.T) {
	sched, err := schedule.BinarySwap(4)
	if err != nil {
		t.Fatal(err)
	}
	layers, _ := chaosLayers(35, sched.P)
	o := runRecoverCase(t, sched, layers, nil, Options{OnMissing: Recover})
	for r, err := range o.errs {
		if err == nil {
			t.Errorf("rank %d accepted Recover without a RecvTimeout", r)
		}
	}
}

// TestRecoverBroadcastDeliversToAllSurvivors: with Broadcast on, every
// survivor must end up with the identical certified image after a death.
func TestRecoverBroadcastDeliversToAllSurvivors(t *testing.T) {
	sched, err := schedule.TwoNRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	layers, want := chaosLayers(36, sched.P)
	opts := recoverOptions(codec.RLE{})
	opts.Broadcast = true
	die := 1
	p := sched.P
	finals := make([]*raster.Image, p)
	errs := make([]error, p)
	done := make(chan struct{})
	go func() {
		defer close(done)
		inproc.Run(p, func(inner comm.Comm) error {
			da := 0
			if inner.Rank() == die {
				da = 1
			}
			ep := faulty.Wrap(inner, faulty.Plan{Seed: 43, DieAfterSends: da})
			img, _, err := Run(ep, sched, layers[inner.Rank()], opts)
			finals[inner.Rank()] = img
			errs[inner.Rank()] = err
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("broadcast recovery case HUNG")
	}
	for r := 0; r < p; r++ {
		if r == die {
			continue
		}
		if errs[r] != nil {
			t.Errorf("survivor rank %d failed: %v", r, errs[r])
			continue
		}
		if finals[r] == nil || !raster.Equal(finals[r], want) {
			t.Errorf("survivor rank %d did not receive the certified image", r)
		}
	}
}
