// The deterministic-interleaving stage of the pipelined test harness: a
// receive-side reorder buffer that releases concurrently in-flight messages
// in an order that is a pure function of (seed, source, tag). The receiver
// drains everything currently available into the buffer with non-blocking
// polls and releases exactly one minimum-priority message at a time, so any
// burst of simultaneously outstanding messages is delivered in the seeded
// permutation — and sweeping seeds in the differential tests permutes the
// interleavings the pipelined executor must be invariant to.
//
// The buffer is intentionally work-conserving: it only reorders messages
// that have already arrived, never holding delivery hostage to a message
// that may causally depend on the held ones (a strict total order over all
// expected messages can deadlock small in-flight windows, because later
// tiles are not even claimed until earlier ones finish).
package compositor

// ilMsg is one buffered message awaiting seeded release.
type ilMsg struct {
	from, tag int
	payload   []byte
	prio      uint64
	seq       int // arrival order, the deterministic tie-break
}

// interleaver is the reorder buffer. Buffers are small (a burst of
// in-flight messages), so a linear min-scan beats heap bookkeeping.
type interleaver struct {
	seed int64
	buf  []ilMsg
	seq  int
}

func newInterleaver(seed int64) *interleaver {
	if seed == 0 {
		return nil
	}
	return &interleaver{seed: seed}
}

func (il *interleaver) len() int { return len(il.buf) }

func (il *interleaver) push(from, tag int, payload []byte) {
	il.buf = append(il.buf, ilMsg{
		from:    from,
		tag:     tag,
		payload: payload,
		prio:    msgPriority(il.seed, from, tag),
		seq:     il.seq,
	})
	il.seq++
}

// pop removes and returns the minimum-priority buffered message.
func (il *interleaver) pop() (from, tag int, payload []byte) {
	best := 0
	for i := 1; i < len(il.buf); i++ {
		if il.buf[i].prio < il.buf[best].prio ||
			(il.buf[i].prio == il.buf[best].prio && il.buf[i].seq < il.buf[best].seq) {
			best = i
		}
	}
	m := il.buf[best]
	last := len(il.buf) - 1
	il.buf[best] = il.buf[last]
	il.buf[last] = ilMsg{}
	il.buf = il.buf[:last]
	return m.from, m.tag, m.payload
}

// drain returns every still-buffered payload (teardown hygiene: the
// receiver recycles them).
func (il *interleaver) drain() [][]byte {
	out := make([][]byte, 0, len(il.buf))
	for i := range il.buf {
		out = append(out, il.buf[i].payload)
		il.buf[i] = ilMsg{}
	}
	il.buf = il.buf[:0]
	return out
}

// msgPriority hashes (seed, from, tag) with a splitmix64-style finalizer.
// Every expected (from, tag) pair is unique within an epoch, so priorities
// induce a deterministic order over any set of co-buffered messages.
func msgPriority(seed int64, from, tag int) uint64 {
	x := uint64(seed) ^ uint64(from)*0x9E3779B97F4A7C15 ^ uint64(tag)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
