package compositor

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/transport/faulty"
	"rtcomp/internal/transport/inproc"
)

// The chaos suite runs every composition schedule for real on the
// in-process fabric wrapped in the fault-injection middleware and asserts
// the robustness contract: under any fault mix, every rank either completes
// with a correct image (possibly after retransmission), composes a result
// explicitly flagged as degraded, or returns a typed recoverable error
// within its deadline. Never a hang, never a silently wrong image.

// chaosSchedules is the set of schedules the robustness contract is
// asserted over: the paper's four methods at a small processor count.
func chaosSchedules(t *testing.T) map[string]*schedule.Schedule {
	t.Helper()
	out := map[string]*schedule.Schedule{}
	var err error
	if out["rt-n"], err = schedule.NRT(4, 4); err != nil {
		t.Fatal(err)
	}
	if out["rt-2n"], err = schedule.TwoNRT(4, 4); err != nil {
		t.Fatal(err)
	}
	if out["binary-swap"], err = schedule.BinarySwap(4); err != nil {
		t.Fatal(err)
	}
	if out["pipeline"], err = schedule.Pipeline(4); err != nil {
		t.Fatal(err)
	}
	return out
}

type chaosOutcome struct {
	final   *raster.Image
	reports []*Report
	errs    []error
	stats   []faulty.Stats
}

// anyDegraded reports whether any rank flagged its result as degraded.
func (o chaosOutcome) anyDegraded() bool {
	for _, rep := range o.reports {
		if rep != nil && rep.Degraded {
			return true
		}
	}
	return false
}

// runChaosCase executes the schedule with every rank wrapped in the fault
// plan (dieRank, if >= 0, additionally gets plan.DieAfterSends applied) and
// enforces the no-hang guarantee with a hard watchdog.
func runChaosCase(t *testing.T, sched *schedule.Schedule, layers []*raster.Image,
	plan faulty.Plan, dieRank int, opts Options) chaosOutcome {
	t.Helper()
	p := sched.P
	out := chaosOutcome{
		reports: make([]*Report, p),
		errs:    make([]error, p),
		stats:   make([]faulty.Stats, p),
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		inproc.Run(p, func(inner comm.Comm) error {
			rankPlan := plan
			if inner.Rank() != dieRank {
				rankPlan.DieAfterSends = 0
			}
			ep := faulty.Wrap(inner, rankPlan)
			img, rep, err := Run(ep, sched, layers[inner.Rank()], opts)
			r := inner.Rank()
			out.reports[r] = rep
			out.errs[r] = err
			out.stats[r] = ep.Stats()
			if img != nil {
				out.final = img
			}
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("chaos case HUNG: schedule did not terminate within the watchdog")
	}
	return out
}

// assertContract checks the invariant every chaos case must satisfy: all
// errors are typed recoverable (or injected death), and a complete,
// unflagged image is byte-identical to the fault-free reference.
func assertContract(t *testing.T, o chaosOutcome, want *raster.Image) {
	t.Helper()
	failed := false
	for r, err := range o.errs {
		if err == nil {
			continue
		}
		failed = true
		if !comm.IsRecoverable(err) && !errors.Is(err, faulty.ErrDead) {
			t.Errorf("rank %d returned an untyped error: %v", r, err)
		}
	}
	if o.final != nil && !failed && !o.anyDegraded() {
		if !raster.Equal(o.final, want) {
			t.Errorf("silent wrong image: no error, no degraded flag, but maxdiff=%d",
				raster.MaxDiff(o.final, want))
		}
	}
}

func chaosLayers(seed int64, p int) ([]*raster.Image, *raster.Image) {
	rng := rand.New(rand.NewSource(seed))
	layers := make([]*raster.Image, p)
	for r := range layers {
		layers[r] = raster.RandomBinaryImage(rng, 32, 32, 0.5)
	}
	return layers, compose.SerialComposite(layers)
}

func TestChaosDropWithRetrySurvives(t *testing.T) {
	// A 30% per-attempt drop rate with 10 retransmission attempts loses a
	// message with probability 0.3^11 — the bounded retry loop must carry
	// every schedule to an exact result.
	for name, sched := range chaosSchedules(t) {
		t.Run(name, func(t *testing.T) {
			layers, want := chaosLayers(1, sched.P)
			plan := faulty.Plan{Seed: 7, Drop: 0.3, MaxResend: 10, Backoff: 100 * time.Microsecond}
			o := runChaosCase(t, sched, layers, plan, -1,
				Options{Codec: codec.TRLE{}, RecvTimeout: 10 * time.Second})
			assertContract(t, o, want)
			for r, err := range o.errs {
				if err != nil {
					t.Errorf("rank %d: %v", r, err)
				}
			}
			if o.final == nil {
				t.Fatal("no final image")
			}
			if !raster.Equal(o.final, want) {
				t.Fatalf("image differs after retry: maxdiff=%d", raster.MaxDiff(o.final, want))
			}
			var dropped int
			for _, s := range o.stats {
				dropped += s.Dropped
				if s.Lost > 0 {
					t.Fatalf("seed lost a message outright; pick a different seed")
				}
			}
			if dropped == 0 {
				t.Fatal("fault injection inactive: no drops at drop=0.3")
			}
		})
	}
}

func TestChaosLossFailFast(t *testing.T) {
	// With no retransmission and heavy loss, fail-fast ranks must surface a
	// typed deadline error — not hang, not return a wrong image.
	for name, sched := range chaosSchedules(t) {
		t.Run(name, func(t *testing.T) {
			layers, want := chaosLayers(2, sched.P)
			plan := faulty.Plan{Seed: 3, Drop: 0.5}
			o := runChaosCase(t, sched, layers, plan, -1,
				Options{Codec: codec.TRLE{}, RecvTimeout: 150 * time.Millisecond, OnMissing: FailFast})
			assertContract(t, o, want)
			var lost, failed int
			for _, s := range o.stats {
				lost += s.Lost
			}
			if lost == 0 {
				t.Skip("seed dropped nothing terminally; loss case not exercised")
			}
			for _, err := range o.errs {
				if err != nil {
					failed++
					if !comm.IsRecoverable(err) {
						t.Errorf("untyped failure: %v", err)
					}
				}
			}
			if failed == 0 {
				t.Fatal("messages were lost but no rank failed under FailFast")
			}
		})
	}
}

func TestChaosLossComposePartial(t *testing.T) {
	// The same loss under compose-partial must produce a flagged, degraded
	// image on the surviving path instead of an error cascade.
	for name, sched := range chaosSchedules(t) {
		t.Run(name, func(t *testing.T) {
			layers, want := chaosLayers(4, sched.P)
			plan := faulty.Plan{Seed: 3, Drop: 0.5}
			o := runChaosCase(t, sched, layers, plan, -1,
				Options{Codec: codec.TRLE{}, RecvTimeout: 150 * time.Millisecond, OnMissing: ComposePartial})
			assertContract(t, o, want)
			var lost int
			for _, s := range o.stats {
				lost += s.Lost
			}
			if lost == 0 {
				t.Skip("seed dropped nothing terminally; loss case not exercised")
			}
			if !o.anyDegraded() {
				t.Fatal("messages were lost but no rank flagged degradation")
			}
			rep0 := o.reports[0]
			if rep0 != nil && rep0.Degraded && rep0.MissingTransfers == 0 && rep0.MissingGathers == 0 && rep0.MissingLayerPix == 0 {
				t.Fatal("rank 0 degraded without accounting for anything missing")
			}
		})
	}
}

func TestChaosDelayJitterIsHarmless(t *testing.T) {
	// Delivery jitter below the receive deadline must not change the result:
	// the tag-matching fabric absorbs reordering.
	for name, sched := range chaosSchedules(t) {
		t.Run(name, func(t *testing.T) {
			layers, want := chaosLayers(5, sched.P)
			plan := faulty.Plan{Seed: 11, DelayProb: 0.6, MaxDelay: 5 * time.Millisecond}
			o := runChaosCase(t, sched, layers, plan, -1,
				Options{Codec: codec.TRLE{}, RecvTimeout: 10 * time.Second})
			assertContract(t, o, want)
			if o.final == nil || !raster.Equal(o.final, want) {
				t.Fatal("jittered run did not reproduce the reference image")
			}
			var delayed int
			for _, s := range o.stats {
				delayed += s.Delayed
			}
			if delayed == 0 {
				t.Fatal("fault injection inactive: no delays at delayProb=0.6")
			}
		})
	}
}

func TestChaosDuplicatesAreHarmless(t *testing.T) {
	// Duplicate deliveries must be ignored by the (from, tag) matching: each
	// transfer is consumed once and the extra copy dies unread.
	for name, sched := range chaosSchedules(t) {
		t.Run(name, func(t *testing.T) {
			layers, want := chaosLayers(6, sched.P)
			plan := faulty.Plan{Seed: 13, DupProb: 0.7}
			o := runChaosCase(t, sched, layers, plan, -1,
				Options{Codec: codec.TRLE{}, RecvTimeout: 10 * time.Second})
			assertContract(t, o, want)
			if o.final == nil || !raster.Equal(o.final, want) {
				t.Fatal("duplicated run did not reproduce the reference image")
			}
			var dups int
			for _, s := range o.stats {
				dups += s.Duplicated
			}
			if dups == 0 {
				t.Fatal("fault injection inactive: no duplicates at dupProb=0.7")
			}
		})
	}
}

func TestChaosCorruptionIsDetectedNeverSilent(t *testing.T) {
	// Corrupted payloads must be caught by the frame checksum and turned
	// into loss (deadline/degradation) — never decoded into the image.
	for name, sched := range chaosSchedules(t) {
		t.Run(name, func(t *testing.T) {
			layers, want := chaosLayers(7, sched.P)
			plan := faulty.Plan{Seed: 17, CorruptProb: 0.4}
			o := runChaosCase(t, sched, layers, plan, -1,
				Options{Codec: codec.TRLE{}, RecvTimeout: 150 * time.Millisecond, OnMissing: ComposePartial})
			assertContract(t, o, want)
			var corrupted, rejected int
			for _, s := range o.stats {
				corrupted += s.Corrupted
				rejected += s.RejectedCRC
			}
			if corrupted == 0 {
				t.Fatal("fault injection inactive: no corruption at corruptProb=0.4")
			}
			if rejected == 0 && o.anyDegraded() {
				t.Error("degraded without any CRC rejection recorded")
			}
			// The contract already rules out a silent wrong image; also
			// check the positive direction when everything was caught early.
			if o.final != nil && !o.anyDegraded() {
				allNil := true
				for _, err := range o.errs {
					if err != nil {
						allNil = false
					}
				}
				if allNil && !raster.Equal(o.final, want) {
					t.Fatal("corrupt data reached the composite undetected")
				}
			}
		})
	}
}

func TestChaosPeerDeath(t *testing.T) {
	// Killing the last rank mid-schedule: under fail-fast the survivors
	// time out with typed errors; under compose-partial rank 0 still
	// produces a flagged image.
	for name, sched := range chaosSchedules(t) {
		for _, policy := range []Policy{FailFast, ComposePartial} {
			t.Run(fmt.Sprintf("%s/%v", name, policy), func(t *testing.T) {
				layers, want := chaosLayers(8, sched.P)
				plan := faulty.Plan{Seed: 19, DieAfterSends: 1}
				o := runChaosCase(t, sched, layers, plan, sched.P-1,
					Options{Codec: codec.TRLE{}, RecvTimeout: 150 * time.Millisecond, OnMissing: policy})
				assertContract(t, o, want)
				if err := o.errs[sched.P-1]; err == nil || !errors.Is(err, faulty.ErrDead) {
					t.Errorf("dead rank error = %v, want ErrDead", err)
				}
				if policy == ComposePartial {
					if o.final == nil {
						t.Fatal("compose-partial produced no image despite a surviving root")
					}
					if !o.anyDegraded() && !raster.Equal(o.final, want) {
						t.Fatal("missing contribution neither flagged nor absent")
					}
				} else {
					// Fail-fast: whoever depended on the dead rank must fail
					// typed, and no degraded image may be produced.
					if o.anyDegraded() {
						t.Fatal("FailFast must not flag degradation")
					}
				}
			})
		}
	}
}

func TestChaosKitchenSink(t *testing.T) {
	// Everything at once, compose-partial: the run must terminate with the
	// contract intact whatever the mix does.
	if testing.Short() {
		t.Skip("short mode")
	}
	for name, sched := range chaosSchedules(t) {
		t.Run(name, func(t *testing.T) {
			layers, want := chaosLayers(9, sched.P)
			plan := faulty.Plan{
				Seed: 23, Drop: 0.2, MaxResend: 2, Backoff: 100 * time.Microsecond,
				DelayProb: 0.3, MaxDelay: 2 * time.Millisecond,
				DupProb: 0.2, CorruptProb: 0.1,
			}
			o := runChaosCase(t, sched, layers, plan, -1,
				Options{Codec: codec.TRLE{}, RecvTimeout: 250 * time.Millisecond, OnMissing: ComposePartial})
			assertContract(t, o, want)
		})
	}
}

// chaosPipelined flips a chaos option set onto the pipelined executor with
// a deterministic interleaving, so every pipelined chaos case also exercises
// a reordered delivery schedule.
func chaosPipelined(o Options) Options {
	o.Pipeline.Enabled = true
	o.Pipeline.InterleaveSeed = 99
	return o
}

// dropEverythingPlan silently discards every send: the total-loss scenario
// of the stall-detector and compose-partial tests.
func dropEverythingPlan() faulty.Plan { return faulty.Plan{Seed: 2, Drop: 1} }

// minRecvTimeout is the short failure-detection deadline of the loss cases.
func minRecvTimeout() time.Duration { return 200 * time.Millisecond }

// TestChaosPipelinedMatrix re-runs the chaos contract on the pipelined
// executor: for every schedule, the same fault plans that the synchronous
// matrix survives must yield the same outcomes — exact after retries,
// typed failure under fail-fast loss, flagged degradation under
// compose-partial, and the peer-death contract under both policies.
func TestChaosPipelinedMatrix(t *testing.T) {
	for name, sched := range chaosSchedules(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("drop-with-retry-exact", func(t *testing.T) {
				layers, want := chaosLayers(61, sched.P)
				plan := faulty.Plan{Seed: 7, Drop: 0.3, MaxResend: 10, Backoff: 100 * time.Microsecond}
				o := runChaosCase(t, sched, layers, plan, -1,
					chaosPipelined(Options{Codec: codec.TRLE{}, RecvTimeout: 10 * time.Second}))
				assertContract(t, o, want)
				for r, err := range o.errs {
					if err != nil {
						t.Errorf("rank %d: %v", r, err)
					}
				}
				if o.final == nil || !raster.Equal(o.final, want) {
					t.Fatal("pipelined retry run did not reproduce the reference image")
				}
			})
			t.Run("loss-failfast-typed", func(t *testing.T) {
				layers, want := chaosLayers(62, sched.P)
				plan := faulty.Plan{Seed: 3, Drop: 0.5}
				o := runChaosCase(t, sched, layers, plan, -1,
					chaosPipelined(Options{Codec: codec.TRLE{}, RecvTimeout: minRecvTimeout(), OnMissing: FailFast}))
				assertContract(t, o, want)
				var lost, failed int
				for _, s := range o.stats {
					lost += s.Lost
				}
				if lost == 0 {
					t.Skip("seed dropped nothing terminally; loss case not exercised")
				}
				for _, err := range o.errs {
					if err != nil {
						failed++
					}
				}
				if failed == 0 {
					t.Fatal("messages were lost but no pipelined rank failed under FailFast")
				}
			})
			t.Run("loss-composepartial-flagged", func(t *testing.T) {
				layers, want := chaosLayers(63, sched.P)
				plan := faulty.Plan{Seed: 3, Drop: 0.5}
				o := runChaosCase(t, sched, layers, plan, -1,
					chaosPipelined(Options{Codec: codec.TRLE{}, RecvTimeout: minRecvTimeout(), OnMissing: ComposePartial}))
				assertContract(t, o, want)
				var lost int
				for _, s := range o.stats {
					lost += s.Lost
				}
				if lost == 0 {
					t.Skip("seed dropped nothing terminally; loss case not exercised")
				}
				if !o.anyDegraded() {
					t.Fatal("messages were lost but no pipelined rank flagged degradation")
				}
			})
			for _, policy := range []Policy{FailFast, ComposePartial} {
				t.Run(fmt.Sprintf("peer-death/%v", policy), func(t *testing.T) {
					layers, want := chaosLayers(64, sched.P)
					plan := faulty.Plan{Seed: 19, DieAfterSends: 1}
					o := runChaosCase(t, sched, layers, plan, sched.P-1,
						chaosPipelined(Options{Codec: codec.TRLE{}, RecvTimeout: minRecvTimeout(), OnMissing: policy}))
					assertContract(t, o, want)
					if err := o.errs[sched.P-1]; err == nil || !errors.Is(err, faulty.ErrDead) {
						t.Errorf("dead rank error = %v, want ErrDead", err)
					}
					if policy == ComposePartial {
						if o.final == nil {
							t.Fatal("compose-partial produced no image despite a surviving root")
						}
						if !o.anyDegraded() && !raster.Equal(o.final, want) {
							t.Fatal("missing contribution neither flagged nor absent")
						}
					} else if o.anyDegraded() {
						t.Fatal("FailFast must not flag degradation")
					}
				})
			}
		})
	}
}

// TestChaosPipelinedConnReset: delivery jitter plus duplicates — the
// transient-fault mix the reliable session layer masks — must leave the
// pipelined result byte-exact, like the synchronous jitter case.
func TestChaosPipelinedConnReset(t *testing.T) {
	for name, sched := range chaosSchedules(t) {
		t.Run(name, func(t *testing.T) {
			layers, want := chaosLayers(65, sched.P)
			plan := faulty.Plan{Seed: 11, DelayProb: 0.6, MaxDelay: 5 * time.Millisecond, DupProb: 0.3}
			o := runChaosCase(t, sched, layers, plan, -1,
				chaosPipelined(Options{Codec: codec.TRLE{}, RecvTimeout: 10 * time.Second}))
			assertContract(t, o, want)
			if o.final == nil || !raster.Equal(o.final, want) {
				t.Fatal("jittered pipelined run did not reproduce the reference image")
			}
		})
	}
}

// TestChaosPipelinedRecoverSingleDeath: the Recover policy with the
// pipelined epoch-0 attempt must match the synchronous recovery contract —
// a recoverable single death still yields the exact fault-free image,
// flagged Recovered.
func TestChaosPipelinedRecoverSingleDeath(t *testing.T) {
	for name, sched := range chaosSchedules(t) {
		t.Run(name, func(t *testing.T) {
			layers, want := chaosLayers(66, sched.P)
			die := 1
			opts := recoverOptions(codec.TRLE{})
			opts.Pipeline.Enabled = true
			opts.Pipeline.InterleaveSeed = 31
			o := runRecoverCase(t, sched, layers, map[int]int{die: 1}, opts)
			if err := o.errs[die]; err == nil || !errors.Is(err, faulty.ErrDead) {
				t.Errorf("dead rank error = %v, want ErrDead", err)
			}
			for r, err := range o.errs {
				if r != die && err != nil {
					t.Errorf("survivor rank %d failed: %v", r, err)
				}
			}
			if o.final == nil || !raster.Equal(o.final, want) {
				t.Fatal("pipelined recovery did not reproduce the fault-free golden image")
			}
			for r, rep := range o.reports {
				if r == die || rep == nil {
					continue
				}
				if !rep.Recovered || rep.Degraded {
					t.Errorf("rank %d: Recovered=%v Degraded=%v", r, rep.Recovered, rep.Degraded)
				}
			}
		})
	}
}

func TestChaosDeterministicFaultStreams(t *testing.T) {
	// The same seed must inject the identical fault pattern run after run —
	// the property that makes chaos failures reproducible.
	sched, err := schedule.TwoNRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	layers, want := chaosLayers(10, sched.P)
	plan := faulty.Plan{Seed: 29, Drop: 0.25, MaxResend: 4, Backoff: 100 * time.Microsecond, DupProb: 0.2}
	var first []faulty.Stats
	for trial := 0; trial < 3; trial++ {
		o := runChaosCase(t, sched, layers, plan, -1,
			Options{Codec: codec.TRLE{}, RecvTimeout: 10 * time.Second})
		assertContract(t, o, want)
		if trial == 0 {
			first = o.stats
			continue
		}
		for r := range o.stats {
			if o.stats[r] != first[r] {
				t.Fatalf("trial %d rank %d stats %+v != first run %+v", trial, r, o.stats[r], first[r])
			}
		}
	}
}
