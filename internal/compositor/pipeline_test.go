package compositor

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/transport/faulty"
	"rtcomp/internal/transport/inproc"
)

// The pipelined differential suite: the message-driven per-tile executor
// must be byte-identical to the bulk-synchronous oracle for every schedule,
// codec, in-flight window and delivery interleaving — and must stay live
// (terminate or fail with a state dump) at any window size.

// pipeOutcome collects everything a pipelined in-process run produces.
type pipeOutcome struct {
	finals  []*raster.Image
	reports []*Report
	errs    []error
}

// runInprocPipe executes the schedule on the in-process fabric with the
// given options on every rank, under a hard no-hang watchdog.
func runInprocPipe(t *testing.T, sched *schedule.Schedule, layers []*raster.Image, opts Options) pipeOutcome {
	t.Helper()
	p := sched.P
	o := pipeOutcome{
		finals:  make([]*raster.Image, p),
		reports: make([]*Report, p),
		errs:    make([]error, p),
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		inproc.Run(p, func(c comm.Comm) error {
			img, rep, err := Run(c, sched, layers[c.Rank()], opts)
			r := c.Rank()
			o.finals[r] = img
			o.reports[r] = rep
			o.errs[r] = err
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("pipelined run HUNG: schedule did not terminate within the watchdog")
	}
	return o
}

// mustFinal asserts a clean run and returns the root's image.
func (o pipeOutcome) mustFinal(t *testing.T) *raster.Image {
	t.Helper()
	for r, err := range o.errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if o.finals[0] == nil {
		t.Fatal("no final image on the root")
	}
	return o.finals[0]
}

func pipeOptions(cdc codec.Codec) Options {
	return Options{
		Codec:      cdc,
		GatherRoot: 0,
		Pipeline:   PipelineConfig{Enabled: true},
	}
}

// TestPipelinedSmoke is the fast sanity cell of the matrix: one method, one
// codec, default windows, no interleaving.
func TestPipelinedSmoke(t *testing.T) {
	sched, err := schedule.TwoNRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	layers := makeLayers(rng, 4, 37, 11, true)
	want := compose.SerialComposite(layers)
	got := runInprocPipe(t, sched, layers, pipeOptions(codec.TRLE{})).mustFinal(t)
	if !raster.Equal(got, want) {
		t.Fatalf("pipelined differs from sequential reference: maxdiff=%d", raster.MaxDiff(got, want))
	}
}

// TestPipelinedDifferentialMatrix is the issue's differential matrix: every
// schedule method x every wire codec x a sweep of interleaving seeds (seed 0
// = natural delivery order, plus eight seeded permutations), with the
// in-flight window varied across seeds. Binary alpha makes u8 "over" exactly
// associative, so the pipelined image must equal both the synchronous oracle
// and the sequential reference byte for byte.
func TestPipelinedDifferentialMatrix(t *testing.T) {
	const w, h, p = 37, 11, 4
	seeds := []int64{0, 1, 2, 3, 5, 8, 13, 21, 0x5EED}
	windows := []int{0, 1, 2, 3, -1, 1, 2, 0, 3} // paired with seeds by index
	for _, m := range methods() {
		if !m.okFor(p) {
			continue
		}
		sched, err := m.build(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, cdcName := range []string{"raw", "rle", "trle"} {
			t.Run(fmt.Sprintf("%s/%s", m.name, cdcName), func(t *testing.T) {
				cdc, err := codec.ByName(cdcName)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(len(m.name)*100 + len(cdcName))))
				layers := makeLayers(rng, p, w, h, true)
				want := compose.SerialComposite(layers)
				oracle := runInproc(t, sched, layers, cdc) // synchronous path
				if !raster.Equal(oracle, want) {
					t.Fatalf("synchronous oracle differs from sequential reference")
				}
				for i, seed := range seeds {
					opts := pipeOptions(cdc)
					opts.Pipeline.InterleaveSeed = seed
					opts.Pipeline.Window = windows[i]
					got := runInprocPipe(t, sched, layers, opts).mustFinal(t)
					if !raster.Equal(got, oracle) {
						t.Fatalf("seed=%d window=%d: pipelined differs from synchronous oracle: maxdiff=%d",
							seed, windows[i], raster.MaxDiff(got, oracle))
					}
				}
			})
		}
	}
}

// TestPipelinedOddRanksAndLargerP covers processor counts the main matrix
// skips: odd p (no binary-swap) and p=8.
func TestPipelinedOddRanksAndLargerP(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		for _, m := range differentialMethods() {
			if !m.okFor(p) {
				continue
			}
			t.Run(fmt.Sprintf("%s/p%d", m.name, p), func(t *testing.T) {
				sched, err := m.build(p)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(p * 7)))
				layers := makeLayers(rng, p, 41, 13, true)
				want := compose.SerialComposite(layers)
				opts := pipeOptions(codec.TRLE{})
				opts.Pipeline.InterleaveSeed = int64(p) * 31
				got := runInprocPipe(t, sched, layers, opts).mustFinal(t)
				if !raster.Equal(got, want) {
					t.Fatalf("maxdiff=%d", raster.MaxDiff(got, want))
				}
			})
		}
	}
}

// TestPipelinedBackpressureWindows is the liveness satellite: the two
// extreme in-flight windows — fully serialized (1) and far beyond the tile
// count (2*tiles) — plus a gather-credit window of 1 must all run to the
// exact result without deadlock (the watchdog in runInprocPipe enforces
// termination).
func TestPipelinedBackpressureWindows(t *testing.T) {
	const p = 4
	for _, m := range differentialMethods() {
		if !m.okFor(p) {
			continue
		}
		sched, err := m.build(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, win := range []int{1, 2 * sched.Tiles} {
			t.Run(fmt.Sprintf("%s/window%d", m.name, win), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(win)))
				layers := makeLayers(rng, p, 37, 11, true)
				want := compose.SerialComposite(layers)
				opts := pipeOptions(codec.TRLE{})
				opts.Pipeline.Window = win
				opts.Pipeline.GatherWindow = 1
				opts.Pipeline.InterleaveSeed = 777
				got := runInprocPipe(t, sched, layers, opts).mustFinal(t)
				if !raster.Equal(got, want) {
					t.Fatalf("maxdiff=%d", raster.MaxDiff(got, want))
				}
			})
		}
	}
}

// TestPipelinedStallDetectorDumpsState is the stall-detector satellite:
// when every message is silently dropped, a fail-fast pipelined rank must
// fail within its receive deadline — not hang — and the error must carry
// the per-tile state dump naming what each tile was waiting for.
func TestPipelinedStallDetectorDumpsState(t *testing.T) {
	sched, err := schedule.TwoNRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	layers := makeLayers(rng, 4, 32, 32, true)
	p := sched.P
	errs := make([]error, p)
	done := make(chan struct{})
	go func() {
		defer close(done)
		inproc.Run(p, func(c comm.Comm) error {
			ep := faulty.Wrap(c, faulty.Plan{Seed: 1, Drop: 1})
			opts := pipeOptions(codec.TRLE{})
			opts.RecvTimeout = 200 * time.Millisecond
			opts.OnMissing = FailFast
			_, _, err := Run(ep, sched, layers[c.Rank()], opts)
			errs[c.Rank()] = err
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stalled pipeline HUNG instead of failing within its deadline")
	}
	dumped := false
	for r, err := range errs {
		if err == nil {
			continue
		}
		if !comm.IsRecoverable(err) {
			t.Errorf("rank %d failed untyped: %v", r, err)
		}
		msg := err.Error()
		if strings.Contains(msg, "per-tile states") {
			dumped = true
			if !strings.Contains(msg, "tile 0:") {
				t.Errorf("state dump lacks per-tile lines:\n%s", msg)
			}
			if !strings.Contains(msg, "awaiting") {
				t.Errorf("state dump does not name what is awaited:\n%s", msg)
			}
		}
	}
	if !dumped {
		t.Fatalf("no rank failed with a per-tile state dump; errors: %v", errs)
	}
}

// TestPipelinedStallDumpsFlightRecorder: a fail-fast stall with telemetry
// attached must embed the flight recorder's event history in the error —
// the crash post-mortem — including the stalled tiles' own state
// transitions, so the investigator sees not just where each tile is stuck
// but how it got there.
func TestPipelinedStallDumpsFlightRecorder(t *testing.T) {
	sched, err := schedule.TwoNRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	layers := makeLayers(rng, 4, 32, 32, true)
	p := sched.P
	rec := telemetry.New()
	errs := make([]error, p)
	done := make(chan struct{})
	go func() {
		defer close(done)
		inproc.Run(p, func(c comm.Comm) error {
			ep := faulty.Wrap(c, faulty.Plan{Seed: 1, Drop: 1})
			opts := pipeOptions(codec.TRLE{})
			opts.RecvTimeout = 200 * time.Millisecond
			opts.OnMissing = FailFast
			opts.Telemetry = rec
			_, _, err := Run(ep, sched, layers[c.Rank()], opts)
			errs[c.Rank()] = err
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stalled pipeline HUNG instead of failing within its deadline")
	}
	dumped := false
	for _, err := range errs {
		if err == nil {
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, "flight recorder:") {
			continue
		}
		dumped = true
		// The stalled tile's full history: it was claimed, entered steps,
		// and the stall itself is the final recorded event.
		for _, want := range []string{"tile", "claimed", "pipeline stalled"} {
			if !strings.Contains(msg, want) {
				t.Errorf("flight dump missing %q:\n%s", want, msg)
			}
		}
	}
	if !dumped {
		t.Fatalf("no rank failed with a flight-recorder dump; errors: %v", errs)
	}
	// The recorder itself retains the events for out-of-band dumps too.
	if len(rec.FlightEvents()) == 0 {
		t.Fatal("recorder holds no flight events after a stall")
	}
}

// TestPipelinedComposePartialDegrades: total loss under compose-partial
// must terminate with a flagged, accounted result instead of an error.
func TestPipelinedComposePartialDegrades(t *testing.T) {
	sched, err := schedule.NRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	layers := makeLayers(rng, 4, 32, 32, true)
	p := sched.P
	reports := make([]*Report, p)
	errs := make([]error, p)
	done := make(chan struct{})
	go func() {
		defer close(done)
		inproc.Run(p, func(c comm.Comm) error {
			ep := faulty.Wrap(c, faulty.Plan{Seed: 2, Drop: 1})
			opts := pipeOptions(codec.TRLE{})
			opts.RecvTimeout = 200 * time.Millisecond
			opts.OnMissing = ComposePartial
			_, rep, err := Run(ep, sched, layers[c.Rank()], opts)
			reports[c.Rank()] = rep
			errs[c.Rank()] = err
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("compose-partial pipeline HUNG under total loss")
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: compose-partial must absorb loss, got %v", r, err)
		}
	}
	rep0 := reports[0]
	if rep0 == nil || !rep0.Degraded {
		t.Fatal("total loss not flagged Degraded on the root")
	}
	if rep0.MissingTransfers == 0 && rep0.MissingGathers == 0 && rep0.MissingLayerPix == 0 {
		t.Fatal("root degraded without accounting for anything missing")
	}
}

// TestPipelinedNoGather mirrors TestNoGather: with GatherRoot < 0 the
// pipeline stops after composition and every rank reports its final blocks.
func TestPipelinedNoGather(t *testing.T) {
	sched, err := schedule.TwoNRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	layers := makeLayers(rng, 4, 33, 9, true)
	opts := pipeOptions(codec.RLE{})
	opts.GatherRoot = -1
	o := runInprocPipe(t, sched, layers, opts)
	for r, err := range o.errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if o.finals[r] != nil {
			t.Errorf("rank %d produced an image without a gather root", r)
		}
		if o.reports[r] == nil || o.reports[r].FinalBlocks == 0 {
			t.Errorf("rank %d reports no final blocks", r)
		}
	}
}

// TestPipelinedBroadcast: with Broadcast on, every rank must end up with
// the identical final image.
func TestPipelinedBroadcast(t *testing.T) {
	sched, err := schedule.BinarySwap(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	layers := makeLayers(rng, 4, 24, 18, true)
	want := compose.SerialComposite(layers)
	opts := pipeOptions(codec.TRLE{})
	opts.GatherRoot = 1
	opts.Broadcast = true
	o := runInprocPipe(t, sched, layers, opts)
	for r, err := range o.errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if o.finals[r] == nil || !raster.Equal(o.finals[r], want) {
			t.Errorf("rank %d did not receive the broadcast image", r)
		}
	}
}

// TestPipelinedSingleRank: the degenerate one-rank pipeline is a local
// reshuffle plus a self-gather.
func TestPipelinedSingleRank(t *testing.T) {
	sched, err := schedule.Pipeline(1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	layers := makeLayers(rng, 1, 19, 23, true)
	got := runInprocPipe(t, sched, layers, pipeOptions(codec.Raw{})).mustFinal(t)
	if !raster.Equal(got, layers[0]) {
		t.Fatal("single-rank pipelined composition must be the identity")
	}
}

// TestPipelinedReportAccounting mirrors TestReportAccounting: the pipelined
// executor must account the same over-composited pixel total as the
// schedule census predicts, and the same wire traffic invariants.
func TestPipelinedReportAccounting(t *testing.T) {
	const w, h, p = 40, 30, 4
	sched, err := schedule.TwoNRT(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	layers := makeLayers(rng, p, w, h, false)
	opts := pipeOptions(codec.Raw{})
	o := runInprocPipe(t, sched, layers, opts)
	o.mustFinal(t)
	census, err := schedule.Validate(sched, w*h)
	if err != nil {
		t.Fatal(err)
	}
	var over, raw, wire int64
	for r, rep := range o.reports {
		if rep == nil {
			t.Fatalf("rank %d has no report", r)
		}
		over += rep.OverPixels
		raw += rep.RawBytes
		wire += rep.WireBytes
	}
	if over != census.TotalOverPixels() {
		t.Errorf("pipelined over-pixel total = %d, census predicts %d", over, census.TotalOverPixels())
	}
	if raw == 0 || wire == 0 {
		t.Error("pipelined run reports no traffic")
	}
	// The synchronous oracle must account identically (same schedule, same
	// layers, raw codec): the pipeline changes when work happens, not what.
	sopts := Options{Codec: codec.Raw{}, GatherRoot: 0}
	so := runInprocPipe(t, sched, layers, sopts)
	so.mustFinal(t)
	var sover, sraw int64
	for _, rep := range so.reports {
		sover += rep.OverPixels
		sraw += rep.RawBytes
	}
	if over != sover || raw != sraw {
		t.Errorf("pipelined accounting (over=%d raw=%d) differs from synchronous (over=%d raw=%d)",
			over, raw, sover, sraw)
	}
}

// gateSource is a test Source: each tile's pixels become "rendered" when
// the test releases them. Shared by all ranks of an in-process run.
type gateSource struct {
	mu       sync.Mutex
	released []bool
	cond     *sync.Cond
}

func newGateSource(tiles int) *gateSource {
	g := &gateSource{released: make([]bool, tiles)}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *gateSource) release(tile int) {
	g.mu.Lock()
	g.released[tile] = true
	g.mu.Unlock()
	g.cond.Broadcast()
}

func (g *gateSource) WaitTile(tile int, _ raster.Span) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for !g.released[tile] {
		g.cond.Wait()
	}
	return nil
}

// TestPipelinedOverlapsRenderWithComposition proves the tentpole's point:
// with the last tile's render gated until the first completed tile has been
// delivered progressively, the run can only terminate if composition of
// early tiles proceeds while later tiles are still rendering. The telemetry
// spans then show the overlap: every per-tile span of the last tile starts
// after some earlier tile's span has already ended.
func TestPipelinedOverlapsRenderWithComposition(t *testing.T) {
	sched, err := schedule.TwoNRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	layers := makeLayers(rng, 4, 36, 12, true)
	want := compose.SerialComposite(layers)
	tiles := sched.Tiles
	last := tiles - 1
	gate := newGateSource(tiles)
	for tl := 0; tl < last; tl++ {
		gate.release(tl)
	}
	rec := telemetry.New()
	var releaseAt time.Duration
	var once sync.Once
	opts := pipeOptions(codec.TRLE{})
	opts.Telemetry = rec
	opts.Pipeline.Window = -1 // claim every tile so the gated one has a worker
	opts.Pipeline.Source = gate
	opts.Pipeline.OnPartial = func(f PartialFrame) {
		if f.Tile != last {
			once.Do(func() {
				releaseAt = time.Since(rec.Epoch())
				gate.release(last)
			})
		}
	}
	got := runInprocPipe(t, sched, layers, opts).mustFinal(t)
	if !raster.Equal(got, want) {
		t.Fatalf("gated run differs from reference: maxdiff=%d", raster.MaxDiff(got, want))
	}
	if releaseAt == 0 {
		t.Fatal("no early tile was delivered progressively before the last tile rendered")
	}
	var perRank = map[int]int{}
	earlierEnded := false
	for _, sp := range rec.Spans() {
		if sp.Name != telemetry.PhaseTile {
			continue
		}
		perRank[sp.Rank]++
		if sp.Step == last && sp.Start < releaseAt {
			t.Errorf("rank %d began composing tile %d before its pixels were rendered", sp.Rank, last)
		}
		if sp.Step != last && sp.End <= releaseAt {
			earlierEnded = true
		}
	}
	for r := 0; r < sched.P; r++ {
		if perRank[r] != tiles {
			t.Errorf("rank %d recorded %d tile spans, want %d", r, perRank[r], tiles)
		}
	}
	if !earlierEnded {
		t.Error("no earlier tile finished composing before the last tile's render completed — no overlap visible")
	}
}

// TestInterleaverDeterministicPermutation: the reorder buffer must release
// a fixed message set in an order that is a pure function of the seed, and
// different seeds must produce different permutations.
func TestInterleaverDeterministicPermutation(t *testing.T) {
	type msg struct{ from, tag int }
	msgs := []msg{{1, 10}, {2, 10}, {1, 20}, {3, 30}, {0, 40}, {2, 50}}
	order := func(seed int64) []msg {
		il := newInterleaver(seed)
		for _, m := range msgs {
			il.push(m.from, m.tag, nil)
		}
		out := make([]msg, 0, len(msgs))
		for il.len() > 0 {
			f, tg, _ := il.pop()
			out = append(out, msg{f, tg})
		}
		return out
	}
	if newInterleaver(0) != nil {
		t.Fatal("seed 0 must disable the interleaver")
	}
	distinct := map[string]bool{}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		a := order(seed)
		b := order(seed)
		key := fmt.Sprint(a)
		if key != fmt.Sprint(b) {
			t.Fatalf("seed %d is not deterministic: %v vs %v", seed, a, b)
		}
		if len(a) != len(msgs) {
			t.Fatalf("seed %d lost messages: %v", seed, a)
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Error("five seeds produced a single permutation; the interleaver is not permuting")
	}
}

// TestPipelinedCountersGatherToRootTable: the cross-rank observability
// contract. After a pipelined run, every rank ships its summary — pipeline
// counters and latency histograms included — to rank 0 over the fabric, and
// the rank-0 StepTable must account for ALL ranks: total tiles_done equals
// p x tiles (each rank claims every tile), the in-flight peak is reported
// with busiest-rank (max) semantics, and the merged tile-latency quantiles
// appear as footnotes.
func TestPipelinedCountersGatherToRootTable(t *testing.T) {
	sched, err := schedule.TwoNRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	p := sched.P
	layers := makeLayers(rng, p, 37, 11, true)
	rec := telemetry.New()
	opts := pipeOptions(codec.TRLE{})
	opts.Telemetry = rec

	var mu sync.Mutex
	var rootSummaries []telemetry.Summary
	done := make(chan error, 1)
	go func() {
		done <- inproc.RunTel(p, rec, func(c comm.Comm) error {
			if _, _, err := Run(c, sched, layers[c.Rank()], opts); err != nil {
				return fmt.Errorf("rank %d: %w", c.Rank(), err)
			}
			var seq comm.Sequencer
			sums, err := telemetry.GatherSummaries(c, &seq, 0, rec.Summary(c.Rank()), 5*time.Second)
			if err != nil {
				return fmt.Errorf("rank %d gather: %w", c.Rank(), err)
			}
			if c.Rank() == 0 {
				mu.Lock()
				rootSummaries = sums
				mu.Unlock()
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pipelined gather run HUNG")
	}
	if len(rootSummaries) != p {
		t.Fatalf("rank 0 gathered %d summaries, want %d", len(rootSummaries), p)
	}

	// Every rank — not just rank 0 — must have shipped its pipeline counters.
	ctr := func(s telemetry.Summary, name string) (int64, bool) {
		for _, c := range s.Counters {
			if c.Name == name && c.Step == telemetry.StepNone {
				return c.Value, true
			}
		}
		return 0, false
	}
	for r, s := range rootSummaries {
		v, ok := ctr(s, telemetry.CtrTilesDone)
		if !ok || v != int64(sched.Tiles) {
			t.Errorf("rank %d summary: tiles_done=%d ok=%v, want %d", r, v, ok, sched.Tiles)
		}
		if v, ok := ctr(s, telemetry.CtrPipeInflightMax); !ok || v < 1 {
			t.Errorf("rank %d summary: pipe_inflight_max=%d ok=%v, want >= 1", r, v, ok)
		}
		if len(s.Hists) == 0 {
			t.Errorf("rank %d summary shipped no histogram snapshots", r)
		}
	}

	table := telemetry.StepTable(rootSummaries).String()
	wantTiles := fmt.Sprintf("%s: %d", telemetry.CtrTilesDone, p*sched.Tiles)
	if !strings.Contains(table, wantTiles) {
		t.Errorf("rank-0 table missing summed %q:\n%s", wantTiles, table)
	}
	if !strings.Contains(table, telemetry.CtrPipeInflightMax+" (busiest rank):") {
		t.Errorf("rank-0 table missing max-semantics in-flight note:\n%s", table)
	}
	if !strings.Contains(table, telemetry.HistTileLatency+": p50=") {
		t.Errorf("rank-0 table missing merged tile-latency quantiles:\n%s", table)
	}
}
