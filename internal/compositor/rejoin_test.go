package compositor

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/statexfer"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/transport/faulty"
	"rtcomp/internal/transport/inproc"
)

// The rejoin suite asserts the self-healing contract: a rank killed
// mid-frame is replaced by a spare via merkle-verified state transfer, the
// healed mesh commits the byte-identical fault-free image at full capacity
// (Rejoined, never Recovered/Degraded), a corrupt transfer is rejected with
// a typed error while the survivors still recover, and the replica scrubber
// detects and repairs silent replica corruption before it is ever needed.

// errEpochKill is the injected post-rejoin death: a deterministic,
// timing-independent kill keyed to the recovery epoch carried in bits 56+
// of every non-negative composition tag.
var errEpochKill = errors.New("rejoin test: endpoint killed at epoch threshold")

// epochKiller wraps a comm endpoint and dies the first time it sends
// composition traffic (a non-negative tag) at or above the given epoch —
// the deterministic way to kill a rank "after the rejoin", since hello
// rebroadcast counts make send-counting nondeterministic.
type epochKiller struct {
	inner comm.Comm
	epoch int
	dead  bool
}

func (k *epochKiller) Rank() int { return k.inner.Rank() }
func (k *epochKiller) Size() int { return k.inner.Size() }

func (k *epochKiller) Send(to, tag int, payload []byte) error {
	if !k.dead && tag >= 0 && tag>>56 >= k.epoch {
		k.dead = true
	}
	if k.dead {
		return errEpochKill
	}
	return k.inner.Send(to, tag, payload)
}

func (k *epochKiller) Recv(from, tag int) ([]byte, error) {
	if k.dead {
		return nil, errEpochKill
	}
	return k.inner.Recv(from, tag)
}

func (k *epochKiller) RecvTimeout(from, tag int, timeout time.Duration) ([]byte, error) {
	if k.dead {
		return nil, errEpochKill
	}
	return k.inner.RecvTimeout(from, tag, timeout)
}

func (k *epochKiller) RecvAny(keys []comm.MsgKey) (int, int, []byte, error) {
	if k.dead {
		return 0, 0, nil, errEpochKill
	}
	return k.inner.RecvAny(keys)
}

func (k *epochKiller) RecvAnyTimeout(keys []comm.MsgKey, timeout time.Duration) (int, int, []byte, error) {
	if k.dead {
		return 0, 0, nil, errEpochKill
	}
	return k.inner.RecvAnyTimeout(keys, timeout)
}

func (k *epochKiller) Counters() comm.Counters { return k.inner.Counters() }
func (k *epochKiller) Close() error            { return k.inner.Close() }

// spareSpec is one standby incarnation queued for a rank slot. killEpoch > 0
// wraps the spare in an epochKiller so it dies on its first composition send
// at or above that epoch — the repeated-death scenario.
type spareSpec struct {
	killEpoch int
}

type rejoinOutcome struct {
	final     *raster.Image
	reports   []*Report // first (member) incarnation per rank
	errs      []error
	spareReps map[int][]*Report // per rank slot, in launch order
	spareErrs map[int][]error
}

// runRejoinCase runs the schedule on a manually-managed fabric so dead rank
// slots can be reattached: each rank's goroutine runs the member incarnation
// and then, when it returns, launches the queued spares for that slot in
// order. dieAfter kills members by send count (1 = right after the replica
// ships); epochKill kills members at an epoch threshold (for post-rejoin
// buddy deaths).
func runRejoinCase(t *testing.T, sched *schedule.Schedule, layers []*raster.Image,
	dieAfter map[int]int, epochKill map[int]int, spares map[int][]spareSpec, opts Options) rejoinOutcome {
	t.Helper()
	p := sched.P
	out := rejoinOutcome{
		reports:   make([]*Report, p),
		errs:      make([]error, p),
		spareReps: map[int][]*Report{},
		spareErrs: map[int][]error{},
	}
	for r, ss := range spares {
		out.spareReps[r] = make([]*Report, len(ss))
		out.spareErrs[r] = make([]error, len(ss))
	}
	f := inproc.New(p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := f.Endpoint(r)
			var c comm.Comm = faulty.Wrap(ep, faulty.Plan{Seed: 41, DieAfterSends: dieAfter[r]})
			if ke := epochKill[r]; ke > 0 {
				c = &epochKiller{inner: c, epoch: ke}
			}
			img, rep, err := Run(c, sched, layers[r], opts)
			ep.Close()
			out.reports[r] = rep
			out.errs[r] = err
			if img != nil && r == 0 {
				out.final = img
			}
			for i, sp := range spares[r] {
				sep := f.Reattach(r)
				// The members speak through the faulty framing layer (CRC
				// trailers); the spare must too, or its hellos are discarded
				// as corrupt frames.
				var sc comm.Comm = faulty.Wrap(sep, faulty.Plan{Seed: 41})
				if sp.killEpoch > 0 {
					sc = &epochKiller{inner: sc, epoch: sp.killEpoch}
				}
				simg, srep, serr := RunSpare(sc, sched, opts)
				sep.Close()
				out.spareReps[r][i] = srep
				out.spareErrs[r][i] = serr
				if simg != nil && r == 0 {
					out.final = simg
				}
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatalf("rejoin case HUNG: schedule did not terminate within the watchdog")
	}
	return out
}

func rejoinOptions(cdc codec.Codec) Options {
	o := recoverOptions(cdc)
	o.RejoinTimeout = 10 * time.Second
	return o
}

// assertHealedRun asserts the headline invariant on a fully healed run: the
// root's image is byte-identical to the fault-free golden, and every
// survivor committed at full capacity — Rejoined, not Recovered, never
// Degraded, never evicted.
func assertHealedRun(t *testing.T, o rejoinOutcome, want *raster.Image, survivors []int, wantRejoins int) {
	t.Helper()
	for _, r := range survivors {
		if err := o.errs[r]; err != nil {
			t.Errorf("survivor rank %d failed: %v", r, err)
			continue
		}
		rep := o.reports[r]
		if rep == nil {
			t.Errorf("survivor rank %d has no report", r)
			continue
		}
		if rep.Degraded {
			t.Errorf("rank %d flagged Degraded on a healed run", r)
		}
		if rep.Recovered {
			t.Errorf("rank %d flagged Recovered on a run that healed to full capacity", r)
		}
		if !rep.Rejoined {
			t.Errorf("rank %d did not flag Rejoined", r)
		}
		if rep.RejoinEpochs != wantRejoins {
			t.Errorf("rank %d RejoinEpochs = %d, want %d", r, rep.RejoinEpochs, wantRejoins)
		}
	}
	if o.final == nil {
		t.Fatal("no final image on the root")
	}
	if !raster.Equal(o.final, want) {
		t.Fatalf("healed image differs from fault-free golden: maxdiff=%d", raster.MaxDiff(o.final, want))
	}
}

// TestRejoinSingleDeath: one rank killed after its replica ships, a spare
// queued for the slot — the run must heal and commit the byte-identical
// fault-free image, across every method and every wire codec.
func TestRejoinSingleDeath(t *testing.T) {
	codecs := []string{"raw", "rle", "trle"}
	for name, sched := range chaosSchedules(t) {
		for ci, cname := range codecs {
			die := 1 + ci%(sched.P-1)
			t.Run(fmt.Sprintf("%s/%s/kill%d", name, cname, die), func(t *testing.T) {
				t.Parallel()
				cdc, err := codec.ByName(cname)
				if err != nil {
					t.Fatal(err)
				}
				layers, want := chaosLayers(51, sched.P)
				o := runRejoinCase(t, sched, layers,
					map[int]int{die: 1}, nil,
					map[int][]spareSpec{die: {{}}},
					rejoinOptions(cdc))
				if err := o.errs[die]; err == nil || !errors.Is(err, faulty.ErrDead) {
					t.Errorf("dead rank error = %v, want ErrDead", err)
				}
				if err := o.spareErrs[die][0]; err != nil {
					t.Fatalf("spare for rank %d failed: %v", die, err)
				}
				srep := o.spareReps[die][0]
				if srep == nil || !srep.Rejoined || len(srep.RejoinedRanks) != 1 || srep.RejoinedRanks[0] != die {
					t.Errorf("spare report = %+v, want Rejoined with RejoinedRanks [%d]", srep, die)
				}
				var survivors []int
				for r := 0; r < sched.P; r++ {
					if r != die {
						survivors = append(survivors, r)
					}
				}
				assertHealedRun(t, o, want, survivors, 1)
				for _, r := range survivors {
					if rep := o.reports[r]; rep != nil && (len(rep.RejoinedRanks) != 1 || rep.RejoinedRanks[0] != die) {
						t.Errorf("rank %d RejoinedRanks = %v, want [%d]", r, rep.RejoinedRanks, die)
					}
				}
			})
		}
	}
}

// TestRejoinThenBuddyDeath is the headline chaos scenario: kill rank 2, let
// its spare rejoin, then kill rank 3 — the buddy holding rank 2's replica —
// and let a spare rejoin that slot too. The frame must still commit
// byte-identical at full capacity with zero false evictions, and with
// MaxRecoveries=1 the run only succeeds because a successful rejoin resets
// the recovery budget.
func TestRejoinThenBuddyDeath(t *testing.T) {
	for _, maxRec := range []int{0, 1} { // 0 = default budget
		t.Run(fmt.Sprintf("maxrec=%d", maxRec), func(t *testing.T) {
			t.Parallel()
			sched, err := schedule.NRT(4, 4)
			if err != nil {
				t.Fatal(err)
			}
			layers, want := chaosLayers(52, sched.P)
			opts := rejoinOptions(codec.TRLE{})
			opts.MaxRecoveries = maxRec
			o := runRejoinCase(t, sched, layers,
				map[int]int{2: 1}, // rank 2 dies right after its replica ships
				map[int]int{3: 2}, // rank 3 dies on its first post-rejoin epoch
				map[int][]spareSpec{2: {{}}, 3: {{}}},
				opts)
			if err := o.errs[2]; err == nil || !errors.Is(err, faulty.ErrDead) {
				t.Errorf("rank 2 error = %v, want ErrDead", err)
			}
			if err := o.errs[3]; err == nil || !errors.Is(err, errEpochKill) {
				t.Errorf("rank 3 error = %v, want errEpochKill", err)
			}
			for _, r := range []int{2, 3} {
				if err := o.spareErrs[r][0]; err != nil {
					t.Fatalf("spare for rank %d failed: %v", r, err)
				}
			}
			assertHealedRun(t, o, want, []int{0, 1}, 2)
		})
	}
}

// TestRejoinRepeatedDeathSameRank: the same logical rank dies, rejoins,
// dies again, and a second spare rejoins — across every schedule method and
// every wire codec, the healed frame must stay byte-identical to the
// fault-free oracle.
func TestRejoinRepeatedDeathSameRank(t *testing.T) {
	codecs := []string{"raw", "rle", "trle"}
	for name, sched := range chaosSchedules(t) {
		for ci, cname := range codecs {
			die := 1 + ci%(sched.P-1)
			t.Run(fmt.Sprintf("%s/%s/kill%d", name, cname, die), func(t *testing.T) {
				t.Parallel()
				cdc, err := codec.ByName(cname)
				if err != nil {
					t.Fatal(err)
				}
				layers, want := chaosLayers(53, sched.P)
				o := runRejoinCase(t, sched, layers,
					map[int]int{die: 1}, nil,
					// First spare dies on its first composition send after
					// rejoining; the second one lives.
					map[int][]spareSpec{die: {{killEpoch: 1}, {}}},
					rejoinOptions(cdc))
				if err := o.spareErrs[die][0]; err == nil || !errors.Is(err, errEpochKill) {
					t.Errorf("first spare error = %v, want errEpochKill", err)
				}
				if err := o.spareErrs[die][1]; err != nil {
					t.Fatalf("second spare failed: %v", err)
				}
				var survivors []int
				for r := 0; r < sched.P; r++ {
					if r != die {
						survivors = append(survivors, r)
					}
				}
				assertHealedRun(t, o, want, survivors, 2)
			})
		}
	}
}

// TestRejoinCorruptTransferRejected: the sponsor's chunk stream is corrupted
// in flight; the spare must reject the transfer with the typed merkle
// mismatch, and the survivors must fall back to ordinary recovery — still
// byte-identical, just not rejoined.
func TestRejoinCorruptTransferRejected(t *testing.T) {
	sched, err := schedule.TwoNRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	die := 2
	sponsor := schedule.Buddy(die, sched.P) // rank 3
	layers, want := chaosLayers(54, sched.P)
	opts := rejoinOptions(codec.Raw{})
	opts.RejoinTimeout = 2 * time.Second // the failed join must not stall the frame long

	p := sched.P
	reports := make([]*Report, p)
	errs := make([]error, p)
	var spareErr error
	var spareRep *Report
	var final *raster.Image
	f := inproc.New(p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := f.Endpoint(r)
			var c comm.Comm = faulty.Wrap(ep, faulty.Plan{Seed: 41, DieAfterSends: map[bool]int{true: 1}[r == die]})
			if r == sponsor {
				c = &xferCorrupter{inner: c}
			}
			img, rep, err := Run(c, sched, layers[r], opts)
			ep.Close()
			reports[r] = rep
			errs[r] = err
			if img != nil && r == 0 {
				final = img
			}
			if r == die {
				sep := f.Reattach(r)
				_, spareRep, spareErr = RunSpare(faulty.Wrap(sep, faulty.Plan{Seed: 41}), sched, opts)
				sep.Close()
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("corrupt-transfer case HUNG")
	}

	if spareErr == nil || !errors.Is(spareErr, statexfer.ErrChunkMismatch) {
		t.Fatalf("spare error = %v, want statexfer.ErrChunkMismatch", spareErr)
	}
	if spareRep != nil {
		t.Errorf("rejected spare still produced a report: %+v", spareRep)
	}
	for _, r := range []int{0, 1, 3} {
		if errs[r] != nil {
			t.Errorf("survivor rank %d failed: %v", r, errs[r])
			continue
		}
		rep := reports[r]
		if rep.Rejoined {
			t.Errorf("rank %d flagged Rejoined after a rejected transfer", r)
		}
		if !rep.Recovered || rep.Degraded {
			t.Errorf("rank %d must recover cleanly without the spare: %+v", r, rep)
		}
	}
	if final == nil || !raster.Equal(final, want) {
		t.Fatal("survivors did not produce the byte-identical image after the rejected join")
	}
}

// xferCorrupter flips a payload byte on every join state-transfer chunk this
// endpoint sends, leaving all other traffic intact.
type xferCorrupter struct {
	inner comm.Comm
}

func isXferTag(tag int) bool {
	base := comm.JoinXferTag(0, 0)
	return tag <= base && tag > 2*base
}

func (x *xferCorrupter) Rank() int { return x.inner.Rank() }
func (x *xferCorrupter) Size() int { return x.inner.Size() }
func (x *xferCorrupter) Send(to, tag int, payload []byte) error {
	if isXferTag(tag) && len(payload) > 8 {
		mangled := append([]byte(nil), payload...)
		mangled[8] ^= 0xA5 // inside the chunk data for any realistic chunk
		return x.inner.Send(to, tag, mangled)
	}
	return x.inner.Send(to, tag, payload)
}
func (x *xferCorrupter) Recv(from, tag int) ([]byte, error) { return x.inner.Recv(from, tag) }
func (x *xferCorrupter) RecvTimeout(from, tag int, timeout time.Duration) ([]byte, error) {
	return x.inner.RecvTimeout(from, tag, timeout)
}
func (x *xferCorrupter) RecvAny(keys []comm.MsgKey) (int, int, []byte, error) {
	return x.inner.RecvAny(keys)
}
func (x *xferCorrupter) RecvAnyTimeout(keys []comm.MsgKey, timeout time.Duration) (int, int, []byte, error) {
	return x.inner.RecvAnyTimeout(keys, timeout)
}
func (x *xferCorrupter) Counters() comm.Counters { return x.inner.Counters() }
func (x *xferCorrupter) Close() error            { return x.inner.Close() }

// TestRejoinTimeout asserts both halves of the bounded-window contract:
// without a spare the survivors degrade to ordinary recovery after the
// window, and a spare facing a mesh that never admits it returns the typed
// *RejoinTimeoutError.
func TestRejoinTimeout(t *testing.T) {
	t.Run("no-spare-degrades-to-recovery", func(t *testing.T) {
		t.Parallel()
		sched, err := schedule.BinarySwap(4)
		if err != nil {
			t.Fatal(err)
		}
		layers, want := chaosLayers(55, sched.P)
		opts := rejoinOptions(codec.RLE{})
		opts.RejoinTimeout = 300 * time.Millisecond
		o := runRecoverCase(t, sched, layers, map[int]int{2: 1}, opts)
		for _, r := range []int{0, 1, 3} {
			if o.errs[r] != nil {
				t.Errorf("survivor rank %d failed: %v", r, o.errs[r])
				continue
			}
			rep := o.reports[r]
			if !rep.Recovered || rep.Degraded || rep.Rejoined {
				t.Errorf("rank %d must fall back to plain recovery: %+v", r, rep)
			}
		}
		if o.final == nil || !raster.Equal(o.final, want) {
			t.Fatal("recovery after the rejoin window did not reproduce the golden image")
		}
	})
	t.Run("unadmitted-spare-times-out", func(t *testing.T) {
		t.Parallel()
		sched, err := schedule.BinarySwap(4)
		if err != nil {
			t.Fatal(err)
		}
		f := inproc.New(sched.P)
		ep := f.Endpoint(2)
		defer ep.Close()
		opts := rejoinOptions(codec.Raw{})
		opts.RejoinTimeout = 400 * time.Millisecond
		_, _, err = RunSpare(ep, sched, opts)
		var te *RejoinTimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("RunSpare error = %v, want *RejoinTimeoutError", err)
		}
		if te.Timeout != opts.RejoinTimeout || len(te.Ranks) != 1 || te.Ranks[0] != 2 {
			t.Errorf("timeout error = %+v, want rank 2 at %v", te, opts.RejoinTimeout)
		}
	})
}

// TestScrubDetectsAndRepairs: a holder's ward replica is silently corrupted
// after its fingerprint is recorded; the scrub exchange must detect the rot,
// repair it from the live copy, and a subsequent death of the ward must
// still recover byte-identical — proving the repaired replica, not the
// corrupt one, fed the recovery.
func TestScrubDetectsAndRepairs(t *testing.T) {
	sched, err := schedule.NRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ward, holder := 2, schedule.Buddy(2, sched.P) // rank 3 holds rank 2's replica
	layers, want := chaosLayers(56, sched.P)
	rec := telemetry.New()
	opts := recoverOptions(codec.Raw{})
	opts.ScrubReplicas = true
	opts.Telemetry = rec
	opts.hookReplicas = func(rank int, replicas map[int]*raster.Image) {
		if rank != holder {
			return
		}
		if img := replicas[ward]; img != nil {
			for i := range img.Pix {
				img.Pix[i] ^= 0xFF // silent rot: every byte flipped
			}
		}
	}
	// The ward survives the scrub exchange (replica, scrub request, scrub
	// refresh = 3 sends) and dies on its first composition send.
	o := runRecoverCase(t, sched, layers, map[int]int{ward: 3}, opts)
	if err := o.errs[ward]; err == nil || !errors.Is(err, faulty.ErrDead) {
		t.Errorf("ward error = %v, want ErrDead", err)
	}
	for _, r := range []int{0, 1, 3} {
		if o.errs[r] != nil {
			t.Errorf("survivor rank %d failed: %v", r, o.errs[r])
			continue
		}
		rep := o.reports[r]
		if !rep.Recovered || rep.Degraded {
			t.Errorf("rank %d did not recover cleanly: %+v", r, rep)
		}
	}
	if o.final == nil {
		t.Fatal("no final image on the root")
	}
	if !raster.Equal(o.final, want) {
		t.Fatalf("recovery from the scrubbed replica differs from golden: maxdiff=%d — the corrupt copy leaked through",
			raster.MaxDiff(o.final, want))
	}
	ctrs := rec.Counters()
	if n := ctrs[telemetry.CounterKey{Rank: holder, Step: telemetry.StepNone, Name: telemetry.CtrScrubRepaired}]; n < 1 {
		t.Errorf("holder scrub_repaired = %d, want >= 1", n)
	}
	if n := ctrs[telemetry.CounterKey{Rank: holder, Step: telemetry.StepNone, Name: telemetry.CtrScrubFailed}]; n != 0 {
		t.Errorf("holder scrub_failed = %d, want 0", n)
	}
	okTotal := int64(0)
	for r := 0; r < sched.P; r++ {
		okTotal += ctrs[telemetry.CounterKey{Rank: r, Step: telemetry.StepNone, Name: telemetry.CtrScrubOK}]
	}
	if okTotal < int64(sched.P-1) {
		t.Errorf("scrub_ok total = %d, want >= %d (every untouched replica verifies)", okTotal, sched.P-1)
	}
}

// TestScrubCleanPassIsInvisible: with scrubbing on and nothing corrupted,
// the exchange must be a no-op — clean image, zero repairs, all replicas ok.
func TestScrubCleanPassIsInvisible(t *testing.T) {
	sched, err := schedule.TwoNRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	layers, want := chaosLayers(57, sched.P)
	rec := telemetry.New()
	opts := recoverOptions(codec.TRLE{})
	opts.ScrubReplicas = true
	opts.Telemetry = rec
	o := runRecoverCase(t, sched, layers, nil, opts)
	for r, err := range o.errs {
		if err != nil {
			t.Errorf("rank %d failed: %v", r, err)
		}
	}
	if o.final == nil || !raster.Equal(o.final, want) {
		t.Fatal("clean scrubbed run did not reproduce the reference image")
	}
	ctrs := rec.Counters()
	var ok, repaired, failed int64
	for r := 0; r < sched.P; r++ {
		ok += ctrs[telemetry.CounterKey{Rank: r, Step: telemetry.StepNone, Name: telemetry.CtrScrubOK}]
		repaired += ctrs[telemetry.CounterKey{Rank: r, Step: telemetry.StepNone, Name: telemetry.CtrScrubRepaired}]
		failed += ctrs[telemetry.CounterKey{Rank: r, Step: telemetry.StepNone, Name: telemetry.CtrScrubFailed}]
	}
	if ok != int64(sched.P) || repaired != 0 || failed != 0 {
		t.Errorf("clean scrub counters ok=%d repaired=%d failed=%d, want %d/0/0", ok, repaired, failed, sched.P)
	}
}
