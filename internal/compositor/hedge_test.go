package compositor

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/gray"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/telemetry"
	"rtcomp/internal/transport/faulty"
	"rtcomp/internal/transport/inproc"
)

// The gray-failure suite: a browned-out rank — slow but alive — must not
// change a single output byte, must not trigger a recovery epoch, and must
// be visibly hedged around in the counters.

// runInprocGray is runInprocPipe generalized for gray-failure scenarios:
// options may differ per rank (each rank needs its own estimator/health
// instance) and any rank's fabric may carry a faulty middleware plan
// (e.g. a brownout). Every rank is wrapped — the middleware CRC-frames
// each payload, so framing must be symmetric across the job — and ranks
// with a nil plan get a fault-free pass-through. Watchdog is generous
// because browned-out cells intentionally run slowly.
func runInprocGray(t *testing.T, sched *schedule.Schedule, layers []*raster.Image,
	optsFor func(r int) Options, planFor func(r int) *faulty.Plan) pipeOutcome {
	t.Helper()
	p := sched.P
	o := pipeOutcome{
		finals:  make([]*raster.Image, p),
		reports: make([]*Report, p),
		errs:    make([]error, p),
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		inproc.Run(p, func(c comm.Comm) error {
			r := c.Rank()
			plan := planFor(r)
			if plan == nil {
				plan = &faulty.Plan{}
			}
			c = faulty.Wrap(c, *plan)
			img, rep, err := Run(c, sched, layers[r], optsFor(r))
			o.finals[r] = img
			o.reports[r] = rep
			o.errs[r] = err
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("gray run HUNG: schedule did not terminate within the watchdog")
	}
	return o
}

// sumCounter totals a named counter across all ranks and steps.
func sumCounter(rec *telemetry.Recorder, name string) int64 {
	var total int64
	for k, v := range rec.Counters() {
		if k.Name == name {
			total += v
		}
	}
	return total
}

// TestHedgedBrownoutDifferentialMatrix is the headline acceptance test:
// with one rank browned out (every delivery delayed well past the hedge
// threshold), the hedged pipelined executor must produce an image
// byte-identical to the fault-free synchronous oracle for every schedule
// and codec — and the counters must show that hedges actually fired and
// won, i.e. the identical bytes were not produced by merely waiting out
// the slowness.
func TestHedgedBrownoutDifferentialMatrix(t *testing.T) {
	const p, w, h = 4, 37, 11
	const brown = 15 * time.Millisecond
	slow := 2 // Buddy(2,4)=3 serves its replica un-browned

	for _, m := range differentialMethods() {
		if !m.okFor(p) {
			continue
		}
		for _, cdcName := range []string{"raw", "rle", "trle"} {
			t.Run(fmt.Sprintf("%s/%s", m.name, cdcName), func(t *testing.T) {
				cdc, err := codec.ByName(cdcName)
				if err != nil {
					t.Fatal(err)
				}
				sched, err := m.build(p)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(8000 + len(m.name)*10 + len(cdcName))))
				layers := makeLayers(rng, p, w, h, true)
				want := runInproc(t, sched, layers, cdc)

				rec := telemetry.New()
				optsFor := func(r int) Options {
					return Options{
						Codec:       cdc,
						GatherRoot:  0,
						RecvTimeout: 10 * time.Second,
						Telemetry:   rec,
						Pipeline: PipelineConfig{
							Enabled: true,
							Hedge:   HedgeConfig{Enabled: true, Threshold: 3 * time.Millisecond},
						},
					}
				}
				planFor := func(r int) *faulty.Plan {
					if r != slow {
						return nil
					}
					return &faulty.Plan{Brownout: brown}
				}
				got := runInprocGray(t, sched, layers, optsFor, planFor).mustFinal(t)
				if !raster.Equal(got, want) {
					t.Fatalf("hedged brownout image differs from fault-free oracle: maxdiff=%d", raster.MaxDiff(got, want))
				}
				// The chain schedule is the one method where the slow rank's
				// sends are all impure (it merges its upstream neighbor's
				// fragments before forwarding), so hedging cannot legally
				// mask it — correctness still holds, the brownout is just
				// waited out. Every other method has pure early-step sends
				// from the slow rank and must show hedge wins.
				if m.name != "pipeline" {
					if wins := sumCounter(rec, telemetry.CtrHedgeWins); wins < 1 {
						t.Fatalf("no hedge wins recorded (requests=%d served=%d): brownout was waited out, not hedged",
							sumCounter(rec, telemetry.CtrHedgeRequests), sumCounter(rec, telemetry.CtrHedgeServed))
					}
				}
			})
		}
	}
}

// TestHedgedBrownoutInterleavings drives the hedged executor through
// several deterministic delivery interleavings and window sizes on top of
// the brownout, so hedge replies racing originals in different orders all
// converge on the oracle's bytes.
func TestHedgedBrownoutInterleavings(t *testing.T) {
	const p, w, h = 4, 29, 13
	cdc, err := codec.ByName("trle")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := schedule.TwoNRT(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8101))
	layers := makeLayers(rng, p, w, h, true)
	want := runInproc(t, sched, layers, cdc)

	seeds := []int64{1, 7, 1901}
	windows := []int{1, 2, 0}
	for i, seed := range seeds {
		window := windows[i]
		t.Run(fmt.Sprintf("seed%d/window%d", seed, window), func(t *testing.T) {
			rec := telemetry.New()
			optsFor := func(r int) Options {
				return Options{
					Codec:       cdc,
					GatherRoot:  0,
					RecvTimeout: 10 * time.Second,
					Telemetry:   rec,
					Pipeline: PipelineConfig{
						Enabled:        true,
						Window:         window,
						InterleaveSeed: seed,
						Hedge:          HedgeConfig{Enabled: true, Threshold: 2 * time.Millisecond},
					},
				}
			}
			planFor := func(r int) *faulty.Plan {
				if r != 1 {
					return nil
				}
				return &faulty.Plan{Brownout: 12 * time.Millisecond}
			}
			got := runInprocGray(t, sched, layers, optsFor, planFor).mustFinal(t)
			if !raster.Equal(got, want) {
				t.Fatalf("interleaved hedged image differs from oracle: maxdiff=%d", raster.MaxDiff(got, want))
			}
		})
	}
}

// TestHedgeRecoverNoFalseEviction is the zero-false-eviction guarantee:
// under the Recover policy with health scoring, a browned-out rank whose
// deliveries arrive after the receive deadline must be granted grace — not
// declared dead. The run must finish with no recovery epoch, no eviction,
// and bytes identical to the fault-free oracle.
func TestHedgeRecoverNoFalseEviction(t *testing.T) {
	const p, w, h = 4, 31, 9
	const brown = 120 * time.Millisecond
	cdc, err := codec.ByName("rle")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := schedule.TwoNRT(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8202))
	layers := makeLayers(rng, p, w, h, true)
	want := runInproc(t, sched, layers, cdc)

	rec := telemetry.New()
	optsFor := func(r int) Options {
		return Options{
			Codec:       cdc,
			GatherRoot:  0,
			OnMissing:   Recover,
			RecvTimeout: 60 * time.Millisecond,
			Telemetry:   rec,
			// Escalation bar high enough that a brownout 2x the receive
			// deadline never reaches it: every arrival decays the score.
			Health:   gray.NewHealth(gray.HealthConfig{EscalateScore: 1000}, rec, r),
			Pipeline: PipelineConfig{Enabled: true},
		}
	}
	planFor := func(r int) *faulty.Plan {
		if r != 2 {
			return nil
		}
		return &faulty.Plan{Brownout: brown}
	}
	o := runInprocGray(t, sched, layers, optsFor, planFor)
	got := o.mustFinal(t)
	if !raster.Equal(got, want) {
		t.Fatalf("graced brownout image differs from oracle: maxdiff=%d", raster.MaxDiff(got, want))
	}
	for r, rep := range o.reports {
		if rep == nil {
			continue
		}
		if rep.Recovered || rep.RecoveryEpochs > 0 {
			t.Fatalf("rank %d: false eviction — browned-out peer was recovered (epochs=%d ranks=%v)",
				r, rep.RecoveryEpochs, rep.RecoveredRanks)
		}
	}
	if g := sumCounter(rec, telemetry.CtrDeadlineGrace); g < 1 {
		t.Fatalf("no deadline grace recorded: deadlines never fired, scenario is vacuous")
	}
	if e := sumCounter(rec, telemetry.CtrHealthEscalations); e != 0 {
		t.Fatalf("health escalated a browned-out (alive) peer %d times", e)
	}
}

// TestAdaptiveDeadlinePipelined pins the adaptive estimator into the
// pipelined path: with per-rank estimators the run must stay byte-identical
// to the static-deadline oracle, and the estimators must actually have
// warmed (per-peer deadlines differ from the static fallback).
func TestAdaptiveDeadlinePipelined(t *testing.T) {
	const p, w, h = 4, 41, 17
	cdc, err := codec.ByName("trle")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := schedule.NRT(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8303))
	layers := makeLayers(rng, p, w, h, false)
	want := runInproc(t, sched, layers, cdc)

	ests := make([]*gray.Estimator, p)
	optsFor := func(r int) Options {
		ests[r] = gray.NewEstimator(gray.Config{Static: 5 * time.Second, MinSamples: 1})
		return Options{
			Codec:       cdc,
			GatherRoot:  0,
			RecvTimeout: 5 * time.Second,
			Adaptive:    ests[r],
			Pipeline:    PipelineConfig{Enabled: true},
		}
	}
	planFor := func(int) *faulty.Plan { return nil }
	got := runInprocGray(t, sched, layers, optsFor, planFor).mustFinal(t)
	if !raster.Equal(got, want) {
		t.Fatalf("adaptive-deadline image differs from oracle: maxdiff=%d", raster.MaxDiff(got, want))
	}
	warmed := false
	for r, est := range ests {
		for peer := 0; peer < p; peer++ {
			if peer == r {
				continue
			}
			if d := est.Deadline(gray.ClassStep, peer); d > 0 && d != 5*time.Second {
				warmed = true
			}
		}
	}
	if !warmed {
		t.Fatal("no estimator warmed during the run: observations are not being fed")
	}
}

// TestAdaptiveDeadlineSynchronous pins the estimator into the bulk-
// synchronous path too.
func TestAdaptiveDeadlineSynchronous(t *testing.T) {
	const p, w, h = 4, 23, 7
	cdc, err := codec.ByName("raw")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := schedule.TwoNRT(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8404))
	layers := makeLayers(rng, p, w, h, false)
	want := runInproc(t, sched, layers, cdc)

	optsFor := func(r int) Options {
		return Options{
			Codec:       cdc,
			GatherRoot:  0,
			RecvTimeout: 5 * time.Second,
			Adaptive:    gray.NewEstimator(gray.Config{Static: 5 * time.Second, MinSamples: 1}),
		}
	}
	planFor := func(int) *faulty.Plan { return nil }
	got := runInprocGray(t, sched, layers, optsFor, planFor).mustFinal(t)
	if !raster.Equal(got, want) {
		t.Fatalf("adaptive synchronous image differs from oracle: maxdiff=%d", raster.MaxDiff(got, want))
	}
}

// TestHedgeRequestCodec round-trips the hedge-request frame and rejects
// malformed inputs.
func TestHedgeRequestCodec(t *testing.T) {
	cases := []struct {
		origin, si int
		b          schedule.Block
	}{
		{0, 0, schedule.Block{}},
		{3, 7, schedule.Block{Tile: 2, Level: 4, Index: 9}},
		{1023, 4095, schedule.Block{Tile: 1023, Level: 31, Index: 255}},
	}
	for _, c := range cases {
		p := encodeHedgeReq(c.origin, c.si, c.b)
		origin, si, b, err := decodeHedgeReq(p)
		if err != nil {
			t.Fatalf("round-trip %v: %v", c, err)
		}
		if origin != c.origin || si != c.si || b != c.b {
			t.Fatalf("round-trip %v: got origin=%d si=%d b=%v", c, origin, si, b)
		}
	}
	bad := [][]byte{
		nil,
		{},
		{'H'},
		{'X', 'Q', 0, 0, 0, 0, 0},
		append(encodeHedgeReq(1, 2, schedule.Block{Tile: 3}), 0), // trailing byte
		bytes.Repeat([]byte{0xFF}, 32),                           // uvarint overflow territory
	}
	for i, p := range bad {
		if _, _, _, err := decodeHedgeReq(p); err == nil {
			t.Fatalf("bad frame %d accepted", i)
		}
	}
}

// TestPlanPure checks the purity predicate that gates which transfers are
// hedgeable: a sender's tile plan with any receive before the hedged step
// is impure (its fragments are not reconstructible from the replica alone).
func TestPlanPure(t *testing.T) {
	sched, err := schedule.TwoNRT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every rank's step-0 sends must be pure: no rank has received
	// anything before the first step.
	for r := 0; r < sched.P; r++ {
		plans := tilePlans(sched, r)
		for tile, plan := range plans {
			if len(plan) == 0 {
				continue
			}
			first := plan[0]
			if !planPure(plan, first.step) {
				t.Fatalf("rank %d tile %d: first planned step %d reported impure", r, tile, first.step)
			}
			// Past any receiving step, purity must be gone.
			for _, ts := range plan {
				if len(ts.recvs) > 0 {
					if planPure(plan, ts.step+1) {
						t.Fatalf("rank %d tile %d: step beyond recv at %d reported pure", r, tile, ts.step)
					}
					break
				}
			}
		}
	}
}

// FuzzHedgeRequestDecode asserts the decoder never panics and that every
// accepted frame re-encodes to the identical bytes (canonical form).
func FuzzHedgeRequestDecode(f *testing.F) {
	f.Add(encodeHedgeReq(0, 0, schedule.Block{}))
	f.Add(encodeHedgeReq(7, 3, schedule.Block{Tile: 5, Level: 2, Index: 1}))
	f.Add([]byte{'H', 'Q'})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		origin, si, b, err := decodeHedgeReq(p)
		if err != nil {
			return
		}
		re := encodeHedgeReq(origin, si, b)
		if !bytes.Equal(re, p) {
			t.Fatalf("accepted non-canonical frame: % x re-encodes to % x", p, re)
		}
	})
}
