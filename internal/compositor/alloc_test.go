package compositor

import (
	"fmt"
	"testing"

	"rtcomp/internal/codec"
	"rtcomp/internal/comm"
	"rtcomp/internal/compose"
	"rtcomp/internal/raster"
	"rtcomp/internal/schedule"
	"rtcomp/internal/transport/inproc"
)

// allocBudgetPerStep is the ceiling on steady-state heap allocations per
// composition step, counted across BOTH ranks of a two-rank ping-pong (send
// encode+transport on one side, receive decode+merge on the other). The
// remaining allocations are slice headers the fragment store rebuilds per
// merge, not payload buffers — those all recycle through the pool.
const allocBudgetPerStep = 4

// pingPongSchedule bounces the single tile block between two ranks for the
// given number of steps: the steady-state composition step (take, encode,
// send / receive, decode, merge) with no halvings and no gather, so the
// per-step allocation count isolates the hot path.
func pingPongSchedule(steps int) *schedule.Schedule {
	s := &schedule.Schedule{Name: "pingpong", P: 2, Tiles: 1}
	for i := 0; i < steps; i++ {
		from := i % 2
		s.Steps = append(s.Steps, schedule.Step{Transfers: []schedule.Transfer{
			{From: from, To: 1 - from, Block: schedule.Block{Tile: 0}},
		}})
	}
	return s
}

// composeAllocs measures the total heap allocations of one full ping-pong
// composition of the given length (fabric setup and staging included).
func composeAllocs(t *testing.T, steps int, cdc codec.Codec, layers []*raster.Image) float64 {
	t.Helper()
	sched := pingPongSchedule(steps)
	opts := Options{Codec: cdc, GatherRoot: -1}
	return testing.AllocsPerRun(10, func() {
		err := inproc.Run(2, func(c comm.Comm) error {
			_, _, err := Run(c, sched, layers[c.Rank()], opts)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestSteadyStateComposeAllocs asserts the allocation-free steady state of
// the composition step loop: the per-run fixed costs (fabric, store, report,
// goroutines) are cancelled differentially by comparing a long run against a
// short one, leaving the marginal allocations of one extra step.
func TestSteadyStateComposeAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement in -short mode")
	}
	const w, h = 64, 64
	layers := make([]*raster.Image, 2)
	for r := range layers {
		layers[r] = raster.New(w, h)
		for i := range layers[r].Pix {
			layers[r].Pix[i] = uint8((i + 7*r) % 251)
		}
	}
	for _, tc := range []struct {
		name string
		cdc  codec.Codec
	}{
		{"raw", codec.Raw{}},
		{"rle", codec.RLE{}},
		{"trle", codec.TRLE{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const short, long = 4, 64
			base := composeAllocs(t, short, tc.cdc, layers)
			full := composeAllocs(t, long, tc.cdc, layers)
			perStep := (full - base) / float64(long-short)
			t.Logf("allocs: %d steps = %.0f, %d steps = %.0f, per step = %.2f",
				short, base, long, full, perStep)
			if perStep > allocBudgetPerStep {
				t.Fatalf("steady-state composition allocates %.2f objects/step, budget %d",
					perStep, allocBudgetPerStep)
			}
		})
	}
}

// TestComposeScratchReuseAcrossSteps pins that the scratch-threaded step
// loop produces the same image as the per-step-allocating layout it
// replaced: a long ping-pong must leave the complete composite (all P
// layers, in depth order) on the final holder.
func TestComposeScratchReuseAcrossSteps(t *testing.T) {
	const w, h, steps = 16, 3, 7
	layers := make([]*raster.Image, 2)
	for r := range layers {
		layers[r] = raster.New(w, h)
		layers[r].Fill(uint8(40+100*r), uint8(90+60*r))
	}
	sched := pingPongSchedule(steps)
	finals := make([]*raster.Image, 2)
	err := inproc.Run(2, func(c comm.Comm) error {
		img, rep, err := Run(c, sched, layers[c.Rank()], Options{GatherRoot: 0})
		if err != nil {
			return err
		}
		if rep.Degraded {
			return fmt.Errorf("rank %d: unexpected degradation", c.Rank())
		}
		finals[c.Rank()] = img
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := compose.SerialComposite(layers)
	if got := finals[0]; got == nil {
		t.Fatal("no final image on the gather root")
	} else {
		for i := range want.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("pixel byte %d = %d, want %d", i, got.Pix[i], want.Pix[i])
			}
		}
	}
}
